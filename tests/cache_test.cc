// Tests for src/cache: plain LRU, size-aware SA-LRU (Section 4.4
// DataNode cache), and active-update AU-LRU (Section 4.4 proxy cache).
#include <gtest/gtest.h>

#include <string>

#include "cache/au_lru.h"
#include "cache/lru_cache.h"
#include "cache/sa_lru.h"
#include "common/clock.h"
#include "common/rng.h"

namespace abase {
namespace cache {
namespace {

// ------------------------------------------------------------------- LRU --

TEST(LruCacheTest, PutGetHitMiss) {
  LruCache c(1024);
  EXPECT_TRUE(c.Put("a", "1", 10));
  auto v = c.Get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "1");
  EXPECT_FALSE(c.Get("b").has_value());
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache c(30);
  c.Put("a", "1", 10);
  c.Put("b", "2", 10);
  c.Put("c", "3", 10);
  c.Get("a");           // Promote a.
  c.Put("d", "4", 10);  // Evicts b (oldest unused).
  EXPECT_TRUE(c.Contains("a"));
  EXPECT_FALSE(c.Contains("b"));
  EXPECT_TRUE(c.Contains("c"));
  EXPECT_TRUE(c.Contains("d"));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(LruCacheTest, OversizedEntryRejected) {
  LruCache c(100);
  EXPECT_FALSE(c.Put("big", "x", 101));
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(LruCacheTest, ReplaceUpdatesCharge) {
  LruCache c(100);
  c.Put("k", "v", 60);
  c.Put("k", "v2", 10);
  EXPECT_EQ(c.used_bytes(), 10u);
  EXPECT_EQ(c.entry_count(), 1u);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache c(100);
  c.Put("k", "v", 10);
  EXPECT_TRUE(c.Erase("k"));
  EXPECT_FALSE(c.Erase("k"));
  c.Put("k2", "v", 10);
  c.Clear();
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(LruCacheTest, CapacityInvariantUnderRandomOps) {
  LruCache c(500);
  Rng rng(9);
  for (int i = 0; i < 5000; i++) {
    std::string key = "k" + std::to_string(rng.NextUint64(100));
    uint64_t charge = 1 + rng.NextUint64(120);
    c.Put(key, "v", charge);
    ASSERT_LE(c.used_bytes(), 500u);
  }
}

// ---------------------------------------------------------------- SA-LRU --

SaLruOptions SmallSaOptions(uint64_t cap = 1000) {
  SaLruOptions o;
  o.capacity_bytes = cap;
  o.min_class_bytes = 16;
  o.num_classes = 4;  // Classes: <=16, <=32, <=64, rest.
  return o;
}

TEST(SaLruTest, BasicHitMiss) {
  SaLruCache c(SmallSaOptions());
  EXPECT_TRUE(c.Put("a", "v", 10));
  EXPECT_TRUE(c.Get("a").has_value());
  EXPECT_FALSE(c.Get("b").has_value());
}

TEST(SaLruTest, ClassAssignmentBySize) {
  SaLruCache c(SmallSaOptions());
  c.Put("tiny", "v", 10);    // Class 0.
  c.Put("small", "v", 30);   // Class 1.
  c.Put("mid", "v", 60);     // Class 2.
  c.Put("large", "v", 500);  // Class 3.
  auto bytes = c.ClassBytes();
  EXPECT_EQ(bytes[0], 10u);
  EXPECT_EQ(bytes[1], 30u);
  EXPECT_EQ(bytes[2], 60u);
  EXPECT_EQ(bytes[3], 500u);
}

TEST(SaLruTest, EvictsColdLargeBeforeHotSmall) {
  // Paper claim: SA-LRU "strategically evicts data that occupies more
  // memory while yielding fewer cache hits".
  SaLruCache c(SmallSaOptions(1000));
  // Hot small entries.
  for (int i = 0; i < 10; i++) c.Put("small" + std::to_string(i), "v", 10);
  // Cold large entry filling most of the cache.
  c.Put("bigcold", "v", 800);
  // Heat up the small class.
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 10; i++) c.Get("small" + std::to_string(i));
  }
  // Insert pressure: needs 400 bytes, must come from the cold large class.
  c.Put("newcomer", "v", 400);
  EXPECT_FALSE(c.Contains("bigcold"));
  for (int i = 0; i < 10; i++) {
    EXPECT_TRUE(c.Contains("small" + std::to_string(i))) << i;
  }
}

TEST(SaLruTest, CapacityInvariantUnderRandomOps) {
  SaLruCache c(SmallSaOptions(2000));
  Rng rng(11);
  for (int i = 0; i < 10000; i++) {
    std::string key = "k" + std::to_string(rng.NextUint64(300));
    uint64_t charge = 1 + rng.NextUint64(400);
    c.Put(key, "v", charge);
    if (rng.NextBool(0.5)) c.Get("k" + std::to_string(rng.NextUint64(300)));
    ASSERT_LE(c.used_bytes(), 2000u);
  }
  EXPECT_GT(c.stats().evictions, 0u);
}

TEST(SaLruTest, EraseMaintainsClassAccounting) {
  SaLruCache c(SmallSaOptions());
  c.Put("a", "v", 60);
  EXPECT_TRUE(c.Erase("a"));
  EXPECT_EQ(c.used_bytes(), 0u);
  EXPECT_EQ(c.ClassBytes()[2], 0u);
  EXPECT_FALSE(c.Erase("a"));
}

TEST(SaLruTest, OversizedRejected) {
  SaLruCache c(SmallSaOptions(100));
  EXPECT_FALSE(c.Put("x", "v", 200));
}

// Hit-ratio comparison under mixed sizes: SA-LRU should beat plain LRU
// when small hot items compete with large cold scans (the Table 1 mix).
TEST(SaLruTest, BeatsPlainLruOnMixedSizes) {
  const uint64_t capacity = 16 * 1024;
  SaLruOptions so;
  so.capacity_bytes = capacity;
  SaLruCache sa(so);
  LruCache lru(capacity);
  Rng rng(21);
  ZipfianGenerator hot_keys(200, 0.95);

  for (int i = 0; i < 30000; i++) {
    if (rng.NextBool(0.7)) {
      // Hot small reads (0.1 KB social-media comments).
      std::string key = "hot" + std::to_string(hot_keys.Next(rng));
      if (!sa.Get(key).has_value()) sa.Put(key, "v", 100);
      if (!lru.Get(key).has_value()) lru.Put(key, "v", 100);
    } else {
      // Cold large one-shot reads (10 KB ad payloads).
      std::string key = "cold" + std::to_string(i);
      if (!sa.Get(key).has_value()) sa.Put(key, "v", 10240);
      if (!lru.Get(key).has_value()) lru.Put(key, "v", 10240);
    }
  }
  EXPECT_GT(sa.stats().HitRatio(), lru.stats().HitRatio());
}

// ---------------------------------------------------------------- AU-LRU --

AuLruOptions SmallAuOptions() {
  AuLruOptions o;
  o.capacity_bytes = 1000;
  o.default_ttl = 100 * kMicrosPerSecond;
  o.refresh_window = 20 * kMicrosPerSecond;
  o.refresh_min_hits = 2;
  return o;
}

TEST(AuLruTest, HitWithinTtl) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("k", "v", 10);
  auto lk = c.Get("k");
  EXPECT_TRUE(lk.hit);
  ASSERT_NE(lk.value, nullptr);
  EXPECT_EQ(*lk.value, "v");
  EXPECT_FALSE(lk.needs_refresh);
}

TEST(AuLruTest, ExpiredEntryIsMissAndErased) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("k", "v", 10);
  clock.Advance(101 * kMicrosPerSecond);
  auto lk = c.Get("k");
  EXPECT_FALSE(lk.hit);
  EXPECT_FALSE(c.Contains("k"));
  EXPECT_EQ(c.stats().expired, 1u);
}

TEST(AuLruTest, HotEntryNearExpiryFlagsRefresh) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("k", "v", 10);
  c.Get("k");  // Hit 1 (far from expiry).
  clock.Advance(85 * kMicrosPerSecond);  // 15s to expiry, inside window.
  auto lk = c.Get("k");                  // Hit 2 reaches min_hits.
  EXPECT_TRUE(lk.hit);
  EXPECT_TRUE(lk.needs_refresh);
  auto queue = c.TakeRefreshQueue();
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue[0], "k");
  // Flag fires once per TTL period.
  EXPECT_FALSE(c.Get("k").needs_refresh);
  EXPECT_TRUE(c.TakeRefreshQueue().empty());
}

TEST(AuLruTest, ColdEntryDoesNotRefresh) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("k", "v", 10);
  clock.Advance(85 * kMicrosPerSecond);
  // First (and only) hit inside the window: below refresh_min_hits.
  EXPECT_FALSE(c.Get("k").needs_refresh);
}

TEST(AuLruTest, RePutResetsTtlAndRefreshState) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("k", "v", 10);
  c.Get("k");
  clock.Advance(85 * kMicrosPerSecond);
  c.Get("k");  // Flags refresh.
  c.TakeRefreshQueue();
  c.Put("k", "v2", 10);  // Background refresh completed.
  clock.Advance(50 * kMicrosPerSecond);  // Old TTL would have expired.
  auto lk = c.Get("k");
  EXPECT_TRUE(lk.hit);
  ASSERT_NE(lk.value, nullptr);
  EXPECT_EQ(*lk.value, "v2");
}

TEST(AuLruTest, EvictionAtCapacity) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  for (int i = 0; i < 200; i++) {
    c.Put("k" + std::to_string(i), "v", 100);
    ASSERT_LE(c.used_bytes(), 1000u);
  }
  EXPECT_GT(c.stats().evictions, 0u);
}

TEST(AuLruTest, CustomTtlHonored) {
  SimClock clock;
  AuLruCache c(SmallAuOptions(), &clock);
  c.Put("short", "v", 10, 5 * kMicrosPerSecond);
  clock.Advance(6 * kMicrosPerSecond);
  EXPECT_FALSE(c.Get("short").hit);
}

}  // namespace
}  // namespace cache
}  // namespace abase
