// Tests for the DataNode (Section 3.2 data plane): admission, WFQ
// integration, cache behaviour, rejection cost, and replica management.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "node/data_node.h"

namespace abase {
namespace node {
namespace {

DataNodeOptions SmallNodeOptions() {
  DataNodeOptions o;
  o.wfq.cpu_budget_ru = 1000;
  o.cache.capacity_bytes = 1 << 20;
  return o;
}

NodeRequest MakeSet(uint64_t id, TenantId t, PartitionId p,
                    const std::string& key, const std::string& value) {
  NodeRequest r;
  r.req_id = id;
  r.tenant = t;
  r.partition = p;
  r.op = OpType::kSet;
  r.key = key;
  r.value = value;
  r.estimated_ru = 1.0;
  r.value_size_hint = value.size();
  return r;
}

NodeRequest MakeGet(uint64_t id, TenantId t, PartitionId p,
                    const std::string& key) {
  NodeRequest r;
  r.req_id = id;
  r.tenant = t;
  r.partition = p;
  r.op = OpType::kGet;
  r.key = key;
  r.estimated_ru = 1.0;
  r.value_size_hint = 64;
  return r;
}

class DataNodeTest : public ::testing::Test {
 protected:
  DataNodeTest() : clock_(0), node_(1, SmallNodeOptions(), &clock_) {
    node_.AddReplica(/*tenant=*/1, /*partition=*/0,
                     /*partition_quota_ru=*/1000, /*is_primary=*/true);
  }

  std::vector<NodeResponse> TickAndDrain() {
    node_.Tick();
    clock_.Advance(kMicrosPerSecond);
    return node_.TakeResponses();
  }

  SimClock clock_;
  DataNode node_;
};

TEST_F(DataNodeTest, SetThenGetRoundTrip) {
  node_.Submit(MakeSet(1, 1, 0, "k", "hello"));
  auto r1 = TickAndDrain();
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1[0].status.ok());
  EXPECT_EQ(r1[0].served_by, ServedBy::kNodeCpu);

  node_.Submit(MakeGet(2, 1, 0, "k"));
  auto r2 = TickAndDrain();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_TRUE(r2[0].status.ok());
  EXPECT_EQ(r2[0].value, "hello");
}

TEST_F(DataNodeTest, SecondGetHitsNodeCache) {
  node_.Submit(MakeSet(1, 1, 0, "k", "v"));
  TickAndDrain();
  node_.Submit(MakeGet(2, 1, 0, "k"));
  auto r1 = TickAndDrain();
  ASSERT_EQ(r1.size(), 1u);

  node_.Submit(MakeGet(3, 1, 0, "k"));
  auto r2 = TickAndDrain();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].served_by, ServedBy::kNodeCache);
  // Cache hit charges only the CPU fraction.
  EXPECT_LT(r2[0].actual_ru, r1[0].actual_ru + 1e-9);
}

TEST_F(DataNodeTest, WriteThroughCacheServesNewValue) {
  node_.Submit(MakeSet(1, 1, 0, "k", "v1"));
  TickAndDrain();
  node_.Submit(MakeGet(2, 1, 0, "k"));
  TickAndDrain();  // Cache filled.
  node_.Submit(MakeSet(3, 1, 0, "k", "v2"));
  TickAndDrain();  // Write-through updates the cached value.
  node_.Submit(MakeGet(4, 1, 0, "k"));
  auto r = TickAndDrain();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].value, "v2");  // Never the stale v1.
  EXPECT_EQ(r[0].served_by, ServedBy::kNodeCache);
}

TEST_F(DataNodeTest, UnknownPartitionUnavailable) {
  node_.Submit(MakeGet(1, 9, 5, "k"));
  auto r = TickAndDrain();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].status.IsUnavailable());
}

TEST_F(DataNodeTest, PartitionQuotaRejectsBeyondTriple) {
  // Partition quota 1000 -> 3000 burst tokens. Estimated 1 RU each.
  int rejected = 0;
  for (uint64_t i = 0; i < 5000; i++) {
    node_.Submit(MakeGet(10 + i, 1, 0, "k" + std::to_string(i)));
  }
  auto responses = TickAndDrain();
  for (const auto& resp : responses) {
    if (resp.status.IsThrottled()) rejected++;
  }
  EXPECT_GT(rejected, 1500);  // ~2000 rejected (5000 - 3000 admitted).
  NodeTickStats stats = node_.TakeTickStats();
  EXPECT_GT(stats.rejected_quota, 0u);
  EXPECT_GT(stats.reject_cpu_ru, 0.0);
}

TEST_F(DataNodeTest, DisablingQuotaAdmitsEverything) {
  node_.SetPartitionQuotaEnforcement(false);
  for (uint64_t i = 0; i < 5000; i++) {
    node_.Submit(MakeGet(10 + i, 1, 0, "k"));
  }
  node_.Tick();
  NodeTickStats stats = node_.TakeTickStats();
  EXPECT_EQ(stats.rejected_quota, 0u);
}

TEST_F(DataNodeTest, HashOpsThroughNode) {
  NodeRequest hset = MakeSet(1, 1, 0, "h", "v");
  hset.op = OpType::kHSet;
  hset.field = "f1";
  node_.Submit(hset);
  TickAndDrain();

  NodeRequest hlen = MakeGet(2, 1, 0, "h");
  hlen.op = OpType::kHLen;
  node_.Submit(hlen);
  auto r = TickAndDrain();
  ASSERT_EQ(r.size(), 1u);
  ASSERT_TRUE(r[0].status.ok());
  EXPECT_EQ(r[0].value, "1");

  NodeRequest hga = MakeGet(3, 1, 0, "h");
  hga.op = OpType::kHGetAll;
  node_.Submit(hga);
  auto r2 = TickAndDrain();
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].value, "f1=v\n");
}

TEST_F(DataNodeTest, ReplicaManagement) {
  EXPECT_TRUE(node_.HasReplica(1, 0));
  node_.AddReplica(2, 3, 500, false);
  EXPECT_EQ(node_.replica_count(), 2u);
  EXPECT_DOUBLE_EQ(node_.TotalPartitionQuota(), 1500.0);
  EXPECT_TRUE(node_.RemoveReplica(2, 3));
  EXPECT_FALSE(node_.RemoveReplica(2, 3));
  EXPECT_EQ(node_.replica_count(), 1u);
}

TEST_F(DataNodeTest, SetPartitionQuotaPropagates) {
  node_.SetPartitionQuota(1, 0, 2500);
  EXPECT_DOUBLE_EQ(node_.TotalPartitionQuota(), 2500.0);
}

TEST_F(DataNodeTest, TenantRuTracked) {
  node_.Submit(MakeSet(1, 1, 0, "k", std::string(2048, 'x')));
  node_.Tick();
  const auto& ru = node_.LastTickTenantRu();
  ASSERT_EQ(ru.size(), 1u);
  EXPECT_EQ(ru[0].first, 1u);
  EXPECT_GT(ru[0].second, 0.0);
}

TEST_F(DataNodeTest, RejectionBurnsCpuBudget) {
  // A flood of rejected traffic must shrink the next tick's CPU budget —
  // the Figure 6 co-tenant damage mechanism.
  for (uint64_t i = 0; i < 50000; i++) {
    node_.Submit(MakeGet(10 + i, 1, 0, "k"));
  }
  node_.Tick();
  NodeTickStats stats = node_.TakeTickStats();
  // Rejections happened and consumed meaningful CPU.
  EXPECT_GT(stats.rejected_quota, 40000u);
  EXPECT_GT(stats.reject_cpu_ru, 1000.0);
}

TEST_F(DataNodeTest, StoredBytesGrowWithWrites) {
  uint64_t before = node_.StoredBytes();
  for (uint64_t i = 0; i < 50; i++) {
    node_.Submit(MakeSet(10 + i, 1, 0, "k" + std::to_string(i),
                         std::string(1024, 'd')));
  }
  TickAndDrain();
  EXPECT_GT(node_.StoredBytes(), before + 40 * 1024);
}

TEST_F(DataNodeTest, ReplicaRuEwmaUpdates) {
  for (uint64_t i = 0; i < 100; i++) {
    node_.Submit(MakeSet(10 + i, 1, 0, "k" + std::to_string(i), "v"));
  }
  node_.Tick();
  auto replicas = node_.Replicas();
  ASSERT_EQ(replicas.size(), 1u);
  EXPECT_GT(replicas[0]->ru_rate, 0.0);
}

}  // namespace
}  // namespace node
}  // namespace abase
