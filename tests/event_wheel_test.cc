// Unit tests for the EventWheel calendar timer and the active-set
// activation invariants it drives (DESIGN.md "Active-set ticking"):
// parked generators wake at their arrival-schedule boundaries, idle
// tenants deactivate (generator park, replication quiescence), and
// control events — workload mutation, node faults — re-activate them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/event_wheel.h"
#include "common/time_series.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

// ---------------------------------------------------------- EventWheel unit --

TEST(EventWheelTest, PopsAtExactTickInSchedulingOrder) {
  EventWheel<int> wheel(8);
  wheel.ScheduleAt(3, 30);
  wheel.ScheduleAt(1, 10);
  wheel.ScheduleAt(3, 31);
  wheel.ScheduleAt(1, 11);
  EXPECT_EQ(wheel.size(), 4u);

  std::vector<int> popped;
  auto collect = [&](int v) { popped.push_back(v); };
  wheel.PopDue(0, collect);
  EXPECT_TRUE(popped.empty());
  wheel.PopDue(1, collect);
  EXPECT_EQ(popped, (std::vector<int>{10, 11}));
  popped.clear();
  wheel.PopDue(2, collect);
  EXPECT_TRUE(popped.empty());
  wheel.PopDue(3, collect);
  EXPECT_EQ(popped, (std::vector<int>{30, 31}));
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.floor(), 4u);
}

TEST(EventWheelTest, PastTicksClampForwardToTheFloor) {
  EventWheel<int> wheel(8);
  std::vector<int> popped;
  auto collect = [&](int v) { popped.push_back(v); };
  for (uint64_t t = 0; t < 5; t++) wheel.PopDue(t, collect);
  EXPECT_EQ(wheel.floor(), 5u);

  // An event scheduled for an already-popped tick must not be lost: it
  // clamps to the next poppable tick.
  wheel.ScheduleAt(2, 99);
  wheel.PopDue(5, collect);
  EXPECT_EQ(popped, (std::vector<int>{99}));
}

TEST(EventWheelTest, OverflowBeyondTheHorizonStillFires) {
  EventWheel<int> wheel(8);  // Events >= 8 ticks out overflow.
  wheel.ScheduleAt(3, 1);
  wheel.ScheduleAt(100, 2);
  wheel.ScheduleAt(1000, 3);
  EXPECT_EQ(wheel.size(), 3u);

  std::vector<int> popped;
  auto collect = [&](int v) { popped.push_back(v); };
  for (uint64_t t = 0; t <= 1000; t++) wheel.PopDue(t, collect);
  EXPECT_EQ(popped, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(wheel.empty());
}

TEST(EventWheelTest, BucketReuseAcrossRevolutions) {
  EventWheel<int> wheel(4);
  // Ticks 1 and 5 share bucket (1 & 3): both must fire at their own
  // tick, not together.
  wheel.ScheduleAt(1, 10);
  wheel.ScheduleAt(5, 50);  // 5 - 0 >= 4 -> overflow path.
  std::vector<int> popped;
  auto collect = [&](int v) { popped.push_back(v); };
  wheel.PopDue(0, collect);
  wheel.PopDue(1, collect);
  EXPECT_EQ(popped, (std::vector<int>{10}));
  // After popping tick 1, tick 5 is within the horizon of new schedules
  // landing in the same bucket.
  wheel.ScheduleAt(5, 51);
  for (uint64_t t = 2; t <= 5; t++) wheel.PopDue(t, collect);
  EXPECT_EQ(popped, (std::vector<int>{10, 51, 50}));
}

// ----------------------------------------------- Activation: arrival wheel --

sim::SimOptions SparseOptions() {
  sim::SimOptions opt;
  opt.seed = 11;
  opt.meta_report_interval_ticks = 0;  // Isolate the generator machinery.
  return opt;
}

meta::TenantConfig WheelTenant(TenantId id) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = 100000;
  c.num_partitions = 2;
  c.replicas = 1;  // Pools in these tests are tiny.
  c.num_proxies = 1;
  c.num_proxy_groups = 1;
  return c;
}

TEST(ActiveSetTest, FlatZeroGeneratorParksForever) {
  sim::ClusterSim sim(SparseOptions());
  PoolId pool = sim.AddPool(2);
  ASSERT_TRUE(sim.AddTenant(WheelTenant(1), pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 0;  // Flat zero: no schedule, nothing to wake for.
  sim.SetWorkload(1, p);

  EXPECT_EQ(sim.ActiveGeneratorCount(), 1u);  // Armed at attach.
  sim.Tick();
  EXPECT_EQ(sim.ActiveGeneratorCount(), 0u);  // Parked on first sight.
  EXPECT_EQ(sim.PendingGeneratorWakes(), 0u);  // No boundary to wake at.
  sim.RunTicks(5);
  EXPECT_EQ(sim.ActiveGeneratorCount(), 0u);
  for (const auto& m : sim.History(1)) EXPECT_EQ(m.issued, 0u);
}

TEST(ActiveSetTest, ScheduleBoundaryWakesParkedGenerator) {
  sim::SimOptions opt = SparseOptions();
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(2);
  ASSERT_TRUE(sim.AddTenant(WheelTenant(1), pool).ok());
  sim.PreloadKeys(1, 64, 64);

  // 3-tick cells: burst, silence, burst, silence...
  sim::WorkloadProfile p;
  p.num_keys = 64;
  p.rate_schedule = TimeSeries({200.0, 0.0, 300.0, 0.0});
  p.rate_schedule_step = 3 * opt.tick;
  sim.SetWorkload(1, p);

  sim.RunTicks(12);  // One full schedule revolution.
  const auto& h = sim.History(1);
  ASSERT_EQ(h.size(), 12u);
  for (size_t t = 0; t < h.size(); t++) {
    const bool active_cell = (t / 3) % 2 == 0;
    if (active_cell) {
      EXPECT_GT(h[t].issued, 0u) << "tick " << t;
    } else {
      EXPECT_EQ(h[t].issued, 0u) << "tick " << t;
    }
  }
  // Mid-silence the generator is parked with a wheel wake armed.
  sim.Tick();  // Tick 12: cell 0 again (active).
  EXPECT_EQ(sim.ActiveGeneratorCount(), 1u);
  sim.RunTicks(3);  // Into the zero cell.
  EXPECT_EQ(sim.ActiveGeneratorCount(), 0u);
  EXPECT_EQ(sim.PendingGeneratorWakes(), 1u);
}

TEST(ActiveSetTest, WorkloadMutationReactivatesParkedGenerator) {
  sim::ClusterSim sim(SparseOptions());
  PoolId pool = sim.AddPool(2);
  ASSERT_TRUE(sim.AddTenant(WheelTenant(1), pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 0;
  p.num_keys = 64;
  sim.SetWorkload(1, p);
  sim.RunTicks(3);
  ASSERT_EQ(sim.ActiveGeneratorCount(), 0u);

  // Control event: scenario scripting flips the rate mid-run. The
  // MutableWorkload hook must re-arm the generator.
  sim.MutableWorkload(1)->base_qps = 120;
  EXPECT_EQ(sim.ActiveGeneratorCount(), 1u);
  sim.Tick();
  EXPECT_EQ(sim.ActiveGeneratorCount(), 1u);
  const auto& h = sim.History(1);
  EXPECT_GT(h.back().issued, 0u);
}

TEST(ActiveSetTest, StaleWheelWakeIsIgnoredAfterReattach) {
  sim::SimOptions opt = SparseOptions();
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(2);
  ASSERT_TRUE(sim.AddTenant(WheelTenant(1), pool).ok());
  sim::WorkloadProfile p;
  p.num_keys = 64;
  p.rate_schedule = TimeSeries({0.0, 100.0});
  p.rate_schedule_step = 2 * opt.tick;
  sim.SetWorkload(1, p);
  sim.Tick();  // Parks in cell 0, wake armed for the cell-1 boundary.
  ASSERT_EQ(sim.PendingGeneratorWakes(), 1u);

  // Re-attaching a flat-zero workload bumps the wake seq: the armed
  // wake must not resurrect the new (parked, schedule-less) workload.
  sim::WorkloadProfile flat;
  flat.base_qps = 0;
  flat.num_keys = 64;
  sim.SetWorkload(1, flat);
  sim.RunTicks(6);
  EXPECT_EQ(sim.ActiveGeneratorCount(), 0u);
  for (const auto& m : sim.History(1)) EXPECT_EQ(m.issued, 0u);
}

// ------------------------------------------- Deactivation: repl quiescence --

TEST(ActiveSetTest, ReplicationListDrainsToQuiescenceAndRearmsOnFault) {
  sim::SimOptions opt = SparseOptions();
  opt.replication_lag_ticks = 1;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  for (TenantId t = 1; t <= 4; t++) {
    meta::TenantConfig c = WheelTenant(t);
    c.replicas = 3;
    ASSERT_TRUE(sim.AddTenant(c, pool).ok());
    sim.PreloadKeys(t, 64, 64);
  }
  // Only tenant 1 has traffic; 2-4 are idle after preload.
  sim::WorkloadProfile p;
  p.base_qps = 150;
  p.num_keys = 64;
  p.read_ratio = 0.5;
  sim.SetWorkload(1, p);

  sim.RunTicks(6);
  // Idle tenants' streams are fully shipped and settle off the list;
  // tenant 1 keeps re-entering via its responses.
  EXPECT_LE(sim.ReplActiveCount(), 1u);

  // Control event: a node fault bumps the routing epoch, which must
  // rebuild the whole work list (any placement change can unfreeze a
  // stream).
  sim.FailNode(sim.meta().PrimaryFor(2, 0));
  sim.RunTicks(2);  // Fault lands, then the promotion bumps the epoch.
  // The epoch-triggered rebuild re-listed everyone; quiescent idles
  // drain within the same walk, but the faulted tenant's re-seeded
  // stream (and tenant 1's live one) must stay listed.
  EXPECT_GE(sim.ReplActiveCount(), 2u);
  sim.RunTicks(20);  // Re-replication (8-tick grace) + stream re-seed.
  // Once failover settles and the streams re-seed, idles drain again.
  EXPECT_LE(sim.ReplActiveCount(), 1u);
}

// ------------------------------------------------------- Outcome TTL wheel --

TEST(ActiveSetTest, AbandonedOutcomesExpireThroughTheWheel) {
  sim::SimOptions opt = SparseOptions();
  opt.outcome_ttl_ticks = 3;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(2);
  ASSERT_TRUE(sim.AddTenant(WheelTenant(1), pool).ok());
  sim.PreloadKeys(1, 16, 32);

  ClientRequest get;
  get.req_id = 7001;
  get.tenant = 1;
  get.op = OpType::kGet;
  get.key = "t1:k1";
  get.track_outcome = true;
  sim.InjectRequest(get);
  sim.RunTicks(2);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 1u);  // Settled, never collected.
  sim.RunTicks(4);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 0u);  // Swept at recorded+ttl.

  // A collected outcome must not be double-swept or resurrect.
  get.req_id = 7002;
  sim.InjectRequest(get);
  sim.RunTicks(2);
  ASSERT_TRUE(sim.TakeOutcome(7002).has_value());
  sim.RunTicks(4);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 0u);
  EXPECT_FALSE(sim.TakeOutcome(7002).has_value());
}

}  // namespace
}  // namespace abase
