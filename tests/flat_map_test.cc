// Unit tests for FlatMap64: the open-addressed request-id map behind
// the data plane's inflight/pending/estimate ledgers. Exercises the
// insert -> find -> erase lifecycle, tombstone reclamation under churn,
// and non-trivial value types.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/flat_map.h"

namespace abase {
namespace {

TEST(FlatMapTest, InsertFindErase) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  m[7] = 70;
  m[8] = 80;
  m.Insert(9, 90);
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70);
  EXPECT_EQ(*m.Find(9), 90);
  EXPECT_EQ(m.Find(10), nullptr);
  EXPECT_TRUE(m.Erase(8));
  EXPECT_FALSE(m.Erase(8));
  EXPECT_EQ(m.Find(8), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMapTest, SequentialRequestIdChurnMatchesReference) {
  // The data-plane pattern: ids are (tenant << 40) | sequence, inserted
  // and erased in waves. Mirror against std::unordered_map.
  FlatMap64<uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  uint64_t next_id = 0;
  for (int wave = 0; wave < 100; wave++) {
    for (int i = 0; i < 200; i++) {
      uint64_t id = (uint64_t{3} << 40) | next_id++;
      m[id] = id * 2;
      ref[id] = id * 2;
    }
    // Erase most of the wave (responses settle), keep stragglers.
    for (auto it = ref.begin(); it != ref.end();) {
      if (it->first % 10 != 0) {
        EXPECT_TRUE(m.Erase(it->first));
        it = ref.erase(it);
      } else {
        ++it;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << "wave " << wave;
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    ASSERT_EQ(*m.Find(k), v);
  }
  size_t seen = 0;
  m.ForEach([&](uint64_t k, uint64_t& v) {
    ASSERT_EQ(ref.at(k), v);
    seen++;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST(FlatMapTest, NonTrivialValues) {
  FlatMap64<std::string> m;
  for (uint64_t i = 0; i < 100; i++) {
    m[i] = "value-" + std::to_string(i);
  }
  for (uint64_t i = 0; i < 100; i += 2) EXPECT_TRUE(m.Erase(i));
  for (uint64_t i = 1; i < 100; i += 2) {
    ASSERT_NE(m.Find(i), nullptr);
    EXPECT_EQ(*m.Find(i), "value-" + std::to_string(i));
  }
  m.Clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find(1), nullptr);
  m[5] = "after-clear";
  EXPECT_EQ(*m.Find(5), "after-clear");
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  FlatMap64<int> m;
  m.Reserve(1000);
  size_t cap = m.capacity();
  for (uint64_t i = 0; i < 1000; i++) m[i] = static_cast<int>(i);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMapTest, MoveTransfersTable) {
  FlatMap64<int> a;
  a[1] = 10;
  a[2] = 20;
  FlatMap64<int> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(*b.Find(2), 20);
  FlatMap64<int> c;
  c[9] = 90;
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Find(9), nullptr);
}

TEST(FlatMapTest, ZeroKeyIsOrdinary) {
  FlatMap64<int> m;
  m[0] = 123;
  ASSERT_NE(m.Find(0), nullptr);
  EXPECT_EQ(*m.Find(0), 123);
  EXPECT_TRUE(m.Erase(0));
  EXPECT_EQ(m.Find(0), nullptr);
}

}  // namespace
}  // namespace abase
