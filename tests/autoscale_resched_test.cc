// Tests for the predictive autoscaler (Algorithm 1) and the
// multi-resource rescheduler (Algorithm 2).
#include <gtest/gtest.h>

#include <cmath>

#include "autoscale/autoscaler.h"
#include "common/rng.h"
#include "resched/pool_model.h"
#include "resched/rescheduler.h"
#include "sim/workload.h"

namespace abase {
namespace {

// ------------------------------------------------------------- Autoscaler --

TimeSeries RisingDailySeries(double start, double per_day,
                             size_t hours = 30 * 24) {
  sim::SeriesSpec spec;
  spec.hours = hours;
  spec.base = start;
  spec.trend_per_day = per_day;
  spec.seasons.push_back({24, start * 0.1});
  spec.noise_sigma = start * 0.01;
  Rng rng(31);
  return sim::GenerateSeries(spec, rng);
}

TEST(AutoscalerTest, ScalesUpWhenForecastExceedsUpperThreshold) {
  autoscale::Autoscaler scaler;
  // Usage climbing through the 10000 quota: ~12500 by day 30, +250/day.
  TimeSeries usage = RisingDailySeries(5000, 250);
  auto d = scaler.Decide(usage, TimeSeries(), /*current_quota=*/10000,
                         /*num_partitions=*/8, /*upper=*/1e9, /*lower=*/0,
                         /*last_scale_down=*/-1, /*now=*/0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().action, autoscale::ScalingDecision::Action::kScaleUp);
  // New quota sized so forecast sits at the 0.65 target.
  EXPECT_NEAR(d.value().new_quota, d.value().forecast_max / 0.65, 1.0);
  EXPECT_GT(d.value().new_quota, 10000);
}

TEST(AutoscalerTest, StaysPutInsideBand) {
  autoscale::Autoscaler scaler;
  TimeSeries usage = RisingDailySeries(7500, 0);  // ~75% of quota: in band.
  auto d = scaler.Decide(usage, TimeSeries(), 10000, 8, 1e9, 0, -1, 0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().action, autoscale::ScalingDecision::Action::kNone);
  EXPECT_DOUBLE_EQ(d.value().new_quota, 10000);
}

TEST(AutoscalerTest, ScaleDownRequiresCooldown) {
  autoscale::Autoscaler scaler;
  TimeSeries usage = RisingDailySeries(2000, 0);  // 20% of quota.
  // Scaled down 1 day ago: cooldown (7d) blocks.
  auto blocked = scaler.Decide(usage, TimeSeries(), 10000, 8, 1e9, 0,
                               /*last_scale_down=*/9 * kMicrosPerDay,
                               /*now=*/10 * kMicrosPerDay);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked.value().action,
            autoscale::ScalingDecision::Action::kNone);
  // 8 days since the last down-scale: allowed.
  auto allowed = scaler.Decide(usage, TimeSeries(), 10000, 8, 1e9, 0,
                               /*last_scale_down=*/1 * kMicrosPerDay,
                               /*now=*/10 * kMicrosPerDay);
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed.value().action,
            autoscale::ScalingDecision::Action::kScaleDown);
  EXPECT_LT(allowed.value().new_quota, 10000);
}

TEST(AutoscalerTest, ScaleDownRespectsPartitionQuotaFloor) {
  autoscale::Autoscaler scaler;
  TimeSeries usage = RisingDailySeries(100, 0);  // Tiny usage.
  auto d = scaler.Decide(usage, TimeSeries(), 10000, 8, 1e9,
                         /*lower=*/500, -1, 0);
  ASSERT_TRUE(d.ok());
  // Floor: 500 x 8 partitions = 4000 even though usage warrants less.
  EXPECT_EQ(d.value().action, autoscale::ScalingDecision::Action::kScaleDown);
  EXPECT_DOUBLE_EQ(d.value().new_quota, 4000);
}

TEST(AutoscalerTest, SplitFlaggedWhenPartitionQuotaExceedsUpperBound) {
  autoscale::Autoscaler scaler;
  TimeSeries usage = RisingDailySeries(40000, 1500);
  auto d = scaler.Decide(usage, TimeSeries(), 50000, 4, /*upper=*/15000, 0,
                         -1, 0);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().action, autoscale::ScalingDecision::Action::kScaleUp);
  EXPECT_TRUE(d.value().partition_split);
}

TEST(AutoscalerTest, BadInputsRejected) {
  autoscale::Autoscaler scaler;
  TimeSeries usage = RisingDailySeries(100, 0);
  EXPECT_FALSE(scaler.Decide(usage, TimeSeries(), 0, 4, 1, 0, -1, 0).ok());
  EXPECT_FALSE(
      scaler.Decide(usage, TimeSeries(), 1000, 0, 1, 0, -1, 0).ok());
  EXPECT_FALSE(scaler
                   .Decide(TimeSeries({1, 2, 3}), TimeSeries(), 1000, 4, 1,
                           0, -1, 0)
                   .ok());
}

TEST(ReactiveScalerTest, OnlyReactsAfterThreshold) {
  autoscale::ReactiveScaler reactive;
  auto none = reactive.Decide(800, 1000);
  EXPECT_EQ(none.action, autoscale::ScalingDecision::Action::kNone);
  auto up = reactive.Decide(950, 1000);
  EXPECT_EQ(up.action, autoscale::ScalingDecision::Action::kScaleUp);
  EXPECT_NEAR(up.new_quota, 950 / 0.65, 1e-6);
}

// ------------------------------------------------------------- PoolModel --

resched::ReplicaLoad MakeReplica(TenantId t, PartitionId p, uint32_t idx,
                                 double ru, double storage) {
  resched::ReplicaLoad r;
  r.tenant = t;
  r.partition = p;
  r.replica_index = idx;
  r.ru = LoadVector::Constant(ru);
  r.storage = LoadVector::Constant(storage);
  return r;
}

TEST(PoolModelTest, LoadAggregation) {
  resched::NodeModel n(1, 1000, 10000);
  n.AddReplica(MakeReplica(1, 0, 0, 100, 2000));
  n.AddReplica(MakeReplica(2, 0, 0, 300, 1000));
  EXPECT_DOUBLE_EQ(n.Load(resched::Resource::kRu), 400);
  EXPECT_DOUBLE_EQ(n.Utilization(resched::Resource::kRu), 0.4);
  EXPECT_DOUBLE_EQ(n.Utilization(resched::Resource::kStorage), 0.3);
}

TEST(PoolModelTest, HypotheticalAddRemove) {
  resched::NodeModel n(1, 1000, 10000);
  n.AddReplica(MakeReplica(1, 0, 0, 100, 2000));
  auto extra = MakeReplica(2, 1, 0, 200, 3000);
  EXPECT_DOUBLE_EQ(n.UtilizationWith(resched::Resource::kRu, extra), 0.3);
  EXPECT_DOUBLE_EQ(n.Utilization(resched::Resource::kRu), 0.1);  // Unchanged.
  auto first = MakeReplica(1, 0, 0, 100, 2000);
  EXPECT_DOUBLE_EQ(n.UtilizationWithout(resched::Resource::kRu, first), 0.0);
}

TEST(PoolModelTest, RemoveReplicaReturnsLoad) {
  resched::NodeModel n(1, 1000, 10000);
  n.AddReplica(MakeReplica(1, 0, 0, 100, 2000));
  auto removed = n.RemoveReplica(1, 0, 0);
  ASSERT_TRUE(removed.ok());
  EXPECT_DOUBLE_EQ(n.Load(resched::Resource::kRu), 0);
  EXPECT_TRUE(n.RemoveReplica(1, 0, 0).status().IsNotFound());
}

TEST(PoolModelTest, OptimalLoadIsPoolAverage) {
  resched::PoolModel pool;
  pool.AddNode(1, 1000, 10000).AddReplica(MakeReplica(1, 0, 0, 800, 1000));
  pool.AddNode(2, 1000, 10000).AddReplica(MakeReplica(1, 1, 0, 200, 1000));
  EXPECT_DOUBLE_EQ(pool.OptimalLoad(resched::Resource::kRu), 0.5);
  EXPECT_DOUBLE_EQ(pool.MaxUtilization(resched::Resource::kRu), 0.8);
  EXPECT_DOUBLE_EQ(pool.MeanUtilization(resched::Resource::kRu), 0.5);
  EXPECT_GT(pool.UtilizationStddev(resched::Resource::kRu), 0.0);
}

TEST(PoolModelTest, DivisionBuckets) {
  resched::PoolModel pool;
  pool.AddNode(1, 1000, 1e9).AddReplica(MakeReplica(1, 0, 0, 900, 1));
  pool.AddNode(2, 1000, 1e9).AddReplica(MakeReplica(1, 1, 0, 500, 1));
  pool.AddNode(3, 1000, 1e9).AddReplica(MakeReplica(1, 2, 0, 100, 1));
  // Optimal RU = 0.5; theta 0.05: node1 (0.9) high, node2 (0.5) medium,
  // node3 (0.1) low.
  auto div = DivideNodes(pool, resched::Resource::kRu, 0.05);
  ASSERT_EQ(div.high.size(), 1u);
  EXPECT_EQ(div.high[0], 1u);
  ASSERT_EQ(div.medium.size(), 1u);
  EXPECT_EQ(div.medium[0], 2u);
  ASSERT_EQ(div.low.size(), 1u);
  EXPECT_EQ(div.low[0], 3u);
}

// ------------------------------------------------------------ Rescheduler --

TEST(ReschedulerTest, SingleMigrationReducesImbalance) {
  resched::PoolModel pool;
  auto& hot = pool.AddNode(1, 1000, 1e9);
  hot.AddReplica(MakeReplica(1, 0, 0, 400, 10));
  hot.AddReplica(MakeReplica(1, 1, 0, 400, 10));
  pool.AddNode(2, 1000, 1e9);  // Empty cold node.

  resched::IntraPoolRescheduler rescheduler;
  auto moves = rescheduler.Run(&pool);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 1u);
  EXPECT_EQ(moves[0].to, 2u);
  EXPECT_GT(moves[0].gain, 0.0);
  EXPECT_DOUBLE_EQ(pool.MaxUtilization(resched::Resource::kRu), 0.4);
}

TEST(ReschedulerTest, NeverColocatesSamePartition) {
  resched::PoolModel pool;
  auto& hot = pool.AddNode(1, 1000, 1e9);
  hot.AddReplica(MakeReplica(1, 0, 0, 900, 10));
  auto& cold = pool.AddNode(2, 1000, 1e9);
  cold.AddReplica(MakeReplica(1, 0, 1, 10, 10));  // Same partition!
  resched::IntraPoolRescheduler rescheduler;
  auto moves = rescheduler.Run(&pool);
  EXPECT_TRUE(moves.empty());  // Only destination already hosts partition 0.
}

TEST(ReschedulerTest, BalancedPoolIsStable) {
  resched::PoolModel pool;
  for (NodeId i = 1; i <= 4; i++) {
    pool.AddNode(i, 1000, 1e9)
        .AddReplica(MakeReplica(1, i, 0, 500, 100));
  }
  resched::IntraPoolRescheduler rescheduler;
  EXPECT_TRUE(rescheduler.Run(&pool).empty());
}

TEST(ReschedulerTest, ConvergenceReducesStddevSubstantially) {
  // Synthetic diverse pool: RU-heavy, storage-heavy and mixed replicas on
  // random nodes (a miniature Figure 9).
  resched::PoolModel pool;
  const int kNodes = 40;
  for (NodeId i = 0; i < kNodes; i++) pool.AddNode(i, 10000, 1e9);
  Rng rng(77);
  uint32_t pid = 0;
  for (int r = 0; r < 300; r++) {
    NodeId target = static_cast<NodeId>(rng.NextUint64(kNodes / 4));
    double ru = rng.NextLogNormal(std::log(200), 1.0);
    double sto = rng.NextLogNormal(std::log(1e7), 1.2);
    pool.nodes()[target].AddReplica(
        MakeReplica(1 + (pid % 10), pid, 0, ru, sto));
    pid++;
  }
  double ru_before = pool.UtilizationStddev(resched::Resource::kRu);
  double sto_before = pool.UtilizationStddev(resched::Resource::kStorage);

  resched::IntraPoolRescheduler rescheduler;
  auto moves = rescheduler.RunToConvergence(&pool);
  EXPECT_FALSE(moves.empty());

  double ru_after = pool.UtilizationStddev(resched::Resource::kRu);
  double sto_after = pool.UtilizationStddev(resched::Resource::kStorage);
  // The paper reports ~74.5% / 84.8% reductions at 1000-node scale; even a
  // small pool must cut both dimensions sharply.
  EXPECT_LT(ru_after, ru_before * 0.5);
  EXPECT_LT(sto_after, sto_before * 0.6);
  // Replica count preserved.
  EXPECT_EQ(pool.TotalReplicaCount(), 300u);
}

TEST(ReschedulerTest, BalanceReplicaCountsPhase) {
  resched::PoolModel pool;
  auto& crowded = pool.AddNode(1, 1e9, 1e9);
  for (uint32_t p = 0; p < 6; p++) {
    crowded.AddReplica(MakeReplica(7, p, 0, 10, 10));
  }
  pool.AddNode(2, 1e9, 1e9);
  pool.AddNode(3, 1e9, 1e9);
  resched::IntraPoolRescheduler rescheduler;
  auto moves = rescheduler.BalanceReplicaCounts(&pool);
  EXPECT_FALSE(moves.empty());
  // Tenant 7's replicas spread: no node holds more than fair+slack.
  for (const auto& n : pool.nodes()) {
    EXPECT_LE(n.ReplicaCountOfTenant(7), 3u);
  }
  EXPECT_EQ(pool.TenantReplicaCount(7), 6u);
}

TEST(InterPoolTest, MovesNodeFromColdToHotPool) {
  resched::PoolModel donor, receiver;
  // Donor: 4 nearly-idle nodes.
  for (NodeId i = 0; i < 4; i++) {
    donor.AddNode(i, 1000, 1e9)
        .AddReplica(MakeReplica(1, i, 0, 50, 100));
  }
  // Receiver: 2 hot nodes.
  for (NodeId i = 10; i < 12; i++) {
    auto& n = receiver.AddNode(i, 1000, 1e9);
    n.AddReplica(MakeReplica(2, i, 0, 700, 100));
    n.AddReplica(MakeReplica(2, i + 10, 0, 200, 100));
  }
  resched::InterPoolRescheduler inter;
  auto result = inter.Run(&donor, &receiver, 1);
  ASSERT_EQ(result.reassigned_nodes.size(), 1u);
  EXPECT_EQ(donor.nodes().size(), 3u);
  EXPECT_EQ(receiver.nodes().size(), 3u);
  // All donor replicas survived the vacate.
  EXPECT_EQ(donor.TotalReplicaCount(), 4u);
  // Receiver pressure relieved by rebalancing onto the new node.
  EXPECT_LT(receiver.MaxUtilization(resched::Resource::kRu), 0.9);
}

}  // namespace
}  // namespace abase
