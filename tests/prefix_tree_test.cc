// Tests for src/cache/prefix_tree_store: the prefix-tree proxy content
// store. Point-entry behavior must stay bit-compatible with AuLruCache
// (the goldens and cache benches depend on it); the tree adds cached
// scan results, covering-scan invalidation on writes, and O(subtree)
// prefix invalidation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/au_lru.h"
#include "cache/prefix_tree_store.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/scan_codec.h"

namespace abase {
namespace cache {
namespace {

AuLruOptions SmallOptions() {
  AuLruOptions o;
  o.capacity_bytes = 1024;
  o.default_ttl = 60 * kMicrosPerSecond;
  o.refresh_window = 10 * kMicrosPerSecond;
  o.refresh_min_hits = 2;
  return o;
}

// ------------------------------------------------- Point-entry parity --

// Randomized op stream applied to both caches; every observable of the
// AU-LRU contract must match (hits, misses, evictions, refresh
// requests, byte accounting, per-key membership).
TEST(PrefixTreeStoreTest, PointParityWithAuLru) {
  SimClock clock(0);
  AuLruOptions opts = SmallOptions();
  AuLruCache lru(opts, &clock);
  PrefixTreeStore tree(opts, &clock);
  Rng rng(99);

  std::vector<std::string> keys;
  for (int i = 0; i < 40; i++) keys.push_back("t7:k" + std::to_string(i));

  for (int step = 0; step < 4000; step++) {
    const std::string& key = keys[rng.NextUint64(keys.size())];
    double pick = rng.NextDouble();
    if (pick < 0.45) {
      std::string value(1 + rng.NextUint64(64), 'v');
      uint64_t charge = value.size() + key.size();
      EXPECT_EQ(lru.Put(key, value, charge),
                tree.Put(key, value, charge));
    } else if (pick < 0.9) {
      AuLookup a = lru.Get(key);
      AuLookup b = tree.Get(key);
      EXPECT_EQ(a.hit, b.hit) << key << " step " << step;
      EXPECT_EQ(a.needs_refresh, b.needs_refresh) << key;
      if (a.hit && b.hit) {
        EXPECT_EQ(*a.value, *b.value);
      }
    } else if (pick < 0.97) {
      EXPECT_EQ(lru.Erase(key), tree.Erase(key));
    } else {
      clock.Advance(rng.NextUint64(20) * kMicrosPerSecond);
    }
    if (step % 256 == 0) {
      EXPECT_EQ(lru.TakeRefreshQueue(), tree.TakeRefreshQueue());
    }
  }
  EXPECT_EQ(lru.used_bytes(), tree.used_bytes());
  EXPECT_EQ(lru.entry_count(), tree.entry_count());
  EXPECT_EQ(lru.stats().hits, tree.stats().hits);
  EXPECT_EQ(lru.stats().misses, tree.stats().misses);
  EXPECT_EQ(lru.stats().evictions, tree.stats().evictions);
  EXPECT_EQ(lru.refresh_requests(), tree.refresh_requests());
  for (const std::string& k : keys) {
    EXPECT_EQ(lru.Contains(k), tree.Contains(k)) << k;
  }
}

// ------------------------------------------------------- Scan results --

std::string FramedPayload(int entries) {
  std::string payload;
  for (int i = 0; i < entries; i++) {
    AppendScanEntry(payload, "t1:k" + std::to_string(i), "v");
  }
  return payload;
}

TEST(PrefixTreeStoreTest, ScanPutGetKeyedByPrefixAndLimit) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  std::string payload = FramedPayload(3);
  ASSERT_TRUE(tree.PutScan("t1:", 10, payload, payload.size() + 8));

  AuLookup hit = tree.GetScan("t1:", 10);
  ASSERT_TRUE(hit.hit);
  EXPECT_EQ(*hit.value, payload);
  EXPECT_FALSE(hit.needs_refresh);  // Scan payloads never refresh.

  // Same prefix, different limit = different cached object.
  EXPECT_FALSE(tree.GetScan("t1:", 5).hit);
  EXPECT_FALSE(tree.GetScan("t2:", 10).hit);
  EXPECT_EQ(tree.cached_scans(), 1u);
  EXPECT_EQ(tree.tree_stats().scan_hits, 1u);
  EXPECT_EQ(tree.tree_stats().scan_misses, 2u);
}

TEST(PrefixTreeStoreTest, ScanExpiresLikePointEntries) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  ASSERT_TRUE(tree.PutScan("t1:", 10, "x", 16, 5 * kMicrosPerSecond));
  EXPECT_TRUE(tree.GetScan("t1:", 10).hit);
  clock.Advance(6 * kMicrosPerSecond);
  EXPECT_FALSE(tree.GetScan("t1:", 10).hit);
  EXPECT_EQ(tree.cached_scans(), 0u);
}

// A write under a cached scan's prefix must drop that scan (its range
// now has a stale member) while unrelated scans survive.
TEST(PrefixTreeStoreTest, WriteDropsCoveringScans) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  ASSERT_TRUE(tree.PutScan("t1:", 10, "a", 16));
  ASSERT_TRUE(tree.PutScan("t1:g1:", 10, "b", 16));
  ASSERT_TRUE(tree.PutScan("t2:", 10, "c", 16));
  ASSERT_TRUE(tree.Put("t1:g1:k5", "v", 16));

  // The write-invalidation broadcast path.
  tree.EraseHashed(HashString("t1:g1:k5"), "t1:g1:k5");

  EXPECT_FALSE(tree.GetScan("t1:", 10).hit);     // Covers the key.
  EXPECT_FALSE(tree.GetScan("t1:g1:", 10).hit);  // Covers the key.
  EXPECT_TRUE(tree.GetScan("t2:", 10).hit);      // Unrelated.
  EXPECT_FALSE(tree.Contains("t1:g1:k5"));
  EXPECT_GE(tree.tree_stats().scans_dropped_by_write, 2u);
}

// ------------------------------------------------ Prefix invalidation --

TEST(PrefixTreeStoreTest, InvalidatePrefixDropsSubtreeAndCoveringScans) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  ASSERT_TRUE(tree.Put("t1:g1:k1", "v", 16));
  ASSERT_TRUE(tree.Put("t1:g1:k2", "v", 16));
  ASSERT_TRUE(tree.Put("t1:g2:k1", "v", 16));
  ASSERT_TRUE(tree.PutScan("t1:g1:", 10, "s", 16));
  ASSERT_TRUE(tree.PutScan("t1:", 10, "s", 16));   // Ancestor, covers g1.
  ASSERT_TRUE(tree.PutScan("t2:", 10, "s", 16));

  size_t dropped = tree.InvalidatePrefix("t1:g1:");
  EXPECT_EQ(dropped, 4u);  // k1, k2, scan(t1:g1:), covering scan(t1:).
  EXPECT_FALSE(tree.Contains("t1:g1:k1"));
  EXPECT_FALSE(tree.Contains("t1:g1:k2"));
  EXPECT_TRUE(tree.Contains("t1:g2:k1"));  // Sibling subtree intact.
  EXPECT_FALSE(tree.GetScan("t1:g1:", 10).hit);
  EXPECT_FALSE(tree.GetScan("t1:", 10).hit);
  EXPECT_TRUE(tree.GetScan("t2:", 10).hit);
  EXPECT_EQ(tree.tree_stats().prefix_invalidations, 1u);
}

TEST(PrefixTreeStoreTest, InvalidateScansKeepsPointEntries) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  ASSERT_TRUE(tree.Put("t1:k1", "v", 16));
  ASSERT_TRUE(tree.Put("t9:k1", "v", 16));
  ASSERT_TRUE(tree.PutScan("t1:", 10, "s", 16));
  ASSERT_TRUE(tree.PutScan("t9:", 25, "s", 16));

  EXPECT_EQ(tree.InvalidateScans(), 2u);
  EXPECT_EQ(tree.cached_scans(), 0u);
  EXPECT_TRUE(tree.Contains("t1:k1"));
  EXPECT_TRUE(tree.Contains("t9:k1"));
  EXPECT_FALSE(tree.GetScan("t1:", 10).hit);
  // Scans invalidated by a split cutover are not "evictions".
  EXPECT_EQ(tree.stats().evictions, 0u);
}

TEST(PrefixTreeStoreTest, ClearDropsEverything) {
  SimClock clock(0);
  PrefixTreeStore tree(SmallOptions(), &clock);
  ASSERT_TRUE(tree.Put("t1:k1", "v", 16));
  ASSERT_TRUE(tree.PutScan("t1:", 10, "s", 16));
  tree.Clear();
  EXPECT_EQ(tree.entry_count(), 0u);
  EXPECT_EQ(tree.cached_scans(), 0u);
  EXPECT_EQ(tree.used_bytes(), 0u);
  EXPECT_FALSE(tree.Contains("t1:k1"));
}

// --------------------------------------------------------- Eviction --

TEST(PrefixTreeStoreTest, ScansParticipateInLruEviction) {
  SimClock clock(0);
  AuLruOptions opts = SmallOptions();
  opts.capacity_bytes = 64;
  PrefixTreeStore tree(opts, &clock);
  ASSERT_TRUE(tree.PutScan("t1:", 10, "s", 32));
  ASSERT_TRUE(tree.Put("t1:k1", "v", 32));
  // Inserting past capacity evicts the LRU tail (the scan).
  ASSERT_TRUE(tree.Put("t1:k2", "v", 32));
  EXPECT_FALSE(tree.GetScan("t1:", 10).hit);
  EXPECT_TRUE(tree.Contains("t1:k1"));
  EXPECT_TRUE(tree.Contains("t1:k2"));
  EXPECT_GE(tree.stats().evictions, 1u);
  EXPECT_LE(tree.used_bytes(), 64u);
}

TEST(PrefixTreeStoreTest, SizeClassAccountingTracksResidents) {
  SimClock clock(0);
  AuLruOptions opts = SmallOptions();
  opts.capacity_bytes = 1 << 20;
  PrefixTreeStore tree(opts, &clock);
  ASSERT_TRUE(tree.Put("small", "v", 64));
  ASSERT_TRUE(tree.Put("large", "v", 4096));
  uint64_t total = 0;
  for (int c = 0; c < PrefixTreeStore::kNumClasses; c++) {
    total += tree.ClassBytes(c);
  }
  EXPECT_EQ(total, tree.used_bytes());
  tree.Erase("large");
  total = 0;
  for (int c = 0; c < PrefixTreeStore::kNumClasses; c++) {
    total += tree.ClassBytes(c);
  }
  EXPECT_EQ(total, tree.used_bytes());
}

}  // namespace
}  // namespace cache
}  // namespace abase
