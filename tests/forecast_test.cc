// Tests for the forecasting stack (Section 5.2): PSD, change points,
// denoising, ProphetLite, historical average, and the ensemble.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "forecast/changepoint.h"
#include "forecast/denoise.h"
#include "forecast/ensemble.h"
#include "forecast/historical_average.h"
#include "forecast/prophet_lite.h"
#include "forecast/psd.h"
#include "sim/workload.h"

namespace abase {
namespace forecast {
namespace {

TimeSeries DailySeries(size_t hours, double base = 100, double amp = 30,
                       double noise = 0, uint64_t seed = 1) {
  sim::SeriesSpec spec;
  spec.hours = hours;
  spec.base = base;
  spec.seasons.push_back({24, amp});
  spec.noise_sigma = noise;
  Rng rng(seed);
  return sim::GenerateSeries(spec, rng);
}

// -------------------------------------------------------------------- PSD --

TEST(PsdTest, DetectsDailyPeriod) {
  TimeSeries ts = DailySeries(14 * 24);
  double period = DetectDominantPeriod(ts);
  EXPECT_NEAR(period, 24.0, 1.5);
}

class PsdPeriodTest : public ::testing::TestWithParam<double> {};

TEST_P(PsdPeriodTest, DetectsArbitraryPeriods) {
  const double period_hours = GetParam();
  sim::SeriesSpec spec;
  spec.hours = 30 * 24;
  spec.base = 100;
  spec.seasons.push_back({period_hours, 40});
  Rng rng(2);
  TimeSeries ts = sim::GenerateSeries(spec, rng);
  double detected = DetectDominantPeriod(ts);
  // DFT frequency resolution limits precision; allow ~10%.
  EXPECT_NEAR(detected, period_hours, period_hours * 0.1);
}

// Includes the paper's odd 3.5-day (84h) TTL-induced period.
INSTANTIATE_TEST_SUITE_P(Periods, PsdPeriodTest,
                         ::testing::Values(12.0, 24.0, 84.0, 168.0));

TEST(PsdTest, AperiodicSeriesDetectsNothing) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 300; i++) v.push_back(rng.NextGaussian(100, 5));
  EXPECT_DOUBLE_EQ(DetectDominantPeriod(TimeSeries(v)), 0.0);
  EXPECT_FALSE(HasPeriodicity(TimeSeries(v)));
}

TEST(PsdTest, ShortSeriesReturnsEmpty) {
  EXPECT_TRUE(Periodogram(TimeSeries({1, 2, 3})).empty());
}

// ------------------------------------------------------------ ChangePoint --

TEST(ChangePointTest, DetectsMeanShift) {
  std::vector<double> v(200, 100.0);
  for (size_t i = 100; i < 200; i++) v[i] = 300.0;
  auto points = DetectChangePoints(TimeSeries(v));
  ASSERT_FALSE(points.empty());
  EXPECT_NEAR(static_cast<double>(points[0]), 100.0, 3.0);
}

TEST(ChangePointTest, StableSeriesHasNone) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 200; i++) v.push_back(rng.NextGaussian(100, 2));
  EXPECT_TRUE(DetectChangePoints(TimeSeries(v)).empty());
  EXPECT_EQ(LastChangePoint(TimeSeries(v)), 0u);
}

TEST(ChangePointTest, MultipleShiftsFound) {
  std::vector<double> v(300);
  for (size_t i = 0; i < 100; i++) v[i] = 50;
  for (size_t i = 100; i < 200; i++) v[i] = 150;
  for (size_t i = 200; i < 300; i++) v[i] = 400;
  auto points = DetectChangePoints(TimeSeries(v));
  EXPECT_GE(points.size(), 2u);
  EXPECT_EQ(LastChangePoint(TimeSeries(v)), points.back());
}

// ---------------------------------------------------------------- Denoise --

TEST(DenoiseTest, SimultaneousSpikesRemoved) {
  std::vector<double> usage(200, 100.0), quota(200, 1000.0);
  usage[50] = 900.0;  // Usage + quota spike together: recording artifact.
  quota[50] = 9000.0;
  TimeSeries cleaned = RemoveSimultaneousSpikes(TimeSeries(usage),
                                                TimeSeries(quota));
  EXPECT_LT(cleaned[50], 200.0);
}

TEST(DenoiseTest, UsageOnlySpikeKept) {
  std::vector<double> usage(200, 100.0), quota(200, 1000.0);
  usage[50] = 900.0;  // Genuine traffic spike: quota stays flat.
  TimeSeries cleaned = RemoveSimultaneousSpikes(TimeSeries(usage),
                                                TimeSeries(quota));
  EXPECT_DOUBLE_EQ(cleaned[50], 900.0);
}

TEST(DenoiseTest, SporadicPeakClipped) {
  std::vector<double> usage(500, 100.0);
  usage[250] = 2000.0;  // One isolated ad-hoc event.
  TimeSeries cleaned = RemoveSporadicPeaks(TimeSeries(usage));
  EXPECT_LT(cleaned[250], 500.0);
}

TEST(DenoiseTest, RecurringPeaksPreserved) {
  std::vector<double> usage(500, 100.0);
  // Daily peak at hour 10 of each day — recurring, must survive.
  for (size_t day = 0; day < 20; day++) {
    size_t at = day * 24 + 10;
    if (at < usage.size()) usage[at] = 1000.0;
  }
  TimeSeries cleaned = RemoveSporadicPeaks(TimeSeries(usage));
  EXPECT_DOUBLE_EQ(cleaned[10 + 24 * 5], 1000.0);
}

// ------------------------------------------------------------ ProphetLite --

TEST(ProphetLiteTest, FitsTrendPlusSeason) {
  sim::SeriesSpec spec;
  spec.hours = 21 * 24;
  spec.base = 500;
  spec.trend_per_day = 10;
  spec.seasons.push_back({24, 100});
  spec.noise_sigma = 5;
  Rng rng(5);
  TimeSeries history = sim::GenerateSeries(spec, rng);

  auto fit = ProphetLite::Fit(history);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().period_samples(), 24.0, 2.0);

  TimeSeries pred = fit.value().Forecast(48);
  // The forecast must continue the trend: mean of next 2 days close to
  // base + trend*22 days.
  double expected = 500 + 10 * 21.5;
  EXPECT_NEAR(pred.Mean(), expected, expected * 0.1);
  // And preserve the diurnal swing.
  EXPECT_GT(pred.Max() - pred.Min(), 100);
}

TEST(ProphetLiteTest, ShortHistoryRejected) {
  EXPECT_FALSE(ProphetLite::Fit(TimeSeries({1, 2, 3})).ok());
}

TEST(ProphetLiteTest, InSampleFitIsTight) {
  TimeSeries history = DailySeries(14 * 24, 200, 50, 2);
  auto fit = ProphetLite::Fit(history);
  ASSERT_TRUE(fit.ok());
  TimeSeries fitted = fit.value().FittedValues();
  double mae = 0;
  for (size_t i = 0; i < history.size(); i++) {
    mae += std::fabs(fitted[i] - history[i]);
  }
  mae /= static_cast<double>(history.size());
  EXPECT_LT(mae, 15.0);
}

TEST(ProphetLiteTest, AdaptsToTrendChangeViaChangepoints) {
  // Flat then rising: the piecewise trend must bend upward.
  std::vector<double> v;
  for (int i = 0; i < 300; i++) v.push_back(100);
  for (int i = 0; i < 200; i++) v.push_back(100 + i * 2.0);
  auto fit = ProphetLite::Fit(TimeSeries(v));
  ASSERT_TRUE(fit.ok());
  TimeSeries pred = fit.value().Forecast(50);
  EXPECT_GT(pred.Mean(), 400.0);  // Continues the late trend, not the flat.
}

// ------------------------------------------------------ HistoricalAverage --

TEST(HistoricalAverageTest, ReproducesSeasonalShape) {
  TimeSeries history = DailySeries(14 * 24, 100, 40, 0);
  HistoricalAverage model(history, 24);
  TimeSeries pred = model.Forecast(24);
  // The prediction's daily profile matches the history's final day.
  TimeSeries last_day = history.Tail(24);
  for (size_t h = 0; h < 24; h++) {
    EXPECT_NEAR(pred[h], last_day[h], 5.0) << "hour " << h;
  }
}

TEST(HistoricalAverageTest, AperiodicFallsBackToMean) {
  TimeSeries history(std::vector<double>(100, 42.0));
  HistoricalAverage model(history, 0);
  TimeSeries pred = model.Forecast(10);
  for (size_t i = 0; i < pred.size(); i++) EXPECT_NEAR(pred[i], 42.0, 1e-9);
}

// ----------------------------------------------------------------- Ensemble --

TEST(EnsembleTest, ForecastsPeriodicSeries) {
  TimeSeries usage = DailySeries(30 * 24, 1000, 300, 20, 7);
  auto fc = EnsembleForecast(usage, TimeSeries(), 7 * 24);
  ASSERT_TRUE(fc.ok());
  const ForecastResult& r = fc.value();
  EXPECT_NEAR(r.detected_period, 24.0, 2.0);
  // Max of the next week close to historical max.
  EXPECT_NEAR(r.predicted_max, usage.Max(), usage.Max() * 0.15);
  EXPECT_NEAR(r.prophet_weight + r.historical_weight, 1.0, 1e-9);
}

TEST(EnsembleTest, ShortHistoryRejected) {
  EXPECT_FALSE(EnsembleForecast(TimeSeries({1, 2}), TimeSeries(), 10).ok());
}

TEST(EnsembleTest, BurstFallbackTriggersOnNonPeriodicPeaks) {
  // Issue 3: daily peaks at varying hours with high amplitude relative to
  // the base — models underpredict, so the recent-history fallback kicks
  // in and keeps predicted_max near the observed peaks.
  sim::SeriesSpec spec;
  spec.hours = 30 * 24;
  spec.base = 100;
  spec.noise_sigma = 5;
  Rng rng(8);
  for (size_t day = 0; day < 30; day++) {
    spec.bursts.push_back(
        {day * 24 + 6 + rng.NextUint64(12), 2, 900.0});
  }
  Rng rng2(9);
  TimeSeries usage = sim::GenerateSeries(spec, rng2);
  auto fc = EnsembleForecast(usage, TimeSeries(), 7 * 24);
  ASSERT_TRUE(fc.ok());
  EXPECT_GE(fc.value().predicted_max, 700.0);
}

TEST(EnsembleTest, TrendShiftTruncatesHistory) {
  sim::SeriesSpec spec;
  spec.hours = 30 * 24;
  spec.base = 100;
  spec.seasons.push_back({24, 20});
  spec.level_shift_at_hour = 20 * 24;
  spec.level_shift_factor = 4.0;  // Business change: 4x traffic.
  Rng rng(10);
  TimeSeries usage = sim::GenerateSeries(spec, rng);
  auto fc = EnsembleForecast(usage, TimeSeries(), 7 * 24);
  ASSERT_TRUE(fc.ok());
  EXPECT_GT(fc.value().truncated_at, 0u);
  // Forecast reflects the post-shift level, not the 30-day blend.
  EXPECT_GT(fc.value().prediction.Mean(), 250.0);
}

TEST(EnsembleTest, DenoisesSimultaneousSpikesBeforeForecasting) {
  TimeSeries usage = DailySeries(30 * 24, 100, 20, 2, 11);
  std::vector<double> quota(usage.size(), 1000.0);
  // Inject a recording artifact into both series.
  usage[400] = 5000;
  quota[400] = 50000;
  auto fc = EnsembleForecast(usage, TimeSeries(quota), 7 * 24);
  ASSERT_TRUE(fc.ok());
  // The artifact must not inflate the forecast max.
  EXPECT_LT(fc.value().predicted_max, 500.0);
}

}  // namespace
}  // namespace forecast
}  // namespace abase
