// Cluster-level integration tests: failure recovery under traffic, live
// autoscaling with partition split, rescheduling under load, hot-key
// absorption, and cross-tenant isolation invariants.
#include <gtest/gtest.h>

#include "core/abase.h"
#include "resched/rescheduler.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

meta::TenantConfig Tenant(TenantId id, double quota = 50000,
                          uint32_t partitions = 4, int replicas = 3) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "it-tenant" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = partitions;
  c.num_proxies = 4;
  c.num_proxy_groups = 2;
  c.replicas = replicas;
  return c;
}

TEST(IntegrationTest, NodeFailureRecoversAndServiceContinues) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(6);
  ASSERT_TRUE(cluster.AddTenant(Tenant(1), pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 800;
  p.read_ratio = 0.5;
  p.num_keys = 2000;
  cluster.SetWorkload(1, p);
  cluster.RunTicks(10);

  // Kill the node hosting partition 0's primary.
  NodeId victim = cluster.meta().PrimaryFor(1, 0);
  ASSERT_NE(victim, kInvalidNode);
  auto report = cluster.meta().FailNode(pool, victim);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().replicas_rebuilt, 0u);

  // Traffic keeps flowing to the re-elected primaries.
  cluster.RunTicks(10);
  const auto& h = cluster.History(1);
  uint64_t ok_after = 0, issued_after = 0;
  for (size_t i = h.size() - 5; i < h.size(); i++) {
    ok_after += h[i].ok;
    issued_after += h[i].issued;
  }
  EXPECT_GT(issued_after, 0u);
  EXPECT_GT(static_cast<double>(ok_after) /
                static_cast<double>(issued_after),
            0.9);
}

TEST(IntegrationTest, LiveAutoscaleWithSplitKeepsServing) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(8);
  meta::TenantConfig cfg = Tenant(1, /*quota=*/8000, /*partitions=*/2);
  cfg.partition_quota_upper = 10000;  // Split when QP exceeds this.
  ASSERT_TRUE(cluster.CreateTenant(cfg, pool).ok());

  // Grow the quota far enough to force repeated splits.
  ASSERT_TRUE(cluster.meta().SetTenantQuota(1, 100000).ok());
  const meta::TenantMeta* t = cluster.meta().GetTenant(1);
  EXPECT_GE(t->partitions.size(), 16u);  // 100000/10000 -> >=10 -> 16.
  EXPECT_LE(t->PartitionQuota(), 10000.0);

  // The enlarged tenant still serves reads and writes.
  Client client = cluster.OpenClient(1);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(
        client.Set("post-split:" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 20; i++) {
    EXPECT_TRUE(client.Get("post-split:" + std::to_string(i)).ok()) << i;
  }
}

TEST(IntegrationTest, ReschedulingMovesLoadOffHotNodes) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(6);
  // Two heavy tenants and one light one.
  for (TenantId id = 1; id <= 3; id++) {
    ASSERT_TRUE(cluster.AddTenant(Tenant(id, 100000, 6), pool).ok());
    sim::WorkloadProfile p;
    p.base_qps = id == 3 ? 200 : 3000;
    p.read_ratio = 0.4;
    p.zipf_theta = 0.98;
    p.num_keys = 2000;
    cluster.SetWorkload(id, p);
  }
  cluster.RunTicks(12);

  resched::IntraPoolRescheduler rescheduler;
  size_t applied = 0;
  for (int round = 0; round < 5; round++) {
    resched::PoolModel model = cluster.BuildPoolModel(pool);
    for (const auto& outcome :
         cluster.ApplyMigrations(rescheduler.Run(&model))) {
      if (outcome.status.ok()) applied++;
    }
    cluster.RunTicks(5);
  }
  // Service must remain healthy through the migrations.
  for (TenantId id = 1; id <= 3; id++) {
    const auto& h = cluster.History(id);
    uint64_t ok = 0, issued = 0;
    for (size_t i = h.size() - 5; i < h.size(); i++) {
      ok += h[i].ok;
      issued += h[i].issued;
    }
    EXPECT_GT(static_cast<double>(ok) / std::max<uint64_t>(1, issued), 0.9)
        << "tenant " << id;
  }
}

TEST(IntegrationTest, HotKeySurgeAbsorbedByProxyLayer) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(3);
  ASSERT_TRUE(cluster.AddTenant(Tenant(1, 200000), pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 2000;
  p.read_ratio = 1.0;  // Pure serving traffic; the dataset pre-exists.
  p.num_keys = 10000;
  p.key_dist = sim::KeyDist::kHotSpot;
  p.hot_fraction = 0.0005;  // 5 hot keys.
  p.hot_share = 0.9;
  cluster.SetWorkload(1, p);
  cluster.PreloadKeys(1, 10000, 512);

  cluster.RunTicks(40);
  const auto& h = cluster.History(1);
  uint64_t proxy_hits = 0, reads = 0;
  for (size_t i = 20; i < h.size(); i++) {
    proxy_hits += h[i].proxy_hits;
    reads += h[i].proxy_hits + h[i].reads_completed;
  }
  // The proxy layer must absorb the bulk of the hot-key reads.
  EXPECT_GT(static_cast<double>(proxy_hits) / static_cast<double>(reads),
            0.5);
}

TEST(IntegrationTest, NoisyNeighborDoesNotDegradeVictims) {
  sim::SimOptions opts;
  opts.node.wfq.cpu_budget_ru = 20000;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(2);
  for (TenantId id = 1; id <= 2; id++) {
    meta::TenantConfig cfg = Tenant(id, 6000, 4, 2);
    ASSERT_TRUE(cluster.AddTenant(cfg, pool).ok());
    sim::WorkloadProfile p;
    p.base_qps = 1000;
    p.read_ratio = 0.9;
    p.num_keys = 3000;
    if (id == 1) {
      p.bursts.push_back(
          {20 * kMicrosPerSecond, 60 * kMicrosPerSecond, 40.0});
    }
    cluster.SetWorkload(id, p);
  }
  cluster.RunTicks(60);

  // Victim throughput and latency in the burst window stay healthy.
  const auto& h2 = cluster.History(2);
  uint64_t ok = 0;
  double lat_sum = 0, lat_n = 0;
  for (size_t i = 40; i < 60; i++) {
    ok += h2[i].ok;
    lat_sum += h2[i].latency_sum;
    lat_n += static_cast<double>(h2[i].latency_count);
  }
  EXPECT_GT(ok / 20.0, 900.0);                 // >= 90% of demand.
  EXPECT_LT(lat_sum / std::max(1.0, lat_n), 50000.0);  // Under 50 ms.
}

TEST(IntegrationTest, InterPoolRebalanceOnLiveModels) {
  // Donor pool nearly idle, receiver hot: the inter-pool rescheduler
  // hands a node over and both converge.
  resched::PoolModel donor, receiver;
  for (NodeId i = 0; i < 6; i++) {
    auto& n = donor.AddNode(i, 1000, 1e12);
    resched::ReplicaLoad r;
    r.tenant = 1;
    r.partition = i;
    r.ru = LoadVector::Constant(40);
    r.storage = LoadVector::Constant(1e8);
    n.AddReplica(r);
  }
  // Mixed replica sizes so the post-move packing can genuinely improve.
  double sizes[3] = {500, 250, 150};
  for (NodeId i = 10; i < 12; i++) {
    auto& n = receiver.AddNode(i, 1000, 1e12);
    for (int k = 0; k < 3; k++) {
      resched::ReplicaLoad r;
      r.tenant = 2;
      r.partition = i * 10 + static_cast<uint32_t>(k);
      r.ru = LoadVector::Constant(sizes[k]);
      r.storage = LoadVector::Constant(2e8);
      n.AddReplica(r);
    }
  }
  double before = receiver.MaxUtilization(resched::Resource::kRu);
  EXPECT_NEAR(before, 0.9, 1e-9);
  resched::InterPoolRescheduler inter;
  auto result = inter.Run(&donor, &receiver, 2);
  EXPECT_FALSE(result.reassigned_nodes.empty());
  EXPECT_LT(receiver.MaxUtilization(resched::Resource::kRu), 0.8);
  // No replica lost across the shuffle.
  EXPECT_EQ(donor.TotalReplicaCount() + receiver.TotalReplicaCount(), 12u);
}

TEST(IntegrationTest, MetaClampLoopEngagesUnderSustainedOverdrive) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(3);
  ASSERT_TRUE(cluster.AddTenant(Tenant(1, /*quota=*/3000), pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 20000;  // Far beyond quota.
  p.read_ratio = 0.2;
  p.num_keys = 100000;
  p.key_dist = sim::KeyDist::kUniform;
  cluster.SetWorkload(1, p);

  // The clamp is an asynchronous control loop: it engages when measured
  // traffic exceeds quota and releases as traffic subsides, so sample it
  // across the run rather than at one instant.
  bool ever_clamped = false;
  for (int t = 0; t < 30; t++) {
    cluster.Tick();
    ever_clamped = ever_clamped || cluster.meta().IsClamped(1);
  }
  EXPECT_TRUE(ever_clamped);
  // And sustained success stays in the ballpark of the tenant quota
  // (1 RU writes dominate; r=3 fan-out makes each ~3 RU).
  const auto& h = cluster.History(1);
  uint64_t ok = 0;
  for (size_t i = 20; i < 30; i++) ok += h[i].ok;
  EXPECT_LT(ok / 10.0, 6000.0);
}

}  // namespace
}  // namespace abase
