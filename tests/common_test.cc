// Tests for src/common: Status/Result, clocks, RNG distributions,
// histograms, moving averages, time series, linear algebra, hashing.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/math_util.h"
#include "common/moving_average.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_series.h"
#include "common/types.h"

namespace abase {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, ThrottledPredicates) {
  EXPECT_TRUE(Status::Throttled().IsThrottled());
  EXPECT_FALSE(Status::Throttled().IsNotFound());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Throttled());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kInvalidArgument,
        StatusCode::kThrottled, StatusCode::kResourceExhausted,
        StatusCode::kUnavailable, StatusCode::kCorruption,
        StatusCode::kNotSupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ----------------------------------------------------------------- Clock --

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(kMicrosPerSecond);
  EXPECT_EQ(clock.NowMicros(), kMicrosPerSecond);
  clock.AdvanceSeconds(0.5);
  EXPECT_EQ(clock.NowMicros(), kMicrosPerSecond + kMicrosPerSecond / 2);
}

TEST(SimClockTest, NegativeAdvanceIgnored) {
  SimClock clock(100);
  clock.Advance(-50);
  EXPECT_EQ(clock.NowMicros(), 100);
}

TEST(SimClockTest, SetTimeOnlyMovesForward) {
  SimClock clock(1000);
  clock.SetTime(500);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.SetTime(2000);
  EXPECT_EQ(clock.NowMicros(), 2000);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    uint64_t u = rng.NextUint64(10);
    EXPECT_LT(u, 10u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 20000; i++) stats.Add(rng.NextGaussian(10, 3));
  EXPECT_NEAR(stats.mean(), 10.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.15);
}

TEST(RngTest, PoissonMean) {
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 20000; i++) {
    stats.Add(static_cast<double>(rng.NextPoisson(25)));
  }
  EXPECT_NEAR(stats.mean(), 25.0, 0.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(4);
  EXPECT_EQ(rng.NextPoisson(0), 0);
  EXPECT_EQ(rng.NextPoisson(-1), 0);
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HotKeysDominate) {
  const double theta = GetParam();
  ZipfianGenerator zipf(10000, theta);
  Rng rng(5);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; i++) counts[zipf.Next(rng)]++;
  // The top-10 ranks must dominate far beyond their uniform share
  // (10/10000 = 0.1%), increasingly so with skew.
  int top10 = 0;
  for (uint64_t k = 0; k < 10; k++) top10 += counts.count(k) ? counts[k] : 0;
  double share = static_cast<double>(top10) / n;
  EXPECT_GT(share, theta >= 0.9 ? 0.15 : 0.01);
  // Rank 0 is the hottest key.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[0], max_count);
  // All samples in range.
  for (const auto& [k, c] : counts) EXPECT_LT(k, 10000u);
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, ZipfSkewTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

TEST(DiscreteSamplerTest, RespectsWeights) {
  DiscreteSampler sampler({1.0, 0.0, 3.0});
  Rng rng(6);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; i++) counts[sampler.Next(rng)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(123);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 123);
  EXPECT_DOUBLE_EQ(h.max(), 123);
  EXPECT_NEAR(h.Percentile(50), 123, 123 * 0.31);
}

class HistogramPercentileTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramPercentileTest, PercentileWithinBucketError) {
  const double p = GetParam();
  Histogram h;
  for (int i = 1; i <= 10000; i++) h.Add(i);
  double expected = p / 100.0 * 10000;
  // Geometric buckets with growth 1.3 bound relative error to ~30%.
  EXPECT_NEAR(h.Percentile(p), expected, expected * 0.31 + 1);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, HistogramPercentileTest,
                         ::testing::Values(10.0, 50.0, 90.0, 99.0));

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(10);
  for (int i = 0; i < 100; i++) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.min(), 10);
  EXPECT_DOUBLE_EQ(a.max(), 1000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
}

TEST(RunningStatsTest, WelfordMatchesDirect) {
  RunningStats s;
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
  EXPECT_DOUBLE_EQ(s.min(), 2);
  EXPECT_DOUBLE_EQ(s.max(), 9);
}

TEST(ExactPercentileTest, InterpolatesAndClamps) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 0), 1);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 100), 5);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 50), 3);
  EXPECT_DOUBLE_EQ(ExactPercentile(v, 25), 2);
  EXPECT_DOUBLE_EQ(ExactPercentile({}, 50), 0);
}

// --------------------------------------------------------- MovingAverage --

TEST(MovingAverageTest, InitialValueBeforeSamples) {
  MovingAverage ma(4, 7.5);
  EXPECT_DOUBLE_EQ(ma.Value(), 7.5);
  ma.Add(1);
  EXPECT_DOUBLE_EQ(ma.Value(), 1.0);
}

TEST(MovingAverageTest, WindowSlides) {
  MovingAverage ma(3);
  ma.Add(1);
  ma.Add(2);
  ma.Add(3);
  EXPECT_DOUBLE_EQ(ma.Value(), 2.0);
  ma.Add(6);  // Evicts 1 -> window {2,3,6}.
  EXPECT_NEAR(ma.Value(), 11.0 / 3, 1e-9);
  EXPECT_EQ(ma.count(), 3u);
}

TEST(MovingAverageTest, ResetRestoresInitial) {
  MovingAverage ma(3, 9.0);
  ma.Add(1);
  ma.Reset();
  EXPECT_DOUBLE_EQ(ma.Value(), 9.0);
}

TEST(EwmaTest, SeedsOnFirstSample) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.Add(10);
  EXPECT_DOUBLE_EQ(e.Value(), 10);
  e.Add(20);
  EXPECT_DOUBLE_EQ(e.Value(), 15);
}

// ------------------------------------------------------------ TimeSeries --

TEST(TimeSeriesTest, BasicStats) {
  TimeSeries ts({1, 2, 3, 4, 5});
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_DOUBLE_EQ(ts.Max(), 5);
  EXPECT_DOUBLE_EQ(ts.Min(), 1);
  EXPECT_DOUBLE_EQ(ts.Mean(), 3);
  EXPECT_NEAR(ts.Stddev(), std::sqrt(2.5), 1e-9);
}

TEST(TimeSeriesTest, TailReturnsSuffix) {
  TimeSeries ts({1, 2, 3, 4, 5});
  TimeSeries t = ts.Tail(2);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0], 4);
  EXPECT_DOUBLE_EQ(t[1], 5);
  EXPECT_EQ(ts.Tail(99).size(), 5u);
}

TEST(TimeSeriesTest, DownsampleMaxAndMean) {
  TimeSeries ts({1, 5, 2, 8, 3});
  TimeSeries mx = ts.DownsampleMax(2);
  ASSERT_EQ(mx.size(), 3u);
  EXPECT_DOUBLE_EQ(mx[0], 5);
  EXPECT_DOUBLE_EQ(mx[1], 8);
  EXPECT_DOUBLE_EQ(mx[2], 3);
  EXPECT_DOUBLE_EQ(mx.step_hours(), 2.0);
  TimeSeries mn = ts.DownsampleMean(2);
  EXPECT_DOUBLE_EQ(mn[0], 3);
}

TEST(TimeSeriesTest, MinusChecksShape) {
  TimeSeries a({3, 4}), b({1, 1}), c({1});
  auto d = a.Minus(b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value()[0], 2);
  EXPECT_FALSE(a.Minus(c).ok());
}

TEST(LoadVectorTest, MaxAndArithmetic) {
  LoadVector a = LoadVector::Constant(2);
  LoadVector b = LoadVector::Constant(3);
  EXPECT_DOUBLE_EQ((a + b).MaxLoad(), 5);
  a += b;
  a -= b;
  EXPECT_DOUBLE_EQ(a.MaxLoad(), 2);
}

TEST(LoadVectorTest, FromHourlySeriesTakesMaxPerSlot) {
  std::vector<double> v(48, 1.0);
  v[3] = 10;       // Day 1, hour 3.
  v[24 + 3] = 7;   // Day 2, hour 3 (smaller).
  LoadVector lv = LoadVector::FromHourlySeries(TimeSeries(v));
  EXPECT_DOUBLE_EQ(lv.v[3], 10);
  EXPECT_DOUBLE_EQ(lv.v[4], 1);
}

// -------------------------------------------------------------- MathUtil --

TEST(MathUtilTest, SolvesLinearSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  auto x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-9);
}

TEST(MathUtilTest, SingularMatrixFails) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_FALSE(SolveLinearSystem(a, {1, 2}).ok());
}

TEST(MathUtilTest, RidgeRecoversLinearModel) {
  // y = 3 + 2x, 50 points; near-zero ridge recovers coefficients.
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (int i = 0; i < 50; i++) {
    x.at(i, 0) = 1.0;
    x.at(i, 1) = i;
    y[i] = 3.0 + 2.0 * i;
  }
  auto w = RidgeRegression(x, y, 1e-9);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w.value()[0], 3.0, 1e-6);
  EXPECT_NEAR(w.value()[1], 2.0, 1e-6);
}

TEST(MathUtilTest, RidgeShrinksWeights) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (int i = 0; i < 10; i++) {
    x.at(i, 0) = 1.0;
    y[i] = 10.0;
  }
  auto small_l = RidgeRegression(x, y, 0.001);
  auto big_l = RidgeRegression(x, y, 100.0);
  ASSERT_TRUE(small_l.ok());
  ASSERT_TRUE(big_l.ok());
  EXPECT_GT(small_l.value()[0], big_l.value()[0]);
}

TEST(MathUtilTest, PearsonCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-9);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, {1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, {1, 2}), 0.0);
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, Fnv1aStableAndSeeded) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc", 1), Fnv1a64("abc", 2));
}

TEST(HashTest, Mix64Decorrelates) {
  // Sequential inputs should map to well-spread outputs.
  std::map<uint64_t, int> buckets;
  for (uint64_t i = 0; i < 1000; i++) buckets[Mix64(i) % 10]++;
  for (const auto& [b, c] : buckets) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 200);
  }
}

// ----------------------------------------------------------------- Types --

TEST(TypesTest, ReadOpClassification) {
  EXPECT_TRUE(IsReadOp(OpType::kGet));
  EXPECT_TRUE(IsReadOp(OpType::kHGetAll));
  EXPECT_TRUE(IsReadOp(OpType::kHLen));
  EXPECT_FALSE(IsReadOp(OpType::kSet));
  EXPECT_FALSE(IsReadOp(OpType::kExpire));
}

TEST(TypesTest, RequestClassBoundary) {
  EXPECT_EQ(ClassifyRequest(true, 100), RequestClass::kSmallRead);
  EXPECT_EQ(ClassifyRequest(true, kLargeRequestBytes),
            RequestClass::kLargeRead);
  EXPECT_EQ(ClassifyRequest(false, 100), RequestClass::kSmallWrite);
  EXPECT_EQ(ClassifyRequest(false, 1 << 20), RequestClass::kLargeWrite);
}

TEST(TypesTest, NamesAreStable) {
  EXPECT_STREQ(OpTypeName(OpType::kHGetAll), "HGETALL");
  EXPECT_STREQ(RequestClassName(RequestClass::kLargeWrite), "LargeWrite");
}

}  // namespace
}  // namespace abase
