// End-to-end tests: workload generation, the cluster simulator, and the
// public abase::Cluster / abase::Client API.
#include <gtest/gtest.h>

#include <set>

#include "core/abase.h"
#include "sim/cluster_sim.h"
#include "sim/workload.h"

namespace abase {
namespace {

// --------------------------------------------------------------- Workload --

TEST(WorkloadGeneratorTest, QpsMatchesProfile) {
  sim::WorkloadProfile profile;
  profile.base_qps = 500;
  sim::WorkloadGenerator gen(1, profile, 42);
  uint64_t total = 0;
  for (int t = 0; t < 50; t++) {
    total += gen.Tick(t * kMicrosPerSecond, kMicrosPerSecond).size();
  }
  EXPECT_NEAR(static_cast<double>(total) / 50.0, 500, 25);
}

TEST(WorkloadGeneratorTest, ReadRatioRespected) {
  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.read_ratio = 0.25;
  sim::WorkloadGenerator gen(1, profile, 42);
  auto reqs = gen.Tick(0, kMicrosPerSecond);
  int reads = 0;
  for (const auto& r : reqs) {
    if (IsReadOp(r.op)) reads++;
  }
  EXPECT_NEAR(static_cast<double>(reads) / reqs.size(), 0.25, 0.05);
}

TEST(WorkloadGeneratorTest, BurstMultiplierApplies) {
  sim::WorkloadProfile profile;
  profile.base_qps = 100;
  profile.bursts.push_back({10 * kMicrosPerSecond, 20 * kMicrosPerSecond,
                            5.0});
  sim::WorkloadGenerator gen(1, profile, 42);
  EXPECT_NEAR(gen.ExpectedQps(0), 100, 1e-9);
  EXPECT_NEAR(gen.ExpectedQps(15 * kMicrosPerSecond), 500, 1e-9);
  EXPECT_NEAR(gen.ExpectedQps(25 * kMicrosPerSecond), 100, 1e-9);
}

TEST(WorkloadGeneratorTest, DiurnalShape) {
  sim::WorkloadProfile profile;
  profile.base_qps = 100;
  profile.diurnal_amplitude = 0.5;
  sim::WorkloadGenerator gen(1, profile, 42);
  // Peak at 6h (sin peak of a 24h cycle), trough at 18h.
  EXPECT_NEAR(gen.ExpectedQps(6 * kMicrosPerHour), 150, 1.0);
  EXPECT_NEAR(gen.ExpectedQps(18 * kMicrosPerHour), 50, 1.0);
}

TEST(WorkloadGeneratorTest, HotSpotConcentratesTraffic) {
  sim::WorkloadProfile profile;
  profile.base_qps = 5000;
  profile.key_dist = sim::KeyDist::kHotSpot;
  profile.num_keys = 10000;
  profile.hot_fraction = 0.001;  // 10 hot keys.
  profile.hot_share = 0.9;
  sim::WorkloadGenerator gen(1, profile, 42);
  auto reqs = gen.Tick(0, kMicrosPerSecond);
  std::set<std::string> hot_keys;
  for (uint64_t i = 0; i < 10; i++) {
    hot_keys.insert("t1:k" + std::to_string(i));
  }
  int hot = 0;
  for (const auto& r : reqs) {
    if (hot_keys.count(r.key)) hot++;
  }
  EXPECT_NEAR(static_cast<double>(hot) / reqs.size(), 0.9, 0.05);
}

TEST(WorkloadGeneratorTest, HashOpsGenerated) {
  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.hash_op_fraction = 1.0;
  sim::WorkloadGenerator gen(1, profile, 42);
  auto reqs = gen.Tick(0, kMicrosPerSecond);
  for (const auto& r : reqs) {
    EXPECT_TRUE(r.op == OpType::kHGet || r.op == OpType::kHGetAll ||
                r.op == OpType::kHLen || r.op == OpType::kHSet);
  }
}

// ------------------------------------------------------------- ClusterSim --

meta::TenantConfig SimTenant(TenantId id, double quota = 20000,
                             uint32_t partitions = 4) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = partitions;
  c.num_proxies = 4;
  c.num_proxy_groups = 2;
  c.replicas = 3;
  return c;
}

TEST(ClusterSimTest, TrafficFlowsEndToEnd) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(4);
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1), pool).ok());
  sim::WorkloadProfile profile;
  profile.base_qps = 500;
  profile.read_ratio = 0.5;
  profile.num_keys = 1000;
  cluster.SetWorkload(1, profile);

  cluster.RunTicks(20);
  const auto& history = cluster.History(1);
  ASSERT_EQ(history.size(), 20u);
  uint64_t ok = 0, issued = 0;
  for (const auto& tick : history) {
    ok += tick.ok;
    issued += tick.issued;
  }
  EXPECT_GT(issued, 8000u);
  // Under-quota traffic is nearly all served.
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(issued), 0.95);
}

TEST(ClusterSimTest, CacheHitRatioRisesOnSkewedReads) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(4);
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1), pool).ok());
  sim::WorkloadProfile profile;
  profile.base_qps = 1000;
  profile.read_ratio = 0.95;  // A few writes populate the key space.
  profile.num_keys = 200;     // Small hot set.
  profile.zipf_theta = 0.99;
  cluster.SetWorkload(1, profile);

  // Warm up the caches, then measure.
  cluster.RunTicks(30);
  const auto& history = cluster.History(1);
  double late_hit = history.back().CacheHitRatio();
  EXPECT_GT(late_hit, 0.5);
}

TEST(ClusterSimTest, ProxyQuotaThrottlesOverdrive) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(4);
  // Quota 2000 RU/s but 20000 writes/s incoming.
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1, 2000), pool).ok());
  sim::WorkloadProfile profile;
  profile.base_qps = 20000;
  profile.read_ratio = 0.0;
  profile.value_bytes = 2048;  // 3 RU per write (x3 replication).
  cluster.SetWorkload(1, profile);

  cluster.RunTicks(15);
  uint64_t throttled = 0;
  for (const auto& tick : cluster.History(1)) throttled += tick.throttled;
  EXPECT_GT(throttled, 10000u);
}

TEST(ClusterSimTest, InjectAndTrackOutcome) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(3);
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1), pool).ok());

  ClientRequest set;
  set.req_id = 1001;
  set.tenant = 1;
  set.op = OpType::kSet;
  set.key = "mykey";
  set.value = "myvalue";
  set.track_outcome = true;
  cluster.InjectRequest(set);
  cluster.RunTicks(3);
  auto out = cluster.TakeOutcome(1001);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->status.ok());

  ClientRequest get = set;
  get.req_id = 1002;
  get.op = OpType::kGet;
  get.value.clear();
  cluster.InjectRequest(get);
  cluster.RunTicks(3);
  auto out2 = cluster.TakeOutcome(1002);
  ASSERT_TRUE(out2.has_value());
  ASSERT_TRUE(out2->status.ok());
  EXPECT_EQ(out2->value, "myvalue");
}

TEST(ClusterSimTest, PoolModelSnapshotReflectsLoad) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(4);
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1), pool).ok());
  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.read_ratio = 0.2;
  cluster.SetWorkload(1, profile);
  cluster.RunTicks(10);

  resched::PoolModel model = cluster.BuildPoolModel(pool);
  EXPECT_EQ(model.nodes().size(), 4u);
  EXPECT_EQ(model.TotalReplicaCount(), 12u);  // 4 partitions x 3 replicas.
  EXPECT_GT(model.MeanUtilization(resched::Resource::kRu), 0.0);
}

TEST(ClusterSimTest, MigrationsApplyToLiveTopology) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(4);
  ASSERT_TRUE(cluster.AddTenant(SimTenant(1), pool).ok());
  const auto* tmeta = cluster.meta().GetTenant(1);
  NodeId from = tmeta->partitions[0].replicas[0];
  NodeId to = kInvalidNode;
  for (const auto& n : cluster.nodes()) {
    if (!n->HasReplica(1, 0)) to = n->id();
  }
  ASSERT_NE(to, kInvalidNode);
  resched::Migration m;
  m.tenant = 1;
  m.partition = 0;
  m.from = from;
  m.to = to;
  auto outcomes = cluster.ApplyMigrations({m});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_TRUE(cluster.FindNode(to)->HasReplica(1, 0));
  EXPECT_FALSE(cluster.FindNode(from)->HasReplica(1, 0));
  EXPECT_EQ(cluster.migration_stats().applied, 1u);

  // A doomed retry of the same move is reported with its reason instead
  // of being silently dropped from a success count.
  auto doomed = cluster.ApplyMigrations({m});
  ASSERT_EQ(doomed.size(), 1u);
  EXPECT_TRUE(doomed[0].status.IsNotFound())
      << doomed[0].status.ToString();  // Source no longer hosts it.
  EXPECT_EQ(cluster.migration_stats().skipped, 1u);
  EXPECT_EQ(
      cluster.migration_stats().skip_reasons.at(StatusCode::kNotFound), 1u);
}

// ------------------------------------------------------------ Public API --

TEST(ClientTest, RedisStyleRoundTrips) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  meta::TenantConfig config = SimTenant(1);
  ASSERT_TRUE(cluster.CreateTenant(config, pool).ok());
  Client client = cluster.OpenClient(1);

  ASSERT_TRUE(client.Set("user:1", "alice").ok());
  auto v = client.Get("user:1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "alice");

  EXPECT_TRUE(client.Get("nope").status().IsNotFound());

  ASSERT_TRUE(client.Del("user:1").ok());
  EXPECT_TRUE(client.Get("user:1").status().IsNotFound());

  ASSERT_TRUE(client.HSet("h:1", "name", "bob").ok());
  ASSERT_TRUE(client.HSet("h:1", "age", "30").ok());
  auto hv = client.HGet("h:1", "name");
  ASSERT_TRUE(hv.ok());
  EXPECT_EQ(hv.value(), "bob");
  auto len = client.HLen("h:1");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 2u);
  auto all = client.HGetAll("h:1");
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all.value().find("age=30"), std::string::npos);
}

TEST(ClientTest, BatchedMGetMSet) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(SimTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 8; i++) {
    pairs.emplace_back("batch:" + std::to_string(i),
                       "value" + std::to_string(i));
  }
  auto set_results = client.MSet(pairs);
  ASSERT_EQ(set_results.size(), 8u);
  for (const auto& st : set_results) EXPECT_TRUE(st.ok());

  std::vector<std::string> keys;
  for (int i = 0; i < 8; i++) keys.push_back("batch:" + std::to_string(i));
  keys.push_back("batch:missing");
  auto get_results = client.MGet(keys);
  ASSERT_EQ(get_results.size(), 9u);
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(get_results[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(get_results[static_cast<size_t>(i)].value(),
              "value" + std::to_string(i));
  }
  EXPECT_TRUE(get_results[8].status().IsNotFound());
}

TEST(ClientTest, TtlExpiryThroughPublicApi) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(SimTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  ASSERT_TRUE(client.Set("ephemeral", "v", 5 * kMicrosPerSecond).ok());
  EXPECT_TRUE(client.Get("ephemeral").ok());
  cluster.RunTicks(6);  // 6 simulated seconds.
  EXPECT_TRUE(client.Get("ephemeral").status().IsNotFound());
}

TEST(ClusterApiTest, AutoscalerAppliesQuota) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(cluster.CreateTenant(SimTenant(1, 10000), pool).ok());

  // Rising usage history that breaches the 0.85 threshold.
  sim::SeriesSpec spec;
  spec.hours = 30 * 24;
  spec.base = 8000;
  spec.trend_per_day = 60;
  spec.seasons.push_back({24, 500});
  Rng rng(5);
  TimeSeries usage = sim::GenerateSeries(spec, rng);

  auto decision = cluster.RunAutoscaler(1, usage);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().action,
            autoscale::ScalingDecision::Action::kScaleUp);
  EXPECT_GT(cluster.meta().GetTenant(1)->tenant_quota_ru, 10000);
}

TEST(ClusterApiTest, ReschedulingReducesImbalance) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(6);
  // Two tenants: placement is balanced, so skew the load by traffic.
  ASSERT_TRUE(cluster.CreateTenant(SimTenant(1, 60000, 6), pool).ok());
  sim::WorkloadProfile profile;
  profile.base_qps = 6000;
  profile.read_ratio = 0.3;
  profile.zipf_theta = 0.99;  // Heavy skew: some partitions much hotter.
  profile.num_keys = 500;
  cluster.AttachWorkload(1, profile);
  cluster.RunTicks(15);

  resched::PoolModel before = cluster.sim().BuildPoolModel(pool);
  double stddev_before =
      before.UtilizationStddev(resched::Resource::kRu);
  size_t applied = cluster.RunRescheduling(pool);
  resched::PoolModel after = cluster.sim().BuildPoolModel(pool);
  double stddev_after = after.UtilizationStddev(resched::Resource::kRu);
  if (applied > 0) {
    EXPECT_LE(stddev_after, stddev_before);
  }
}

}  // namespace
}  // namespace abase
