// Unit tests for the per-worker bump arena: alignment guarantees,
// Reset() reuse semantics, and the dedicated-block fallback for
// allocations too large to bump.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/arena.h"

namespace abase {
namespace {

bool IsAligned(const void* p, size_t align) {
  return (reinterpret_cast<uintptr_t>(p) & (align - 1)) == 0;
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena(/*block_bytes=*/4096);
  // Deliberately misalign the cursor with odd-sized allocations.
  for (size_t odd : {1u, 3u, 7u, 13u}) {
    arena.Allocate(odd, 1);
    EXPECT_TRUE(IsAligned(arena.Allocate(8, 8), 8));
    arena.Allocate(odd, 1);
    EXPECT_TRUE(IsAligned(arena.Allocate(64, 64), 64));
    arena.Allocate(odd, 1);
    EXPECT_TRUE(IsAligned(arena.Allocate(4, 4), 4));
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(/*block_bytes=*/1024);
  // Fill several blocks with distinct patterns, then verify none of
  // them was clobbered by a later allocation.
  constexpr int kAllocs = 100;
  char* ptrs[kAllocs];
  for (int i = 0; i < kAllocs; i++) {
    ptrs[i] = arena.AllocateArray<char>(100);
    std::memset(ptrs[i], i, 100);
  }
  for (int i = 0; i < kAllocs; i++) {
    for (int j = 0; j < 100; j++) {
      ASSERT_EQ(ptrs[i][j], static_cast<char>(i)) << "allocation " << i;
    }
  }
}

TEST(ArenaTest, ResetReusesBlocksWithoutGrowth) {
  Arena arena(/*block_bytes=*/4096);
  for (int i = 0; i < 8; i++) arena.Allocate(1000);
  size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);

  // Steady state: the same allocation pattern after Reset must be
  // served entirely from retained blocks.
  for (int tick = 0; tick < 50; tick++) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    for (int i = 0; i < 8; i++) arena.Allocate(1000);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "tick " << tick;
  }
}

TEST(ArenaTest, ResetReturnsSamePointers) {
  Arena arena(/*block_bytes=*/4096);
  void* first = arena.Allocate(128, 16);
  arena.Reset();
  void* again = arena.Allocate(128, 16);
  EXPECT_EQ(first, again);
}

TEST(ArenaTest, LargeAllocationFallback) {
  Arena arena(/*block_bytes=*/4096);
  // Larger than half a block: dedicated storage, still aligned, usable.
  char* big = static_cast<char*>(arena.Allocate(64 << 10, 64));
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(IsAligned(big, 64));
  std::memset(big, 0xab, 64 << 10);

  // Normal allocations keep flowing from bump blocks alongside it.
  char* small = static_cast<char*>(arena.Allocate(64, 8));
  std::memset(small, 0xcd, 64);
  EXPECT_EQ(static_cast<unsigned char>(big[0]), 0xabu);

  // Large blocks are released on Reset; reserved bump bytes stay.
  size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);  // Distinct objects.
}

TEST(ArenaTest, TypedArrayAllocation) {
  Arena arena;
  uint64_t* xs = arena.AllocateArray<uint64_t>(512);
  EXPECT_TRUE(IsAligned(xs, alignof(uint64_t)));
  for (size_t i = 0; i < 512; i++) xs[i] = i * 3;
  for (size_t i = 0; i < 512; i++) ASSERT_EQ(xs[i], i * 3);
}

}  // namespace
}  // namespace abase
