// Tests for the Section 7 capacity-planning rules.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "meta/capacity_planner.h"

namespace abase {
namespace meta {
namespace {

PoolSnapshot Pool(size_t nodes, double node_ru,
                  std::vector<double> quotas) {
  PoolSnapshot p;
  p.node_count = nodes;
  p.node_capacity_ru = node_ru;
  p.tenant_quotas_ru = std::move(quotas);
  return p;
}

bool HasViolation(const std::vector<CapacityViolation>& v,
                  CapacityViolation::Rule rule) {
  for (const auto& x : v) {
    if (x.rule == rule) return true;
  }
  return false;
}

TEST(CapacityPlannerTest, HealthyPoolPasses) {
  CapacityPlanner planner;
  // 100 nodes x 10k = 1M capacity; largest tenant 100k (10x), allocated
  // 300k (30%), idle 700k.
  auto violations =
      planner.Audit(Pool(100, 10000, {50000, 50000, 100000, 100000}));
  EXPECT_TRUE(violations.empty());
}

TEST(CapacityPlannerTest, PoolTooSmallForWhale) {
  CapacityPlanner planner;
  // 5 nodes x 10k = 50k capacity; a 20k tenant needs a 200k pool (10x).
  auto violations = planner.Audit(Pool(5, 10000, {20000}));
  EXPECT_TRUE(HasViolation(violations,
                           CapacityViolation::Rule::kPoolTooSmallForTenant));
}

TEST(CapacityPlannerTest, InsufficientIdleDetected) {
  CapacityPlanner planner;
  // Capacity 1M; allocated 900k -> idle 10% < 20%.
  std::vector<double> quotas(18, 50000.0);
  auto violations = planner.Audit(Pool(100, 10000, quotas));
  EXPECT_TRUE(
      HasViolation(violations, CapacityViolation::Rule::kInsufficientIdle));
}

TEST(CapacityPlannerTest, BurstHeadroomRule) {
  CapacityRules rules;
  rules.min_idle_fraction = 0.0;  // Isolate the burst rule.
  rules.pool_to_tenant_ratio = 1.0;
  CapacityPlanner planner(rules);
  // Capacity 500k; largest tenant 100k; idle 500-420=80k < 100k.
  std::vector<double> quotas = {100000, 80000, 80000, 80000, 80000};
  auto violations = planner.Audit(Pool(50, 10000, quotas));
  EXPECT_TRUE(HasViolation(
      violations, CapacityViolation::Rule::kInsufficientBurstHeadroom));
}

TEST(CapacityPlannerTest, FailureRadiusLimits) {
  CapacityRules rules;
  rules.max_tenants_per_pool = 3;
  rules.max_nodes_per_pool = 10;
  CapacityPlanner planner(rules);
  auto violations =
      planner.Audit(Pool(20, 10000, {100, 100, 100, 100}));
  EXPECT_TRUE(
      HasViolation(violations, CapacityViolation::Rule::kTooManyTenants));
  EXPECT_TRUE(
      HasViolation(violations, CapacityViolation::Rule::kPoolTooLarge));
}

TEST(CapacityPlannerTest, CanAdmitTenantChecksPostState) {
  CapacityPlanner planner;
  PoolSnapshot pool = Pool(100, 10000, {50000});
  EXPECT_TRUE(planner.CanAdmitTenant(pool, 80000));
  // A 200k tenant would need a 2M pool (10x rule).
  EXPECT_FALSE(planner.CanAdmitTenant(pool, 200000));
}

TEST(CapacityPlannerTest, RequiredNodesSatisfiesAllRules) {
  CapacityPlanner planner;
  std::vector<double> quotas = {50000, 30000, 20000};
  auto nodes = planner.RequiredNodes(quotas, 10000);
  ASSERT_TRUE(nodes.ok());
  // Whatever it returns must audit clean.
  PoolSnapshot pool = Pool(nodes.value(), 10000, quotas);
  EXPECT_TRUE(planner.Audit(pool).empty())
      << "nodes=" << nodes.value();
  // And one fewer node must NOT be enough (minimality).
  if (nodes.value() > 1) {
    PoolSnapshot smaller = Pool(nodes.value() - 1, 10000, quotas);
    EXPECT_FALSE(planner.Audit(smaller).empty());
  }
}

TEST(CapacityPlannerTest, RequiredNodesRejectsBadInputs) {
  CapacityPlanner planner;
  EXPECT_FALSE(planner.RequiredNodes({100}, 0).ok());
  CapacityRules rules;
  rules.max_tenants_per_pool = 1;
  CapacityPlanner small(rules);
  EXPECT_FALSE(small.RequiredNodes({100, 100}, 1000).ok());
}

TEST(CapacityPlannerTest, MaxAdmissibleQuotaIsAdmissible) {
  CapacityPlanner planner;
  PoolSnapshot pool = Pool(100, 10000, {50000, 50000});
  double q = planner.MaxAdmissibleTenantQuota(pool);
  EXPECT_GT(q, 0);
  EXPECT_TRUE(planner.CanAdmitTenant(pool, q * 0.999));
  EXPECT_FALSE(planner.CanAdmitTenant(pool, q * 1.2));
}

TEST(CapacityPlannerTest, RuleNamesStable) {
  EXPECT_STREQ(
      CapacityRuleName(CapacityViolation::Rule::kInsufficientIdle),
      "InsufficientIdle");
  EXPECT_STREQ(
      CapacityRuleName(CapacityViolation::Rule::kPoolTooSmallForTenant),
      "PoolTooSmallForTenant");
}

// Property sweep: RequiredNodes always yields a clean audit across random
// tenant sets.
class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerPropertyTest, RequiredNodesAlwaysAuditsClean) {
  Rng rng(GetParam());
  CapacityPlanner planner;
  for (int trial = 0; trial < 50; trial++) {
    size_t n = 1 + rng.NextUint64(30);
    std::vector<double> quotas;
    for (size_t i = 0; i < n; i++) {
      quotas.push_back(rng.NextLogNormal(std::log(20000), 1.0));
    }
    auto nodes = planner.RequiredNodes(quotas, 10000);
    if (!nodes.ok()) continue;  // Hit the pool-scale cap: acceptable.
    PoolSnapshot pool = Pool(nodes.value(), 10000, quotas);
    EXPECT_TRUE(planner.Audit(pool).empty()) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace meta
}  // namespace abase
