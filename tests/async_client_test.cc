// Tests for the asynchronous command API (core/abase.h):
//  * Submit returns an unresolved Future that Step()/Drain() resolve;
//  * SubmitBatch agrees with the synchronous MGet adapter;
//  * concurrent client sessions of one tenant draw from disjoint
//    request-id sub-spaces (the historical collision bug);
//  * sync adapters keep their lock-step observable behavior;
//  * abandoned tracked outcomes are swept after SimOptions::outcome_ttl_ticks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/abase.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

meta::TenantConfig AsyncTenant(TenantId id, double quota = 100000) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "async-t" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = 4;
  c.num_proxies = 4;
  c.num_proxy_groups = 2;
  return c;
}

TEST(AsyncClientTest, SubmitResolvesThroughStep) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  Future<Reply> set = client.Submit(Command::Set("alpha", "one"));
  EXPECT_TRUE(set.valid());
  EXPECT_FALSE(set.ready());  // Submit never advances time.
  EXPECT_EQ(cluster.PendingCommands(), 1u);
  EXPECT_EQ(cluster.sim().clock().NowMicros(), 0);
  cluster.Drain();
  ASSERT_TRUE(set.ready());

  // Reads issued after the write settled; both ride the same ticks.
  Future<Reply> get = client.Submit(Command::Get("alpha"));
  Future<Reply> missing = client.Submit(Command::Get("nope"));
  EXPECT_EQ(cluster.PendingCommands(), 2u);
  size_t ticks = cluster.Drain();
  EXPECT_GT(ticks, 0u);
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  ASSERT_TRUE(set.ready());
  ASSERT_TRUE(get.ready());
  ASSERT_TRUE(missing.ready());
  EXPECT_TRUE(set->ok());
  EXPECT_TRUE(get->ok());
  EXPECT_EQ(get->value, "one");
  EXPECT_TRUE(missing->status.IsNotFound());
  // Both commands spent at least one tick in flight.
  EXPECT_GE(get->LatencyTicks(), 1u);
  EXPECT_LE(get->issued_at, get->completed_at);
}

TEST(AsyncClientTest, SubmitBatchMatchesSyncMGet) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  std::vector<std::pair<std::string, std::string>> pairs;
  for (int i = 0; i < 8; i++) {
    pairs.emplace_back("b:" + std::to_string(i), "v" + std::to_string(i));
  }
  for (const Status& st : client.MSet(pairs)) ASSERT_TRUE(st.ok());

  std::vector<std::string> keys;
  std::vector<Command> cmds;
  for (int i = 0; i < 8; i++) {
    keys.push_back("b:" + std::to_string(i));
    cmds.push_back(Command::Get("b:" + std::to_string(i)));
  }
  keys.push_back("b:missing");
  cmds.push_back(Command::Get("b:missing"));

  std::vector<Future<Reply>> futures = client.SubmitBatch(std::move(cmds));
  ASSERT_EQ(futures.size(), 9u);
  cluster.Drain();
  std::vector<Result<std::string>> sync = client.MGet(keys);
  ASSERT_EQ(sync.size(), futures.size());
  for (size_t i = 0; i < futures.size(); i++) {
    ASSERT_TRUE(futures[i].ready()) << i;
    EXPECT_EQ(futures[i]->status.code(), sync[i].status().code()) << i;
    if (futures[i]->ok()) {
      EXPECT_EQ(futures[i]->value, sync[i].value()) << i;
    }
  }
  EXPECT_TRUE(futures[8]->status.IsNotFound());
}

TEST(AsyncClientTest, MSetAndMDelBatchRoundTrip) {
  // MSet and MDel ride the same batched-submission core as MGet: the
  // whole batch is injected before any tick runs. Statuses come back
  // in input order, and the deletes are observable afterwards.
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> keys;
  for (int i = 0; i < 6; i++) {
    keys.push_back("md:" + std::to_string(i));
    pairs.emplace_back(keys.back(), "v" + std::to_string(i));
  }
  std::vector<Status> set_status = client.MSet(pairs);
  ASSERT_EQ(set_status.size(), pairs.size());
  for (const Status& st : set_status) EXPECT_TRUE(st.ok());

  std::vector<Status> del_status = client.MDel(keys);
  ASSERT_EQ(del_status.size(), keys.size());
  for (const Status& st : del_status) EXPECT_TRUE(st.ok());
  for (const std::string& key : keys) {
    EXPECT_TRUE(client.Get(key).status().IsNotFound()) << key;
  }
}

TEST(AsyncClientTest, ConcurrentSessionsUseDisjointIdSubSpaces) {
  // Historically both OpenClient(tenant) sessions started their request
  // ids at the same value, so two sessions with commands in flight
  // corrupted each other's entries in the shared in-flight table. Each
  // session now gets a cluster-allocated id sub-space.
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client a = cluster.OpenClient(1);
  Client b = cluster.OpenClient(1);

  // Both sessions submit their very first commands together — with the
  // old scheme each pair below would have shared one request id.
  Future<Reply> a_set = a.Submit(Command::Set("from:a", "aaa"));
  Future<Reply> b_set = b.Submit(Command::Set("from:b", "bbb"));
  EXPECT_EQ(cluster.PendingCommands(), 2u);
  cluster.Drain();
  ASSERT_TRUE(a_set.ready());
  ASSERT_TRUE(b_set.ready());
  EXPECT_TRUE(a_set->ok());
  EXPECT_TRUE(b_set->ok());

  Future<Reply> a_get = a.Submit(Command::Get("from:a"));
  Future<Reply> b_get = b.Submit(Command::Get("from:b"));
  cluster.Drain();
  ASSERT_TRUE(a_get.ready());
  ASSERT_TRUE(b_get.ready());
  ASSERT_TRUE(a_get->ok());
  ASSERT_TRUE(b_get->ok());
  EXPECT_EQ(a_get->value, "aaa");
  EXPECT_EQ(b_get->value, "bbb");
}

TEST(AsyncClientTest, SyncAdaptersKeepLockStepBehavior) {
  // The synchronous methods are submit-then-drain adapters; their
  // observable contract is unchanged: each call advances the simulation
  // and returns the settled result.
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  Micros before = cluster.sim().clock().NowMicros();
  ASSERT_TRUE(client.Set("user:1", "alice").ok());
  EXPECT_GT(cluster.sim().clock().NowMicros(), before);  // Time advanced.
  auto v = client.Get("user:1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "alice");
  EXPECT_TRUE(client.Get("user:none").status().IsNotFound());
  ASSERT_TRUE(client.HSet("h", "f", "x").ok());
  auto len = client.HLen("h");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 1u);
  ASSERT_TRUE(client.Del("user:1").ok());
  EXPECT_TRUE(client.Get("user:1").status().IsNotFound());
  // No stragglers left behind by the adapters.
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  EXPECT_EQ(cluster.sim().OutcomeSubscriptionCount(), 0u);
}

TEST(AsyncClientTest, HundredsOfCommandsInFlightAcrossManyClients) {
  Cluster cluster;
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1, 500000), pool).ok());
  cluster.sim().PreloadKeys(1, 256, 64);

  constexpr int kClients = 32;
  constexpr int kDepth = 8;
  std::vector<Client> clients;
  for (int c = 0; c < kClients; c++) clients.push_back(cluster.OpenClient(1));

  std::vector<Future<Reply>> futures;
  for (int c = 0; c < kClients; c++) {
    std::vector<Command> cmds;
    for (int d = 0; d < kDepth; d++) {
      cmds.push_back(
          Command::Get("t1:k" + std::to_string((c * kDepth + d) % 256)));
    }
    for (auto& f : clients[c].SubmitBatch(std::move(cmds))) {
      futures.push_back(std::move(f));
    }
  }
  EXPECT_EQ(cluster.PendingCommands(),
            static_cast<size_t>(kClients * kDepth));
  cluster.Drain();
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  for (const auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f->ok());
    EXPECT_FALSE(f->value.empty());
  }
}

TEST(AsyncClientTest, UnknownTenantResolvesInsteadOfStranding) {
  // A command for a tenant that was never created must still resolve its
  // future (Unavailable), not strand the subscription and pending count.
  Cluster cluster;
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(AsyncTenant(1), pool).ok());
  Client ghost = cluster.OpenClient(99);  // No such tenant.

  Future<Reply> f = ghost.Submit(Command::Get("k"));
  cluster.Drain();
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f->status.IsUnavailable());
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  EXPECT_EQ(cluster.sim().OutcomeSubscriptionCount(), 0u);
}

// ------------------------------------------------------ Outcome TTL sweep --

TEST(OutcomeSweepTest, AbandonedOutcomesAreSweptAfterTtl) {
  sim::SimOptions opt;
  opt.outcome_ttl_ticks = 8;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(AsyncTenant(1), pool).ok());

  ClientRequest req;
  req.req_id = 777;
  req.tenant = 1;
  req.op = OpType::kSet;
  req.key = "leak";
  req.value = "v";
  req.track_outcome = true;
  sim.InjectRequest(req);
  sim.RunTicks(2);
  // Settled but never collected: parked in the outcome table.
  EXPECT_EQ(sim.TrackedOutcomeCount(), 1u);

  // Still collectable before the TTL...
  sim.RunTicks(2);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 1u);

  // ...and dropped once it has sat uncollected for outcome_ttl_ticks.
  sim.RunTicks(10);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 0u);
  EXPECT_FALSE(sim.TakeOutcome(777).has_value());
}

TEST(OutcomeSweepTest, CollectedBeforeTtlStillWorks) {
  sim::SimOptions opt;
  opt.outcome_ttl_ticks = 8;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(AsyncTenant(1), pool).ok());

  ClientRequest req;
  req.req_id = 778;
  req.tenant = 1;
  req.op = OpType::kSet;
  req.key = "kept";
  req.value = "v";
  req.track_outcome = true;
  sim.InjectRequest(req);
  sim.RunTicks(3);
  auto out = sim.TakeOutcome(778);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->status.ok());
  EXPECT_EQ(sim.TrackedOutcomeCount(), 0u);
}

TEST(OutcomeSweepTest, ZeroTtlKeepsOutcomesForever) {
  sim::SimOptions opt;
  opt.outcome_ttl_ticks = 0;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(AsyncTenant(1), pool).ok());

  ClientRequest req;
  req.req_id = 779;
  req.tenant = 1;
  req.op = OpType::kSet;
  req.key = "pinned";
  req.value = "v";
  req.track_outcome = true;
  sim.InjectRequest(req);
  sim.RunTicks(40);
  EXPECT_EQ(sim.TrackedOutcomeCount(), 1u);
  EXPECT_TRUE(sim.TakeOutcome(779).has_value());
}

}  // namespace
}  // namespace abase
