// Tests for src/storage: bloom filters, memtable, SSTables, the LSM
// engine (LavaStore stand-in), WAL recovery, and the disk model.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/clock.h"
#include "common/hash.h"
#include "common/keyspace.h"
#include "common/rng.h"
#include "storage/bloom.h"
#include "storage/disk_model.h"
#include "storage/lsm_engine.h"
#include "storage/memtable.h"
#include "storage/sstable.h"

namespace abase {
namespace storage {
namespace {

// ----------------------------------------------------------------- Bloom --

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (int i = 0; i < 1000; i++) bf.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(bf.MayContain("key" + std::to_string(i)));
  }
}

class BloomFprTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprTest, FalsePositiveRateBounded) {
  const int bits_per_key = GetParam();
  BloomFilter bf(2000, bits_per_key);
  for (int i = 0; i < 2000; i++) bf.Add("in" + std::to_string(i));
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (bf.MayContain("out" + std::to_string(i))) fp++;
  }
  double fpr = static_cast<double>(fp) / probes;
  // Theoretical FPR ~ 0.61^bits_per_key; allow generous slack.
  double bound = std::pow(0.6185, bits_per_key) * 2.5 + 0.002;
  EXPECT_LT(fpr, bound) << "bits_per_key=" << bits_per_key;
}

INSTANTIATE_TEST_SUITE_P(BitsSweep, BloomFprTest,
                         ::testing::Values(4, 8, 10, 16));

TEST(BloomTest, EmptyFilterRejectsEverything) {
  BloomFilter bf(100);
  EXPECT_FALSE(bf.MayContain("anything"));
}

// -------------------------------------------------------------- MemTable --

TEST(MemTableTest, PutGetReplace) {
  MemTable mt;
  mt.Put("a", ValueEntry::String("1", 1));
  mt.Put("b", ValueEntry::String("2", 2));
  ASSERT_NE(mt.Get("a"), nullptr);
  EXPECT_EQ(mt.Get("a")->str, "1");
  mt.Put("a", ValueEntry::String("updated", 3));
  EXPECT_EQ(mt.Get("a")->str, "updated");
  EXPECT_EQ(mt.entry_count(), 2u);
  EXPECT_EQ(mt.Get("zz"), nullptr);
}

TEST(MemTableTest, ByteAccountingTracksReplacement) {
  MemTable mt;
  mt.Put("k", ValueEntry::String(std::string(100, 'x'), 1));
  uint64_t b1 = mt.approximate_bytes();
  mt.Put("k", ValueEntry::String(std::string(10, 'x'), 2));
  uint64_t b2 = mt.approximate_bytes();
  EXPECT_EQ(b1 - b2, 90u);
}

TEST(MemTableTest, TombstonesStored) {
  MemTable mt;
  mt.Put("k", ValueEntry::Tombstone(1));
  ASSERT_NE(mt.Get("k"), nullptr);
  EXPECT_TRUE(mt.Get("k")->IsTombstone());
}

// --------------------------------------------------------------- SsTable --

std::vector<std::pair<std::string, ValueEntry>> MakeRows(int n) {
  std::vector<std::pair<std::string, ValueEntry>> rows;
  for (int i = 0; i < n; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%05d", i);
    rows.emplace_back(buf, ValueEntry::String("v" + std::to_string(i),
                                              static_cast<uint64_t>(i + 1)));
  }
  return rows;
}

TEST(SsTableTest, PointLookupChargesOneBlock) {
  SsTable sst(1, MakeRows(100));
  SstProbe p = sst.Get("k00042");
  ASSERT_NE(p.entry, nullptr);
  EXPECT_EQ(p.entry->str, "v42");
  EXPECT_EQ(p.block_reads, 1);
}

TEST(SsTableTest, BloomFiltersOutOfRangeFree) {
  SsTable sst(1, MakeRows(100));
  SstProbe p = sst.Get("zzz");  // Out of key range entirely.
  EXPECT_EQ(p.entry, nullptr);
  EXPECT_EQ(p.block_reads, 0);
}

TEST(SsTableTest, MinMaxKeys) {
  SsTable sst(1, MakeRows(10));
  EXPECT_EQ(sst.min_key(), "k00000");
  EXPECT_EQ(sst.max_key(), "k00009");
  EXPECT_TRUE(sst.KeyInRange("k00005"));
  EXPECT_FALSE(sst.KeyInRange("a"));
}

// ------------------------------------------------------------- LsmEngine --

class LsmEngineTest : public ::testing::Test {
 protected:
  LsmEngineTest() : clock_(0) {
    LsmOptions opts;
    opts.memtable_flush_bytes = 4096;  // Tiny: force flushes quickly.
    opts.runs_per_level_trigger = 2;
    opts.max_levels = 3;
    engine_ = std::make_unique<LsmEngine>(opts, &clock_);
  }
  SimClock clock_;
  std::unique_ptr<LsmEngine> engine_;
};

TEST_F(LsmEngineTest, PutGetRoundTrip) {
  ASSERT_TRUE(engine_->Put("k1", "hello").ok());
  auto v = engine_->Get("k1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "hello");
}

TEST_F(LsmEngineTest, GetMissingIsNotFound) {
  EXPECT_TRUE(engine_->Get("missing").status().IsNotFound());
}

TEST_F(LsmEngineTest, EmptyKeyRejected) {
  EXPECT_FALSE(engine_->Put("", "v").ok());
  EXPECT_FALSE(engine_->Delete("").ok());
}

TEST_F(LsmEngineTest, DeleteHidesKeyAcrossFlush) {
  ASSERT_TRUE(engine_->Put("k", "v").ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->Delete("k").ok());
  EXPECT_TRUE(engine_->Get("k").status().IsNotFound());
  engine_->Flush();
  EXPECT_TRUE(engine_->Get("k").status().IsNotFound());
}

TEST_F(LsmEngineTest, OverwriteLatestWinsAcrossRuns) {
  ASSERT_TRUE(engine_->Put("k", "v1").ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->Put("k", "v2").ok());
  engine_->Flush();
  auto v = engine_->Get("k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "v2");
}

TEST_F(LsmEngineTest, TtlExpiresValues) {
  ASSERT_TRUE(engine_->Put("k", "v", 10 * kMicrosPerSecond).ok());
  EXPECT_TRUE(engine_->Get("k").ok());
  clock_.Advance(11 * kMicrosPerSecond);
  EXPECT_TRUE(engine_->Get("k").status().IsNotFound());
}

TEST_F(LsmEngineTest, ExpireCommandSetsAndClearsTtl) {
  ASSERT_TRUE(engine_->Put("k", "v").ok());
  ASSERT_TRUE(engine_->Expire("k", 5 * kMicrosPerSecond).ok());
  clock_.Advance(6 * kMicrosPerSecond);
  EXPECT_TRUE(engine_->Get("k").status().IsNotFound());
  EXPECT_TRUE(engine_->Expire("missing", 1).IsNotFound());
}

TEST_F(LsmEngineTest, HashCommands) {
  ASSERT_TRUE(engine_->HSet("h", "f1", "v1").ok());
  ASSERT_TRUE(engine_->HSet("h", "f2", "v2").ok());
  auto f1 = engine_->HGet("h", "f1");
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.value(), "v1");
  auto len = engine_->HLen("h");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.value(), 2u);
  auto all = engine_->HGetAll("h");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
  const std::string* f2 = storage::FindField(all.value(), "f2");
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(*f2, "v2");
  EXPECT_TRUE(engine_->HGet("h", "zz").status().IsNotFound());
  EXPECT_TRUE(engine_->HLen("nope").status().IsNotFound());
}

TEST_F(LsmEngineTest, HashSurvivesFlushAndUpdates) {
  ASSERT_TRUE(engine_->HSet("h", "f1", "v1").ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->HSet("h", "f2", "v2").ok());
  auto all = engine_->HGetAll("h");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);  // f1 merged from the flushed run.
}

TEST_F(LsmEngineTest, ExportHashRangeStreamsResidueInBoundedBatches) {
  // 200 keys spread across memtable and flushed runs; export the keys
  // whose hash lands on residue 1 (mod 2) in throttled batches and
  // re-ingest them into a second engine (the online-split data path).
  std::map<std::string, std::string> expect;
  for (int i = 0; i < 200; i++) {
    std::string key = "split:k" + std::to_string(i);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(engine_->Put(key, value).ok());
    if (Fnv1a64(key) % 2 == 1) expect[key] = value;
  }
  // Deleted and expired residue keys must not move.
  for (int i = 0; i < 200; i += 9) {
    std::string key = "split:k" + std::to_string(i);
    ASSERT_TRUE(engine_->Delete(key).ok());
    expect.erase(key);
  }
  ASSERT_FALSE(expect.empty());

  LsmOptions child_opts;
  LsmEngine child(child_opts, &clock_);
  std::string cursor;
  size_t batches = 0;
  for (;; batches++) {
    ASSERT_LT(batches, 1000u) << "exporter failed to make progress";
    auto batch = engine_->ExportHashRange(2, 1, cursor, /*max_bytes=*/64);
    for (const auto& [key, entry] : batch.entries) {
      EXPECT_EQ(Fnv1a64(key) % 2, 1u) << key;
      child.Ingest(key, entry);
    }
    cursor = batch.next_cursor;
    if (batch.done) break;
  }
  EXPECT_GT(batches, 1u);  // The byte budget actually throttled.

  // The child holds exactly the live residue-1 view, values intact.
  for (const auto& [key, value] : expect) {
    auto got = child.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), value) << key;
  }
  for (int i = 0; i < 200; i++) {
    std::string key = "split:k" + std::to_string(i);
    if (expect.count(key) > 0) continue;
    EXPECT_TRUE(child.Get(key).status().IsNotFound()) << key;
  }
}

TEST_F(LsmEngineTest, ExportHashRangeSeesNewestVersionAcrossSources) {
  ASSERT_TRUE(engine_->Put("k", "old").ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->Put("k", "new").ok());  // Memtable shadows run.
  const uint64_t residue = Fnv1a64("k") % 2;
  auto batch = engine_->ExportHashRange(2, residue, "", 1 << 20);
  ASSERT_EQ(batch.entries.size(), 1u);
  EXPECT_EQ(batch.entries[0].second.str, "new");
  EXPECT_TRUE(batch.done);
}

TEST_F(LsmEngineTest, FlushAndCompactionProgress) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        engine_->Put("key" + std::to_string(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(engine_->stats().flush_count, 0u);
  EXPECT_GT(engine_->stats().compaction_count, 0u);
  // All data still readable after compactions.
  for (int i = 0; i < 500; i += 37) {
    EXPECT_TRUE(engine_->Get("key" + std::to_string(i)).ok()) << i;
  }
  // Level run counts respect the trigger.
  for (size_t c : engine_->LevelRunCounts()) {
    EXPECT_LE(c, 3u);  // trigger(2) + 1 transient.
  }
}

TEST_F(LsmEngineTest, WriteAmplificationAtLeastOne) {
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(engine_->Put("k" + std::to_string(i % 50),
                             std::string(128, 'a')).ok());
  }
  EXPECT_GE(engine_->WriteAmplification(), 1.0);
}

TEST_F(LsmEngineTest, CrashRecoveryReplaysWal) {
  ASSERT_TRUE(engine_->Put("durable", "yes").ok());
  engine_->CrashAndRecover();
  auto v = engine_->Get("durable");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), "yes");
}

TEST(LsmEngineNoWalTest, CrashLosesUnflushedWrites) {
  SimClock clock;
  LsmOptions opts;
  opts.enable_wal = false;
  LsmEngine engine(opts, &clock);
  ASSERT_TRUE(engine.Put("volatile", "gone").ok());
  engine.CrashAndRecover();
  EXPECT_TRUE(engine.Get("volatile").status().IsNotFound());
}

TEST(LsmEngineNoWalTest, CrashKeepsFlushedWrites) {
  SimClock clock;
  LsmOptions opts;
  opts.enable_wal = false;
  LsmEngine engine(opts, &clock);
  ASSERT_TRUE(engine.Put("flushed", "kept").ok());
  engine.Flush();
  ASSERT_TRUE(engine.Put("unflushed", "lost").ok());
  engine.CrashAndRecover();
  EXPECT_TRUE(engine.Get("flushed").ok());
  EXPECT_TRUE(engine.Get("unflushed").status().IsNotFound());
}

TEST_F(LsmEngineTest, ReadIoReportsMemtableVsDisk) {
  ASSERT_TRUE(engine_->Put("hot", "v").ok());
  ReadIo io;
  ASSERT_TRUE(engine_->Get("hot", &io).ok());
  EXPECT_TRUE(io.memtable_hit);
  EXPECT_EQ(io.block_reads, 0);

  engine_->Flush();
  ReadIo io2;
  ASSERT_TRUE(engine_->Get("hot", &io2).ok());
  EXPECT_FALSE(io2.memtable_hit);
  EXPECT_GE(io2.block_reads, 1);
}

TEST_F(LsmEngineTest, BloomAvoidsBlockReadsForMisses) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(engine_->Put("present" + std::to_string(i), "v").ok());
  }
  engine_->Flush();
  uint64_t before = engine_->stats().block_reads;
  for (int i = 0; i < 200; i++) {
    engine_->Get("absent" + std::to_string(i));
  }
  uint64_t blocks = engine_->stats().block_reads - before;
  // ~1% bloom FPR: 200 misses should cost only a handful of block reads.
  EXPECT_LT(blocks, 20u);
}

TEST_F(LsmEngineTest, TombstonesDroppedAtBottomCompaction) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(engine_->Put("k" + std::to_string(i), std::string(64, 'v'))
                    .ok());
  }
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(engine_->Delete("k" + std::to_string(i)).ok());
  }
  // Force everything down to the bottom level.
  for (int round = 0; round < 10; round++) engine_->Flush();
  while (engine_->MaybeCompact()) {
  }
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(engine_->Get("k" + std::to_string(i)).status().IsNotFound());
  }
}

TEST_F(LsmEngineTest, ScanMergesAcrossLevels) {
  ASSERT_TRUE(engine_->Put("scan:a", "1").ok());
  ASSERT_TRUE(engine_->Put("scan:c", "3").ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->Put("scan:b", "2").ok());
  ASSERT_TRUE(engine_->Put("scan:c", "3-updated").ok());  // Newer wins.
  auto rows = engine_->Scan("scan:", "scan;~");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "scan:a");
  EXPECT_EQ(rows[1].key, "scan:b");
  EXPECT_EQ(rows[2].key, "scan:c");
  EXPECT_EQ(rows[2].value, "3-updated");
}

TEST_F(LsmEngineTest, ScanSkipsTombstonesAndExpired) {
  ASSERT_TRUE(engine_->Put("s:1", "a").ok());
  ASSERT_TRUE(engine_->Put("s:2", "b").ok());
  ASSERT_TRUE(engine_->Put("s:3", "c", 5 * kMicrosPerSecond).ok());
  engine_->Flush();
  ASSERT_TRUE(engine_->Delete("s:2").ok());
  clock_.Advance(6 * kMicrosPerSecond);  // s:3 expires.
  auto rows = engine_->ScanPrefix("s:");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, "s:1");
}

TEST_F(LsmEngineTest, ScanHonorsLimitAndOrder) {
  for (int i = 0; i < 50; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(engine_->Put(buf, "v").ok());
    if (i % 7 == 0) engine_->Flush();
  }
  auto rows = engine_->Scan("k010", "k030", 10);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().key, "k010");
  for (size_t i = 1; i < rows.size(); i++) {
    EXPECT_LT(rows[i - 1].key, rows[i].key);
  }
}

TEST_F(LsmEngineTest, ScanPrefixMatchesReferenceModel) {
  std::map<std::string, std::string> reference;
  Rng rng(55);
  for (int i = 0; i < 600; i++) {
    std::string key = "p" + std::to_string(rng.NextUint64(3)) + ":" +
                      std::to_string(rng.NextUint64(100));
    if (rng.NextBool(0.8)) {
      std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(engine_->Put(key, value).ok());
      reference[key] = value;
    } else {
      ASSERT_TRUE(engine_->Delete(key).ok());
      reference.erase(key);
    }
  }
  for (const char* prefix : {"p0:", "p1:", "p2:"}) {
    auto rows = engine_->ScanPrefix(prefix, 1000);
    std::vector<std::pair<std::string, std::string>> expected;
    for (const auto& [k, v] : reference) {
      if (k.rfind(prefix, 0) == 0) expected.emplace_back(k, v);
    }
    ASSERT_EQ(rows.size(), expected.size()) << prefix;
    for (size_t i = 0; i < rows.size(); i++) {
      EXPECT_EQ(rows[i].key, expected[i].first);
      EXPECT_EQ(rows[i].value, expected[i].second);
    }
  }
}

TEST_F(LsmEngineTest, ScanEmptyRange) {
  ASSERT_TRUE(engine_->Put("x", "v").ok());
  EXPECT_TRUE(engine_->Scan("y", "z").empty());
  EXPECT_TRUE(engine_->ScanPrefix("nothing").empty());
}

// Regression: a prefix whose last byte is 0xff cannot form its exclusive
// upper bound by bumping that byte (0xff + 1 wraps to 0x00, turning the
// range into an empty or inverted one). PrefixUpperBound must drop the
// trailing 0xff bytes before incrementing, and an all-0xff prefix means
// "to the last key".
TEST_F(LsmEngineTest, ScanPrefixTrailing0xffUpperBound) {
  const std::string ff1 = std::string("p") + '\xff';
  const std::string ff2 = std::string("p") + '\xff' + '\xff';
  ASSERT_TRUE(engine_->Put(ff1 + "a", "1").ok());
  ASSERT_TRUE(engine_->Put(ff2, "2").ok());
  ASSERT_TRUE(engine_->Put("pz", "outside").ok());  // < "p\xff"
  ASSERT_TRUE(engine_->Put("q", "outside").ok());   // >= upper bound "q"
  engine_->Flush();

  EXPECT_EQ(PrefixUpperBound(ff1), "q");
  auto rows = engine_->ScanPrefix(ff1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, ff1 + "a");
  EXPECT_EQ(rows[1].key, ff2);

  // All-0xff prefix: no finite upper bound — scans to the last key.
  const std::string all_ff = std::string("\xff\xff");
  ASSERT_TRUE(engine_->Put(all_ff + "tail", "3").ok());
  EXPECT_EQ(PrefixUpperBound(all_ff), "");
  auto tail = engine_->ScanPrefix(all_ff);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].key, all_ff + "tail");
}

// ScanRange resumption: feeding `next_key` back as the next batch's
// start must walk the whole range exactly once, in order, regardless of
// batch size.
TEST_F(LsmEngineTest, ScanRangeResumesAcrossBatches) {
  for (int i = 0; i < 40; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "r%03d", i);
    ASSERT_TRUE(engine_->Put(buf, "v" + std::to_string(i)).ok());
    if (i % 9 == 0) engine_->Flush();
  }
  ScanBuffer buf;
  std::vector<std::string> seen;
  std::string cursor = "r";
  for (int batches = 0; batches < 100; batches++) {
    buf.Clear();
    ScanResult r = engine_->ScanRange(cursor, "s", 7, buf);
    for (size_t i = 0; i < buf.size(); i++) seen.push_back(buf[i].key);
    if (r.done) break;
    ASSERT_FALSE(r.next_key.empty());
    cursor = r.next_key;
  }
  ASSERT_EQ(seen.size(), 40u);
  for (int i = 0; i < 40; i++) {
    char buf2[16];
    snprintf(buf2, sizeof(buf2), "r%03d", i);
    EXPECT_EQ(seen[static_cast<size_t>(i)], buf2);
  }
}

// A range buried under arbitrarily many tombstones must still yield its
// visible keys in one call (the legacy Scan's per-source over-collect
// cap lost entries here).
TEST_F(LsmEngineTest, ScanRangeTombstoneHeavyStillFindsSurvivors) {
  for (int i = 0; i < 300; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "t%04d", i);
    ASSERT_TRUE(engine_->Put(buf, "v").ok());
    if (i % 31 == 0) engine_->Flush();
  }
  // Delete everything except every 100th key: 297 tombstones in range.
  for (int i = 0; i < 300; i++) {
    if (i % 100 == 0) continue;
    char buf[16];
    snprintf(buf, sizeof(buf), "t%04d", i);
    ASSERT_TRUE(engine_->Delete(buf).ok());
  }
  auto rows = engine_->ScanPrefix("t", 10);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "t0000");
  EXPECT_EQ(rows[1].key, "t0100");
  EXPECT_EQ(rows[2].key, "t0200");
}

// Property test: the engine must agree with an in-memory reference model
// under a randomized op stream, across flushes and compactions.
class LsmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsmPropertyTest, MatchesReferenceModel) {
  SimClock clock;
  LsmOptions opts;
  opts.memtable_flush_bytes = 2048;
  opts.runs_per_level_trigger = 2;
  LsmEngine engine(opts, &clock);
  std::map<std::string, std::string> reference;
  Rng rng(GetParam());

  for (int step = 0; step < 2000; step++) {
    std::string key = "k" + std::to_string(rng.NextUint64(200));
    double action = rng.NextDouble();
    if (action < 0.5) {
      std::string value = "v" + std::to_string(rng.NextUint64(100000));
      ASSERT_TRUE(engine.Put(key, value).ok());
      reference[key] = value;
    } else if (action < 0.65) {
      ASSERT_TRUE(engine.Delete(key).ok());
      reference.erase(key);
    } else {
      auto got = engine.Get(key);
      auto ref = reference.find(key);
      if (ref == reference.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key << " step " << step;
      } else {
        ASSERT_TRUE(got.ok()) << key << " step " << step;
        EXPECT_EQ(got.value(), ref->second);
      }
    }
    if (step % 500 == 499) engine.CrashAndRecover();  // WAL must cover.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------- DiskModel --

TEST(DiskModelTest, ChargesServiceTime) {
  DiskModel disk;
  Micros t = disk.ChargeRead(10);
  EXPECT_EQ(t, 10 * disk.options().read_service_micros);
  EXPECT_EQ(disk.total_reads(), 10u);
}

TEST(DiskModelTest, CongestionInflatesLatency) {
  DiskOptions opts;
  opts.read_iops_capacity = 1000;
  DiskModel disk(opts);
  Micros base = disk.ChargeRead(1);
  disk.ChargeRead(898);  // ~90% utilization.
  Micros loaded = disk.ChargeRead(1);
  EXPECT_GT(loaded, base);
}

TEST(DiskModelTest, WindowResetRestoresCapacity) {
  DiskOptions opts;
  opts.read_iops_capacity = 100;
  DiskModel disk(opts);
  disk.ChargeRead(100);
  EXPECT_FALSE(disk.CanRead(1));
  disk.ResetWindow();
  EXPECT_TRUE(disk.CanRead(100));
  EXPECT_EQ(disk.total_reads(), 100u);  // Totals persist.
}

TEST(DiskModelTest, ReadWriteIndependentBudgets) {
  DiskOptions opts;
  opts.read_iops_capacity = 10;
  opts.write_iops_capacity = 10;
  DiskModel disk(opts);
  disk.ChargeRead(10);
  EXPECT_FALSE(disk.CanRead(1));
  EXPECT_TRUE(disk.CanWrite(10));
}

// ------------------------------------------------------- Replication log --

TEST(ReplicationLogTest, AppendDeltaAndTruncate) {
  ReplicationLog log;
  for (uint64_t seq = 1; seq <= 5; seq++) {
    log.Append("k" + std::to_string(seq),
               ValueEntry::String("v" + std::to_string(seq), seq));
  }
  EXPECT_EQ(log.first_seq(), 1u);
  EXPECT_EQ(log.last_seq(), 5u);
  EXPECT_TRUE(log.Covers(0));

  auto delta = log.Delta(2, 4);  // (2, 4] -> seqs 3 and 4.
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0]->entry.seq, 3u);
  EXPECT_EQ(delta[1]->entry.seq, 4u);

  log.TruncateThrough(3);
  EXPECT_EQ(log.first_seq(), 4u);
  EXPECT_EQ(log.last_seq(), 5u);
  EXPECT_FALSE(log.Covers(2));  // Seq 3 is gone; cursor 2 needs it.
  EXPECT_TRUE(log.Covers(3));   // Cursor 3 needs seq 4 onward: retained.
  EXPECT_EQ(log.Delta(3, 5).size(), 2u);

  // Truncating everything leaves a consistent empty log.
  log.TruncateThrough(5);
  EXPECT_EQ(log.record_count(), 0u);
  EXPECT_EQ(log.last_seq(), 5u);
  EXPECT_EQ(log.bytes(), 0u);
}

/// Engine options with the replication stream retained (what DataNode
/// uses for hosted replicas).
LsmOptions ReplicatedOptions() {
  LsmOptions opts;
  opts.enable_repl_log = true;
  return opts;
}

TEST(LsmEngineReplicationTest, ReplicaAppliesPrimaryStreamExactly) {
  SimClock clock(0);
  LsmEngine primary(ReplicatedOptions(), &clock);
  LsmEngine replica(ReplicatedOptions(), &clock);

  ASSERT_TRUE(primary.Put("a", "1").ok());
  ASSERT_TRUE(primary.Put("b", "2").ok());
  ASSERT_TRUE(primary.HSet("h", "f", "x").ok());
  ASSERT_TRUE(primary.Delete("a").ok());
  EXPECT_EQ(primary.applied_seq(), 4u);

  for (const ReplRecord* rec :
       primary.repl_log().Delta(replica.applied_seq(),
                                primary.applied_seq())) {
    ASSERT_TRUE(replica.ApplyReplicated(*rec).ok());
  }
  EXPECT_EQ(replica.applied_seq(), primary.applied_seq());
  EXPECT_TRUE(replica.Get("a").status().IsNotFound());  // Tombstone shipped.
  EXPECT_EQ(replica.Get("b").value(), "2");
  EXPECT_EQ(replica.HGet("h", "f").value(), "x");
  EXPECT_EQ(replica.stats().repl_applied, 4u);

  // Out-of-order application is refused (the shipper must resync).
  ReplRecord gap;
  gap.key = "z";
  gap.entry = ValueEntry::String("v", primary.applied_seq() + 5);
  EXPECT_FALSE(replica.ApplyReplicated(gap).ok());
}

TEST(LsmEngineReplicationTest, ReplicaStreamSurvivesCrashRecovery) {
  SimClock clock(0);
  LsmEngine primary(ReplicatedOptions(), &clock);
  LsmEngine replica(ReplicatedOptions(), &clock);
  ASSERT_TRUE(primary.Put("k", "v").ok());
  for (const ReplRecord* rec : primary.repl_log().Delta(0, 1)) {
    ASSERT_TRUE(replica.ApplyReplicated(*rec).ok());
  }
  // Replicated records go through the replica's own WAL: a crash loses
  // nothing and the stream cursor is preserved.
  replica.CrashAndRecover();
  EXPECT_EQ(replica.Get("k").value(), "v");
  EXPECT_EQ(replica.applied_seq(), 1u);
}

TEST(LsmEngineReplicationTest, ResyncFromClonesStateAndCursor) {
  SimClock clock(0);
  LsmOptions small = ReplicatedOptions();
  small.memtable_flush_bytes = 256;  // Force flushed runs into the clone.
  LsmEngine primary(small, &clock);
  LsmEngine replica(small, &clock);

  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(primary.Put("k" + std::to_string(i),
                            std::string(32, 'v')).ok());
  }
  // Diverge the replica, then resync: the snapshot wins wholesale.
  ASSERT_TRUE(replica.Put("divergent", "x").ok());
  replica.ResyncFrom(primary);
  EXPECT_EQ(replica.applied_seq(), primary.applied_seq());
  EXPECT_TRUE(replica.Get("divergent").status().IsNotFound());
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(replica.Get("k" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(replica.stats().resyncs, 1u);

  // The clone keeps streaming: new primary writes apply as a delta.
  ASSERT_TRUE(primary.Put("after", "resync").ok());
  for (const ReplRecord* rec :
       primary.repl_log().Delta(replica.applied_seq(),
                                primary.applied_seq())) {
    ASSERT_TRUE(replica.ApplyReplicated(*rec).ok());
  }
  EXPECT_EQ(replica.Get("after").value(), "resync");
}

}  // namespace
}  // namespace storage
}  // namespace abase
