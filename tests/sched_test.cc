// Tests for the dual-layer WFQ scheduler (Section 4.3): VFT math,
// per-tenant fairness, the four class queues, and Rules 1-4.
#include <gtest/gtest.h>

#include <map>

#include "sched/dual_layer_wfq.h"
#include "sched/wfq_queue.h"

namespace abase {
namespace sched {
namespace {

SchedRequest MakeReq(uint64_t id, TenantId tenant, double cost,
                     double quota_share, bool is_read = true,
                     RequestClass cls = RequestClass::kSmallRead) {
  SchedRequest r;
  r.req_id = id;
  r.tenant = tenant;
  r.cls = cls;
  r.is_read = is_read;
  r.cpu_cost_ru = cost;
  r.quota_share = quota_share;
  return r;
}

// -------------------------------------------------------------- WfqQueue --

TEST(WfqQueueTest, FifoForSingleTenant) {
  WfqQueue q;
  q.Push(MakeReq(1, 1, 1.0, 0.5), 1.0);
  q.Push(MakeReq(2, 1, 1.0, 0.5), 1.0);
  q.Push(MakeReq(3, 1, 1.0, 0.5), 1.0);
  EXPECT_EQ(q.Pop().req_id, 1u);
  EXPECT_EQ(q.Pop().req_id, 2u);
  EXPECT_EQ(q.Pop().req_id, 3u);
}

TEST(WfqQueueTest, HigherQuotaShareServedMoreOften) {
  WfqQueue q;
  // Tenant 1 has 3x the quota share of tenant 2; equal request costs.
  for (uint64_t i = 0; i < 40; i++) {
    q.Push(MakeReq(100 + i, 1, 1.0, 0.75), 1.0);
    q.Push(MakeReq(200 + i, 2, 1.0, 0.25), 1.0);
  }
  std::map<TenantId, int> served;
  for (int i = 0; i < 40; i++) served[q.Pop().tenant]++;
  // Tenant 1 should get ~3x the service of tenant 2 in the first 40 pops.
  EXPECT_GT(served[1], served[2]);
  EXPECT_NEAR(static_cast<double>(served[1]) / served[2], 3.0, 1.0);
}

TEST(WfqQueueTest, CheapRequestsDoNotStarveExpensiveTenant) {
  WfqQueue q;
  // Tenant 1: many cheap requests; tenant 2: few expensive ones. Equal
  // shares: tenant 2 must still be served at cost parity, not count
  // parity.
  for (uint64_t i = 0; i < 100; i++) q.Push(MakeReq(i, 1, 1.0, 0.5), 1.0);
  for (uint64_t i = 0; i < 10; i++) {
    q.Push(MakeReq(1000 + i, 2, 10.0, 0.5), 10.0);
  }
  double t1_cost = 0, t2_cost = 0;
  for (int i = 0; i < 60; i++) {
    SchedRequest r = q.Pop();
    (r.tenant == 1 ? t1_cost : t2_cost) += r.cpu_cost_ru;
  }
  EXPECT_NEAR(t1_cost, t2_cost, 11.0);  // Within one large request.
}

TEST(WfqQueueTest, CumulativeVftPreventsPriorityLock) {
  // Paper: "the VFT for all requests from the same tenant is cumulative,
  // preventing scenarios where a single tenant's requests are consistently
  // prioritized, even with a larger partition quota".
  WfqQueue q;
  for (uint64_t i = 0; i < 50; i++) q.Push(MakeReq(i, 1, 1.0, 0.9), 1.0);
  q.Push(MakeReq(999, 2, 1.0, 0.1), 1.0);
  // Tenant 2's single request must be served well before tenant 1 drains.
  bool t2_served = false;
  for (int i = 0; i < 15 && !t2_served; i++) {
    t2_served = q.Pop().tenant == 2;
  }
  EXPECT_TRUE(t2_served);
}

TEST(WfqQueueTest, IdleTenantResumesAtVirtualTime) {
  WfqQueue q;
  // Tenant 1 works for a while, advancing virtual time.
  for (uint64_t i = 0; i < 20; i++) q.Push(MakeReq(i, 1, 1.0, 0.5), 1.0);
  for (int i = 0; i < 20; i++) q.Pop();
  double vt = q.VirtualTime();
  EXPECT_GT(vt, 0);
  // Tenant 2 was idle the whole time. Its first request starts at the
  // current virtual time, not at zero — no unfair catch-up burst.
  q.Push(MakeReq(100, 2, 1.0, 0.5), 1.0);
  q.Push(MakeReq(101, 1, 1.0, 0.5), 1.0);
  EXPECT_GE(q.PeekVft(), vt);
}

TEST(WfqQueueTest, ReinsertPreservesVft) {
  WfqQueue q;
  q.Push(MakeReq(1, 1, 1.0, 0.5), 1.0);
  q.Push(MakeReq(2, 2, 5.0, 0.5), 5.0);
  double vft;
  SchedRequest r = q.PopWithVft(&vft);
  EXPECT_EQ(r.req_id, 1u);
  q.Reinsert(r, vft);
  // Reinserted request keeps its place at the head.
  EXPECT_EQ(q.Pop().req_id, 1u);
}

// ---------------------------------------------------------- DualLayerWfq --

DualWfqOptions SmallWfqOptions() {
  DualWfqOptions o;
  o.cpu_budget_ru = 100;
  o.read_concurrency = 1000;
  o.write_concurrency = 1000;
  o.write_ru_ceiling = 50;
  o.io_basic_threads = 2;
  o.io_extra_threads = 1;
  o.io_blocks_per_thread = 10;
  return o;
}

struct Recorder {
  std::map<uint64_t, SchedOutcome> outcomes;
  DualLayerWfq::CompleteFn Fn() {
    return [this](const SchedRequest& r, SchedOutcome o) {
      outcomes[r.req_id] = o;
    };
  }
};

TEST(DualLayerWfqTest, CacheHitCompletesAtCpuLayer) {
  DualLayerWfq wfq(SmallWfqOptions());
  wfq.Enqueue(MakeReq(1, 1, 1.0, 1.0));
  Recorder rec;
  TickStats stats = wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{/*hit=*/true, /*needs_io=*/false, 0};
      },
      rec.Fn());
  EXPECT_EQ(rec.outcomes[1], SchedOutcome::kServedFromCache);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.io_scheduled, 0u);
}

TEST(DualLayerWfqTest, MissGoesThroughIoLayer) {
  DualLayerWfq wfq(SmallWfqOptions());
  wfq.Enqueue(MakeReq(1, 1, 1.0, 1.0));
  Recorder rec;
  TickStats stats = wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{false, true, 3};
      },
      rec.Fn());
  EXPECT_EQ(rec.outcomes[1], SchedOutcome::kServedFromDisk);
  EXPECT_EQ(stats.io_scheduled, 1u);
  EXPECT_EQ(stats.io_blocks_used, 3u);
}

TEST(DualLayerWfqTest, WriteCompletesAtCpuWithoutIo) {
  DualLayerWfq wfq(SmallWfqOptions());
  wfq.Enqueue(MakeReq(1, 1, 1.0, 1.0, /*is_read=*/false,
                      RequestClass::kSmallWrite));
  Recorder rec;
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{false, false, 0};
      },
      rec.Fn());
  EXPECT_EQ(rec.outcomes[1], SchedOutcome::kServedFromCpu);
}

TEST(DualLayerWfqTest, CpuBudgetDefersExcess) {
  DualLayerWfq wfq(SmallWfqOptions());  // Budget 100 RU.
  for (uint64_t i = 0; i < 30; i++) {
    wfq.Enqueue(MakeReq(i, 1, 10.0, 1.0));  // 300 RU total.
  }
  Recorder rec;
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{true, false, 0};
      },
      rec.Fn());
  // ~10 requests fit in the 100-RU budget; the rest stay queued.
  EXPECT_LE(rec.outcomes.size(), 11u);
  EXPECT_GT(wfq.PendingCount(), 0u);
  // Next tick serves more.
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{true, false, 0};
      },
      rec.Fn());
  EXPECT_GT(rec.outcomes.size(), 11u);
}

TEST(DualLayerWfqTest, Rule2WriteRuCeiling) {
  DualWfqOptions o = SmallWfqOptions();
  o.write_ru_ceiling = 20;
  DualLayerWfq wfq(o);
  for (uint64_t i = 0; i < 10; i++) {
    wfq.Enqueue(MakeReq(i, 1, 10.0, 1.0, false, RequestClass::kSmallWrite));
  }
  Recorder rec;
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{false, false, 0};
      },
      rec.Fn());
  // Only ceiling/cost = 2 writes may run this tick despite CPU headroom.
  EXPECT_LE(rec.outcomes.size(), 2u);
}

TEST(DualLayerWfqTest, Rule2ConcurrencyLimits) {
  DualWfqOptions o = SmallWfqOptions();
  o.read_concurrency = 5;
  DualLayerWfq wfq(o);
  for (uint64_t i = 0; i < 20; i++) wfq.Enqueue(MakeReq(i, 1, 1.0, 1.0));
  Recorder rec;
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{true, false, 0};
      },
      rec.Fn());
  EXPECT_EQ(rec.outcomes.size(), 5u);
}

TEST(DualLayerWfqTest, Rule3SingleTenantCpuCap) {
  DualWfqOptions o = SmallWfqOptions();
  o.cpu_budget_ru = 100;
  o.single_tenant_cpu_cap = 0.9;
  DualLayerWfq wfq(o);
  // Tenant 1 floods; tenant 2 sends a little.
  for (uint64_t i = 0; i < 30; i++) wfq.Enqueue(MakeReq(i, 1, 10.0, 0.95));
  for (uint64_t i = 0; i < 2; i++) {
    wfq.Enqueue(MakeReq(100 + i, 2, 1.0, 0.05));
  }
  Recorder rec;
  TickStats stats = wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{true, false, 0};
      },
      rec.Fn());
  // Tenant 1 capped at 90 RU (9 requests); tenant 2 fully served.
  double t1_ru = 0;
  int t2_served = 0;
  for (const auto& [id, o2] : rec.outcomes) {
    if (id >= 100) {
      t2_served++;
    } else {
      t1_ru += 10.0;
    }
  }
  EXPECT_LE(t1_ru, 90.0);
  EXPECT_EQ(t2_served, 2);
  EXPECT_GT(stats.rule3_deferrals, 0u);
}

TEST(DualLayerWfqTest, Rule4ExtraThreadsServeOtherTenants) {
  DualWfqOptions o = SmallWfqOptions();
  o.io_basic_threads = 1;
  o.io_blocks_per_thread = 10;  // Basic budget: 10 blocks.
  o.io_extra_threads = 1;       // Extra budget: 10 blocks.
  DualLayerWfq wfq(o);
  // Tenant 1 monopolizes: 20 x 1-block IO requests with a dominant quota
  // share, so the whole basic budget goes to it in VFT order; tenant 2's
  // two requests land beyond the basic budget.
  for (uint64_t i = 0; i < 20; i++) wfq.Enqueue(MakeReq(i, 1, 1.0, 0.99));
  for (uint64_t i = 0; i < 2; i++) {
    wfq.Enqueue(MakeReq(100 + i, 2, 1.0, 0.01));
  }
  Recorder rec;
  TickStats stats = wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{false, true, 1};
      },
      rec.Fn());
  // Tenant 2's requests are served via extra threads even though tenant 1
  // consumed the whole basic budget.
  EXPECT_TRUE(stats.extra_threads_active);
  EXPECT_TRUE(rec.outcomes.count(100));
  EXPECT_TRUE(rec.outcomes.count(101));
  EXPECT_GT(stats.rule4_extra_served, 0u);
}

TEST(DualLayerWfqTest, NoMonopolyNoExtraThreads) {
  DualWfqOptions o = SmallWfqOptions();
  o.io_basic_threads = 1;
  o.io_blocks_per_thread = 10;
  DualLayerWfq wfq(o);
  // Two tenants split the IO load evenly: extra threads must stay idle.
  for (uint64_t i = 0; i < 10; i++) {
    wfq.Enqueue(MakeReq(i, 1, 1.0, 0.5));
    wfq.Enqueue(MakeReq(100 + i, 2, 1.0, 0.5));
  }
  Recorder rec;
  TickStats stats = wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{false, true, 1};
      },
      rec.Fn());
  EXPECT_FALSE(stats.extra_threads_active);
}

TEST(DualLayerWfqTest, FourClassesIsolateSizes) {
  DualWfqOptions o = SmallWfqOptions();
  o.cpu_budget_ru = 1000;
  DualLayerWfq wfq(o);
  // A huge large-read backlog must not delay small reads: each class has
  // its own queue and the round-robin visits all of them.
  for (uint64_t i = 0; i < 50; i++) {
    wfq.Enqueue(MakeReq(i, 1, 10.0, 0.5, true, RequestClass::kLargeRead));
  }
  wfq.Enqueue(MakeReq(500, 2, 1.0, 0.5, true, RequestClass::kSmallRead));
  Recorder rec;
  wfq.RunTick(
      [](const SchedRequest&) {
        return CacheProbe{true, false, 0};
      },
      rec.Fn());
  EXPECT_TRUE(rec.outcomes.count(500));
}

// Property sweep: with two tenants at a quota ratio r and saturated
// demand, served RU must approximate the ratio r.
class WfqFairnessTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WfqFairnessTest, ServedRuMatchesQuotaRatio) {
  auto [share1, share2] = GetParam();
  DualWfqOptions o = SmallWfqOptions();
  o.cpu_budget_ru = 200;
  o.single_tenant_cpu_cap = 1.0;  // Isolate pure WFQ behaviour.
  DualLayerWfq wfq(o);

  double served1 = 0, served2 = 0;
  auto complete = [&](const SchedRequest& r, SchedOutcome) {
    (r.tenant == 1 ? served1 : served2) += r.cpu_cost_ru;
  };
  for (int tick = 0; tick < 20; tick++) {
    // Both tenants stay saturated: per-tenant arrivals exceed what WFQ can
    // serve them, so the service ratio reflects pure quota weighting.
    for (uint64_t i = 0; i < 250; i++) {
      wfq.Enqueue(MakeReq(tick * 10000 + i, 1, 1.0, share1));
      wfq.Enqueue(
          MakeReq(tick * 10000 + 5000 + i, 2, 1.0, share2));
    }
    wfq.RunTick(
        [](const SchedRequest&) {
          return CacheProbe{true, false, 0};
        },
        complete);
  }
  double expected_ratio = share1 / share2;
  EXPECT_NEAR(served1 / served2, expected_ratio, expected_ratio * 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    QuotaRatios, WfqFairnessTest,
    ::testing::Values(std::make_pair(0.5, 0.5), std::make_pair(0.6, 0.3),
                      std::make_pair(0.8, 0.2), std::make_pair(0.75, 0.25)));

}  // namespace
}  // namespace sched
}  // namespace abase
