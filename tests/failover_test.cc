// Tests for the live node failure domain: DataNode lifecycle, the Fault
// pipeline stage, epoch-versioned routing with redirect chases, stranded
// in-flight resolution, WAL catch-up with primary failback, and the
// determinism of a mid-run failover under any data-plane worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/abase.h"
#include "node/data_node.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

// ----------------------------------------------------------- Node lifecycle --

TEST(NodeLifecycleTest, FailedNodeRejectsSubmissionsAndDropsWork) {
  SimClock clock(0);
  node::DataNode node(0, node::DataNodeOptions{}, &clock);
  node.AddReplica(1, 0, /*partition_quota_ru=*/1000, /*is_primary=*/true);
  ASSERT_TRUE(node.EngineFor(1, 0)->Put("k", "v").ok());

  NodeRequest req;
  req.req_id = 1;
  req.tenant = 1;
  req.partition = 0;
  req.op = OpType::kGet;
  req.key = "k";
  node.Submit(req);
  EXPECT_EQ(node.state(), node::NodeState::kAlive);

  node.Fail();
  EXPECT_EQ(node.state(), node::NodeState::kFailed);
  // The queued request was dropped: ticking produces no response for it.
  node.Tick();
  EXPECT_TRUE(node.TakeResponses().empty());

  // Submissions while down come back Unavailable immediately.
  req.req_id = 2;
  node.Submit(req);
  auto rejected = node.TakeResponses();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_TRUE(rejected[0].status.IsUnavailable());

  // Recovery replays the WAL: the engine still serves pre-crash keys.
  node.StartRecovery();
  EXPECT_EQ(node.state(), node::NodeState::kRecovering);
  node.CompleteRecovery();
  EXPECT_EQ(node.state(), node::NodeState::kAlive);
  auto r = node.EngineFor(1, 0)->Get("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v");
}

TEST(NodeLifecycleTest, PrimaryFlagFollowsMetaPromotion) {
  SimClock clock(0);
  node::DataNode node(0, node::DataNodeOptions{}, &clock);
  node.AddReplica(1, 0, 1000, /*is_primary=*/true);
  EXPECT_TRUE(node.IsPrimaryFor(1, 0));
  node.SetReplicaPrimary(1, 0, false);
  EXPECT_FALSE(node.IsPrimaryFor(1, 0));
  EXPECT_FALSE(node.IsPrimaryFor(1, 99));  // Not hosted at all.
}

// ------------------------------------------------------------ Failover flow --

meta::TenantConfig FailoverTenant(TenantId id, uint32_t partitions = 1,
                                  int replicas = 3) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = 50000;
  c.num_partitions = partitions;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  c.replicas = replicas;
  return c;
}

TEST(FailoverTest, PromotedReplicaServesRealDataAndFailbackRestoresPrimary) {
  ClusterOptions copts;
  copts.sim.seed = 31;
  copts.sim.failover_detection_ticks = 1;
  copts.sim.replication_lag_ticks = 0;
  // This test holds the node down across many sync-op ticks; keep the
  // executed re-replication out of the picture (covered separately).
  copts.sim.re_replication_delay_ticks = 64;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);

  constexpr int kKeys = 10;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(client.Set("k" + std::to_string(i),
                           "v" + std::to_string(i)).ok());
  }

  const NodeId primary = cluster.meta().PrimaryFor(1, 0);
  ASSERT_NE(primary, kInvalidNode);
  const uint64_t epoch_before = cluster.RoutingEpoch();

  // Kill the primary. Before the failure detector fires, the routing
  // table still points at the dead node and requests resolve Unavailable.
  cluster.FailNode(primary);
  auto in_window = client.Get("k0");
  EXPECT_TRUE(in_window.status().IsUnavailable());

  // After the detection delay, a surviving replica is promoted and the
  // routing epoch moves.
  cluster.RunTicks(3);
  EXPECT_EQ(cluster.sim().DownNodeCount(), 1u);
  EXPECT_NE(cluster.meta().PrimaryFor(1, 0), primary);
  EXPECT_GT(cluster.RoutingEpoch(), epoch_before);
  ASSERT_TRUE(cluster.sim().LastFailoverReport().has_value());
  EXPECT_EQ(cluster.sim().LastFailoverReport()->primaries_promoted, 1u);
  EXPECT_FALSE(
      cluster.sim().LastFailoverReport()->re_replication_targets.empty());
  // With replication lag 0, every acknowledged write had been applied by
  // the promoted replica before the crash: no lost-write window.
  EXPECT_EQ(cluster.sim().LastFailoverReport()->lost_acked_writes, 0u);

  // The promoted replica serves its actually-applied state: every
  // pre-crash value is readable *during* the failure window.
  for (int i = 0; i < kKeys; i++) {
    auto r = client.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "k" << i << " during window: "
                        << r.status().ToString();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }

  // Writes accepted by the interim primary extend the same stream.
  ASSERT_TRUE(client.Set("k-interim", "written-while-failed").ok());

  // Recover: log-delta resync + catch-up ticks, then failback.
  cluster.RecoverNode(primary, /*catch_up_ticks=*/2);
  cluster.RunTicks(4);
  EXPECT_EQ(cluster.sim().DownNodeCount(), 0u);
  EXPECT_EQ(cluster.meta().PrimaryFor(1, 0), primary);

  // Post-failback reads return every pre-crash value AND the interim
  // window's writes: the recovered node resynced the real log delta
  // from the interim primary before taking the lead back.
  for (int i = 0; i < kKeys; i++) {
    auto r = client.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "k" << i << ": " << r.status().ToString();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
  auto interim = client.Get("k-interim");
  ASSERT_TRUE(interim.ok()) << interim.status().ToString();
  EXPECT_EQ(interim.value(), "written-while-failed");

  // The failure window left visible fingerprints in the tenant metrics:
  // Unavailable resolutions while the primary was dark, and at least one
  // redirect chase per epoch change.
  uint64_t unavailable = 0, redirects = 0;
  for (const auto& m : cluster.sim().History(1)) {
    unavailable += m.unavailable;
    redirects += m.redirects;
  }
  EXPECT_GT(unavailable, 0u);
  EXPECT_GE(redirects, 2u);  // Failover redirect + failback redirect.
}

// ------------------------------------------------------ Lost-write window --

/// Writes a steady stream of acknowledged SETs, kills the primary, and
/// measures the lost-write window two ways: the promotion report's
/// `lost_acked_writes`, and the acknowledged keys no longer readable
/// from the promoted replica. Proxy caches are disabled so reads measure
/// engine state, not cached copies.
struct LagRunResult {
  uint64_t reported_lost = 0;
  uint64_t measured_lost = 0;
  size_t acked = 0;
};

LagRunResult RunLostWriteScenario(int lag) {
  ClusterOptions copts;
  copts.sim.seed = 77;
  copts.sim.failover_detection_ticks = 0;
  copts.sim.replication_lag_ticks = lag;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  EXPECT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
  cluster.sim().SetProxyCacheEnabled(1, false);
  Client client = cluster.OpenClient(1);

  constexpr int kTicks = 8;
  constexpr int kWritesPerTick = 5;
  std::vector<std::string> acked_keys;
  for (int t = 0; t < kTicks; t++) {
    std::vector<Command> batch;
    std::vector<std::string> keys;
    for (int i = 0; i < kWritesPerTick; i++) {
      std::string key = "w" + std::to_string(t) + "_" + std::to_string(i);
      keys.push_back(key);
      batch.push_back(Command::Set(key, "v"));
    }
    std::vector<Future<Reply>> futures = client.SubmitBatch(std::move(batch));
    cluster.Step();
    for (size_t i = 0; i < futures.size(); i++) {
      if (futures[i].ready() && (*futures[i]).ok()) {
        acked_keys.push_back(keys[i]);
      }
    }
  }

  const NodeId primary = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(primary);
  cluster.RunTicks(2);  // Crash lands; detection 0 promotes immediately.
  EXPECT_NE(cluster.meta().PrimaryFor(1, 0), primary);

  LagRunResult res;
  res.acked = acked_keys.size();
  EXPECT_TRUE(cluster.sim().LastFailoverReport().has_value());
  if (cluster.sim().LastFailoverReport().has_value()) {
    res.reported_lost =
        cluster.sim().LastFailoverReport()->lost_acked_writes;
  }
  for (const std::string& key : acked_keys) {
    auto r = client.Get(key);
    if (!r.ok()) res.measured_lost++;
  }
  return res;
}

TEST(FailoverTest, LostAckedWriteWindowGrowsMonotonicallyWithLag) {
  LagRunResult lag0 = RunLostWriteScenario(0);
  LagRunResult lag2 = RunLostWriteScenario(2);
  LagRunResult lag4 = RunLostWriteScenario(4);
  ASSERT_GT(lag0.acked, 0u);

  // Lag 0: every acknowledged write survives the primary kill.
  EXPECT_EQ(lag0.reported_lost, 0u);
  EXPECT_EQ(lag0.measured_lost, 0u);

  // Lag > 0: a real, measurable loss that grows with the lag, and the
  // promotion report's accounting matches what clients observe.
  EXPECT_GT(lag2.measured_lost, lag0.measured_lost);
  EXPECT_GT(lag4.measured_lost, lag2.measured_lost);
  EXPECT_EQ(lag2.reported_lost, lag2.measured_lost);
  EXPECT_EQ(lag4.reported_lost, lag4.measured_lost);
}

// ------------------------------------------------- Executed re-replication --

TEST(FailoverTest, ReReplicationExecutesWhenNodeStaysDown) {
  ClusterOptions copts;
  copts.sim.seed = 101;
  copts.sim.failover_detection_ticks = 0;
  copts.sim.replication_lag_ticks = 0;
  copts.sim.re_replication_delay_ticks = 2;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(5);
  ASSERT_TRUE(
      cluster.CreateTenant(FailoverTenant(1, /*partitions=*/1), pool).ok());
  cluster.sim().SetProxyCacheEnabled(1, false);
  Client client = cluster.OpenClient(1);

  constexpr int kKeys = 8;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(client.Set("k" + std::to_string(i),
                           "v" + std::to_string(i)).ok());
  }

  const NodeId victim = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(victim);
  cluster.RunTicks(8);  // Detection + grace period + copy ticks.

  // The planned target was executed: real partition state placed on a
  // new node, the dead node evicted from the placement.
  EXPECT_GT(cluster.sim().ExecutedRebuildCount(), 0u);
  ASSERT_TRUE(cluster.sim().LastFailoverReport().has_value());
  EXPECT_EQ(cluster.sim().LastFailoverReport()->replicas_rebuilt_executed,
            cluster.sim().ExecutedRebuildCount());
  const meta::TenantMeta* tm = cluster.meta().GetTenant(1);
  ASSERT_NE(tm, nullptr);
  const auto& reps = tm->partitions[0].replicas;
  EXPECT_EQ(std::find(reps.begin(), reps.end(), victim), reps.end())
      << "dead node should have been replaced in the placement";
  for (NodeId nid : reps) {
    node::DataNode* n = cluster.sim().FindNode(nid);
    ASSERT_NE(n, nullptr);
    EXPECT_TRUE(n->HasReplica(1, 0));
    // Every placement member holds the real pre-crash data.
    storage::LsmEngine* engine = n->EngineFor(1, 0);
    ASSERT_NE(engine, nullptr);
    for (int i = 0; i < kKeys; i++) {
      auto r = engine->Get("k" + std::to_string(i));
      ASSERT_TRUE(r.ok()) << "node " << nid << " k" << i;
      EXPECT_EQ(r.value(), "v" + std::to_string(i));
    }
  }

  // The evicted node recovering later must NOT fail back into a
  // partition it no longer owns.
  cluster.RecoverNode(victim, 1);
  cluster.RunTicks(3);
  EXPECT_NE(cluster.meta().PrimaryFor(1, 0), victim);
  node::DataNode* returned = cluster.sim().FindNode(victim);
  ASSERT_NE(returned, nullptr);
  EXPECT_FALSE(returned->IsPrimaryFor(1, 0));

  // Kill the interim primary too: the rebuilt replica carries the data,
  // so the partition promotes again and pre-crash keys stay readable.
  const NodeId interim = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(interim);
  cluster.RunTicks(2);
  ASSERT_NE(cluster.meta().PrimaryFor(1, 0), interim);
  for (int i = 0; i < kKeys; i++) {
    auto r = client.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "k" << i << " after double failure: "
                        << r.status().ToString();
  }
}

TEST(FailoverTest, ReReplicationCancelledWhenNodeRecoversInTime) {
  ClusterOptions copts;
  copts.sim.seed = 103;
  copts.sim.failover_detection_ticks = 0;
  copts.sim.re_replication_delay_ticks = 6;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(5);
  ASSERT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);
  ASSERT_TRUE(client.Set("k", "v").ok());

  const NodeId victim = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(victim);
  cluster.RunTicks(2);
  EXPECT_GT(cluster.sim().PendingRebuildCount(), 0u);

  cluster.RecoverNode(victim, 1);
  cluster.RunTicks(6);
  // Recovery beat the grace period: no copy was executed, the node took
  // its primary back.
  EXPECT_EQ(cluster.sim().ExecutedRebuildCount(), 0u);
  EXPECT_EQ(cluster.sim().PendingRebuildCount(), 0u);
  EXPECT_EQ(cluster.meta().PrimaryFor(1, 0), victim);
}

// ----------------------------------------------------------- Replica reads --

TEST(FailoverTest, EventualReadsBalanceAcrossReplicasAndSurviveOutage) {
  ClusterOptions copts;
  copts.sim.seed = 109;
  copts.sim.failover_detection_ticks = 1;
  copts.sim.replication_lag_ticks = 1;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(
      cluster.CreateTenant(FailoverTenant(1, /*partitions=*/1), pool).ok());
  cluster.sim().SetProxyCacheEnabled(1, false);
  Client client = cluster.OpenClient(1);

  ASSERT_TRUE(client.Set("k", "v").ok());
  cluster.RunTicks(2);  // Let the stream catch the replicas up.

  // Eventual GETs round-robin over the three replicas: some land on
  // non-primary replicas and are counted (with staleness) in metrics.
  std::vector<Command> reads;
  for (int i = 0; i < 9; i++) reads.push_back(Command::GetEventual("k"));
  std::vector<Future<Reply>> futures = client.SubmitBatch(std::move(reads));
  cluster.Drain();
  for (const auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f->ok()) << f->status.ToString();
    EXPECT_EQ(f->value, "v");
  }
  uint64_t replica_reads = 0;
  for (const auto& m : cluster.sim().History(1)) {
    replica_reads += m.replica_reads;
  }
  EXPECT_GT(replica_reads, 0u);

  // During the primary outage — before the failure detector promotes —
  // primary reads fail but eventual reads keep serving off replicas.
  // Both reads land in the tick the crash does: the routing table still
  // points at the dead primary.
  const NodeId primary = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(primary);
  auto primary_read = client.Submit(Command::Get("k"));
  auto eventual_read = client.Submit(Command::GetEventual("k"));
  cluster.Step();  // Crash lands; detection countdown still running.
  cluster.Drain();
  ASSERT_TRUE(primary_read.ready());
  ASSERT_TRUE(eventual_read.ready());
  EXPECT_TRUE(primary_read->status.IsUnavailable());
  EXPECT_TRUE(eventual_read->ok()) << eventual_read->status.ToString();
  EXPECT_EQ(eventual_read->value, "v");
}

TEST(FailoverTest, StrandedInflightRequestsResolveUnavailable) {
  ClusterOptions copts;
  copts.sim.seed = 17;
  // Tiny CPU budget so most of a burst defers across tick boundaries and
  // is genuinely in flight when the crash lands.
  copts.sim.node.wfq.cpu_budget_ru = 25;
  copts.sim.failover_detection_ticks = 1;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
  cluster.sim().PreloadKeys(1, 64, 64);
  Client client = cluster.OpenClient(1);

  std::vector<Command> cmds;
  for (int i = 0; i < 200; i++) {
    cmds.push_back(Command::Get("t1:k" + std::to_string(i % 64)));
  }
  std::vector<Future<Reply>> futures = client.SubmitBatch(std::move(cmds));

  cluster.Step();
  ASSERT_GT(cluster.sim().InflightCount(), 0u)
      << "burst did not back up; the test would not exercise stranding";

  const NodeId primary = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(primary);
  cluster.Step();  // Fault stage drops the node; stranded ids resolve.
  EXPECT_EQ(cluster.sim().InflightCount(), 0u);

  cluster.Drain();
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  EXPECT_EQ(cluster.sim().OutcomeSubscriptionCount(), 0u);

  size_t ok = 0, unavailable = 0, other = 0;
  for (const auto& f : futures) {
    ASSERT_TRUE(f.ready());
    if (f->ok() || f->status.IsNotFound()) {
      ok++;
    } else if (f->status.IsUnavailable()) {
      unavailable++;
    } else {
      other++;
    }
  }
  EXPECT_GT(ok, 0u);           // The pre-crash tick served some.
  EXPECT_GT(unavailable, 0u);  // The stranded remainder all resolved.
  EXPECT_EQ(ok + unavailable + other, futures.size());
}

TEST(FailoverTest, OverlappingFailuresFailBackToOldestPrimary) {
  // A (original primary, holds the data) fails -> B promoted. B fails
  // while interim primary -> C promoted. Whichever order A and B recover
  // in, A must end up leading again: B's engine only holds its brief
  // interim window, so letting it usurp A would flip pre-crash keys back
  // to NotFound.
  for (bool b_recovers_first : {false, true}) {
    ClusterOptions copts;
    copts.sim.seed = 47;
    copts.sim.failover_detection_ticks = 0;
    Cluster cluster(copts);
    PoolId pool = cluster.CreatePool(3);
    ASSERT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
    Client client = cluster.OpenClient(1);
    ASSERT_TRUE(client.Set("k", "pre-crash").ok());

    const NodeId a = cluster.meta().PrimaryFor(1, 0);
    cluster.FailNode(a);
    cluster.RunTicks(2);
    const NodeId b = cluster.meta().PrimaryFor(1, 0);
    ASSERT_NE(b, a);
    cluster.FailNode(b);
    cluster.RunTicks(2);
    ASSERT_NE(cluster.meta().PrimaryFor(1, 0), b);  // C leads.

    const NodeId first = b_recovers_first ? b : a;
    const NodeId second = b_recovers_first ? a : b;
    cluster.RecoverNode(first, 1);
    cluster.RunTicks(3);
    cluster.RecoverNode(second, 1);
    cluster.RunTicks(3);

    EXPECT_EQ(cluster.meta().PrimaryFor(1, 0), a)
        << "b_recovers_first=" << b_recovers_first;
    auto r = client.Get("k");
    ASSERT_TRUE(r.ok()) << "b_recovers_first=" << b_recovers_first << ": "
                        << r.status().ToString();
    EXPECT_EQ(r.value(), "pre-crash");
  }
}

TEST(FailoverTest, SingleReplicaPartitionStaysUnavailableUntilRecovery) {
  ClusterOptions copts;
  copts.sim.seed = 23;
  copts.sim.failover_detection_ticks = 0;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(3);
  ASSERT_TRUE(
      cluster.CreateTenant(FailoverTenant(1, 1, /*replicas=*/1), pool).ok());
  Client client = cluster.OpenClient(1);
  ASSERT_TRUE(client.Set("k", "v").ok());

  const NodeId primary = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(primary);
  cluster.RunTicks(2);

  // No surviving replica to promote: the partition keeps its dead
  // primary and requests resolve Unavailable.
  EXPECT_EQ(cluster.meta().PrimaryFor(1, 0), primary);
  auto during = client.Get("k");
  EXPECT_TRUE(during.status().IsUnavailable());

  cluster.RecoverNode(primary, 1);
  cluster.RunTicks(3);
  auto after = client.Get("k");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "v");
}

TEST(FailoverTest, PermanentLossForfeitsFailbackClaims) {
  // A fails live -> B promoted (A holds a failback claim). The operator
  // then declares A permanently lost. A's ghost claim must not block B's
  // own failback after B later fails and recovers.
  ClusterOptions copts;
  copts.sim.seed = 61;
  copts.sim.failover_detection_ticks = 0;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(cluster.CreateTenant(FailoverTenant(1), pool).ok());
  Client client = cluster.OpenClient(1);
  ASSERT_TRUE(client.Set("k", "v").ok());

  const NodeId a = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(a);
  cluster.RunTicks(2);
  const NodeId b = cluster.meta().PrimaryFor(1, 0);
  ASSERT_NE(b, a);
  ASSERT_TRUE(cluster.meta().FailNode(pool, a).ok());  // Permanent loss.

  cluster.FailNode(b);
  cluster.RunTicks(2);
  ASSERT_NE(cluster.meta().PrimaryFor(1, 0), b);
  cluster.RecoverNode(b, 1);
  cluster.RunTicks(3);
  EXPECT_EQ(cluster.meta().PrimaryFor(1, 0), b);
}

TEST(FailoverTest, DownNodesInvisibleToReschedulingAndMigration) {
  ClusterOptions copts;
  copts.sim.seed = 53;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(4);
  ASSERT_TRUE(
      cluster.CreateTenant(FailoverTenant(1, /*partitions=*/4), pool).ok());

  const NodeId victim = cluster.meta().PrimaryFor(1, 0);
  cluster.FailNode(victim);
  cluster.RunTicks(2);

  // The pool model omits the dead node entirely — its zeroed load must
  // not make it the pool's most attractive migration destination.
  resched::PoolModel model = cluster.sim().BuildPoolModel(pool);
  EXPECT_EQ(model.nodes().size(), 3u);
  for (const auto& nm : model.nodes()) {
    EXPECT_NE(nm.id(), victim);
  }

  // And a direct migration onto it is rejected.
  NodeId src = cluster.meta().PrimaryFor(1, 1);
  Status st = cluster.meta().MigrateReplica(1, 1, src, victim);
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
}

// ------------------------------------------------------------- Determinism --

/// The pipeline_test determinism scenario with a mid-run primary failure
/// and recovery spliced in at fixed ticks.
std::vector<std::vector<sim::TenantTickMetrics>> RunFailoverScenario(
    int workers, size_t ticks) {
  sim::SimOptions opt;
  opt.seed = 4321;
  opt.data_plane_workers = workers;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(16);

  constexpr TenantId kTenants = 8;
  for (TenantId t = 1; t <= kTenants; t++) {
    meta::TenantConfig c = FailoverTenant(t, /*partitions=*/4);
    c.tenant_quota_ru = 20000 + 1000.0 * t;
    c.num_proxies = 2;
    EXPECT_TRUE(sim.AddTenant(c, pool).ok());
    sim.PreloadKeys(t, /*num_keys=*/200, /*value_bytes=*/256);

    sim::WorkloadProfile profile;
    profile.base_qps = 150 + 30.0 * t;
    profile.read_ratio = (t % 2 == 0) ? 0.95 : 0.6;
    profile.num_keys = 200;
    profile.value_bytes = 256;
    // Replica reads must stay deterministic through the failover too.
    profile.eventual_read_fraction = (t % 2 == 0) ? 0.4 : 0.0;
    sim.SetWorkload(t, profile);
  }

  const NodeId victim = sim.meta().PrimaryFor(1, 0);
  for (size_t tick = 0; tick < ticks; tick++) {
    if (tick == 6) sim.FailNode(victim);
    if (tick == 13) sim.RecoverNode(victim, 2);
    sim.Tick();
  }

  std::vector<std::vector<sim::TenantTickMetrics>> histories;
  for (TenantId t = 1; t <= kTenants; t++) {
    histories.push_back(sim.History(t));
  }
  return histories;
}

TEST(FailoverTest, MidRunFailoverBitIdenticalAcrossWorkers) {
  constexpr size_t kTicks = 24;
  auto serial = RunFailoverScenario(/*workers=*/1, kTicks);
  ASSERT_FALSE(serial.empty());

  // The scenario must actually exercise the failure domain.
  uint64_t unavailable = 0, redirects = 0;
  for (const auto& history : serial) {
    for (const auto& m : history) {
      unavailable += m.unavailable;
      redirects += m.redirects;
    }
  }
  EXPECT_GT(unavailable, 0u);
  EXPECT_GT(redirects, 0u);

  for (int workers : {2, 4}) {
    auto parallel = RunFailoverScenario(workers, kTicks);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (size_t t = 0; t < serial.size(); t++) {
      ASSERT_EQ(parallel[t].size(), serial[t].size())
          << workers << " workers, tenant " << t + 1;
      for (size_t tick = 0; tick < serial[t].size(); tick++) {
        const auto& a = serial[t][tick];
        const auto& b = parallel[t][tick];
        ASSERT_TRUE(a.issued == b.issued && a.ok == b.ok &&
                    a.errors == b.errors && a.throttled == b.throttled &&
                    a.unavailable == b.unavailable &&
                    a.redirects == b.redirects &&
                    a.replica_reads == b.replica_reads &&
                    a.replica_lag_sum == b.replica_lag_sum &&
                    a.proxy_hits == b.proxy_hits &&
                    a.node_cache_hits == b.node_cache_hits &&
                    a.disk_reads == b.disk_reads &&
                    a.reads_completed == b.reads_completed &&
                    a.ru_charged == b.ru_charged &&
                    a.latency_sum == b.latency_sum &&
                    a.latency_max == b.latency_max &&
                    a.latency_count == b.latency_count)
            << workers << " workers, tenant " << t + 1 << ", tick " << tick;
      }
    }
  }
}

}  // namespace
}  // namespace abase
