// Unit tests for SmallVec: inline-to-heap spill, move semantics (both
// the inline element-move and the heap buffer steal), and destructor
// accounting for non-trivial element types.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "common/smallvec.h"

namespace abase {
namespace {

TEST(SmallVecTest, StaysInlineUpToCapacity) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; i++) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; i++) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, SpillsToHeapBeyondInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; i++) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; i++) ASSERT_EQ(v[i], i);
}

TEST(SmallVecTest, MoveStealsHeapBuffer) {
  SmallVec<std::string, 2> v;
  for (int i = 0; i < 10; i++) v.push_back("value-" + std::to_string(i));
  const std::string* data_before = v.data();

  SmallVec<std::string, 2> moved(std::move(v));
  EXPECT_EQ(moved.data(), data_before);  // Buffer stolen, not copied.
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 10; i++) {
    ASSERT_EQ(moved[i], "value-" + std::to_string(i));
  }
}

TEST(SmallVecTest, MoveOfInlineElementsMovesEach) {
  SmallVec<std::string, 8> v;
  v.push_back(std::string(100, 'x'));  // Big enough to be heap-backed.
  const char* payload = v[0].data();

  SmallVec<std::string, 8> moved(std::move(v));
  ASSERT_EQ(moved.size(), 1u);
  // The element's own heap buffer moved over; no copy of the payload.
  EXPECT_EQ(moved[0].data(), payload);
  EXPECT_EQ(moved[0], std::string(100, 'x'));
}

TEST(SmallVecTest, MoveAssignReplacesContents) {
  SmallVec<int, 2> a;
  a.push_back(1);
  SmallVec<int, 2> b;
  for (int i = 0; i < 20; i++) b.push_back(i);
  a = std::move(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a[19], 19);
}

TEST(SmallVecTest, CopyPreservesSource) {
  SmallVec<std::string, 2> a;
  for (int i = 0; i < 6; i++) a.push_back(std::to_string(i));
  SmallVec<std::string, 2> b(a);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(b.size(), 6u);
  b[0] = "mutated";
  EXPECT_EQ(a[0], "0");
}

TEST(SmallVecTest, ClearKeepsStorageForRefill) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 50; i++) v.push_back(i);
  const int* data_before = v.data();
  size_t cap_before = v.capacity();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap_before);
  for (int i = 0; i < 50; i++) v.push_back(i);
  EXPECT_EQ(v.data(), data_before);  // No reallocation on refill.
}

TEST(SmallVecTest, DestructorsRunExactlyOnce) {
  static int live = 0;
  struct Counted {
    Counted() { live++; }
    Counted(const Counted&) { live++; }
    Counted(Counted&&) noexcept { live++; }
    ~Counted() { live--; }
  };
  live = 0;
  {
    SmallVec<Counted, 2> v;
    for (int i = 0; i < 9; i++) v.emplace_back();  // Spills at 3.
    EXPECT_EQ(live, 9);
    v.pop_back();
    EXPECT_EQ(live, 8);
    SmallVec<Counted, 2> moved(std::move(v));
    EXPECT_EQ(live, 8);
    v = std::move(moved);
    EXPECT_EQ(live, 8);
  }
  EXPECT_EQ(live, 0);
}

TEST(SmallVecTest, ResizeGrowsAndShrinks) {
  SmallVec<int, 4> v;
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
  for (int x : v) EXPECT_EQ(x, 0);
  v[9] = 42;
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  v.resize(12);
  EXPECT_EQ(v[11], 0);
}

}  // namespace
}  // namespace abase
