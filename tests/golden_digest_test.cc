// Golden-digest bit-identity tests for the batched data plane.
//
// Each scenario below (async client fleet, mid-run failover, mid-run
// online split) is run at 1, 2, and 4 data-plane workers and reduced to
// a single FNV-1a fingerprint of everything externally observable:
// per-tenant metric histories (bit-exact doubles included) and, for the
// async scenario, the full reply stream. The fingerprints are compared
// against constants recorded from the pre-batching seed pipeline, so
// this test pins two properties at once:
//
//   1. the struct-of-arrays / arena / morsel rewrite is *behavior
//      identical* to the request-at-a-time pipeline it replaced, and
//   2. worker count remains invisible (the determinism contract).
//
// To re-record after an intentional behavior change, run with
// GOLDEN_RECORD=1 in the environment; the test prints the new digests
// instead of asserting, and the constants below should be updated.
//
// ABASE_GOLDEN_DENSE=1 forces every fixed-golden scenario onto the
// legacy dense tick (they default to the sparse active-set walk): the
// recorded digests must reproduce under BOTH tick modes, which keeps
// the dense oracle honest against the fused admit/route pass and the
// active-set walks. CI runs the suite a second time this way.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/abase.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

// ------------------------------------------------------------------ Digest --

class Digest {
 public:
  void U64(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ull;
    }
  }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    for (unsigned char c : s) {
      h_ ^= c;
      h_ *= 0x100000001b3ull;
    }
    U64(s.size());
  }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis.
};

void FoldHistory(Digest& d, const std::vector<sim::TenantTickMetrics>& h) {
  d.U64(h.size());
  for (const auto& m : h) {
    d.U64(m.issued);
    d.U64(m.ok);
    d.U64(m.errors);
    d.U64(m.throttled);
    d.U64(m.unavailable);
    d.U64(m.redirects);
    d.U64(m.replica_reads);
    d.U64(m.replica_lag_sum);
    d.U64(m.proxy_hits);
    d.U64(m.node_cache_hits);
    d.U64(m.disk_reads);
    d.U64(m.reads_completed);
    d.F64(m.ru_charged);
    d.F64(m.latency_sum);
    d.F64(m.latency_max);
    d.U64(m.latency_count);
  }
}

meta::TenantConfig GoldenTenant(TenantId id, double quota,
                                uint32_t partitions = 4) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = partitions;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  return c;
}

// ------------------------------------------------- Scenario: async clients --

/// 64 closed-loop async clients at pipeline depth 16 (the
/// pipeline_test fleet scenario); digest covers every reply plus the
/// tenant's metric history.
/// See the file comment: CI sets ABASE_GOLDEN_DENSE=1 to assert the
/// same goldens under legacy dense ticking.
bool ForceDenseTick() {
  return std::getenv("ABASE_GOLDEN_DENSE") != nullptr;
}

uint64_t RunAsyncClientDigest(int workers) {
  ClusterOptions copts;
  copts.sim.seed = 2025;
  copts.sim.data_plane_workers = workers;
  copts.sim.dense_tick = ForceDenseTick();
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(8);
  meta::TenantConfig cfg = GoldenTenant(1, /*quota=*/500000);
  cfg.num_proxies = 8;
  cfg.num_proxy_groups = 2;
  EXPECT_TRUE(cluster.CreateTenant(cfg, pool).ok());
  cluster.sim().PreloadKeys(1, /*num_keys=*/512, /*value_bytes=*/128);

  constexpr int kClients = 64;
  constexpr int kDepth = 16;
  std::vector<Client> clients;
  for (int c = 0; c < kClients; c++) clients.push_back(cluster.OpenClient(1));

  struct Slot {
    int seq = 0;
    Future<Reply> future;
  };
  std::vector<std::vector<Slot>> outstanding(kClients);
  std::vector<int> next_seq(kClients, 0);
  auto submit_one = [&](int c) {
    int seq = next_seq[c]++;
    std::string key = "t1:k" + std::to_string((c * 17 + seq * 5) % 512);
    Command cmd = (seq % 7 == 3)
                      ? Command::Set(std::move(key),
                                     "w" + std::to_string(c) + ":" +
                                         std::to_string(seq))
                      : Command::Get(std::move(key));
    outstanding[c].push_back({seq, clients[c].Submit(std::move(cmd))});
  };
  for (int c = 0; c < kClients; c++) {
    for (int d = 0; d < kDepth; d++) submit_one(c);
  }

  Digest digest;
  auto harvest = [&](bool refill) {
    for (int c = 0; c < kClients; c++) {
      auto& slots = outstanding[c];
      for (size_t i = 0; i < slots.size();) {
        if (slots[i].future.ready()) {
          const Reply& r = slots[i].future.value();
          digest.U64(static_cast<uint64_t>(c));
          digest.U64(static_cast<uint64_t>(slots[i].seq));
          digest.U64(static_cast<uint64_t>(r.status.code()));
          digest.Str(r.value);
          digest.U64(r.completed_at);
          slots.erase(slots.begin() + static_cast<long>(i));
          if (refill) submit_one(c);
        } else {
          i++;
        }
      }
    }
  };
  for (int tick = 0; tick < 25; tick++) {
    cluster.Step();
    harvest(/*refill=*/true);
  }
  cluster.Drain();
  harvest(/*refill=*/false);
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  FoldHistory(digest, cluster.sim().History(1));
  return digest.value();
}

// ------------------------------------------------------ Scenario: failover --

/// The failover_test determinism scenario: 8 tenants on 16 nodes with a
/// primary failing at tick 6 and recovering (2 catch-up ticks) at 13.
uint64_t RunFailoverDigest(int workers) {
  sim::SimOptions opt;
  opt.seed = 4321;
  opt.data_plane_workers = workers;
  opt.dense_tick = ForceDenseTick();
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(16);

  constexpr TenantId kTenants = 8;
  for (TenantId t = 1; t <= kTenants; t++) {
    meta::TenantConfig c = GoldenTenant(t, 20000 + 1000.0 * t);
    c.replicas = 3;
    EXPECT_TRUE(sim.AddTenant(c, pool).ok());
    sim.PreloadKeys(t, /*num_keys=*/200, /*value_bytes=*/256);

    sim::WorkloadProfile profile;
    profile.base_qps = 150 + 30.0 * t;
    profile.read_ratio = (t % 2 == 0) ? 0.95 : 0.6;
    profile.hash_op_fraction = (t % 3 == 0) ? 0.3 : 0.0;
    profile.num_keys = 200;
    profile.key_dist =
        (t % 2 == 0) ? sim::KeyDist::kZipfian : sim::KeyDist::kHotSpot;
    profile.value_bytes = 256;
    profile.eventual_read_fraction = (t % 2 == 0) ? 0.4 : 0.0;
    sim.SetWorkload(t, profile);
  }

  const NodeId victim = sim.meta().PrimaryFor(1, 0);
  for (size_t tick = 0; tick < 24; tick++) {
    if (tick == 6) sim.FailNode(victim);
    if (tick == 13) sim.RecoverNode(victim, 2);
    sim.Tick();
  }

  Digest digest;
  for (TenantId t = 1; t <= kTenants; t++) {
    FoldHistory(digest, sim.History(t));
  }
  return digest.value();
}

// -------------------------------------------- Scenario: mid-run split --

/// The control_loop_test split scenario: an online partition split
/// (4 -> 8) streaming at 8 KiB/tick under live traffic.
uint64_t RunMidRunSplitDigest(int workers) {
  sim::SimOptions opt;
  opt.seed = 4242;
  opt.data_plane_workers = workers;
  opt.dense_tick = ForceDenseTick();
  opt.split_bytes_per_tick = 8 << 10;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(8);
  EXPECT_TRUE(sim.AddTenant(GoldenTenant(1, 100000), pool).ok());
  sim.PreloadKeys(1, 400, 128);
  sim::WorkloadProfile profile;
  profile.base_qps = 250;
  profile.read_ratio = 0.7;
  profile.num_keys = 400;
  profile.value_bytes = 128;
  profile.eventual_read_fraction = 0.3;
  sim.SetWorkload(1, profile);

  sim.RunTicks(5);
  EXPECT_TRUE(sim.StartPartitionSplit(1).ok());
  sim.RunTicks(45);
  EXPECT_EQ(sim.SplitCutovers(), 1u);
  EXPECT_EQ(sim.SplitsCompleted(), 1u);

  Digest digest;
  FoldHistory(digest, sim.History(1));
  digest.U64(sim.meta().GetTenant(1)->partitions.size());
  return digest.value();
}

// ------------------------------------- Scenario: gray failure (timed path) --

/// Extended fold for the timed Settle path: the 16 seed fields plus the
/// latency-subsystem counters and the per-tick percentile doubles
/// (bit-exact). Only the timed scenario uses this — the three seed
/// scenarios keep the original fold and constants.
void FoldHistoryTimed(Digest& d,
                      const std::vector<sim::TenantTickMetrics>& h) {
  FoldHistory(d, h);
  for (const auto& m : h) {
    d.U64(m.hedged_reads);
    d.U64(m.hedge_wins);
    d.U64(m.slo_violations);
    d.F64(m.latency_p50);
    d.F64(m.latency_p95);
    d.F64(m.latency_p99);
  }
}

/// The full latency subsystem live — sampled lognormal service times,
/// cross-AZ RTT, hedged eventual reads, gray detection with routing
/// demotion — while node 3 turns 8x slow mid-run and recovers. Delivery
/// order, hedge decisions, and the gray flag must all be bit-identical
/// across worker counts.
uint64_t RunGrayFailureDigest(int workers) {
  sim::SimOptions opt;
  opt.seed = 777;
  opt.data_plane_workers = workers;
  opt.dense_tick = ForceDenseTick();
  opt.node.service_time.enabled = true;
  opt.node.service_time.dist = latency::DistKind::kLognormal;
  opt.node.service_time.mean_micros = 150;
  opt.node.service_time.sigma = 1.2;
  opt.latency.enabled = true;
  opt.latency.hedge.enabled = true;
  opt.latency.hedge.min_observations = 32;
  opt.latency.gray.enabled = true;
  opt.latency.gray.min_samples = 2;
  opt.latency.slo_target_micros = 3000;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);

  constexpr TenantId kTenants = 3;
  for (TenantId t = 1; t <= kTenants; t++) {
    meta::TenantConfig c = GoldenTenant(t, 80000 + 5000.0 * t);
    c.replicas = 3;
    EXPECT_TRUE(sim.AddTenant(c, pool).ok());
    sim.SetProxyCacheEnabled(t, false);
    sim.PreloadKeys(t, /*num_keys=*/300, /*value_bytes=*/256);

    sim::WorkloadProfile profile;
    profile.base_qps = 150 + 40.0 * t;
    profile.read_ratio = 0.9;
    profile.eventual_read_fraction = 0.8;
    profile.num_keys = 300;
    profile.value_bytes = 256;
    sim.SetWorkload(t, profile);
  }

  for (size_t tick = 0; tick < 30; tick++) {
    if (tick == 8) sim.DegradeNode(3, 8.0);
    if (tick == 20) sim.DegradeNode(3, 1.0);
    sim.Tick();
  }

  Digest digest;
  for (TenantId t = 1; t <= kTenants; t++) {
    FoldHistoryTimed(digest, sim.History(t));
  }
  digest.U64(sim.GrayNodeCount());
  digest.U64(sim.IsNodeGray(3) ? 1 : 0);
  return digest.value();
}

// ------------------------------- Scenario: active-set vs dense ticking --

/// Stresses every active-set walk against its dense twin: parked
/// generators on zero rate-schedule cells (wheel wake-ups), flat-idle
/// tenants, mid-run workload mutation (unpark hook), a failover (epoch-
/// triggered replication rebuild), the control loop with sparse usage
/// folds, sparse MetaServer traffic reports with clamped tenants, the
/// timed Settle path (hedge-threshold set), and abandoned tracked
/// outcomes expiring through the wheel. The digest covers every tenant's
/// full (backfilled) history, the usage/quota roll-ups, and the outcome
/// table size — dense and sparse runs must agree bit for bit at every
/// worker count.
uint64_t RunActiveSetDigest(int workers, bool dense) {
  sim::SimOptions opt;
  opt.seed = 9091;
  opt.data_plane_workers = workers;
  opt.dense_tick = dense;
  opt.meta_report_interval_ticks = 3;
  opt.outcome_ttl_ticks = 4;
  opt.control_interval_ticks = 5;
  opt.control_ticks_per_hour = 10;
  opt.replication_lag_ticks = 1;
  opt.node.service_time.enabled = true;
  opt.node.service_time.dist = latency::DistKind::kLognormal;
  opt.node.service_time.mean_micros = 120;
  opt.node.service_time.sigma = 1.0;
  opt.latency.enabled = true;
  opt.latency.hedge.enabled = true;
  opt.latency.hedge.min_observations = 32;
  opt.latency.slo_target_micros = 2500;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(10);

  constexpr TenantId kTenants = 9;
  for (TenantId t = 1; t <= kTenants; t++) {
    meta::TenantConfig c = GoldenTenant(t, 30000 + 2000.0 * t,
                                        /*partitions=*/2);
    c.replicas = (t % 2 == 0) ? 3 : 1;
    EXPECT_TRUE(sim.AddTenant(c, pool).ok());
    sim.PreloadKeys(t, /*num_keys=*/150, /*value_bytes=*/128);

    sim::WorkloadProfile p;
    p.read_ratio = 0.8;
    p.num_keys = 150;
    p.value_bytes = 128;
    p.eventual_read_fraction = (t % 2 == 0) ? 0.5 : 0.0;
    if (t % 3 == 0) {
      // Bursty: zero cells park the generator between wheel wake-ups.
      p.base_qps = 0;
      p.rate_schedule = TimeSeries({0.0, 180.0 + 10.0 * t, 0.0, 90.0});
      p.rate_schedule_step = 4 * opt.tick;
    } else if (t % 3 == 1) {
      p.base_qps = 120 + 25.0 * t;  // Steady.
    } else {
      p.base_qps = 0;  // Idle until scripted otherwise.
    }
    sim.SetWorkload(t, p);
    if (t <= 2) {
      sim.EnableAutoscale(t, sim::AutoscaleMode::kReactive);
    }
  }

  const NodeId victim = sim.meta().PrimaryFor(4, 0);
  for (uint64_t tick = 0; tick < 40; tick++) {
    if (tick < 6) {
      // Tracked but never collected: expires through the outcome wheel.
      ClientRequest get;
      get.req_id = 500000 + tick;
      get.tenant = 1;
      get.op = OpType::kGet;
      get.key = "t1:k" + std::to_string(tick);
      get.track_outcome = true;
      sim.InjectRequest(get);
    }
    if (tick == 10) sim.FailNode(victim);
    if (tick == 18) sim.RecoverNode(victim, 2);
    if (tick == 14) sim.MutableWorkload(5)->base_qps = 140;  // Unpark.
    if (tick == 24) sim.MutableWorkload(7)->base_qps = 0;    // Park.
    sim.Tick();
  }

  Digest digest;
  for (TenantId t = 1; t <= kTenants; t++) {
    FoldHistoryTimed(digest, sim.History(t));
    if (const TimeSeries* usage = sim.UsageHistory(t)) {
      digest.U64(usage->size());
      for (double v : usage->values()) digest.F64(v);
    }
    digest.F64(sim.SloBurnRate(t, 16));
  }
  digest.U64(sim.TrackedOutcomeCount());
  digest.U64(sim.InflightCount());
  return digest.value();
}

// ----------------------------------------- Scenario: scan workload --

/// Range-scan data path under churn: two scan-heavy tenants (one with
/// grouped scan locality, one scanning its whole preloaded keyspace), a
/// mid-run online split with prefix-subtree cutover invalidation, and a
/// client submitting cross-partition ScanPrefix commands whose merged
/// framed payloads are folded byte-for-byte into the digest. Pins the
/// fan-out/merge path: leg routing, key-ordered dedup merge, RU
/// settlement and the scan cache must be invisible to worker count and
/// to active-set (sparse) ticking.
uint64_t RunScanWorkloadDigest(int workers, bool dense) {
  ClusterOptions copts;
  copts.sim.seed = 6161;
  copts.sim.data_plane_workers = workers;
  copts.sim.dense_tick = dense;
  copts.sim.split_bytes_per_tick = 8 << 10;
  copts.sim.split_invalidation = sim::ProxyInvalidationMode::kPrefixSubtree;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(8);

  // Tenant 1: grouped scan locality. Grouped keys ("t1:g<G>:k<I>") do
  // not match PreloadKeys naming, so its keyspace fills from the
  // workload's own writes — scans see a growing key population.
  EXPECT_TRUE(cluster.CreateTenant(GoldenTenant(1, 120000), pool).ok());
  sim::WorkloadProfile p1;
  p1.base_qps = 220;
  p1.read_ratio = 0.6;
  p1.num_keys = 240;
  p1.value_bytes = 128;
  p1.scan_fraction = 0.3;
  p1.scan_limit = 20;
  p1.scan_prefix_groups = 8;
  cluster.AttachWorkload(1, p1);

  // Tenant 2: tenant-wide scans over a preloaded keyspace.
  EXPECT_TRUE(cluster.CreateTenant(GoldenTenant(2, 90000), pool).ok());
  cluster.sim().PreloadKeys(2, /*num_keys=*/200, /*value_bytes=*/128);
  sim::WorkloadProfile p2;
  p2.base_qps = 150;
  p2.read_ratio = 0.9;
  p2.num_keys = 200;
  p2.value_bytes = 128;
  p2.scan_fraction = 0.2;
  p2.scan_limit = 15;
  cluster.AttachWorkload(2, p2);

  Client client = cluster.OpenClient(2);
  std::vector<Future<Reply>> scans;
  for (uint64_t tick = 0; tick < 40; tick++) {
    if (tick == 5) {
      EXPECT_TRUE(cluster.sim().StartPartitionSplit(1).ok());
    }
    if (tick % 6 == 2) {
      scans.push_back(client.Submit(Command::ScanPrefix(
          "t2:", static_cast<uint32_t>(10 + (tick / 6) % 3 * 5))));
    }
    cluster.Step();
  }
  cluster.Drain();
  EXPECT_EQ(cluster.sim().SplitCutovers(), 1u);

  Digest digest;
  for (auto& f : scans) {
    EXPECT_TRUE(f.ready());
    if (!f.ready()) continue;
    const Reply& r = f.value();
    digest.U64(static_cast<uint64_t>(r.status.code()));
    digest.Str(r.value);  // The merged framed payload, byte-for-byte.
    digest.U64(r.completed_at);
  }
  FoldHistory(digest, cluster.sim().History(1));
  FoldHistory(digest, cluster.sim().History(2));
  digest.U64(cluster.sim().meta().GetTenant(1)->partitions.size());
  return digest.value();
}

TEST(GoldenDigestTest, ScanWorkloadIsWorkerAndTickModeInvariant) {
  const uint64_t reference = RunScanWorkloadDigest(1, /*dense=*/true);
  for (int workers : {1, 2, 4}) {
    EXPECT_EQ(RunScanWorkloadDigest(workers, /*dense=*/true), reference)
        << "dense at " << workers << " workers";
    EXPECT_EQ(RunScanWorkloadDigest(workers, /*dense=*/false), reference)
        << "sparse at " << workers << " workers";
  }
}

TEST(GoldenDigestTest, ActiveSetTickingMatchesDenseTicking) {
  const uint64_t reference = RunActiveSetDigest(1, /*dense=*/true);
  for (int workers : {1, 2, 4}) {
    EXPECT_EQ(RunActiveSetDigest(workers, /*dense=*/true), reference)
        << "dense at " << workers << " workers";
    EXPECT_EQ(RunActiveSetDigest(workers, /*dense=*/false), reference)
        << "sparse at " << workers << " workers";
  }
}

// ------------------------------------------------------------- The goldens --

// Recorded from the seed (request-at-a-time) pipeline at commit
// "Re-anchor ROADMAP" with GOLDEN_RECORD=1; every worker count must
// reproduce these exact fingerprints.
constexpr uint64_t kGoldenAsyncClient = 0xd86fcf506bbc0669ull;
constexpr uint64_t kGoldenFailover = 0x8a9f3490bacda12bull;
constexpr uint64_t kGoldenMidRunSplit = 0x50735ee6c2fe2b3cull;
// Recorded when the sub-tick latency subsystem landed (timed Settle
// path, extended fold): the seed pipeline never ran this scenario.
constexpr uint64_t kGoldenGrayFailure = 0xdc64bf5c63d5da41ull;

bool Recording() { return std::getenv("GOLDEN_RECORD") != nullptr; }

void CheckScenario(const char* name, uint64_t (*run)(int), uint64_t golden) {
  for (int workers : {1, 2, 4}) {
    uint64_t got = run(workers);
    if (Recording()) {
      printf("GOLDEN %s workers=%d digest=0x%016llx\n", name, workers,
             static_cast<unsigned long long>(got));
      continue;
    }
    EXPECT_EQ(got, golden) << name << " at " << workers << " workers";
  }
}

TEST(GoldenDigestTest, AsyncClientFleetMatchesSeedPipeline) {
  CheckScenario("async_client", &RunAsyncClientDigest, kGoldenAsyncClient);
}

TEST(GoldenDigestTest, MidRunFailoverMatchesSeedPipeline) {
  CheckScenario("failover", &RunFailoverDigest, kGoldenFailover);
}

TEST(GoldenDigestTest, MidRunSplitMatchesSeedPipeline) {
  CheckScenario("mid_run_split", &RunMidRunSplitDigest, kGoldenMidRunSplit);
}

TEST(GoldenDigestTest, GrayFailureTimedSettleIsWorkerCountInvariant) {
  CheckScenario("gray_failure", &RunGrayFailureDigest, kGoldenGrayFailure);
}

}  // namespace
}  // namespace abase
