// Tests for the closed-loop serverless control plane (the Control
// pipeline stage): hourly usage roll-up, predictive/reactive autoscaling
// applied live through the MetaServer, online partition splits that move
// real data (staged children, throttled streaming, window replay, atomic
// cutover, parent purge), and throttled background rescheduling.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "meta/meta_server.h"
#include "sim/cluster_sim.h"
#include "sim/workload.h"

namespace abase {
namespace {

meta::TenantConfig ControlTenant(TenantId id, double quota,
                                 uint32_t partitions = 4,
                                 double upper = 1e9) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = partitions;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  c.partition_quota_upper = upper;
  c.partition_quota_lower = 1;
  return c;
}

// --------------------------------------------------------- Usage roll-up --

TEST(ControlLoopTest, HourlyUsageRollupMatchesSettledRu) {
  sim::SimOptions opt;
  opt.seed = 41;
  opt.control_interval_ticks = 4;
  opt.control_ticks_per_hour = 5;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(ControlTenant(1, 50000), pool).ok());
  sim.PreloadKeys(1, 200, 64);
  sim::WorkloadProfile profile;
  profile.base_qps = 200;
  profile.read_ratio = 0.8;
  profile.num_keys = 200;
  profile.value_bytes = 64;
  sim.SetWorkload(1, profile);

  sim.RunTicks(23);  // 4 complete control-plane hours + 3 ticks.

  const TimeSeries* usage = sim.UsageHistory(1);
  ASSERT_NE(usage, nullptr);
  ASSERT_EQ(usage->size(), 4u);
  const auto& history = sim.History(1);
  ASSERT_EQ(history.size(), 23u);
  for (size_t hour = 0; hour < 4; hour++) {
    double ru = 0;
    for (size_t t = hour * 5; t < hour * 5 + 5; t++) {
      ru += history[t].ru_charged;
    }
    // Hour point = mean settled RU/s over the hour's ticks (1 s ticks).
    EXPECT_DOUBLE_EQ((*usage)[hour], ru / 5.0) << "hour " << hour;
  }
}

// -------------------------------------------- Reactive scale-up + split --

TEST(ControlLoopTest, ReactiveBurstScalesUpAndSplitsOnline) {
  sim::SimOptions opt;
  opt.seed = 99;
  opt.control_interval_ticks = 5;
  opt.control_ticks_per_hour = 10;
  opt.split_bytes_per_tick = 16 << 10;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  // Quota 600 RU/s over 4 partitions; a partition quota above 200 stages
  // an online split.
  ASSERT_TRUE(
      sim.AddTenant(ControlTenant(1, 600, 4, /*upper=*/200), pool).ok());
  sim.PreloadKeys(1, 1000, 64);
  // Write-heavy: writes always reach the data plane at full RU charge
  // (3x replica fan-out), so settled usage tracks demand.
  sim::WorkloadProfile profile;
  profile.base_qps = 100;
  profile.read_ratio = 0.3;
  profile.num_keys = 1000;
  profile.value_bytes = 64;
  profile.bursts.push_back({20 * kMicrosPerSecond, 120 * kMicrosPerSecond,
                            /*multiplier=*/6.0});
  sim.SetWorkload(1, profile);
  sim.EnableAutoscale(1, sim::AutoscaleMode::kReactive);

  sim.RunTicks(170);

  const sim::TenantRuntime* rt = sim.Tenant(1);
  ASSERT_NE(rt, nullptr);
  EXPECT_GE(rt->scale_ups, 1u);
  EXPECT_EQ(rt->scale_downs, 0u);  // Reactive never scales down.
  const meta::TenantMeta* tm = sim.meta().GetTenant(1);
  ASSERT_NE(tm, nullptr);
  EXPECT_GT(tm->tenant_quota_ru, 600.0);
  // The scale-up pushed the partition quota over UP: the loop staged an
  // online split that has fully completed (cutover + purge).
  EXPECT_GE(rt->splits_started, 1u);
  EXPECT_GE(sim.SplitCutovers(), 1u);
  EXPECT_GE(sim.SplitsCompleted(), 1u);
  EXPECT_FALSE(sim.SplitInProgress(1));
  EXPECT_GE(tm->partitions.size(), 8u);

  // Every preloaded key is still readable through normal routing after
  // the re-hash (children serve the moved half, parents the rest).
  for (uint64_t k = 0; k < 1000; k += 37) {
    ClientRequest req;
    req.req_id = 9000000 + k;
    req.tenant = 1;
    req.op = OpType::kGet;
    req.key = "t1:k" + std::to_string(k);
    req.track_outcome = true;
    sim.InjectRequest(req);
    sim.RunTicks(3);
    auto outcome = sim.TakeOutcome(req.req_id);
    ASSERT_TRUE(outcome.has_value()) << req.key;
    EXPECT_TRUE(outcome->status.ok()) << req.key << ": "
                                      << outcome->status.ToString();
    EXPECT_FALSE(outcome->value.empty()) << req.key;
  }
}

// ------------------------------------- Predictive vs reactive ablation --

struct AblationRun {
  uint64_t first_scale_up_tick = 0;  ///< 0 = never scaled.
  uint64_t throttled_total = 0;
  double final_quota = 0;
};

AblationRun RunDiurnalAblation(sim::AutoscaleMode mode) {
  sim::SimOptions opt;
  opt.seed = 7;
  opt.control_interval_ticks = 3;
  opt.control_ticks_per_hour = 3;  // 1 control hour = 3 ticks.
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  const double kInitialQuota = 700;
  EXPECT_TRUE(sim.AddTenant(ControlTenant(1, kInitialQuota), pool).ok());
  sim.PreloadKeys(1, 500, 1024);

  // A repeating diurnal day (trough ~50 qps, peak ~350 qps at hour 6)
  // with a sharp 4x business burst over hours 5-8 — the same every-day
  // pattern the seeded history below records. Write-heavy (70% writes
  // at 3 RU each), so demand in RU/s swings from ~120 to ~3000 against
  // the 700 RU/s quota: only a scaler that moves *before* the burst
  // avoids throttling it.
  sim::SeriesSpec day;
  day.hours = 24;
  day.base = 200;
  day.seasons.push_back({24, 150});
  Rng schedule_rng(5);
  TimeSeries schedule = sim::GenerateSeries(day, schedule_rng);

  sim::WorkloadProfile profile;
  profile.read_ratio = 0.3;
  profile.num_keys = 500;
  profile.value_bytes = 1024;
  profile.rate_schedule = schedule;
  profile.rate_schedule_step = 3 * kMicrosPerSecond;  // 1 control hour.
  // The burst: hours 5-8 of the simulated day = ticks 15..27.
  profile.bursts.push_back({15 * kMicrosPerSecond, 27 * kMicrosPerSecond,
                            /*multiplier=*/4.0});
  sim.SetWorkload(1, profile);

  // 30 days of matching history (in RU/s: ~2.4 RU per request),
  // including the daily hour-5 burst, so the forecaster knows both the
  // diurnal shape and the spike.
  sim::SeriesSpec past;
  past.hours = 30 * 24;
  past.base = 480;
  past.seasons.push_back({24, 360});
  past.noise_sigma = 10;
  for (size_t d = 0; d < 30; d++) {
    past.bursts.push_back({d * 24 + 5, /*duration_hours=*/3, /*add=*/2400});
  }
  Rng history_rng(17);
  sim.SeedUsageHistory(1, sim::GenerateSeries(past, history_rng));
  sim.EnableAutoscale(1, mode);

  AblationRun run;
  // One simulated day around the burst: 45 ticks = 15 control hours.
  for (uint64_t tick = 1; tick <= 45; tick++) {
    sim.Tick();
    const meta::TenantMeta* tm = sim.meta().GetTenant(1);
    if (run.first_scale_up_tick == 0 &&
        tm->tenant_quota_ru > kInitialQuota) {
      run.first_scale_up_tick = tick;
    }
  }
  for (const auto& m : sim.History(1)) run.throttled_total += m.throttled;
  run.final_quota = sim.meta().GetTenant(1)->tenant_quota_ru;
  return run;
}

TEST(ControlLoopTest, PredictiveScalesBeforePeakAndThrottlesLess) {
  AblationRun predictive = RunDiurnalAblation(sim::AutoscaleMode::kPredictive);
  AblationRun reactive = RunDiurnalAblation(sim::AutoscaleMode::kReactive);

  // Predictive: the forecast sees the coming spike while load is still
  // in the trough — quota rises before the burst even starts (tick 15).
  ASSERT_GT(predictive.first_scale_up_tick, 0u);
  EXPECT_LT(predictive.first_scale_up_tick, 15u);
  EXPECT_GT(predictive.final_quota, 700.0);

  // Reactive scales only after users already pushed usage into the
  // threshold — later than predictive (or never).
  if (reactive.first_scale_up_tick != 0) {
    EXPECT_GT(reactive.first_scale_up_tick,
              predictive.first_scale_up_tick);
  }

  // The oncall ablation's headline: fewer throttled requests under
  // predictive scaling.
  EXPECT_LT(predictive.throttled_total, reactive.throttled_total);
  EXPECT_GT(reactive.throttled_total, 0u);
}

// ----------------------------------------------------- Scale-down cooldown --

TEST(ControlLoopTest, ScaleDownRespectsSevenDayCooldown) {
  sim::SimOptions opt;
  opt.seed = 3;
  opt.control_interval_ticks = 6;
  opt.control_ticks_per_hour = 1;  // 1 tick = 1 control hour.
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(ControlTenant(1, 700), pool).ok());
  sim.PreloadKeys(1, 200, 64);

  // Usage in slow decline: after the first scale-down the forecast keeps
  // undershooting the band, so only the cooldown separates consecutive
  // down-scales.
  std::vector<double> declining;
  for (int i = 0; i < 600; i++) {
    declining.push_back(200.0 - 150.0 * i / 600.0);
  }
  sim::WorkloadProfile profile;
  profile.read_ratio = 0.9;
  profile.num_keys = 200;
  profile.value_bytes = 64;
  profile.rate_schedule = TimeSeries(declining);
  profile.rate_schedule_step = kMicrosPerSecond;  // 1 tick per point.
  sim.SetWorkload(1, profile);

  std::vector<double> seeded;
  for (int i = 0; i < 360; i++) {
    seeded.push_back(290.0 - 90.0 * i / 360.0);  // Ends at ~200 RU/s.
  }
  sim.SeedUsageHistory(1, TimeSeries(seeded));
  sim.EnableAutoscale(1, sim::AutoscaleMode::kPredictive);

  // Run until the first scale-down lands.
  uint64_t first_down_tick = 0;
  for (uint64_t tick = 1; tick <= 120 && first_down_tick == 0; tick++) {
    sim.Tick();
    if (sim.Tenant(1)->scale_downs == 1) first_down_tick = tick;
  }
  ASSERT_GT(first_down_tick, 0u) << "first scale-down never fired";

  // 7 days = 168 control hours = 168 ticks here. Inside the cooldown the
  // loop keeps evaluating (usage keeps declining) but must not scale
  // down again.
  const uint64_t cooldown_ticks = 168;
  sim.RunTicks(cooldown_ticks - opt.control_interval_ticks);
  EXPECT_EQ(sim.Tenant(1)->scale_downs, 1u)
      << "scale-down fired inside the 7-day cooldown";

  // Once the cooldown elapses the next decision may scale down again.
  sim.RunTicks(3 * opt.control_interval_ticks);
  EXPECT_EQ(sim.Tenant(1)->scale_downs, 2u);
}

// -------------------------------------------------- Online split, 1 worker --

TEST(ControlLoopTest, OnlineSplitLosesNoAckedWritesAndStaysReadable) {
  sim::SimOptions opt;
  opt.seed = 23;
  opt.split_bytes_per_tick = 8 << 10;  // Force multi-tick streaming.
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  ASSERT_TRUE(sim.AddTenant(ControlTenant(1, 50000), pool).ok());
  const uint64_t kKeys = 300;
  sim.PreloadKeys(1, kKeys, 128);

  uint64_t next_req = 5000000;
  uint64_t write_counter = 0;
  std::map<uint64_t, std::string> pending_reads;   // req_id -> key
  std::map<uint64_t, std::pair<std::string, std::string>> pending_writes;
  std::map<std::string, std::string> acked;        // key -> value
  uint64_t get_ok = 0, get_failed = 0;

  auto inject_get = [&](const std::string& key) {
    ClientRequest req;
    req.req_id = next_req++;
    req.tenant = 1;
    req.op = OpType::kGet;
    req.key = key;
    req.track_outcome = true;
    pending_reads[req.req_id] = key;
    sim.InjectRequest(req);
  };
  auto inject_set = [&]() {
    ClientRequest req;
    req.req_id = next_req++;
    req.tenant = 1;
    req.op = OpType::kSet;
    req.key = "t1:kw" + std::to_string(write_counter);
    req.value = "v" + std::to_string(write_counter);
    write_counter++;
    req.track_outcome = true;
    pending_writes[req.req_id] = {req.key, req.value};
    sim.InjectRequest(req);
  };
  auto harvest = [&]() {
    for (auto it = pending_reads.begin(); it != pending_reads.end();) {
      auto outcome = sim.TakeOutcome(it->first);
      if (!outcome.has_value()) {
        ++it;
        continue;
      }
      if (outcome->status.ok() && !outcome->value.empty()) {
        get_ok++;
      } else {
        get_failed++;
        ADD_FAILURE() << "read of " << it->second
                      << " failed: " << outcome->status.ToString();
      }
      it = pending_reads.erase(it);
    }
    for (auto it = pending_writes.begin(); it != pending_writes.end();) {
      auto outcome = sim.TakeOutcome(it->first);
      if (!outcome.has_value()) {
        ++it;
        continue;
      }
      if (outcome->status.ok()) {
        acked[it->second.first] = it->second.second;  // Acked write.
      }
      it = pending_writes.erase(it);
    }
  };

  ASSERT_TRUE(sim.StartPartitionSplit(1).ok());
  ASSERT_TRUE(sim.SplitInProgress(1));

  // Reads + writes flow continuously through streaming, cutover, and
  // purge. Reads cover the preloaded keyspace round-robin.
  uint64_t probe = 0;
  size_t completed_at = 0;
  for (size_t tick = 0; tick < 120; tick++) {
    for (int i = 0; i < 4; i++) {
      inject_get("t1:k" + std::to_string(probe % kKeys));
      probe += 41;
    }
    inject_set();
    sim.Tick();
    harvest();
    if (completed_at == 0 && sim.SplitsCompleted() == 1) {
      completed_at = tick;
    }
  }
  // Let stragglers settle.
  sim.RunTicks(4);
  harvest();

  EXPECT_EQ(sim.SplitCutovers(), 1u);
  EXPECT_EQ(sim.SplitsCompleted(), 1u);
  ASSERT_GT(completed_at, 0u);
  EXPECT_EQ(sim.meta().GetTenant(1)->partitions.size(), 8u);
  EXPECT_EQ(get_failed, 0u);
  EXPECT_GT(get_ok, 0u);
  EXPECT_GT(acked.size(), 50u);

  // Zero lost acked writes: every acknowledged pre/mid/post-cutover
  // write reads back with its exact value through the re-hashed routing.
  for (const auto& [key, value] : acked) {
    ClientRequest req;
    req.req_id = next_req++;
    req.tenant = 1;
    req.op = OpType::kGet;
    req.key = key;
    req.track_outcome = true;
    sim.InjectRequest(req);
    sim.RunTicks(3);
    auto outcome = sim.TakeOutcome(req.req_id);
    ASSERT_TRUE(outcome.has_value()) << key;
    ASSERT_TRUE(outcome->status.ok())
        << key << ": " << outcome->status.ToString();
    EXPECT_EQ(outcome->value, value) << key;
  }

  // The purge actually drained the moved keys out of the parents: no
  // parent primary still stores a key that re-hashes to its child.
  const meta::TenantMeta* tm = sim.meta().GetTenant(1);
  for (PartitionId parent = 0; parent < 4; parent++) {
    node::DataNode* pn = sim.FindNode(tm->partitions[parent].primary());
    ASSERT_NE(pn, nullptr);
    storage::LsmEngine* engine = pn->EngineFor(1, parent);
    ASSERT_NE(engine, nullptr);
    auto leftovers = engine->ExportHashRange(8, parent + 4, "", 1u << 30);
    EXPECT_TRUE(leftovers.entries.empty())
        << leftovers.entries.size() << " moved keys left in parent "
        << parent;
  }
}

// --------------------------------------- Split bit-identity across workers --

bool MetricsEqual(const sim::TenantTickMetrics& a,
                  const sim::TenantTickMetrics& b) {
  return a.issued == b.issued && a.ok == b.ok && a.errors == b.errors &&
         a.throttled == b.throttled && a.unavailable == b.unavailable &&
         a.redirects == b.redirects && a.replica_reads == b.replica_reads &&
         a.replica_lag_sum == b.replica_lag_sum &&
         a.proxy_hits == b.proxy_hits &&
         a.node_cache_hits == b.node_cache_hits &&
         a.disk_reads == b.disk_reads &&
         a.reads_completed == b.reads_completed &&
         a.ru_charged == b.ru_charged && a.latency_sum == b.latency_sum &&
         a.latency_max == b.latency_max &&
         a.latency_count == b.latency_count;
}

std::vector<sim::TenantTickMetrics> RunMidRunSplitScenario(int workers) {
  sim::SimOptions opt;
  opt.seed = 4242;
  opt.data_plane_workers = workers;
  opt.split_bytes_per_tick = 8 << 10;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(8);
  EXPECT_TRUE(sim.AddTenant(ControlTenant(1, 100000), pool).ok());
  sim.PreloadKeys(1, 400, 128);
  sim::WorkloadProfile profile;
  profile.base_qps = 250;
  profile.read_ratio = 0.7;
  profile.num_keys = 400;
  profile.value_bytes = 128;
  profile.eventual_read_fraction = 0.3;
  sim.SetWorkload(1, profile);

  sim.RunTicks(5);
  EXPECT_TRUE(sim.StartPartitionSplit(1).ok());
  sim.RunTicks(45);
  EXPECT_EQ(sim.SplitCutovers(), 1u);
  EXPECT_EQ(sim.SplitsCompleted(), 1u);
  EXPECT_EQ(sim.meta().GetTenant(1)->partitions.size(), 8u);
  return sim.History(1);
}

TEST(ControlLoopTest, MidRunSplitBitIdenticalAcrossWorkers) {
  auto serial = RunMidRunSplitScenario(1);
  ASSERT_EQ(serial.size(), 50u);
  for (int workers : {2, 4}) {
    auto parallel = RunMidRunSplitScenario(workers);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (size_t tick = 0; tick < serial.size(); tick++) {
      ASSERT_TRUE(MetricsEqual(serial[tick], parallel[tick]))
          << workers << " workers, tick " << tick;
    }
  }
}

// ------------------------------------------------ Background rescheduling --

TEST(ControlLoopTest, BackgroundReschedulingThrottlesMigrationCopies) {
  sim::SimOptions opt;
  opt.seed = 11;
  opt.resched_interval_ticks = 10;
  opt.migration_bytes_per_tick = 4 << 10;  // Slow modeled copies.
  // Small nominal node capacity so the tenant's RU load is a visible
  // utilization imbalance to the rescheduler's divider.
  opt.node.ru_capacity = 500;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(6);
  // Single-replica tenant with many partitions under heavy zipf skew:
  // the hash-uneven per-partition load gives the rescheduler a real
  // utilization imbalance, and replicas fine-grained enough to move.
  meta::TenantConfig cfg = ControlTenant(1, 20000, /*partitions=*/16);
  cfg.replicas = 1;
  ASSERT_TRUE(sim.AddTenant(cfg, pool).ok());
  sim.PreloadKeys(1, 600, 512);
  sim::WorkloadProfile profile;
  profile.base_qps = 600;
  profile.read_ratio = 0.3;  // Write-heavy: full-RU data-plane load.
  profile.num_keys = 600;
  profile.value_bytes = 512;
  profile.zipf_theta = 0.99;
  sim.SetWorkload(1, profile);

  // Ticks 1..9: nothing planned yet.
  sim.RunTicks(9);
  EXPECT_EQ(sim.PendingMigrationCount(), 0u);
  // Tick 10: the resched interval fires and enqueues copies.
  sim.Tick();
  ASSERT_GT(sim.PendingMigrationCount(), 0u);
  EXPECT_GT(sim.migration_stats().planned, 0u);
  // Throttled: the copy is still streaming several ticks later instead
  // of landing instantaneously.
  sim.RunTicks(3);
  EXPECT_GT(sim.PendingMigrationCount(), 0u);
  EXPECT_EQ(sim.migration_stats().applied, 0u);

  sim.RunTicks(200);
  EXPECT_EQ(sim.PendingMigrationCount(), 0u);
  EXPECT_GT(sim.migration_stats().applied, 0u);
  // Every disposition is accounted for: applied + skipped = planned,
  // and each skip carries a reason.
  const auto& stats = sim.migration_stats();
  EXPECT_EQ(stats.applied + stats.skipped, stats.planned);
  uint64_t reasons = 0;
  for (const auto& [code, count] : stats.skip_reasons) {
    (void)code;
    reasons += count;
  }
  EXPECT_EQ(reasons, stats.skipped);

  // Service stayed healthy through the background copies.
  const auto& history = sim.History(1);
  uint64_t ok = 0;
  for (size_t i = history.size() - 20; i < history.size(); i++) {
    ok += history[i].ok;
  }
  EXPECT_GT(ok, 0u);
}

}  // namespace
}  // namespace abase
