// Unit tests for the interned key handles (common/key_ref.h): hash
// stability against the canonical FNV-1a implementation, arena lifetime
// and capacity-retention across Reset, and exact collision handling in
// the interner's hash index.
#include "common/key_ref.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/hash.h"

namespace abase {
namespace {

// ---------------------------------------------------------------------------
// Hash stability
// ---------------------------------------------------------------------------

TEST(KeyRefTest, HashMatchesCanonicalFnv1a) {
  for (const char* k : {"", "a", "t1:k42", "t999:k123456789",
                        "a-rather-longer-key-that-exceeds-sso-storage"}) {
    KeyRef ref = KeyRef::From(k);
    EXPECT_EQ(ref.hash, Fnv1a64(k)) << k;
    EXPECT_EQ(ref.view(), std::string_view(k));
  }
}

TEST(KeyRefTest, InternPreservesBytesAndHash) {
  KeyArena arena;
  KeyRef ref = arena.Intern("t7:k1001");
  EXPECT_EQ(ref.view(), "t7:k1001");
  EXPECT_EQ(ref.hash, Fnv1a64("t7:k1001"));
  // The interned copy is the arena's, not the caller's storage.
  std::string src = "ephemeral";
  KeyRef ref2 = arena.Intern(src);
  src.assign("clobbered");
  EXPECT_EQ(ref2.view(), "ephemeral");
}

TEST(KeyRefTest, EqualityComparesBytesNotJustHash) {
  KeyRef a = KeyRef::From("alpha");
  KeyRef b = KeyRef::From("alpha");
  KeyRef c = KeyRef::From("beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Same hash, different bytes must compare unequal (forged collision).
  KeyRef forged = c;
  forged.hash = a.hash;
  EXPECT_NE(a, forged);
}

// ---------------------------------------------------------------------------
// Interning semantics
// ---------------------------------------------------------------------------

TEST(KeyArenaTest, RepeatedInternReturnsIdenticalStorage) {
  KeyArena arena;
  KeyRef first = arena.Intern("t1:k1");
  KeyRef again = arena.Intern("t1:k1");
  EXPECT_EQ(first.data, again.data);  // Pointer equality: one copy.
  EXPECT_EQ(arena.interned_count(), 1u);
  arena.Intern("t1:k2");
  EXPECT_EQ(arena.interned_count(), 2u);
}

TEST(KeyArenaTest, CollisionChainsResolveByByteCompare) {
  KeyArena arena;
  // Force a full 64-bit hash collision via InternHashed: two distinct
  // byte strings deliberately interned under one hash. The chain must
  // keep both and return each by exact byte compare.
  const uint64_t h = 0xDEADBEEFCAFEF00Dull;
  KeyRef a = arena.Intern("left");
  KeyRef x = arena.InternHashed(h, "collide-x");
  KeyRef y = arena.InternHashed(h, "collide-y");
  EXPECT_NE(x.data, y.data);
  EXPECT_EQ(x.view(), "collide-x");
  EXPECT_EQ(y.view(), "collide-y");
  EXPECT_EQ(arena.interned_count(), 3u);
  // Re-interning under the same hash finds the existing copies.
  EXPECT_EQ(arena.InternHashed(h, "collide-x").data, x.data);
  EXPECT_EQ(arena.InternHashed(h, "collide-y").data, y.data);
  EXPECT_EQ(arena.interned_count(), 3u);
  (void)a;
}

// ---------------------------------------------------------------------------
// Arena lifetime
// ---------------------------------------------------------------------------

TEST(KeyArenaTest, RefsStayValidUntilReset) {
  KeyArena arena;
  std::vector<KeyRef> refs;
  std::vector<std::string> expect;
  for (int i = 0; i < 1000; i++) {
    expect.push_back("tenant" + std::to_string(i % 7) + ":key" +
                     std::to_string(i));
    refs.push_back(arena.Intern(expect.back()));
  }
  // Every ref readable after all interning completed (no relocation).
  for (size_t i = 0; i < refs.size(); i++) {
    ASSERT_EQ(refs[i].view(), expect[i]);
    ASSERT_EQ(refs[i].hash, Fnv1a64(expect[i]));
  }
}

TEST(KeyArenaTest, ResetDropsKeysAndRetainsCapacity) {
  KeyArena arena(256);  // Small blocks: force multi-block growth.
  for (int i = 0; i < 200; i++) {
    arena.Intern("epoch1:key" + std::to_string(i));
  }
  EXPECT_EQ(arena.interned_count(), 200u);
  EXPECT_GT(arena.block_count(), 1u);

  arena.Reset();
  EXPECT_EQ(arena.interned_count(), 0u);
  EXPECT_EQ(arena.block_count(), 1u);  // Capacity retained, not freed.
  EXPECT_EQ(arena.block_bytes_used(), 0u);

  // A dropped key re-interns as a fresh copy (the index was cleared).
  KeyRef again = arena.Intern("epoch1:key0");
  EXPECT_EQ(again.view(), "epoch1:key0");
  EXPECT_EQ(arena.interned_count(), 1u);
}

TEST(KeyArenaTest, OversizedKeyGetsItsOwnBlock) {
  KeyArena arena(64);
  std::string big(4096, 'x');
  KeyRef ref = arena.Intern(big);
  EXPECT_EQ(ref.view(), big);
  EXPECT_EQ(ref.hash, Fnv1a64(big));
  // The oversized block becomes the growth baseline: a same-sized key
  // after Reset fits without a new allocation.
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 1u);
  KeyRef ref2 = arena.Intern(big);
  EXPECT_EQ(ref2.view(), big);
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(KeyArenaTest, SteadyStateInterningDoesNotGrowBlocks) {
  KeyArena arena;
  // Simulate the per-tick pattern: same working set interned every
  // epoch, Reset between epochs. After the first epoch sizes the arena,
  // later epochs must not allocate new blocks.
  auto run_epoch = [&arena] {
    for (int i = 0; i < 500; i++) {
      arena.Intern("t" + std::to_string(i % 13) + ":k" + std::to_string(i));
    }
  };
  run_epoch();
  arena.Reset();
  const size_t blocks_after_warmup = arena.block_count();
  for (int epoch = 0; epoch < 5; epoch++) {
    run_epoch();
    arena.Reset();
    EXPECT_EQ(arena.block_count(), blocks_after_warmup);
  }
}

}  // namespace
}  // namespace abase
