// Tests for the RU model (Section 4.1) and hierarchical request
// restriction (Section 4.2).
#include <gtest/gtest.h>

#include "common/clock.h"
#include "quota/quota.h"
#include "quota/token_bucket.h"
#include "ru/request_unit.h"

namespace abase {
namespace {

// ------------------------------------------------------------------- RU --

TEST(RuTest, WriteRuScalesWithSizeAndReplicas) {
  ru::RuEstimator est;
  // 2KB value = 1 RU per write, x3 replicas.
  EXPECT_DOUBLE_EQ(est.WriteRu(2048, 3), 3.0);
  // 4KB = 2 RU per write.
  EXPECT_DOUBLE_EQ(est.WriteRu(4096, 3), 6.0);
  // Tiny writes floor at 1 RU per replica write.
  EXPECT_DOUBLE_EQ(est.WriteRu(10, 3), 3.0);
  EXPECT_DOUBLE_EQ(est.WriteRu(2048, 1), 1.0);
}

TEST(RuTest, CacheAwareReadEstimateTracksHitRatio) {
  ru::RuOptions opts;
  opts.initial_read_bytes = 2048;
  opts.initial_hit_ratio = 0.0;
  ru::RuEstimator est(opts);
  double cold = est.EstimateReadRu();  // No hits expected: full cost.
  EXPECT_NEAR(cold, 1.0, 1e-9);

  // Feed 100% data-node cache hits: estimate collapses to the CPU floor.
  for (int i = 0; i < 200; i++) {
    est.ChargeRead(2048, ru::ReadServedBy::kDataNodeCache);
  }
  EXPECT_NEAR(est.ExpectedHitRatio(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.EstimateReadRu(), opts.cache_hit_cpu_fraction);

  // Cache-blind baseline ignores the hit ratio entirely.
  EXPECT_DOUBLE_EQ(est.EstimateReadRuCacheBlind(), 1.0);
}

TEST(RuTest, ProxyHitsAreFreeAndInvisible) {
  ru::RuEstimator est;
  double before = est.ExpectedHitRatio();
  double charge = est.ChargeRead(4096, ru::ReadServedBy::kProxyCache);
  EXPECT_DOUBLE_EQ(charge, 0.0);
  EXPECT_DOUBLE_EQ(est.ExpectedHitRatio(), before);  // No estimator update.
}

TEST(RuTest, DiskReadChargedOnActualBytes) {
  ru::RuEstimator est;
  EXPECT_DOUBLE_EQ(est.ChargeRead(4096, ru::ReadServedBy::kDisk), 2.0);
  // DataNode-cache hit charges the CPU fraction of the full cost.
  EXPECT_DOUBLE_EQ(est.ChargeRead(4096, ru::ReadServedBy::kDataNodeCache),
                   2.0 * est.options().cache_hit_cpu_fraction);
}

TEST(RuTest, MovingAverageWindowAdapts) {
  ru::RuOptions opts;
  opts.window_k = 10;
  ru::RuEstimator est(opts);
  for (int i = 0; i < 10; i++) est.ChargeRead(1000, ru::ReadServedBy::kDisk);
  EXPECT_NEAR(est.ExpectedReadBytes(), 1000, 1e-9);
  for (int i = 0; i < 10; i++) est.ChargeRead(5000, ru::ReadServedBy::kDisk);
  EXPECT_NEAR(est.ExpectedReadBytes(), 5000, 1e-9);  // Window displaced.
}

TEST(RuTest, ComplexReadDecomposition) {
  ru::RuEstimator est;
  EXPECT_DOUBLE_EQ(est.EstimateHLenRu(), 1.0);
  // Teach the estimator a hash shape: 100 fields x 200B = 20KB scans.
  for (int i = 0; i < 50; i++) est.RecordHashShape(100, 20000);
  double hga = est.EstimateHGetAllRu();
  // HLen stage (1) + scan stage (~20000/2048 with no hits) ≈ 10.7.
  EXPECT_GT(hga, 9.0);
  EXPECT_LT(hga, 12.0);
}

TEST(RuTest, ChargeHGetAllIncludesBothStages) {
  ru::RuEstimator est;
  double charge = est.ChargeHGetAll(20480, ru::ReadServedBy::kDisk);
  EXPECT_DOUBLE_EQ(charge, 1.0 + 10.0);
  EXPECT_DOUBLE_EQ(est.ChargeHGetAll(20480, ru::ReadServedBy::kProxyCache),
                   0.0);
}

TEST(RuTest, FreeFunctionChargesMatchEstimator) {
  ru::RuOptions opts;
  EXPECT_DOUBLE_EQ(ru::ActualReadCharge(4096, false, opts), 2.0);
  EXPECT_DOUBLE_EQ(ru::ActualReadCharge(4096, true, opts),
                   2.0 * opts.cache_hit_cpu_fraction);
  EXPECT_DOUBLE_EQ(ru::ActualWriteCharge(2048, 3, opts), 3.0);
}

// ------------------------------------------------------------ TokenBucket --

TEST(TokenBucketTest, ConsumesAndRefills) {
  SimClock clock;
  quota::TokenBucket bucket(100, 1.0, &clock);  // 100 RU/s, 100 burst.
  EXPECT_TRUE(bucket.TryConsume(100));
  EXPECT_FALSE(bucket.TryConsume(1));
  clock.Advance(kMicrosPerSecond / 2);  // Refill 50.
  EXPECT_TRUE(bucket.TryConsume(50));
  EXPECT_FALSE(bucket.TryConsume(1));
}

TEST(TokenBucketTest, BurstCapped) {
  SimClock clock;
  quota::TokenBucket bucket(100, 1.0, &clock);
  clock.Advance(100 * kMicrosPerSecond);  // Long idle.
  EXPECT_NEAR(bucket.Available(), 100, 1e-9);  // Capped at 1s of quota.
}

TEST(TokenBucketTest, ForceConsumeGoesNegative) {
  SimClock clock;
  quota::TokenBucket bucket(100, 1.0, &clock);
  bucket.ForceConsume(150);
  EXPECT_LT(bucket.Available(), 0);
  EXPECT_FALSE(bucket.TryConsume(1));
  clock.Advance(kMicrosPerSecond);  // +100 -> 50.
  EXPECT_TRUE(bucket.TryConsume(50));
}

TEST(TokenBucketTest, RateChangeRescalesDepth) {
  SimClock clock;
  quota::TokenBucket bucket(100, 1.0, &clock);
  bucket.SetRate(10);
  EXPECT_LE(bucket.Available(), 10.0);
  clock.Advance(10 * kMicrosPerSecond);
  EXPECT_NEAR(bucket.Available(), 10.0, 1e-9);
}

TEST(TokenBucketTest, LongRunThroughputMatchesRate) {
  SimClock clock;
  quota::TokenBucket bucket(1000, 1.0, &clock);
  double consumed = 0;
  for (int sec = 0; sec < 100; sec++) {
    // Try to consume far more than the rate every second.
    for (int i = 0; i < 50; i++) {
      if (bucket.TryConsume(50)) consumed += 50;
    }
    clock.Advance(kMicrosPerSecond);
  }
  double rate = consumed / 100.0;
  EXPECT_NEAR(rate, 1000.0, 60.0);  // Within burst slack of the rate.
}

// ------------------------------------------------------------ ProxyQuota --

TEST(ProxyQuotaTest, AutonomousDoubleHeadroom) {
  SimClock clock;
  quota::ProxyQuota pq(100, &clock);  // Fair share 100 RU/s.
  // Unclamped: bucket rate 200.
  double admitted = 0;
  while (pq.TryAdmit(10)) admitted += 10;
  EXPECT_NEAR(admitted, 200, 1e-9);
}

TEST(ProxyQuotaTest, ClampRevertsToStandardQuota) {
  SimClock clock;
  quota::ProxyQuota pq(100, &clock);
  pq.SetClamped(true);
  clock.Advance(10 * kMicrosPerSecond);  // Full refill at clamped rate.
  double admitted = 0;
  while (pq.TryAdmit(10)) admitted += 10;
  EXPECT_NEAR(admitted, 100, 1e-9);
  pq.SetClamped(false);
  clock.Advance(10 * kMicrosPerSecond);
  admitted = 0;
  while (pq.TryAdmit(10)) admitted += 10;
  EXPECT_NEAR(admitted, 200, 1e-9);
}

TEST(ProxyQuotaTest, SettleReconcilesEstimates) {
  SimClock clock;
  quota::ProxyQuota pq(100, &clock);
  ASSERT_TRUE(pq.TryAdmit(50));  // Estimate 50.
  pq.SettleActual(50, 10);       // Actually cost 10: 40 refunded.
  double admitted = 0;
  while (pq.TryAdmit(10)) admitted += 10;
  EXPECT_NEAR(admitted, 190, 1e-9);
}

TEST(ProxyQuotaTest, RebaseQuota) {
  SimClock clock;
  quota::ProxyQuota pq(100, &clock);
  pq.SetBaseQuota(500);
  clock.Advance(10 * kMicrosPerSecond);
  double admitted = 0;
  while (pq.TryAdmit(100)) admitted += 100;
  EXPECT_NEAR(admitted, 1000, 1e-9);  // 2x of the new base.
}

// -------------------------------------------------------- PartitionQuota --

TEST(PartitionQuotaTest, TripleHeadroomBurstOnly) {
  SimClock clock;
  quota::PartitionQuota pq(1000, &clock);
  double admitted = 0;
  while (pq.TryAdmit(100)) admitted += 100;
  // The instantaneous burst allowance is 3x the partition quota...
  EXPECT_NEAR(admitted, 3000, 1e-9);
  // ...but refill happens at 1x, so the next second admits only 1000.
  clock.Advance(kMicrosPerSecond);
  admitted = 0;
  while (pq.TryAdmit(100)) admitted += 100;
  EXPECT_NEAR(admitted, 1000, 1e-9);
}

TEST(PartitionQuotaTest, DisabledAdmitsEverything) {
  SimClock clock;
  quota::PartitionQuota pq(10, &clock);
  pq.SetEnabled(false);
  for (int i = 0; i < 1000; i++) EXPECT_TRUE(pq.TryAdmit(100));
}

TEST(PartitionQuotaTest, SustainedRateConvergesToPartitionQuota) {
  // Figure 7: under a sustained skewed burst, the throttled partition's
  // success rate settles at the partition quota itself.
  SimClock clock;
  quota::PartitionQuota pq(1000, &clock);
  double admitted = 0;
  for (int sec = 0; sec < 50; sec++) {
    while (pq.TryAdmit(100)) admitted += 100;
    clock.Advance(kMicrosPerSecond);
  }
  EXPECT_NEAR(admitted / 50.0, 1000, 100);
}

// -------------------------------------------------- TenantTrafficMonitor --

TEST(TenantMonitorTest, ClampsAboveQuotaOnly) {
  quota::TenantTrafficMonitor mon(1000);
  EXPECT_FALSE(mon.ObserveAggregateRuPerSec(900));
  EXPECT_FALSE(mon.clamped());
  EXPECT_TRUE(mon.ObserveAggregateRuPerSec(1100));
  EXPECT_TRUE(mon.clamped());
  // Traffic subsides: clamp released (asynchronous control loop).
  EXPECT_FALSE(mon.ObserveAggregateRuPerSec(800));
  EXPECT_FALSE(mon.clamped());
}

}  // namespace
}  // namespace abase
