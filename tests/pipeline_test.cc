// Tests for the eight-stage tick pipeline and the data-plane executors:
//  * the parallel executor runs every task exactly once;
//  * a request can be driven through each stage boundary individually,
//    with the expected TickContext dataflow at every step;
//  * a seeded multi-tenant scenario produces bit-identical
//    TenantTickMetrics histories under the serial executor and under
//    parallel executors with 1, 2, and 4 workers.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/executor.h"
#include "core/abase.h"
#include "sim/cluster_sim.h"
#include "sim/pipeline.h"

namespace abase {
namespace {

// ---------------------------------------------------------------- Executor --

TEST(ExecutorTest, SerialRunsAllTasksInOrder)
{
  SerialExecutor ex;
  std::vector<size_t> order;
  ex.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, MorselPoolRunsEveryTaskExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    MorselExecutor ex(workers);
    EXPECT_EQ(ex.workers(), workers);
    constexpr size_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    for (int round = 0; round < 3; round++) {
      for (auto& h : hits) h.store(0);
      ex.ParallelFor(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < kTasks; i++) {
        ASSERT_EQ(hits[i].load(), 1) << "task " << i << " round " << round;
      }
    }
  }
}

TEST(ExecutorTest, MorselForCoversIndexSpaceAtEveryGrain) {
  for (int workers : {1, 2, 4}) {
    MorselExecutor ex(workers);
    for (size_t grain : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      constexpr size_t kTasks = 523;  // Prime: uneven ranges.
      std::vector<std::atomic<int>> hits(kTasks);
      for (auto& h : hits) h.store(0);
      ex.MorselFor("test", kTasks, grain,
                   [&](size_t begin, size_t end, int worker) {
                     ASSERT_GE(worker, 0);
                     ASSERT_LT(worker, workers);
                     for (size_t i = begin; i < end; i++) {
                       hits[i].fetch_add(1);
                     }
                   });
      for (size_t i = 0; i < kTasks; i++) {
        ASSERT_EQ(hits[i].load(), 1)
            << "task " << i << " grain " << grain << " workers " << workers;
      }
    }
  }
}

TEST(ExecutorTest, ParallelForZeroTasksReturns) {
  MorselExecutor ex(4);
  ex.ParallelFor(0, [](size_t) { FAIL() << "no task should run"; });
}

// ---------------------------------------------------------- Stage-by-stage --

meta::TenantConfig PipelineTenant(TenantId id, double quota = 50000) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = quota;
  c.num_partitions = 4;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  return c;
}

TEST(TickPipelineTest, OneRequestCrossesEveryStageBoundary) {
  sim::SimOptions opt;
  opt.seed = 11;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(3);
  ASSERT_TRUE(sim.AddTenant(PipelineTenant(1), pool).ok());
  sim.PreloadKeys(1, /*num_keys=*/4, /*value_bytes=*/64);

  ClientRequest req;
  req.req_id = 424242;
  req.tenant = 1;
  req.op = OpType::kGet;
  req.key = "t1:k0";  // Preloaded.
  req.track_outcome = true;
  sim.InjectRequest(req);

  sim::TickPipeline& pipeline = sim.pipeline();
  ASSERT_EQ(pipeline.num_stages(), 8u);
  EXPECT_STREQ(pipeline.stage(0).name(), "Fault");
  EXPECT_STREQ(pipeline.stage(1).name(), "Generate");
  EXPECT_STREQ(pipeline.stage(2).name(), "ProxyAdmit");
  EXPECT_STREQ(pipeline.stage(3).name(), "Route");
  EXPECT_STREQ(pipeline.stage(4).name(), "NodeSchedule");
  EXPECT_STREQ(pipeline.stage(5).name(), "Replicate");
  EXPECT_STREQ(pipeline.stage(6).name(), "Settle");
  EXPECT_STREQ(pipeline.stage(7).name(), "Control");

  sim::TickContext ctx;

  // Fault: nothing queued; every node stays alive.
  pipeline.stage(0).Run(ctx);
  EXPECT_EQ(sim.DownNodeCount(), 0u);

  // Generate: the injected request becomes this tick's client traffic
  // (no workload generators are attached, so no bulk tenant traffic).
  pipeline.stage(1).Run(ctx);
  EXPECT_TRUE(ctx.traffic.empty());
  ASSERT_EQ(ctx.injected.size(), 1u);
  EXPECT_EQ(ctx.injected[0].req_id, 424242u);

  // ProxyAdmit: cold cache, ample quota -> forwarded toward the data
  // plane with the proxy's RU estimate attached.
  pipeline.stage(2).Run(ctx);
  ASSERT_EQ(ctx.forwards.size(), 1u);
  EXPECT_EQ(ctx.forwards[0].request.req_id, 424242u);
  EXPECT_EQ(ctx.forwards[0].ctx.tenant, 1u);
  EXPECT_TRUE(ctx.forwards[0].ctx.track_outcome);
  EXPECT_GT(ctx.forwards[0].request.estimated_ru, 0.0);
  EXPECT_EQ(sim.InflightCount(), 0u);

  // Route: the forward lands on the partition primary and is registered
  // in-flight.
  pipeline.stage(3).Run(ctx);
  EXPECT_EQ(sim.InflightCount(), 1u);

  // NodeSchedule: the WFQ serves it; the response merges back into the
  // per-node drain buffers.
  pipeline.stage(4).Run(ctx);
  std::vector<NodeResponse> drained;
  for (const auto& per_node : ctx.responses) {
    drained.insert(drained.end(), per_node.begin(), per_node.end());
  }
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].req_id, 424242u);
  EXPECT_TRUE(drained[0].status.ok());

  // Replicate: with lag 0, every replica of the preloaded partitions is
  // caught up to its primary's stream after the step.
  pipeline.stage(5).Run(ctx);
  for (PartitionId p = 0; p < 4; p++) {
    EXPECT_EQ(sim.ReplicationLag(1, p), 0u) << "partition " << p;
  }

  // Settle: metrics recorded, outcome available, clock advanced.
  pipeline.stage(6).Run(ctx);
  EXPECT_EQ(sim.InflightCount(), 0u);
  auto outcome = sim.TakeOutcome(424242u);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->status.ok());
  EXPECT_FALSE(outcome->value.empty());
  ASSERT_EQ(sim.History(1).size(), 1u);
  EXPECT_EQ(sim.History(1)[0].issued, 1u);
  EXPECT_EQ(sim.History(1)[0].ok, 1u);
  EXPECT_EQ(sim.clock().NowMicros(), kMicrosPerSecond);
}

// ------------------------------------------------------------- Determinism --

bool MetricsEqual(const sim::TenantTickMetrics& a,
                  const sim::TenantTickMetrics& b) {
  return a.issued == b.issued && a.ok == b.ok && a.errors == b.errors &&
         a.throttled == b.throttled && a.unavailable == b.unavailable &&
         a.redirects == b.redirects &&
         a.replica_reads == b.replica_reads &&
         a.replica_lag_sum == b.replica_lag_sum &&
         a.proxy_hits == b.proxy_hits &&
         a.node_cache_hits == b.node_cache_hits &&
         a.disk_reads == b.disk_reads &&
         a.reads_completed == b.reads_completed &&
         a.ru_charged == b.ru_charged &&          // Bit-exact doubles:
         a.latency_sum == b.latency_sum &&        // settlement order is
         a.latency_max == b.latency_max &&        // node-id-deterministic.
         a.latency_count == b.latency_count;
}

/// A seeded 8-tenant / 16-node scenario with mixed read/write, hash-op,
/// and hot-spot traffic; returns per-tenant metric histories.
std::vector<std::vector<sim::TenantTickMetrics>> RunScenario(int workers,
                                                             size_t ticks) {
  sim::SimOptions opt;
  opt.seed = 1234;
  opt.data_plane_workers = workers;
  sim::ClusterSim sim(opt);
  PoolId pool = sim.AddPool(16);

  constexpr TenantId kTenants = 8;
  for (TenantId t = 1; t <= kTenants; t++) {
    EXPECT_TRUE(
        sim.AddTenant(PipelineTenant(t, 20000 + 1000.0 * t), pool).ok());
    sim.PreloadKeys(t, /*num_keys=*/200, /*value_bytes=*/256);

    sim::WorkloadProfile profile;
    profile.base_qps = 150 + 30.0 * t;
    profile.read_ratio = (t % 2 == 0) ? 0.95 : 0.6;
    profile.hash_op_fraction = (t % 3 == 0) ? 0.3 : 0.0;
    profile.num_keys = 200;
    profile.key_dist =
        (t % 2 == 0) ? sim::KeyDist::kZipfian : sim::KeyDist::kHotSpot;
    profile.value_bytes = 256;
    // Half the tenants spread part of their reads across replicas, so
    // the bit-identity contract covers the replica-read routing and the
    // Replicate step's staleness accounting too.
    profile.eventual_read_fraction = (t % 2 == 0) ? 0.5 : 0.0;
    sim.SetWorkload(t, profile);
  }

  sim.RunTicks(ticks);

  std::vector<std::vector<sim::TenantTickMetrics>> histories;
  for (TenantId t = 1; t <= kTenants; t++) {
    histories.push_back(sim.History(t));
  }
  return histories;
}

TEST(TickPipelineTest, SerialAndParallelExecutorsAreBitIdentical) {
  constexpr size_t kTicks = 20;
  auto serial = RunScenario(/*workers=*/1, kTicks);  // SerialExecutor.
  ASSERT_FALSE(serial.empty());

  // The scenario exercises replica reads, and at the default
  // replication lag of 0 they must observe zero staleness (replicas
  // apply every acknowledged write within the tick it is acknowledged).
  uint64_t replica_reads = 0, replica_lag_sum = 0;
  for (const auto& history : serial) {
    for (const auto& m : history) {
      replica_reads += m.replica_reads;
      replica_lag_sum += m.replica_lag_sum;
    }
  }
  EXPECT_GT(replica_reads, 0u);
  EXPECT_EQ(replica_lag_sum, 0u);
  for (int workers : {2, 4}) {
    auto parallel = RunScenario(workers, kTicks);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (size_t t = 0; t < serial.size(); t++) {
      ASSERT_EQ(parallel[t].size(), serial[t].size())
          << workers << " workers, tenant " << t + 1;
      for (size_t tick = 0; tick < serial[t].size(); tick++) {
        ASSERT_TRUE(MetricsEqual(serial[t][tick], parallel[t][tick]))
            << workers << " workers, tenant " << t + 1 << ", tick " << tick;
      }
    }
  }
}

/// A 64-client closed-loop async session at pipeline depth 16: every
/// client keeps 16 commands in flight, refilled as futures resolve.
/// Returns a fingerprint of every reply (client, sequence, status, value
/// size, completion time) in resolution-scan order.
std::vector<std::string> RunAsyncClientScenario(int workers) {
  ClusterOptions copts;
  copts.sim.seed = 2025;
  copts.sim.data_plane_workers = workers;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(8);
  meta::TenantConfig cfg = PipelineTenant(1, /*quota=*/500000);
  cfg.num_proxies = 8;
  cfg.num_proxy_groups = 2;
  EXPECT_TRUE(cluster.CreateTenant(cfg, pool).ok());
  cluster.sim().PreloadKeys(1, /*num_keys=*/512, /*value_bytes=*/128);

  constexpr int kClients = 64;
  constexpr int kDepth = 16;
  std::vector<Client> clients;
  for (int c = 0; c < kClients; c++) clients.push_back(cluster.OpenClient(1));

  struct Slot {
    int seq = 0;
    Future<Reply> future;
  };
  std::vector<std::vector<Slot>> outstanding(kClients);
  std::vector<int> next_seq(kClients, 0);
  auto submit_one = [&](int c) {
    int seq = next_seq[c]++;
    std::string key = "t1:k" + std::to_string((c * 17 + seq * 5) % 512);
    Command cmd = (seq % 7 == 3)
                      ? Command::Set(std::move(key),
                                     "w" + std::to_string(c) + ":" +
                                         std::to_string(seq))
                      : Command::Get(std::move(key));
    outstanding[c].push_back({seq, clients[c].Submit(std::move(cmd))});
  };
  for (int c = 0; c < kClients; c++) {
    for (int d = 0; d < kDepth; d++) submit_one(c);
  }

  std::vector<std::string> log;
  auto harvest = [&](bool refill) {
    for (int c = 0; c < kClients; c++) {
      auto& slots = outstanding[c];
      for (size_t i = 0; i < slots.size();) {
        if (slots[i].future.ready()) {
          const Reply& r = slots[i].future.value();
          log.push_back(std::to_string(c) + ":" +
                        std::to_string(slots[i].seq) + ":" +
                        std::to_string(static_cast<int>(r.status.code())) +
                        ":" + std::to_string(r.value.size()) + ":" +
                        std::to_string(r.completed_at));
          slots.erase(slots.begin() + static_cast<long>(i));
          if (refill) submit_one(c);
        } else {
          i++;
        }
      }
    }
  };
  for (int tick = 0; tick < 25; tick++) {
    cluster.Step();
    harvest(/*refill=*/true);
  }
  cluster.Drain();
  harvest(/*refill=*/false);
  EXPECT_EQ(cluster.PendingCommands(), 0u);
  return log;
}

TEST(TickPipelineTest, AsyncClientFleetBitIdenticalAcrossWorkers) {
  // Extends the determinism contract to the async command API: 64
  // clients each holding 16 commands in flight must produce bit-identical
  // reply streams no matter how many data-plane workers run the tick.
  auto serial = RunAsyncClientScenario(/*workers=*/1);
  ASSERT_GT(serial.size(), 64u * 16u);  // Closed loop actually cycled.
  for (int workers : {2, 4}) {
    auto parallel = RunAsyncClientScenario(workers);
    ASSERT_EQ(parallel.size(), serial.size()) << workers << " workers";
    for (size_t i = 0; i < serial.size(); i++) {
      ASSERT_EQ(parallel[i], serial[i])
          << workers << " workers, reply " << i;
    }
  }
}

TEST(TickPipelineTest, SwitchingExecutorMidRunStaysDeterministic) {
  // The same scenario run (a) serial throughout and (b) switching the
  // executor between ticks must agree: the executor is pure mechanism.
  auto run = [](bool switch_executors) {
    sim::SimOptions opt;
    opt.seed = 77;
    sim::ClusterSim sim(opt);
    PoolId pool = sim.AddPool(4);
    EXPECT_TRUE(sim.AddTenant(PipelineTenant(1), pool).ok());
    sim.PreloadKeys(1, 100, 128);
    sim::WorkloadProfile profile;
    profile.base_qps = 300;
    profile.read_ratio = 0.8;
    profile.num_keys = 100;
    sim.SetWorkload(1, profile);
    for (int tick = 0; tick < 12; tick++) {
      if (switch_executors) sim.SetDataPlaneWorkers(1 + tick % 4);
      sim.Tick();
    }
    return sim.History(1);
  };
  auto baseline = run(false);
  auto switched = run(true);
  ASSERT_EQ(baseline.size(), switched.size());
  for (size_t i = 0; i < baseline.size(); i++) {
    ASSERT_TRUE(MetricsEqual(baseline[i], switched[i])) << "tick " << i;
  }
}

}  // namespace
}  // namespace abase
