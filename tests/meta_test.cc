// Tests for the MetaServer (Section 3.2 control plane, Section 3.3
// recovery): placement, routing, scaling with partition split, replica
// migration, and parallel failure recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/clock.h"
#include "meta/meta_server.h"
#include "storage/replication_log.h"

namespace abase {
namespace meta {
namespace {

class MetaTest : public ::testing::Test {
 protected:
  MetaTest() : clock_(0), meta_(&clock_) {
    for (NodeId i = 0; i < 6; i++) {
      nodes_.push_back(std::make_unique<node::DataNode>(
          i, node::DataNodeOptions{}, &clock_));
    }
    std::vector<node::DataNode*> raw;
    for (auto& n : nodes_) raw.push_back(n.get());
    pool_ = meta_.CreatePool(raw);
  }

  TenantConfig Config(TenantId id, uint32_t partitions = 4,
                      int replicas = 3) {
    TenantConfig c;
    c.id = id;
    c.name = "tenant" + std::to_string(id);
    c.tenant_quota_ru = 8000;
    c.num_partitions = partitions;
    c.replicas = replicas;
    return c;
  }

  SimClock clock_;
  MetaServer meta_;
  std::vector<std::unique_ptr<node::DataNode>> nodes_;
  PoolId pool_ = 0;
};

TEST_F(MetaTest, CreateTenantPlacesAllReplicas) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  const TenantMeta* t = meta_.GetTenant(1);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->partitions.size(), 4u);
  size_t total = 0;
  for (const auto& p : t->partitions) {
    EXPECT_EQ(p.replicas.size(), 3u);
    // Replica safety: three distinct nodes per partition.
    std::set<NodeId> uniq(p.replicas.begin(), p.replicas.end());
    EXPECT_EQ(uniq.size(), 3u);
    total += p.replicas.size();
  }
  // All replicas physically exist on nodes.
  size_t hosted = 0;
  for (auto& n : nodes_) hosted += n->replica_count();
  EXPECT_EQ(hosted, total);
}

TEST_F(MetaTest, DuplicateTenantRejected) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  EXPECT_FALSE(meta_.CreateTenant(Config(1), pool_).ok());
}

TEST_F(MetaTest, PoolSmallerThanReplicasRejected) {
  std::vector<std::unique_ptr<node::DataNode>> tiny;
  std::vector<node::DataNode*> raw;
  for (NodeId i = 100; i < 102; i++) {
    tiny.push_back(std::make_unique<node::DataNode>(
        i, node::DataNodeOptions{}, &clock_));
    raw.push_back(tiny.back().get());
  }
  PoolId small_pool = meta_.CreatePool(raw);
  EXPECT_TRUE(meta_.CreateTenant(Config(9, 2, 3), small_pool)
                  .IsResourceExhausted());
}

TEST_F(MetaTest, ReplicasSpreadAcrossAvailabilityZones) {
  // 6 nodes in 3 AZs (2 each): every partition's 3 replicas must land in
  // 3 distinct AZs (paper Section 3.1).
  for (size_t i = 0; i < nodes_.size(); i++) {
    nodes_[i]->set_az(static_cast<uint32_t>(i % 3));
  }
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  for (const auto& placement : meta_.GetTenant(1)->partitions) {
    std::set<uint32_t> azs;
    for (NodeId nid : placement.replicas) {
      for (auto& n : nodes_) {
        if (n->id() == nid) azs.insert(n->az());
      }
    }
    EXPECT_EQ(azs.size(), 3u);
  }
}

TEST_F(MetaTest, AzPreferenceFallsBackWhenZonesExhausted) {
  // All nodes in ONE AZ: placement still succeeds (replica safety only).
  for (auto& n : nodes_) n->set_az(7);
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  EXPECT_EQ(meta_.GetTenant(1)->partitions.size(), 4u);
}

TEST_F(MetaTest, PlacementBalancesQuota) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 6, 3), pool_).ok());
  // 18 replicas over 6 nodes: least-loaded placement keeps counts even.
  size_t min_count = 99, max_count = 0;
  for (auto& n : nodes_) {
    min_count = std::min(min_count, n->replica_count());
    max_count = std::max(max_count, n->replica_count());
  }
  EXPECT_LE(max_count - min_count, 1u);
}

TEST_F(MetaTest, KeyRoutingStableAndInRange) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  PartitionId p1 = meta_.PartitionFor(1, "user:12345");
  EXPECT_EQ(p1, meta_.PartitionFor(1, "user:12345"));
  EXPECT_LT(p1, 4u);
  NodeId primary = meta_.PrimaryFor(1, p1);
  EXPECT_NE(primary, kInvalidNode);
  EXPECT_EQ(meta_.PrimaryFor(1, 99), kInvalidNode);
  EXPECT_EQ(meta_.PrimaryFor(42, 0), kInvalidNode);
}

TEST_F(MetaTest, SetTenantQuotaPropagatesPartitionQuotas) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  ASSERT_TRUE(meta_.SetTenantQuota(1, 16000).ok());
  const TenantMeta* t = meta_.GetTenant(1);
  EXPECT_DOUBLE_EQ(t->tenant_quota_ru, 16000);
  EXPECT_DOUBLE_EQ(t->PartitionQuota(), 4000);
}

TEST_F(MetaTest, ScaleUpTriggersSplitWhenPartitionQuotaExceedsUpperBound) {
  TenantConfig c = Config(1, 2, 2);
  c.partition_quota_upper = 3000;
  ASSERT_TRUE(meta_.CreateTenant(c, pool_).ok());
  // 2 partitions; quota 20000 -> QP 10000 > 3000: splits until <= 3000.
  ASSERT_TRUE(meta_.SetTenantQuota(1, 20000).ok());
  const TenantMeta* t = meta_.GetTenant(1);
  EXPECT_GE(t->partitions.size(), 8u);
  EXPECT_LE(t->PartitionQuota(), 3000.0);
}

TEST_F(MetaTest, SplitPartitionsRollsBackOnPlacementFailure) {
  // Regression: a mid-loop placement failure used to return early with
  // the failing child's replicas already added to nodes — node replica
  // sets and the partitions vector disagreed forever after. The split
  // must be all-or-nothing.
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 2, 3), pool_).ok());
  const size_t old_partitions = meta_.GetTenant(1)->partitions.size();
  std::vector<size_t> replica_counts;
  for (auto& n : nodes_) replica_counts.push_back(n->replica_count());

  // Leave only two serveable nodes: a 3-replica child cannot be placed.
  for (size_t i = 2; i < nodes_.size(); i++) nodes_[i]->Fail();
  EXPECT_TRUE(meta_.SplitPartitions(1).IsResourceExhausted());

  // Nothing changed: no child partition exists anywhere, node replica
  // sets are exactly as before the failed attempt.
  EXPECT_EQ(meta_.GetTenant(1)->partitions.size(), old_partitions);
  for (size_t i = 0; i < nodes_.size(); i++) {
    EXPECT_EQ(nodes_[i]->replica_count(), replica_counts[i]) << "node " << i;
    for (PartitionId child = static_cast<PartitionId>(old_partitions);
         child < 2 * old_partitions; child++) {
      EXPECT_FALSE(nodes_[i]->HasReplica(1, child))
          << "node " << i << " kept stale child " << child;
    }
  }
}

TEST_F(MetaTest, StagedSplitPrepareCommitLifecycle) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 2, 3), pool_).ok());
  const uint64_t epoch_before = meta_.routing_epoch();

  // Prepare: children placed on nodes but invisible to routing.
  ASSERT_TRUE(meta_.PrepareSplit(1).ok());
  const MetaServer::PendingSplit* pending = meta_.GetPendingSplit(1);
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->old_count, 2u);
  ASSERT_EQ(pending->children.size(), 2u);
  EXPECT_EQ(meta_.GetTenant(1)->partitions.size(), 2u);
  EXPECT_EQ(meta_.routing_epoch(), epoch_before);
  size_t staged_hosted = 0;
  for (auto& n : nodes_) {
    for (PartitionId child = 2; child < 4; child++) {
      if (n->HasReplica(1, child)) staged_hosted++;
    }
  }
  EXPECT_EQ(staged_hosted, 6u);
  // No double staging, and no inline split while one is staged.
  EXPECT_FALSE(meta_.PrepareSplit(1).ok());
  EXPECT_FALSE(meta_.SplitPartitions(1).ok());
  // SetTenantQuota must not split inline underneath a staged split.
  ASSERT_TRUE(meta_.SetTenantQuota(1, 1e9).ok());
  EXPECT_EQ(meta_.GetTenant(1)->partitions.size(), 2u);

  // Commit: children join the table atomically, epoch bumps.
  ASSERT_TRUE(meta_.CommitSplit(1).ok());
  EXPECT_EQ(meta_.GetTenant(1)->partitions.size(), 4u);
  EXPECT_GT(meta_.routing_epoch(), epoch_before);
  EXPECT_EQ(meta_.GetPendingSplit(1), nullptr);
  EXPECT_FALSE(meta_.CommitSplit(1).ok());  // Nothing staged anymore.
}

TEST_F(MetaTest, StagedSplitAbortRemovesStagedReplicas) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 2, 3), pool_).ok());
  std::vector<size_t> replica_counts;
  for (auto& n : nodes_) replica_counts.push_back(n->replica_count());
  ASSERT_TRUE(meta_.PrepareSplit(1).ok());
  ASSERT_TRUE(meta_.AbortSplit(1).ok());
  EXPECT_EQ(meta_.GetPendingSplit(1), nullptr);
  for (size_t i = 0; i < nodes_.size(); i++) {
    EXPECT_EQ(nodes_[i]->replica_count(), replica_counts[i]) << "node " << i;
  }
  EXPECT_TRUE(meta_.AbortSplit(1).IsNotFound());
}

TEST_F(MetaTest, ScaleDownRecordsTimestamp) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  clock_.Advance(kMicrosPerDay);
  ASSERT_TRUE(meta_.SetTenantQuota(1, 4000).ok());
  EXPECT_EQ(meta_.GetTenant(1)->last_scale_down, kMicrosPerDay);
}

TEST_F(MetaTest, InvalidQuotaRejected) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  EXPECT_FALSE(meta_.SetTenantQuota(1, -5).ok());
  EXPECT_TRUE(meta_.SetTenantQuota(77, 100).IsNotFound());
}

TEST_F(MetaTest, MigrateReplicaMovesDataAndMetadata) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  const TenantMeta* t = meta_.GetTenant(1);
  NodeId from = t->partitions[0].replicas[0];
  // Find a node not hosting partition 0.
  NodeId to = kInvalidNode;
  for (auto& n : nodes_) {
    if (!n->HasReplica(1, 0)) {
      to = n->id();
      break;
    }
  }
  ASSERT_NE(to, kInvalidNode);
  ASSERT_TRUE(meta_.MigrateReplica(1, 0, from, to).ok());
  EXPECT_EQ(meta_.GetTenant(1)->partitions[0].replicas[0], to);
  // Double-migration to an occupied node fails.
  EXPECT_FALSE(meta_.MigrateReplica(1, 0, to, to).ok());
}

TEST_F(MetaTest, FailNodeRebuildsAllReplicasInParallel) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 6, 3), pool_).ok());
  NodeId victim = nodes_[0]->id();
  size_t victim_replicas = nodes_[0]->replica_count();
  ASSERT_GT(victim_replicas, 0u);

  auto report = meta_.FailNode(pool_, victim);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().replicas_rebuilt, victim_replicas);
  // The failed node hosts nothing afterwards; survivors host everything.
  EXPECT_EQ(nodes_[0]->replica_count(), 0u);
  size_t hosted = 0;
  for (size_t i = 1; i < nodes_.size(); i++) {
    hosted += nodes_[i]->replica_count();
  }
  EXPECT_EQ(hosted, 18u);
  // Placement metadata no longer references the failed node.
  for (const auto& p : meta_.GetTenant(1)->partitions) {
    for (NodeId nid : p.replicas) EXPECT_NE(nid, victim);
  }
}

TEST_F(MetaTest, MigrateReplicaCarriesRealEngineState) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 1, 3), pool_).ok());
  NodeId from = meta_.GetTenant(1)->partitions[0].replicas[0];
  node::DataNode* src = nullptr;
  for (auto& n : nodes_) {
    if (n->id() == from) src = n.get();
  }
  ASSERT_NE(src, nullptr);
  ASSERT_TRUE(src->EngineFor(1, 0)->Put("migrated-key", "payload").ok());

  NodeId to = kInvalidNode;
  for (auto& n : nodes_) {
    if (!n->HasReplica(1, 0)) to = n->id();
  }
  ASSERT_NE(to, kInvalidNode);
  ASSERT_TRUE(meta_.MigrateReplica(1, 0, from, to).ok());

  // The moved replica holds the source's real state and stream cursor —
  // not an empty engine.
  node::DataNode* dst = nullptr;
  for (auto& n : nodes_) {
    if (n->id() == to) dst = n.get();
  }
  ASSERT_NE(dst, nullptr);
  ASSERT_TRUE(dst->HasReplica(1, 0));
  auto r = dst->EngineFor(1, 0)->Get("migrated-key");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "payload");
  EXPECT_EQ(dst->EngineFor(1, 0)->applied_seq(), 1u);
}

TEST_F(MetaTest, FailNodeRebuildPlacesRealDataOnTargets) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 2, 3), pool_).ok());
  // Seed the primaries, then bring every replica up to date through the
  // replication stream (what the Replicate pipeline step does live).
  const TenantMeta* t = meta_.GetTenant(1);
  for (PartitionId p = 0; p < t->partitions.size(); p++) {
    const auto& reps = t->partitions[p].replicas;
    node::DataNode* primary = nullptr;
    for (auto& n : nodes_) {
      if (n->id() == reps[0]) primary = n.get();
    }
    ASSERT_NE(primary, nullptr);
    auto* engine = primary->EngineFor(1, p);
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(engine->Put("p" + std::to_string(p) + ":k" +
                                  std::to_string(i),
                              "v" + std::to_string(i)).ok());
    }
    for (size_t r = 1; r < reps.size(); r++) {
      for (auto& n : nodes_) {
        if (n->id() != reps[r]) continue;
        engine->repl_log().ForEachDelta(
            0, engine->applied_seq(),
            [&](const storage::ReplRecordPtr& rec) {
              EXPECT_TRUE(n->ApplyReplicated(1, p, rec));
              return true;
            });
      }
    }
  }

  NodeId victim = nodes_[0]->id();
  size_t victim_replicas = nodes_[0]->replica_count();
  ASSERT_GT(victim_replicas, 0u);
  auto report = meta_.FailNode(pool_, victim);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().replicas_rebuilt, victim_replicas);
  // Permanent loss executes the rebuild immediately: every target
  // recorded in the report holds the real pre-crash partition state.
  EXPECT_EQ(report.value().replicas_rebuilt_executed, victim_replicas);
  ASSERT_EQ(report.value().re_replication_targets.size(), victim_replicas);
  for (const ReReplicationTarget& target :
       report.value().re_replication_targets) {
    node::DataNode* dst = nullptr;
    for (auto& n : nodes_) {
      if (n->id() == target.target) dst = n.get();
    }
    ASSERT_NE(dst, nullptr);
    ASSERT_TRUE(dst->HasReplica(target.tenant, target.partition));
    auto* engine = dst->EngineFor(target.tenant, target.partition);
    for (int i = 0; i < 10; i++) {
      auto r = engine->Get("p" + std::to_string(target.partition) + ":k" +
                           std::to_string(i));
      ASSERT_TRUE(r.ok()) << "target " << target.target << " partition "
                          << target.partition << " key " << i;
      EXPECT_EQ(r.value(), "v" + std::to_string(i));
    }
  }
}

TEST_F(MetaTest, ExecuteReReplicationReplacesDeadSlotWithRealCopy) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 1, 3), pool_).ok());
  const TenantMeta* t = meta_.GetTenant(1);
  const NodeId victim = t->partitions[0].replicas[0];
  node::DataNode* primary = nullptr;
  for (auto& n : nodes_) {
    if (n->id() == victim) primary = n.get();
  }
  ASSERT_NE(primary, nullptr);
  auto* engine = primary->EngineFor(1, 0);
  ASSERT_TRUE(engine->Put("k", "v").ok());
  // Stream the write to the surviving replicas so the promoted one has it.
  for (size_t r = 1; r < t->partitions[0].replicas.size(); r++) {
    for (auto& n : nodes_) {
      if (n->id() != t->partitions[0].replicas[r]) continue;
      engine->repl_log().ForEachDelta(
          0, engine->applied_seq(),
          [&](const storage::ReplRecordPtr& rec) {
            EXPECT_TRUE(n->ApplyReplicated(1, 0, rec));
            return true;
          });
    }
  }

  primary->Fail();
  auto report = meta_.PromoteFailover(victim);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().primaries_promoted, 1u);
  ASSERT_FALSE(report.value().re_replication_targets.empty());
  ASSERT_TRUE(meta_.HasDemotionClaim(victim, 1, 0));

  const ReReplicationTarget& target = report.value().re_replication_targets[0];
  ASSERT_TRUE(
      meta_.ExecuteReReplication(1, 0, victim, target.target).ok());

  // The target joined the placement with the real data; the dead node
  // left it and forfeited its failback claim.
  const auto& reps = meta_.GetTenant(1)->partitions[0].replicas;
  EXPECT_NE(std::find(reps.begin(), reps.end(), target.target), reps.end());
  EXPECT_EQ(std::find(reps.begin(), reps.end(), victim), reps.end());
  EXPECT_FALSE(meta_.HasDemotionClaim(victim, 1, 0));
  node::DataNode* dst = nullptr;
  for (auto& n : nodes_) {
    if (n->id() == target.target) dst = n.get();
  }
  ASSERT_NE(dst, nullptr);
  auto r = dst->EngineFor(1, 0)->Get("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "v");

  // Executing the same plan twice is refused (the slot moved on).
  EXPECT_FALSE(
      meta_.ExecuteReReplication(1, 0, victim, target.target).ok());
}

TEST_F(MetaTest, ParallelRecoveryFasterThanSingleNode) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1, 6, 3), pool_).ok());
  // Write some data so replicas have bytes.
  for (auto& n : nodes_) {
    for (const node::PartitionReplica* rep : n->Replicas()) {
      auto* engine = n->EngineFor(rep->tenant, rep->partition);
      for (int i = 0; i < 20; i++) {
        ASSERT_TRUE(
            engine->Put("key" + std::to_string(i), std::string(1024, 'x'))
                .ok());
      }
    }
  }
  auto report = meta_.FailNode(pool_, nodes_[0]->id());
  ASSERT_TRUE(report.ok());
  // Section 3.3: multi-node parallel rebuild beats the single-replacement
  // rebuild whenever the lost replicas spread over >1 target.
  EXPECT_GT(report.value().parallel_sources, 1u);
  EXPECT_LT(report.value().parallel_recovery_seconds,
            report.value().single_node_recovery_seconds);
}

TEST_F(MetaTest, ProxyTrafficClampLoop) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  EXPECT_FALSE(meta_.ReportProxyTraffic(1, 7000));  // Below 8000 quota.
  EXPECT_FALSE(meta_.IsClamped(1));
  EXPECT_TRUE(meta_.ReportProxyTraffic(1, 9000));
  EXPECT_TRUE(meta_.IsClamped(1));
  EXPECT_FALSE(meta_.ReportProxyTraffic(1, 3000));  // Recovers.
}

TEST_F(MetaTest, AddRemoveNodeFromPool) {
  auto extra = std::make_unique<node::DataNode>(
      99, node::DataNodeOptions{}, &clock_);
  ASSERT_TRUE(meta_.AddNodeToPool(pool_, extra.get()).ok());
  EXPECT_EQ(meta_.PoolNodes(pool_).size(), 7u);
  ASSERT_TRUE(meta_.RemoveNodeFromPool(pool_, 99).ok());
  EXPECT_EQ(meta_.PoolNodes(pool_).size(), 6u);
  EXPECT_TRUE(meta_.RemoveNodeFromPool(pool_, 99).IsNotFound());
}

TEST_F(MetaTest, RemoveNodeWithReplicasRefused) {
  ASSERT_TRUE(meta_.CreateTenant(Config(1), pool_).ok());
  NodeId busy = meta_.GetTenant(1)->partitions[0].replicas[0];
  EXPECT_FALSE(meta_.RemoveNodeFromPool(pool_, busy).ok());
}

}  // namespace
}  // namespace meta
}  // namespace abase
