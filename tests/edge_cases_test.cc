// Edge cases and failure injection across modules: degenerate inputs,
// zero-capacity resources, crash loops, expiry races, and preload/sim
// plumbing.
#include <gtest/gtest.h>

#include "cache/sa_lru.h"
#include "common/clock.h"
#include "common/rng.h"
#include "forecast/ensemble.h"
#include "forecast/psd.h"
#include "resched/rescheduler.h"
#include "sim/cluster_sim.h"
#include "storage/lsm_engine.h"

namespace abase {
namespace {

// ----------------------------------------------------------- LSM crashes --

TEST(EdgeCaseTest, RepeatedCrashLoopsNeverLoseAcknowledgedWrites) {
  SimClock clock;
  storage::LsmOptions opts;
  opts.memtable_flush_bytes = 1024;
  storage::LsmEngine engine(opts, &clock);
  for (int round = 0; round < 20; round++) {
    std::string key = "crash" + std::to_string(round);
    ASSERT_TRUE(engine.Put(key, "v" + std::to_string(round)).ok());
    engine.CrashAndRecover();  // Crash immediately after every write.
    auto v = engine.Get(key);
    ASSERT_TRUE(v.ok()) << "lost write in round " << round;
    EXPECT_EQ(v.value(), "v" + std::to_string(round));
  }
}

TEST(EdgeCaseTest, CrashDuringCompactionWindowKeepsData) {
  SimClock clock;
  storage::LsmOptions opts;
  opts.memtable_flush_bytes = 512;
  opts.runs_per_level_trigger = 1;  // Compact aggressively.
  storage::LsmEngine engine(opts, &clock);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(engine.Put("k" + std::to_string(i % 40),
                           std::string(64, 'x')).ok());
    if (i % 17 == 0) engine.CrashAndRecover();
  }
  for (int i = 0; i < 40; i++) {
    EXPECT_TRUE(engine.Get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(EdgeCaseTest, TtlBoundaryExactInstant) {
  SimClock clock;
  storage::LsmEngine engine(storage::LsmOptions{}, &clock);
  ASSERT_TRUE(engine.Put("k", "v", 100).ok());
  clock.Advance(99);
  EXPECT_TRUE(engine.Get("k").ok());  // One microsecond before expiry.
  clock.Advance(1);
  EXPECT_TRUE(engine.Get("k").status().IsNotFound());  // Exactly at it.
}

TEST(EdgeCaseTest, ZeroTtlMeansImmortal) {
  SimClock clock;
  storage::LsmEngine engine(storage::LsmOptions{}, &clock);
  ASSERT_TRUE(engine.Put("k", "v", 0).ok());
  clock.Advance(1000ll * kMicrosPerDay);
  EXPECT_TRUE(engine.Get("k").ok());
}

TEST(EdgeCaseTest, HashTtlAppliesToWholeKey) {
  SimClock clock;
  storage::LsmEngine engine(storage::LsmOptions{}, &clock);
  ASSERT_TRUE(engine.HSet("h", "f", "v").ok());
  ASSERT_TRUE(engine.Expire("h", 10).ok());
  clock.Advance(11);
  EXPECT_TRUE(engine.HGet("h", "f").status().IsNotFound());
  EXPECT_TRUE(engine.HLen("h").status().IsNotFound());
}

// --------------------------------------------------------- SA-LRU expiry --

TEST(EdgeCaseTest, SaLruExpiredEntryCountsAsMissAndIsErased) {
  SimClock clock;
  cache::SaLruOptions opts;
  opts.capacity_bytes = 4096;
  cache::SaLruCache cache(opts, &clock);
  cache.Put("k", "v", 100, /*expire_at=*/500);
  EXPECT_TRUE(cache.Get("k").has_value());
  clock.Advance(500);
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_FALSE(cache.Contains("k"));
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(EdgeCaseTest, SaLruWithoutClockIgnoresExpiry) {
  cache::SaLruCache cache{cache::SaLruOptions{}};  // No clock.
  cache.Put("k", "v", 100, /*expire_at=*/1);
  EXPECT_TRUE(cache.Get("k").has_value());  // Immortal without a clock.
}

TEST(EdgeCaseTest, SaLruGetWithExpiryReportsDeadline) {
  SimClock clock;
  cache::SaLruCache cache(cache::SaLruOptions{}, &clock);
  cache.Put("k", "v", 100, /*expire_at=*/12345);
  Micros expire_at = 0;
  auto v = cache.GetWithExpiry("k", &expire_at);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(expire_at, 12345);
}

// ------------------------------------------------------------- Forecast --

TEST(EdgeCaseTest, ForecastConstantSeries) {
  TimeSeries flat(std::vector<double>(200, 500.0));
  auto fc = forecast::EnsembleForecast(flat, TimeSeries(), 48);
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc.value().predicted_max, 500.0, 50.0);
}

TEST(EdgeCaseTest, ForecastAllZeroSeries) {
  TimeSeries zero(std::vector<double>(200, 0.0));
  auto fc = forecast::EnsembleForecast(zero, TimeSeries(), 48);
  ASSERT_TRUE(fc.ok());
  EXPECT_LE(fc.value().predicted_max, 1e-6);
}

TEST(EdgeCaseTest, PsdConstantSeriesHasNoPeriod) {
  TimeSeries flat(std::vector<double>(100, 3.0));
  EXPECT_DOUBLE_EQ(forecast::DetectDominantPeriod(flat), 0.0);
}

// ----------------------------------------------------------- Rescheduler --

TEST(EdgeCaseTest, EmptyPoolIsStable) {
  resched::PoolModel pool;
  resched::IntraPoolRescheduler rescheduler;
  EXPECT_TRUE(rescheduler.Run(&pool).empty());
  EXPECT_DOUBLE_EQ(pool.OptimalLoad(resched::Resource::kRu), 0.0);
}

TEST(EdgeCaseTest, SingleNodePoolCannotMigrate) {
  resched::PoolModel pool;
  auto& n = pool.AddNode(1, 1000, 1e9);
  resched::ReplicaLoad r;
  r.tenant = 1;
  r.ru = LoadVector::Constant(999);
  r.storage = LoadVector::Constant(1);
  n.AddReplica(r);
  resched::IntraPoolRescheduler rescheduler;
  EXPECT_TRUE(rescheduler.Run(&pool).empty());
}

// --------------------------------------------------------------- Cluster --

TEST(EdgeCaseTest, PreloadedKeysReadableThroughDataPlane) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(3);
  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "preload";
  cfg.tenant_quota_ru = 10000;
  cfg.num_partitions = 4;
  cfg.num_proxies = 2;
  cfg.num_proxy_groups = 1;
  ASSERT_TRUE(cluster.AddTenant(cfg, pool).ok());
  cluster.PreloadKeys(1, 50, 256);

  ClientRequest req;
  req.req_id = 7;
  req.tenant = 1;
  req.op = OpType::kGet;
  req.key = "t1:k17";  // Generator-style key name.
  req.track_outcome = true;
  cluster.InjectRequest(req);
  cluster.RunTicks(3);
  auto out = cluster.TakeOutcome(7);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->status.ok());
  EXPECT_FALSE(out->value.empty());
}

TEST(EdgeCaseTest, UnknownTenantRequestResolvesUnavailable) {
  sim::ClusterSim cluster;
  cluster.AddPool(2);
  ClientRequest req;
  req.req_id = 1;
  req.tenant = 99;  // Never created.
  req.op = OpType::kGet;
  req.key = "k";
  req.track_outcome = true;
  cluster.InjectRequest(req);
  cluster.RunTicks(2);  // Must not crash.
  // Tracked requests always get an answer — silently dropping one would
  // strand an async future waiting on it.
  auto out = cluster.TakeOutcome(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->status.IsUnavailable());
}

TEST(EdgeCaseTest, QueueDeadlineFailsStaleRequests) {
  SimClock clock;
  node::DataNodeOptions opts;
  opts.wfq.cpu_budget_ru = 1;  // Nearly no capacity: everything queues.
  opts.queue_timeout_ticks = 2;
  node::DataNode node(1, opts, &clock);
  node.AddReplica(1, 0, 1000, true);
  for (uint64_t i = 0; i < 50; i++) {
    NodeRequest r;
    r.req_id = i + 1;
    r.tenant = 1;
    r.partition = 0;
    r.op = OpType::kGet;
    r.key = "k";
    r.estimated_ru = 1.0;
    node.Submit(r);
  }
  size_t deadline_failures = 0;
  for (int t = 0; t < 6; t++) {
    node.Tick();
    clock.Advance(kMicrosPerSecond);
    for (const auto& resp : node.TakeResponses()) {
      if (resp.status.IsResourceExhausted()) deadline_failures++;
    }
  }
  EXPECT_GT(deadline_failures, 30u);  // The backlog fails fast, not never.
}

TEST(EdgeCaseTest, ZeroQpsWorkloadProducesNoTraffic) {
  sim::ClusterSim cluster;
  PoolId pool = cluster.AddPool(2);
  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "idle";
  cfg.tenant_quota_ru = 1000;
  cfg.num_partitions = 2;
  cfg.num_proxies = 2;
  cfg.num_proxy_groups = 1;
  cfg.replicas = 2;
  ASSERT_TRUE(cluster.AddTenant(cfg, pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 0;
  cluster.SetWorkload(1, p);
  cluster.RunTicks(5);
  for (const auto& tick : cluster.History(1)) {
    EXPECT_EQ(tick.issued, 0u);
  }
}

// Property sweep: cluster conservation — every issued request is either
// served, throttled, errored, or still pending; never silently lost.
class ConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(ConservationTest, RequestsNeverVanish) {
  sim::SimOptions opts;
  opts.seed = 77;
  opts.node.wfq.cpu_budget_ru = 4000;
  sim::ClusterSim cluster(opts);
  PoolId pool = cluster.AddPool(2);
  meta::TenantConfig cfg;
  cfg.id = 1;
  cfg.name = "conserve";
  cfg.tenant_quota_ru = 3000;
  cfg.num_partitions = 2;
  cfg.num_proxies = 2;
  cfg.num_proxy_groups = 1;
  cfg.replicas = 2;
  ASSERT_TRUE(cluster.AddTenant(cfg, pool).ok());
  sim::WorkloadProfile p;
  p.base_qps = 3000 * GetParam();  // Sweep under/over quota.
  p.read_ratio = 0.6;
  p.num_keys = 5000;
  cluster.SetWorkload(1, p);
  cluster.RunTicks(20);
  // Let the pipeline fully drain.
  sim::WorkloadProfile* mp = cluster.MutableWorkload(1);
  mp->base_qps = 0;
  cluster.RunTicks(5);

  uint64_t issued = 0, accounted = 0;
  for (const auto& tick : cluster.History(1)) {
    issued += tick.issued;
    accounted += tick.ok + tick.errors;
  }
  // Background refreshes are not client requests; client requests must
  // all be accounted once drained.
  EXPECT_EQ(issued, accounted);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, ConservationTest,
                         ::testing::Values(0.2, 0.8, 1.5, 4.0));

}  // namespace
}  // namespace abase
