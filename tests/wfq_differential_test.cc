// Differential test pinning the ring-based WfqQueue to the legacy
// one-item-per-heap-entry priority queue: under randomized multi-tenant
// workloads (including idle-tenant resume, lazy virtual-time pruning,
// rule deferrals via PopWithVft + Reinsert, and mid-stream Clear) both
// implementations must produce bit-identical dequeue sequences, VFTs,
// and virtual times.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "common/flat_map.h"
#include "sched/wfq_queue.h"

namespace abase {
namespace sched {
namespace {

// The pre-rings WfqQueue, verbatim: the ordering oracle.
class LegacyWfqQueue {
 public:
  void Push(const SchedRequest& req, double cost) {
    double weighted_cost = cost / req.quota_share;
    double start = vtime_;
    if (const double* pv = pre_vft_.Find(req.tenant)) {
      start = std::max(start, *pv);
    }
    double vft = start + weighted_cost;
    pre_vft_.Insert(req.tenant, vft);
    heap_.push(Item{req, vft, tie_counter_++});
  }

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }
  TenantId PeekTenant() const { return heap_.top().req.tenant; }
  double PeekVft() const { return heap_.top().vft; }

  SchedRequest Pop() {
    double vft;
    return PopWithVft(&vft);
  }

  SchedRequest PopWithVft(double* vft) {
    Item item = heap_.top();
    heap_.pop();
    vtime_ = std::max(vtime_, item.vft);
    if (heap_.empty()) pre_vft_.Clear();
    *vft = item.vft;
    return item.req;
  }

  void Reinsert(const SchedRequest& req, double vft) {
    heap_.push(Item{req, vft, tie_counter_++});
  }

  double VirtualTime() const { return vtime_; }

  void Clear() {
    heap_ = {};
    pre_vft_.Clear();
    vtime_ = 0;
    tie_counter_ = 0;
  }

 private:
  struct Item {
    SchedRequest req;
    double vft;
    uint64_t tie;
    bool operator>(const Item& o) const {
      if (vft != o.vft) return vft > o.vft;
      return tie > o.tie;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
  FlatMap64<double> pre_vft_;
  double vtime_ = 0;
  uint64_t tie_counter_ = 0;
};

SchedRequest MakeReq(uint64_t id, TenantId tenant, double cost,
                     double quota_share) {
  SchedRequest r;
  r.req_id = id;
  r.tenant = tenant;
  r.cpu_cost_ru = cost;
  r.quota_share = quota_share;
  return r;
}

// Drives both queues with the same operation and checks every observable
// after it: size, peeked head, popped request, VFT, and virtual time.
class Differential {
 public:
  void Push(const SchedRequest& req, double cost) {
    legacy_.Push(req, cost);
    rings_.Push(req, cost);
    CheckObservables();
  }

  void PopBoth() {
    ASSERT_FALSE(legacy_.Empty());
    double lv, rv;
    SchedRequest lr = legacy_.PopWithVft(&lv);
    SchedRequest rr = rings_.PopWithVft(&rv);
    EXPECT_EQ(lr.req_id, rr.req_id);
    EXPECT_EQ(lr.tenant, rr.tenant);
    EXPECT_EQ(lv, rv);  // Bit-identical VFT, not approximate.
    CheckObservables();
  }

  void PopAndDefer(std::vector<std::pair<SchedRequest, double>>* deferred) {
    ASSERT_FALSE(legacy_.Empty());
    double lv, rv;
    SchedRequest lr = legacy_.PopWithVft(&lv);
    SchedRequest rr = rings_.PopWithVft(&rv);
    EXPECT_EQ(lr.req_id, rr.req_id);
    EXPECT_EQ(lv, rv);
    deferred->push_back({lr, lv});
    CheckObservables();
  }

  void Reinsert(const SchedRequest& req, double vft) {
    legacy_.Reinsert(req, vft);
    rings_.Reinsert(req, vft);
    CheckObservables();
  }

  void Clear() {
    legacy_.Clear();
    rings_.Clear();
    CheckObservables();
  }

  void DrainAndCompare() {
    while (!legacy_.Empty()) PopBoth();
    EXPECT_TRUE(rings_.Empty());
  }

  bool Empty() const { return legacy_.Empty(); }
  size_t Size() const { return legacy_.Size(); }

 private:
  void CheckObservables() {
    ASSERT_EQ(legacy_.Size(), rings_.Size());
    ASSERT_EQ(legacy_.Empty(), rings_.Empty());
    EXPECT_EQ(legacy_.VirtualTime(), rings_.VirtualTime());
    if (!legacy_.Empty()) {
      EXPECT_EQ(legacy_.PeekTenant(), rings_.PeekTenant());
      EXPECT_EQ(legacy_.PeekVft(), rings_.PeekVft());
    }
  }

  LegacyWfqQueue legacy_;
  WfqQueue rings_;
};

TEST(WfqDifferentialTest, RandomizedMultiTenantWorkload) {
  std::mt19937_64 rng(0xaba5ef00dULL);
  std::uniform_real_distribution<double> cost_dist(0.5, 20.0);
  std::uniform_int_distribution<int> tenant_dist(1, 12);
  std::uniform_int_distribution<int> op_dist(0, 99);
  const double shares[] = {0.05, 0.1, 0.25, 0.5, 0.9, 1.0};

  Differential d;
  uint64_t next_id = 1;
  for (int step = 0; step < 20000; step++) {
    int op = op_dist(rng);
    if (op < 55 || d.Empty()) {
      TenantId t = static_cast<TenantId>(tenant_dist(rng));
      double cost = cost_dist(rng);
      d.Push(MakeReq(next_id++, t, cost, shares[t % 6]), cost);
    } else {
      d.PopBoth();
    }
  }
  d.DrainAndCompare();
}

TEST(WfqDifferentialTest, IdleTenantSkipAndLazyVirtualTime) {
  // Repeatedly drain the queue to empty (exercising the lazy preVFT
  // prune), then resume with a mix of previously-idle and brand-new
  // tenants whose start times must come forward to the virtual time.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> cost_dist(1.0, 8.0);
  Differential d;
  uint64_t next_id = 1;
  for (int round = 0; round < 50; round++) {
    // Each round activates a sliding window of tenants, so some return
    // from idle and some are new.
    for (int i = 0; i < 40; i++) {
      TenantId t = static_cast<TenantId>(1 + (round + i) % 7);
      double cost = cost_dist(rng);
      d.Push(MakeReq(next_id++, t, cost, 0.1 + 0.1 * (t % 5)), cost);
    }
    // Partially drain some rounds, fully drain others (empties the queue
    // and triggers the preVFT prune in both implementations).
    int pops = (round % 3 == 0) ? 40 : 25;
    for (int i = 0; i < pops && !d.Empty(); i++) d.PopBoth();
  }
  d.DrainAndCompare();
}

TEST(WfqDifferentialTest, DeferralsReinsertInIdenticalOrder) {
  // Mimics the Rule-3/Rule-4 pattern in DualLayerWfq: pop a batch, defer
  // a random subset with the popped VFT, reinsert everything at the end
  // of the "layer run", keep going.
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> cost_dist(0.5, 10.0);
  std::uniform_int_distribution<int> tenant_dist(1, 6);
  std::uniform_int_distribution<int> coin(0, 3);

  Differential d;
  uint64_t next_id = 1;
  for (int round = 0; round < 200; round++) {
    for (int i = 0; i < 15; i++) {
      TenantId t = static_cast<TenantId>(tenant_dist(rng));
      double cost = cost_dist(rng);
      d.Push(MakeReq(next_id++, t, cost, 0.15 * t), cost);
    }
    std::vector<std::pair<SchedRequest, double>> deferred;
    for (int i = 0; i < 12 && !d.Empty(); i++) {
      if (coin(rng) == 0) {
        d.PopAndDefer(&deferred);
      } else {
        d.PopBoth();
      }
    }
    for (const auto& [req, vft] : deferred) d.Reinsert(req, vft);
  }
  d.DrainAndCompare();
}

TEST(WfqDifferentialTest, ClearResetsBothIdentically) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> cost_dist(1.0, 5.0);
  Differential d;
  uint64_t next_id = 1;
  for (int round = 0; round < 20; round++) {
    for (int i = 0; i < 30; i++) {
      TenantId t = static_cast<TenantId>(1 + i % 5);
      double cost = cost_dist(rng);
      d.Push(MakeReq(next_id++, t, cost, 0.2), cost);
    }
    for (int i = 0; i < 10; i++) d.PopBoth();
    d.Clear();
    // After Clear both must behave like freshly constructed queues: the
    // tie counter and virtual time restart, so sequences re-align from
    // zero.
    for (int i = 0; i < 5; i++) {
      double cost = cost_dist(rng);
      d.Push(MakeReq(next_id++, 1 + i % 2, cost, 0.5), cost);
    }
    d.DrainAndCompare();
  }
}

TEST(WfqDifferentialTest, EqualVftTieBreakIsArrivalOrder) {
  // Zero-ish identical costs force VFT collisions; FIFO-by-arrival must
  // hold across tenants in both implementations.
  Differential d;
  for (uint64_t i = 0; i < 64; i++) {
    d.Push(MakeReq(i, 1 + i % 4, 1.0, 1.0), 1.0);
  }
  d.DrainAndCompare();
}

}  // namespace
}  // namespace sched
}  // namespace abase
