// Unit tests for the sub-tick latency subsystem: ServiceTimeModel
// distribution moments and determinism, DecayingHistogram decay and
// percentiles, the hedge state machine (cancel / RU-refund edges), the
// gray-failure detector's hysteresis, and the cluster-level wiring
// (timed Settle metrics, hedged reads, gray demotion, SLO burn rate).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "latency/decaying_histogram.h"
#include "latency/gray_detector.h"
#include "latency/hedge.h"
#include "latency/options.h"
#include "latency/service_time.h"
#include "meta/meta_server.h"
#include "node/data_node.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace {

using latency::DistKind;
using latency::ServiceTimeModel;
using latency::ServiceTimeOptions;

// --------------------------------------------------------- ServiceTimeModel --

ServiceTimeOptions Opts(DistKind dist, double mean, double sigma = 1.2,
                        uint64_t seed = 42) {
  ServiceTimeOptions o;
  o.enabled = true;
  o.dist = dist;
  o.mean_micros = mean;
  o.sigma = sigma;
  o.seed = seed;
  return o;
}

TEST(ServiceTimeModelTest, FixedDistributionIsDegenerate) {
  ServiceTimeModel m(Opts(DistKind::kFixed, 150));
  for (uint64_t r = 0; r < 100; r++) {
    EXPECT_EQ(m.Sample(/*stream=*/7, r), 150);
  }
}

TEST(ServiceTimeModelTest, ExponentialMeanAtFixedSeed) {
  ServiceTimeModel m(Opts(DistKind::kExponential, 200));
  constexpr int kDraws = 20000;
  double sum = 0;
  for (uint64_t r = 0; r < kDraws; r++) {
    sum += static_cast<double>(m.Sample(1, r));
  }
  const double mean = sum / kDraws;
  // Law of large numbers at a fixed seed: within 5% of the configured
  // mean (the draw is floored at 1us and capped at 100x mean, both of
  // which move an exponential's mean by well under that).
  EXPECT_NEAR(mean, 200.0, 10.0);
}

TEST(ServiceTimeModelTest, LognormalMeanAndHeavyTail) {
  ServiceTimeModel m(Opts(DistKind::kLognormal, 150, /*sigma=*/1.2));
  constexpr int kDraws = 40000;
  std::vector<double> draws(kDraws);
  double sum = 0;
  for (uint64_t r = 0; r < kDraws; r++) {
    draws[r] = static_cast<double>(m.Sample(1, r));
    sum += draws[r];
  }
  // Mean-preserving parameterization: mu = ln(mean) - sigma^2/2.
  EXPECT_NEAR(sum / kDraws, 150.0, 15.0);
  std::sort(draws.begin(), draws.end());
  const double p50 = draws[kDraws / 2];
  const double p99 = draws[static_cast<size_t>(kDraws * 0.99)];
  // Median of a lognormal = exp(mu) = mean * exp(-sigma^2/2) ~ 73;
  // p99/p50 = exp(2.326 * sigma) ~ 16. The tail is the point.
  EXPECT_NEAR(p50, 150.0 * std::exp(-1.2 * 1.2 / 2), 8.0);
  EXPECT_GT(p99 / p50, 8.0);
}

TEST(ServiceTimeModelTest, SamplesAreDeterministicAcrossInstances) {
  ServiceTimeModel a(Opts(DistKind::kLognormal, 150));
  ServiceTimeModel b(Opts(DistKind::kLognormal, 150));
  for (uint64_t r = 0; r < 1000; r++) {
    ASSERT_EQ(a.Sample(3, r), b.Sample(3, r)) << "req " << r;
  }
}

TEST(ServiceTimeModelTest, StreamsAreIndependent) {
  // Different streams must decorrelate: same req_id, different stream
  // should almost never collide, and the uniform draws differ.
  ServiceTimeModel m(Opts(DistKind::kExponential, 150));
  int collisions = 0;
  for (uint64_t r = 0; r < 1000; r++) {
    if (m.Sample(1, r) == m.Sample(2, r)) collisions++;
  }
  EXPECT_LT(collisions, 20);
  EXPECT_NE(ServiceTimeModel::Uniform(42, 1, 0),
            ServiceTimeModel::Uniform(42, 2, 0));
  EXPECT_NE(ServiceTimeModel::Uniform(42, 1, 0),
            ServiceTimeModel::Uniform(43, 1, 0));
}

TEST(ServiceTimeModelTest, UniformIsInUnitInterval) {
  for (uint64_t d = 0; d < 10000; d++) {
    const double u = ServiceTimeModel::Uniform(7, 9, d);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(ServiceTimeModelTest, NodeSampleAppliesDegradation) {
  SimClock clock(0);
  node::DataNodeOptions opts;
  opts.service_time = Opts(DistKind::kLognormal, 150);
  node::DataNode node(3, opts, &clock);
  const Micros healthy = node.SampleServiceMicros(1, 77);
  node.SetServiceDegradation(8.0);
  EXPECT_EQ(node.SampleServiceMicros(1, 77), healthy * 8);
  node.SetServiceDegradation(1.0);
  EXPECT_EQ(node.SampleServiceMicros(1, 77), healthy);
}

// -------------------------------------------------------- DecayingHistogram --

TEST(DecayingHistogramTest, PercentileTracksMass) {
  latency::DecayingHistogram h(1e9, /*decay=*/0.9);
  for (int i = 0; i < 95; i++) h.Add(100);
  for (int i = 0; i < 5; i++) h.Add(10000);
  // p50 lands in the bucket containing 100; p99 in the 10000 one.
  EXPECT_LT(h.Percentile(50), 200.0);
  EXPECT_GT(h.Percentile(99), 5000.0);
  EXPECT_EQ(h.Percentile(50), h.Percentile(10));  // Same bucket.
}

TEST(DecayingHistogramTest, DecayForgetsOldMass) {
  latency::DecayingHistogram h(1e9, /*decay=*/0.5);
  for (int i = 0; i < 100; i++) h.Add(10000);  // Old slow regime.
  for (int t = 0; t < 10; t++) h.Decay();
  for (int i = 0; i < 100; i++) h.Add(100);  // New fast regime.
  // The old mass decayed to ~0.1 weight; the p95 now reflects the new
  // regime even though the raw count of old samples equals the new.
  EXPECT_LT(h.Percentile(95), 200.0);
}

TEST(DecayingHistogramTest, IdleHistogramSettlesToEmpty) {
  latency::DecayingHistogram h(1e9, /*decay=*/0.5);
  h.Add(500);
  for (int t = 0; t < 64; t++) h.Decay();
  EXPECT_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

// ------------------------------------------------------------- EvaluateHedge --

TEST(HedgeTest, BelowThresholdDoesNotHedge) {
  auto d = latency::EvaluateHedge(/*threshold=*/1000, /*primary_vt=*/800,
                                  /*alt_available=*/true, /*alt_vt=*/100,
                                  /*alt_ru=*/1.0);
  EXPECT_FALSE(d.hedged);
  EXPECT_EQ(d.effective_micros, 800);
  EXPECT_EQ(d.extra_ru, 0.0);
}

TEST(HedgeTest, UnwarmedThresholdDisablesHedging) {
  auto d = latency::EvaluateHedge(/*threshold=*/0, /*primary_vt=*/999999,
                                  true, 100, 1.0);
  EXPECT_FALSE(d.hedged);
  EXPECT_EQ(d.effective_micros, 999999);
}

TEST(HedgeTest, ArmedWithoutAlternateCostsNothing) {
  // The hedge fires but no replica can take it: no second execution, no
  // extra RU, primary latency stands.
  auto d = latency::EvaluateHedge(/*threshold=*/1000, /*primary_vt=*/5000,
                                  /*alt_available=*/false, 0, 1.0);
  EXPECT_TRUE(d.hedged);
  EXPECT_FALSE(d.hedge_won);
  EXPECT_FALSE(d.cancelled);
  EXPECT_EQ(d.effective_micros, 5000);
  EXPECT_EQ(d.extra_ru, 0.0);
}

TEST(HedgeTest, AlternateWinsAndLoserIsChargedRu) {
  // Alt completes at threshold + alt_vt = 1000 + 500 = 1500 < 5000: the
  // hedge wins, the primary leg is cancelled but already burned its RU —
  // both executions are charged.
  auto d = latency::EvaluateHedge(1000, 5000, true, 500, /*alt_ru=*/1.5);
  EXPECT_TRUE(d.hedged);
  EXPECT_TRUE(d.hedge_won);
  EXPECT_TRUE(d.cancelled);
  EXPECT_EQ(d.effective_micros, 1500);
  EXPECT_EQ(d.extra_ru, 1.5);
}

TEST(HedgeTest, SlowAlternateLosesButStillCharges) {
  // Alt would land at 1000 + 9000 = 10000 > 5000: the primary wins, the
  // cancelled alternate still did the work — RU charged for both legs.
  auto d = latency::EvaluateHedge(1000, 5000, true, 9000, 2.0);
  EXPECT_TRUE(d.hedged);
  EXPECT_FALSE(d.hedge_won);
  EXPECT_TRUE(d.cancelled);
  EXPECT_EQ(d.effective_micros, 5000);
  EXPECT_EQ(d.extra_ru, 2.0);
}

TEST(HedgeTest, HedgerFreezesThresholdAtTickBoundary) {
  latency::HedgePolicy policy;
  policy.enabled = true;
  policy.quantile = 95;
  policy.min_threshold_micros = 10;
  policy.min_observations = 32;
  latency::Hedger hedger(policy);
  EXPECT_EQ(hedger.threshold(), 0);  // Unwarmed.
  for (int i = 0; i < 100; i++) hedger.Observe(100);
  for (int i = 0; i < 5; i++) hedger.Observe(10000);
  EXPECT_EQ(hedger.threshold(), 0);  // Still frozen until the boundary.
  hedger.EndTick();
  EXPECT_GT(hedger.threshold(), 100);
  EXPECT_LE(hedger.threshold(), 20000);
}

TEST(HedgeTest, HedgerBelowMinObservationsStaysDisarmed) {
  latency::HedgePolicy policy;
  policy.enabled = true;
  policy.min_observations = 64;
  latency::Hedger hedger(policy);
  for (int i = 0; i < 10; i++) hedger.Observe(100);
  hedger.EndTick();
  EXPECT_EQ(hedger.threshold(), 0);
}

// ------------------------------------------------------- GrayFailureDetector --

latency::GrayDetectorOptions GrayOpts(int consecutive = 3) {
  latency::GrayDetectorOptions o;
  o.enabled = true;
  o.slow_factor = 3.0;
  o.recover_factor = 1.5;
  o.consecutive_ticks = consecutive;
  o.min_samples = 1;
  return o;
}

// Feeds one tick where every node serves mean `healthy` except `slow_id`
// at `slow_mean`, then evaluates.
std::vector<latency::GrayFailureDetector::Transition> FeedTick(
    latency::GrayFailureDetector& det, NodeId nodes, NodeId slow_id,
    uint64_t healthy, uint64_t slow_mean) {
  for (NodeId n = 0; n < nodes; n++) {
    const uint64_t mean = n == slow_id ? slow_mean : healthy;
    det.ObserveTick(n, mean * 10, 10);
  }
  return det.Evaluate();
}

TEST(GrayDetectorTest, FlagsSlowNodeAfterConsecutiveTicks) {
  latency::GrayFailureDetector det(GrayOpts(3));
  // Warm the EWMAs with healthy traffic first.
  for (int t = 0; t < 3; t++) FeedTick(det, 6, kInvalidNode, 200, 200);
  // Node 2 turns 10x slow. EWMA (alpha .3) needs a couple of ticks to
  // cross 3x median, then the 3-tick streak must fill before the flag.
  int flagged_at = -1;
  for (int t = 0; t < 12; t++) {
    auto trans = FeedTick(det, 6, 2, 200, 2000);
    if (!trans.empty()) {
      ASSERT_EQ(trans.size(), 1u);
      EXPECT_EQ(trans[0].node, 2);
      EXPECT_TRUE(trans[0].now_gray);
      flagged_at = t;
      break;
    }
  }
  // Hysteresis: the condition must hold consecutive_ticks=3 ticks
  // (indices 0..2) before the flag, so it can fire no earlier than t=2.
  ASSERT_GE(flagged_at, 2);
  EXPECT_TRUE(det.IsGray(2));
  EXPECT_EQ(det.GrayCount(), 1u);
  EXPECT_GT(det.Ewma(2), 3.0 * det.FleetMedian());
}

TEST(GrayDetectorTest, RecoversWithHysteresis) {
  latency::GrayFailureDetector det(GrayOpts(2));
  for (int t = 0; t < 3; t++) FeedTick(det, 4, kInvalidNode, 200, 200);
  for (int t = 0; t < 12 && !det.IsGray(1); t++) FeedTick(det, 4, 1, 200, 4000);
  ASSERT_TRUE(det.IsGray(1));
  // Back to healthy speed: the EWMA must sink below recover_factor x
  // median and hold for consecutive_ticks before the flag clears.
  int recovered_at = -1;
  for (int t = 0; t < 30; t++) {
    auto trans = FeedTick(det, 4, kInvalidNode, 200, 200);
    if (!trans.empty()) {
      EXPECT_EQ(trans[0].node, 1);
      EXPECT_FALSE(trans[0].now_gray);
      recovered_at = t;
      break;
    }
  }
  ASSERT_GE(recovered_at, 1);
  EXPECT_FALSE(det.IsGray(1));
  EXPECT_EQ(det.GrayCount(), 0u);
}

TEST(GrayDetectorTest, BriefSpikeDoesNotFlag) {
  latency::GrayFailureDetector det(GrayOpts(3));
  for (int t = 0; t < 3; t++) FeedTick(det, 4, kInvalidNode, 200, 200);
  // One moderately slow tick: the EWMA pokes above 3x median for a tick
  // or two while it decays back, but the streak never fills — a
  // transient must not flag.
  FeedTick(det, 4, 1, 200, 2500);
  for (int t = 0; t < 10; t++) {
    auto trans = FeedTick(det, 4, kInvalidNode, 200, 200);
    EXPECT_TRUE(trans.empty());
  }
  EXPECT_FALSE(det.IsGray(1));
}

TEST(GrayDetectorTest, LowSampleTicksDoNotMoveEwma) {
  auto opts = GrayOpts(1);
  opts.min_samples = 8;
  latency::GrayFailureDetector det(opts);
  det.ObserveTick(0, 200 * 10, 10);
  det.Evaluate();
  const double before = det.Ewma(0);
  det.ObserveTick(0, 99999, 2);  // Noise tick: 2 < min_samples.
  det.Evaluate();
  EXPECT_EQ(det.Ewma(0), before);
}

// ----------------------------------------------------------- Cluster wiring --

meta::TenantConfig LatencyTenant(TenantId id) {
  meta::TenantConfig c;
  c.id = id;
  c.name = "t" + std::to_string(id);
  c.tenant_quota_ru = 200000;
  c.num_partitions = 4;
  c.num_proxies = 2;
  c.num_proxy_groups = 1;
  c.replicas = 3;
  return c;
}

sim::SimOptions TimedSimOptions(bool hedging, bool gray) {
  sim::SimOptions o;
  o.seed = 11;
  o.node.service_time.enabled = true;
  o.node.service_time.dist = DistKind::kLognormal;
  o.node.service_time.mean_micros = 150;
  o.node.service_time.sigma = 1.2;
  o.latency.enabled = true;
  o.latency.hedge.enabled = hedging;
  o.latency.hedge.min_observations = 16;
  o.latency.hedge.min_threshold_micros = 100;
  o.latency.gray.enabled = gray;
  // Low enough that canary-probe ticks (a handful of reads) still update
  // a demoted node's EWMA, so recovery is observable.
  o.latency.gray.min_samples = 2;
  o.latency.slo_target_micros = 2500;
  return o;
}

sim::WorkloadProfile EventualReads(double qps) {
  sim::WorkloadProfile w;
  w.base_qps = qps;
  w.read_ratio = 1.0;
  w.eventual_read_fraction = 1.0;
  w.num_keys = 500;
  w.value_bytes = 256;
  return w;
}

TEST(TimedSettleTest, PercentilesSpreadAndSloViolationsCount) {
  sim::ClusterSim sim(TimedSimOptions(/*hedging=*/false, /*gray=*/false));
  PoolId pool = sim.AddPool(6);
  ASSERT_TRUE(sim.AddTenant(LatencyTenant(1), pool).ok());
  sim.SetProxyCacheEnabled(1, false);  // Every read hits the data plane.
  sim.PreloadKeys(1, 500, 256);
  sim.SetWorkload(1, EventualReads(300));
  sim.RunTicks(20);

  uint64_t ok = 0, violations = 0;
  double p50 = 0, p99 = 0;
  for (const auto& m : sim.History(1)) {
    ok += m.ok;
    violations += m.slo_violations;
    if (m.latency_p99 > 0) {
      p50 = m.latency_p50;
      p99 = m.latency_p99;
    }
  }
  ASSERT_GT(ok, 1000u);
  // Sampled lognormal service times: the per-tick percentiles must
  // spread (the seed's degenerate constant latency had p50 == p99).
  EXPECT_GT(p99, p50 * 1.5);
  // A 1.2-sigma lognormal around 150us pushes some mass past 4ms.
  EXPECT_GT(violations, 0u);
  EXPECT_GT(sim.SloBurnRate(1, 20), 0.0);
}

TEST(TimedSettleTest, HedgingFiresAndWins) {
  sim::ClusterSim sim(TimedSimOptions(/*hedging=*/true, /*gray=*/false));
  PoolId pool = sim.AddPool(6);
  ASSERT_TRUE(sim.AddTenant(LatencyTenant(1), pool).ok());
  sim.SetProxyCacheEnabled(1, false);  // Every read hits the data plane.
  sim.PreloadKeys(1, 500, 256);
  sim.SetWorkload(1, EventualReads(300));
  sim.RunTicks(25);

  uint64_t hedged = 0, wins = 0, ok = 0;
  for (const auto& m : sim.History(1)) {
    hedged += m.hedged_reads;
    wins += m.hedge_wins;
    ok += m.ok;
  }
  ASSERT_GT(ok, 1000u);
  // The p95 threshold arms the hedge on roughly the slowest 5% of reads
  // once the histogram warms, and most fired hedges beat a
  // threshold-crossing primary.
  EXPECT_GT(hedged, 0u);
  EXPECT_GT(wins, 0u);
  EXPECT_LE(wins, hedged);
  EXPECT_LT(hedged, ok / 4);  // Not hedging everything.
}

TEST(TimedSettleTest, GrayNodeIsFlaggedAndDemotedFromReads) {
  sim::ClusterSim sim(TimedSimOptions(/*hedging=*/false, /*gray=*/true));
  PoolId pool = sim.AddPool(6);
  ASSERT_TRUE(sim.AddTenant(LatencyTenant(1), pool).ok());
  sim.SetProxyCacheEnabled(1, false);  // Every read hits the data plane.
  sim.PreloadKeys(1, 500, 256);
  sim.SetWorkload(1, EventualReads(300));
  sim.RunTicks(8);  // Healthy warm-up.
  ASSERT_EQ(sim.GrayNodeCount(), 0u);

  const NodeId slow = 2;
  sim.DegradeNode(slow, 10.0);
  sim.RunTicks(20);
  EXPECT_TRUE(sim.IsNodeGray(slow));
  EXPECT_EQ(sim.GrayNodeCount(), 1u);
  // The node is alive the whole time — this is the failure mode the
  // crash detector cannot see.
  EXPECT_EQ(sim.DownNodeCount(), 0u);

  // Demotion: with the flag up, only the canary probes (every 16th
  // eventual read) still land on the slow node — its served share
  // collapses from ~1/6 of the fleet to a trickle.
  sim.RunTicks(1);
  double slow_ru = 0, fleet_ru = 0;
  for (const auto& node_ptr : sim.nodes()) {
    for (const auto& [tid, ru] : node_ptr->LastTickTenantRu()) {
      fleet_ru += ru;
      if (node_ptr->id() == slow) slow_ru += ru;
    }
  }
  ASSERT_GT(fleet_ru, 0.0);
  EXPECT_LT(slow_ru / fleet_ru, 0.05);

  // Restore: the detector un-flags after the hysteresis window.
  sim.DegradeNode(slow, 1.0);
  sim.RunTicks(30);
  EXPECT_FALSE(sim.IsNodeGray(slow));
}

TEST(TimedSettleTest, DisabledSubsystemLeavesMetricsDegenerate) {
  sim::SimOptions o;
  o.seed = 11;
  sim::ClusterSim sim(o);
  PoolId pool = sim.AddPool(6);
  ASSERT_TRUE(sim.AddTenant(LatencyTenant(1), pool).ok());
  sim.PreloadKeys(1, 500, 256);
  sim.SetWorkload(1, EventualReads(300));
  sim.RunTicks(10);
  for (const auto& m : sim.History(1)) {
    EXPECT_EQ(m.hedged_reads, 0u);
    EXPECT_EQ(m.slo_violations, 0u);
    EXPECT_EQ(m.latency_p99, 0.0);
  }
  EXPECT_EQ(sim.GrayNodeCount(), 0u);
}

}  // namespace
}  // namespace abase
