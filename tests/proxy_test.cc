// Tests for the proxy plane: limited fan-out routing (Section 4.4) and
// the proxy itself (cache, quota, refresh, settlement).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/clock.h"
#include "proxy/fanout_router.h"
#include "proxy/proxy.h"

namespace abase {
namespace proxy {
namespace {

// ----------------------------------------------------------- FanoutRouter --

TEST(FanoutRouterTest, KeyAffinityWithinGroup) {
  LimitedFanoutRouter router(12, 4);
  Rng rng(1);
  // All routes for one key land in the same group (proxies striped mod 4).
  std::set<uint32_t> groups;
  for (int i = 0; i < 200; i++) {
    groups.insert(router.Route("some-key", rng) % 4);
  }
  EXPECT_EQ(groups.size(), 1u);
}

TEST(FanoutRouterTest, FanoutPerKeyEqualsGroupSize) {
  LimitedFanoutRouter router(12, 4);
  EXPECT_EQ(router.FanoutPerKey(), 3u);  // 12 proxies / 4 groups.
  Rng rng(2);
  std::set<ProxyId> proxies;
  for (int i = 0; i < 500; i++) proxies.insert(router.Route("hotkey", rng));
  EXPECT_EQ(proxies.size(), 3u);
}

TEST(FanoutRouterTest, RandomModeSpreadsEverywhere) {
  LimitedFanoutRouter router(10, 5, RoutingMode::kRandom);
  EXPECT_EQ(router.FanoutPerKey(), 10u);
  Rng rng(3);
  std::set<ProxyId> proxies;
  for (int i = 0; i < 1000; i++) proxies.insert(router.Route("k", rng));
  EXPECT_EQ(proxies.size(), 10u);
}

TEST(FanoutRouterTest, FullHashPinsKeyToOneProxy) {
  LimitedFanoutRouter router(10, 3, RoutingMode::kFullHash);
  EXPECT_EQ(router.num_groups(), 10u);
  Rng rng(4);
  std::set<ProxyId> proxies;
  for (int i = 0; i < 100; i++) proxies.insert(router.Route("k", rng));
  EXPECT_EQ(proxies.size(), 1u);
}

TEST(FanoutRouterTest, GroupsClampedToProxyCount) {
  LimitedFanoutRouter router(4, 100);
  EXPECT_EQ(router.num_groups(), 4u);
  LimitedFanoutRouter router2(4, 0);
  EXPECT_EQ(router2.num_groups(), 1u);
}

TEST(FanoutRouterTest, DifferentKeysUseManyGroups) {
  LimitedFanoutRouter router(16, 8);
  Rng rng(5);
  std::set<uint32_t> groups;
  for (int i = 0; i < 500; i++) {
    groups.insert(router.Route("key" + std::to_string(i), rng) % 8);
  }
  EXPECT_GE(groups.size(), 7u);  // Nearly all groups exercised.
}

TEST(FanoutRouterTest, UnevenGroupsDifferByAtMostOne) {
  // 10 proxies, 4 groups -> sizes {3,3,2,2}. Sample heavily and verify
  // each group's observed member set matches the striped layout.
  LimitedFanoutRouter router(10, 4);
  Rng rng(6);
  std::map<uint32_t, std::set<ProxyId>> members;
  for (int k = 0; k < 200; k++) {
    std::string key = "k" + std::to_string(k);
    uint32_t group =
        static_cast<uint32_t>(router.Route(key, rng)) % 4;
    for (int i = 0; i < 50; i++) {
      members[group].insert(router.Route(key, rng));
    }
  }
  size_t min_size = 99, max_size = 0;
  for (auto& [g, m] : members) {
    min_size = std::min(min_size, m.size());
    max_size = std::max(max_size, m.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

// ------------------------------------------------------------------ Proxy --

ProxyOptions SmallProxyOptions() {
  ProxyOptions o;
  o.cache.capacity_bytes = 64 * 1024;
  o.cache.default_ttl = 60 * kMicrosPerSecond;
  return o;
}

ClientRequest MakeGet(uint64_t id, const std::string& key) {
  ClientRequest r;
  r.req_id = id;
  r.tenant = 1;
  r.op = OpType::kGet;
  r.key = key;
  // Unit tests inspect cache-hit payloads; the proxy materializes them
  // only for tracked requests.
  r.track_outcome = true;
  return r;
}

ClientRequest MakeSet(uint64_t id, const std::string& key,
                      const std::string& value) {
  ClientRequest r;
  r.req_id = id;
  r.tenant = 1;
  r.op = OpType::kSet;
  r.key = key;
  r.value = value;
  return r;
}

NodeResponse OkReadResponse(uint64_t id, const std::string& key,
                            const std::string& value, ServedBy served) {
  NodeResponse resp;
  resp.req_id = id;
  resp.tenant = 1;
  resp.op = OpType::kGet;
  resp.key = key;
  resp.value = value;
  resp.value_bytes = value.size();
  resp.actual_ru = 1.0;
  resp.served_by = served;
  resp.status = Status::OK();
  return resp;
}

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest()
      : clock_(0),
        proxy_(0, 1, /*proxy_quota_ru=*/100, SmallProxyOptions(), &clock_,
               [](const std::string&) { return PartitionId{0}; }) {}
  SimClock clock_;
  Proxy proxy_;
};

TEST_F(ProxyTest, MissForwardsThenHitServesLocally) {
  auto r1 = proxy_.Handle(MakeGet(1, "k"));
  EXPECT_EQ(r1.action, ProxyHandleResult::Action::kForward);
  EXPECT_EQ(r1.forward.key, "k");

  proxy_.OnResponse(OkReadResponse(1, "k", "value", ServedBy::kDisk));

  auto r2 = proxy_.Handle(MakeGet(2, "k"));
  EXPECT_EQ(r2.action, ProxyHandleResult::Action::kServedFromCache);
  EXPECT_EQ(r2.value, "value");
  EXPECT_EQ(proxy_.stats().cache_hits, 1u);
}

TEST_F(ProxyTest, QuotaThrottlesExcess) {
  // 100 RU/s fair share => 200 autonomous. Read estimate starts >= CPU
  // floor; drive demand far beyond it.
  int throttled = 0, forwarded = 0;
  for (uint64_t i = 0; i < 3000; i++) {
    auto r = proxy_.Handle(MakeGet(i, "key" + std::to_string(i)));
    if (r.action == ProxyHandleResult::Action::kThrottled) throttled++;
    if (r.action == ProxyHandleResult::Action::kForward) forwarded++;
  }
  EXPECT_GT(throttled, 0);
  EXPECT_GT(forwarded, 0);
  EXPECT_EQ(proxy_.stats().throttled, static_cast<uint64_t>(throttled));
}

TEST_F(ProxyTest, CacheHitsBypassQuota) {
  proxy_.Handle(MakeGet(1, "hot"));
  proxy_.OnResponse(OkReadResponse(1, "hot", "v", ServedBy::kDisk));
  // Exhaust the quota entirely.
  for (uint64_t i = 0; i < 5000; i++) {
    proxy_.Handle(MakeGet(10 + i, "cold" + std::to_string(i)));
  }
  // Hot key still served despite the quota being gone.
  auto r = proxy_.Handle(MakeGet(99999, "hot"));
  EXPECT_EQ(r.action, ProxyHandleResult::Action::kServedFromCache);
}

TEST_F(ProxyTest, ClampHalvesAdmission) {
  clock_.Advance(10 * kMicrosPerSecond);
  proxy_.SetClamped(true);
  int admitted_clamped = 0;
  for (uint64_t i = 0; i < 3000; i++) {
    if (proxy_.Handle(MakeGet(i, "k" + std::to_string(i))).action ==
        ProxyHandleResult::Action::kForward) {
      admitted_clamped++;
    }
  }
  proxy_.SetClamped(false);
  // Refill happens at the restored 2x rate after unclamping.
  clock_.Advance(100 * kMicrosPerSecond);
  int admitted_free = 0;
  for (uint64_t i = 0; i < 3000; i++) {
    if (proxy_.Handle(MakeGet(40000 + i, "x" + std::to_string(i))).action ==
        ProxyHandleResult::Action::kForward) {
      admitted_free++;
    }
  }
  EXPECT_GT(admitted_free, admitted_clamped);
}

TEST_F(ProxyTest, WritesForwardWithReplicatedEstimate) {
  auto r = proxy_.Handle(MakeSet(1, "k", std::string(2048, 'x')));
  ASSERT_EQ(r.action, ProxyHandleResult::Action::kForward);
  // 1 RU x 3 replicas.
  EXPECT_DOUBLE_EQ(r.forward.estimated_ru, 3.0);
}

TEST_F(ProxyTest, RefreshFetchesGeneratedForHotExpiringKeys) {
  ProxyOptions o = SmallProxyOptions();
  o.cache.refresh_window = 20 * kMicrosPerSecond;
  o.cache.refresh_min_hits = 2;
  Proxy p(0, 1, 1000, o, &clock_,
          [](const std::string&) { return PartitionId{3}; });

  p.Handle(MakeGet(1, "hot"));
  p.OnResponse(OkReadResponse(1, "hot", "v", ServedBy::kDisk));
  p.Handle(MakeGet(2, "hot"));                // Hit 1.
  clock_.Advance(45 * kMicrosPerSecond);      // 15s to expiry.
  p.Handle(MakeGet(3, "hot"));                // Hit 2: flags refresh.
  auto fetches = p.TakeRefreshFetches();
  ASSERT_EQ(fetches.size(), 1u);
  EXPECT_EQ(fetches[0].key, "hot");
  EXPECT_EQ(fetches[0].partition, 3u);
  EXPECT_TRUE(fetches[0].background_refresh);
  // Response re-fills the cache with a fresh TTL.
  NodeResponse refresh = OkReadResponse(fetches[0].req_id, "hot", "v2",
                                        ServedBy::kDisk);
  refresh.background_refresh = true;
  p.OnResponse(refresh);
  clock_.Advance(30 * kMicrosPerSecond);  // Old TTL would have lapsed.
  auto r = p.Handle(MakeGet(4, "hot"));
  EXPECT_EQ(r.action, ProxyHandleResult::Action::kServedFromCache);
  EXPECT_EQ(r.value, "v2");
}

TEST_F(ProxyTest, SettlementRefundsOverestimate) {
  auto r1 = proxy_.Handle(MakeGet(1, "k"));
  ASSERT_EQ(r1.action, ProxyHandleResult::Action::kForward);
  NodeResponse resp = OkReadResponse(1, "k", "v", ServedBy::kNodeCache);
  resp.actual_ru = 0.1;  // Much cheaper than estimated.
  proxy_.OnResponse(resp);
  EXPECT_DOUBLE_EQ(proxy_.stats().charged_ru, 0.1);
}

TEST_F(ProxyTest, EstimatorLearnsHitRatioFromResponses) {
  for (uint64_t i = 0; i < 200; i++) {
    auto r = proxy_.Handle(MakeGet(i, "unique" + std::to_string(i)));
    if (r.action != ProxyHandleResult::Action::kForward) continue;
    proxy_.OnResponse(OkReadResponse(i, r.forward.key, "v",
                                     ServedBy::kNodeCache));
  }
  EXPECT_GT(proxy_.ru_estimator().ExpectedHitRatio(), 0.9);
}

TEST_F(ProxyTest, ReportAndResetAdmittedRu) {
  proxy_.Handle(MakeGet(1, "a"));
  double first = proxy_.ReportAndResetAdmittedRu();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(proxy_.ReportAndResetAdmittedRu(), 0.0);
}

TEST_F(ProxyTest, DisabledCacheAlwaysForwards) {
  proxy_.set_cache_enabled(false);
  proxy_.Handle(MakeGet(1, "k"));
  proxy_.OnResponse(OkReadResponse(1, "k", "v", ServedBy::kDisk));
  auto r = proxy_.Handle(MakeGet(2, "k"));
  EXPECT_EQ(r.action, ProxyHandleResult::Action::kForward);
}

}  // namespace
}  // namespace proxy
}  // namespace abase
