// Operator's tour (paper Sections 3.3, 5.3, 7): capacity planning with
// the Section 7 rules, a live mid-run primary failure (kill -> observe
// the Unavailable/redirect window -> recover -> steady state), permanent
// node loss with parallel rebuild, a live rescheduling round, and a
// pipelined multi-client session through the asynchronous command API —
// the day-2 operations of an ABase deployment.
#include <cstdio>
#include <vector>

#include "core/abase.h"
#include "meta/capacity_planner.h"
#include "resched/rescheduler.h"

using namespace abase;

int main() {
  std::printf("=== Cluster operations demo ===\n\n");

  // --- 1. Capacity planning (Section 7 lessons) ---------------------------
  meta::CapacityPlanner planner;
  std::vector<double> tenant_quotas = {40000, 25000, 25000, 10000, 8000};
  double node_ru = 12000;
  auto nodes_needed = planner.RequiredNodes(tenant_quotas, node_ru);
  if (!nodes_needed.ok()) return 1;
  std::printf("Capacity plan for 5 tenants (largest quota 40k RU/s):\n");
  std::printf("  nodes required: %zu x %.0f RU/s\n", nodes_needed.value(),
              node_ru);
  std::printf("  rules enforced: pool >= 10x largest tenant; >= 20%% idle; "
              "burst headroom >= largest tenant\n\n");

  // --- 2. Deploy and onboard ----------------------------------------------
  ClusterOptions copts;
  copts.sim.node.wfq.cpu_budget_ru = node_ru;
  copts.sim.node.ru_capacity = node_ru;
  // Replicas apply each primary's write stream two ticks behind the
  // acknowledgements (section 7 reads through that staleness window).
  copts.sim.replication_lag_ticks = 2;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(nodes_needed.value());

  for (size_t i = 0; i < tenant_quotas.size(); i++) {
    meta::TenantConfig cfg;
    cfg.id = static_cast<TenantId>(i + 1);
    cfg.name = "prod-tenant" + std::to_string(i + 1);
    cfg.tenant_quota_ru = tenant_quotas[i];
    cfg.num_partitions = 6;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    if (!cluster.CreateTenant(cfg, pool).ok()) return 1;
    sim::WorkloadProfile p;
    p.base_qps = tenant_quotas[i] / 20.0;
    p.read_ratio = 0.7;
    p.zipf_theta = 0.95;
    p.num_keys = 4000;
    cluster.AttachWorkload(cfg.id, p);
  }
  cluster.RunTicks(15);
  std::printf("Cluster serving %zu tenants across %zu nodes.\n\n",
              tenant_quotas.size(),
              cluster.meta().PoolNodes(pool).size());

  // Audit the live pool against the rules.
  meta::PoolSnapshot snapshot;
  snapshot.node_count = cluster.meta().PoolNodes(pool).size();
  snapshot.node_capacity_ru = node_ru;
  snapshot.tenant_quotas_ru = tenant_quotas;
  auto violations = planner.Audit(snapshot);
  std::printf("Capacity audit: %s\n",
              violations.empty() ? "HEALTHY (all Section-7 rules hold)"
                                 : "VIOLATIONS FOUND");
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", meta::CapacityRuleName(v.rule),
                v.detail.c_str());
  }
  std::printf("Max admissible new-tenant quota right now: %.0f RU/s\n\n",
              planner.MaxAdmissibleTenantQuota(snapshot));

  // --- 3. Live failover: kill a primary mid-run (Section 3.3) -------------
  // The fault API crashes the node at the next tick boundary: stranded
  // requests resolve Unavailable, the failure detector promotes surviving
  // replicas (routing epoch bump -> proxies chase redirects), and after
  // WAL catch-up the node rejoins and takes its primaries back.
  TenantId watched = 1;
  NodeId live_victim = cluster.meta().PrimaryFor(watched, 0);
  size_t mark = cluster.sim().History(watched).size();
  uint64_t epoch0 = cluster.RoutingEpoch();

  std::printf("Killing node %u (primary of tenant %u / partition 0) "
              "mid-run...\n", live_victim, watched);
  cluster.FailNode(live_victim);
  cluster.RunTicks(4);  // Failure lands, detector fires, replicas promote.
  std::printf("  routing epoch %llu -> %llu; %zu primaries promoted, "
              "%zu re-replication targets planned\n",
              static_cast<unsigned long long>(epoch0),
              static_cast<unsigned long long>(cluster.RoutingEpoch()),
              cluster.sim().LastFailoverReport()
                  ? cluster.sim().LastFailoverReport()->primaries_promoted
                  : 0,
              cluster.sim().LastFailoverReport()
                  ? cluster.sim()
                        .LastFailoverReport()->re_replication_targets.size()
                  : 0);

  cluster.RecoverNode(live_victim, /*catch_up_ticks=*/2);
  cluster.RunTicks(1);  // Recovery lands: WAL replayed, catch-up begins.
  std::printf("  node %u mid catch-up: state=%s\n", live_victim,
              node::NodeStateName(cluster.sim().FindNode(live_victim)->state()));
  cluster.RunTicks(5);  // Catch-up completes, failback, steady state.

  std::printf("  tenant %u per-tick view across the event "
              "(ok / unavailable / redirects):\n", watched);
  const auto& hist = cluster.sim().History(watched);
  for (size_t i = mark; i < hist.size(); i++) {
    std::printf("    tick %2zu: %5llu ok  %4llu unavailable  %3llu "
                "redirects\n", i - mark,
                static_cast<unsigned long long>(hist[i].ok),
                static_cast<unsigned long long>(hist[i].unavailable),
                static_cast<unsigned long long>(hist[i].redirects));
  }
  std::printf("  node %u recovered and leads partition 0 again: %s\n\n",
              live_victim,
              cluster.meta().PrimaryFor(watched, 0) == live_victim ? "yes"
                                                                   : "no");

  // --- 4. Node loss: permanent removal + parallel rebuild -----------------
  NodeId victim = cluster.meta().PoolNodes(pool)[0]->id();
  auto report = cluster.meta().FailNode(pool, victim);
  if (report.ok()) {
    std::printf("Node %u failed. Recovery report:\n", victim);
    std::printf("  replicas rebuilt: %zu (%.1f MB) across %zu target "
                "nodes in parallel\n",
                report.value().replicas_rebuilt,
                report.value().bytes_rebuilt / 1e6,
                report.value().parallel_sources);
    std::printf("  parallel rebuild: %.2fs vs single replacement node: "
                "%.2fs (%.1fx faster)\n\n",
                report.value().parallel_recovery_seconds,
                report.value().single_node_recovery_seconds,
                report.value().single_node_recovery_seconds /
                    std::max(1e-9,
                             report.value().parallel_recovery_seconds));
  }
  cluster.RunTicks(10);  // Service continues on the survivors.

  // --- 5. A rescheduling round (Section 5.3) ------------------------------
  resched::PoolModel model = cluster.sim().BuildPoolModel(pool);
  std::printf("Pool load before rescheduling: RU stddev=%.4f max=%.3f\n",
              model.UtilizationStddev(resched::Resource::kRu),
              model.MaxUtilization(resched::Resource::kRu));
  size_t applied = cluster.RunRescheduling(pool);
  resched::PoolModel after = cluster.sim().BuildPoolModel(pool);
  std::printf("After one round (%zu migrations):  RU stddev=%.4f max=%.3f\n",
              applied, after.UtilizationStddev(resched::Resource::kRu),
              after.MaxUtilization(resched::Resource::kRu));

  // --- 6. Pipelined multi-client session (async command API) --------------
  // Eight sessions of tenant 1 each keep 32 commands in flight: Submit
  // enqueues without advancing time, Step()/Drain() resolve futures as
  // ticks settle. A lock-step client would need one tick per request;
  // the pipelined fleet completes hundreds per tick.
  constexpr int kSessions = 8;
  constexpr int kDepth = 32;
  std::vector<Client> sessions;
  for (int s = 0; s < kSessions; s++) sessions.push_back(cluster.OpenClient(1));

  // Seed a small working set, then read it back at full pipeline depth.
  std::vector<Command> seed;
  for (int i = 0; i < kDepth; i++) {
    seed.push_back(Command::Set("op:k" + std::to_string(i),
                                "v" + std::to_string(i)));
  }
  std::vector<Future<Reply>> writes = sessions[0].SubmitBatch(std::move(seed));
  cluster.Drain();
  for (const auto& w : writes) {
    if (!w.ready() || !w->ok()) return 1;
  }

  std::vector<Future<Reply>> reads;
  for (int s = 0; s < kSessions; s++) {
    std::vector<Command> batch;
    for (int d = 0; d < kDepth; d++) {
      batch.push_back(Command::Get("op:k" + std::to_string(d)));
    }
    for (auto& f : sessions[s].SubmitBatch(std::move(batch))) {
      reads.push_back(std::move(f));
    }
  }
  size_t ticks_used = cluster.Drain();
  size_t ok = 0;
  uint64_t max_latency_ticks = 0;
  for (const auto& f : reads) {
    if (f.ready() && f->ok()) {
      ok++;
      if (f->LatencyTicks() > max_latency_ticks) {
        max_latency_ticks = f->LatencyTicks();
      }
    }
  }
  std::printf(
      "\nPipelined session: %d clients x %d commands in flight -> %zu/%zu "
      "reads served in %zu tick(s) (max latency %llu tick(s));\n"
      "a lock-step loop would have taken %d ticks.\n",
      kSessions, kDepth, ok, reads.size(), ticks_used,
      static_cast<unsigned long long>(max_latency_ticks),
      kSessions * kDepth);

  // --- 7. Eventual-consistency replica reads ------------------------------
  // GETs carrying Consistency::kEventual round-robin across the
  // partition's alive replicas instead of pinning the primary: the
  // primary sheds read load, and replies may trail the primary by up to
  // replication_lag_ticks of writes. Proxy caching is disabled for the
  // demo so every read shows true engine state.
  std::printf("\n=== Eventual-consistency replica reads (lag = %d ticks) "
              "===\n", copts.sim.replication_lag_ticks);
  cluster.sim().SetProxyCacheEnabled(1, false);
  Client ec = cluster.OpenClient(1);
  {
    auto seed_write = ec.Submit(Command::Set("ec:k", "v0"));
    cluster.Drain();
    if (!seed_write.ready() || !seed_write->ok()) return 1;
  }
  cluster.RunTicks(3);  // Let the seed value replicate everywhere.

  std::printf("  overwriting ec:k every tick while reading it both ways:\n");
  for (int t = 1; t <= 4; t++) {
    auto write = ec.Submit(Command::Set("ec:k", "v" + std::to_string(t)));
    cluster.Step();
    auto primary_read = ec.Submit(Command::Get("ec:k"));
    auto replica_read = ec.Submit(Command::GetEventual("ec:k"));
    cluster.Drain();
    if (!write.ready() || !primary_read.ready() || !replica_read.ready()) {
      return 1;
    }
    bool stale = replica_read->ok() && primary_read->ok() &&
                 replica_read->value != primary_read->value;
    std::printf("    wrote v%d | primary read: %-3s | eventual read: %-3s%s\n",
                t, primary_read->ok() ? primary_read->value.c_str() : "ERR",
                replica_read->ok() ? replica_read->value.c_str() : "ERR",
                stale ? "  <- stale (inside the lag window)" : "");
  }

  // Offload: a read burst spread across the replicas leaves the primary
  // serving only its round-robin share.
  size_t hist_mark = cluster.sim().History(1).size();
  std::vector<Command> burst;
  for (int i = 0; i < 60; i++) burst.push_back(Command::GetEventual("ec:k"));
  std::vector<Future<Reply>> burst_futures = ec.SubmitBatch(std::move(burst));
  cluster.Drain();
  size_t burst_ok = 0;
  for (const auto& f : burst_futures) {
    if (f.ready() && f->ok()) burst_ok++;
  }
  uint64_t replica_reads = 0, replica_lag_sum = 0, reads_completed = 0;
  const auto& ec_hist = cluster.sim().History(1);
  for (size_t i = hist_mark; i < ec_hist.size(); i++) {
    replica_reads += ec_hist[i].replica_reads;
    replica_lag_sum += ec_hist[i].replica_lag_sum;
    reads_completed += ec_hist[i].reads_completed;
  }
  std::printf("  burst of 60 eventual GETs: %zu ok; %llu of %llu completed "
              "data-plane reads served by non-primary replicas\n",
              burst_ok, static_cast<unsigned long long>(replica_reads),
              static_cast<unsigned long long>(reads_completed));
  std::printf("  mean replica staleness over the burst window: %.2f "
              "writes\n",
              replica_reads == 0
                  ? 0.0
                  : static_cast<double>(replica_lag_sum) /
                        static_cast<double>(replica_reads));

  // --- 8. Gray failure: a slow-but-alive node vs hedged reads -------------
  // Crash-stop failures (section 3) are the easy case: the detector sees
  // a dead node and promotes around it. The hard case is the node that
  // still answers — just 8x slower (degraded disk, noisy neighbor). Two
  // identical clusters run the same seed and workload; one gets the
  // latency subsystem's defenses (p95 hedged reads + gray-failure
  // demotion), the other takes the tail on the chin.
  std::printf("\n=== Gray failure: one node turns 8x slow at tick 10 ===\n");
  auto make_timed = [&](bool defended) {
    ClusterOptions topts;
    topts.sim.seed = 1234;
    topts.sim.node.service_time.enabled = true;
    topts.sim.node.service_time.dist = latency::DistKind::kLognormal;
    topts.sim.node.service_time.mean_micros = 150;
    topts.sim.node.service_time.sigma = 1.2;
    topts.sim.latency.enabled = true;
    topts.sim.latency.num_azs = 1;
    topts.sim.latency.hedge.enabled = defended;
    topts.sim.latency.hedge.min_observations = 32;
    topts.sim.latency.gray.enabled = defended;
    topts.sim.latency.gray.min_samples = 2;
    topts.sim.latency.slo_target_micros = 2500;
    return Cluster(topts);
  };
  Cluster naked = make_timed(false);
  Cluster defended = make_timed(true);
  for (Cluster* c : {&naked, &defended}) {
    PoolId gp = c->CreatePool(6);
    meta::TenantConfig cfg;
    cfg.id = 1;
    cfg.name = "gray-demo";
    cfg.tenant_quota_ru = 200000;
    cfg.num_partitions = 8;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    cfg.replicas = 3;
    if (!c->CreateTenant(cfg, gp).ok()) return 1;
    c->sim().SetProxyCacheEnabled(1, false);  // Reads must hit the data plane.
    c->sim().PreloadKeys(1, 500, 256);
    sim::WorkloadProfile w;
    w.base_qps = 300;
    w.read_ratio = 1.0;
    w.eventual_read_fraction = 1.0;
    w.num_keys = 500;
    w.value_bytes = 256;
    c->AttachWorkload(1, w);
  }

  const NodeId slow = naked.meta().PrimaryFor(1, 0);
  std::printf("  tick | p99 undefended | p99 hedged+gray | hedged | gray?\n");
  for (int t = 0; t < 30; t++) {
    if (t == 10) {
      naked.sim().DegradeNode(slow, 8.0);
      defended.sim().DegradeNode(slow, 8.0);
    }
    naked.RunTicks(1);
    defended.RunTicks(1);
    if (t % 3 != 2) continue;  // Every third tick keeps the table short.
    const auto& nm = naked.sim().History(1).back();
    const auto& dm = defended.sim().History(1).back();
    std::printf("  %4d | %11.0fus | %12.0fus | %6llu | %s\n", t,
                nm.latency_p99, dm.latency_p99,
                static_cast<unsigned long long>(dm.hedged_reads),
                defended.sim().IsNodeGray(slow) ? "GRAY (demoted)" : "-");
  }
  std::printf("  node %u stayed 'alive' throughout — no crash, no failover; "
              "the tail was the only symptom.\n"
              "  tenant SLO burn rate (last 10 ticks): undefended %.2f, "
              "defended %.2f (1.0 = burning exactly the error budget)\n",
              slow, naked.sim().SloBurnRate(1, 10),
              defended.sim().SloBurnRate(1, 10));

  std::printf("\ncluster_operations finished.\n");
  return 0;
}
