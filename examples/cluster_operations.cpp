// Operator's tour (paper Sections 3.3, 5.3, 7): capacity planning with
// the Section 7 rules, node-failure recovery with parallel rebuild, and
// a live rescheduling round — the day-2 operations of an ABase
// deployment.
#include <cstdio>

#include "core/abase.h"
#include "meta/capacity_planner.h"
#include "resched/rescheduler.h"

using namespace abase;

int main() {
  std::printf("=== Cluster operations demo ===\n\n");

  // --- 1. Capacity planning (Section 7 lessons) ---------------------------
  meta::CapacityPlanner planner;
  std::vector<double> tenant_quotas = {40000, 25000, 25000, 10000, 8000};
  double node_ru = 12000;
  auto nodes_needed = planner.RequiredNodes(tenant_quotas, node_ru);
  if (!nodes_needed.ok()) return 1;
  std::printf("Capacity plan for 5 tenants (largest quota 40k RU/s):\n");
  std::printf("  nodes required: %zu x %.0f RU/s\n", nodes_needed.value(),
              node_ru);
  std::printf("  rules enforced: pool >= 10x largest tenant; >= 20%% idle; "
              "burst headroom >= largest tenant\n\n");

  // --- 2. Deploy and onboard ----------------------------------------------
  ClusterOptions copts;
  copts.sim.node.wfq.cpu_budget_ru = node_ru;
  copts.sim.node.ru_capacity = node_ru;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(nodes_needed.value());

  for (size_t i = 0; i < tenant_quotas.size(); i++) {
    meta::TenantConfig cfg;
    cfg.id = static_cast<TenantId>(i + 1);
    cfg.name = "prod-tenant" + std::to_string(i + 1);
    cfg.tenant_quota_ru = tenant_quotas[i];
    cfg.num_partitions = 6;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    if (!cluster.CreateTenant(cfg, pool).ok()) return 1;
    sim::WorkloadProfile p;
    p.base_qps = tenant_quotas[i] / 20.0;
    p.read_ratio = 0.7;
    p.zipf_theta = 0.95;
    p.num_keys = 4000;
    cluster.AttachWorkload(cfg.id, p);
  }
  cluster.RunTicks(15);
  std::printf("Cluster serving %zu tenants across %zu nodes.\n\n",
              tenant_quotas.size(),
              cluster.meta().PoolNodes(pool).size());

  // Audit the live pool against the rules.
  meta::PoolSnapshot snapshot;
  snapshot.node_count = cluster.meta().PoolNodes(pool).size();
  snapshot.node_capacity_ru = node_ru;
  snapshot.tenant_quotas_ru = tenant_quotas;
  auto violations = planner.Audit(snapshot);
  std::printf("Capacity audit: %s\n",
              violations.empty() ? "HEALTHY (all Section-7 rules hold)"
                                 : "VIOLATIONS FOUND");
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", meta::CapacityRuleName(v.rule),
                v.detail.c_str());
  }
  std::printf("Max admissible new-tenant quota right now: %.0f RU/s\n\n",
              planner.MaxAdmissibleTenantQuota(snapshot));

  // --- 3. Node failure: parallel replica rebuild (Section 3.3) ------------
  NodeId victim = cluster.meta().PoolNodes(pool)[0]->id();
  auto report = cluster.meta().FailNode(pool, victim);
  if (report.ok()) {
    std::printf("Node %u failed. Recovery report:\n", victim);
    std::printf("  replicas rebuilt: %zu (%.1f MB) across %zu target "
                "nodes in parallel\n",
                report.value().replicas_rebuilt,
                report.value().bytes_rebuilt / 1e6,
                report.value().parallel_sources);
    std::printf("  parallel rebuild: %.2fs vs single replacement node: "
                "%.2fs (%.1fx faster)\n\n",
                report.value().parallel_recovery_seconds,
                report.value().single_node_recovery_seconds,
                report.value().single_node_recovery_seconds /
                    std::max(1e-9,
                             report.value().parallel_recovery_seconds));
  }
  cluster.RunTicks(10);  // Service continues on the survivors.

  // --- 4. A rescheduling round (Section 5.3) ------------------------------
  resched::PoolModel model = cluster.sim().BuildPoolModel(pool);
  std::printf("Pool load before rescheduling: RU stddev=%.4f max=%.3f\n",
              model.UtilizationStddev(resched::Resource::kRu),
              model.MaxUtilization(resched::Resource::kRu));
  size_t applied = cluster.RunRescheduling(pool);
  resched::PoolModel after = cluster.sim().BuildPoolModel(pool);
  std::printf("After one round (%zu migrations):  RU stddev=%.4f max=%.3f\n",
              applied, after.UtilizationStddev(resched::Resource::kRu),
              after.MaxUtilization(resched::Resource::kRu));

  std::printf("\ncluster_operations finished.\n");
  return 0;
}
