// Double-11 predictive autoscaling (paper Sections 2.2 and 5): an
// e-commerce tenant's traffic ramps toward a shopping festival. The
// predictive autoscaler forecasts the ramp from the 30-day history and
// raises the quota ahead of demand; a reactive baseline only reacts
// after users already hit throttling.
#include <cstdio>
#include <vector>

#include "autoscale/autoscaler.h"
#include "common/rng.h"
#include "core/abase.h"
#include "sim/workload.h"

using namespace abase;

int main() {
  std::printf("=== Double-11 predictive autoscaling demo ===\n\n");

  // 45 days of hourly RU usage: daily cycle + steep festival ramp in the
  // last two weeks.
  sim::SeriesSpec spec;
  spec.hours = 45 * 24;
  spec.base = 20000;
  spec.seasons.push_back({24, 5000});
  spec.noise_sigma = 600;
  Rng rng(1111);
  TimeSeries usage = sim::GenerateSeries(spec, rng);
  for (size_t h = 31 * 24; h < usage.size(); h++) {
    double days_in = (static_cast<double>(h) - 31 * 24) / 24.0;
    usage[h] *= 1.0 + 0.09 * days_in;  // ~9%/day festival ramp.
  }

  autoscale::Autoscaler predictive;
  autoscale::ReactiveScaler reactive;

  double pq = 45000, rq = 45000;  // Both start with the same quota.
  Micros last_down = -1;
  int predictive_throttled_hours = 0, reactive_throttled_hours = 0;

  std::printf("%5s %10s %14s %14s %10s\n", "day", "peakUsage",
              "predictiveQ", "reactiveQ", "events");
  for (size_t day = 30; day < 45; day++) {
    // Run both policies each morning on the history so far.
    TimeSeries history(std::vector<double>(
        usage.values().begin(),
        usage.values().begin() + static_cast<ptrdiff_t>(day * 24)));
    auto d = predictive.Decide(history, TimeSeries(), pq, 16, 1e12, 100,
                               last_down,
                               static_cast<Micros>(day) * kMicrosPerDay);
    const char* event = "";
    if (d.ok() &&
        d.value().action != autoscale::ScalingDecision::Action::kNone) {
      pq = d.value().new_quota;
      event = d.value().action ==
                      autoscale::ScalingDecision::Action::kScaleUp
                  ? "predictive UP"
                  : "predictive DOWN";
      if (d.value().action ==
          autoscale::ScalingDecision::Action::kScaleDown) {
        last_down = static_cast<Micros>(day) * kMicrosPerDay;
      }
    }
    auto rd = reactive.Decide(usage[day * 24], rq);
    if (rd.action == autoscale::ScalingDecision::Action::kScaleUp) {
      rq = rd.new_quota;
    }

    // Count throttled hours through the day.
    double peak = 0;
    for (size_t h = day * 24; h < (day + 1) * 24 && h < usage.size(); h++) {
      peak = std::max(peak, usage[h]);
      if (usage[h] > pq) predictive_throttled_hours++;
      if (usage[h] > rq) {
        reactive_throttled_hours++;
        rq = usage[h] / 0.65;  // Emergency oncall bump (the pain).
      }
    }
    std::printf("%5zu %10.0f %14.0f %14.0f %10s\n", day, peak, pq, rq,
                event);
  }

  std::printf(
      "\nThrottled tenant-hours across the festival: predictive=%d, "
      "reactive=%d\n",
      predictive_throttled_hours, reactive_throttled_hours);
  std::printf(
      "The predictive policy scales before demand arrives (paper Figure 8; "
      "~65%% fewer oncalls in production).\n");
  return 0;
}
