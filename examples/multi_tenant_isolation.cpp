// Multi-tenant isolation demo (paper Section 4): three tenants share a
// small pool; one goes rogue with a 30x burst. The hierarchical request
// restriction (proxy quota -> partition quota -> dual-layer WFQ) keeps
// the other two tenants' service and latency intact.
#include <cstdio>

#include "core/abase.h"

using namespace abase;

namespace {

void PrintWindow(Cluster& cluster, const char* label, size_t from,
                 size_t to) {
  std::printf("%-22s", label);
  for (TenantId id = 1; id <= 3; id++) {
    const auto& h = cluster.sim().History(id);
    uint64_t ok = 0, thr = 0;
    double lat = 0, latn = 0;
    for (size_t i = from; i < to && i < h.size(); i++) {
      ok += h[i].ok;
      thr += h[i].throttled;
      lat += h[i].latency_sum;
      latn += static_cast<double>(h[i].latency_count);
    }
    double secs = static_cast<double>(to - from);
    std::printf(" | T%u ok=%6.0f thr=%6.0f lat=%6.0fus", id, ok / secs,
                thr / secs, latn > 0 ? lat / latn : 0.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Multi-tenant isolation demo ===\n\n");

  ClusterOptions copts;
  copts.sim.node.wfq.cpu_budget_ru = 20000;
  Cluster cluster(copts);
  PoolId pool = cluster.CreatePool(2);

  for (TenantId id = 1; id <= 3; id++) {
    meta::TenantConfig cfg;
    cfg.id = id;
    cfg.name = "tenant" + std::to_string(id);
    cfg.tenant_quota_ru = 6000;
    cfg.num_partitions = 4;
    cfg.num_proxies = 4;
    cfg.num_proxy_groups = 2;
    cfg.replicas = 2;
    if (!cluster.CreateTenant(cfg, pool).ok()) return 1;

    sim::WorkloadProfile p;
    p.base_qps = 1500;
    p.read_ratio = id == 2 ? 0.3 : 0.9;  // Tenant 2 is write-heavy.
    p.num_keys = 5000;
    p.zipf_theta = 0.9;
    p.value_bytes = id == 3 ? 4096 : 512;  // Tenant 3 runs large values.
    // Tenant 1 goes rogue: 30x burst from t=40 to t=100.
    if (id == 1) {
      p.bursts.push_back({40 * kMicrosPerSecond, 100 * kMicrosPerSecond,
                          30.0});
    }
    cluster.AttachWorkload(id, p);
  }

  cluster.RunTicks(40);
  PrintWindow(cluster, "normal", 20, 40);

  cluster.RunTicks(60);
  PrintWindow(cluster, "tenant-1 30x burst", 80, 100);

  cluster.RunTicks(40);
  PrintWindow(cluster, "after burst", 120, 140);

  std::printf(
      "\nWhat happened during the burst:\n"
      " - Tenant 1's proxies threw away everything beyond 2x its fair "
      "share (throttle column) before it could reach the shared nodes.\n"
      " - Partition quotas capped what did arrive; the dual-layer WFQ "
      "scheduled the survivors against tenants 2-3 by quota share.\n"
      " - Tenants 2 and 3 kept their full service and flat latency — the "
      "paper's Figure 6/7 behaviour, combined.\n");
  return 0;
}
