// Hot-key event (paper Sections 2.2 and 4.4): a social-media tenant gets
// hit by a viral post. The "last mile" problem: partitioning cannot help
// because one key concentrates the traffic on one partition. The example
// shows the proxy layer absorbing the event — the AU-LRU cache serves
// the hot key, and the limited fan-out grouping spreads the remaining
// pressure over N/n proxies.
#include <cstdio>

#include "core/abase.h"

using namespace abase;

int main() {
  std::printf("=== Hot-key event demo ===\n\n");

  Cluster cluster;
  PoolId pool = cluster.CreatePool(4);

  meta::TenantConfig config;
  config.id = 1;
  config.name = "social-media";
  config.tenant_quota_ru = 100000;
  config.num_partitions = 8;
  config.num_proxies = 12;
  config.num_proxy_groups = 4;  // Fan-out per key = 12/4 = 3 proxies.
  Status st = cluster.CreateTenant(config, pool);
  if (!st.ok()) return 1;

  // Normal traffic: zipf reads over the comment key space.
  sim::WorkloadProfile profile;
  profile.base_qps = 2000;
  profile.read_ratio = 0.95;
  profile.num_keys = 50000;
  profile.zipf_theta = 0.9;
  profile.value_bytes = 128;
  // The viral moment: from t=30s, 15x traffic, 80% of it on ~5 keys.
  profile.bursts.push_back({30 * kMicrosPerSecond, 90 * kMicrosPerSecond,
                            15.0});
  cluster.AttachWorkload(1, profile);

  auto snapshot = [&](const char* label, size_t from, size_t to) {
    const auto& h = cluster.sim().History(1);
    uint64_t ok = 0, err = 0, proxy_hits = 0, reads = 0;
    double lat = 0, latn = 0;
    for (size_t i = from; i < to && i < h.size(); i++) {
      ok += h[i].ok;
      err += h[i].errors;
      proxy_hits += h[i].proxy_hits;
      reads += h[i].proxy_hits + h[i].reads_completed;
      lat += h[i].latency_sum;
      latn += static_cast<double>(h[i].latency_count);
    }
    double secs = static_cast<double>(to - from);
    std::printf("%-24s okQPS=%7.0f errQPS=%6.0f proxyHit=%5.1f%% "
                "meanLat=%6.0fus\n",
                label, ok / secs, err / secs,
                reads ? 100.0 * proxy_hits / reads : 0.0,
                latn > 0 ? lat / latn : 0.0);
  };

  cluster.RunTicks(30);
  snapshot("before (normal)", 10, 30);

  // Flip the access pattern to the viral hot set at burst start: a hot
  // event is overwhelmingly reads (everyone opens the same post).
  sim::WorkloadProfile* p = cluster.sim().MutableWorkload(1);
  p->key_dist = sim::KeyDist::kHotSpot;
  p->hot_fraction = 0.0001;  // 5 hot keys.
  p->hot_share = 0.8;
  p->read_ratio = 1.0;

  cluster.RunTicks(60);
  snapshot("during hot-key burst", 70, 90);

  // Where did the hot-key traffic land? Count per-proxy cache hits.
  const auto* rt = cluster.sim().Tenant(1);
  std::printf("\nPer-proxy cache hits during the event (fan-out %u of %u "
              "proxies per key):\n  ",
              rt->router->FanoutPerKey(), config.num_proxies);
  for (const auto& px : rt->proxies) {
    std::printf("%llu ", static_cast<unsigned long long>(px->stats().cache_hits));
  }
  std::printf("\n\nNotes:\n"
              " - The AU-LRU proxy cache absorbs most hot-key reads; the "
              "DataNode sees a fraction of the surge.\n"
              " - Each hot key is spread across its ProxyGroup (3 proxies), "
              "balancing the residual load; smaller n would spread wider.\n"
              " - Active update keeps refreshing the hot entries before "
              "expiry: refresh fetches = background, clients never stall.\n");
  uint64_t refreshes = 0;
  for (const auto& px : rt->proxies) refreshes += px->stats().refresh_fetches;
  std::printf("   total active-update refresh fetches: %llu\n",
              static_cast<unsigned long long>(refreshes));
  return 0;
}
