// Quickstart: stand up an ABase cluster, create a tenant, and use the
// Redis-style client API.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/abase.h"

using namespace abase;

int main() {
  // 1. A cluster with one resource pool of four DataNodes.
  Cluster cluster;
  PoolId pool = cluster.CreatePool(4);

  // 2. A tenant: 4 partitions x 3 replicas, a 50k RU/s quota, and a
  //    4-proxy fleet in 2 limited-fan-out groups.
  meta::TenantConfig config;
  config.id = 1;
  config.name = "quickstart";
  config.tenant_quota_ru = 50000;
  config.num_partitions = 4;
  config.num_proxies = 4;
  config.num_proxy_groups = 2;
  config.replicas = 3;
  Status st = cluster.CreateTenant(config, pool);
  if (!st.ok()) {
    std::printf("CreateTenant failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Redis-style commands through the tenant's proxies.
  Client client = cluster.OpenClient(1);

  (void)client.Set("user:1001", "alice");
  (void)client.Set("session:1001", "token-xyz", /*ttl=*/30 * kMicrosPerSecond);
  (void)client.HSet("profile:1001", "city", "berlin");
  (void)client.HSet("profile:1001", "lang", "de");

  auto user = client.Get("user:1001");
  std::printf("GET user:1001       -> %s\n",
              user.ok() ? user.value().c_str() : user.status().ToString().c_str());

  auto city = client.HGet("profile:1001", "city");
  std::printf("HGET profile city   -> %s\n",
              city.ok() ? city.value().c_str() : "?");

  auto len = client.HLen("profile:1001");
  std::printf("HLEN profile:1001   -> %llu\n",
              static_cast<unsigned long long>(len.value_or(0)));

  auto all = client.HGetAll("profile:1001");
  std::printf("HGETALL profile     ->\n%s", all.ok() ? all.value().c_str() : "");

  // TTL expiry: advance simulated time past the session TTL.
  cluster.RunTicks(31);
  auto session = client.Get("session:1001");
  std::printf("GET session (31s)   -> %s (TTL elapsed)\n",
              session.status().ToString().c_str());

  (void)client.Del("user:1001");
  auto gone = client.Get("user:1001");
  std::printf("GET after DEL       -> %s\n", gone.status().ToString().c_str());

  std::printf("\nquickstart finished.\n");
  return 0;
}
