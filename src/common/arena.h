// Bump-pointer arena for per-tick data-plane scratch.
//
// The batched pipeline allocates irregular, tick-local structures —
// per-node submission index lists, replication shipment batches, trace
// buffers — whose lifetimes all end at the tick boundary. Routing those
// through malloc costs a lock-free-list hit per allocation and scatters
// them across the heap; the arena instead hands out pointers from a few
// large blocks and recycles everything with a single Reset() at the
// start of the next tick.
//
// Lifetime rules (see DESIGN.md, "Batched data plane"):
//  * one Arena per worker, owned by the simulator; never shared across
//    threads within a tick;
//  * arena memory must not escape the tick — anything that survives
//    (responses, metrics, outcomes) is copied into persistent storage
//    before Reset();
//  * Reset() keeps every normal block for reuse and releases only the
//    oversized one-off blocks, so steady-state ticks allocate nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace abase {

class Arena {
 public:
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                  : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Allocations larger than half a block get a dedicated block that is
  /// released on Reset(); everything else bumps within shared blocks.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (bytes > block_bytes_ / 2) return AllocateLarge(bytes, align);
    uintptr_t cur = reinterpret_cast<uintptr_t>(cur_);
    uintptr_t aligned = (cur + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    if (aligned + bytes > reinterpret_cast<uintptr_t>(end_)) {
      NextBlock();
      cur = reinterpret_cast<uintptr_t>(cur_);
      aligned = (cur + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    }
    cur_ = reinterpret_cast<char*>(aligned + bytes);
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Uninitialized storage for `n` objects of trivially-destructible T.
  /// The arena never runs destructors, so non-trivial element types must
  /// be destroyed by the caller before Reset().
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to the first block. Normal blocks are retained (their
  /// capacity is the whole point); dedicated large blocks are freed.
  void Reset() {
    large_.clear();
    block_index_ = 0;
    bytes_allocated_ = 0;
    if (!blocks_.empty()) {
      cur_ = blocks_[0].get();
      end_ = cur_ + block_bytes_;
    } else {
      cur_ = end_ = nullptr;
    }
  }

  /// Bytes handed out since the last Reset (diagnostics).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Bytes held in reusable blocks (excludes large one-offs).
  size_t bytes_reserved() const { return blocks_.size() * block_bytes_; }
  size_t block_bytes() const { return block_bytes_; }

 private:
  static constexpr size_t kDefaultBlockBytes = 64u << 10;
  static constexpr size_t kMinBlockBytes = 1u << 10;

  void NextBlock() {
    if (!blocks_.empty()) block_index_++;
    if (block_index_ >= blocks_.size()) {
      blocks_.push_back(std::unique_ptr<char[]>(new char[block_bytes_]));
    }
    cur_ = blocks_[block_index_].get();
    end_ = cur_ + block_bytes_;
  }

  void* AllocateLarge(size_t bytes, size_t align) {
    // Over-allocate so any alignment fits; dedicated blocks die at Reset.
    large_.push_back(std::unique_ptr<char[]>(new char[bytes + align]));
    uintptr_t raw = reinterpret_cast<uintptr_t>(large_.back().get());
    uintptr_t aligned = (raw + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;  ///< Reused forever.
  std::vector<std::unique_ptr<char[]>> large_;   ///< Freed on Reset.
  size_t block_index_ = 0;  ///< Block currently being bumped (if any).
  char* cur_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
};

}  // namespace abase
