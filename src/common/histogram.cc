#include "common/histogram.h"

namespace abase {

double ExactPercentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  if (p <= 0) return values.front();
  if (p >= 100) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

}  // namespace abase
