// Latency / size histogram with percentile queries, plus a plain running
// statistics accumulator. Used by the simulator to report the per-tenant
// latency and KV-size distributions in Figures 4-7.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace abase {

/// Exponentially-bucketed histogram (RocksDB HistogramImpl style): buckets
/// grow geometrically so percentile error is bounded by the growth factor
/// while memory stays O(#buckets).
class Histogram {
 public:
  /// `max_value` is the largest representable sample; larger samples clamp.
  /// Bucket storage is allocated lazily on the first sample, so an idle
  /// histogram (of which a million-tenant run holds millions) costs only
  /// the empty vectors.
  explicit Histogram(double max_value = 1e12, double growth = 1.3)
      : growth_(growth), max_value_(max_value) {}

  void Add(double value) {
    if (value < 0) value = 0;
    if (bounds_.empty()) BuildBuckets();
    size_t idx = BucketFor(value);
    counts_[idx]++;
    count_++;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = count_ == 1 ? value : std::max(max_, value);
  }

  void Merge(const Histogram& other) {
    // Histograms must share bucketization to merge.
    if (other.count_ == 0) return;
    if (bounds_.empty()) BuildBuckets();
    for (size_t i = 0; i < counts_.size() && i < other.counts_.size(); i++) {
      counts_[i] += other.counts_[i];
    }
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void Reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0;
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Value at percentile p in [0, 100], linearly interpolated within the
  /// bucket. Returns 0 for an empty histogram.
  double Percentile(double p) const {
    if (count_ == 0) return 0;
    if (p <= 0) return min_;
    if (p >= 100) return max_;
    double target = p / 100.0 * static_cast<double>(count_);
    uint64_t cum = 0;
    for (size_t i = 0; i < counts_.size(); i++) {
      uint64_t next = cum + counts_[i];
      if (static_cast<double>(next) >= target && counts_[i] > 0) {
        double lo = i == 0 ? 0 : bounds_[i - 1];
        double hi = bounds_[i];
        double frac = (target - static_cast<double>(cum)) /
                      static_cast<double>(counts_[i]);
        double v = lo + frac * (hi - lo);
        return std::clamp(v, min_, max_);
      }
      cum = next;
    }
    return max_;
  }

  double P50() const { return Percentile(50); }
  double P90() const { return Percentile(90); }
  double P99() const { return Percentile(99); }

 private:
  void BuildBuckets() {
    double bound = 1.0;
    bounds_.push_back(bound);
    while (bound < max_value_) {
      bound *= growth_;
      bounds_.push_back(bound);
    }
    counts_.assign(bounds_.size(), 0);
  }

  size_t BucketFor(double value) const {
    // Binary search the first bound >= value.
    size_t lo = 0, hi = bounds_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (bounds_[mid] >= value)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }

  double growth_;
  double max_value_;
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0, min_ = 0, max_ = 0;
};

/// Running mean / variance (Welford) without storing samples.
class RunningStats {
 public:
  void Add(double x) {
    n_++;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ < 2 ? 0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Exact percentile over a stored sample vector; for offline analysis where
/// sample counts are modest (e.g., per-tenant aggregates across a pool).
double ExactPercentile(std::vector<double> values, double p);

}  // namespace abase
