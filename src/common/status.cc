#include "common/status.h"

namespace abase {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kThrottled:
      return "Throttled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace abase
