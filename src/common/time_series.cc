#include "common/time_series.h"

#include <algorithm>
#include <cmath>

namespace abase {

double TimeSeries::Max() const {
  if (values_.empty()) return 0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Min() const {
  if (values_.empty()) return 0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double TimeSeries::Stddev() const {
  if (values_.size() < 2) return 0;
  double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

TimeSeries TimeSeries::Tail(size_t n) const {
  if (n >= values_.size()) return *this;
  std::vector<double> out(values_.end() - static_cast<ptrdiff_t>(n),
                          values_.end());
  return TimeSeries(std::move(out), step_hours_);
}

TimeSeries TimeSeries::DownsampleMax(size_t factor) const {
  if (factor <= 1) return *this;
  std::vector<double> out;
  out.reserve(values_.size() / factor + 1);
  for (size_t i = 0; i < values_.size(); i += factor) {
    double m = values_[i];
    for (size_t j = i + 1; j < std::min(i + factor, values_.size()); j++) {
      m = std::max(m, values_[j]);
    }
    out.push_back(m);
  }
  return TimeSeries(std::move(out), step_hours_ * static_cast<double>(factor));
}

TimeSeries TimeSeries::DownsampleMean(size_t factor) const {
  if (factor <= 1) return *this;
  std::vector<double> out;
  out.reserve(values_.size() / factor + 1);
  for (size_t i = 0; i < values_.size(); i += factor) {
    double s = 0;
    size_t n = 0;
    for (size_t j = i; j < std::min(i + factor, values_.size()); j++) {
      s += values_[j];
      n++;
    }
    out.push_back(s / static_cast<double>(n));
  }
  return TimeSeries(std::move(out), step_hours_ * static_cast<double>(factor));
}

Result<TimeSeries> TimeSeries::Minus(const TimeSeries& other) const {
  if (other.size() != size()) {
    return Status::InvalidArgument("series size mismatch");
  }
  std::vector<double> out(size());
  for (size_t i = 0; i < size(); i++) out[i] = values_[i] - other[i];
  return TimeSeries(std::move(out), step_hours_);
}

LoadVector LoadVector::FromHourlySeries(const TimeSeries& hourly) {
  LoadVector lv;
  bool seen[24] = {false};
  for (size_t i = 0; i < hourly.size(); i++) {
    int hour = static_cast<int>(i % 24);
    if (!seen[hour] || hourly[i] > lv.v[hour]) {
      lv.v[hour] = hourly[i];
      seen[hour] = true;
    }
  }
  return lv;
}

}  // namespace abase
