// Shared identifier and request-description types used across the proxy,
// data-node, scheduling and control planes.
#pragma once

#include <cstdint>
#include <string>

namespace abase {

using TenantId = uint32_t;
using PartitionId = uint32_t;  ///< Partition index within a tenant's table.
using NodeId = uint32_t;       ///< DataNode id within the whole deployment.
using PoolId = uint32_t;       ///< Resource pool id.
using ProxyId = uint32_t;      ///< Proxy instance id within a tenant.

constexpr NodeId kInvalidNode = UINT32_MAX;

/// Redis-style command classes recognized by the RU model (Section 4.1).
enum class OpType {
  kGet,      ///< Point read.
  kSet,      ///< Point write.
  kDel,      ///< Delete.
  kHSet,     ///< Hash-field write.
  kHGet,     ///< Hash-field read.
  kHLen,     ///< Complex read: field count of a hash.
  kHGetAll,  ///< Complex read: full scan of a hash (HLen + scan stages).
  kExpire,   ///< TTL update (metadata write).
  kScan,     ///< Range read: ordered [start, end) scan with a limit.
};

/// True for commands that read state (includes complex reads).
inline bool IsReadOp(OpType op) {
  switch (op) {
    case OpType::kGet:
    case OpType::kHGet:
    case OpType::kHLen:
    case OpType::kHGetAll:
    case OpType::kScan:
      return true;
    case OpType::kSet:
    case OpType::kDel:
    case OpType::kHSet:
    case OpType::kExpire:
      return false;
  }
  return false;
}

const char* OpTypeName(OpType op);

/// Client-selected consistency level of a read (writes always go to the
/// primary). `kPrimary` routes to the partition's primary replica —
/// read-your-writes within the async-replication model. `kEventual` lets
/// the Route stage load-balance the read across any alive replica of the
/// partition: the reply may trail the primary by the replication lag
/// (`SimOptions::replication_lag_ticks`), in exchange for offloading the
/// primary and staying readable while the primary is down.
enum class Consistency : uint8_t {
  kPrimary = 0,
  kEventual = 1,
};

const char* ConsistencyName(Consistency c);

/// WFQ request class (Section 4.3): requests are partitioned into four
/// independent dual-layer queues by direction and size so heavyweight
/// requests do not sit in front of lightweight ones.
enum class RequestClass {
  kSmallRead = 0,
  kLargeRead = 1,
  kSmallWrite = 2,
  kLargeWrite = 3,
};

constexpr int kNumRequestClasses = 4;

const char* RequestClassName(RequestClass rc);

/// Boundary between "small" and "large" requests, in value bytes. The paper
/// does not publish the production threshold; 4 KiB (two RU units) separates
/// the 0.1-2 KB social/e-commerce items from the 10 KB-5 MB ad/LLM items in
/// Table 1.
constexpr uint64_t kLargeRequestBytes = 4096;

/// Classifies a request by direction and (estimated) value size.
inline RequestClass ClassifyRequest(bool is_read, uint64_t value_bytes) {
  if (is_read) {
    return value_bytes >= kLargeRequestBytes ? RequestClass::kLargeRead
                                             : RequestClass::kSmallRead;
  }
  return value_bytes >= kLargeRequestBytes ? RequestClass::kLargeWrite
                                           : RequestClass::kSmallWrite;
}

}  // namespace abase
