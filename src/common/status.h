// Status / Result error model (RocksDB/Arrow style). Library code reports
// failures through these types; exceptions are not used on any hot path.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace abase {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kNotFound,        ///< Key / entity does not exist.
  kInvalidArgument, ///< Caller passed a malformed or out-of-range argument.
  kThrottled,       ///< Request rejected by quota admission control.
  kResourceExhausted, ///< Capacity (queue, memory, disk) exhausted.
  kUnavailable,     ///< Target node/partition is down or migrating.
  kCorruption,      ///< Stored data failed an integrity check.
  kNotSupported,    ///< Operation not implemented for this entity.
  kInternal,        ///< Invariant violation inside the library.
};

/// Human-readable name for a StatusCode (stable, for logs and tests).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail. Cheap to copy when OK (no
/// allocation); carries a message only on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Throttled(std::string msg = "") {
    return Status(StatusCode::kThrottled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsThrottled() const { return code_ == StatusCode::kThrottled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Either a value of T or an error Status. Accessing the value of a failed
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace abase

/// Propagates an error Status from an expression, RocksDB-style.
#define ABASE_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::abase::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)
