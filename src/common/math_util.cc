#include "common/math_util.h"

#include <cmath>

namespace abase {

Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  for (size_t col = 0; col < n; col++) {
    // Partial pivot: bring the largest |value| in this column to the
    // diagonal for numerical stability.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; r++) {
      if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col))) pivot = r;
    }
    if (std::fabs(a.at(pivot, col)) < 1e-12) {
      return Status::InvalidArgument("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; c++) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    double inv = 1.0 / a.at(col, col);
    for (size_t r = col + 1; r < n; r++) {
      double factor = a.at(r, col) * inv;
      if (factor == 0) continue;
      for (size_t c = col; c < n; c++) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; c++) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

Result<std::vector<double>> RidgeRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            double lambda) {
  const size_t n = x.rows();
  const size_t k = x.cols();
  if (y.size() != n || n == 0 || k == 0) {
    return Status::InvalidArgument("RidgeRegression: shape mismatch");
  }
  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix xtx(k, k);
  std::vector<double> xty(k, 0.0);
  for (size_t i = 0; i < n; i++) {
    for (size_t a_ = 0; a_ < k; a_++) {
      double xia = x.at(i, a_);
      if (xia == 0) continue;
      xty[a_] += xia * y[i];
      for (size_t b_ = a_; b_ < k; b_++) {
        xtx.at(a_, b_) += xia * x.at(i, b_);
      }
    }
  }
  for (size_t a_ = 0; a_ < k; a_++) {
    for (size_t b_ = 0; b_ < a_; b_++) xtx.at(a_, b_) = xtx.at(b_, a_);
    xtx.at(a_, a_) += lambda;
  }
  return SolveLinearSystem(std::move(xtx), std::move(xty));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0;
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; i++) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; i++) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va < 1e-12 || vb < 1e-12) return 0;
  return cov / std::sqrt(va * vb);
}

}  // namespace abase
