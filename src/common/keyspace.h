// Key-space helpers shared by the storage engine, the proxy content
// store, and the workload generator.
#pragma once

#include <string>
#include <string_view>

namespace abase {

/// Smallest key strictly greater than every key that starts with
/// `prefix` — the exclusive upper bound of the prefix range
/// [prefix, PrefixUpperBound(prefix)). Trailing 0xff bytes cannot be
/// incremented (0xff + 1 rolls over), so they are dropped before the
/// last remaining byte is bumped; an all-0xff (or empty) prefix has no
/// upper bound and returns "" — callers treat the empty string as
/// "to the last key".
inline std::string PrefixUpperBound(std::string_view prefix) {
  std::string end(prefix);
  while (!end.empty() && static_cast<unsigned char>(end.back()) == 0xff) {
    end.pop_back();
  }
  if (!end.empty()) {
    end.back() = static_cast<char>(static_cast<unsigned char>(end.back()) + 1);
  }
  return end;
}

}  // namespace abase
