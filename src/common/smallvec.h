// SmallVec — a vector with inline storage for the common small case.
//
// Most per-request fan-out sets in the data plane are tiny: a
// partition's replica list (≤3), a node's morsel of batch groups, a
// proxy group's members. std::vector heap-allocates even for one
// element; SmallVec keeps up to N elements in the object itself and
// only spills to the heap beyond that, which keeps the hot path free of
// allocator traffic and the elements on the same cache lines as their
// owner.
#pragma once

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

namespace abase {

template <typename T, size_t N = 8>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; i++) push_back(other[i]);
  }

  SmallVec(SmallVec&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; i++) push_back(other[i]);
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    Destroy();
    MoveFrom(std::move(other));
    return *this;
  }

  ~SmallVec() { Destroy(); }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T* data() { return heap_ ? heap_ : InlinePtr(); }
  const T* data() const { return heap_ ? heap_ : InlinePtr(); }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  /// True while elements still live in the inline buffer.
  bool is_inline() const { return heap_ == nullptr; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    size_++;
    return *slot;
  }

  void pop_back() {
    size_--;
    data()[size_].~T();
  }

  /// Destroys elements; keeps whatever storage is current (inline or
  /// heap), so refill after clear() does not reallocate.
  void clear() {
    T* d = data();
    for (size_t i = 0; i < size_; i++) d[i].~T();
    size_ = 0;
  }

  void reserve(size_t cap) {
    if (cap > capacity_) Grow(cap);
  }

  void resize(size_t n) {
    if (n > size_) {
      reserve(n);
      T* d = data();
      for (size_t i = size_; i < n; i++) ::new (static_cast<void*>(d + i)) T();
    } else {
      T* d = data();
      for (size_t i = n; i < size_; i++) d[i].~T();
    }
    size_ = n;
  }

 private:
  T* InlinePtr() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlinePtr() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(size_t cap) {
    if (cap < N) cap = N;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    T* d = data();
    for (size_t i = 0; i < size_; i++) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(d[i]));
      d[i].~T();
    }
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    capacity_ = cap;
  }

  void Destroy() {
    clear();
    if (heap_) {
      ::operator delete(heap_);
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  void MoveFrom(SmallVec&& other) {
    if (other.heap_) {
      // Steal the heap buffer outright.
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = other.size_;
      // Inline storage invariant; also keeps GCC's vectorizer from
      // assuming the loop can run past the inline buffer.
      if (size_ > N) __builtin_unreachable();
      T* src = other.InlinePtr();
      T* dst = InlinePtr();
      for (size_t i = 0; i < size_; i++) {
        ::new (static_cast<void*>(dst + i)) T(std::move(src[i]));
        src[i].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;  ///< Null while inline.
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace abase
