// Small dense linear algebra needed by the forecasting module: ridge
// least-squares via normal equations with Gaussian elimination. Problem
// sizes are tiny (tens of basis functions), so O(n^3) is fine.
#pragma once

#include <vector>

#include "common/status.h"

namespace abase {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// A must be square with rows == b.size(). Fails on (near-)singular A.
Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b);

/// Ridge regression: minimizes |X w - y|^2 + lambda |w|^2 and returns w.
/// X is n x k with n >= 1, y has n entries. lambda >= 0.
Result<std::vector<double>> RidgeRegression(const Matrix& x,
                                            const std::vector<double>& y,
                                            double lambda);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace abase
