// Seeded random number generation with the distributions the workload
// generators need (uniform, Zipfian, log-normal, Poisson).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace abase {

/// Derives an independent deterministic seed for stream `stream` of a
/// base seed (splitmix64 finalizer). Components that may run concurrently
/// — e.g. DataNodes under the parallel data-plane executor — must each
/// own a stream derived this way instead of sharing one Rng, so results
/// do not depend on execution interleaving.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic RNG. Every simulator component takes an explicit seed so
/// all experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n) {
    assert(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and stddev.
  double NextGaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Poisson-distributed count with the given mean. Implemented via
  /// Knuth's product method plus Poisson additivity for large means
  /// (exact, not an approximation) instead of std::poisson_distribution:
  /// the latter's setup path calls the non-reentrant lgamma(3) — a data
  /// race when per-tenant generators run concurrently under the parallel
  /// executor — and its draw sequence differs across stdlib
  /// implementations, which would break cross-platform reproducibility.
  int64_t NextPoisson(double mean) {
    if (mean <= 0) return 0;
    constexpr double kChunk = 30.0;  // exp(-30) is comfortably normal.
    int64_t total = 0;
    while (mean > kChunk) {
      total += SmallPoisson(kChunk);
      mean -= kChunk;
    }
    return total + SmallPoisson(mean);
  }

  /// Bernoulli trial.
  bool NextBool(double p_true) { return NextDouble() < p_true; }

  std::mt19937_64& engine() { return engine_; }

 private:
  /// Knuth: count uniform draws until their product falls below
  /// exp(-mean). O(mean) draws; callers keep mean small.
  int64_t SmallPoisson(double mean) {
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double prod = NextDouble();
    while (prod > limit) {
      k++;
      prod *= NextDouble();
    }
    return k;
  }

  std::mt19937_64 engine_;
};

/// Zipfian key sampler over [0, n) with skew `theta` (YCSB-style; theta in
/// (0, 1), larger = more skew). Uses the Gray et al. rejection-free method
/// with precomputed zeta.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta)
      : n_(n), theta_(theta) {
    assert(n > 0);
    assert(theta > 0 && theta < 1);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Draws a rank in [0, n); rank 0 is the hottest key.
  uint64_t Next(Rng& rng) const {
    double u = rng.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// Samples from an explicit discrete distribution (weights need not sum
/// to 1). Used for hot-key workloads where a handful of keys take a fixed
/// share of traffic.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    double total = 0;
    for (double& w : cumulative_) {
      assert(w >= 0);
      total += w;
      w = total;
    }
    total_ = total;
  }

  /// Index in [0, weights.size()).
  size_t Next(Rng& rng) const {
    double u = rng.NextDouble() * total_;
    size_t lo = 0, hi = cumulative_.size();
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative_[mid - 1] <= u)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cumulative_;
  double total_ = 0;
};

}  // namespace abase
