// Sliding-window estimators used by the RU model (Section 4.1 of the paper):
// E[S_read] and E[R_hit] are moving averages over the last k requests.
#pragma once

#include <cstddef>
#include <deque>

namespace abase {

/// Mean of the last `window` samples. O(1) update.
class MovingAverage {
 public:
  explicit MovingAverage(size_t window, double initial = 0.0)
      : window_(window == 0 ? 1 : window), initial_(initial) {}

  void Add(double x) {
    samples_.push_back(x);
    sum_ += x;
    if (samples_.size() > window_) {
      sum_ -= samples_.front();
      samples_.pop_front();
    }
  }

  /// Returns the configured initial value until the first sample arrives.
  double Value() const {
    if (samples_.empty()) return initial_;
    return sum_ / static_cast<double>(samples_.size());
  }

  size_t count() const { return samples_.size(); }
  size_t window() const { return window_; }

  void Reset() {
    samples_.clear();
    sum_ = 0;
  }

 private:
  size_t window_;
  double initial_;
  std::deque<double> samples_;
  double sum_ = 0;
};

/// Exponentially-weighted moving average; used where a fixed window is too
/// coarse (e.g., per-queue service-rate tracking).
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest sample.
  explicit Ewma(double alpha, double initial = 0.0)
      : alpha_(alpha), value_(initial) {}

  void Add(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = alpha_ * x + (1 - alpha_) * value_;
    }
  }

  double Value() const { return value_; }
  bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_;
  bool seeded_ = false;
};

}  // namespace abase
