// Hashing utilities: FNV-1a for routing / partitioning decisions (stable
// across platforms, unlike std::hash), and a 32-bit mix for bloom filters.
#pragma once

#include <cstdint>
#include <string_view>

namespace abase {

/// FNV-1a 64-bit. Stable across builds; used for key → partition routing
/// and the proxy-group limited fan-out hash.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Continues an FNV-1a stream: feeding `data` into a hash state returned
/// by Fnv1a64 (or a previous Continue) yields exactly Fnv1a64(prefix +
/// data). Lets a fixed key prefix ("tenant|partition|") be hashed once
/// and shared across every request that appends a different suffix.
inline uint64_t Fnv1a64Continue(uint64_t state, std::string_view data) {
  for (unsigned char c : data) {
    state ^= c;
    state *= 1099511628211ULL;
  }
  return state;
}

/// Finalizer from MurmurHash3; decorrelates sequential inputs. Used to
/// derive independent bloom-filter probe positions from one base hash.
inline uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace abase
