#include "common/types.h"

namespace abase {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kGet:
      return "GET";
    case OpType::kSet:
      return "SET";
    case OpType::kDel:
      return "DEL";
    case OpType::kHSet:
      return "HSET";
    case OpType::kHGet:
      return "HGET";
    case OpType::kHLen:
      return "HLEN";
    case OpType::kHGetAll:
      return "HGETALL";
    case OpType::kExpire:
      return "EXPIRE";
    case OpType::kScan:
      return "SCAN";
  }
  return "UNKNOWN";
}

const char* ConsistencyName(Consistency c) {
  switch (c) {
    case Consistency::kPrimary:
      return "PRIMARY";
    case Consistency::kEventual:
      return "EVENTUAL";
  }
  return "UNKNOWN";
}

const char* RequestClassName(RequestClass rc) {
  switch (rc) {
    case RequestClass::kSmallRead:
      return "SmallRead";
    case RequestClass::kLargeRead:
      return "LargeRead";
    case RequestClass::kSmallWrite:
      return "SmallWrite";
    case RequestClass::kLargeWrite:
      return "LargeWrite";
  }
  return "Unknown";
}

}  // namespace abase
