#include "common/trace.h"

#include <cstdio>
#include <utility>

namespace abase {

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)), t0_(std::chrono::steady_clock::now()) {
  events_.reserve(4096);
}

TraceWriter::~TraceWriter() { Flush(); }

void TraceWriter::Emit(std::string name, int tid, uint64_t ts_us,
                       uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), tid, ts_us, dur_us, false});
}

void TraceWriter::EmitInstant(std::string name, int tid, uint64_t ts_us) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), tid, ts_us, 0, true});
}

void TraceWriter::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return;
  std::fputs("{\"traceEvents\":[\n", f);
  for (size_t i = 0; i < events_.size(); i++) {
    const Event& e = events_[i];
    // Stage/morsel labels are plain identifiers; no JSON escaping needed.
    if (e.instant) {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu,"
                   "\"pid\":1,\"tid\":%d}%s\n",
                   e.name.c_str(), static_cast<unsigned long long>(e.ts),
                   e.tid, i + 1 < events_.size() ? "," : "");
    } else {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                   "\"pid\":1,\"tid\":%d}%s\n",
                   e.name.c_str(), static_cast<unsigned long long>(e.ts),
                   static_cast<unsigned long long>(e.dur), e.tid,
                   i + 1 < events_.size() ? "," : "");
    }
  }
  std::fputs("]}\n", f);
  std::fclose(f);
}

}  // namespace abase
