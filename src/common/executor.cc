#include "common/executor.h"

#include <algorithm>

namespace abase {

MorselExecutor::MorselExecutor(int num_workers)
    : num_workers_(std::max(1, num_workers)),
      ranges_(new Range[static_cast<size_t>(std::max(1, num_workers))]) {
  threads_.reserve(static_cast<size_t>(num_workers_ - 1));
  for (int i = 1; i < num_workers_; i++) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MorselExecutor::~MorselExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void MorselExecutor::RunMorsels(int worker) {
  const MorselFn& fn = *fn_;
  const size_t grain = grain_;
  // Own range first, then sweep the other workers' ranges as theft
  // victims. fetch_add past `end` wastes at most one increment per
  // visitor, so the overshoot is bounded and harmless.
  for (int v = 0; v < num_workers_; v++) {
    Range& r = ranges_[(worker + v) % num_workers_];
    for (;;) {
      size_t begin = r.next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= r.end) break;
      size_t end = std::min(begin + grain, r.end);
      if (trace_ != nullptr && label_ != nullptr) {
        TraceSpan span(trace_, label_, worker);
        fn(begin, end, worker);
      } else {
        fn(begin, end, worker);
      }
    }
  }
}

void MorselExecutor::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    RunMorsels(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void MorselExecutor::MorselFor(const char* label, size_t n, size_t grain,
                               const MorselFn& fn) {
  if (n == 0) return;
  const size_t w = static_cast<size_t>(num_workers_);
  if (threads_.empty()) {
    if (trace_ != nullptr && label != nullptr) {
      TraceSpan span(trace_, label, 0);
      fn(0, n, 0);
    } else {
      fn(0, n, 0);
    }
    return;
  }
  // Contiguous per-worker ranges; morsels of `grain` indices. The
  // default grain aims at ~4 morsels per worker so stealing has slack
  // without shredding cache locality.
  const size_t chunk = (n + w - 1) / w;
  if (grain == 0) grain = std::max<size_t>(1, chunk / 4);
  for (size_t i = 0; i < w; i++) {
    const size_t begin = std::min(i * chunk, n);
    ranges_[i].next.store(begin, std::memory_order_relaxed);
    ranges_[i].end = std::min(begin + chunk, n);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    label_ = label;
    grain_ = grain;
    active_ = threads_.size();
    epoch_++;
  }
  cv_start_.notify_all();
  // The caller is worker 0.
  RunMorsels(0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  label_ = nullptr;
}

}  // namespace abase
