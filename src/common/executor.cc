#include "common/executor.h"

#include <algorithm>

namespace abase {

ParallelExecutor::ParallelExecutor(int num_workers)
    : num_workers_(std::max(1, num_workers)) {
  threads_.reserve(static_cast<size_t>(num_workers_ - 1));
  for (int i = 0; i < num_workers_ - 1; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelExecutor::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = fn_;
      n = n_;
    }
    for (size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
      (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ParallelExecutor::ParallelFor(size_t n,
                                   const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty()) {
    for (size_t i = 0; i < n; i++) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0);
    active_ = threads_.size();
    epoch_++;
  }
  cv_start_.notify_all();
  // The caller is one of the workers.
  for (size_t i = next_.fetch_add(1); i < n; i = next_.fetch_add(1)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
}

}  // namespace abase
