// Time abstraction. All simulation code reads time through a Clock so that
// experiments are deterministic and can be fast-forwarded.
#pragma once

#include <cstdint>

namespace abase {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr Micros kMicrosPerDay = 24 * kMicrosPerHour;

/// Source of "now". Implementations must be monotonic.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since the clock's epoch.
  virtual Micros NowMicros() const = 0;
};

/// Deterministic, manually-advanced clock used by the cluster simulator and
/// by all tests. Starts at 0.
class SimClock final : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_; }

  /// Advances time. `delta` must be non-negative (monotonicity).
  void Advance(Micros delta) {
    if (delta > 0) now_ += delta;
  }
  void AdvanceSeconds(double s) {
    Advance(static_cast<Micros>(s * kMicrosPerSecond));
  }
  /// Jumps directly to `t` if `t` is in the future; no-op otherwise.
  void SetTime(Micros t) {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_;
};

}  // namespace abase
