// Wire framing of a scan result payload.
//
// A scan reply carries many (key, value) entries in one response value.
// Values are arbitrary bytes (serialized hashes contain '=' and '\n'),
// so the framing is length-prefixed binary rather than a separator
// format: per entry a 32-bit key length, a 32-bit value length (both
// little-endian), then the raw key and value bytes. Entries appear in
// ascending key order. The codec is shared by the DataNode (encode), the
// Settle stage's fan-out merge (decode + re-encode), the proxy content
// store (opaque payload), and the client (decode).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace abase {

/// One decoded scan entry, viewing into the framed payload.
struct ScanEntryView {
  std::string_view key;
  std::string_view value;
};

/// Appends one framed (key, value) entry to `buf`.
inline void AppendScanEntry(std::string& buf, std::string_view key,
                            std::string_view value) {
  const uint32_t klen = static_cast<uint32_t>(key.size());
  const uint32_t vlen = static_cast<uint32_t>(value.size());
  char hdr[8];
  hdr[0] = static_cast<char>(klen & 0xff);
  hdr[1] = static_cast<char>((klen >> 8) & 0xff);
  hdr[2] = static_cast<char>((klen >> 16) & 0xff);
  hdr[3] = static_cast<char>((klen >> 24) & 0xff);
  hdr[4] = static_cast<char>(vlen & 0xff);
  hdr[5] = static_cast<char>((vlen >> 8) & 0xff);
  hdr[6] = static_cast<char>((vlen >> 16) & 0xff);
  hdr[7] = static_cast<char>((vlen >> 24) & 0xff);
  buf.append(hdr, sizeof(hdr));
  buf.append(key.data(), key.size());
  buf.append(value.data(), value.size());
}

/// Decodes the next entry at the front of `payload`, advancing it past
/// the consumed bytes. Returns false (leaving `payload` unchanged) at
/// the end of the stream or on a truncated frame.
inline bool NextScanEntry(std::string_view& payload, ScanEntryView& out) {
  if (payload.size() < 8) return false;
  auto u32_at = [&](size_t off) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(payload.data()) + off;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  };
  const uint32_t klen = u32_at(0);
  const uint32_t vlen = u32_at(4);
  const uint64_t need =
      8ull + static_cast<uint64_t>(klen) + static_cast<uint64_t>(vlen);
  if (payload.size() < need) return false;
  out.key = payload.substr(8, klen);
  out.value = payload.substr(8ull + klen, vlen);
  payload.remove_prefix(static_cast<size_t>(need));
  return true;
}

/// Number of well-formed entries in a framed payload.
inline size_t CountScanEntries(std::string_view payload) {
  size_t n = 0;
  ScanEntryView e;
  while (NextScanEntry(payload, e)) n++;
  return n;
}

}  // namespace abase
