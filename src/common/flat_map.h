// FlatMap64 — open-addressed hash map for dense uint64 keys.
//
// The data plane keys almost everything by a 64-bit request id
// (`inflight_`, a node's `pending_`, a proxy's RU-estimate ledger).
// std::unordered_map pays a node allocation per insert and a pointer
// chase per lookup; this map stores (key, value) slots contiguously
// with linear probing, so the per-request lifecycle
// insert -> find -> erase touches one or two cache lines and never
// allocates in steady state once the table has grown to working-set
// size.
//
// Deleted slots become tombstones; the table rehashes in place when
// live + dead slots exceed 7/10 of capacity, which bounds probe
// lengths under the insert/erase churn of long-running simulations.
// Iteration order is unspecified — callers that need deterministic
// order (the bit-identity contract) must iterate an external id-ordered
// index, never the map itself.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace abase {

/// FNV-1a 64 over raw bytes — the canonical key hash for string-keyed
/// FlatMap64 indexes (cache tables). Callers resolve the (vanishingly
/// rare) collision by comparing the stored key string on a hit.
inline uint64_t HashBytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < n; i++) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

template <typename V>
class FlatMap64 {
  enum : uint8_t { kEmpty = 0, kFull = 1, kDead = 2 };

 public:
  FlatMap64() = default;
  ~FlatMap64() { DestroyAll(); }

  FlatMap64(const FlatMap64&) = delete;
  FlatMap64& operator=(const FlatMap64&) = delete;

  FlatMap64(FlatMap64&& other) noexcept { Swap(other); }
  FlatMap64& operator=(FlatMap64&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      Release();
      Swap(other);
    }
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  /// Value for `key`, or nullptr.
  V* Find(uint64_t key) {
    if (cap_ == 0) return nullptr;
    size_t i = Hash(key);
    for (;;) {
      uint8_t s = state_[i];
      if (s == kEmpty) return nullptr;
      if (s == kFull && keys_[i] == key) return &slots_[i];
      i = (i + 1) & mask_;
    }
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Inserts a default V for `key` (or returns the existing one).
  V& operator[](uint64_t key) {
    size_t i = FindOrPrepareSlot(key);
    return slots_[i];
  }

  /// Inserts or overwrites.
  V& Insert(uint64_t key, V value) {
    size_t i = FindOrPrepareSlot(key);
    slots_[i] = std::move(value);
    return slots_[i];
  }

  /// Removes `key`; returns true if present.
  bool Erase(uint64_t key) {
    if (cap_ == 0) return false;
    size_t i = Hash(key);
    for (;;) {
      uint8_t s = state_[i];
      if (s == kEmpty) return false;
      if (s == kFull && keys_[i] == key) {
        slots_[i].~V();
        state_[i] = kDead;
        size_--;
        dead_++;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Destroys every element; keeps the table storage.
  void Clear() {
    DestroyAll();
    if (cap_ != 0) std::fill(state_, state_ + cap_, uint8_t{kEmpty});
    size_ = 0;
    dead_ = 0;
  }

  /// Ensures capacity for `n` live entries without rehash.
  void Reserve(size_t n) {
    size_t need = NormalizeCap(n);
    if (need > cap_) Rehash(need);
  }

  /// Calls fn(key, value&) for every live entry, in unspecified order.
  /// Only for order-insensitive sweeps (e.g. TTL expiry scans that
  /// collect ids and sort them afterwards).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < cap_; i++) {
      if (state_[i] == kFull) fn(keys_[i], slots_[i]);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < cap_; i++) {
      if (state_[i] == kFull) fn(keys_[i], const_cast<const V&>(slots_[i]));
    }
  }

 private:
  static size_t NormalizeCap(size_t n) {
    // Keep load below ~0.7 at `n` live entries; minimum 16 slots.
    size_t cap = 16;
    while (cap * 7 < n * 10) cap <<= 1;
    return cap;
  }

  size_t Hash(uint64_t key) const {
    // Fibonacci scramble; the low bits of req ids are sequential.
    return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
  }

  size_t FindOrPrepareSlot(uint64_t key) {
    if (cap_ == 0 || (size_ + dead_ + 1) * 10 > cap_ * 7) {
      Rehash(NormalizeCap(size_ + 1 > 8 ? (size_ + 1) * 2 : 16));
    }
    size_t i = Hash(key);
    size_t first_dead = SIZE_MAX;
    for (;;) {
      uint8_t s = state_[i];
      if (s == kFull && keys_[i] == key) return i;
      if (s == kDead && first_dead == SIZE_MAX) first_dead = i;
      if (s == kEmpty) {
        if (first_dead != SIZE_MAX) {
          i = first_dead;
          dead_--;
        }
        state_[i] = kFull;
        keys_[i] = key;
        ::new (static_cast<void*>(&slots_[i])) V();
        size_++;
        return i;
      }
      i = (i + 1) & mask_;
    }
  }

  void Rehash(size_t new_cap) {
    std::unique_ptr<unsigned char[]> old_storage = std::move(storage_);
    uint8_t* old_state = state_;
    uint64_t* old_keys = keys_;
    V* old_slots = slots_;
    size_t old_cap = cap_;

    cap_ = new_cap;
    mask_ = cap_ - 1;
    storage_.reset(new unsigned char[cap_ * (sizeof(V) + sizeof(uint64_t) +
                                             1) +
                                     alignof(V)]);
    unsigned char* p = storage_.get();
    uintptr_t raw = reinterpret_cast<uintptr_t>(p);
    uintptr_t aligned =
        (raw + (alignof(V) - 1)) & ~static_cast<uintptr_t>(alignof(V) - 1);
    slots_ = reinterpret_cast<V*>(aligned);
    keys_ = reinterpret_cast<uint64_t*>(slots_ + cap_);
    state_ = reinterpret_cast<uint8_t*>(keys_ + cap_);
    std::fill(state_, state_ + cap_, uint8_t{kEmpty});
    size_ = 0;
    dead_ = 0;

    if (old_cap != 0) {
      for (size_t i = 0; i < old_cap; i++) {
        if (old_state[i] == kFull) {
          size_t j = Hash(old_keys[i]);
          while (state_[j] != kEmpty) j = (j + 1) & mask_;
          state_[j] = kFull;
          keys_[j] = old_keys[i];
          ::new (static_cast<void*>(&slots_[j])) V(std::move(old_slots[i]));
          old_slots[i].~V();
          size_++;
        }
      }
    }
  }

  void DestroyAll() {
    for (size_t i = 0; i < cap_; i++) {
      if (state_[i] == kFull) slots_[i].~V();
    }
  }

  void Release() {
    storage_.reset();
    state_ = nullptr;
    keys_ = nullptr;
    slots_ = nullptr;
    cap_ = 0;
    mask_ = 0;
    size_ = 0;
    dead_ = 0;
  }

  void Swap(FlatMap64& other) {
    std::swap(storage_, other.storage_);
    std::swap(state_, other.state_);
    std::swap(keys_, other.keys_);
    std::swap(slots_, other.slots_);
    std::swap(cap_, other.cap_);
    std::swap(mask_, other.mask_);
    std::swap(size_, other.size_);
    std::swap(dead_, other.dead_);
  }

  std::unique_ptr<unsigned char[]> storage_;
  uint8_t* state_ = nullptr;
  uint64_t* keys_ = nullptr;
  V* slots_ = nullptr;
  size_t cap_ = 0;
  size_t mask_ = 0;
  size_t size_ = 0;
  size_t dead_ = 0;
};

}  // namespace abase
