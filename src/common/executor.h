// Data-plane executors. Parallel pipeline stages fan batch groups out
// through an Executor: SerialExecutor preserves the single-threaded
// reference loop, MorselExecutor carves the index space into per-worker
// ranges and lets idle workers *steal* morsels (contiguous index runs)
// from busy ones, so a skewed tenant or hot node cannot leave the rest
// of the pool idle. Work units share no mutable state within a tick and
// all merges happen in fixed id order afterwards (DESIGN.md, "Stage /
// executor contract"), so claiming order is free to be nondeterministic
// while simulation results stay bit-identical across worker counts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace abase {

/// A morsel callback: processes the contiguous index run [begin, end)
/// on worker `worker` (0 <= worker < workers()). The worker id is
/// stable for the duration of the run, so callees may use per-worker
/// scratch (arenas) without synchronization.
using MorselFn = std::function<void(size_t begin, size_t end, int worker)>;

/// Runs `n` independent tasks, identified by index. Implementations must
/// guarantee every index in [0, n) runs exactly once and that the fan
/// out does not return before all of them have finished.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Covers [0, n) with disjoint morsels of at most `grain` indices
  /// (grain 0 = implementation-chosen). Blocks until every index ran.
  /// `label` names the work for the trace (may be null).
  virtual void MorselFor(const char* label, size_t n, size_t grain,
                         const MorselFn& fn) = 0;

  /// Index-at-a-time adapter over MorselFor: invokes fn(0) .. fn(n-1),
  /// possibly concurrently. Blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    MorselFor(nullptr, n, 0, [&fn](size_t begin, size_t end, int) {
      for (size_t i = begin; i < end; i++) fn(i);
    });
  }

  /// Degree of parallelism (1 for the serial executor).
  virtual int workers() const = 0;

  /// Attaches a trace sink; labeled morsels are recorded as slices on
  /// the claiming worker's track. Null detaches.
  virtual void SetTrace(TraceWriter*) {}
};

/// Runs everything inline on the calling thread, in index order. This is
/// the reference executor: any other executor must produce bit-identical
/// simulation results.
class SerialExecutor final : public Executor {
 public:
  void MorselFor(const char* label, size_t n, size_t,
                 const MorselFn& fn) override {
    if (n == 0) return;
    TraceSpan span(label != nullptr ? trace_ : nullptr, label, 0);
    fn(0, n, 0);
  }
  int workers() const override { return 1; }
  void SetTrace(TraceWriter* trace) override { trace_ = trace; }

 private:
  TraceWriter* trace_ = nullptr;
};

/// Work-stealing morsel pool. `num_workers` includes the calling thread,
/// so MorselExecutor(4) spawns three pool threads and the caller takes
/// worker id 0. Each fan-out splits [0, n) into one contiguous range per
/// worker; a worker claims grain-sized morsels from its own range via an
/// atomic cursor and, once that is drained, steals morsels from the
/// other ranges. Morsel *claiming* order is nondeterministic — callers
/// own determinism by keeping tasks independent and merging results in
/// index order afterwards.
class MorselExecutor final : public Executor {
 public:
  explicit MorselExecutor(int num_workers);
  ~MorselExecutor() override;

  MorselExecutor(const MorselExecutor&) = delete;
  MorselExecutor& operator=(const MorselExecutor&) = delete;

  void MorselFor(const char* label, size_t n, size_t grain,
                 const MorselFn& fn) override;
  int workers() const override { return num_workers_; }
  void SetTrace(TraceWriter* trace) override { trace_ = trace; }

 private:
  /// One worker's share of the index space, claimed morsel-by-morsel.
  /// Padded out to a cache line so cursors do not false-share.
  struct alignas(64) Range {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  void WorkerLoop(int worker);
  /// Drains the own range, then steals; returns when no morsel is left.
  void RunMorsels(int worker);

  int num_workers_;
  std::vector<std::thread> threads_;
  std::unique_ptr<Range[]> ranges_;  ///< One per worker.
  TraceWriter* trace_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const MorselFn* fn_ = nullptr;  ///< Current job.
  const char* label_ = nullptr;
  size_t grain_ = 1;
  size_t active_ = 0;   ///< Pool threads still in the current job.
  uint64_t epoch_ = 0;  ///< Bumped per job to wake the pool.
  bool shutdown_ = false;
};

}  // namespace abase
