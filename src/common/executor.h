// Data-plane executors. The cluster simulator's NodeSchedule stage runs
// every DataNode's tick through an Executor: SerialExecutor preserves the
// historical single-threaded loop, ParallelExecutor fans the independent
// node ticks out across a persistent worker pool (DataNodes share no
// mutable state within a tick, so the only ordering requirement is the
// caller's deterministic node-id-ordered response merge — see DESIGN.md,
// "Stage / executor contract").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abase {

/// Runs `n` independent tasks, identified by index. Implementations must
/// guarantee every index in [0, n) runs exactly once and that ParallelFor
/// does not return before all of them have finished.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Invokes fn(0) .. fn(n-1), possibly concurrently. Blocks until done.
  virtual void ParallelFor(size_t n, const std::function<void(size_t)>& fn) = 0;

  /// Degree of parallelism (1 for the serial executor).
  virtual int workers() const = 0;
};

/// Runs tasks inline on the calling thread, in index order. This is the
/// reference executor: any other executor must produce bit-identical
/// simulation results.
class SerialExecutor final : public Executor {
 public:
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) override {
    for (size_t i = 0; i < n; i++) fn(i);
  }
  int workers() const override { return 1; }
};

/// Persistent worker pool. `num_workers` includes the calling thread, so
/// ParallelExecutor(4) spawns three workers and the caller takes the
/// fourth share. Indices are claimed from an atomic counter, so task
/// *start* order is nondeterministic — callers own determinism by keeping
/// tasks independent and merging results in index order afterwards.
class ParallelExecutor final : public Executor {
 public:
  explicit ParallelExecutor(int num_workers);
  ~ParallelExecutor() override;

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) override;
  int workers() const override { return num_workers_; }

 private:
  void WorkerLoop();

  int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* fn_ = nullptr;  ///< Current job.
  size_t n_ = 0;
  std::atomic<size_t> next_{0};  ///< Next unclaimed index.
  size_t active_ = 0;            ///< Pool threads still in the current job.
  uint64_t epoch_ = 0;           ///< Bumped per job to wake the pool.
  bool shutdown_ = false;
};

}  // namespace abase
