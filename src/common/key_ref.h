// Interned key handles: a KeyRef is a non-owning (pointer, length) view
// of a key plus its precomputed FNV-1a 64 hash, built once where the key
// enters a subsystem and threaded through every later hop so no stage
// re-hashes or re-copies the bytes. KeyArena is the matching allocator:
// an interning bump arena that materializes each distinct key at most
// once per epoch (tick, batch, compaction) and hands out stable KeyRefs
// until Reset(), which retains capacity so steady-state interning never
// allocates.
//
// Lifetime rules (see DESIGN.md "Per-request cost model"):
//   - A KeyRef from KeyArena::Intern is valid until that arena's Reset().
//   - A KeyRef built over foreign storage (KeyRef::From) is valid only
//     while that storage is; it never outlives the request/slot that
//     owns the string.
//   - Strings materialize only at client-visible boundaries (tracked
//     outcomes, cache fills, WAL records); everything in between moves
//     (pointer, length, hash) triples.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"

namespace abase {

/// A non-owning key handle: view + precomputed FNV-1a 64 hash. The hash
/// always equals Fnv1a64(view()) — every constructor enforces it — so a
/// consumer (bloom probe, hash index, router) can trust it blindly.
struct KeyRef {
  const char* data = nullptr;
  uint32_t len = 0;
  uint64_t hash = 0;

  KeyRef() = default;

  /// Wraps foreign storage, hashing once. The caller's storage must
  /// outlive the ref.
  static KeyRef From(std::string_view key) {
    KeyRef r;
    r.data = key.data();
    r.len = static_cast<uint32_t>(key.size());
    r.hash = Fnv1a64(key);
    return r;
  }

  std::string_view view() const { return std::string_view(data, len); }
  bool empty() const { return len == 0; }

  /// Byte equality (hash is compared first as a cheap reject).
  friend bool operator==(const KeyRef& a, const KeyRef& b) {
    return a.hash == b.hash && a.len == b.len &&
           (a.len == 0 || std::memcmp(a.data, b.data, a.len) == 0);
  }
  friend bool operator!=(const KeyRef& a, const KeyRef& b) {
    return !(a == b);
  }
};

/// Interning bump arena for keys. Intern() returns a KeyRef into arena
/// storage; repeated interning of the same bytes within one epoch
/// returns the identical storage (pointer equality), so a key crossing N
/// pipeline hops is materialized once, not N times. Reset() drops every
/// interned key but keeps the allocated blocks and the index's table, so
/// a steady-state tick whose keys fit the high-water mark performs zero
/// heap allocation.
///
/// Hash collisions (distinct byte strings, equal 64-bit hash) are
/// chained per index slot and resolved by byte compare — interning is
/// exact, never probabilistic.
class KeyArena {
 public:
  explicit KeyArena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  KeyArena(const KeyArena&) = delete;
  KeyArena& operator=(const KeyArena&) = delete;

  /// Interns `key`, hashing once. The returned ref is valid until
  /// Reset().
  KeyRef Intern(std::string_view key) {
    return InternHashed(Fnv1a64(key), key);
  }

  /// Interning core for callers that already hold the key's FNV-1a 64
  /// hash (a generator or router that hashed at entry). `hash` MUST
  /// equal Fnv1a64(key); a wrong hash poisons every later consumer.
  KeyRef InternHashed(uint64_t hash, std::string_view key) {
    Slot*& head = index_[hash];
    for (Slot* s = head; s != nullptr; s = s->next) {
      if (s->len == key.size() &&
          (key.empty() ||
           std::memcmp(s->bytes(), key.data(), key.size()) == 0)) {
        return MakeRef(s, hash);
      }
    }
    Slot* s = AllocateSlot(key);
    s->next = head;
    head = s;
    interned_++;
    return MakeRef(s, hash);
  }

  /// Drops every interned key; retains block capacity and the index
  /// table, so the next epoch's interning is allocation-free up to the
  /// high-water mark.
  void Reset() {
    if (blocks_.size() > 1) {
      // Keep only the largest block (the last one: block sizes are
      // nondecreasing) so a one-off spike does not pin many blocks.
      blocks_.front() = std::move(blocks_.back());
      blocks_.resize(1);
    }
    used_ = 0;
    interned_ = 0;
    index_.Clear();
  }

  /// Distinct keys interned since the last Reset.
  size_t interned_count() const { return interned_; }

  /// Bytes consumed in the current block (observability / tests).
  size_t block_bytes_used() const { return used_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  /// One interned key: chain pointer and length, followed inline by the
  /// key bytes.
  struct Slot {
    Slot* next = nullptr;
    uint32_t len = 0;
    char* bytes() { return reinterpret_cast<char*>(this + 1); }
    const char* bytes() const {
      return reinterpret_cast<const char*>(this + 1);
    }
  };

  static constexpr size_t kDefaultBlockBytes = 16 * 1024;

  static KeyRef MakeRef(Slot* s, uint64_t hash) {
    KeyRef r;
    r.data = s->bytes();
    r.len = s->len;
    r.hash = hash;
    return r;
  }

  Slot* AllocateSlot(std::string_view key) {
    size_t need = sizeof(Slot) + key.size();
    // Keep slots aligned for the Slot header.
    need = (need + alignof(Slot) - 1) & ~(alignof(Slot) - 1);
    if (blocks_.empty() || used_ + need > block_size_) {
      // Geometric growth: each new block doubles the standing size, so
      // after one warm-up epoch the single block Reset retains holds
      // the whole working set and steady state allocates nothing.
      const size_t size = std::max({block_bytes_, need, block_size_ * 2});
      blocks_.push_back(std::make_unique<char[]>(size));
      block_size_ = size;
      used_ = 0;
    }
    Slot* s = new (blocks_.back().get() + used_) Slot();
    used_ += need;
    s->len = static_cast<uint32_t>(key.size());
    if (!key.empty()) std::memcpy(s->bytes(), key.data(), key.size());
    return s;
  }

  size_t block_bytes_;
  size_t block_size_ = 0;  ///< Capacity of the current (last) block.
  size_t used_ = 0;        ///< Bytes consumed in the current block.
  size_t interned_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  FlatMap64<Slot*> index_;
};

}  // namespace abase
