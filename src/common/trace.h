// Perfetto-compatible tracing for the tick pipeline.
//
// When SimOptions::trace_path is set, the simulator records one
// "complete" slice per pipeline stage per tick and one per executor
// morsel, in the Chrome Trace Event JSON format that ui.perfetto.dev
// (and chrome://tracing) loads directly. Track 0 is the coordinating
// thread; tracks 1..W-1 are the morsel workers, so the trace shows both
// where a tick's wall-clock goes stage-by-stage and how well the
// work-stealing scheduler balances the batch groups across workers.
//
// The writer buffers events in memory (events are coarse — hundreds per
// tick, not per request) and serializes on destruction or Flush(). Emit
// is thread-safe; the steady-clock timebase is captured at construction
// so timestamps start near zero.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace abase {

class TraceWriter {
 public:
  /// Events accumulate in memory until Flush()/destruction writes
  /// `path` as a JSON object {"traceEvents": [...]}.
  explicit TraceWriter(std::string path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since the writer was created.
  uint64_t NowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Records a complete ("ph":"X") slice on track `tid`. Thread-safe.
  void Emit(std::string name, int tid, uint64_t ts_us, uint64_t dur_us);

  /// Records an instant event (counters, tick markers). Thread-safe.
  void EmitInstant(std::string name, int tid, uint64_t ts_us);

  /// Serializes all buffered events to the output path.
  void Flush();

 private:
  struct Event {
    std::string name;
    int tid;
    uint64_t ts;
    uint64_t dur;
    bool instant;
  };

  std::string path_;
  std::chrono::steady_clock::time_point t0_;
  std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII slice: times its own lifetime on the given track. A null writer
/// disables it (the untraced fast path costs one branch).
class TraceSpan {
 public:
  TraceSpan(TraceWriter* writer, const char* name, int tid)
      : writer_(writer), name_(name), tid_(tid),
        start_(writer ? writer->NowUs() : 0) {}

  ~TraceSpan() {
    if (writer_ != nullptr) {
      writer_->Emit(name_, tid_, start_, writer_->NowUs() - start_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceWriter* writer_;
  const char* name_;
  int tid_;
  uint64_t start_;
};

}  // namespace abase
