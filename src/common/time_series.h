// Uniformly-sampled time series container used throughout the forecasting
// and rescheduling modules (Section 5 of the paper): 30-day usage histories
// downsampled to 1-hour points, 24-point hour-of-day load vectors, etc.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace abase {

/// A uniformly-spaced series of doubles with a step size in hours.
/// Index 0 is the oldest point.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values, double step_hours = 1.0)
      : values_(std::move(values)), step_hours_(step_hours) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double step_hours() const { return step_hours_; }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  void Append(double v) { values_.push_back(v); }

  double Max() const;
  double Min() const;
  double Mean() const;
  double Stddev() const;

  /// Last `n` points as a new series (whole series if n >= size).
  TimeSeries Tail(size_t n) const;

  /// Downsamples by an integer factor, aggregating each block with max
  /// (the paper aggregates hourly loads by max within hour-of-day).
  TimeSeries DownsampleMax(size_t factor) const;

  /// Downsamples by an integer factor using the mean of each block.
  TimeSeries DownsampleMean(size_t factor) const;

  /// Element-wise difference (this - other); series must match in size.
  Result<TimeSeries> Minus(const TimeSeries& other) const;

 private:
  std::vector<double> values_;
  double step_hours_ = 1.0;
};

/// Fixed 24-slot hour-of-day load vector (paper Section 5.3, "Load
/// Indicator"): hourly averages over a window, aggregated by max within
/// each hour-of-day slot.
struct LoadVector {
  double v[24] = {0};

  double MaxLoad() const {
    double m = v[0];
    for (int i = 1; i < 24; i++)
      if (v[i] > m) m = v[i];
    return m;
  }

  LoadVector& operator+=(const LoadVector& o) {
    for (int i = 0; i < 24; i++) v[i] += o.v[i];
    return *this;
  }
  LoadVector& operator-=(const LoadVector& o) {
    for (int i = 0; i < 24; i++) v[i] -= o.v[i];
    return *this;
  }
  friend LoadVector operator+(LoadVector a, const LoadVector& b) {
    a += b;
    return a;
  }

  /// Builds a load vector from an hourly series: slot h takes the max of
  /// all points whose hour-of-day is h.
  static LoadVector FromHourlySeries(const TimeSeries& hourly);

  /// Uniform load vector (all 24 slots equal).
  static LoadVector Constant(double value) {
    LoadVector lv;
    for (int i = 0; i < 24; i++) lv.v[i] = value;
    return lv;
  }
};

}  // namespace abase
