// EventWheel — a calendar/bucket timer wheel keyed by absolute tick.
//
// The active-set data plane (DESIGN.md "Active-set ticking") needs to
// wake tenants at a *future* tick — the next rate-schedule boundary of a
// parked workload, or the expiry tick of an abandoned tracked outcome —
// without scanning anything per tick. The wheel stores events in
// power-of-two buckets indexed by `tick & mask`; events further out than
// one wheel revolution wait in a sorted overflow map until their tick
// comes due. Scheduling is O(1) (amortized), popping a tick is
// O(events due), and an idle tick touches one empty bucket.
//
// Determinism contract: events within a tick pop in the order they were
// scheduled, and all scheduling/popping happens from serial pipeline
// sections — the wheel is not internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace abase {

template <typename T>
class EventWheel {
 public:
  /// `buckets` must be a power of two: the horizon of the wheel. Events
  /// at most `buckets - 1` ticks out land in a bucket; farther events go
  /// to the overflow map.
  explicit EventWheel(size_t buckets = 1024)
      : buckets_(buckets), mask_(buckets - 1) {
    slots_.resize(buckets_);
  }

  /// Schedules `payload` to pop at `tick`. Ticks already popped clamp
  /// forward to the next poppable tick, so no event is ever lost.
  void ScheduleAt(uint64_t tick, T payload) {
    if (tick < floor_) tick = floor_;
    if (tick - floor_ < buckets_) {
      slots_[tick & mask_].emplace_back(tick, std::move(payload));
    } else {
      overflow_[tick].push_back(std::move(payload));
    }
    size_++;
  }

  /// Pops every event due at exactly `tick`, invoking `fn(payload)` in
  /// scheduling order (bucket events first, then overflow events — an
  /// event `buckets` ticks out is necessarily scheduled before any
  /// same-tick bucket event could be, but both sources preserve their
  /// own insertion order and in practice callers sort derived id sets).
  /// Ticks must be popped in non-decreasing order.
  template <typename Fn>
  void PopDue(uint64_t tick, Fn&& fn) {
    if (tick < floor_) return;
    // Advancing more than one revolution at once would leave stale
    // events in skipped buckets; callers pop every tick, so each bucket
    // is visited before its index is reused.
    auto& bucket = slots_[tick & mask_];
    for (auto& [due, payload] : bucket) {
      if (due == tick) {
        size_--;
        fn(payload);
      } else {
        // An event scheduled for a later revolution of this bucket:
        // keep it (possible only if the caller skipped ticks).
        keep_.emplace_back(due, std::move(payload));
      }
    }
    bucket.clear();
    bucket.swap(keep_);
    keep_.clear();
    auto it = overflow_.find(tick);
    if (it != overflow_.end()) {
      for (auto& payload : it->second) {
        size_--;
        fn(payload);
      }
      overflow_.erase(it);
    }
    floor_ = tick + 1;
  }

  /// Number of pending events.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The next tick PopDue will accept (everything earlier has popped).
  uint64_t floor() const { return floor_; }

 private:
  size_t buckets_;
  size_t mask_;
  /// Each slot holds (due_tick, payload) pairs in scheduling order.
  std::vector<std::vector<std::pair<uint64_t, T>>> slots_;
  std::vector<std::pair<uint64_t, T>> keep_;
  std::map<uint64_t, std::vector<T>> overflow_;
  uint64_t floor_ = 0;
  size_t size_ = 0;
};

}  // namespace abase
