// Normalized Request Unit (RU) model — paper Section 4.1.
//
// RUs quantify a request's CPU + memory + disk consumption and are the
// currency of quotas, billing and the CPU-WFQ. The model is cache-aware:
//   RU_write = r * S_write / U           (r = replica count)
//   RU_read  = E[S_read] * (1 - E[R_hit]) / U     (estimate, for control)
// where U is the unit byte size (2 KB) and E[.] are moving averages over
// the last k requests. Reads are *charged* on the actual bytes returned;
// proxy-cache hits are never charged at all.
#pragma once

#include <cstdint>

#include "common/moving_average.h"
#include "common/types.h"

namespace abase {
namespace ru {

/// RU model constants.
struct RuOptions {
  uint64_t unit_bytes = 2048;  ///< U: bytes per RU (paper: 2KB).
  size_t window_k = 128;       ///< k: moving-average window for E[.].
  /// CPU-only fraction charged when a read is served from the DataNode
  /// cache (no disk I/O happened, but CPU and memory were consumed).
  double cache_hit_cpu_fraction = 0.2;
  /// Default assumed hit ratio before any history accumulates.
  double initial_hit_ratio = 0.0;
  /// Default assumed read size before any history accumulates.
  double initial_read_bytes = 1024;
  /// Per-entry CPU cost of a range scan, in RU: iterator advance, key
  /// comparison, and result framing per emitted entry, on top of the
  /// byte-proportional read charge.
  double scan_entry_cpu_ru = 0.01;
  /// Default assumed scan result size (bytes) before history accumulates.
  double initial_scan_bytes = 4096;
};

/// Where a read was ultimately served from; determines its charge.
enum class ReadServedBy {
  kProxyCache,     ///< Returned by the proxy; free (never reaches quota).
  kDataNodeCache,  ///< CPU/memory only.
  kDisk,           ///< Full cost.
};

/// Actual RU charge for a completed read, independent of any estimator
/// state (used node-side where the true bytes and hit status are known).
double ActualReadCharge(uint64_t bytes, bool datanode_cache_hit,
                        const RuOptions& options);

/// Actual RU charge for a completed write including replica fan-out.
double ActualWriteCharge(uint64_t bytes, int replicas,
                         const RuOptions& options);

/// Actual RU charge for one executed range-scan batch: a seek unit
/// (iterator setup — scans cost at least a point read), the
/// byte-proportional read charge over the returned payload, and a
/// per-entry CPU term. Charged entirely node-side, where entries and
/// bytes are known.
double ActualScanCharge(uint64_t entries, uint64_t bytes,
                        const RuOptions& options);

/// Per-tenant (per-table) RU estimator. Tracks the moving averages that
/// make read-cost prediction cache-aware, and computes charges.
class RuEstimator {
 public:
  explicit RuEstimator(RuOptions options = {});

  // -- Writes ---------------------------------------------------------------

  /// RU for one logical write of `value_bytes`, including the r-1 replica
  /// synchronization writes (total charge r * S/U).
  double WriteRu(uint64_t value_bytes, int replicas) const;

  // -- Reads ----------------------------------------------------------------

  /// Cache-aware *estimate* used by admission control before the read
  /// executes: E[S_read] * (1 - E[R_hit]) / U.
  double EstimateReadRu() const;

  /// Cache-blind estimate (ablation baseline): E[S_read] / U.
  double EstimateReadRuCacheBlind() const;

  /// Actual charge once the read completed. Also feeds the moving
  /// averages. Proxy hits charge 0 (and do not update E[.], since they
  /// never reached the data plane).
  double ChargeRead(uint64_t actual_bytes, ReadServedBy served_by);

  // -- Complex reads (paper: HLen / HGetAll) --------------------------------

  /// HLEN estimate: metadata-only read, one unit of CPU work scaled by
  /// the expected hash size's index footprint.
  double EstimateHLenRu() const;

  /// HGETALL decomposes into HLen + a scan of E[len] fields of E[field
  /// size] bytes each; each stage is estimated separately and summed.
  double EstimateHGetAllRu() const;

  /// Records the observed shape of a hash after a complex read executed.
  void RecordHashShape(uint64_t field_count, uint64_t total_bytes);

  /// Charge for a completed HGETALL returning `total_bytes`.
  double ChargeHGetAll(uint64_t total_bytes, ReadServedBy served_by);

  // -- Range scans ----------------------------------------------------------

  /// Admission-time estimate for a SCAN with the given limit: a seek
  /// unit plus the byte charge of the expected result (capped by the
  /// limit against the per-entry size history) plus per-entry CPU.
  /// Scan results bypass the proxy point cache's hit accounting, so the
  /// estimate is cache-blind.
  double EstimateScanRu(uint32_t limit) const;

  /// Records the observed shape of a completed scan (feeds the
  /// per-entry size history behind EstimateScanRu).
  void RecordScanShape(uint64_t entries, uint64_t total_bytes);

  // -- Observed state --------------------------------------------------------

  double ExpectedReadBytes() const { return read_bytes_.Value(); }
  double ExpectedHitRatio() const { return hit_ratio_.Value(); }
  double ExpectedHashLen() const { return hash_len_.Value(); }
  const RuOptions& options() const { return options_; }

 private:
  double BytesToRu(double bytes) const;

  RuOptions options_;
  MovingAverage read_bytes_;  ///< E[S_read].
  MovingAverage hit_ratio_;   ///< E[R_hit] over data-plane reads.
  MovingAverage hash_len_;    ///< E[#fields] for complex reads.
  MovingAverage field_bytes_; ///< E[bytes per hash field].
  MovingAverage scan_entry_bytes_;  ///< E[bytes per scan entry].
};

}  // namespace ru
}  // namespace abase
