#include "ru/request_unit.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace ru {

double ActualReadCharge(uint64_t bytes, bool datanode_cache_hit,
                        const RuOptions& options) {
  double full = std::max(
      1.0, static_cast<double>(bytes) / static_cast<double>(options.unit_bytes));
  return datanode_cache_hit ? full * options.cache_hit_cpu_fraction : full;
}

double ActualWriteCharge(uint64_t bytes, int replicas,
                         const RuOptions& options) {
  double per_write = std::max(
      1.0, static_cast<double>(bytes) / static_cast<double>(options.unit_bytes));
  return per_write * std::max(1, replicas);
}

double ActualScanCharge(uint64_t entries, uint64_t bytes,
                        const RuOptions& options) {
  double byte_ru = std::max(
      1.0, static_cast<double>(bytes) / static_cast<double>(options.unit_bytes));
  return 1.0 + byte_ru +
         static_cast<double>(entries) * options.scan_entry_cpu_ru;
}

RuEstimator::RuEstimator(RuOptions options)
    : options_(options),
      read_bytes_(options.window_k, options.initial_read_bytes),
      hit_ratio_(options.window_k, options.initial_hit_ratio),
      hash_len_(options.window_k, 8.0),
      field_bytes_(options.window_k, 64.0),
      scan_entry_bytes_(options.window_k,
                        options.initial_scan_bytes / 16.0) {}

double RuEstimator::BytesToRu(double bytes) const {
  // Minimum one RU per unit touched: even a tiny request costs a lookup.
  return std::max(1.0, bytes / static_cast<double>(options_.unit_bytes));
}

double RuEstimator::WriteRu(uint64_t value_bytes, int replicas) const {
  // One direct write plus (r-1) replica synchronizations, each S/U.
  double per_write = BytesToRu(static_cast<double>(value_bytes));
  return per_write * std::max(1, replicas);
}

double RuEstimator::EstimateReadRu() const {
  double expected_miss = 1.0 - hit_ratio_.Value();
  // Floor at a small CPU-only cost: a 100%-hit workload still burns CPU.
  double ru = BytesToRu(read_bytes_.Value()) * expected_miss;
  return std::max(ru, options_.cache_hit_cpu_fraction);
}

double RuEstimator::EstimateReadRuCacheBlind() const {
  return BytesToRu(read_bytes_.Value());
}

double RuEstimator::ChargeRead(uint64_t actual_bytes,
                               ReadServedBy served_by) {
  if (served_by == ReadServedBy::kProxyCache) {
    // Never reached the data plane: no charge, no estimator update (the
    // data-plane hit ratio must reflect data-plane traffic only).
    return 0.0;
  }
  bool hit = served_by == ReadServedBy::kDataNodeCache;
  read_bytes_.Add(static_cast<double>(actual_bytes));
  hit_ratio_.Add(hit ? 1.0 : 0.0);
  double full = BytesToRu(static_cast<double>(actual_bytes));
  return hit ? full * options_.cache_hit_cpu_fraction : full;
}

double RuEstimator::EstimateHLenRu() const {
  // Metadata-only: reads the hash header, independent of field count.
  return 1.0;
}

double RuEstimator::EstimateHGetAllRu() const {
  // Decomposition per the paper: HLen stage + scan stage, estimated
  // separately. The scan touches E[len] fields of E[field bytes] each.
  double scan_bytes = hash_len_.Value() * field_bytes_.Value();
  double expected_miss = 1.0 - hit_ratio_.Value();
  double scan_ru =
      std::max(BytesToRu(scan_bytes) * expected_miss,
               options_.cache_hit_cpu_fraction);
  return EstimateHLenRu() + scan_ru;
}

void RuEstimator::RecordHashShape(uint64_t field_count,
                                  uint64_t total_bytes) {
  hash_len_.Add(static_cast<double>(field_count));
  if (field_count > 0) {
    field_bytes_.Add(static_cast<double>(total_bytes) /
                     static_cast<double>(field_count));
  }
}

double RuEstimator::ChargeHGetAll(uint64_t total_bytes,
                                  ReadServedBy served_by) {
  // HLen stage always costs its unit; the scan stage is charged like a
  // read of the returned payload.
  if (served_by == ReadServedBy::kProxyCache) return 0.0;
  return EstimateHLenRu() + ChargeRead(total_bytes, served_by);
}

double RuEstimator::EstimateScanRu(uint32_t limit) const {
  const double n = static_cast<double>(std::max<uint32_t>(1, limit));
  const double expected_bytes = n * scan_entry_bytes_.Value();
  return 1.0 + BytesToRu(expected_bytes) + n * options_.scan_entry_cpu_ru;
}

void RuEstimator::RecordScanShape(uint64_t entries, uint64_t total_bytes) {
  if (entries > 0) {
    scan_entry_bytes_.Add(static_cast<double>(total_bytes) /
                          static_cast<double>(entries));
  }
}

}  // namespace ru
}  // namespace abase
