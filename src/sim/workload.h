// Synthetic tenant workload generation — the repo's stand-in for
// ByteDance's production traffic (paper Section 2). A WorkloadProfile
// captures the statistical shape of one business line (throughput,
// read ratio, KV size, key skew, TTL, traffic dynamics); the generator
// turns it into a deterministic per-tick stream of client requests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/time_series.h"
#include "common/types.h"
#include "node/request.h"

namespace abase {
namespace sim {

/// Key-popularity distribution.
enum class KeyDist {
  kUniform,
  kZipfian,  ///< YCSB-style skew.
  kHotSpot,  ///< A small hot set takes a fixed share (hot-key events).
};

/// Statistical description of one tenant's workload.
struct WorkloadProfile {
  // Traffic volume.
  double base_qps = 100;
  /// Sinusoidal diurnal swing as a fraction of base (0 = flat).
  double diurnal_amplitude = 0;
  double diurnal_period_hours = 24;
  /// Multiplicative traffic growth per simulated day (0 = none).
  double trend_per_day = 0;
  /// Scripted burst windows (absolute sim time).
  struct Burst {
    Micros start = 0;
    Micros end = 0;
    double multiplier = 1.0;
  };
  std::vector<Burst> bursts;

  /// Time-varying rate schedule: when non-empty, the schedule point for
  /// the current sim time REPLACES base_qps as the base traffic rate
  /// (trend, diurnal factor, and bursts still multiply on top). One
  /// point covers `rate_schedule_step` micros of sim time; the schedule
  /// wraps at the end, so a 24-point hourly series is a repeating
  /// diurnal day. Build one from a SeriesSpec via GenerateSeries — the
  /// same generator that fabricates the autoscaler's usage histories —
  /// so the control loop has real load swings to chase.
  TimeSeries rate_schedule;
  Micros rate_schedule_step = kMicrosPerHour;

  // Operation mix.
  double read_ratio = 1.0;      ///< Fraction of ops that read.
  /// Fraction of reads issued with Consistency::kEventual (replica
  /// reads, possibly stale by the replication lag). 0 keeps every read
  /// on the primary — and draws nothing from the RNG, so enabling this
  /// on one tenant never perturbs another tenant's stream.
  double eventual_read_fraction = 0;
  double hash_op_fraction = 0;  ///< Fraction of ops on hash tables.
  uint32_t hash_fields = 8;     ///< Fields per hash key.

  // Key space.
  uint64_t num_keys = 10000;
  KeyDist key_dist = KeyDist::kZipfian;
  double zipf_theta = 0.9;
  double hot_fraction = 0.001;  ///< kHotSpot: fraction of keys that are hot.
  double hot_share = 0.9;       ///< kHotSpot: traffic share of the hot set.

  // Range scans (the scan data path).
  /// Fraction of non-hash READ ops issued as prefix scans. 0 = none —
  /// and no extra RNG draws, so every pre-scan stream (and its golden
  /// digest) is bit-identical.
  double scan_fraction = 0;
  /// Entry cap each generated scan carries (0 = unlimited).
  uint32_t scan_limit = 100;
  /// Scan locality: when > 0, keys gain a group segment
  /// ("t<T>:g<G>:k<I>" with G = I mod groups) and each scan targets one
  /// group's prefix — the group is derived from a normally-sampled key
  /// index, so scan popularity follows the key-distribution skew. 0
  /// keeps the seed key shape ("t<T>:k<I>", matching PreloadKeys) and
  /// scans the whole tenant prefix instead.
  uint32_t scan_prefix_groups = 0;

  // Values.
  uint64_t value_bytes = 1024;
  double value_sigma = 0.3;  ///< Log-normal spread around value_bytes.
  Micros ttl = 0;            ///< 0 = no TTL.
};

/// Deterministic request stream for one tenant.
class WorkloadGenerator {
 public:
  WorkloadGenerator(TenantId tenant, WorkloadProfile profile, uint64_t seed);

  /// Requests for one tick of length `tick_len` at sim time `now`.
  std::vector<ClientRequest> Tick(Micros now, Micros tick_len);

  /// In-place variant: overwrites `out` with this tick's requests,
  /// recycling its slots (and the key/value string capacity inside
  /// them) so steady-state generation allocates nothing. The produced
  /// stream — including the RNG draw order — is identical to the
  /// returning overload.
  void Tick(Micros now, Micros tick_len, std::vector<ClientRequest>& out);

  /// Expected (pre-noise) QPS at time `now` given the traffic shape.
  double ExpectedQps(Micros now) const;

  /// Mutable profile for scenario scripting (e.g., Figure 5 schedules
  /// flip skew or traffic mid-run).
  WorkloadProfile& profile() { return profile_; }
  const WorkloadProfile& profile() const { return profile_; }

  uint64_t requests_generated() const { return next_req_id_; }

 private:
  void KeyInto(uint64_t index, std::string& out) const;
  /// Scan target for the group owning `index`: "t<T>:g<G>:" when
  /// scan_prefix_groups > 0, else the tenant-wide prefix "t<T>:".
  void ScanPrefixInto(uint64_t index, std::string& out) const;
  uint64_t SampleKeyIndex();
  void MakeValueInto(std::string& out);

  TenantId tenant_;
  WorkloadProfile profile_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  uint64_t next_req_id_ = 1;
};

/// Specification of a synthetic hourly metric series (usage history for
/// the forecasting / autoscaling experiments).
struct SeriesSpec {
  size_t hours = 30 * 24;
  double base = 1000;
  double trend_per_day = 0;  ///< Additive slope per day.
  struct Season {
    double period_hours = 24;
    double amplitude = 0;  ///< Absolute amplitude.
  };
  std::vector<Season> seasons;
  double noise_sigma = 0;  ///< Gaussian noise, absolute.
  struct SeriesBurst {
    size_t at_hour = 0;
    size_t duration_hours = 1;
    double add = 0;
  };
  std::vector<SeriesBurst> bursts;
  /// Optional level shift (trend change): multiply everything after it.
  size_t level_shift_at_hour = 0;  ///< 0 = none.
  double level_shift_factor = 1.0;
};

/// Generates the series described by `spec` (deterministic given rng).
TimeSeries GenerateSeries(const SeriesSpec& spec, Rng& rng);

}  // namespace sim
}  // namespace abase
