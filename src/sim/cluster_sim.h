// ClusterSim — the deterministic discrete-time cluster that stands in for
// ByteDance's production fleet (DESIGN.md substitution table).
//
// Each one-second tick runs the eight-stage request pipeline
// (sim/pipeline.h):
//
//   Fault -> Generate -> ProxyAdmit -> Route -> NodeSchedule
//         -> Replicate -> Settle -> Control
//
//   1. Fault: queued FailNode/RecoverNode events land; failover
//      promotion, recovery catch-up (real log-delta resync), and
//      executed re-replication copies advance;
//   2. Generate: every tenant's workload generator emits client requests
//      (plus externally injected ones);
//   3. ProxyAdmit: the limited fan-out router picks a proxy; the proxy
//      serves from its AU-LRU cache, throttles against its quota, or
//      forwards (background cache-refresh fetches ride along);
//   4. Route: forwarded requests reach the primary DataNode of their
//      partition (eventual-consistency reads round-robin across alive
//      replicas) and pass partition-quota admission into the dual-layer
//      WFQ;
//   5. NodeSchedule: every DataNode runs its scheduling tick — through
//      the data-plane executor, which may fan nodes out across worker
//      threads (SimOptions::data_plane_workers); responses merge back in
//      node-id order so results are bit-identical to a serial run;
//   6. Replicate: each partition's primary ships its acknowledged write
//      stream (delayed by SimOptions::replication_lag_ticks) to the
//      replica engines, per-node batches applied in node-id order;
//   7. Settle: responses flow back to the proxies (cache fill + quota
//      settlement) and into tenant metrics; every `meta_report_interval`
//      ticks, aggregate proxy traffic is reported to the MetaServer,
//      which issues clamp directives;
//   8. Control: the closed serverless loop — settled RU rolls into
//      hourly usage series, the per-tenant autoscalers (predictive
//      Algorithm 1 or the reactive baseline) scale quotas through the
//      MetaServer, online partition splits stream real key ranges out of
//      the parent primaries and cut over atomically, and the
//      rescheduler's planned migrations execute as throttled background
//      copies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "autoscale/autoscaler.h"
#include "common/clock.h"
#include "common/event_wheel.h"
#include "common/executor.h"
#include "common/flat_map.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/time_series.h"
#include "common/trace.h"
#include "common/types.h"
#include "latency/gray_detector.h"
#include "latency/hedge.h"
#include "latency/options.h"
#include "meta/meta_server.h"
#include "node/data_node.h"
#include "proxy/fanout_router.h"
#include "proxy/proxy.h"
#include "resched/pool_model.h"
#include "resched/rescheduler.h"
#include "sim/pipeline.h"
#include "sim/request_context.h"
#include "sim/workload.h"

namespace abase {
namespace sim {

/// What a split cutover does to the tenant's proxy content stores. A
/// cutover changes the partition set a cached scan was merged across;
/// production systems invalidate conservatively. The prefix-tree store
/// makes the surgical option cheap: scans drop in O(scan-bearing
/// subtree) while point entries — whose key->value mapping a split never
/// changes — keep serving.
enum class ProxyInvalidationMode {
  /// Seed behavior: no cutover invalidation (golden digests unchanged).
  kNone = 0,
  /// Conservative baseline: drop the whole content store at cutover.
  kFullFlush,
  /// Scan-only invalidation: InvalidateScans() — point entries survive.
  kPrefixSubtree,
};

/// Cluster-wide simulation options.
struct SimOptions {
  uint64_t seed = 42;
  node::DataNodeOptions node;
  proxy::ProxyOptions proxy;
  Micros tick = kMicrosPerSecond;
  int meta_report_interval_ticks = 5;
  /// Worker threads for the parallel pipeline stages. 1 = the serial
  /// reference executor; N > 1 = a work-stealing MorselExecutor pool of
  /// N (results are bit-identical either way).
  int data_plane_workers = 1;
  /// When non-empty, the simulator writes a Chrome-trace-format JSON
  /// profile of every tick here (per-stage and per-morsel slices; open
  /// in ui.perfetto.dev). Tracing is off when empty — the hot path pays
  /// one branch.
  std::string trace_path;
  /// Tracked outcomes that no caller collects (via TakeOutcome or a
  /// subscription) are dropped after this many ticks, so abandoned
  /// requests cannot grow the outcome table forever during long async
  /// runs. 0 keeps them indefinitely.
  int outcome_ttl_ticks = 256;
  /// Failure-detection delay: ticks between a FailNode taking effect and
  /// the MetaServer promoting surviving replicas to primary. 0 promotes
  /// within the same tick the failure lands.
  int failover_detection_ticks = 1;
  /// Default catch-up duration of a recovering node: ticks spent
  /// replaying its WAL before it rejoins and takes its primaries back
  /// (RecoverNode's catch_up_ticks = -1 uses this).
  int recovery_catch_up_ticks = 2;
  /// Asynchronous replication lag of the per-partition primary->replica
  /// streams, in ticks: each tick's Replicate step ships the writes the
  /// primary acknowledged this many ticks ago (0 = replicas apply every
  /// acknowledged write within the tick it was acknowledged, so a
  /// primary kill loses zero acked writes). The lost-write window at
  /// failover grows with this lag.
  int replication_lag_ticks = 0;
  /// Grace period before a planned re-replication target (from
  /// PromoteFailover) starts copying: if the failed node begins
  /// recovering within this many ticks the rebuild is cancelled — its
  /// own log catch-up is cheaper than a full copy.
  int re_replication_delay_ticks = 8;
  /// Modeled copy bandwidth of an executed re-replication: bytes of
  /// partition state transferred per tick (sets the rebuild duration,
  /// minimum one tick).
  uint64_t re_replication_bytes_per_tick = 64ull << 20;
  /// Modeled catch-up bandwidth of a recovering node replaying the
  /// primaries' log deltas. When RecoverNode's catch_up_ticks < 0, the
  /// catch-up duration is max(recovery_catch_up_ticks,
  /// ceil(delta_bytes / this)).
  uint64_t catch_up_bytes_per_tick = 64ull << 20;
  /// Closed-loop control plane (the Control pipeline stage). Every this
  /// many ticks the per-tenant autoscalers run over the rolled-up usage
  /// history and apply their decisions through MetaServer::
  /// SetTenantQuota. 0 disables the autoscaling loop (usage is not
  /// accumulated either); staged splits and queued migrations still
  /// advance every tick.
  int control_interval_ticks = 0;
  /// Sim ticks per control-plane "hour": the roll-up granularity of the
  /// usage TimeSeries the forecaster consumes, and the timebase of the
  /// scale-down cooldown. 3600 matches wall-clock (1 s ticks);
  /// experiments compress it so 30-day histories fit a short run.
  int control_ticks_per_hour = 3600;
  /// Every this many ticks the Control stage snapshots each pool into
  /// the rescheduler's load model and enqueues the planned migrations as
  /// throttled background copies. 0 disables background rescheduling.
  int resched_interval_ticks = 0;
  /// Modeled copy bandwidth of a background migration: a queued
  /// replica move transfers this many bytes of engine state per tick
  /// before MetaServer::MigrateReplica installs it.
  uint64_t migration_bytes_per_tick = 32ull << 20;
  /// Modeled streaming bandwidth of an online partition split: bytes of
  /// re-hashed key range exported from each parent primary per tick.
  uint64_t split_bytes_per_tick = 32ull << 20;
  /// Sub-tick latency subsystem (latency/options.h): AZ/RTT classes,
  /// hedged replica reads, gray-failure detection, SLO accounting.
  /// Disabled by default — the data plane then settles exactly as the
  /// seed did (golden digests unchanged). Enable together with
  /// node.service_time for non-degenerate service times.
  latency::LatencyOptions latency;
  /// Legacy dense ticking: every per-tenant pipeline loop walks the full
  /// tenant map every tick, as the seed did. Off by default — the
  /// active-set data plane (DESIGN.md "Active-set ticking") iterates
  /// only tenants with work due, which is bit-identical but makes tick
  /// cost proportional to active tenants instead of registered tenants.
  /// The flag exists for A/B digests and perf comparison.
  bool dense_tick = false;
  /// Proxy content-store treatment at online split cutovers (the scan
  /// cache benchmark's A/B switch). kNone by default.
  ProxyInvalidationMode split_invalidation = ProxyInvalidationMode::kNone;
  /// Striped O(replicas) initial placement in the MetaServer: replica r
  /// of partition p lands at pool index (tenant + p*replicas + r) mod
  /// pool size (advancing past unplaceable nodes) instead of the
  /// O(pool) least-loaded scan. Registration of a million tenants is
  /// quadratic without it. Off by default — placement quality matters
  /// more than registration speed at normal scale.
  bool striped_placement = false;
};

/// Per-tenant autoscaling mode for the closed control loop.
enum class AutoscaleMode {
  kDisabled = 0,
  /// Figure 8b baseline: scale up only after current usage crosses the
  /// threshold (users already felt the pressure).
  kReactive,
  /// Algorithm 1: forecast the horizon from the rolled-up history and
  /// scale ahead of predicted demand.
  kPredictive,
};

/// Per-tenant metrics for one tick.
struct TenantTickMetrics {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;      ///< Data-plane errors + proxy throttles.
  uint64_t throttled = 0;   ///< Subset of errors: quota rejections.
  uint64_t unavailable = 0; ///< Subset of errors: failed/absent primaries.
  /// Forwards that observed a stale routing epoch and chased a redirect
  /// (refresh + retry). Failover cost made visible: without the cached
  /// tables this was hidden by omniscient per-request routing.
  uint64_t redirects = 0;
  /// Reads served by a non-primary replica (Consistency::kEventual).
  uint64_t replica_reads = 0;
  /// Summed staleness of those replica reads: how many applied writes
  /// the serving replica trailed the partition's primary by at execution
  /// time. replica_lag_sum / replica_reads = mean staleness in writes.
  uint64_t replica_lag_sum = 0;
  uint64_t proxy_hits = 0;
  uint64_t node_cache_hits = 0;
  uint64_t disk_reads = 0;
  uint64_t reads_completed = 0;
  double ru_charged = 0;
  double latency_sum = 0;  ///< Micros, over ok responses.
  Micros latency_max = 0;
  uint64_t latency_count = 0;
  // -- Latency subsystem (all zero while SimOptions::latency is off) --------
  uint64_t hedged_reads = 0;  ///< Eventual reads whose hedge was armed.
  uint64_t hedge_wins = 0;    ///< Hedges where the alternate won the race.
  /// Settled requests whose client latency exceeded the tenant's SLO
  /// target this tick (the burn counter).
  uint64_t slo_violations = 0;
  /// Client-latency percentiles of this tick, in micros, from the
  /// per-tick histogram (0 when the subsystem is off or the tick served
  /// nothing).
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;

  double SuccessQps(double tick_seconds) const {
    return static_cast<double>(ok) / tick_seconds;
  }
  double ErrorQps(double tick_seconds) const {
    return static_cast<double>(errors) / tick_seconds;
  }
  double MeanLatency() const {
    return latency_count == 0 ? 0 : latency_sum /
                                        static_cast<double>(latency_count);
  }
  /// Combined cache hit ratio over completed reads (proxy + DataNode), the
  /// quantity the paper plots in Figure 5.
  double CacheHitRatio() const {
    uint64_t reads = proxy_hits + reads_completed;
    return reads == 0 ? 0
                      : static_cast<double>(proxy_hits + node_cache_hits) /
                            static_cast<double>(reads);
  }

  /// Folds a per-worker admission scratch into this row. Bit-exactness
  /// contract: the merge is only FP-exact when `this` holds +0.0 in the
  /// double fields the scratch populated (latency_sum) — the admission
  /// pass merges before any settle-path double lands, so the sum
  /// scratch + 0.0 reproduces the serial accumulation bit for bit.
  /// Percentile fields are seal-time outputs, never accumulated.
  void MergeFrom(const TenantTickMetrics& o) {
    issued += o.issued;
    ok += o.ok;
    errors += o.errors;
    throttled += o.throttled;
    unavailable += o.unavailable;
    redirects += o.redirects;
    replica_reads += o.replica_reads;
    replica_lag_sum += o.replica_lag_sum;
    proxy_hits += o.proxy_hits;
    node_cache_hits += o.node_cache_hits;
    disk_reads += o.disk_reads;
    reads_completed += o.reads_completed;
    ru_charged += o.ru_charged;
    latency_sum += o.latency_sum;
    if (o.latency_max > latency_max) latency_max = o.latency_max;
    latency_count += o.latency_count;
    hedged_reads += o.hedged_reads;
    hedge_wins += o.hedge_wins;
    slo_violations += o.slo_violations;
  }
};

/// One simulated tenant: proxies + router + workload + metrics.
struct TenantRuntime {
  meta::TenantConfig config;
  proxy::RoutingMode routing_mode = proxy::RoutingMode::kLimitedFanout;
  std::unique_ptr<proxy::LimitedFanoutRouter> router;
  /// Private RNG stream for this tenant's fan-out router (derived from
  /// the sim seed). Tenants admit traffic concurrently under the
  /// parallel executor, so they must not share the sim-wide RNG.
  Rng router_rng{42};
  std::vector<std::unique_ptr<proxy::Proxy>> proxies;
  /// Epoch-stamped routing cache: the replica set per partition (index 0
  /// = primary), refreshed only when a forward proves unroutable under a
  /// stale epoch (the redirect chase in RouteStage). The proxy plane
  /// never consults the MetaServer per request. Primary reads and writes
  /// resolve entry 0; eventual reads round-robin over the alive entries.
  uint64_t route_epoch = 0;
  std::vector<std::vector<NodeId>> route_table;
  /// Round-robin cursor for eventual-consistency replica reads (advanced
  /// only in RouteStage's serial resolve pass).
  uint64_t replica_read_rr = 0;
  /// Eventual reads resolved while gray demotion is active; drives the
  /// canary-probe cadence (GrayDetectorOptions::probe_interval).
  uint64_t eventual_read_seq = 0;
  std::unique_ptr<WorkloadGenerator> workload;
  TenantTickMetrics current;
  std::vector<TenantTickMetrics> history;
  Histogram latency_hist{1e9};  ///< Cumulative client latency (us).
  /// Per-tick client-latency histogram (latency subsystem): filled by
  /// the timed Settle path, folded into latency_p50/p95/p99 and reset by
  /// FinalizeTickMetrics. Untouched while the subsystem is off.
  Histogram tick_latency_hist{1e9};
  /// Per-tenant hedged-read state (threshold histogram + frozen
  /// threshold); policy copied from SimOptions::latency.hedge.
  latency::Hedger hedger;
  /// Resolved SLO target: TenantConfig override or the cluster default.
  Micros slo_target = 0;
  uint64_t value_bytes_sum = 0;
  uint64_t value_bytes_count = 0;

  // -- Closed-loop control state (the Control stage) -------------------------

  AutoscaleMode autoscale_mode = AutoscaleMode::kDisabled;
  autoscale::ScalingPolicy scaling_policy;
  forecast::EnsembleOptions forecast_options;
  autoscale::ReactiveScaler reactive_scaler;
  /// Hourly settled RU/s history the forecaster consumes (seeded points
  /// + one appended per completed control-plane hour).
  TimeSeries usage_history;
  /// Matching hourly tenant-quota records (denoising input).
  TimeSeries quota_history;
  double hour_ru_accum = 0;  ///< Settled RU since the hour opened.
  int hour_ticks = 0;        ///< Ticks into the current hour.
  /// EWMA of settled RU/s — the reactive baseline's "current usage".
  double ru_rate_ewma = 0;
  /// Control-plane-time stamp of the last applied scale-down (-1 =
  /// never). Kept in the compressed-hour timebase so the 7-day cooldown
  /// means 7 control-plane days regardless of tick compression.
  Micros last_scale_down_control = -1;
  uint64_t scale_ups = 0;    ///< Applied scale-up decisions.
  uint64_t scale_downs = 0;  ///< Applied scale-down decisions.
  uint64_t splits_started = 0;  ///< Staged splits the loop initiated.

  // -- Active-set bookkeeping (DESIGN.md "Active-set ticking") ---------------

  /// tick_count_ at AddTenant: `history` logically starts here, so the
  /// sparse invariant is history.size() == tick_count_ - created_at_tick
  /// once lazily backfilled with all-zero entries for untouched ticks.
  uint64_t created_at_tick = 0;
  /// Generator parked: the workload's rate-schedule cell is exactly 0
  /// at the current tick, so Generate skips it entirely (a zero-rate
  /// WorkloadGenerator::Tick consumes no RNG and emits nothing — the
  /// skip is bit-identical). Woken by the generator wheel at the next
  /// schedule boundary, or by SetWorkload/MutableWorkload.
  bool gen_parked = false;
  /// Park generation: a wheel wake-up whose recorded seq no longer
  /// matches is stale (the tenant unparked and re-parked meanwhile).
  uint64_t wake_seq = 0;
  /// Touch stamps against ClusterSim::touch_epoch_ / report_epoch_:
  /// dedupe membership in the per-tick / per-report-interval touched
  /// ledgers without per-tenant set lookups.
  uint64_t touch_stamp = 0;
  uint64_t report_stamp = 0;
  /// Fused admit/route cutoff for the current tick: stamped with
  /// ClusterSim::touch_epoch_ when a scan is admitted. Forwards admitted
  /// after a scan (in this tenant's generated batch *or* its injected
  /// batch) must route in the serial walk — a scan's fan-out can refresh
  /// the routing table and advance cursors mid-stream, and fusing a
  /// later forward would resolve it against pre-scan state.
  uint64_t route_fuse_stop_stamp = 0;
  /// Control-plane fold cursor: the tick_count_ through which this
  /// tenant's hour accumulator / RU EWMA have been folded. Untouched
  /// ticks fold as ru=0 (their metrics rows are all-zero), so catch-up
  /// is exact.
  uint64_t ctrl_synced_tick = 0;
};

/// The cluster.
class ClusterSim {
 public:
  explicit ClusterSim(SimOptions options = {});

  // -- Topology ---------------------------------------------------------------

  /// Creates `num_nodes` DataNodes and registers them as a pool.
  PoolId AddPool(size_t num_nodes);
  PoolId AddPool(size_t num_nodes, const node::DataNodeOptions& node_options);

  /// Creates a tenant (metadata + replicas + proxy fleet).
  Status AddTenant(const meta::TenantConfig& config, PoolId pool,
                   proxy::RoutingMode mode =
                       proxy::RoutingMode::kLimitedFanout);

  /// Attaches a workload generator to a tenant.
  void SetWorkload(TenantId tenant, const WorkloadProfile& profile);

  /// Bulk-loads `num_keys` values straight into the tenant's primary
  /// engines — the dataset an onboarded production tenant already has.
  /// Key naming matches WorkloadGenerator ("t<tenant>:k<index>").
  void PreloadKeys(TenantId tenant, uint64_t num_keys, uint64_t value_bytes,
                   double value_sigma = 0.3);

  /// Mutable workload profile for scenario scripting mid-run.
  WorkloadProfile* MutableWorkload(TenantId tenant);

  // -- Execution ----------------------------------------------------------------

  void Tick();
  void RunTicks(size_t n);

  /// Injects one client request ahead of the next tick (tests and the
  /// synchronous abase::Client facade).
  void InjectRequest(const ClientRequest& req);

  /// Final outcome of a tracked request (see ClientRequest::track_outcome).
  /// Defined in request_context.h; aliased here for existing callers.
  using ClientOutcome = sim::ClientOutcome;

  /// Retrieves (and removes) the outcome of a tracked request, if it has
  /// completed.
  std::optional<ClientOutcome> TakeOutcome(uint64_t req_id);

  /// Invoked when a subscribed request's outcome settles, from the serial
  /// sections of the tick (the injected-admission tail of ProxyAdmit for
  /// proxy-local results, Route for routing failures, Settle for
  /// data-plane responses) — never from a parallel region.
  using OutcomeCallback =
      std::function<void(uint64_t req_id, ClientOutcome outcome)>;

  /// One-shot completion subscription for a tracked request: instead of
  /// parking the outcome in the table for TakeOutcome, the simulator
  /// hands it to `cb` the moment it settles. If the outcome already
  /// settled, `cb` fires immediately. This is the push half of the
  /// completion model behind abase::Cluster::Step()/Drain().
  void SubscribeOutcome(uint64_t req_id, OutcomeCallback cb);

  /// Cancels a pending subscription. Returns false if `req_id` had none
  /// (already delivered or never subscribed).
  bool UnsubscribeOutcome(uint64_t req_id);

  /// Uncollected tracked outcomes currently parked for TakeOutcome.
  size_t TrackedOutcomeCount() const { return outcomes_.size(); }

  /// Pending outcome subscriptions (requests submitted but not settled).
  size_t OutcomeSubscriptionCount() const { return subscriptions_.size(); }

  /// Swaps the data-plane executor: 1 worker = serial reference
  /// executor, N > 1 = work-stealing MorselExecutor pool. Safe between
  /// ticks.
  void SetDataPlaneWorkers(int workers);

  // -- Fault injection ------------------------------------------------------------

  /// Crashes a node, effective at the next tick boundary (the Fault
  /// stage): its queued and in-flight work is dropped and every stranded
  /// request resolves Unavailable through the normal outcome path; after
  /// SimOptions::failover_detection_ticks the MetaServer promotes
  /// surviving replicas and bumps the routing epoch.
  void FailNode(NodeId node);

  /// Starts recovery of a failed node at the next tick boundary: its
  /// engines replay their WALs, then the node spends `catch_up_ticks`
  /// (< 0 = SimOptions::recovery_catch_up_ticks) catching up before it
  /// rejoins and fails back to primary for the partitions it led.
  void RecoverNode(NodeId node, int catch_up_ticks = -1);

  /// Nodes currently not serving (failed or recovering).
  size_t DownNodeCount() const;

  // -- Gray failures (latency subsystem) -----------------------------------

  /// Injects a gray failure: the node stays alive and keeps answering,
  /// but every served request is `factor` times slower. 1.0 restores
  /// full health. Effective immediately (call between ticks); the gray
  /// detector notices through the latency signal alone — there is no
  /// crash event for the failure detector to see.
  void DegradeNode(NodeId node, double factor);

  /// Whether the gray detector currently flags `node` as slow.
  bool IsNodeGray(NodeId node) const { return gray_detector_.IsGray(node); }

  /// Nodes currently flagged gray.
  size_t GrayNodeCount() const { return gray_detector_.GrayCount(); }

  /// The gray detector (EWMAs, fleet median — for tests and benches).
  const latency::GrayFailureDetector& gray_detector() const {
    return gray_detector_;
  }

  /// SLO burn rate of the tenant over the last `window_ticks` ticks of
  /// settled history: (violations / settled) / (1 - slo_objective).
  /// 1.0 = burning error budget exactly at the objective's rate; above
  /// 1.0 the tenant will exhaust its budget early. 0 when idle.
  double SloBurnRate(TenantId tenant, size_t window_ticks) const;

  /// Report of the most recent failover promotion (re-replication plan,
  /// promoted-primary count, lost-write window), if any has happened.
  /// `replicas_rebuilt_executed` is updated in place as the Fault stage
  /// completes the planned copies.
  const std::optional<meta::RecoveryReport>& LastFailoverReport() const {
    return last_failover_report_;
  }

  /// Re-replication copies executed so far (planned targets whose
  /// partition state the Fault stage actually placed).
  uint64_t ExecutedRebuildCount() const { return executed_rebuilds_; }

  /// Re-replication copies currently counting down in the Fault stage.
  size_t PendingRebuildCount() const { return pending_rebuilds_.size(); }

  /// Current apply lag of (tenant, partition)'s replication stream, in
  /// records: primary applied sequence minus the slowest alive replica's
  /// applied sequence (0 when fully caught up or unreplicated).
  uint64_t ReplicationLag(TenantId tenant, PartitionId partition);

  // -- Closed-loop control plane ----------------------------------------------
  //
  // The Control pipeline stage closes the paper's serverless loop every
  // SimOptions::control_interval_ticks: settled RU rolls into an hourly
  // TimeSeries per tenant, the per-tenant scaler (Algorithm 1 predictive
  // forecast, or the reactive threshold baseline) applies its decision
  // through MetaServer::SetTenantQuota, an over-UP partition quota
  // stages an *online* split (children prepared dark, re-hashed keys
  // streamed out of the parent primaries at split_bytes_per_tick, one
  // atomic epoch-bumped cutover), and every resched_interval_ticks the
  // rescheduler's planned migrations execute as background copies
  // throttled at migration_bytes_per_tick.

  /// Selects the tenant's autoscaling mode and policy for the control
  /// loop (no-op for unknown tenants).
  void EnableAutoscale(TenantId tenant, AutoscaleMode mode,
                       autoscale::ScalingPolicy policy = {},
                       forecast::EnsembleOptions forecast_options = {});

  /// Seeds the tenant's hourly usage history (e.g. a 30-day synthetic
  /// series from GenerateSeries) so the predictive scaler has a past to
  /// forecast from at sim start; the quota history is back-filled with
  /// the current quota.
  void SeedUsageHistory(TenantId tenant, const TimeSeries& usage);

  /// The tenant's rolled-up hourly usage history (nullptr if unknown).
  const TimeSeries* UsageHistory(TenantId tenant) const;

  /// Manually stages an online split for the tenant (the same staged
  /// path the control loop takes): children placed dark, streaming
  /// starts next tick. InvalidArgument if one is already in progress.
  Status StartPartitionSplit(TenantId tenant);

  /// Whether an online split (streaming or purging) is active.
  bool SplitInProgress(TenantId tenant) const {
    return active_splits_.count(tenant) > 0;
  }

  /// Online splits fully completed (cutover + parent purge done).
  uint64_t SplitsCompleted() const { return splits_completed_; }

  /// Online split cutovers performed (children installed and routable;
  /// the parent purge may still be draining).
  uint64_t SplitCutovers() const { return split_cutovers_; }

  /// Cumulative disposition of replica migrations (immediate and
  /// background), including why skipped ones were skipped.
  struct MigrationStats {
    uint64_t planned = 0;  ///< Enqueued or directly attempted.
    uint64_t applied = 0;
    uint64_t skipped = 0;
    /// Failed attempts bucketed by status code (deterministic order).
    std::map<StatusCode, uint64_t> skip_reasons;
  };
  const MigrationStats& migration_stats() const { return migration_stats_; }

  /// Background migration copies still streaming or queued.
  size_t PendingMigrationCount() const { return migration_queue_.size(); }

  // -- Experiment switches --------------------------------------------------------

  void SetProxyQuotaEnabled(TenantId tenant, bool enabled);
  void SetProxyCacheEnabled(TenantId tenant, bool enabled);
  void SetPartitionQuotaEnabled(bool enabled);  ///< All nodes.

  // -- Metrics -----------------------------------------------------------------

  const std::vector<TenantTickMetrics>& History(TenantId tenant) const;
  const TenantRuntime* Tenant(TenantId tenant) const;
  TenantRuntime* MutableTenant(TenantId tenant);

  // -- Active-set introspection (tests and benches; meaningless counts in
  //    dense mode, where the walks ignore the sets) -------------------------

  /// Tenants whose generators are not parked (the Generate walk's size).
  size_t ActiveGeneratorCount() const { return gen_active_.size(); }
  /// Tenants on the Replicate stage's active work list.
  size_t ReplActiveCount() const { return repl_active_.size(); }
  /// Tenants touched so far in the current tick's ledger.
  size_t TouchedTenantCount() const { return touched_.size(); }
  /// Pending generator wheel wake-ups (parked schedule boundaries).
  size_t PendingGeneratorWakes() const { return gen_wheel_.size(); }

  // -- Component access -----------------------------------------------------------

  SimClock& clock() { return clock_; }
  meta::MetaServer& meta() { return *meta_; }
  node::DataNode* FindNode(NodeId id);
  const std::vector<std::unique_ptr<node::DataNode>>& nodes() const {
    return nodes_;
  }
  Rng& rng() { return rng_; }
  const SimOptions& options() const { return options_; }
  Executor& executor() { return *executor_; }

  /// The per-tick stage pipeline (tests drive stages individually).
  TickPipeline& pipeline() { return *pipeline_; }

  /// Requests currently between Route and Settle (forwarded to a
  /// DataNode, response not yet delivered).
  size_t InflightCount() const { return inflight_.size(); }

  /// Fanned-out scans whose per-partition legs have not all settled.
  size_t ScanFanoutsInFlight() const { return scan_fanouts_.size(); }

  // -- Rescheduler bridge -----------------------------------------------------------

  /// Snapshots the pool into the rescheduler's load model, using each
  /// replica's RU EWMA and engine footprint as (flat) load vectors.
  resched::PoolModel BuildPoolModel(PoolId pool) const;

  /// Disposition of one attempted replica migration.
  struct MigrationOutcome {
    resched::Migration migration;
    Status status;
  };

  /// Applies planned migrations to the live topology via the MetaServer,
  /// immediately (no copy throttling — the offline/bench bridge).
  /// Returns one outcome per input migration, in order, so callers see
  /// *why* a migration was skipped instead of a silent success count;
  /// dispositions also accumulate into migration_stats().
  std::vector<MigrationOutcome> ApplyMigrations(
      const std::vector<resched::Migration>& migrations);

 private:
  friend class FaultStage;
  friend class GenerateStage;
  friend class ProxyAdmitStage;
  friend class RouteStage;
  friend class NodeScheduleStage;
  friend class ReplicateStage;
  friend class SettleStage;
  friend class ControlStage;

  /// Settles one client request that the proxy plane resolved locally
  /// (cache hit or throttle) without touching the data plane. Counter /
  /// latency-sum updates land in `m` — either rt.current directly
  /// (injected admission) or a per-worker scratch merged once per tick
  /// (generated morsels); histogram and value-size accumulators stay on
  /// `rt` (tenant-private either way). If the request tracks its
  /// outcome, the outcome is appended to `deferred` for serial
  /// publication instead of being published inline — admission may run
  /// tenant-concurrently.
  void SettleLocalProxyResult(
      TenantRuntime& rt, const ClientRequest& req,
      const proxy::ProxyHandleResult& res,
      std::vector<std::pair<uint64_t, ClientOutcome>>* deferred,
      TenantTickMetrics& m);

  /// Fused admit/route resolve, called from ProxyAdmit's per-tenant
  /// morsels for non-scan forwards admitted before any scan this tick:
  /// computes the same routing decision the Route stage's serial walk
  /// would and writes it into fwd.ctx (node / hedge_node on success,
  /// route_failed on failure — the serial walk performs failure
  /// *settlement* at the forward's position, so quota refunds and
  /// outcome publication keep their serial order). Touches only
  /// tenant-private state (cached route table, RR cursors, `m`) plus
  /// read-only node / meta state; placement is frozen between the Fault
  /// and Control stages, so morsel-time resolution sees exactly the
  /// state the serial walk would have.
  void FusedRoutePoint(TenantRuntime& rt, PendingForward& fwd,
                       TenantTickMetrics& m);

  /// Delivers a settled outcome: to its subscription callback if one is
  /// pending, otherwise into the table for TakeOutcome. Serial sections
  /// only.
  void PublishOutcome(uint64_t req_id, ClientOutcome outcome);

  /// Drops parked outcomes older than SimOptions::outcome_ttl_ticks.
  void SweepExpiredOutcomes();

  /// Timing attached to a response by the timed Settle path (nullptr on
  /// the legacy path — the latency subsystem disabled).
  struct ResponseTiming {
    Micros client_latency = 0;  ///< Virtual time incl. RTT and hedging.
    bool hedged = false;
    bool hedge_won = false;
    double extra_ru = 0;  ///< The cancelled hedge leg's RU charge.
  };

  void DeliverResponse(const NodeResponse& resp,
                       const ResponseTiming* timing = nullptr);

  /// The timed Settle path (SimOptions::latency.enabled): computes each
  /// response's virtual completion time (node service + WFQ backlog +
  /// disk + cross-AZ RTT, hedge-adjusted), delivers in (virtual_time,
  /// req_id) order, feeds the hedger/SLO/gray-detector signals, and
  /// advances the per-tenant hedge thresholds. Serial barrier section.
  /// Defined in sim/latency_settle.cc.
  void SettleWithTiming(TickContext& ctx);

  /// Applies the gray detector's pending transitions (runs in the Fault
  /// stage): routing demotion and, when configured, failover promotion /
  /// failback through the MetaServer. Defined in sim/latency_settle.cc.
  void ApplyGrayTransitions();

  /// Alternate replica for a hedged read: the first alive, non-gray
  /// replica of the partition other than `primary_leg`. Does not advance
  /// the round-robin cursor. nullptr when the placement has no second
  /// servable copy.
  node::DataNode* PickHedgeReplica(const TenantRuntime& rt, TenantId tenant,
                                   PartitionId partition,
                                   NodeId primary_leg);

  /// AZ of the proxy forwarding `ctx` (0 for unknown forwards).
  uint32_t ProxyAzOf(const RequestContext& ctx) const;

  void FinalizeTickMetrics();

  // -- Active-set machinery (DESIGN.md "Active-set ticking") ------------------

  /// Opens a tick: advances the touch epoch (rolling the touched ledger
  /// into prev_touched_) and pops the generator wheel for tenants whose
  /// parked workloads reach a rate-schedule boundary this tick.
  void BeginTick();

  /// Marks the tenant as touched this tick (and this report interval).
  /// Serial pipeline sections only. Idempotent per tick via the stamp.
  void TouchTenant(TenantId tenant, TenantRuntime& rt) {
    if (rt.touch_stamp != touch_epoch_) {
      rt.touch_stamp = touch_epoch_;
      touched_.push_back(tenant);
    }
    if (rt.report_stamp != report_epoch_) {
      rt.report_stamp = report_epoch_;
      report_touched_.push_back(tenant);
    }
  }

  /// Appends all-zero metrics rows for the tenant's untouched ticks
  /// until history.size() == `target` (an untouched tick's dense row is
  /// exactly TenantTickMetrics{}).
  static void BackfillHistoryTo(TenantRuntime& rt, uint64_t target) {
    while (rt.history.size() < target) {
      rt.history.push_back(TenantTickMetrics{});
    }
  }

  /// Backfills through the last completed tick (accessor-facing form).
  void SyncHistory(TenantRuntime& rt) const {
    BackfillHistoryTo(rt, tick_count_ - rt.created_at_tick);
  }

  /// Parks the tenant's generator (rate-schedule cell is exactly 0 at
  /// `now`): removal from gen_active_ is the caller's job (the slot
  /// build iterates the set); this schedules the wheel wake-up at the
  /// next schedule boundary, if the schedule has one.
  void ParkGenerator(TenantId tenant, TenantRuntime& rt, Micros now);

  /// Re-activates a parked (or never-activated) generator — workload
  /// (re)attachment and profile mutation hooks.
  void UnparkGenerator(TenantId tenant, TenantRuntime& rt) {
    rt.gen_parked = false;
    rt.wake_seq++;
    if (rt.workload != nullptr) gen_active_.insert(tenant);
  }

  /// Folds the tenant's control-plane usage forward through
  /// tick_count_ (catch-up over untouched ticks reads the backfilled
  /// all-zero rows, so the EWMA / hour roll-up match a dense fold).
  void SyncControlUsage(TenantId tenant, TenantRuntime& rt);

  /// Builds visit_scratch_ as the ascending-id union of the given
  /// ledgers (dense iteration order is ascending tenant id, so sparse
  /// walks over the union preserve dense ordering).
  const std::vector<TenantId>& SortedUnion(
      const std::vector<TenantId>& a, const std::vector<TenantId>& b);

  /// Rebuilds a tenant's cached routing table from the MetaServer and
  /// stamps it with the current epoch (the redirect chase; serial
  /// sections only).
  void RefreshRoutingTable(TenantRuntime& rt);

  /// Primary for `partition` according to the tenant's cached table
  /// (kInvalidNode when the table predates the partition).
  NodeId CachedPrimary(const TenantRuntime& rt, PartitionId partition) const;

  /// Resolves an eventual-consistency read against the cached table:
  /// round-robins over the partition's alive replica-hosting nodes
  /// (primary included). nullptr when no replica is routable. Serial
  /// resolve pass only (advances the tenant's round-robin cursor).
  node::DataNode* PickReplicaForRead(TenantRuntime& rt, TenantId tenant,
                                     PartitionId partition);

  /// Key of the per-partition replication-stream state.
  static uint64_t PartitionKey(TenantId tenant, PartitionId partition) {
    return (static_cast<uint64_t>(tenant) << 32) | partition;
  }

  /// Catch-up duration for a node about to start recovery, from the real
  /// deltas its replicas must replay: max(recovery_catch_up_ticks,
  /// ceil(delta_bytes / catch_up_bytes_per_tick)).
  int ComputeCatchUpTicks(NodeId node);

  /// Brings every replica hosted by a recovered node up to date from the
  /// current primaries before it rejoins: a clean prefix replays the
  /// primary's log delta; a demoted ex-primary (divergent unreplicated
  /// suffix) or a cursor behind a truncated log takes a full snapshot
  /// resync. Serial sections only (the Fault stage).
  void ResyncRecoveredNode(NodeId node);

  /// Brings one hosted replica up to the source engine's stream head:
  /// log-delta replay when its cursor is a clean retained prefix, full
  /// snapshot resync otherwise (or when `force_snapshot` — a divergent
  /// ex-primary whose acked suffix must be discarded). Serial sections
  /// only.
  void CatchUpReplica(node::DataNode* node, TenantId tenant,
                      PartitionId partition, const storage::LsmEngine& src,
                      bool force_snapshot);

  /// Resolves every in-flight request stranded on `node` as Unavailable
  /// — proxy quota refund, tenant error metrics, PublishOutcome — in
  /// req-id order. Serial sections only (the Fault stage).
  void ResolveStrandedOnNode(NodeId node);

  /// Sim-wide id space for proxy cache-refresh fetches (above all client
  /// and workload id spaces; unique across every proxy of every tenant).
  uint64_t AllocateRefreshId() { return next_refresh_id_++; }

  // -- Scan fan-out (serial sections only) ------------------------------------
  //
  // A kScan forward targets a key RANGE, not a key: hash partitioning
  // scatters a contiguous range across every partition, so the Route
  // stage expands the forward into one sub-request per partition (each
  // carrying the full limit — any single partition might hold the whole
  // answer). The legs settle independently through the normal response
  // path into a ScanFanout accumulator; when the last leg lands, the
  // parts merge into one key-ordered, deduplicated, globally-limited
  // response that settles under the base request id. All mutation
  // happens in serial pipeline sections (Route, Settle, Fault), so the
  // merge is bit-identical across worker counts.

  /// One per-partition leg's settled result.
  struct ScanPart {
    PartitionId partition = 0;
    bool arrived = false;
    Status status;
    std::string value;  ///< Framed entries (common/scan_codec.h).
    uint64_t scan_entries = 0;
    double actual_ru = 0;
    Micros latency = 0;         ///< Data-plane latency (legacy path).
    Micros client_latency = 0;  ///< Virtual time (timed path).
    ServedBy served_by = ServedBy::kNodeCpu;
  };

  /// Accumulator for one fanned-out scan, keyed by the base request id.
  struct ScanFanout {
    TenantId tenant = 0;
    size_t proxy_index = 0;
    std::string start;    ///< Inclusive range start (the client key).
    std::string end;      ///< Exclusive range end.
    uint32_t limit = 0;
    bool timed = false;   ///< Any leg settled through the timed path.
    size_t arrived = 0;
    std::vector<ScanPart> parts;  ///< Partition-id ascending.
  };

  /// Leg id -> owning accumulator (base id + slot in `parts`).
  struct ScanPartRef {
    uint64_t base_id = 0;
    uint32_t part_index = 0;
  };

  /// Expands one admitted kScan forward into per-partition sub-requests
  /// (registered in inflight_ and batched per destination node like any
  /// forward); partitions with no routable primary pre-fail their leg.
  /// If every leg pre-failed, the fan-out completes — and settles —
  /// immediately. Route stage's serial pass only.
  void RouteScanFanout(PendingForward& fwd, TenantRuntime& rt,
                       std::vector<std::vector<NodeRequest*>>& batches);

  /// Settles one leg's data-plane response into its accumulator,
  /// completing the fan-out if it was the last. Serial sections only.
  void AbsorbScanPart(const ScanPartRef& ref, const NodeResponse& resp,
                      const ResponseTiming* timing);

  /// Fails one leg without a response (stranded on a failed node).
  void FailScanPart(const ScanPartRef& ref, Status status);

  /// Merges a completed fan-out's legs — k-way by key, duplicates
  /// resolved to the larger partition id (the post-split child is
  /// authoritative while the parent purge drains), the client limit
  /// re-applied globally — and delivers the result as one synthesized
  /// response under the base id. Prefix-shaped results fill the
  /// forwarding proxy's scan cache.
  void CompleteScanFanout(uint64_t base_id);

  // -- Control stage internals (serial sections only) -------------------------

  /// Rolls the just-settled tick's RU into each tenant's hour
  /// accumulator and closes the hour on the control_ticks_per_hour
  /// boundary (appends to usage_history / quota_history).
  void AccumulateControlUsage();

  /// Runs each autoscale-enabled tenant's scaler over its history and
  /// applies the decision (quota through MetaServer::SetTenantQuota with
  /// inline splits disabled, proxy quota re-base, staged split when the
  /// partition quota exceeds UP).
  void RunAutoscalers();

  /// One tenant's scaler pass (shared by the dense and active-set walks).
  void RunAutoscalerFor(TenantId tid, TenantRuntime& rt);

  /// Current control-plane time for the tenant: completed hours (seeded
  /// + rolled) in micros, plus the fraction of the open hour.
  Micros ControlNow(const TenantRuntime& rt) const;

  /// Advances every active online split by one tick: streams up to
  /// split_bytes_per_tick of the re-hashed range out of each parent
  /// primary into the staged child engines; when every parent's
  /// snapshot is done, replays the parents' replication-log window and
  /// commits the cutover; then purges the moved keys out of the parents
  /// at the same rate.
  void AdvanceSplits();

  /// Streams one tick of budget through the background migration queue;
  /// a copy that finishes its modeled transfer is installed via
  /// MetaServer::MigrateReplica (disposition recorded in
  /// migration_stats_).
  void AdvanceMigrations();

  /// Snapshots every pool into the rescheduler's model and enqueues the
  /// planned moves as background copies. Skipped while copies are still
  /// queued (the model would re-plan the same moves).
  void PlanRescheduling();

  /// Records one migration disposition into migration_stats_.
  void RecordMigrationOutcome(const Status& status);

  SimOptions options_;
  SimClock clock_;
  Rng rng_;
  std::unique_ptr<meta::MetaServer> meta_;
  /// Node ids are dense (assigned in creation order), so nodes_[id] IS
  /// the id lookup — FindNode indexes this vector directly.
  std::vector<std::unique_ptr<node::DataNode>> nodes_;
  std::map<TenantId, TenantRuntime> tenants_;  ///< Ordered: stages iterate.
  /// Open-addressed mirror of tenants_ for per-request lookups on the
  /// tick path; std::map guarantees the cached pointers stay stable.
  FlatMap64<TenantRuntime*> tenant_index_;
  std::vector<ClientRequest> injected_;
  /// Data-plane req_id -> context for response settlement
  /// (open-addressed: the hottest sim-wide table on the tick path).
  FlatMap64<RequestContext> inflight_;
  std::vector<uint64_t> stranded_scratch_;  ///< ResolveStrandedOnNode.
  /// In-flight scan fan-outs by base request id (ordered: deterministic
  /// iteration is never needed, but cheap insurance costs nothing at
  /// scan volumes).
  std::map<uint64_t, ScanFanout> scan_fanouts_;
  /// Leg req_id -> accumulator slot. Lookup/erase only — never iterated,
  /// so the unordered map cannot perturb determinism.
  std::unordered_map<uint64_t, ScanPartRef> scan_part_index_;
  /// Backing storage for this tick's scan sub-requests: node batches
  /// hold pointers into it, so addresses must be stable (deque) until
  /// RouteSubmit moves them into the nodes. Cleared each Route pass.
  std::deque<NodeRequest> scan_sub_scratch_;
  /// Sub-request id space: below refresh ids (1<<62), above client ids.
  uint64_t next_scan_sub_id_ = (1ull << 61);
  /// A parked outcome awaiting TakeOutcome, stamped for the TTL sweep.
  struct TrackedOutcome {
    ClientOutcome outcome;
    uint64_t recorded_tick = 0;
  };
  std::unordered_map<uint64_t, TrackedOutcome> outcomes_;
  /// One-shot completion callbacks by request id (SubscribeOutcome).
  std::unordered_map<uint64_t, OutcomeCallback> subscriptions_;
  /// A queued fault-injection event, applied by the Fault stage at the
  /// next tick boundary.
  struct FaultEvent {
    bool fail = true;  ///< false = recover.
    NodeId node = kInvalidNode;
    int catch_up_ticks = -1;  ///< Recover only; < 0 = options default.
  };
  std::vector<FaultEvent> pending_faults_;
  /// Failed nodes awaiting failover promotion (failure detection), and
  /// recovering nodes replaying their WALs; values are ticks remaining.
  std::map<NodeId, int> failover_countdown_;
  std::map<NodeId, int> recovery_countdown_;
  std::optional<meta::RecoveryReport> last_failover_report_;
  /// Node whose failover produced last_failover_report_: executed-copy
  /// completions are credited only to the report that planned them
  /// (overlapping failovers must not inflate a newer node's report).
  NodeId last_failover_node_ = kInvalidNode;
  /// Per-partition replication shipping state, keyed by PartitionKey.
  struct ReplState {
    /// Primary applied seq at the end of each of the last lag+1
    /// Replicate steps; the front is the shipping floor — what was
    /// acknowledged `replication_lag_ticks` ticks ago.
    std::deque<uint64_t> acked_history;
    /// Node serving the stream; a change (promotion/failback) reseeds
    /// acked_history — the dead primary's acked seqs must not let the
    /// new primary's reused sequence numbers ship with collapsed lag.
    NodeId primary = kInvalidNode;
    /// Primary applied seq as of the last Replicate step.
    uint64_t primary_applied = 0;
    /// Primary applied seq as of the *previous* Replicate step: the
    /// newest state a replica read executed this tick could possibly
    /// have observed, and therefore the staleness reference (with lag 0
    /// it equals what every replica holds, so replica_lag_sum stays 0).
    uint64_t prev_primary_applied = 0;
  };
  std::map<uint64_t, ReplState> repl_state_;
  /// An executed re-replication counting down in the Fault stage.
  struct PendingRebuild {
    TenantId tenant = 0;
    PartitionId partition = 0;
    NodeId dead = kInvalidNode;    ///< Node whose slot is being replaced.
    NodeId target = kInvalidNode;  ///< Node receiving the copy.
    int ticks_remaining = 0;       ///< Grace period + modeled copy time.
  };
  std::vector<PendingRebuild> pending_rebuilds_;
  uint64_t executed_rebuilds_ = 0;
  /// Per-parent progress of an active online split.
  struct SplitParent {
    PartitionId parent = 0;
    std::string cursor;          ///< Last key the exporter examined.
    bool snapshot_done = false;  ///< Re-hashed range fully streamed.
    /// Parent stream position when the split started: the replication
    /// logs are held at this floor (split_log_holds_) so the cutover can
    /// replay every write acknowledged during the streaming window.
    uint64_t hold_seq = 0;
    uint64_t bytes_streamed = 0;
    std::string purge_cursor;    ///< Post-cutover moved-key purge.
    bool purge_done = false;
  };
  /// One online split: staged children streaming (cut_over = false),
  /// then parents purging their moved keys (cut_over = true).
  struct SplitOp {
    uint32_t old_count = 0;
    bool cut_over = false;
    std::vector<SplitParent> parents;
  };
  std::map<TenantId, SplitOp> active_splits_;  ///< Ordered: deterministic.
  /// Replication-log truncation floors for partitions under an active
  /// split (keyed by PartitionKey): the Replicate stage never truncates
  /// a held stream past its split window start.
  std::map<uint64_t, uint64_t> split_log_holds_;
  uint64_t splits_completed_ = 0;
  uint64_t split_cutovers_ = 0;
  /// A planned background migration streaming its modeled copy.
  struct PendingMigration {
    resched::Migration migration;
    uint64_t bytes_total = 0;
    uint64_t bytes_copied = 0;
  };
  std::deque<PendingMigration> migration_queue_;
  MigrationStats migration_stats_;
  // -- Latency subsystem state ----------------------------------------------
  latency::GrayFailureDetector gray_detector_;
  /// One settled response awaiting ordered delivery in the timed Settle
  /// path. Indices into TickContext::responses stay valid for the whole
  /// stage (the buffers are not mutated until the next tick's Reset).
  struct TimedResponse {
    Micros virtual_time = 0;
    uint64_t req_id = 0;
    uint32_t node_index = 0;   ///< Outer index into ctx.responses.
    uint32_t resp_index = 0;   ///< Inner index.
    ResponseTiming timing;
  };
  std::vector<TimedResponse> timed_scratch_;  ///< Cleared per tick.
  /// Per-node served-latency sums for the gray detector (dense node-id
  /// index; integer micros so accumulation order cannot matter).
  std::vector<uint64_t> gray_latency_sum_;
  std::vector<uint64_t> gray_latency_count_;
  /// Gray transitions observed by the detector, pending application in
  /// the next Fault stage.
  std::vector<latency::GrayFailureDetector::Transition> pending_gray_;
  /// Non-null when SimOptions::trace_path is set; shared by the
  /// executor (morsel slices) and the pipeline (stage slices).
  std::unique_ptr<TraceWriter> trace_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<TickPipeline> pipeline_;
  NodeId next_node_id_ = 0;
  uint64_t next_refresh_id_ = (1ull << 62);
  uint64_t tick_count_ = 0;

  // -- Active-set state (all serial-section-only; see BeginTick) -------------

  /// Tenants whose generators are not parked: the Generate stage builds
  /// its slots from this set alone. Ordered — ascending tenant id
  /// matches dense iteration order.
  std::set<TenantId> gen_active_;
  /// Wake-up wheel for parked generators (next rate-schedule boundary).
  struct GenWake {
    TenantId tenant = 0;
    uint64_t seq = 0;  ///< TenantRuntime::wake_seq at park time.
  };
  EventWheel<GenWake> gen_wheel_;
  /// Expiry wheel for abandoned tracked outcomes (sparse replacement of
  /// the full-table TTL scan).
  struct OutcomeExpiry {
    uint64_t req_id = 0;
    uint64_t recorded_tick = 0;  ///< Skip if the entry was re-recorded.
  };
  EventWheel<OutcomeExpiry> outcome_wheel_;
  /// Tenants touched this tick / last tick, deduped by touch_stamp.
  /// prev_touched_ matters to the refresh-fetch walk: a fetch created
  /// in last tick's Settle is drained this tick.
  uint64_t touch_epoch_ = 1;
  std::vector<TenantId> touched_;
  std::vector<TenantId> prev_touched_;
  /// Tenants touched since the last MetaServer traffic report, deduped
  /// by report_stamp; cleared (epoch bump) at each report.
  uint64_t report_epoch_ = 1;
  std::vector<TenantId> report_touched_;
  /// Tenants whose last traffic report came back clamped: they must
  /// keep reporting (a zero report is what un-clamps them). Sorted,
  /// rebuilt at each report.
  std::vector<TenantId> clamped_tenants_;
  /// Tenants with possibly non-quiescent replication streams. Rebuilt
  /// from the full tenant map whenever the routing epoch moves (any
  /// placement mutation), extended by every DataNode response and by
  /// the preload/resync/split hooks; the Replicate walk erases a tenant
  /// once all its partitions are quiescent.
  std::set<TenantId> repl_active_;
  uint64_t repl_seen_epoch_ = ~0ull;
  /// Tenants with a non-disabled autoscale mode (the control loop's
  /// standing work list; these never catch up — they fold every tick).
  std::set<TenantId> autoscale_enabled_;
  /// Tenants whose hedger ever observed a sample: the per-tick
  /// threshold advance (Hedger::EndTick) only matters to them — a
  /// never-observed hedger's threshold stays at its initial value.
  std::set<TenantId> hedge_observed_;
  std::vector<TenantId> visit_scratch_;  ///< SortedUnion output.
};

}  // namespace sim
}  // namespace abase
