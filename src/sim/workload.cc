#include "sim/workload.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/hash.h"
#include "common/keyspace.h"

namespace abase {
namespace sim {

WorkloadGenerator::WorkloadGenerator(TenantId tenant, WorkloadProfile profile,
                                     uint64_t seed)
    : tenant_(tenant), profile_(profile), rng_(seed) {
  if (profile_.key_dist == KeyDist::kZipfian && profile_.num_keys > 1) {
    zipf_ = std::make_unique<ZipfianGenerator>(profile_.num_keys,
                                               profile_.zipf_theta);
  }
}

double WorkloadGenerator::ExpectedQps(Micros now) const {
  double qps = profile_.base_qps;
  if (!profile_.rate_schedule.empty() && profile_.rate_schedule_step > 0) {
    const size_t idx = static_cast<size_t>(
        (now / profile_.rate_schedule_step) %
        static_cast<Micros>(profile_.rate_schedule.size()));
    qps = profile_.rate_schedule[idx];
  }
  double days = static_cast<double>(now) / static_cast<double>(kMicrosPerDay);
  if (profile_.trend_per_day != 0) {
    qps *= std::pow(1.0 + profile_.trend_per_day, days);
  }
  if (profile_.diurnal_amplitude > 0) {
    double hours = static_cast<double>(now) /
                   static_cast<double>(kMicrosPerHour);
    qps *= 1.0 + profile_.diurnal_amplitude *
                     std::sin(2.0 * M_PI * hours /
                              profile_.diurnal_period_hours);
  }
  for (const auto& burst : profile_.bursts) {
    if (now >= burst.start && now < burst.end) qps *= burst.multiplier;
  }
  return std::max(0.0, qps);
}

void WorkloadGenerator::KeyInto(uint64_t index, std::string& out) const {
  // Stable key naming ("t<tenant>:k<index>"); hash-scrambled so adjacent
  // ranks do not share partition routing. Built into the recycled slot
  // string so steady-state keys never allocate.
  // 72 bytes: 't' + <=20 digits + optional ":g" + <=20 digits + ":k" +
  // <=20 digits, with the to_chars ranges bounded so the compiler can
  // see the separator writes fit.
  char buf[72];
  char* p = buf;
  *p++ = 't';
  p = std::to_chars(p, buf + 24, tenant_).ptr;
  *p++ = ':';
  if (profile_.scan_prefix_groups > 0) {
    // Group segment: scans target one group's prefix, so the keyspace
    // must cluster by group before the per-key rank.
    *p++ = 'g';
    p = std::to_chars(p, p + 20, index % profile_.scan_prefix_groups).ptr;
    *p++ = ':';
  }
  *p++ = 'k';
  p = std::to_chars(p, p + 20, index).ptr;
  out.assign(buf, static_cast<size_t>(p - buf));
}

void WorkloadGenerator::ScanPrefixInto(uint64_t index, std::string& out) const {
  char buf[72];
  char* p = buf;
  *p++ = 't';
  p = std::to_chars(p, buf + 24, tenant_).ptr;
  *p++ = ':';
  if (profile_.scan_prefix_groups > 0) {
    *p++ = 'g';
    p = std::to_chars(p, p + 20, index % profile_.scan_prefix_groups).ptr;
    *p++ = ':';
  }
  out.assign(buf, static_cast<size_t>(p - buf));
}

uint64_t WorkloadGenerator::SampleKeyIndex() {
  switch (profile_.key_dist) {
    case KeyDist::kUniform:
      return rng_.NextUint64(std::max<uint64_t>(1, profile_.num_keys));
    case KeyDist::kZipfian:
      // Scenario scripts mutate the profile mid-run (Figure 5): rebuild
      // the sampler lazily whenever its parameters drift.
      if (profile_.num_keys > 1 &&
          (zipf_ == nullptr || zipf_->n() != profile_.num_keys ||
           zipf_->theta() != profile_.zipf_theta)) {
        zipf_ = std::make_unique<ZipfianGenerator>(profile_.num_keys,
                                                   profile_.zipf_theta);
      }
      return zipf_ != nullptr ? zipf_->Next(rng_) : 0;
    case KeyDist::kHotSpot: {
      uint64_t hot_keys = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(profile_.num_keys) *
                                   profile_.hot_fraction));
      if (rng_.NextBool(profile_.hot_share)) {
        return rng_.NextUint64(hot_keys);
      }
      uint64_t cold = profile_.num_keys > hot_keys
                          ? profile_.num_keys - hot_keys
                          : 1;
      return hot_keys + rng_.NextUint64(cold);
    }
  }
  return 0;
}

void WorkloadGenerator::MakeValueInto(std::string& out) {
  double bytes = profile_.value_bytes > 0
                     ? rng_.NextLogNormal(
                           std::log(static_cast<double>(profile_.value_bytes)),
                           profile_.value_sigma)
                     : 0;
  size_t n = static_cast<size_t>(std::clamp(bytes, 1.0, 8.0 * 1024 * 1024));
  out.assign(n, 'v');
}

std::vector<ClientRequest> WorkloadGenerator::Tick(Micros now,
                                                   Micros tick_len) {
  std::vector<ClientRequest> out;
  Tick(now, tick_len, out);
  return out;
}

void WorkloadGenerator::Tick(Micros now, Micros tick_len,
                             std::vector<ClientRequest>& out) {
  double expected = ExpectedQps(now) * static_cast<double>(tick_len) /
                    static_cast<double>(kMicrosPerSecond);
  int64_t count = rng_.NextPoisson(expected);

  // Recycle the caller's slots: surviving entries keep their key/value
  // string capacity, so every field below must be written (or reset)
  // explicitly — a stale field from the previous tick would corrupt the
  // stream.
  out.resize(static_cast<size_t>(std::max<int64_t>(0, count)));
  for (ClientRequest& req : out) {
    req.req_id = (static_cast<uint64_t>(tenant_) << 40) | next_req_id_++;
    req.tenant = tenant_;
    req.issued_at = now;
    req.field.clear();
    req.value.clear();
    req.ttl = 0;
    req.scan_limit = 0;
    req.consistency = Consistency::kPrimary;
    req.track_outcome = false;
    uint64_t key_index = SampleKeyIndex();
    KeyInto(key_index, req.key);
    req.key_hash = Fnv1a64(req.key);

    bool is_hash = rng_.NextBool(profile_.hash_op_fraction);
    bool is_read = rng_.NextBool(profile_.read_ratio);
    if (is_read && profile_.eventual_read_fraction > 0 &&
        rng_.NextBool(profile_.eventual_read_fraction)) {
      req.consistency = Consistency::kEventual;
    }
    if (is_read && !is_hash && profile_.scan_fraction > 0 &&
        rng_.NextBool(profile_.scan_fraction)) {
      // Prefix scan over the sampled key's locality group. Cross-
      // partition merges of mixed-staleness replicas are not a
      // consistent range view, so scans always pin to the primaries.
      req.op = OpType::kScan;
      req.consistency = Consistency::kPrimary;
      ScanPrefixInto(key_index, req.key);
      req.key_hash = Fnv1a64(req.key);
      req.field = PrefixUpperBound(req.key);
      req.scan_limit = profile_.scan_limit;
      continue;
    }
    if (is_hash) {
      char fbuf[24];
      fbuf[0] = 'f';
      char* fp = std::to_chars(fbuf + 1, fbuf + sizeof(fbuf),
                               rng_.NextUint64(profile_.hash_fields))
                     .ptr;
      req.field.assign(fbuf, static_cast<size_t>(fp - fbuf));
      if (is_read) {
        // Mix of field reads and whole-hash scans / length queries.
        double pick = rng_.NextDouble();
        req.op = pick < 0.6 ? OpType::kHGet
                            : (pick < 0.85 ? OpType::kHGetAll : OpType::kHLen);
      } else {
        req.op = OpType::kHSet;
        MakeValueInto(req.value);
      }
    } else if (is_read) {
      req.op = OpType::kGet;
    } else {
      req.op = OpType::kSet;
      MakeValueInto(req.value);
      req.ttl = profile_.ttl;
    }
  }
}

TimeSeries GenerateSeries(const SeriesSpec& spec, Rng& rng) {
  std::vector<double> v(spec.hours, spec.base);
  for (size_t h = 0; h < spec.hours; h++) {
    double t_days = static_cast<double>(h) / 24.0;
    v[h] += spec.trend_per_day * t_days;
    for (const auto& s : spec.seasons) {
      v[h] += s.amplitude *
              std::sin(2.0 * M_PI * static_cast<double>(h) / s.period_hours);
    }
    if (spec.noise_sigma > 0) v[h] += rng.NextGaussian(0, spec.noise_sigma);
  }
  for (const auto& b : spec.bursts) {
    for (size_t h = b.at_hour;
         h < std::min(spec.hours, b.at_hour + b.duration_hours); h++) {
      v[h] += b.add;
    }
  }
  if (spec.level_shift_at_hour > 0) {
    for (size_t h = spec.level_shift_at_hour; h < spec.hours; h++) {
      v[h] *= spec.level_shift_factor;
    }
  }
  for (double& x : v) x = std::max(0.0, x);
  return TimeSeries(std::move(v));
}

}  // namespace sim
}  // namespace abase
