#include "sim/workload.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace sim {

WorkloadGenerator::WorkloadGenerator(TenantId tenant, WorkloadProfile profile,
                                     uint64_t seed)
    : tenant_(tenant), profile_(profile), rng_(seed) {
  if (profile_.key_dist == KeyDist::kZipfian && profile_.num_keys > 1) {
    zipf_ = std::make_unique<ZipfianGenerator>(profile_.num_keys,
                                               profile_.zipf_theta);
  }
}

double WorkloadGenerator::ExpectedQps(Micros now) const {
  double qps = profile_.base_qps;
  if (!profile_.rate_schedule.empty() && profile_.rate_schedule_step > 0) {
    const size_t idx = static_cast<size_t>(
        (now / profile_.rate_schedule_step) %
        static_cast<Micros>(profile_.rate_schedule.size()));
    qps = profile_.rate_schedule[idx];
  }
  double days = static_cast<double>(now) / static_cast<double>(kMicrosPerDay);
  if (profile_.trend_per_day != 0) {
    qps *= std::pow(1.0 + profile_.trend_per_day, days);
  }
  if (profile_.diurnal_amplitude > 0) {
    double hours = static_cast<double>(now) /
                   static_cast<double>(kMicrosPerHour);
    qps *= 1.0 + profile_.diurnal_amplitude *
                     std::sin(2.0 * M_PI * hours /
                              profile_.diurnal_period_hours);
  }
  for (const auto& burst : profile_.bursts) {
    if (now >= burst.start && now < burst.end) qps *= burst.multiplier;
  }
  return std::max(0.0, qps);
}

std::string WorkloadGenerator::KeyAt(uint64_t index) const {
  // Stable key naming; hash-scrambled so adjacent ranks do not share
  // partition routing.
  return "t" + std::to_string(tenant_) + ":k" + std::to_string(index);
}

uint64_t WorkloadGenerator::SampleKeyIndex() {
  switch (profile_.key_dist) {
    case KeyDist::kUniform:
      return rng_.NextUint64(std::max<uint64_t>(1, profile_.num_keys));
    case KeyDist::kZipfian:
      // Scenario scripts mutate the profile mid-run (Figure 5): rebuild
      // the sampler lazily whenever its parameters drift.
      if (profile_.num_keys > 1 &&
          (zipf_ == nullptr || zipf_->n() != profile_.num_keys ||
           zipf_->theta() != profile_.zipf_theta)) {
        zipf_ = std::make_unique<ZipfianGenerator>(profile_.num_keys,
                                                   profile_.zipf_theta);
      }
      return zipf_ != nullptr ? zipf_->Next(rng_) : 0;
    case KeyDist::kHotSpot: {
      uint64_t hot_keys = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(profile_.num_keys) *
                                   profile_.hot_fraction));
      if (rng_.NextBool(profile_.hot_share)) {
        return rng_.NextUint64(hot_keys);
      }
      uint64_t cold = profile_.num_keys > hot_keys
                          ? profile_.num_keys - hot_keys
                          : 1;
      return hot_keys + rng_.NextUint64(cold);
    }
  }
  return 0;
}

std::string WorkloadGenerator::MakeValue() {
  double bytes = profile_.value_bytes > 0
                     ? rng_.NextLogNormal(
                           std::log(static_cast<double>(profile_.value_bytes)),
                           profile_.value_sigma)
                     : 0;
  size_t n = static_cast<size_t>(std::clamp(bytes, 1.0, 8.0 * 1024 * 1024));
  return std::string(n, 'v');
}

std::vector<ClientRequest> WorkloadGenerator::Tick(Micros now,
                                                   Micros tick_len) {
  double expected = ExpectedQps(now) * static_cast<double>(tick_len) /
                    static_cast<double>(kMicrosPerSecond);
  int64_t count = rng_.NextPoisson(expected);

  std::vector<ClientRequest> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; i++) {
    ClientRequest req;
    req.req_id = (static_cast<uint64_t>(tenant_) << 40) | next_req_id_++;
    req.tenant = tenant_;
    req.issued_at = now;
    uint64_t key_index = SampleKeyIndex();
    req.key = KeyAt(key_index);

    bool is_hash = rng_.NextBool(profile_.hash_op_fraction);
    bool is_read = rng_.NextBool(profile_.read_ratio);
    if (is_read && profile_.eventual_read_fraction > 0 &&
        rng_.NextBool(profile_.eventual_read_fraction)) {
      req.consistency = Consistency::kEventual;
    }
    if (is_hash) {
      req.field = "f" + std::to_string(rng_.NextUint64(profile_.hash_fields));
      if (is_read) {
        // Mix of field reads and whole-hash scans / length queries.
        double pick = rng_.NextDouble();
        req.op = pick < 0.6 ? OpType::kHGet
                            : (pick < 0.85 ? OpType::kHGetAll : OpType::kHLen);
      } else {
        req.op = OpType::kHSet;
        req.value = MakeValue();
      }
    } else if (is_read) {
      req.op = OpType::kGet;
    } else {
      req.op = OpType::kSet;
      req.value = MakeValue();
      req.ttl = profile_.ttl;
    }
    out.push_back(std::move(req));
  }
  return out;
}

TimeSeries GenerateSeries(const SeriesSpec& spec, Rng& rng) {
  std::vector<double> v(spec.hours, spec.base);
  for (size_t h = 0; h < spec.hours; h++) {
    double t_days = static_cast<double>(h) / 24.0;
    v[h] += spec.trend_per_day * t_days;
    for (const auto& s : spec.seasons) {
      v[h] += s.amplitude *
              std::sin(2.0 * M_PI * static_cast<double>(h) / s.period_hours);
    }
    if (spec.noise_sigma > 0) v[h] += rng.NextGaussian(0, spec.noise_sigma);
  }
  for (const auto& b : spec.bursts) {
    for (size_t h = b.at_hour;
         h < std::min(spec.hours, b.at_hour + b.duration_hours); h++) {
      v[h] += b.add;
    }
  }
  if (spec.level_shift_at_hour > 0) {
    for (size_t h = spec.level_shift_at_hour; h < spec.hours; h++) {
      v[h] *= spec.level_shift_factor;
    }
  }
  for (double& x : v) x = std::max(0.0, x);
  return TimeSeries(std::move(v));
}

}  // namespace sim
}  // namespace abase
