// The timed half of the Settle stage (latency subsystem) plus the gray-
// failure application path and the latency-facing public API. Split out
// of cluster_sim.cc: everything here is inert unless
// SimOptions::latency.enabled.
//
// Virtual-time composition per response (DESIGN.md "Sub-tick timing
// model"):
//
//   vt = node service latency                 (sampled base + WFQ
//        (NodeResponse::latency)               queueing factor + whole
//                                              backlog ticks + disk)
//      + RTT(proxy AZ, node AZ)               (same-AZ or cross-AZ class)
//      hedge-adjusted: min(vt, threshold + alt service + alt RTT)
//
// Delivery happens in ascending (vt, req_id) order — a total order that
// does not depend on node iteration, so the same tick settles
// identically at 1, 2, or 4 data-plane workers (golden-digest enforced).
#include <algorithm>

#include "latency/options.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace sim {

uint32_t ClusterSim::ProxyAzOf(const RequestContext& ctx) const {
  const TenantRuntime* rt = Tenant(ctx.tenant);
  if (rt == nullptr || ctx.proxy_index >= rt->proxies.size()) return 0;
  return rt->proxies[ctx.proxy_index]->az();
}

node::DataNode* ClusterSim::PickHedgeReplica(const TenantRuntime& rt,
                                             TenantId tenant,
                                             PartitionId partition,
                                             NodeId primary_leg) {
  if (partition >= rt.route_table.size()) return nullptr;
  const std::vector<NodeId>& reps = rt.route_table[partition];
  node::DataNode* gray_fallback = nullptr;
  for (NodeId id : reps) {
    if (id == primary_leg) continue;
    node::DataNode* n = FindNode(id);
    if (n == nullptr || !n->CanServe() || !n->HasReplica(tenant, partition)) {
      continue;
    }
    // Hedging exists to dodge slow nodes; prefer a healthy alternate and
    // fall back to a gray one only when nothing else can serve.
    if (gray_detector_.IsGray(id)) {
      if (gray_fallback == nullptr) gray_fallback = n;
      continue;
    }
    return n;
  }
  return gray_fallback;
}

void ClusterSim::SettleWithTiming(TickContext& ctx) {
  const latency::LatencyOptions& lopt = options_.latency;
  timed_scratch_.clear();
  if (gray_latency_sum_.size() < nodes_.size()) {
    gray_latency_sum_.resize(nodes_.size(), 0);
    gray_latency_count_.resize(nodes_.size(), 0);
  }
  std::fill(gray_latency_sum_.begin(), gray_latency_sum_.end(), 0);
  std::fill(gray_latency_count_.begin(), gray_latency_count_.end(), 0);

  // Pass 1 (node-id order): stamp every response with its virtual
  // completion time and evaluate hedges against the tenant thresholds
  // frozen at the last tick boundary. inflight_ is only peeked here —
  // DeliverResponse below still owns the erase.
  for (uint32_t ni = 0; ni < ctx.responses.size(); ni++) {
    const std::vector<NodeResponse>& node_responses = ctx.responses[ni];
    if (node_responses.empty()) continue;
    const node::DataNode* serving =
        ni < nodes_.size() ? nodes_[ni].get() : nullptr;
    const uint32_t node_az = serving != nullptr ? serving->az() : 0;
    for (uint32_t ri = 0; ri < node_responses.size(); ri++) {
      const NodeResponse& resp = node_responses[ri];
      TimedResponse tr;
      tr.req_id = resp.req_id;
      tr.node_index = ni;
      tr.resp_index = ri;

      TenantId tenant = resp.tenant;
      uint32_t proxy_az = 0;
      NodeId hedge_node = kInvalidNode;
      if (const RequestContext* inf = inflight_.Find(resp.req_id)) {
        tenant = inf->tenant;
        proxy_az = ProxyAzOf(*inf);
        hedge_node = inf->hedge_node;
      }
      const bool served_ok = resp.status.ok() || resp.status.IsNotFound();
      tr.timing.client_latency =
          resp.latency + latency::RttBetween(lopt.rtt, proxy_az, node_az);

      // Gray signal: node-side served latency of client-visible
      // completions (integer sums — accumulation order free).
      if (serving != nullptr && served_ok && !resp.background_refresh) {
        gray_latency_sum_[ni] += static_cast<uint64_t>(resp.latency);
        gray_latency_count_[ni]++;
      }

      // Hedge: armed by Route (hedge_node), fired when the primary leg's
      // virtual time crosses the tenant's frozen threshold. The
      // alternate leg is priced analytically — the same stateless draw
      // the alternate node would have charged for this req_id — so the
      // race resolves without a second trip through the data plane.
      if (hedge_node != kInvalidNode && served_ok) {
        if (TenantRuntime* rt = MutableTenant(tenant)) {
          const Micros threshold = rt->hedger.threshold();
          if (threshold > 0 && tr.timing.client_latency > threshold) {
            node::DataNode* alt = FindNode(hedge_node);
            const bool alt_ok = alt != nullptr && alt->CanServe() &&
                                alt->HasReplica(tenant, resp.partition);
            Micros alt_vt = 0;
            if (alt_ok) {
              alt_vt = alt->SampleServiceMicros(tenant, resp.req_id) +
                       latency::RttBetween(lopt.rtt, proxy_az, alt->az());
            }
            const latency::HedgeDecision d = latency::EvaluateHedge(
                threshold, tr.timing.client_latency, alt_ok, alt_vt,
                resp.actual_ru);
            tr.timing.hedged = d.hedged;
            tr.timing.hedge_won = d.hedge_won;
            tr.timing.extra_ru = d.extra_ru;
            tr.timing.client_latency = d.effective_micros;
          }
        }
      }
      tr.virtual_time = tr.timing.client_latency;
      timed_scratch_.push_back(tr);
    }
  }

  // Pass 2: deliver in (virtual_time, req_id) order — the sub-tick
  // completion order. req_id breaks ties totally (ids are unique), so
  // the sort needs no stability guarantee.
  std::sort(timed_scratch_.begin(), timed_scratch_.end(),
            [](const TimedResponse& a, const TimedResponse& b) {
              if (a.virtual_time != b.virtual_time) {
                return a.virtual_time < b.virtual_time;
              }
              return a.req_id < b.req_id;
            });
  for (const TimedResponse& tr : timed_scratch_) {
    DeliverResponse(ctx.responses[tr.node_index][tr.resp_index], &tr.timing);
  }

  // Tick boundary: feed the gray detector (transitions apply in the next
  // Fault stage) and refreeze each tenant's hedge threshold.
  if (lopt.gray.enabled) {
    for (size_t i = 0; i < nodes_.size(); i++) {
      gray_detector_.ObserveTick(static_cast<NodeId>(i),
                                 gray_latency_sum_[i],
                                 gray_latency_count_[i]);
    }
    std::vector<latency::GrayFailureDetector::Transition> transitions =
        gray_detector_.Evaluate();
    pending_gray_.insert(pending_gray_.end(), transitions.begin(),
                         transitions.end());
  }
  // Hedge-threshold refreeze. A hedger that never observed a sample has
  // an all-zero histogram (Decay is a fixpoint) and a threshold pinned
  // at 0, so the active-set walk visits only tenants that ever fed one —
  // once observed, a tenant decays forever (the set never shrinks).
  if (options_.dense_tick) {
    for (auto& [tid, rt] : tenants_) rt.hedger.EndTick();
  } else {
    for (TenantId tid : hedge_observed_) {
      if (TenantRuntime** slot = tenant_index_.Find(tid)) {
        (*slot)->hedger.EndTick();
      }
    }
  }
}

void ClusterSim::ApplyGrayTransitions() {
  if (pending_gray_.empty()) return;
  for (const latency::GrayFailureDetector::Transition& t : pending_gray_) {
    // Routing demotion needs no action here: PickReplicaForRead and
    // PickHedgeReplica consult the detector's gray set directly. The
    // optional escalation moves the node's primaries to healthy replicas
    // — the node is alive with intact data, so no re-replication copies
    // are scheduled and failback is a pure role flip.
    if (!options_.latency.gray.trigger_failover) continue;
    if (t.now_gray) {
      (void)meta_->PromoteFailover(t.node);
    } else {
      (void)meta_->RestorePrimary(t.node);
    }
  }
  pending_gray_.clear();
}

void ClusterSim::DegradeNode(NodeId node, double factor) {
  if (node::DataNode* n = FindNode(node)) n->SetServiceDegradation(factor);
}

double ClusterSim::SloBurnRate(TenantId tenant, size_t window_ticks) const {
  const TenantRuntime* rt = Tenant(tenant);
  if (rt == nullptr) return 0;
  // Sparse histories backfill lazily; materialize the untouched (all-
  // zero) rows so the window indexes the same ticks a dense run would.
  if (!options_.dense_tick) SyncHistory(const_cast<TenantRuntime&>(*rt));
  if (rt->history.empty() || window_ticks == 0) return 0;
  const size_t begin =
      rt->history.size() > window_ticks ? rt->history.size() - window_ticks
                                        : 0;
  uint64_t violations = 0;
  uint64_t settled = 0;
  for (size_t i = begin; i < rt->history.size(); i++) {
    violations += rt->history[i].slo_violations;
    settled += rt->history[i].latency_count;
  }
  if (settled == 0) return 0;
  const double budget = 1.0 - options_.latency.slo_objective;
  if (budget <= 0) return 0;
  return (static_cast<double>(violations) / static_cast<double>(settled)) /
         budget;
}

}  // namespace sim
}  // namespace abase
