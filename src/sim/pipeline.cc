#include "sim/pipeline.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "common/smallvec.h"
#include "sim/cluster_sim.h"

namespace abase {
namespace sim {

// ---------------------------------------------------------------------------
// Fault
// ---------------------------------------------------------------------------

void FaultStage::Run(TickContext&) {
  ClusterSim& sim = *sim_;

  // 0. Gray-failure transitions observed by last tick's Settle land
  //    first: a node flagged slow is demoted (and, when configured,
  //    failed over) before this tick routes any traffic. Empty unless
  //    the latency subsystem's gray detector is on.
  sim.ApplyGrayTransitions();

  // 1. Queued fault events land, in injection order.
  for (const ClusterSim::FaultEvent& ev : sim.pending_faults_) {
    node::DataNode* n = sim.FindNode(ev.node);
    if (n == nullptr) continue;
    if (ev.fail) {
      if (n->state() == node::NodeState::kFailed) continue;
      sim.recovery_countdown_.erase(ev.node);  // A crash aborts catch-up.
      n->Fail();
      sim.ResolveStrandedOnNode(ev.node);
      sim.failover_countdown_[ev.node] =
          sim.options_.failover_detection_ticks;
    } else {
      if (n->state() != node::NodeState::kFailed) continue;
      // Recovery cancels a not-yet-run promotion (the node beat the
      // failure detector); an already-promoted node fails back below.
      sim.failover_countdown_.erase(ev.node);
      n->StartRecovery();
      // Catch-up duration: an explicit request wins; otherwise it is
      // sized from the real log deltas the node's replicas must replay.
      sim.recovery_countdown_[ev.node] =
          ev.catch_up_ticks >= 0 ? ev.catch_up_ticks
                                 : sim.ComputeCatchUpTicks(ev.node);
      // A node that starts recovering cancels its pending re-replication
      // copies: catching its own replicas up is cheaper than full
      // rebuilds on third nodes.
      sim.pending_rebuilds_.erase(
          std::remove_if(sim.pending_rebuilds_.begin(),
                         sim.pending_rebuilds_.end(),
                         [&](const ClusterSim::PendingRebuild& rb) {
                           return rb.dead == ev.node;
                         }),
          sim.pending_rebuilds_.end());
    }
  }
  sim.pending_faults_.clear();

  // 2. Failure detection: promote surviving replicas when the countdown
  //    expires (node-id order — std::map), and schedule the planned
  //    re-replication copies behind their grace period.
  for (auto it = sim.failover_countdown_.begin();
       it != sim.failover_countdown_.end();) {
    if (it->second <= 0) {
      auto report = sim.meta_->PromoteFailover(it->first);
      if (report.ok()) {
        const uint64_t bw =
            std::max<uint64_t>(1, sim.options_.re_replication_bytes_per_tick);
        for (const meta::ReReplicationTarget& t :
             report.value().re_replication_targets) {
          // A partition whose dead node still holds the primary slot had
          // no promotable survivor: the copy has no source and only the
          // node's own recovery (which cancels rebuilds) can change
          // that, so scheduling it would retry a doomed plan forever.
          if (sim.meta_->PrimaryFor(t.tenant, t.partition) == it->first) {
            continue;
          }
          ClusterSim::PendingRebuild rb;
          rb.tenant = t.tenant;
          rb.partition = t.partition;
          rb.dead = it->first;
          rb.target = t.target;
          rb.ticks_remaining =
              sim.options_.re_replication_delay_ticks +
              std::max<int>(1, static_cast<int>((t.bytes + bw - 1) / bw));
          sim.pending_rebuilds_.push_back(rb);
        }
        sim.last_failover_report_ = std::move(report).value();
        sim.last_failover_node_ = it->first;
      }
      it = sim.failover_countdown_.erase(it);
    } else {
      it->second--;
      ++it;
    }
  }

  // 3. Catch-up: a recovering node resyncs every hosted replica from the
  //    current primaries — log-delta replay for clean prefixes, snapshot
  //    resync for a demoted ex-primary's divergent suffix — then rejoins
  //    and takes its primaries back.
  for (auto it = sim.recovery_countdown_.begin();
       it != sim.recovery_countdown_.end();) {
    if (it->second <= 0) {
      if (node::DataNode* n = sim.FindNode(it->first)) {
        sim.ResyncRecoveredNode(it->first);
        n->CompleteRecovery();
      }
      sim.meta_->RestorePrimary(it->first);
      it = sim.recovery_countdown_.erase(it);
    } else {
      it->second--;
      ++it;
    }
  }

  // 4. Executed re-replication: planned copies whose grace period and
  //    modeled transfer time elapsed place real partition state on their
  //    targets (the dead node's slot moves over). A copy is cancelled if
  //    the dead node came back, or its target died or picked the
  //    partition up some other way (migration, split).
  for (auto it = sim.pending_rebuilds_.begin();
       it != sim.pending_rebuilds_.end();) {
    node::DataNode* dead = sim.FindNode(it->dead);
    node::DataNode* target = sim.FindNode(it->target);
    const bool cancel =
        dead == nullptr || dead->state() != node::NodeState::kFailed ||
        target == nullptr || !target->CanServe() ||
        target->HasReplica(it->tenant, it->partition);
    if (cancel) {
      it = sim.pending_rebuilds_.erase(it);
      continue;
    }
    if (--it->ticks_remaining > 0) {
      ++it;
      continue;
    }
    Status executed = sim.meta_->ExecuteReReplication(
        it->tenant, it->partition, it->dead, it->target);
    if (executed.ok()) {
      sim.executed_rebuilds_++;
      if (sim.last_failover_report_.has_value() &&
          sim.last_failover_node_ == it->dead) {
        sim.last_failover_report_->replicas_rebuilt_executed++;
      }
    } else if (executed.IsUnavailable()) {
      // Transient: no alive source right now (e.g. the interim primary
      // failed too). Keep the copy pending and retry next tick — erasing
      // it would leave the partition under-replicated for good.
      it->ticks_remaining = 1;
      ++it;
      continue;
    }
    it = sim.pending_rebuilds_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Generate
// ---------------------------------------------------------------------------

void GenerateStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  // Reconcile the persistent traffic slots against the tenant set in id
  // order (tenants_ is an ordered map): surviving slots keep their
  // request buffers — and the strings inside them — so steady-state
  // generation reuses capacity instead of reallocating per tick.
  // Generators then fill the slots concurrently — each owns a private
  // RNG stream.
  runtimes_.clear();
  size_t slots = 0;
  const Micros now = sim.clock_.NowMicros();
  if (sim.options_.dense_tick) {
    for (auto& [tid, rt] : sim.tenants_) {
      if (rt.workload == nullptr) continue;
      if (slots == ctx.traffic.size()) ctx.traffic.emplace_back();
      ctx.traffic[slots].tenant = tid;
      runtimes_.push_back(&rt);
      slots++;
    }
  } else {
    // Active-set slot build: only unparked generators get slots. A
    // generator whose effective rate cell is exactly 0 emits nothing and
    // consumes no RNG (NextPoisson(0) is draw-free), so parking it —
    // until the next rate-schedule boundary via the wheel, or forever
    // for a flat zero profile — is bit-identical to the dense walk.
    // gen_active_ is ordered, so slots still fill in tenant-id order.
    parked_scratch_.clear();
    for (TenantId tid : sim.gen_active_) {
      TenantRuntime** slot = sim.tenant_index_.Find(tid);
      if (slot == nullptr) {
        parked_scratch_.push_back(tid);
        continue;
      }
      TenantRuntime& rt = **slot;
      if (rt.workload == nullptr) {
        parked_scratch_.push_back(tid);
        continue;
      }
      const WorkloadProfile& prof = rt.workload->profile();
      double cell = prof.base_qps;
      if (!prof.rate_schedule.empty() && prof.rate_schedule_step > 0) {
        const size_t idx = static_cast<size_t>(
            (now / prof.rate_schedule_step) %
            static_cast<Micros>(prof.rate_schedule.size()));
        cell = prof.rate_schedule[idx];
      }
      if (cell == 0.0) {
        sim.ParkGenerator(tid, rt, now);
        parked_scratch_.push_back(tid);
        continue;
      }
      sim.TouchTenant(tid, rt);
      if (slots == ctx.traffic.size()) ctx.traffic.emplace_back();
      ctx.traffic[slots].tenant = tid;
      runtimes_.push_back(&rt);
      slots++;
    }
    for (TenantId tid : parked_scratch_) sim.gen_active_.erase(tid);
  }
  ctx.traffic.resize(slots);
  const Micros tick_len = sim.options_.tick;
  auto& runtimes = runtimes_;
  sim.executor_->MorselFor(
      "Generate", runtimes.size(), 1,
      [&runtimes, &ctx, now, tick_len](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; i++) {
          runtimes[i]->workload->Tick(now, tick_len, ctx.traffic[i].requests);
        }
      });

  // Swap, not move-assign: the sim-side buffer keeps ctx.injected's old
  // (cleared) storage for the next batch of injections.
  ctx.injected.swap(sim.injected_);
  sim.injected_.clear();
}

// ---------------------------------------------------------------------------
// ProxyAdmit
// ---------------------------------------------------------------------------

void ProxyAdmitStage::AdmitOne(
    TenantRuntime& rt, const ClientRequest& req,
    std::vector<PendingForward>& out, size_t& out_count,
    std::vector<std::pair<uint64_t, ClientOutcome>>& deferred,
    TenantTickMetrics& m) {
  m.issued++;

  // Writes invalidate the key across the tenant's proxy caches (a
  // write-through invalidation broadcast; keeps the synchronous client
  // API read-your-writes while the paper's model remains eventually
  // consistent under races). req.key_hash is Fnv1a64(key) == HashString,
  // computed once at generate/inject time.
  if (!IsReadOp(req.op)) {
    for (auto& p : rt.proxies) p->InvalidateCacheHashed(req.key_hash, req.key);
  }

  size_t proxy_index = rt.router->RouteHashed(req.key_hash, rt.router_rng);
  proxy::Proxy& px = *rt.proxies[proxy_index];
  // Recycle the next forward slot: HandleInto assigns every NodeRequest
  // field, so the slot's string capacity is reused and the hot path
  // neither constructs nor moves a PendingForward.
  if (out_count == out.size()) out.emplace_back();
  PendingForward& fwd = out[out_count];
  proxy::ProxyHandleResult local;
  local.action = px.HandleInto(req, req.key_hash, fwd.request, local);
  if (local.action == proxy::ProxyHandleResult::Action::kForward) {
    fwd.ctx = RequestContext{};
    fwd.ctx.tenant = req.tenant;
    fwd.ctx.proxy_index = proxy_index;
    fwd.ctx.track_outcome = req.track_outcome;
    if (req.op == OpType::kScan) {
      // A scan's fan-out (serial Route walk) may refresh the routing
      // table and advance cursors; anything admitted after it this tick
      // must resolve serially, in order, to stay bit-identical.
      rt.route_fuse_stop_stamp = sim_->touch_epoch_;
    } else if (rt.route_fuse_stop_stamp != sim_->touch_epoch_) {
      sim_->FusedRoutePoint(rt, fwd, m);
    }
    out_count++;
  } else {
    sim_->SettleLocalProxyResult(rt, req, local, &deferred, m);
  }
}

void ProxyAdmitStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;

  // Bulk per-tenant traffic, tenants concurrently: every touched piece
  // of state — proxies, router RNG stream, routing cache (the fused
  // resolve), scratch metrics — is private to the tenant, and generated
  // requests never track outcomes, so nothing sim-wide is written. Each
  // tenant's forwards stay in its traffic slot (recycled in place);
  // Route walks the slots directly, so there is no merge copy. Metric
  // increments go through a per-slot scratch folded into rt.current
  // once — rt.current's doubles are still +0.0 here (the settle path
  // runs later), so the fold is bit-exact against serial accumulation.
  sim.executor_->MorselFor(
      "ProxyAdmit", ctx.traffic.size(), 1,
      [this, &sim, &ctx](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; i++) {
          TickContext::TenantTraffic& tt = ctx.traffic[i];
          auto it = sim.tenants_.find(tt.tenant);
          if (it == sim.tenants_.end()) {
            // A stale slot would make Route re-walk last tick's forwards.
            tt.forwards.clear();
            continue;
          }
          std::vector<std::pair<uint64_t, ClientOutcome>> unused;
          TenantTickMetrics scratch;
          size_t fwd_count = 0;
          for (const ClientRequest& req : tt.requests) {
            // Generated traffic never tracks outcomes; nothing defers.
            assert(!req.track_outcome);
            AdmitOne(it->second, req, tt.forwards, fwd_count, unused,
                     scratch);
          }
          tt.forwards.resize(fwd_count);
          it->second.current.MergeFrom(scratch);
        }
      });

  // Injected requests (async clients, tests) are admitted in batches:
  // grouped by tenant (injection order preserved within a tenant) and
  // fanned out across the executor like bulk traffic. Tracked outcomes
  // settle into tenant-private buffers and are published serially in
  // tenant-id order below, so callback invocation order is deterministic
  // regardless of worker count. The grouping is allocation-free in
  // steady state: a counting pass sizes exact request-pointer arrays
  // out of the stage arena, and the non-trivial output buffers recycle.
  // Generated-only workloads skip the whole block.
  if (!ctx.injected.empty()) {
    injected_arena_.Reset();
    injected_index_.Clear();
    injected_batches_.clear();
    // Pass 1: count per tenant (and answer unknown-tenant submitters —
    // a tracked request dropped silently would strand its subscription,
    // and any future waiting on it, forever).
    for (const ClientRequest& req : ctx.injected) {
      TenantRuntime* rt = sim.MutableTenant(req.tenant);
      if (rt == nullptr) {
        if (req.track_outcome) {
          sim.PublishOutcome(
              req.req_id, ClientOutcome{Status::Unavailable("no such tenant"),
                                        ""});
        }
        continue;
      }
      sim.TouchTenant(req.tenant, *rt);
      uint32_t* slot = injected_index_.Find(req.tenant);
      if (slot == nullptr) {
        injected_index_.Insert(
            req.tenant, static_cast<uint32_t>(injected_batches_.size()));
        InjectedBatch b;
        b.tenant = req.tenant;
        b.rt = rt;
        b.count = 1;
        injected_batches_.push_back(b);
      } else {
        injected_batches_[*slot].count++;
      }
    }
    // Batches fan out and publish in tenant-id order. First-appearance
    // order depends on submission interleaving, so sort, then re-point
    // the index at the new slots for the fill pass.
    std::sort(injected_batches_.begin(), injected_batches_.end(),
              [](const InjectedBatch& a, const InjectedBatch& b) {
                return a.tenant < b.tenant;
              });
    for (uint32_t i = 0; i < injected_batches_.size(); i++) {
      *injected_index_.Find(injected_batches_[i].tenant) = i;
    }
    if (injected_buffers_.size() < injected_batches_.size()) {
      injected_buffers_.resize(injected_batches_.size());
    }
    // Pass 2: exact-size arena arrays, filled in injection order.
    for (InjectedBatch& b : injected_batches_) {
      b.requests = injected_arena_.AllocateArray<const ClientRequest*>(b.count);
    }
    for (const ClientRequest& req : ctx.injected) {
      uint32_t* slot = injected_index_.Find(req.tenant);
      if (slot == nullptr) continue;  // Unknown tenant, answered above.
      InjectedBatch& b = injected_batches_[*slot];
      b.requests[b.filled++] = &req;
    }
    sim.executor_->MorselFor(
        "AdmitInjected", injected_batches_.size(), 1,
        [this](size_t begin, size_t end, int) {
          for (size_t i = begin; i < end; i++) {
            InjectedBatch& b = injected_batches_[i];
            InjectedBuffers& buf = injected_buffers_[i];
            // Injected batches write rt.current directly (tenant-private
            // here), preserving the legacy accumulation order exactly.
            size_t fwd_count = 0;
            for (uint32_t r = 0; r < b.count; r++) {
              AdmitOne(*b.rt, *b.requests[r], buf.forwards, fwd_count,
                       buf.deferred, b.rt->current);
            }
            buf.forwards.resize(fwd_count);
          }
        });
    for (size_t i = 0; i < injected_batches_.size(); i++) {
      InjectedBuffers& buf = injected_buffers_[i];
      for (PendingForward& fwd : buf.forwards) {
        ctx.forwards.push_back(std::move(fwd));
      }
      for (auto& [req_id, outcome] : buf.deferred) {
        sim.PublishOutcome(req_id, std::move(outcome));
      }
      buf.forwards.clear();
      buf.deferred.clear();
    }
  }

  // AU-LRU active-update refresh fetches (background traffic) enter the
  // data plane behind all client traffic. Serial: refresh ids come from
  // the sim-wide allocator in a deterministic order. Active-set mode
  // walks only tenants touched this tick (admission above queues
  // fetches via Proxy::Handle) or last tick (response cache fills queue
  // them in Settle, drained here one tick later) — an untouched
  // tenant's proxies cannot hold a pending fetch. SortedUnion iterates
  // in ascending tenant id, the dense order.
  if (sim.options_.dense_tick) {
    for (auto& [tid, rt] : sim.tenants_) {
      for (size_t p = 0; p < rt.proxies.size(); p++) {
        for (NodeRequest& req : rt.proxies[p]->TakeRefreshFetches()) {
          PendingForward fwd;
          fwd.request = std::move(req);
          fwd.ctx.tenant = tid;
          fwd.ctx.proxy_index = p;
          fwd.ctx.track_outcome = false;
          fwd.ctx.background = true;
          ctx.forwards.push_back(std::move(fwd));
        }
      }
    }
  } else {
    for (TenantId tid : sim.SortedUnion(sim.touched_, sim.prev_touched_)) {
      TenantRuntime** slot = sim.tenant_index_.Find(tid);
      if (slot == nullptr) continue;
      TenantRuntime& rt = **slot;
      for (size_t p = 0; p < rt.proxies.size(); p++) {
        for (NodeRequest& req : rt.proxies[p]->TakeRefreshFetches()) {
          PendingForward fwd;
          fwd.request = std::move(req);
          fwd.ctx.tenant = tid;
          fwd.ctx.proxy_index = p;
          fwd.ctx.track_outcome = false;
          fwd.ctx.background = true;
          ctx.forwards.push_back(std::move(fwd));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Route
// ---------------------------------------------------------------------------

void RouteStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;

  // Serial pass: resolve primaries against each tenant's cached routing
  // table, register the in-flight contexts (sim-wide table), and batch
  // forwards per destination node. The destination must be alive AND
  // acknowledge itself primary for the partition — the node-side check
  // that stands in for a production MOVED reply. Most forwards arrive
  // already resolved (the fused admit/route pass in ProxyAdmit); the
  // serial walk then only registers them. Scans, fused failures, and
  // unfused stragglers (anything admitted after a scan, plus background
  // refresh fetches) resolve here, in admission order, exactly as the
  // fully serial walk did.
  if (ctx.node_batches.size() < sim.nodes_.size()) {
    ctx.node_batches.resize(sim.nodes_.size());
  }
  auto& batches = ctx.node_batches;
  // Last tick's scan sub-requests were moved into the nodes by its
  // RouteSubmit pass; reclaim the slots.
  sim.scan_sub_scratch_.clear();
  // Forwards arrive in per-tenant runs (traffic slots are tenant-id
  // ordered; injected forwards are batched per tenant), so memoizing the
  // last runtime lookup turns the per-forward map find into a branch.
  TenantId memo_tid = 0;
  TenantRuntime* memo_rt = nullptr;
  auto route_one = [&](PendingForward& fwd) {
    NodeRequest& req = fwd.request;
    TenantRuntime* rt;
    if (memo_rt != nullptr && fwd.ctx.tenant == memo_tid) {
      rt = memo_rt;
    } else {
      auto tit = sim.tenants_.find(fwd.ctx.tenant);
      rt = tit != sim.tenants_.end() ? &tit->second : nullptr;
      memo_tid = fwd.ctx.tenant;
      memo_rt = rt;
      // Serial pass: mark the tenant touched — redirects and routing
      // errors below mutate its tick metrics, and the active-set
      // Finalize only seals touched tenants. Idempotent per tick.
      if (rt != nullptr) sim.TouchTenant(fwd.ctx.tenant, *rt);
    }
    // Fused success: the admit pass already resolved the destination
    // against the same frozen placement; just register and batch.
    if (fwd.ctx.node != kInvalidNode) {
      sim.inflight_[req.req_id] = fwd.ctx;
      assert(static_cast<size_t>(fwd.ctx.node) < batches.size());
      batches[static_cast<size_t>(fwd.ctx.node)].push_back(&req);
      return;
    }
    // Scans target a key RANGE: hash partitioning scatters any range
    // across every partition, so the forward expands into one leg per
    // partition (sim.RouteScanFanout) instead of resolving one primary.
    if (req.op == OpType::kScan) {
      if (rt == nullptr) {
        if (fwd.ctx.track_outcome) {
          sim.PublishOutcome(
              req.req_id,
              ClientOutcome{Status::Unavailable("no such tenant"), ""});
        }
        return;
      }
      sim.RouteScanFanout(fwd, *rt, batches);
      return;
    }
    node::DataNode* n = nullptr;
    if (rt != nullptr && !fwd.ctx.route_failed) {
      const bool eventual_read = req.consistency == Consistency::kEventual &&
                                 IsReadOp(req.op) && !req.background_refresh;
      if (eventual_read) {
        // Eventual reads accept any alive replica of the partition —
        // including a stale one during a primary outage — balanced by a
        // per-tenant round-robin cursor (serial pass: deterministic).
        n = sim.PickReplicaForRead(*rt, req.tenant, req.partition);
        if (n == nullptr && rt->route_epoch != sim.meta_->routing_epoch()) {
          sim.RefreshRoutingTable(*rt);
          rt->current.redirects++;
          n = sim.PickReplicaForRead(*rt, req.tenant, req.partition);
        }
        // Hedged reads (latency subsystem): arm an alternate replica now,
        // while routing state is hot; Settle fires it only if the primary
        // leg's virtual time crosses the tenant's hedge threshold.
        if (n != nullptr && sim.options_.latency.enabled &&
            sim.options_.latency.hedge.enabled) {
          if (node::DataNode* alt = sim.PickHedgeReplica(
                  *rt, req.tenant, req.partition, n->id())) {
            fwd.ctx.hedge_node = alt->id();
          }
        }
      } else {
        auto routable = [&](node::DataNode* dest) {
          return dest != nullptr && dest->CanServe() &&
                 dest->IsPrimaryFor(req.tenant, req.partition);
        };
        n = sim.FindNode(sim.CachedPrimary(*rt, req.partition));
        if (!routable(n) && rt->route_epoch != sim.meta_->routing_epoch()) {
          // Stale-epoch forward: chase the redirect — refresh the cached
          // table from the MetaServer and retry once.
          sim.RefreshRoutingTable(*rt);
          if (!req.background_refresh) rt->current.redirects++;
          n = sim.FindNode(sim.CachedPrimary(*rt, req.partition));
        }
        if (!routable(n)) n = nullptr;
      }
    }
    if (n == nullptr) {
      // Either the fused pass flagged route_failed, or the serial
      // resolve above failed; settlement is identical and happens here,
      // at the forward's position in admission order.
      if (req.background_refresh) return;  // Refresh silently dropped.
      if (rt != nullptr) {
        rt->current.errors++;
        rt->current.unavailable++;
        // The proxy admitted this forward; refund its quota estimate.
        if (fwd.ctx.proxy_index < rt->proxies.size()) {
          rt->proxies[fwd.ctx.proxy_index]->AbandonForward(req.req_id);
        }
      }
      if (fwd.ctx.track_outcome) {
        sim.PublishOutcome(req.req_id,
                           ClientOutcome{Status::Unavailable("no primary"), ""});
      }
      return;
    }
    fwd.ctx.node = n->id();
    sim.inflight_[req.req_id] = fwd.ctx;
    // Node ids are dense (assigned by the sim in creation order), so the
    // id indexes the batch table directly.
    assert(static_cast<size_t>(n->id()) < batches.size());
    batches[static_cast<size_t>(n->id())].push_back(&req);
  };
  // Generated forwards live in their traffic slots (tenant-id order —
  // the legacy merge order), then injected forwards and background
  // refresh fetches in ctx.forwards.
  for (TickContext::TenantTraffic& tt : ctx.traffic) {
    for (PendingForward& fwd : tt.forwards) route_one(fwd);
  }
  for (PendingForward& fwd : ctx.forwards) route_one(fwd);

  // Parallel pass: submission — partition-quota admission and WFQ
  // enqueue — touches only the destination node's state. Each node sees
  // its requests in the same order as a serial walk of ctx.forwards.
  // Requests move into the node (their ctx.forwards slots are never
  // read again this tick), so key/value strings transfer, not copy.
  sim.executor_->MorselFor(
      "RouteSubmit", batches.size(), 1,
      [&sim, &batches](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; i++) {
          node::DataNode* n = sim.nodes_[i].get();
          assert(static_cast<size_t>(n->id()) == i);
          for (NodeRequest* req : batches[i]) {
            n->Submit(std::move(*req));
          }
        }
      });
}

// ---------------------------------------------------------------------------
// NodeSchedule
// ---------------------------------------------------------------------------

void NodeScheduleStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  auto& nodes = sim.nodes_;
  // DataNodes share no mutable state between Submit() and TakeResponses()
  // (each owns its cache, disk, WFQ, and engines; the clock is read-only
  // within a tick), so their ticks run concurrently.
  sim.executor_->MorselFor(
      "NodeTick", nodes.size(), 1, [&nodes](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; i++) nodes[i]->Tick();
      });
  // Deterministic merge: responses drain in node-id order, so downstream
  // settlement — and every floating-point metric sum — is independent of
  // worker count and scheduling. Each node's buffer is swapped out O(1);
  // the (cleared) per-node context buffer it gets back carries last
  // tick's capacity forward.
  if (ctx.responses.size() < nodes.size()) ctx.responses.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); i++) {
    nodes[i]->SwapResponses(ctx.responses[i]);
  }
}

// ---------------------------------------------------------------------------
// Replicate
// ---------------------------------------------------------------------------

bool ReplicateStage::ShipTenantStreams(ClusterSim& sim, TenantId tid,
                                       int lag) {
  auto& batches = batches_;
  const meta::TenantMeta* tm = sim.meta_->GetTenant(tid);
  if (tm == nullptr) return true;
  bool all_quiescent = true;
  for (PartitionId p = 0;
       p < static_cast<PartitionId>(tm->partitions.size()); p++) {
    const auto& reps = tm->partitions[p].replicas;
    node::DataNode* pn =
        reps.empty() ? nullptr : sim.FindNode(reps[0]);
    if (pn == nullptr || !pn->CanServe() || !pn->IsPrimaryFor(tid, p)) {
      // Primary dark: the stream head is frozen. Quiescent for the
      // active-set walk too — any path out of darkness (promotion,
      // failback, recovery) bumps the routing epoch, which rebuilds the
      // walk's work list.
      continue;
    }
    storage::LsmEngine* src = pn->EngineFor(tid, p);
    if (src == nullptr) continue;
    const uint64_t cur = src->applied_seq();
    auto hold = sim.split_log_holds_.find(ClusterSim::PartitionKey(tid, p));
    const bool held = hold != sim.split_log_holds_.end();
    if (held) all_quiescent = false;  // Split windows move under the walk.
    if (reps.size() < 2) {
      // No replica will ever pull this stream; keep the log empty so a
      // replicas=1 tenant does not grow memory with every write. A
      // replica added later is seeded by snapshot anyway. An active
      // online split still holds the log at its window start — the
      // cutover replays it.
      uint64_t solo_trunc = cur;
      if (held) solo_trunc = std::min(solo_trunc, hold->second);
      src->TruncateReplLogThrough(solo_trunc);
      continue;
    }

    // Replica cursors first: they seed a freshly tracked stream's
    // history and bound the log truncation below.
    struct ReplicaCursor {
      node::DataNode* node = nullptr;
      storage::LsmEngine* engine = nullptr;
      uint64_t applied = 0;
    };
    // Replication factors are small (2-3); inline storage keeps the
    // per-partition pass off the heap.
    SmallVec<ReplicaCursor, 8> cursors;
    uint64_t min_cursor = cur;
    for (size_t r = 1; r < reps.size(); r++) {
      node::DataNode* rn = sim.FindNode(reps[r]);
      if (rn == nullptr) continue;
      storage::LsmEngine* re = rn->EngineFor(tid, p);
      if (re == nullptr) continue;
      cursors.push_back(ReplicaCursor{rn, re, re->applied_seq()});
      min_cursor = std::min(min_cursor, cursors.back().applied);
    }

    ClusterSim::ReplState& st =
        sim.repl_state_[ClusterSim::PartitionKey(tid, p)];
    const bool primary_stable = st.primary == reps[0];
    if (st.primary != reps[0]) {
      // Promotion or failback moved the stream head: the old
      // primary's acked-seq history must not gate the new primary's
      // (reused) sequence numbers, or its fresh writes would ship
      // with collapsed lag. Reseed below as for a new stream.
      st.acked_history.clear();
      st.primary = reps[0];
    }
    if (st.acked_history.empty()) {
      // First sighting of this stream (or a fresh primary): what the
      // replicas already hold counts as shipped; everything
      // acknowledged from here on waits the full configured lag.
      // Without this seeding the not-yet-full history would ship a
      // young stream's writes with effectively zero lag.
      for (int i = 0; i < lag; i++) st.acked_history.push_back(min_cursor);
    }
    st.acked_history.push_back(cur);
    while (st.acked_history.size() > static_cast<size_t>(lag) + 1) {
      st.acked_history.pop_front();
    }
    // A promotion can rewind the stream head (the new primary applied
    // less than the old one acknowledged); clamp the floor to it.
    const uint64_t floor = std::min(st.acked_history.front(), cur);
    st.prev_primary_applied = st.primary_applied;
    st.primary_applied = cur;

    SmallVec<storage::LsmEngine*, 8> replica_engines;
    for (const ReplicaCursor& rc : cursors) {
      replica_engines.push_back(rc.engine);
      // Down replicas hold the log open (min_cursor above) and catch
      // up through the recovery resync path instead.
      if (!rc.node->CanServe() || rc.applied >= floor) continue;
      Shipment sh;
      sh.tenant = tid;
      sh.partition = p;
      sh.src = src;
      sh.after = rc.applied;
      sh.through = floor;
      sh.snapshot = !src->repl_log().Covers(rc.applied);
      assert(static_cast<size_t>(rc.node->id()) < batches.size());
      batches[static_cast<size_t>(rc.node->id())].push_back(sh);
    }
    // Every retained record above min(min_cursor, floor) may still be
    // needed by this tick's shipments or a recovering replica. The
    // same bound truncates the replicas' own logs (they re-append
    // every applied record so a promoted replica can serve the
    // stream): records the whole placement has applied are dead
    // weight on every copy. An active online split additionally holds
    // every copy's log at its streaming-window start, so the cutover
    // can replay the window no matter which replica is primary by
    // then. Serial pass: safe to mutate here.
    uint64_t trunc = std::min(min_cursor, floor);
    if (held) trunc = std::min(trunc, hold->second);
    src->TruncateReplLogThrough(trunc);
    for (storage::LsmEngine* re : replica_engines) {
      re->TruncateReplLogThrough(trunc);
    }

    // Quiescence: a revisit is a state no-op only when the stream head
    // did not just move under us (stable primary), every configured
    // replica is tracked and fully caught up, and the whole acked
    // history already sits at the head (so push/trim/floor/truncate all
    // repeat verbatim). Any later write reaches this walk as a node
    // response before it runs; everything else bumps the epoch.
    bool settled = primary_stable && !held &&
                   cursors.size() == reps.size() - 1 && min_cursor == cur;
    if (settled) {
      for (uint64_t acked : st.acked_history) {
        if (acked != cur) {
          settled = false;
          break;
        }
      }
    }
    if (!settled) all_quiescent = false;
  }
  return all_quiescent;
}

void ReplicateStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  const int lag = std::max(0, sim.options_.replication_lag_ticks);

  if (batches_.size() < sim.nodes_.size()) batches_.resize(sim.nodes_.size());
  for (auto& b : batches_) b.clear();
  auto& batches = batches_;

  // Serial pass, (tenant, partition) order: advance each stream's
  // acked-seq history, derive the shipping floor under the configured
  // lag, batch per destination node, and truncate the primary's log
  // below the slowest replica cursor.
  if (sim.options_.dense_tick) {
    for (auto& [tid, rt] : sim.tenants_) {
      (void)rt;
      ShipTenantStreams(sim, tid, lag);
    }
  } else {
    // Active-set walk. The work list is conservative: rebuilt from the
    // full tenant map whenever the routing epoch moved (any placement
    // mutation — failover, recovery, migration, split cutover), and
    // extended by every tenant with a data-plane response this tick
    // (NodeSchedule already ran, so a write that advanced a primary's
    // applied seq has its response in ctx.responses here). Tenants
    // drain from the list once every stream proves quiescent.
    if (sim.repl_seen_epoch_ != sim.meta_->routing_epoch()) {
      sim.repl_seen_epoch_ = sim.meta_->routing_epoch();
      for (const auto& [tid, rt] : sim.tenants_) {
        (void)rt;
        sim.repl_active_.insert(tid);
      }
    }
    for (const auto& node_responses : ctx.responses) {
      for (const NodeResponse& resp : node_responses) {
        sim.repl_active_.insert(resp.tenant);
      }
    }
    for (auto it = sim.repl_active_.begin(); it != sim.repl_active_.end();) {
      if (ShipTenantStreams(sim, *it, lag)) {
        it = sim.repl_active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Parallel pass: each node applies only the streams addressed to it
  // (its own replica engines); the source primary logs are read-only
  // here, so the fan-out is race-free and node-id-ordered batches keep
  // it bit-identical across worker counts.
  sim.executor_->MorselFor(
      "ReplApply", batches.size(), 1,
      [&sim, &batches](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; i++) {
          node::DataNode* n = sim.nodes_[i].get();
          for (const Shipment& sh : batches[i]) {
            if (sh.snapshot) {
              n->ResyncReplica(sh.tenant, sh.partition, *sh.src);
              continue;
            }
            bool gapped = false;
            sh.src->repl_log().ForEachDelta(
                sh.after, sh.through,
                [&](const storage::ReplRecordPtr& rec) {
                  if (!n->ApplyReplicated(sh.tenant, sh.partition, rec)) {
                    gapped = true;
                    return false;
                  }
                  return true;
                });
            if (gapped) {
              // Unexpected gap: fall back to a full re-seed.
              n->ResyncReplica(sh.tenant, sh.partition, *sh.src);
            }
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Settle
// ---------------------------------------------------------------------------

void SettleStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  if (sim.options_.latency.enabled) {
    // Timed path: virtual completion times, (virtual_time, req_id)
    // delivery order, hedging, gray/SLO signals.
    sim.SettleWithTiming(ctx);
  } else {
    // Legacy path: node-id drain order, bit-identical to the seed.
    for (const auto& node_responses : ctx.responses) {
      for (const NodeResponse& resp : node_responses) {
        sim.DeliverResponse(resp);
      }
    }
  }

  // Asynchronous proxy traffic control.
  sim.tick_count_++;
  if (sim.options_.meta_report_interval_ticks > 0 &&
      sim.tick_count_ % static_cast<uint64_t>(
                            sim.options_.meta_report_interval_ticks) ==
          0) {
    double interval_sec =
        static_cast<double>(sim.options_.meta_report_interval_ticks) *
        static_cast<double>(sim.options_.tick) /
        static_cast<double>(kMicrosPerSecond);
    if (sim.options_.dense_tick) {
      for (auto& [tid, rt] : sim.tenants_) {
        double total = 0;
        for (auto& p : rt.proxies) total += p->ReportAndResetAdmittedRu();
        bool clamp = sim.meta_->ReportProxyTraffic(tid, total / interval_sec);
        for (auto& p : rt.proxies) p->SetClamped(clamp);
      }
    } else {
      // Active-set report: tenants untouched since the last report
      // admitted nothing, so their report would be 0 RU/s — a no-op for
      // an unclamped tenant (the MetaServer's traffic monitor is
      // stateless per report and SetClamped(false) on an unclamped
      // proxy is idempotent). Clamped tenants must keep reporting: the
      // zero report is exactly what un-clamps them. The union iterates
      // in ascending tenant id — the dense report order.
      const std::vector<TenantId>& visit =
          sim.SortedUnion(sim.report_touched_, sim.clamped_tenants_);
      sim.clamped_tenants_.clear();
      for (TenantId tid : visit) {
        TenantRuntime** slot = sim.tenant_index_.Find(tid);
        if (slot == nullptr) continue;
        TenantRuntime& rt = **slot;
        double total = 0;
        for (auto& p : rt.proxies) total += p->ReportAndResetAdmittedRu();
        bool clamp = sim.meta_->ReportProxyTraffic(tid, total / interval_sec);
        for (auto& p : rt.proxies) p->SetClamped(clamp);
        if (clamp) sim.clamped_tenants_.push_back(tid);
      }
    }
    sim.report_touched_.clear();
    sim.report_epoch_++;
  }

  sim.SweepExpiredOutcomes();
  sim.FinalizeTickMetrics();
  sim.clock_.Advance(sim.options_.tick);
}

// ---------------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------------

void ControlStage::Run(TickContext&) {
  ClusterSim& sim = *sim_;
  const SimOptions& opt = sim.options_;

  // In-flight background data movement advances every tick, whatever
  // the decision cadence: split streaming / cutover / purge, then the
  // queued migration copies.
  if (!sim.active_splits_.empty()) sim.AdvanceSplits();
  if (!sim.migration_queue_.empty()) sim.AdvanceMigrations();

  // Decision loops. tick_count_ was already advanced by Settle, so an
  // interval of N fires first at the Nth tick.
  if (opt.control_interval_ticks > 0) {
    sim.AccumulateControlUsage();
    if (sim.tick_count_ %
            static_cast<uint64_t>(opt.control_interval_ticks) ==
        0) {
      sim.RunAutoscalers();
    }
  }
  if (opt.resched_interval_ticks > 0 &&
      sim.tick_count_ % static_cast<uint64_t>(opt.resched_interval_ticks) ==
          0) {
    sim.PlanRescheduling();
  }
}

// ---------------------------------------------------------------------------
// TickPipeline
// ---------------------------------------------------------------------------

TickPipeline::TickPipeline(ClusterSim* sim) {
  stages_.push_back(std::make_unique<FaultStage>(sim));
  stages_.push_back(std::make_unique<GenerateStage>(sim));
  stages_.push_back(std::make_unique<ProxyAdmitStage>(sim));
  stages_.push_back(std::make_unique<RouteStage>(sim));
  stages_.push_back(std::make_unique<NodeScheduleStage>(sim));
  stages_.push_back(std::make_unique<ReplicateStage>(sim));
  stages_.push_back(std::make_unique<SettleStage>(sim));
  stages_.push_back(std::make_unique<ControlStage>(sim));
}

void TickPipeline::RunTick() {
  ctx_.Reset();
  if (stage_timing_) {
    if (stage_nanos_.size() < stages_.size()) {
      stage_nanos_.resize(stages_.size(), 0);
    }
    for (size_t i = 0; i < stages_.size(); i++) {
      TraceSpan span(trace_, stages_[i]->name(), 0);
      auto t0 = std::chrono::steady_clock::now();
      stages_[i]->Run(ctx_);
      auto t1 = std::chrono::steady_clock::now();
      stage_nanos_[i] += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
    }
    return;
  }
  for (auto& stage : stages_) {
    TraceSpan span(trace_, stage->name(), 0);
    stage->Run(ctx_);
  }
}

}  // namespace sim
}  // namespace abase
