#include "sim/pipeline.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "sim/cluster_sim.h"

namespace abase {
namespace sim {

// ---------------------------------------------------------------------------
// Generate
// ---------------------------------------------------------------------------

void GenerateStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  // Tenant slots in id order (tenants_ is an ordered map); generators
  // then fill them concurrently — each owns a private RNG stream.
  std::vector<TenantRuntime*> runtimes;
  for (auto& [tid, rt] : sim.tenants_) {
    if (rt.workload == nullptr) continue;
    TickContext::TenantTraffic slot;
    slot.tenant = tid;
    ctx.traffic.push_back(std::move(slot));
    runtimes.push_back(&rt);
  }
  const Micros now = sim.clock_.NowMicros();
  const Micros tick_len = sim.options_.tick;
  sim.executor_->ParallelFor(runtimes.size(), [&](size_t i) {
    ctx.traffic[i].requests = runtimes[i]->workload->Tick(now, tick_len);
  });

  ctx.injected = std::move(sim.injected_);
  sim.injected_.clear();
}

// ---------------------------------------------------------------------------
// ProxyAdmit
// ---------------------------------------------------------------------------

void ProxyAdmitStage::AdmitOne(
    TenantRuntime& rt, const ClientRequest& req,
    std::vector<PendingForward>& out,
    std::vector<std::pair<uint64_t, ClientOutcome>>& deferred) {
  rt.current.issued++;

  // Writes invalidate the key across the tenant's proxy caches (a
  // write-through invalidation broadcast; keeps the synchronous client
  // API read-your-writes while the paper's model remains eventually
  // consistent under races).
  if (!IsReadOp(req.op)) {
    for (auto& p : rt.proxies) p->InvalidateCache(req.key);
  }

  size_t proxy_index = rt.router->Route(req.key, rt.router_rng);
  proxy::Proxy& px = *rt.proxies[proxy_index];
  proxy::ProxyHandleResult res = px.Handle(req);
  if (res.action == proxy::ProxyHandleResult::Action::kForward) {
    PendingForward fwd;
    fwd.request = std::move(res.forward);
    fwd.ctx.tenant = req.tenant;
    fwd.ctx.proxy_index = proxy_index;
    fwd.ctx.track_outcome = req.track_outcome;
    out.push_back(std::move(fwd));
  } else {
    sim_->SettleLocalProxyResult(rt, req, res, &deferred);
  }
}

void ProxyAdmitStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;

  // Bulk per-tenant traffic, tenants concurrently: every touched piece
  // of state — proxies, router RNG stream, tick metrics — is private to
  // the tenant, and generated requests never track outcomes, so nothing
  // sim-wide is written. Each tenant fills its own forward buffer.
  sim.executor_->ParallelFor(ctx.traffic.size(), [&](size_t i) {
    TickContext::TenantTraffic& tt = ctx.traffic[i];
    auto it = sim.tenants_.find(tt.tenant);
    if (it == sim.tenants_.end()) return;
    std::vector<std::pair<uint64_t, ClientOutcome>> unused;
    for (const ClientRequest& req : tt.requests) {
      // Generated traffic never tracks outcomes; nothing defers.
      assert(!req.track_outcome);
      AdmitOne(it->second, req, tt.forwards, unused);
    }
  });
  // Deterministic merge in tenant-id order.
  for (TickContext::TenantTraffic& tt : ctx.traffic) {
    for (PendingForward& fwd : tt.forwards) {
      ctx.forwards.push_back(std::move(fwd));
    }
    tt.forwards.clear();
  }

  // Injected requests (async clients, tests) are admitted in batches:
  // grouped by tenant (injection order preserved within a tenant) and
  // fanned out across the executor like bulk traffic. Tracked outcomes
  // settle into tenant-private buffers and are published serially in
  // tenant-id order below, so callback invocation order is deterministic
  // regardless of worker count.
  struct InjectedBatch {
    TenantRuntime* rt = nullptr;
    std::vector<const ClientRequest*> requests;
    std::vector<PendingForward> forwards;
    std::vector<std::pair<uint64_t, ClientOutcome>> deferred;
  };
  std::map<TenantId, InjectedBatch> batches;
  for (const ClientRequest& req : ctx.injected) {
    auto it = sim.tenants_.find(req.tenant);
    if (it == sim.tenants_.end()) {
      // Unknown tenant: a tracked submitter still gets an answer —
      // dropping silently would strand its subscription (and any future
      // waiting on it) forever.
      if (req.track_outcome) {
        sim.PublishOutcome(
            req.req_id, ClientOutcome{Status::Unavailable("no such tenant"),
                                      ""});
      }
      continue;
    }
    InjectedBatch& b = batches[req.tenant];
    b.rt = &it->second;
    b.requests.push_back(&req);
  }
  std::vector<InjectedBatch*> batch_list;
  batch_list.reserve(batches.size());
  for (auto& [tid, b] : batches) batch_list.push_back(&b);
  sim.executor_->ParallelFor(batch_list.size(), [&](size_t i) {
    InjectedBatch& b = *batch_list[i];
    for (const ClientRequest* req : b.requests) {
      AdmitOne(*b.rt, *req, b.forwards, b.deferred);
    }
  });
  for (InjectedBatch* b : batch_list) {
    for (PendingForward& fwd : b->forwards) {
      ctx.forwards.push_back(std::move(fwd));
    }
    for (auto& [req_id, outcome] : b->deferred) {
      sim.PublishOutcome(req_id, std::move(outcome));
    }
  }

  // AU-LRU active-update refresh fetches (background traffic) enter the
  // data plane behind all client traffic. Serial: refresh ids come from
  // the sim-wide allocator in a deterministic order.
  for (auto& [tid, rt] : sim.tenants_) {
    for (size_t p = 0; p < rt.proxies.size(); p++) {
      for (NodeRequest& req : rt.proxies[p]->TakeRefreshFetches()) {
        PendingForward fwd;
        fwd.request = std::move(req);
        fwd.ctx.tenant = tid;
        fwd.ctx.proxy_index = p;
        fwd.ctx.track_outcome = false;
        ctx.forwards.push_back(std::move(fwd));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Route
// ---------------------------------------------------------------------------

void RouteStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;

  // Serial pass: resolve primaries, register the in-flight contexts
  // (sim-wide table), and batch forwards per destination node.
  std::vector<std::vector<const NodeRequest*>> batches(sim.nodes_.size());
  for (PendingForward& fwd : ctx.forwards) {
    const NodeRequest& req = fwd.request;
    NodeId nid = sim.meta_->PrimaryFor(req.tenant, req.partition);
    node::DataNode* n = sim.FindNode(nid);
    if (n == nullptr) {
      if (req.background_refresh) continue;  // Refresh silently dropped.
      auto it = sim.tenants_.find(fwd.ctx.tenant);
      if (it != sim.tenants_.end()) it->second.current.errors++;
      if (fwd.ctx.track_outcome) {
        sim.PublishOutcome(req.req_id,
                           ClientOutcome{Status::Unavailable("no primary"), ""});
      }
      continue;
    }
    sim.inflight_[req.req_id] = fwd.ctx;
    // Node ids are dense (assigned by the sim in creation order), so the
    // id indexes the batch table directly.
    assert(static_cast<size_t>(nid) < batches.size());
    batches[static_cast<size_t>(nid)].push_back(&req);
  }

  // Parallel pass: submission — partition-quota admission and WFQ
  // enqueue — touches only the destination node's state. Each node sees
  // its requests in the same order as a serial walk of ctx.forwards.
  sim.executor_->ParallelFor(batches.size(), [&](size_t i) {
    node::DataNode* n = sim.nodes_[i].get();
    assert(static_cast<size_t>(n->id()) == i);
    for (const NodeRequest* req : batches[i]) {
      n->Submit(*req);
    }
  });
}

// ---------------------------------------------------------------------------
// NodeSchedule
// ---------------------------------------------------------------------------

void NodeScheduleStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  auto& nodes = sim.nodes_;
  // DataNodes share no mutable state between Submit() and TakeResponses()
  // (each owns its cache, disk, WFQ, and engines; the clock is read-only
  // within a tick), so their ticks run concurrently.
  sim.executor_->ParallelFor(
      nodes.size(), [&nodes](size_t i) { nodes[i]->Tick(); });
  // Deterministic merge: responses drain in node-id order, so downstream
  // settlement — and every floating-point metric sum — is independent of
  // worker count and scheduling.
  for (auto& n : nodes) {
    for (NodeResponse& resp : n->TakeResponses()) {
      ctx.responses.push_back(std::move(resp));
    }
  }
}

// ---------------------------------------------------------------------------
// Settle
// ---------------------------------------------------------------------------

void SettleStage::Run(TickContext& ctx) {
  ClusterSim& sim = *sim_;
  for (const NodeResponse& resp : ctx.responses) {
    sim.DeliverResponse(resp);
  }

  // Asynchronous proxy traffic control.
  sim.tick_count_++;
  if (sim.options_.meta_report_interval_ticks > 0 &&
      sim.tick_count_ % static_cast<uint64_t>(
                            sim.options_.meta_report_interval_ticks) ==
          0) {
    double interval_sec =
        static_cast<double>(sim.options_.meta_report_interval_ticks) *
        static_cast<double>(sim.options_.tick) /
        static_cast<double>(kMicrosPerSecond);
    for (auto& [tid, rt] : sim.tenants_) {
      double total = 0;
      for (auto& p : rt.proxies) total += p->ReportAndResetAdmittedRu();
      bool clamp = sim.meta_->ReportProxyTraffic(tid, total / interval_sec);
      for (auto& p : rt.proxies) p->SetClamped(clamp);
    }
  }

  sim.SweepExpiredOutcomes();
  sim.FinalizeTickMetrics();
  sim.clock_.Advance(sim.options_.tick);
}

// ---------------------------------------------------------------------------
// TickPipeline
// ---------------------------------------------------------------------------

TickPipeline::TickPipeline(ClusterSim* sim) {
  stages_.push_back(std::make_unique<GenerateStage>(sim));
  stages_.push_back(std::make_unique<ProxyAdmitStage>(sim));
  stages_.push_back(std::make_unique<RouteStage>(sim));
  stages_.push_back(std::make_unique<NodeScheduleStage>(sim));
  stages_.push_back(std::make_unique<SettleStage>(sim));
}

void TickPipeline::RunTick() {
  TickContext ctx;
  for (auto& stage : stages_) stage->Run(ctx);
}

}  // namespace sim
}  // namespace abase
