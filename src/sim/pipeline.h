// The per-tick request pipeline.
//
// ClusterSim::Tick() used to be one monolithic loop that interleaved
// workload generation, proxy admission, routing, node scheduling, and
// response settlement inline. It is now an explicit eight-stage pipeline:
//
//   Fault        queued FailNode/RecoverNode events land (serial): dead
//       |        nodes drop their work and stranded in-flight requests
//       |        resolve Unavailable; failure-detection and catch-up
//       |        countdowns advance (failover promotion / real log-delta
//       |        resync + failback); planned re-replication copies
//       |        execute after their grace period
//   Generate     tenant workload generators (parallel per tenant) +
//       |        injected client requests
//       |        -> TickContext::traffic / injected
//   ProxyAdmit   cache / quota / forward decision per proxy (parallel
//       |        per tenant — each tenant owns its proxies, router RNG
//       |        stream, and metrics), plus AU-LRU refresh fetches
//       |        -> TickContext::forwards (PendingForward)
//   Route        partition -> DataNode resolution against the tenant's
//       |        epoch-stamped routing cache (primary for writes and
//       |        kPrimary reads; round-robin over alive replicas for
//       |        kEventual reads), with a redirect chase on stale
//       |        entries, and in-flight registration (serial), then
//       |        per-node submission (parallel per node)
//   NodeSchedule every DataNode runs its WFQ tick (parallel per node)
//       |        -> TickContext::responses (merged in node-id order)
//   Replicate    each partition's primary ships its acknowledged write
//       |        stream — delayed by SimOptions::replication_lag_ticks —
//       |        to the replica engines: shipping floors and batches are
//       |        computed serially in (tenant, partition) order, then
//       |        each node applies only the streams addressed to it
//       |        (parallel per node)
//   Settle       response delivery to proxies / metrics / client
//       |        outcomes (replica-read staleness sampled against the
//       |        primaries' cursors), MetaServer traffic report, clock
//       |        advance (serial barrier stage)
//   Control      the closed serverless loop (serial): hourly usage
//                roll-up -> per-tenant autoscaler -> quota application;
//                online split streaming / cutover / purge at
//                split_bytes_per_tick; throttled background migration
//                copies at migration_bytes_per_tick
//
// Parallel stages fan out over the simulator's Executor
// (SimOptions::data_plane_workers); every unit of parallel work is
// tenant- or node-private and all merges happen in fixed id order, so
// serial and parallel runs are bit-identical (the determinism contract
// in DESIGN.md; enforced by tests/pipeline_test.cc).
//
// Each stage is a named component with explicit inputs and outputs in
// the TickContext; tests can drive a request through one boundary at a
// time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/trace.h"
#include "common/types.h"
#include "node/request.h"
#include "sim/request_context.h"

namespace abase {
namespace storage {
class LsmEngine;
}  // namespace storage

namespace sim {

class ClusterSim;
struct TenantRuntime;
struct TenantTickMetrics;

/// Everything produced and consumed within one tick. Owned by the
/// TickPipeline and REUSED across ticks: Reset() clears the logical
/// contents but keeps every buffer's capacity (including the request
/// strings inside the traffic slots), so the steady-state data plane
/// makes no heap allocations. Stage N's outputs are stage N+1's inputs.
struct TickContext {
  /// One tenant's generated client traffic for this tick. The per-tenant
  /// split is what lets ProxyAdmit run tenants concurrently; `forwards`
  /// is that stage's tenant-private output buffer, merged in tenant-id
  /// order afterwards.
  struct TenantTraffic {
    TenantId tenant = 0;
    std::vector<ClientRequest> requests;   ///< Generate -> ProxyAdmit.
    std::vector<PendingForward> forwards;  ///< ProxyAdmit scratch.
  };

  /// Generate -> ProxyAdmit. Tenants in id order; each tenant's stream
  /// in generation order. Slots are reconciled (not rebuilt) by the
  /// Generate stage each tick so the request buffers keep their
  /// capacity.
  std::vector<TenantTraffic> traffic;
  /// Generate -> ProxyAdmit. Externally injected requests (tests, the
  /// synchronous abase::Client facade), in injection order. Handled
  /// after the bulk per-tenant traffic.
  std::vector<ClientRequest> injected;
  /// ProxyAdmit -> Route: injected forwards then background refresh
  /// fetches. Generated forwards stay in their tenant's traffic slot
  /// (TenantTraffic::forwards) — Route walks the slots in tenant-id
  /// order first, then this buffer, so the overall routing order is
  /// unchanged while the per-tick move-merge of every generated forward
  /// into one flat vector is gone.
  std::vector<PendingForward> forwards;
  /// Route scratch: per-node batch spans into `forwards` (outer index =
  /// dense node id). Pointers are only valid within the tick.
  std::vector<std::vector<NodeRequest*>> node_batches;
  /// NodeSchedule -> Settle. Per-node response buffers (outer index =
  /// dense node id), swapped O(1) with each node's accumulation buffer
  /// and consumed in node-id order.
  std::vector<std::vector<NodeResponse>> responses;

  /// Clears the tick's logical contents while keeping every buffer
  /// (and nested string) capacity for the next tick.
  void Reset() {
    // traffic slots are reconciled by GenerateStage; their request
    // buffers must survive so string capacity is reused.
    injected.clear();
    forwards.clear();
    for (auto& batch : node_batches) batch.clear();
    for (auto& r : responses) r.clear();
  }
};

/// One pipeline stage. Stages hold no per-tick state of their own; all
/// dataflow goes through the TickContext (simulator-owned state such as
/// caches and quotas is reached through the ClusterSim).
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void Run(TickContext& ctx) = 0;
};

/// Applies the fault events queued since the last tick (ClusterSim::
/// FailNode / RecoverNode) and advances the failure-detection and
/// recovery catch-up countdowns: promotion of surviving replicas after
/// the detection delay, failback once a recovered node finishes its WAL
/// catch-up. Entirely serial — node lifecycle and placement are sim-wide
/// state — and first in the tick, so a fault is effective at a tick
/// boundary no matter when it was injected.
class FaultStage final : public Stage {
 public:
  explicit FaultStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Fault"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
};

/// Emits this tick's client traffic: every tenant's workload generator
/// (concurrently — each generator owns a private RNG stream) plus
/// externally injected requests.
class GenerateStage final : public Stage {
 public:
  explicit GenerateStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Generate"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
  /// Tick-scoped scratch (cleared, not freed, every tick): the runtimes
  /// whose generators fill the traffic slots, in tenant-id order.
  std::vector<TenantRuntime*> runtimes_;
  /// Active-set mode: tenants whose rate-schedule cell hit exactly 0
  /// this tick, parked and removed from the active set after the walk.
  std::vector<TenantId> parked_scratch_;
};

/// Runs every client request through its tenant's proxy plane: write
/// invalidation broadcast, limited fan-out routing, then the proxy's
/// cache -> quota -> forward decision. Local outcomes (cache hits,
/// throttles) settle into tenant metrics immediately; forwards — plus
/// the proxies' background refresh fetches — move on as
/// PendingForwards. Tenant traffic is processed concurrently (tenants
/// share no proxy-plane state). Injected requests (clients, tests) are
/// admitted in batches too: grouped by tenant and fanned out across the
/// executor, with tracked outcomes collected into tenant-private buffers
/// and published serially in tenant-id order afterwards — this is what
/// lets hundreds of async clients keep thousands of commands in flight
/// without serializing the proxy plane. Refresh-id allocation stays
/// serial.
class ProxyAdmitStage final : public Stage {
 public:
  explicit ProxyAdmitStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "ProxyAdmit"; }
  void Run(TickContext& ctx) override;

 private:
  /// Handles one client request against its tenant's proxy plane. On
  /// forward the request is materialized into out[out_count++] — a
  /// recycled PendingForward slot whose string capacity is reused
  /// (callers resize(out_count) after the batch; slots past the cursor
  /// hold stale-but-capacitated strings). Locally settled tracked
  /// outcomes append to `deferred`. Metric increments land in `m`: the
  /// caller passes rt.current (injected batches, preserving the legacy
  /// accumulation order) or a per-worker scratch merged once per batch
  /// (generated morsels). Non-scan forwards admitted before any scan
  /// this tick are also *routed* here (ClusterSim::FusedRoutePoint),
  /// fusing the admit and route walks. Safe to run tenant-concurrently:
  /// every touched buffer is tenant-private.
  void AdmitOne(TenantRuntime& rt, const ClientRequest& req,
                std::vector<PendingForward>& out, size_t& out_count,
                std::vector<std::pair<uint64_t, ClientOutcome>>& deferred,
                TenantTickMetrics& m);

  /// One tenant's slice of this tick's injected requests. The pointer
  /// array lives in the stage arena (trivially destructible, dies at the
  /// tick boundary); the descriptors themselves recycle their vector.
  struct InjectedBatch {
    TenantId tenant = 0;
    TenantRuntime* rt = nullptr;
    const ClientRequest** requests = nullptr;  ///< Arena-backed.
    uint32_t count = 0;   ///< Sized in the counting pass.
    uint32_t filled = 0;  ///< Fill cursor for the second pass.
  };
  /// Tenant-private output buffers for one injected batch. PendingForward
  /// and ClientOutcome carry strings — non-trivial types the arena never
  /// destroys — so these recycle as ordinary vectors instead.
  struct InjectedBuffers {
    std::vector<PendingForward> forwards;
    std::vector<std::pair<uint64_t, ClientOutcome>> deferred;
  };

  ClusterSim* sim_;
  /// Tick-scoped scratch for injected-request grouping (async clients
  /// keep this path hot every tick): tenant -> batch slot, the arena
  /// behind the request-pointer arrays, and the recycled outputs.
  FlatMap64<uint32_t> injected_index_;
  Arena injected_arena_;
  std::vector<InjectedBatch> injected_batches_;
  std::vector<InjectedBuffers> injected_buffers_;
};

/// Resolves each forward's partition to a primary DataNode against its
/// tenant's epoch-stamped routing cache — NOT the MetaServer oracle. A
/// forward whose cached entry is unroutable (failed node, demoted or
/// absent replica) under a stale epoch chases one redirect: the table
/// refreshes and the resolve retries (counted per forward in
/// TenantTickMetrics::redirects). Still-unroutable forwards settle as
/// Unavailable through PublishOutcome. Registration is serial; each
/// node's batch is then submitted in parallel (partition-quota admission
/// and WFQ enqueue touch only that node's state).
class RouteStage final : public Stage {
 public:
  explicit RouteStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Route"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
};

/// Runs every DataNode's scheduling tick through the simulator's
/// executor. Nodes are mutually independent between Submit() and
/// TakeResponses(), so this is the heaviest parallel stage; responses
/// are drained and merged in node-id order afterwards so downstream
/// settlement is independent of worker count.
class NodeScheduleStage final : public Stage {
 public:
  explicit NodeScheduleStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "NodeSchedule"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
};

/// Ships every partition's acknowledged primary writes to its replica
/// engines, `SimOptions::replication_lag_ticks` ticks behind the
/// acknowledgements. The serial pass walks partitions in (tenant,
/// partition) order: it advances each stream's acked-seq history, picks
/// the shipping floor, batches the per-replica log deltas by destination
/// node, and truncates the primary's log below the slowest cursor. The
/// parallel pass then lets each node apply the batches addressed to it —
/// a node only ever mutates its own replica engines, and the source
/// primary logs are read-only during the fan-out, so runs stay
/// bit-identical across worker counts. A replica whose cursor fell
/// behind a truncated log is re-seeded with a snapshot resync instead.
class ReplicateStage final : public Stage {
 public:
  explicit ReplicateStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Replicate"; }
  void Run(TickContext& ctx) override;

 private:
  /// One stream segment addressed to a replica node: records
  /// (after, through] of the source primary's log, or a snapshot resync
  /// when the log no longer covers the replica's cursor.
  struct Shipment {
    TenantId tenant = 0;
    PartitionId partition = 0;
    const storage::LsmEngine* src = nullptr;
    uint64_t after = 0;
    uint64_t through = 0;
    bool snapshot = false;
  };

  /// Serial per-tenant pass: advances every partition stream of `tid`
  /// (acked-seq history, shipping floor, per-node shipment batches, log
  /// truncation). Returns true when every stream is quiescent — a
  /// revisit with unchanged inputs would be a state no-op — so the
  /// active-set walk can drop the tenant until a response, a routing-
  /// epoch move, or a preload/resync/split hook re-activates it.
  bool ShipTenantStreams(ClusterSim& sim, TenantId tid, int lag);

  ClusterSim* sim_;
  /// Per-node shipment batches (outer index = dense node id). Cleared,
  /// not freed, every tick.
  std::vector<std::vector<Shipment>> batches_;
};

/// Delivers responses back through the forwarding proxies (quota
/// settlement, cache fill) into tenant metrics and tracked client
/// outcomes; then runs the periodic MetaServer traffic report, seals the
/// tick's metrics, and advances the simulated clock. The pipeline's
/// serial barrier stage.
class SettleStage final : public Stage {
 public:
  explicit SettleStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Settle"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
};

/// The closed serverless control loop, after the tick has fully settled
/// (entirely serial). Every tick it advances the in-flight background
/// work: online partition splits stream their re-hashed key ranges out
/// of the parent primaries at SimOptions::split_bytes_per_tick (with an
/// atomic, epoch-bumped cutover once the snapshot and the held
/// replication-log window have been replayed into the staged children),
/// and queued rescheduler migrations copy at migration_bytes_per_tick
/// before MetaServer::MigrateReplica installs them. Every
/// control_interval_ticks it rolls the settled RU into each tenant's
/// hourly usage series and runs the per-tenant autoscaler (predictive
/// Algorithm 1 forecast or the reactive baseline), applying decisions
/// through MetaServer::SetTenantQuota; every resched_interval_ticks it
/// snapshots the pools into the rescheduler and enqueues the planned
/// moves.
class ControlStage final : public Stage {
 public:
  explicit ControlStage(ClusterSim* sim) : sim_(sim) {}
  const char* name() const override { return "Control"; }
  void Run(TickContext& ctx) override;

 private:
  ClusterSim* sim_;
};

/// The eight stages, in order. Owned by the ClusterSim; tests may run
/// stages one at a time against their own TickContext.
class TickPipeline {
 public:
  explicit TickPipeline(ClusterSim* sim);

  /// Runs the pipeline's persistent TickContext through all stages (one
  /// full tick). The context is Reset() — cleared, capacity kept — not
  /// reconstructed, so steady-state ticks reuse every buffer.
  void RunTick();

  /// Routes one trace slice per stage per tick to `t` (nullptr
  /// detaches; the untraced path costs one branch per stage).
  void SetTrace(TraceWriter* t) { trace_ = t; }

  /// Wall-clock per-stage cost attribution (bench instrumentation):
  /// when enabled, RunTick wraps every stage in a steady_clock pair and
  /// accumulates the elapsed nanoseconds per stage index. Timing is an
  /// observation only — it never feeds back into the simulation, so
  /// determinism is untouched. Off by default (two clock reads per
  /// stage per tick are measurable at millions of ticks).
  void SetStageTiming(bool enabled) { stage_timing_ = enabled; }

  /// Accumulated nanoseconds spent in stage `i` since the last reset
  /// (0 when timing was never enabled).
  uint64_t stage_nanos(size_t i) const {
    return i < stage_nanos_.size() ? stage_nanos_[i] : 0;
  }
  void ResetStageNanos() {
    for (uint64_t& n : stage_nanos_) n = 0;
  }

  size_t num_stages() const { return stages_.size(); }
  Stage& stage(size_t i) { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  TickContext ctx_;
  TraceWriter* trace_ = nullptr;
  bool stage_timing_ = false;
  std::vector<uint64_t> stage_nanos_;
};

}  // namespace sim
}  // namespace abase
