#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>

namespace abase {
namespace sim {

ClusterSim::ClusterSim(SimOptions options)
    : options_(options), clock_(0), rng_(options.seed) {
  meta_ = std::make_unique<meta::MetaServer>(&clock_);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

PoolId ClusterSim::AddPool(size_t num_nodes) {
  return AddPool(num_nodes, options_.node);
}

PoolId ClusterSim::AddPool(size_t num_nodes,
                           const node::DataNodeOptions& node_options) {
  std::vector<node::DataNode*> raw;
  constexpr uint32_t kAvailabilityZones = 3;
  for (size_t i = 0; i < num_nodes; i++) {
    nodes_.push_back(std::make_unique<node::DataNode>(next_node_id_++,
                                                      node_options, &clock_));
    nodes_.back()->set_az(static_cast<uint32_t>(i) % kAvailabilityZones);
    raw.push_back(nodes_.back().get());
  }
  return meta_->CreatePool(std::move(raw));
}

Status ClusterSim::AddTenant(const meta::TenantConfig& config, PoolId pool,
                             proxy::RoutingMode mode) {
  ABASE_RETURN_IF_ERROR(meta_->CreateTenant(config, pool));

  TenantRuntime rt;
  rt.config = config;
  rt.routing_mode = mode;
  rt.router = std::make_unique<proxy::LimitedFanoutRouter>(
      config.num_proxies, config.num_proxy_groups, mode);

  double proxy_quota =
      config.tenant_quota_ru / static_cast<double>(config.num_proxies);
  TenantId tid = config.id;
  for (uint32_t p = 0; p < config.num_proxies; p++) {
    proxy::ProxyOptions popt = options_.proxy;
    popt.replicas = config.replicas;
    rt.proxies.push_back(std::make_unique<proxy::Proxy>(
        p, tid, proxy_quota, popt, &clock_,
        [this, tid](const std::string& key) {
          return meta_->PartitionFor(tid, key);
        }));
  }
  tenants_.emplace(config.id, std::move(rt));
  return Status::OK();
}

void ClusterSim::SetWorkload(TenantId tenant, const WorkloadProfile& profile) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.workload = std::make_unique<WorkloadGenerator>(
      tenant, profile, options_.seed ^ (0x9e3779b9ull * (tenant + 1)));
}

void ClusterSim::PreloadKeys(TenantId tenant, uint64_t num_keys,
                             uint64_t value_bytes, double value_sigma) {
  Rng rng(977 * (static_cast<uint64_t>(tenant) + 1));
  for (uint64_t i = 0; i < num_keys; i++) {
    std::string key =
        "t" + std::to_string(tenant) + ":k" + std::to_string(i);
    PartitionId part = meta_->PartitionFor(tenant, key);
    node::DataNode* n = FindNode(meta_->PrimaryFor(tenant, part));
    if (n == nullptr) continue;
    storage::LsmEngine* engine = n->EngineFor(tenant, part);
    if (engine == nullptr) continue;
    double bytes = rng.NextLogNormal(
        std::log(static_cast<double>(std::max<uint64_t>(1, value_bytes))),
        value_sigma);
    size_t len = static_cast<size_t>(
        std::min(std::max(bytes, 1.0), 1024.0 * 1024));
    (void)engine->Put(key, std::string(len, 'v'));
  }
}

WorkloadProfile* ClusterSim::MutableWorkload(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.workload == nullptr) return nullptr;
  return &it->second.workload->profile();
}

node::DataNode* ClusterSim::FindNode(NodeId id) {
  for (auto& n : nodes_) {
    if (n->id() == id) return n.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Experiment switches
// ---------------------------------------------------------------------------

void ClusterSim::SetProxyQuotaEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_quota_enabled(enabled);
}

void ClusterSim::SetProxyCacheEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_cache_enabled(enabled);
}

void ClusterSim::SetPartitionQuotaEnabled(bool enabled) {
  for (auto& n : nodes_) n->SetPartitionQuotaEnforcement(enabled);
}

// ---------------------------------------------------------------------------
// Request routing
// ---------------------------------------------------------------------------

void ClusterSim::InjectRequest(const ClientRequest& req) {
  injected_.push_back(req);
}

void ClusterSim::RouteClientRequest(const ClientRequest& req) {
  auto it = tenants_.find(req.tenant);
  if (it == tenants_.end()) return;
  TenantRuntime& rt = it->second;
  rt.current.issued++;

  // Writes invalidate the key across the tenant's proxy caches (a
  // write-through invalidation broadcast; keeps the synchronous client
  // API read-your-writes while the paper's model remains eventually
  // consistent under races).
  if (!IsReadOp(req.op)) {
    for (auto& p : rt.proxies) p->InvalidateCache(req.key);
  }

  size_t proxy_index = rt.router->Route(req.key, rng_);
  proxy::Proxy& px = *rt.proxies[proxy_index];
  proxy::ProxyHandleResult res = px.Handle(req);

  switch (res.action) {
    case proxy::ProxyHandleResult::Action::kServedFromCache:
      rt.current.ok++;
      rt.current.proxy_hits++;
      rt.current.latency_sum += static_cast<double>(res.latency);
      rt.current.latency_max = std::max(rt.current.latency_max, res.latency);
      rt.current.latency_count++;
      rt.latency_hist.Add(static_cast<double>(res.latency));
      rt.value_bytes_sum += res.value.size();
      rt.value_bytes_count++;
      if (req.track_outcome) {
        outcomes_[req.req_id] = ClientOutcome{Status::OK(), res.value};
      }
      break;
    case proxy::ProxyHandleResult::Action::kThrottled:
      rt.current.errors++;
      rt.current.throttled++;
      if (req.track_outcome) {
        outcomes_[req.req_id] =
            ClientOutcome{Status::Throttled("proxy quota"), ""};
      }
      break;
    case proxy::ProxyHandleResult::Action::kForward: {
      NodeId nid = meta_->PrimaryFor(req.tenant, res.forward.partition);
      node::DataNode* n = FindNode(nid);
      if (n == nullptr) {
        rt.current.errors++;
        if (req.track_outcome) {
          outcomes_[req.req_id] =
              ClientOutcome{Status::Unavailable("no primary"), ""};
        }
        break;
      }
      inflight_[res.forward.req_id] = {req.tenant, proxy_index};
      if (req.track_outcome) tracked_.insert(req.req_id);
      n->Submit(res.forward);
      break;
    }
  }
}

std::optional<ClusterSim::ClientOutcome> ClusterSim::TakeOutcome(
    uint64_t req_id) {
  auto it = outcomes_.find(req_id);
  if (it == outcomes_.end()) return std::nullopt;
  ClientOutcome out = std::move(it->second);
  outcomes_.erase(it);
  return out;
}

void ClusterSim::DeliverResponse(const NodeResponse& resp) {
  auto inf = inflight_.find(resp.req_id);
  TenantId tenant = resp.tenant;
  size_t proxy_index = 0;
  bool tracked = false;
  if (inf != inflight_.end()) {
    tenant = inf->second.first;
    proxy_index = inf->second.second;
    tracked = true;
    inflight_.erase(inf);
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantRuntime& rt = it->second;

  if (tracked || resp.background_refresh) {
    if (proxy_index < rt.proxies.size()) {
      rt.proxies[proxy_index]->OnResponse(resp);
    }
  }
  if (resp.background_refresh) return;  // Not client-visible.

  if (auto t = tracked_.find(resp.req_id); t != tracked_.end()) {
    outcomes_[resp.req_id] = ClientOutcome{resp.status, resp.value};
    tracked_.erase(t);
  }

  Micros client_latency = resp.latency + options_.proxy.forward_hop_latency;
  // NotFound is a successfully-served answer, not a failure.
  if (resp.status.ok() || resp.status.IsNotFound()) {
    rt.current.ok++;
    rt.current.latency_sum += static_cast<double>(client_latency);
    rt.current.latency_max = std::max(rt.current.latency_max, client_latency);
    rt.current.latency_count++;
    rt.latency_hist.Add(static_cast<double>(client_latency));
    if (IsReadOp(resp.op)) {
      rt.current.reads_completed++;
      if (resp.served_by == ServedBy::kNodeCache) {
        rt.current.node_cache_hits++;
      } else if (resp.served_by == ServedBy::kDisk) {
        rt.current.disk_reads++;
      }
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    } else {
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    }
  } else {
    rt.current.errors++;
    if (resp.status.IsThrottled()) rt.current.throttled++;
  }
  rt.current.ru_charged += resp.actual_ru;
}

// ---------------------------------------------------------------------------
// Tick loop
// ---------------------------------------------------------------------------

void ClusterSim::Tick() {
  // 1. Generate and route client traffic.
  for (auto& [tid, rt] : tenants_) {
    if (rt.workload != nullptr) {
      for (ClientRequest& req :
           rt.workload->Tick(clock_.NowMicros(), options_.tick)) {
        RouteClientRequest(req);
      }
    }
  }
  for (const ClientRequest& req : injected_) RouteClientRequest(req);
  injected_.clear();

  // 2. AU-LRU active-update refresh fetches (background traffic).
  for (auto& [tid, rt] : tenants_) {
    for (size_t p = 0; p < rt.proxies.size(); p++) {
      for (NodeRequest& req : rt.proxies[p]->TakeRefreshFetches()) {
        NodeId nid = meta_->PrimaryFor(tid, req.partition);
        node::DataNode* n = FindNode(nid);
        if (n == nullptr) continue;
        inflight_[req.req_id] = {tid, p};
        n->Submit(req);
      }
    }
  }

  // 3. Data plane scheduling.
  for (auto& n : nodes_) n->Tick();

  // 4. Response delivery.
  for (auto& n : nodes_) {
    for (const NodeResponse& resp : n->TakeResponses()) {
      DeliverResponse(resp);
    }
  }

  // 5. Asynchronous proxy traffic control.
  tick_count_++;
  if (options_.meta_report_interval_ticks > 0 &&
      tick_count_ % static_cast<uint64_t>(
                        options_.meta_report_interval_ticks) ==
          0) {
    double interval_sec =
        static_cast<double>(options_.meta_report_interval_ticks) *
        static_cast<double>(options_.tick) /
        static_cast<double>(kMicrosPerSecond);
    for (auto& [tid, rt] : tenants_) {
      double total = 0;
      for (auto& p : rt.proxies) total += p->ReportAndResetAdmittedRu();
      bool clamp = meta_->ReportProxyTraffic(tid, total / interval_sec);
      for (auto& p : rt.proxies) p->SetClamped(clamp);
    }
  }

  FinalizeTickMetrics();
  clock_.Advance(options_.tick);
}

void ClusterSim::RunTicks(size_t n) {
  for (size_t i = 0; i < n; i++) Tick();
}

void ClusterSim::FinalizeTickMetrics() {
  for (auto& [tid, rt] : tenants_) {
    rt.history.push_back(rt.current);
    rt.current = TenantTickMetrics{};
  }
}

const std::vector<TenantTickMetrics>& ClusterSim::History(
    TenantId tenant) const {
  static const std::vector<TenantTickMetrics> kEmpty;
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kEmpty : it->second.history;
}

const TenantRuntime* ClusterSim::Tenant(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

TenantRuntime* ClusterSim::MutableTenant(TenantId tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Rescheduler bridge
// ---------------------------------------------------------------------------

resched::PoolModel ClusterSim::BuildPoolModel(PoolId pool) const {
  resched::PoolModel model;
  for (node::DataNode* n : meta_->PoolNodes(pool)) {
    resched::NodeModel& nm = model.AddNode(
        n->id(), n->options().ru_capacity,
        static_cast<double>(n->options().storage_capacity));
    for (const node::PartitionReplica* rep : n->Replicas()) {
      resched::ReplicaLoad rl;
      rl.tenant = rep->tenant;
      rl.partition = rep->partition;
      rl.replica_index = rep->is_primary ? 0 : 1;
      rl.ru = LoadVector::Constant(rep->ru_rate);
      rl.storage = LoadVector::Constant(
          static_cast<double>(rep->engine->ApproximateDataBytes()));
      nm.AddReplica(std::move(rl));
    }
  }
  return model;
}

size_t ClusterSim::ApplyMigrations(
    const std::vector<resched::Migration>& migrations) {
  size_t applied = 0;
  for (const resched::Migration& m : migrations) {
    if (meta_->MigrateReplica(m.tenant, m.partition, m.from, m.to).ok()) {
      applied++;
    }
  }
  return applied;
}

}  // namespace sim
}  // namespace abase
