#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>

namespace abase {
namespace sim {

namespace {

std::unique_ptr<Executor> MakeExecutor(int workers) {
  if (workers > 1) return std::make_unique<ParallelExecutor>(workers);
  return std::make_unique<SerialExecutor>();
}

}  // namespace

ClusterSim::ClusterSim(SimOptions options)
    : options_(options), clock_(0), rng_(options.seed) {
  meta_ = std::make_unique<meta::MetaServer>(&clock_);
  executor_ = MakeExecutor(options_.data_plane_workers);
  pipeline_ = std::make_unique<TickPipeline>(this);
}

void ClusterSim::SetDataPlaneWorkers(int workers) {
  options_.data_plane_workers = std::max(1, workers);
  executor_ = MakeExecutor(options_.data_plane_workers);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

PoolId ClusterSim::AddPool(size_t num_nodes) {
  return AddPool(num_nodes, options_.node);
}

PoolId ClusterSim::AddPool(size_t num_nodes,
                           const node::DataNodeOptions& node_options) {
  std::vector<node::DataNode*> raw;
  constexpr uint32_t kAvailabilityZones = 3;
  node::DataNodeOptions opts = node_options;
  for (size_t i = 0; i < num_nodes; i++) {
    // Each node gets its own deterministic RNG stream derived from the
    // sim seed and its id, so node ticks stay reproducible no matter how
    // the executor schedules them across workers.
    opts.seed = options_.seed;
    nodes_.push_back(
        std::make_unique<node::DataNode>(next_node_id_++, opts, &clock_));
    nodes_.back()->set_az(static_cast<uint32_t>(i) % kAvailabilityZones);
    node_index_[nodes_.back()->id()] = nodes_.back().get();
    raw.push_back(nodes_.back().get());
  }
  return meta_->CreatePool(std::move(raw));
}

Status ClusterSim::AddTenant(const meta::TenantConfig& config, PoolId pool,
                             proxy::RoutingMode mode) {
  ABASE_RETURN_IF_ERROR(meta_->CreateTenant(config, pool));

  TenantRuntime rt;
  rt.config = config;
  rt.routing_mode = mode;
  rt.router = std::make_unique<proxy::LimitedFanoutRouter>(
      config.num_proxies, config.num_proxy_groups, mode);
  // Stream ids: nodes use their (small, dense) node ids, tenants sit in
  // a disjoint range.
  rt.router_rng = Rng(MixSeed(options_.seed, (1ull << 32) | config.id));

  double proxy_quota =
      config.tenant_quota_ru / static_cast<double>(config.num_proxies);
  TenantId tid = config.id;
  for (uint32_t p = 0; p < config.num_proxies; p++) {
    proxy::ProxyOptions popt = options_.proxy;
    popt.replicas = config.replicas;
    rt.proxies.push_back(std::make_unique<proxy::Proxy>(
        p, tid, proxy_quota, popt, &clock_,
        [this, tid](const std::string& key) {
          return meta_->PartitionFor(tid, key);
        }));
    // Refresh-fetch ids must be unique across every proxy of every
    // tenant (they key the sim-wide in-flight table).
    rt.proxies.back()->set_refresh_id_allocator(
        [this] { return AllocateRefreshId(); });
  }
  // Seed the tenant's epoch-stamped routing cache. From here on the
  // proxy plane routes from this table; it refreshes only by chasing a
  // redirect after a placement change makes a cached entry unroutable.
  RefreshRoutingTable(rt);
  tenants_.emplace(config.id, std::move(rt));
  return Status::OK();
}

void ClusterSim::SetWorkload(TenantId tenant, const WorkloadProfile& profile) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.workload = std::make_unique<WorkloadGenerator>(
      tenant, profile, options_.seed ^ (0x9e3779b9ull * (tenant + 1)));
}

void ClusterSim::PreloadKeys(TenantId tenant, uint64_t num_keys,
                             uint64_t value_bytes, double value_sigma) {
  Rng rng(977 * (static_cast<uint64_t>(tenant) + 1));
  for (uint64_t i = 0; i < num_keys; i++) {
    std::string key =
        "t" + std::to_string(tenant) + ":k" + std::to_string(i);
    PartitionId part = meta_->PartitionFor(tenant, key);
    node::DataNode* n = FindNode(meta_->PrimaryFor(tenant, part));
    if (n == nullptr) continue;
    storage::LsmEngine* engine = n->EngineFor(tenant, part);
    if (engine == nullptr) continue;
    double bytes = rng.NextLogNormal(
        std::log(static_cast<double>(std::max<uint64_t>(1, value_bytes))),
        value_sigma);
    size_t len = static_cast<size_t>(
        std::min(std::max(bytes, 1.0), 1024.0 * 1024));
    (void)engine->Put(key, std::string(len, 'v'));
  }

  // An onboarded tenant's replicas already hold the dataset: seed each
  // replica engine with a snapshot of its primary so the fleet starts
  // fully caught up (lag applies to traffic, not to onboarding). A
  // snapshot shares the immutable runs — O(runs), not a per-record
  // replay of the whole preload.
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  if (tm == nullptr) return;
  for (PartitionId p = 0;
       p < static_cast<PartitionId>(tm->partitions.size()); p++) {
    const auto& reps = tm->partitions[p].replicas;
    if (reps.size() < 2) continue;
    node::DataNode* pn = FindNode(reps[0]);
    storage::LsmEngine* src = pn != nullptr ? pn->EngineFor(tenant, p)
                                            : nullptr;
    if (src == nullptr) continue;
    for (size_t r = 1; r < reps.size(); r++) {
      node::DataNode* rn = FindNode(reps[r]);
      if (rn == nullptr) continue;
      storage::LsmEngine* re = rn->EngineFor(tenant, p);
      if (re == nullptr || re->applied_seq() == src->applied_seq()) continue;
      rn->ResyncReplica(tenant, p, *src);
    }
  }
}

WorkloadProfile* ClusterSim::MutableWorkload(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.workload == nullptr) return nullptr;
  return &it->second.workload->profile();
}

node::DataNode* ClusterSim::FindNode(NodeId id) {
  auto it = node_index_.find(id);
  return it == node_index_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void ClusterSim::FailNode(NodeId node) {
  pending_faults_.push_back(FaultEvent{/*fail=*/true, node, -1});
}

void ClusterSim::RecoverNode(NodeId node, int catch_up_ticks) {
  pending_faults_.push_back(FaultEvent{/*fail=*/false, node, catch_up_ticks});
}

size_t ClusterSim::DownNodeCount() const {
  size_t down = 0;
  for (const auto& n : nodes_) {
    if (!n->CanServe()) down++;
  }
  return down;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

void ClusterSim::CatchUpReplica(node::DataNode* node, TenantId tenant,
                                PartitionId partition,
                                const storage::LsmEngine& src,
                                bool force_snapshot) {
  storage::LsmEngine* own = node->EngineFor(tenant, partition);
  if (own == nullptr) return;
  const uint64_t cursor = own->applied_seq();
  if (force_snapshot || cursor > src.applied_seq() ||
      !src.repl_log().Covers(cursor)) {
    if (force_snapshot || cursor != src.applied_seq()) {
      node->ResyncReplica(tenant, partition, src);
    }
    return;
  }
  for (const storage::ReplRecord* rec :
       src.repl_log().Delta(cursor, src.applied_seq())) {
    if (!node->ApplyReplicated(tenant, partition, *rec)) {
      node->ResyncReplica(tenant, partition, src);
      return;
    }
  }
}

uint64_t ClusterSim::ReplicationLag(TenantId tenant, PartitionId partition) {
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  if (tm == nullptr || partition >= tm->partitions.size()) return 0;
  const auto& reps = tm->partitions[partition].replicas;
  if (reps.size() < 2) return 0;
  node::DataNode* pn = FindNode(reps[0]);
  storage::LsmEngine* src =
      pn != nullptr ? pn->EngineFor(tenant, partition) : nullptr;
  if (src == nullptr) return 0;
  uint64_t lag = 0;
  for (size_t r = 1; r < reps.size(); r++) {
    node::DataNode* rn = FindNode(reps[r]);
    if (rn == nullptr || !rn->CanServe()) continue;
    storage::LsmEngine* re = rn->EngineFor(tenant, partition);
    if (re == nullptr) continue;
    uint64_t applied = re->applied_seq();
    if (src->applied_seq() > applied) {
      lag = std::max(lag, src->applied_seq() - applied);
    }
  }
  return lag;
}

int ClusterSim::ComputeCatchUpTicks(NodeId node) {
  node::DataNode* n = FindNode(node);
  if (n == nullptr) return options_.recovery_catch_up_ticks;
  uint64_t delta_bytes = 0;
  for (const node::PartitionReplica* rep : n->Replicas()) {
    const NodeId primary = meta_->PrimaryFor(rep->tenant, rep->partition);
    if (primary == node || primary == kInvalidNode) continue;
    node::DataNode* pn = FindNode(primary);
    if (pn == nullptr || !pn->CanServe()) continue;
    storage::LsmEngine* src = pn->EngineFor(rep->tenant, rep->partition);
    if (src == nullptr) continue;
    const uint64_t own = rep->engine->applied_seq();
    if (meta_->HasDemotionClaim(node, rep->tenant, rep->partition) ||
        !src->repl_log().Covers(own) || own > src->applied_seq()) {
      // Divergent or out-of-log: a full snapshot transfer.
      delta_bytes += src->ApproximateDataBytes();
    } else {
      delta_bytes += src->repl_log().BytesAfter(own);
    }
  }
  const uint64_t bw = std::max<uint64_t>(1, options_.catch_up_bytes_per_tick);
  const int ticks = static_cast<int>((delta_bytes + bw - 1) / bw);
  return std::max(options_.recovery_catch_up_ticks, ticks);
}

void ClusterSim::ResyncRecoveredNode(NodeId node) {
  node::DataNode* n = FindNode(node);
  if (n == nullptr) return;
  for (const node::PartitionReplica* rep : n->Replicas()) {
    const NodeId primary = meta_->PrimaryFor(rep->tenant, rep->partition);
    // Still this node's own partition (no survivor was promoted): its
    // WAL replay at StartRecovery already restored every acked write.
    if (primary == node || primary == kInvalidNode) continue;
    node::DataNode* pn = FindNode(primary);
    if (pn == nullptr || !pn->CanServe()) continue;  // Both down: stale.
    storage::LsmEngine* src = pn->EngineFor(rep->tenant, rep->partition);
    if (src == nullptr) continue;
    // A demoted ex-primary may hold an acknowledged-but-unreplicated
    // suffix that diverged from the promoted replica's history: the
    // interim primary's history is authoritative, so the suffix is
    // discarded by a forced snapshot resync (those writes are the
    // measured lost-write window).
    CatchUpReplica(
        n, rep->tenant, rep->partition, *src,
        /*force_snapshot=*/
        meta_->HasDemotionClaim(node, rep->tenant, rep->partition));
  }
}

// ---------------------------------------------------------------------------
// Routing cache
// ---------------------------------------------------------------------------

void ClusterSim::RefreshRoutingTable(TenantRuntime& rt) {
  const meta::TenantMeta* tm = meta_->GetTenant(rt.config.id);
  rt.route_table.clear();
  if (tm != nullptr) {
    rt.route_table.reserve(tm->partitions.size());
    for (const meta::PartitionPlacement& p : tm->partitions) {
      rt.route_table.push_back(p.replicas);
    }
  }
  rt.route_epoch = meta_->routing_epoch();
}

NodeId ClusterSim::CachedPrimary(const TenantRuntime& rt,
                                 PartitionId partition) const {
  if (partition >= rt.route_table.size() ||
      rt.route_table[partition].empty()) {
    return kInvalidNode;
  }
  return rt.route_table[partition][0];
}

node::DataNode* ClusterSim::PickReplicaForRead(TenantRuntime& rt,
                                               TenantId tenant,
                                               PartitionId partition) {
  if (partition >= rt.route_table.size()) return nullptr;
  // Probe the cached placement from the round-robin cursor and take the
  // first alive node actually hosting the replica (the simulator's
  // stand-in for a replica-aware client SDK). No temporaries: this runs
  // per eventual read inside the serial Route pass.
  const std::vector<NodeId>& reps = rt.route_table[partition];
  const size_t count = reps.size();
  if (count == 0) return nullptr;
  const uint64_t start = rt.replica_read_rr;
  for (size_t i = 0; i < count; i++) {
    node::DataNode* n =
        FindNode(reps[static_cast<size_t>((start + i) % count)]);
    if (n != nullptr && n->CanServe() && n->HasReplica(tenant, partition)) {
      rt.replica_read_rr = start + i + 1;
      return n;
    }
  }
  return nullptr;
}

void ClusterSim::ResolveStrandedOnNode(NodeId node) {
  // inflight_ is an unordered_map: resolve in req-id order so stranded
  // outcomes publish identically on every platform and worker count.
  std::vector<uint64_t> stranded;
  for (const auto& [req_id, ctx] : inflight_) {
    if (ctx.node == node) stranded.push_back(req_id);
  }
  std::sort(stranded.begin(), stranded.end());
  for (uint64_t req_id : stranded) {
    auto it = inflight_.find(req_id);
    RequestContext ctx = it->second;
    inflight_.erase(it);
    auto tit = tenants_.find(ctx.tenant);
    if (tit != tenants_.end()) {
      TenantRuntime& rt = tit->second;
      if (ctx.proxy_index < rt.proxies.size()) {
        rt.proxies[ctx.proxy_index]->AbandonForward(req_id);
      }
      if (!ctx.background) {
        rt.current.errors++;
        rt.current.unavailable++;
      }
    }
    if (ctx.track_outcome) {
      PublishOutcome(req_id,
                     ClientOutcome{Status::Unavailable("node failed"), ""});
    }
  }
}

// ---------------------------------------------------------------------------
// Experiment switches
// ---------------------------------------------------------------------------

void ClusterSim::SetProxyQuotaEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_quota_enabled(enabled);
}

void ClusterSim::SetProxyCacheEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_cache_enabled(enabled);
}

void ClusterSim::SetPartitionQuotaEnabled(bool enabled) {
  for (auto& n : nodes_) n->SetPartitionQuotaEnforcement(enabled);
}

// ---------------------------------------------------------------------------
// Request settlement
// ---------------------------------------------------------------------------

void ClusterSim::InjectRequest(const ClientRequest& req) {
  injected_.push_back(req);
}

void ClusterSim::SettleLocalProxyResult(
    TenantRuntime& rt, const ClientRequest& req,
    const proxy::ProxyHandleResult& res,
    std::vector<std::pair<uint64_t, ClientOutcome>>* deferred) {
  switch (res.action) {
    case proxy::ProxyHandleResult::Action::kServedFromCache:
      rt.current.ok++;
      rt.current.proxy_hits++;
      rt.current.latency_sum += static_cast<double>(res.latency);
      rt.current.latency_max = std::max(rt.current.latency_max, res.latency);
      rt.current.latency_count++;
      rt.latency_hist.Add(static_cast<double>(res.latency));
      rt.value_bytes_sum += res.value.size();
      rt.value_bytes_count++;
      if (req.track_outcome) {
        deferred->emplace_back(req.req_id,
                               ClientOutcome{Status::OK(), res.value});
      }
      break;
    case proxy::ProxyHandleResult::Action::kThrottled:
      rt.current.errors++;
      rt.current.throttled++;
      if (req.track_outcome) {
        deferred->emplace_back(
            req.req_id, ClientOutcome{Status::Throttled("proxy quota"), ""});
      }
      break;
    case proxy::ProxyHandleResult::Action::kForward:
      assert(false && "forwards are settled via DeliverResponse");
      break;
  }
}

std::optional<ClusterSim::ClientOutcome> ClusterSim::TakeOutcome(
    uint64_t req_id) {
  auto it = outcomes_.find(req_id);
  if (it == outcomes_.end()) return std::nullopt;
  ClientOutcome out = std::move(it->second.outcome);
  outcomes_.erase(it);
  return out;
}

void ClusterSim::SubscribeOutcome(uint64_t req_id, OutcomeCallback cb) {
  // Already settled (e.g. subscribing after a tick ran): deliver now.
  auto it = outcomes_.find(req_id);
  if (it != outcomes_.end()) {
    ClientOutcome out = std::move(it->second.outcome);
    outcomes_.erase(it);
    cb(req_id, std::move(out));
    return;
  }
  subscriptions_[req_id] = std::move(cb);
}

bool ClusterSim::UnsubscribeOutcome(uint64_t req_id) {
  return subscriptions_.erase(req_id) > 0;
}

void ClusterSim::PublishOutcome(uint64_t req_id, ClientOutcome outcome) {
  auto it = subscriptions_.find(req_id);
  if (it != subscriptions_.end()) {
    OutcomeCallback cb = std::move(it->second);
    subscriptions_.erase(it);
    cb(req_id, std::move(outcome));
    return;
  }
  outcomes_[req_id] = TrackedOutcome{std::move(outcome), tick_count_};
}

void ClusterSim::SweepExpiredOutcomes() {
  if (options_.outcome_ttl_ticks <= 0 || outcomes_.empty()) return;
  const uint64_t ttl = static_cast<uint64_t>(options_.outcome_ttl_ticks);
  for (auto it = outcomes_.begin(); it != outcomes_.end();) {
    // Strict: outcomes are stamped before the tick counter increments in
    // Settle, so `>=` would make ttl=1 sweep an outcome within the very
    // tick it settled.
    if (tick_count_ - it->second.recorded_tick > ttl) {
      it = outcomes_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterSim::DeliverResponse(const NodeResponse& resp) {
  TenantId tenant = resp.tenant;
  size_t proxy_index = 0;
  bool known_forward = false;
  bool track_outcome = false;
  auto inf = inflight_.find(resp.req_id);
  if (inf != inflight_.end()) {
    tenant = inf->second.tenant;
    proxy_index = inf->second.proxy_index;
    track_outcome = inf->second.track_outcome;
    known_forward = true;
    inflight_.erase(inf);
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantRuntime& rt = it->second;

  if (known_forward || resp.background_refresh) {
    if (proxy_index < rt.proxies.size()) {
      rt.proxies[proxy_index]->OnResponse(resp);
    }
  }
  if (resp.background_refresh) return;  // Not client-visible.

  if (track_outcome) {
    PublishOutcome(resp.req_id, ClientOutcome{resp.status, resp.value});
  }

  Micros client_latency = resp.latency + options_.proxy.forward_hop_latency;
  // NotFound is a successfully-served answer, not a failure.
  if (resp.status.ok() || resp.status.IsNotFound()) {
    rt.current.ok++;
    rt.current.latency_sum += static_cast<double>(client_latency);
    rt.current.latency_max = std::max(rt.current.latency_max, client_latency);
    rt.current.latency_count++;
    rt.latency_hist.Add(static_cast<double>(client_latency));
    if (IsReadOp(resp.op)) {
      rt.current.reads_completed++;
      if (resp.served_by == ServedBy::kNodeCache) {
        rt.current.node_cache_hits++;
      } else if (resp.served_by == ServedBy::kDisk) {
        rt.current.disk_reads++;
      }
      if (!resp.from_primary) {
        // Replica read: surface how far the serving replica trailed the
        // primary's stream at execution time. The reference is the
        // primary cursor as of the *previous* Replicate step — the
        // newest state the read could have observed — so a lag-0
        // configuration reports zero staleness, as documented.
        rt.current.replica_reads++;
        auto rs = repl_state_.find(PartitionKey(resp.tenant, resp.partition));
        if (rs != repl_state_.end() &&
            rs->second.prev_primary_applied > resp.replica_applied_seq) {
          rt.current.replica_lag_sum +=
              rs->second.prev_primary_applied - resp.replica_applied_seq;
        }
      }
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    } else {
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    }
  } else {
    rt.current.errors++;
    if (resp.status.IsThrottled()) rt.current.throttled++;
    if (resp.status.IsUnavailable()) rt.current.unavailable++;
  }
  rt.current.ru_charged += resp.actual_ru;
}

// ---------------------------------------------------------------------------
// Tick loop
// ---------------------------------------------------------------------------

void ClusterSim::Tick() { pipeline_->RunTick(); }

void ClusterSim::RunTicks(size_t n) {
  for (size_t i = 0; i < n; i++) Tick();
}

void ClusterSim::FinalizeTickMetrics() {
  for (auto& [tid, rt] : tenants_) {
    rt.history.push_back(rt.current);
    rt.current = TenantTickMetrics{};
  }
}

const std::vector<TenantTickMetrics>& ClusterSim::History(
    TenantId tenant) const {
  static const std::vector<TenantTickMetrics> kEmpty;
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? kEmpty : it->second.history;
}

const TenantRuntime* ClusterSim::Tenant(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

TenantRuntime* ClusterSim::MutableTenant(TenantId tenant) {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Rescheduler bridge
// ---------------------------------------------------------------------------

resched::PoolModel ClusterSim::BuildPoolModel(PoolId pool) const {
  resched::PoolModel model;
  for (node::DataNode* n : meta_->PoolNodes(pool)) {
    // A failed/recovering node is invisible to the rescheduler: its
    // zeroed load would otherwise make it the most attractive migration
    // destination in the pool.
    if (!n->CanServe()) continue;
    resched::NodeModel& nm = model.AddNode(
        n->id(), n->options().ru_capacity,
        static_cast<double>(n->options().storage_capacity));
    for (const node::PartitionReplica* rep : n->Replicas()) {
      resched::ReplicaLoad rl;
      rl.tenant = rep->tenant;
      rl.partition = rep->partition;
      // The replica's actual placement index (0 = primary), so the
      // rescheduler's load model distinguishes second from third
      // replicas instead of flattening every non-primary to 1.
      rl.replica_index = rep->is_primary ? 0 : 1;
      if (const meta::TenantMeta* tm = meta_->GetTenant(rep->tenant)) {
        if (rep->partition < tm->partitions.size()) {
          const auto& reps = tm->partitions[rep->partition].replicas;
          auto rit = std::find(reps.begin(), reps.end(), n->id());
          if (rit != reps.end()) {
            rl.replica_index =
                static_cast<uint32_t>(std::distance(reps.begin(), rit));
          }
        }
      }
      rl.ru = LoadVector::Constant(rep->ru_rate);
      rl.storage = LoadVector::Constant(
          static_cast<double>(rep->engine->ApproximateDataBytes()));
      nm.AddReplica(std::move(rl));
    }
  }
  return model;
}

size_t ClusterSim::ApplyMigrations(
    const std::vector<resched::Migration>& migrations) {
  size_t applied = 0;
  for (const resched::Migration& m : migrations) {
    if (meta_->MigrateReplica(m.tenant, m.partition, m.from, m.to).ok()) {
      applied++;
    }
  }
  return applied;
}

}  // namespace sim
}  // namespace abase
