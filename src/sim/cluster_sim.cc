#include "sim/cluster_sim.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/keyspace.h"
#include "common/scan_codec.h"
#include "common/smallvec.h"

namespace abase {
namespace sim {

namespace {

std::unique_ptr<Executor> MakeExecutor(int workers) {
  if (workers > 1) return std::make_unique<MorselExecutor>(workers);
  return std::make_unique<SerialExecutor>();
}

}  // namespace

ClusterSim::ClusterSim(SimOptions options)
    : options_(options),
      clock_(0),
      rng_(options.seed),
      gray_detector_(options.latency.gray) {
  meta_ = std::make_unique<meta::MetaServer>(&clock_);
  meta_->SetStripedPlacement(options_.striped_placement);
  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<TraceWriter>(options_.trace_path);
  }
  executor_ = MakeExecutor(options_.data_plane_workers);
  executor_->SetTrace(trace_.get());
  pipeline_ = std::make_unique<TickPipeline>(this);
  pipeline_->SetTrace(trace_.get());
}

void ClusterSim::SetDataPlaneWorkers(int workers) {
  options_.data_plane_workers = std::max(1, workers);
  executor_ = MakeExecutor(options_.data_plane_workers);
  executor_->SetTrace(trace_.get());
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

PoolId ClusterSim::AddPool(size_t num_nodes) {
  return AddPool(num_nodes, options_.node);
}

PoolId ClusterSim::AddPool(size_t num_nodes,
                           const node::DataNodeOptions& node_options) {
  std::vector<node::DataNode*> raw;
  const uint32_t kAvailabilityZones = std::max(1u, options_.latency.num_azs);
  node::DataNodeOptions opts = node_options;
  for (size_t i = 0; i < num_nodes; i++) {
    // Each node gets its own deterministic RNG stream derived from the
    // sim seed and its id, so node ticks stay reproducible no matter how
    // the executor schedules them across workers.
    opts.seed = options_.seed;
    nodes_.push_back(
        std::make_unique<node::DataNode>(next_node_id_++, opts, &clock_));
    nodes_.back()->set_az(static_cast<uint32_t>(i) % kAvailabilityZones);
    // FindNode indexes nodes_ by id directly; ids must stay dense.
    assert(static_cast<size_t>(nodes_.back()->id()) == nodes_.size() - 1);
    raw.push_back(nodes_.back().get());
  }
  return meta_->CreatePool(std::move(raw));
}

Status ClusterSim::AddTenant(const meta::TenantConfig& config, PoolId pool,
                             proxy::RoutingMode mode) {
  ABASE_RETURN_IF_ERROR(meta_->CreateTenant(config, pool));

  TenantRuntime rt;
  rt.config = config;
  rt.routing_mode = mode;
  rt.router = std::make_unique<proxy::LimitedFanoutRouter>(
      config.num_proxies, config.num_proxy_groups, mode);
  // Stream ids: nodes use their (small, dense) node ids, tenants sit in
  // a disjoint range.
  rt.router_rng = Rng(MixSeed(options_.seed, (1ull << 32) | config.id));

  double proxy_quota =
      config.tenant_quota_ru / static_cast<double>(config.num_proxies);
  TenantId tid = config.id;
  for (uint32_t p = 0; p < config.num_proxies; p++) {
    proxy::ProxyOptions popt = options_.proxy;
    popt.replicas = config.replicas;
    rt.proxies.push_back(std::make_unique<proxy::Proxy>(
        p, tid, proxy_quota, popt, &clock_,
        [this, tid](const std::string& key) {
          return meta_->PartitionFor(tid, key);
        }));
    // Hot path: requests carry Fnv1a64(key) computed once at generate /
    // inject time; partition routing reuses it instead of re-hashing.
    rt.proxies.back()->set_partition_of_hashed([this, tid](uint64_t h) {
      return meta_->PartitionForHashed(tid, h);
    });
    // Refresh-fetch ids must be unique across every proxy of every
    // tenant (they key the sim-wide in-flight table).
    rt.proxies.back()->set_refresh_id_allocator(
        [this] { return AllocateRefreshId(); });
    // Proxies stripe across AZs like nodes do; the node<->proxy hop pays
    // the cross-AZ RTT class when the zones differ (latency subsystem).
    rt.proxies.back()->set_az(p % std::max(1u, options_.latency.num_azs));
  }
  // Latency-subsystem per-tenant state: hedge policy from the cluster
  // options, SLO target from the tenant config (cluster default when 0).
  rt.hedger = latency::Hedger(options_.latency.hedge);
  rt.slo_target = config.slo_target_micros > 0
                      ? config.slo_target_micros
                      : options_.latency.slo_target_micros;
  // Seed the tenant's epoch-stamped routing cache. From here on the
  // proxy plane routes from this table; it refreshes only by chasing a
  // redirect after a placement change makes a cached entry unroutable.
  RefreshRoutingTable(rt);
  // Active-set bookkeeping: history (and the control fold) logically
  // start at the current tick, so backfill never reaches before the
  // tenant existed.
  rt.created_at_tick = tick_count_;
  rt.ctrl_synced_tick = tick_count_;
  auto [it, inserted] = tenants_.emplace(config.id, std::move(rt));
  if (inserted) tenant_index_.Insert(config.id, &it->second);
  return Status::OK();
}

void ClusterSim::SetWorkload(TenantId tenant, const WorkloadProfile& profile) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  it->second.workload = std::make_unique<WorkloadGenerator>(
      tenant, profile, options_.seed ^ (0x9e3779b9ull * (tenant + 1)));
  // A (re)attached workload joins the active generator set; the next
  // Generate slot build re-evaluates (and may re-park) it.
  UnparkGenerator(tenant, it->second);
}

void ClusterSim::PreloadKeys(TenantId tenant, uint64_t num_keys,
                             uint64_t value_bytes, double value_sigma) {
  // Direct engine writes advance the primaries' streams outside the
  // response path: make sure the Replicate walk visits this tenant.
  if (!options_.dense_tick) repl_active_.insert(tenant);
  Rng rng(977 * (static_cast<uint64_t>(tenant) + 1));
  for (uint64_t i = 0; i < num_keys; i++) {
    std::string key =
        "t" + std::to_string(tenant) + ":k" + std::to_string(i);
    PartitionId part = meta_->PartitionFor(tenant, key);
    node::DataNode* n = FindNode(meta_->PrimaryFor(tenant, part));
    if (n == nullptr) continue;
    storage::LsmEngine* engine = n->EngineFor(tenant, part);
    if (engine == nullptr) continue;
    double bytes = rng.NextLogNormal(
        std::log(static_cast<double>(std::max<uint64_t>(1, value_bytes))),
        value_sigma);
    size_t len = static_cast<size_t>(
        std::min(std::max(bytes, 1.0), 1024.0 * 1024));
    (void)engine->Put(key, std::string(len, 'v'));
  }

  // An onboarded tenant's replicas already hold the dataset: seed each
  // replica engine with a snapshot of its primary so the fleet starts
  // fully caught up (lag applies to traffic, not to onboarding). A
  // snapshot shares the immutable runs — O(runs), not a per-record
  // replay of the whole preload.
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  if (tm == nullptr) return;
  for (PartitionId p = 0;
       p < static_cast<PartitionId>(tm->partitions.size()); p++) {
    const auto& reps = tm->partitions[p].replicas;
    if (reps.size() < 2) continue;
    node::DataNode* pn = FindNode(reps[0]);
    storage::LsmEngine* src = pn != nullptr ? pn->EngineFor(tenant, p)
                                            : nullptr;
    if (src == nullptr) continue;
    for (size_t r = 1; r < reps.size(); r++) {
      node::DataNode* rn = FindNode(reps[r]);
      if (rn == nullptr) continue;
      storage::LsmEngine* re = rn->EngineFor(tenant, p);
      if (re == nullptr || re->applied_seq() == src->applied_seq()) continue;
      rn->ResyncReplica(tenant, p, *src);
    }
  }
}

WorkloadProfile* ClusterSim::MutableWorkload(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.workload == nullptr) return nullptr;
  // The caller may raise a zero rate: wake the generator so the next
  // slot build re-evaluates the mutated profile. (Mutating the profile
  // through MutableTenant() directly bypasses this hook — use
  // MutableWorkload for scenario scripting, as every in-repo caller
  // does.)
  UnparkGenerator(tenant, it->second);
  return &it->second.workload->profile();
}

node::DataNode* ClusterSim::FindNode(NodeId id) {
  // Dense id space: the id is the vector index (kInvalidNode and
  // out-of-range ids fall through to null).
  return static_cast<size_t>(id) < nodes_.size()
             ? nodes_[static_cast<size_t>(id)].get()
             : nullptr;
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void ClusterSim::FailNode(NodeId node) {
  pending_faults_.push_back(FaultEvent{/*fail=*/true, node, -1});
}

void ClusterSim::RecoverNode(NodeId node, int catch_up_ticks) {
  pending_faults_.push_back(FaultEvent{/*fail=*/false, node, catch_up_ticks});
}

size_t ClusterSim::DownNodeCount() const {
  size_t down = 0;
  for (const auto& n : nodes_) {
    if (!n->CanServe()) down++;
  }
  return down;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

void ClusterSim::CatchUpReplica(node::DataNode* node, TenantId tenant,
                                PartitionId partition,
                                const storage::LsmEngine& src,
                                bool force_snapshot) {
  storage::LsmEngine* own = node->EngineFor(tenant, partition);
  if (own == nullptr) return;
  const uint64_t cursor = own->applied_seq();
  if (force_snapshot || cursor > src.applied_seq() ||
      !src.repl_log().Covers(cursor)) {
    if (force_snapshot || cursor != src.applied_seq()) {
      node->ResyncReplica(tenant, partition, src);
    }
    return;
  }
  bool gapped = false;
  src.repl_log().ForEachDelta(
      cursor, src.applied_seq(), [&](const storage::ReplRecordPtr& rec) {
        if (!node->ApplyReplicated(tenant, partition, rec)) {
          gapped = true;
          return false;
        }
        return true;
      });
  if (gapped) node->ResyncReplica(tenant, partition, src);
}

uint64_t ClusterSim::ReplicationLag(TenantId tenant, PartitionId partition) {
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  if (tm == nullptr || partition >= tm->partitions.size()) return 0;
  const auto& reps = tm->partitions[partition].replicas;
  if (reps.size() < 2) return 0;
  node::DataNode* pn = FindNode(reps[0]);
  storage::LsmEngine* src =
      pn != nullptr ? pn->EngineFor(tenant, partition) : nullptr;
  if (src == nullptr) return 0;
  uint64_t lag = 0;
  for (size_t r = 1; r < reps.size(); r++) {
    node::DataNode* rn = FindNode(reps[r]);
    if (rn == nullptr || !rn->CanServe()) continue;
    storage::LsmEngine* re = rn->EngineFor(tenant, partition);
    if (re == nullptr) continue;
    uint64_t applied = re->applied_seq();
    if (src->applied_seq() > applied) {
      lag = std::max(lag, src->applied_seq() - applied);
    }
  }
  return lag;
}

int ClusterSim::ComputeCatchUpTicks(NodeId node) {
  node::DataNode* n = FindNode(node);
  if (n == nullptr) return options_.recovery_catch_up_ticks;
  uint64_t delta_bytes = 0;
  for (const node::PartitionReplica* rep : n->Replicas()) {
    const NodeId primary = meta_->PrimaryFor(rep->tenant, rep->partition);
    if (primary == node || primary == kInvalidNode) continue;
    node::DataNode* pn = FindNode(primary);
    if (pn == nullptr || !pn->CanServe()) continue;
    storage::LsmEngine* src = pn->EngineFor(rep->tenant, rep->partition);
    if (src == nullptr) continue;
    const uint64_t own = rep->engine->applied_seq();
    if (meta_->HasDemotionClaim(node, rep->tenant, rep->partition) ||
        !src->repl_log().Covers(own) || own > src->applied_seq()) {
      // Divergent or out-of-log: a full snapshot transfer.
      delta_bytes += src->ApproximateDataBytes();
    } else {
      delta_bytes += src->repl_log().BytesAfter(own);
    }
  }
  const uint64_t bw = std::max<uint64_t>(1, options_.catch_up_bytes_per_tick);
  const int ticks = static_cast<int>((delta_bytes + bw - 1) / bw);
  return std::max(options_.recovery_catch_up_ticks, ticks);
}

void ClusterSim::ResyncRecoveredNode(NodeId node) {
  node::DataNode* n = FindNode(node);
  if (n == nullptr) return;
  for (const node::PartitionReplica* rep : n->Replicas()) {
    // Resyncs mutate replica cursors without necessarily moving the
    // routing epoch (a pure-replica recovery has no failback): put the
    // affected tenants back on the Replicate walk's work list.
    if (!options_.dense_tick) repl_active_.insert(rep->tenant);
    const NodeId primary = meta_->PrimaryFor(rep->tenant, rep->partition);
    // Still this node's own partition (no survivor was promoted): its
    // WAL replay at StartRecovery already restored every acked write.
    if (primary == node || primary == kInvalidNode) continue;
    node::DataNode* pn = FindNode(primary);
    if (pn == nullptr || !pn->CanServe()) continue;  // Both down: stale.
    storage::LsmEngine* src = pn->EngineFor(rep->tenant, rep->partition);
    if (src == nullptr) continue;
    // A demoted ex-primary may hold an acknowledged-but-unreplicated
    // suffix that diverged from the promoted replica's history: the
    // interim primary's history is authoritative, so the suffix is
    // discarded by a forced snapshot resync (those writes are the
    // measured lost-write window).
    CatchUpReplica(
        n, rep->tenant, rep->partition, *src,
        /*force_snapshot=*/
        meta_->HasDemotionClaim(node, rep->tenant, rep->partition));
  }
}

// ---------------------------------------------------------------------------
// Routing cache
// ---------------------------------------------------------------------------

void ClusterSim::RefreshRoutingTable(TenantRuntime& rt) {
  const meta::TenantMeta* tm = meta_->GetTenant(rt.config.id);
  rt.route_table.clear();
  if (tm != nullptr) {
    rt.route_table.reserve(tm->partitions.size());
    for (const meta::PartitionPlacement& p : tm->partitions) {
      rt.route_table.push_back(p.replicas);
    }
  }
  rt.route_epoch = meta_->routing_epoch();
}

NodeId ClusterSim::CachedPrimary(const TenantRuntime& rt,
                                 PartitionId partition) const {
  if (partition >= rt.route_table.size() ||
      rt.route_table[partition].empty()) {
    return kInvalidNode;
  }
  return rt.route_table[partition][0];
}

node::DataNode* ClusterSim::PickReplicaForRead(TenantRuntime& rt,
                                               TenantId tenant,
                                               PartitionId partition) {
  if (partition >= rt.route_table.size()) return nullptr;
  // Probe the cached placement from the round-robin cursor and take the
  // first alive node actually hosting the replica (the simulator's
  // stand-in for a replica-aware client SDK). No temporaries: this runs
  // per eventual read inside the serial Route pass.
  const std::vector<NodeId>& reps = rt.route_table[partition];
  const size_t count = reps.size();
  if (count == 0) return nullptr;
  const uint64_t start = rt.replica_read_rr;
  // Gray demotion (latency subsystem): a node the detector flagged slow
  // is skipped as long as a healthy replica exists — the fallback pass
  // below still takes a gray replica over Unavailable. With the
  // subsystem off the gray set is empty and this is the seed behavior.
  bool demote = options_.latency.enabled &&
                options_.latency.gray.demote_routing &&
                gray_detector_.GrayCount() > 0;
  // Canary probe: every Nth eventual read ignores the demotion so a
  // flagged node keeps producing latency samples — the only way its
  // recovery can ever be observed.
  if (demote && options_.latency.gray.probe_interval > 0) {
    if (rt.eventual_read_seq++ %
            static_cast<uint64_t>(options_.latency.gray.probe_interval) ==
        0) {
      demote = false;
    }
  } else if (demote) {
    rt.eventual_read_seq++;
  }
  node::DataNode* gray_fallback = nullptr;
  uint64_t gray_fallback_advance = 0;
  for (size_t i = 0; i < count; i++) {
    node::DataNode* n =
        FindNode(reps[static_cast<size_t>((start + i) % count)]);
    if (n != nullptr && n->CanServe() && n->HasReplica(tenant, partition)) {
      if (demote && gray_detector_.IsGray(n->id())) {
        if (gray_fallback == nullptr) {
          gray_fallback = n;
          gray_fallback_advance = start + i + 1;
        }
        continue;
      }
      rt.replica_read_rr = start + i + 1;
      return n;
    }
  }
  if (gray_fallback != nullptr) {
    rt.replica_read_rr = gray_fallback_advance;
    return gray_fallback;
  }
  return nullptr;
}

void ClusterSim::FusedRoutePoint(TenantRuntime& rt, PendingForward& fwd,
                                 TenantTickMetrics& m) {
  // Mirror of RouteStage's serial non-scan resolve, byte for byte. The
  // redirect chase mutates only the tenant's cached table (refreshing it
  // is idempotent within a tick: placement is frozen until Control), so
  // a morsel-time chase leaves exactly the state a serial chase would.
  NodeRequest& req = fwd.request;
  node::DataNode* n = nullptr;
  const bool eventual_read = req.consistency == Consistency::kEventual &&
                             IsReadOp(req.op) && !req.background_refresh;
  if (eventual_read) {
    n = PickReplicaForRead(rt, req.tenant, req.partition);
    if (n == nullptr && rt.route_epoch != meta_->routing_epoch()) {
      RefreshRoutingTable(rt);
      m.redirects++;
      n = PickReplicaForRead(rt, req.tenant, req.partition);
    }
    if (n != nullptr && options_.latency.enabled &&
        options_.latency.hedge.enabled) {
      if (node::DataNode* alt =
              PickHedgeReplica(rt, req.tenant, req.partition, n->id())) {
        fwd.ctx.hedge_node = alt->id();
      }
    }
  } else {
    auto routable = [&](node::DataNode* dest) {
      return dest != nullptr && dest->CanServe() &&
             dest->IsPrimaryFor(req.tenant, req.partition);
    };
    n = FindNode(CachedPrimary(rt, req.partition));
    if (!routable(n) && rt.route_epoch != meta_->routing_epoch()) {
      RefreshRoutingTable(rt);
      if (!req.background_refresh) m.redirects++;
      n = FindNode(CachedPrimary(rt, req.partition));
    }
    if (!routable(n)) n = nullptr;
  }
  if (n == nullptr) {
    // Failure settlement (error counters, quota refund, outcome
    // publication) happens in the serial Route walk, at this forward's
    // position — quota refunds reorder FP state otherwise.
    fwd.ctx.route_failed = true;
    return;
  }
  fwd.ctx.node = n->id();
}

void ClusterSim::ResolveStrandedOnNode(NodeId node) {
  // inflight_ iterates in table order: resolve in req-id order so
  // stranded outcomes publish identically on every platform and worker
  // count.
  std::vector<uint64_t>& stranded = stranded_scratch_;
  stranded.clear();
  inflight_.ForEach([&](uint64_t req_id, RequestContext& ctx) {
    if (ctx.node == node) stranded.push_back(req_id);
  });
  std::sort(stranded.begin(), stranded.end());
  for (uint64_t req_id : stranded) {
    RequestContext ctx = *inflight_.Find(req_id);
    inflight_.Erase(req_id);
    if (ctx.scan_part) {
      // A stranded scan leg fails just its slot in the accumulator; the
      // merged scan settles (with this leg's error) under the base id
      // once every other leg lands. No per-leg proxy refund: the quota
      // estimate is held against the base request alone.
      auto pit = scan_part_index_.find(req_id);
      if (pit != scan_part_index_.end()) {
        ScanPartRef ref = pit->second;
        scan_part_index_.erase(pit);
        FailScanPart(ref, Status::Unavailable("node failed"));
      }
      continue;
    }
    auto tit = tenants_.find(ctx.tenant);
    if (tit != tenants_.end()) {
      TenantRuntime& rt = tit->second;
      TouchTenant(ctx.tenant, rt);
      if (ctx.proxy_index < rt.proxies.size()) {
        rt.proxies[ctx.proxy_index]->AbandonForward(req_id);
      }
      if (!ctx.background) {
        rt.current.errors++;
        rt.current.unavailable++;
      }
    }
    if (ctx.track_outcome) {
      PublishOutcome(req_id,
                     ClientOutcome{Status::Unavailable("node failed"), ""});
    }
  }
}

// ---------------------------------------------------------------------------
// Experiment switches
// ---------------------------------------------------------------------------

void ClusterSim::SetProxyQuotaEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_quota_enabled(enabled);
}

void ClusterSim::SetProxyCacheEnabled(TenantId tenant, bool enabled) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  for (auto& p : it->second.proxies) p->set_cache_enabled(enabled);
}

void ClusterSim::SetPartitionQuotaEnabled(bool enabled) {
  for (auto& n : nodes_) n->SetPartitionQuotaEnforcement(enabled);
}

// ---------------------------------------------------------------------------
// Request settlement
// ---------------------------------------------------------------------------

void ClusterSim::InjectRequest(const ClientRequest& req) {
  injected_.push_back(req);
  // Callers (clients, tests) build requests by hand; stamp the key hash
  // here so the whole pipeline can rely on it being present.
  injected_.back().key_hash = Fnv1a64(injected_.back().key);
}

void ClusterSim::SettleLocalProxyResult(
    TenantRuntime& rt, const ClientRequest& req,
    const proxy::ProxyHandleResult& res,
    std::vector<std::pair<uint64_t, ClientOutcome>>* deferred,
    TenantTickMetrics& m) {
  switch (res.action) {
    case proxy::ProxyHandleResult::Action::kServedFromCache:
      m.ok++;
      m.proxy_hits++;
      m.latency_sum += static_cast<double>(res.latency);
      m.latency_max = std::max(m.latency_max, res.latency);
      m.latency_count++;
      rt.latency_hist.Add(static_cast<double>(res.latency));
      rt.value_bytes_sum += res.value_bytes;
      rt.value_bytes_count++;
      if (req.track_outcome) {
        deferred->emplace_back(req.req_id,
                               ClientOutcome{Status::OK(), res.value});
      }
      break;
    case proxy::ProxyHandleResult::Action::kThrottled:
      m.errors++;
      m.throttled++;
      if (req.track_outcome) {
        deferred->emplace_back(
            req.req_id, ClientOutcome{Status::Throttled("proxy quota"), ""});
      }
      break;
    case proxy::ProxyHandleResult::Action::kForward:
      assert(false && "forwards are settled via DeliverResponse");
      break;
  }
}

std::optional<ClusterSim::ClientOutcome> ClusterSim::TakeOutcome(
    uint64_t req_id) {
  auto it = outcomes_.find(req_id);
  if (it == outcomes_.end()) return std::nullopt;
  ClientOutcome out = std::move(it->second.outcome);
  outcomes_.erase(it);
  return out;
}

void ClusterSim::SubscribeOutcome(uint64_t req_id, OutcomeCallback cb) {
  // Already settled (e.g. subscribing after a tick ran): deliver now.
  auto it = outcomes_.find(req_id);
  if (it != outcomes_.end()) {
    ClientOutcome out = std::move(it->second.outcome);
    outcomes_.erase(it);
    cb(req_id, std::move(out));
    return;
  }
  subscriptions_[req_id] = std::move(cb);
}

bool ClusterSim::UnsubscribeOutcome(uint64_t req_id) {
  return subscriptions_.erase(req_id) > 0;
}

void ClusterSim::PublishOutcome(uint64_t req_id, ClientOutcome outcome) {
  auto it = subscriptions_.find(req_id);
  if (it != subscriptions_.end()) {
    OutcomeCallback cb = std::move(it->second);
    subscriptions_.erase(it);
    cb(req_id, std::move(outcome));
    return;
  }
  outcomes_[req_id] = TrackedOutcome{std::move(outcome), tick_count_};
  if (!options_.dense_tick && options_.outcome_ttl_ticks > 0) {
    // Sparse TTL: the expiry tick is known at park time, so the sweep
    // pops exactly the due entries instead of scanning the table. The
    // dense sweep fires when tick_count_ - recorded > ttl; the counter
    // increments before the sweep runs, so the first matching sweep is
    // at tick_count_ == recorded + ttl + 1.
    outcome_wheel_.ScheduleAt(
        tick_count_ + static_cast<uint64_t>(options_.outcome_ttl_ticks) + 1,
        OutcomeExpiry{req_id, tick_count_});
  }
}

void ClusterSim::SweepExpiredOutcomes() {
  if (options_.outcome_ttl_ticks <= 0) return;
  if (!options_.dense_tick) {
    outcome_wheel_.PopDue(tick_count_, [&](const OutcomeExpiry& e) {
      auto it = outcomes_.find(e.req_id);
      // Collected (TakeOutcome erased it) or re-recorded since: skip.
      if (it != outcomes_.end() &&
          it->second.recorded_tick == e.recorded_tick) {
        outcomes_.erase(it);
      }
    });
    return;
  }
  if (outcomes_.empty()) return;
  const uint64_t ttl = static_cast<uint64_t>(options_.outcome_ttl_ticks);
  for (auto it = outcomes_.begin(); it != outcomes_.end();) {
    // Strict: outcomes are stamped before the tick counter increments in
    // Settle, so `>=` would make ttl=1 sweep an outcome within the very
    // tick it settled.
    if (tick_count_ - it->second.recorded_tick > ttl) {
      it = outcomes_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterSim::DeliverResponse(const NodeResponse& resp,
                                 const ResponseTiming* timing) {
  // Scan legs detour into their accumulator; the merged scan re-enters
  // here under the base id once the last leg lands. The empty-map guard
  // keeps the non-scan hot path at one branch.
  if (!scan_part_index_.empty()) {
    auto pit = scan_part_index_.find(resp.req_id);
    if (pit != scan_part_index_.end()) {
      ScanPartRef ref = pit->second;
      scan_part_index_.erase(pit);
      AbsorbScanPart(ref, resp, timing);
      return;
    }
  }
  TenantId tenant = resp.tenant;
  size_t proxy_index = 0;
  bool known_forward = false;
  bool track_outcome = false;
  if (RequestContext* inf = inflight_.Find(resp.req_id)) {
    tenant = inf->tenant;
    proxy_index = inf->proxy_index;
    track_outcome = inf->track_outcome;
    known_forward = true;
    inflight_.Erase(resp.req_id);
  }
  TenantRuntime* rtp = MutableTenant(tenant);
  if (rtp == nullptr) return;
  TenantRuntime& rt = *rtp;
  TouchTenant(tenant, rt);

  if (known_forward || resp.background_refresh) {
    if (proxy_index < rt.proxies.size()) {
      rt.proxies[proxy_index]->OnResponse(resp);
    }
  }
  if (resp.background_refresh) return;  // Not client-visible.

  // Legacy path: node latency + the flat forward hop. Timed path: the
  // precomputed virtual time (RTT class + hedge adjustment included).
  Micros client_latency =
      timing != nullptr ? timing->client_latency
                        : resp.latency + options_.proxy.forward_hop_latency;

  if (track_outcome) {
    PublishOutcome(resp.req_id,
                   ClientOutcome{resp.status, resp.value, client_latency});
  }

  // NotFound is a successfully-served answer, not a failure.
  if (resp.status.ok() || resp.status.IsNotFound()) {
    rt.current.ok++;
    rt.current.latency_sum += static_cast<double>(client_latency);
    rt.current.latency_max = std::max(rt.current.latency_max, client_latency);
    rt.current.latency_count++;
    rt.latency_hist.Add(static_cast<double>(client_latency));
    if (timing != nullptr) {
      rt.tick_latency_hist.Add(static_cast<double>(client_latency));
      rt.hedger.Observe(client_latency);
      // First observation enrolls the tenant in the per-tick hedger
      // EndTick walk (a never-observed hedger's threshold never moves).
      hedge_observed_.insert(tenant);
      if (rt.slo_target > 0 && client_latency > rt.slo_target) {
        rt.current.slo_violations++;
      }
      if (timing->hedged) {
        rt.current.hedged_reads++;
        if (timing->hedge_won) rt.current.hedge_wins++;
      }
    }
    if (IsReadOp(resp.op)) {
      rt.current.reads_completed++;
      if (resp.served_by == ServedBy::kNodeCache) {
        rt.current.node_cache_hits++;
      } else if (resp.served_by == ServedBy::kDisk) {
        rt.current.disk_reads++;
      }
      if (!resp.from_primary) {
        // Replica read: surface how far the serving replica trailed the
        // primary's stream at execution time. The reference is the
        // primary cursor as of the *previous* Replicate step — the
        // newest state the read could have observed — so a lag-0
        // configuration reports zero staleness, as documented.
        rt.current.replica_reads++;
        auto rs = repl_state_.find(PartitionKey(resp.tenant, resp.partition));
        if (rs != repl_state_.end() &&
            rs->second.prev_primary_applied > resp.replica_applied_seq) {
          rt.current.replica_lag_sum +=
              rs->second.prev_primary_applied - resp.replica_applied_seq;
        }
      }
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    } else {
      rt.value_bytes_sum += resp.value_bytes;
      rt.value_bytes_count++;
    }
  } else {
    rt.current.errors++;
    if (resp.status.IsThrottled()) rt.current.throttled++;
    if (resp.status.IsUnavailable()) rt.current.unavailable++;
  }
  rt.current.ru_charged += resp.actual_ru;
  // The cancelled hedge leg did real work before the cancel landed; its
  // RU charge is the price of the tail cut (bench-gated at <= +10%).
  if (timing != nullptr && timing->extra_ru > 0) {
    rt.current.ru_charged += timing->extra_ru;
  }
}

// ---------------------------------------------------------------------------
// Scan fan-out
// ---------------------------------------------------------------------------

void ClusterSim::RouteScanFanout(
    PendingForward& fwd, TenantRuntime& rt,
    std::vector<std::vector<NodeRequest*>>& batches) {
  NodeRequest& req = fwd.request;
  // The partition SET must be current, not merely routable: a stale
  // table after a split cutover would scan only the parents, whose
  // moved keys the post-cutover purge is already deleting. One epoch
  // compare per scan; the refresh itself runs only on an actual move.
  if (rt.route_epoch != meta_->routing_epoch()) {
    RefreshRoutingTable(rt);
    rt.current.redirects++;
  }
  const size_t parts = rt.route_table.size();
  if (parts == 0) {
    rt.current.errors++;
    rt.current.unavailable++;
    if (fwd.ctx.proxy_index < rt.proxies.size()) {
      rt.proxies[fwd.ctx.proxy_index]->AbandonForward(req.req_id);
    }
    if (fwd.ctx.track_outcome) {
      PublishOutcome(req.req_id,
                     ClientOutcome{Status::Unavailable("no partitions"), ""});
    }
    return;
  }

  const uint64_t base_id = req.req_id;
  ScanFanout& fo = scan_fanouts_[base_id];
  fo.tenant = fwd.ctx.tenant;
  fo.proxy_index = fwd.ctx.proxy_index;
  fo.start = req.key;
  fo.end = req.field;
  fo.limit = req.scan_limit;
  fo.parts.resize(parts);
  // The base context settles the merged response. It carries no node
  // binding — the legs do, and the fault path resolves them leg by leg.
  inflight_[base_id] = fwd.ctx;
  // The admission estimate is held against the base id at the proxy;
  // splitting it across the legs keeps the nodes' partition-quota and
  // WFQ view of the scan at the same total cost.
  const double leg_estimate = req.estimated_ru / static_cast<double>(parts);

  for (size_t p = 0; p < parts; p++) {
    ScanPart& part = fo.parts[p];
    part.partition = static_cast<PartitionId>(p);
    node::DataNode* n =
        FindNode(CachedPrimary(rt, static_cast<PartitionId>(p)));
    const bool routable = n != nullptr && n->CanServe() &&
                          n->IsPrimaryFor(req.tenant,
                                          static_cast<PartitionId>(p));
    if (!routable) {
      // Pre-failed leg: no routable primary even under the fresh table.
      part.arrived = true;
      part.status = Status::Unavailable("no primary");
      fo.arrived++;
      continue;
    }
    scan_sub_scratch_.emplace_back();
    NodeRequest& sub = scan_sub_scratch_.back();
    sub.req_id = next_scan_sub_id_++;
    sub.tenant = req.tenant;
    sub.partition = static_cast<PartitionId>(p);
    sub.op = OpType::kScan;
    sub.key = req.key;
    sub.field = req.field;
    sub.scan_limit = req.scan_limit;  // Full limit; see request.h.
    sub.issued_at = req.issued_at;
    sub.estimated_ru = leg_estimate;
    sub.value_size_hint = req.value_size_hint;
    sub.replicas = req.replicas;
    sub.consistency = Consistency::kPrimary;
    RequestContext leg_ctx;
    leg_ctx.tenant = fwd.ctx.tenant;
    leg_ctx.proxy_index = fwd.ctx.proxy_index;
    leg_ctx.scan_part = true;
    leg_ctx.node = n->id();
    inflight_[sub.req_id] = leg_ctx;
    scan_part_index_[sub.req_id] =
        ScanPartRef{base_id, static_cast<uint32_t>(p)};
    assert(static_cast<size_t>(n->id()) < batches.size());
    batches[static_cast<size_t>(n->id())].push_back(&sub);
  }
  if (fo.arrived == fo.parts.size()) CompleteScanFanout(base_id);
}

void ClusterSim::AbsorbScanPart(const ScanPartRef& ref,
                                const NodeResponse& resp,
                                const ResponseTiming* timing) {
  inflight_.Erase(resp.req_id);
  auto it = scan_fanouts_.find(ref.base_id);
  if (it == scan_fanouts_.end()) return;
  ScanFanout& fo = it->second;
  ScanPart& part = fo.parts[ref.part_index];
  if (part.arrived) return;  // Defensive: legs settle exactly once.
  part.arrived = true;
  part.status = resp.status;
  part.value = resp.value;
  part.scan_entries = resp.scan_entries;
  part.actual_ru = resp.actual_ru;
  part.latency = resp.latency;
  part.served_by = resp.served_by;
  if (timing != nullptr) {
    fo.timed = true;
    part.client_latency = timing->client_latency;
    part.actual_ru += timing->extra_ru;
  }
  fo.arrived++;
  if (fo.arrived == fo.parts.size()) CompleteScanFanout(ref.base_id);
}

void ClusterSim::FailScanPart(const ScanPartRef& ref, Status status) {
  auto it = scan_fanouts_.find(ref.base_id);
  if (it == scan_fanouts_.end()) return;
  ScanFanout& fo = it->second;
  ScanPart& part = fo.parts[ref.part_index];
  if (part.arrived) return;
  part.arrived = true;
  part.status = std::move(status);
  fo.arrived++;
  if (fo.arrived == fo.parts.size()) CompleteScanFanout(ref.base_id);
}

void ClusterSim::CompleteScanFanout(uint64_t base_id) {
  auto it = scan_fanouts_.find(base_id);
  if (it == scan_fanouts_.end()) return;
  // Move the accumulator out before settling: DeliverResponse re-enters
  // sim state, and the map entry must not outlive the fan-out.
  ScanFanout fo = std::move(it->second);
  scan_fanouts_.erase(it);

  NodeResponse merged;
  merged.req_id = base_id;
  merged.tenant = fo.tenant;
  merged.partition = 0;
  merged.op = OpType::kScan;
  merged.key = fo.start;
  merged.from_primary = true;  // Scans always read primaries.
  Micros max_client_latency = 0;
  for (const ScanPart& part : fo.parts) {
    merged.actual_ru += part.actual_ru;
    // Legs ran concurrently; the slowest bounds the scan.
    merged.latency = std::max(merged.latency, part.latency);
    max_client_latency = std::max(max_client_latency, part.client_latency);
    if (part.served_by == ServedBy::kDisk) {
      merged.served_by = ServedBy::kDisk;
    }
    if (merged.status.ok() && !part.status.ok() &&
        !part.status.IsNotFound()) {
      // Strict merge: a range missing one partition's contribution is
      // not a smaller answer, it is a wrong one. The first failing leg
      // in partition order names the failure.
      merged.status = part.status;
    }
  }

  if (merged.status.ok()) {
    // K-way merge of the legs' framed payloads: ascending key order,
    // equal keys resolved to the highest partition id (while a
    // post-split purge drains, parent and child both hold a moved key —
    // the child's copy is the surviving one), and the client limit
    // re-applied globally. Legs are few, so a linear min-scan beats a
    // heap's bookkeeping.
    const size_t n = fo.parts.size();
    SmallVec<std::string_view, 8> cursors;
    SmallVec<ScanEntryView, 8> heads;
    SmallVec<bool, 8> has;
    for (size_t i = 0; i < n; i++) {
      cursors.push_back(fo.parts[i].value);
      heads.push_back(ScanEntryView{});
      has.push_back(NextScanEntry(cursors[i], heads[i]));
    }
    uint64_t emitted = 0;
    while (fo.limit == 0 || emitted < fo.limit) {
      int best = -1;
      for (size_t i = 0; i < n; i++) {
        if (!has[i]) continue;
        // <= : the last (highest-partition) leg holding the minimal key
        // wins the tie.
        if (best < 0 || heads[i].key <= heads[best].key) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      // The view stays valid while duplicates advance: leg payload
      // buffers are never mutated during the merge.
      const std::string_view key = heads[best].key;
      AppendScanEntry(merged.value, key, heads[best].value);
      emitted++;
      for (size_t i = 0; i < n; i++) {
        while (has[i] && heads[i].key == key) {
          has[i] = NextScanEntry(cursors[i], heads[i]);
        }
      }
    }
    merged.scan_entries = emitted;
    merged.value_bytes = merged.value.size();
  }

  if (fo.timed) {
    ResponseTiming timing;
    timing.client_latency = max_client_latency;
    DeliverResponse(merged, &timing);
  } else {
    DeliverResponse(merged, nullptr);
  }

  // Content-store fill. Proxy::OnResponse cannot do this — a
  // NodeResponse carries neither the range shape nor the limit — so the
  // merge, which does, hands the framed result over. Only prefix-shaped
  // scans are cacheable (the tree addresses results by prefix).
  if (merged.status.ok() && fo.end == PrefixUpperBound(fo.start)) {
    if (TenantRuntime* rt = MutableTenant(fo.tenant)) {
      if (fo.proxy_index < rt->proxies.size()) {
        rt->proxies[fo.proxy_index]->FillScanCache(fo.start, fo.limit,
                                                   merged.value);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tick loop
// ---------------------------------------------------------------------------

void ClusterSim::Tick() {
  BeginTick();
  pipeline_->RunTick();
}

void ClusterSim::RunTicks(size_t n) {
  for (size_t i = 0; i < n; i++) Tick();
}

void ClusterSim::BeginTick() {
  // Roll the touched ledger: last tick's set stays visible (the
  // refresh-fetch walk drains fetches created in last tick's Settle).
  touch_epoch_++;
  prev_touched_.swap(touched_);
  touched_.clear();
  if (options_.dense_tick) return;
  // Wake parked generators whose rate schedule reaches a boundary this
  // tick. Stale wake-ups (the tenant unparked and re-parked since) are
  // recognized by their park generation and dropped.
  gen_wheel_.PopDue(tick_count_, [&](const GenWake& w) {
    TenantRuntime** slot = tenant_index_.Find(w.tenant);
    if (slot == nullptr) return;
    TenantRuntime& rt = **slot;
    if (rt.gen_parked && rt.wake_seq == w.seq && rt.workload != nullptr) {
      rt.gen_parked = false;
      gen_active_.insert(w.tenant);
    }
  });
}

void ClusterSim::ParkGenerator(TenantId tenant, TenantRuntime& rt,
                               Micros now) {
  rt.gen_parked = true;
  rt.wake_seq++;
  const WorkloadProfile& prof = rt.workload->profile();
  if (prof.rate_schedule.empty() || prof.rate_schedule_step <= 0) {
    // Flat zero rate: parked until SetWorkload/MutableWorkload wakes it.
    return;
  }
  // Wake at the first tick at or past the next schedule boundary; the
  // slot build re-evaluates the cell there (and re-parks if still 0).
  const Micros next = (now / prof.rate_schedule_step + 1) *
                      prof.rate_schedule_step;
  const uint64_t ticks_until =
      (static_cast<uint64_t>(next - now) +
       static_cast<uint64_t>(options_.tick) - 1) /
      static_cast<uint64_t>(options_.tick);
  gen_wheel_.ScheduleAt(tick_count_ + std::max<uint64_t>(1, ticks_until),
                        GenWake{tenant, rt.wake_seq});
}

const std::vector<TenantId>& ClusterSim::SortedUnion(
    const std::vector<TenantId>& a, const std::vector<TenantId>& b) {
  visit_scratch_.clear();
  visit_scratch_.reserve(a.size() + b.size());
  visit_scratch_.insert(visit_scratch_.end(), a.begin(), a.end());
  visit_scratch_.insert(visit_scratch_.end(), b.begin(), b.end());
  std::sort(visit_scratch_.begin(), visit_scratch_.end());
  visit_scratch_.erase(
      std::unique(visit_scratch_.begin(), visit_scratch_.end()),
      visit_scratch_.end());
  return visit_scratch_;
}

void ClusterSim::FinalizeTickMetrics() {
  const bool timed = options_.latency.enabled;
  if (!options_.dense_tick) {
    // Only touched tenants can differ from an all-zero row; everyone
    // else's row materializes lazily as TenantTickMetrics{} on next
    // access (exactly what the dense loop would have pushed: an
    // untouched tick_latency_hist is empty, so the percentile fold is
    // skipped there too).
    for (TenantId tid : touched_) {
      TenantRuntime** slot = tenant_index_.Find(tid);
      if (slot == nullptr) continue;
      TenantRuntime& rt = **slot;
      if (timed && rt.tick_latency_hist.count() > 0) {
        rt.current.latency_p50 = rt.tick_latency_hist.P50();
        rt.current.latency_p95 = rt.tick_latency_hist.Percentile(95);
        rt.current.latency_p99 = rt.tick_latency_hist.P99();
        rt.tick_latency_hist.Reset();
      }
      // tick_count_ already incremented in Settle: the row being pushed
      // is for tick (tick_count_ - 1).
      BackfillHistoryTo(rt, tick_count_ - rt.created_at_tick - 1);
      rt.history.push_back(rt.current);
      rt.current = TenantTickMetrics{};
    }
    return;
  }
  for (auto& [tid, rt] : tenants_) {
    if (timed && rt.tick_latency_hist.count() > 0) {
      rt.current.latency_p50 = rt.tick_latency_hist.P50();
      rt.current.latency_p95 = rt.tick_latency_hist.Percentile(95);
      rt.current.latency_p99 = rt.tick_latency_hist.P99();
      rt.tick_latency_hist.Reset();
    }
    rt.history.push_back(rt.current);
    rt.current = TenantTickMetrics{};
  }
}

const std::vector<TenantTickMetrics>& ClusterSim::History(
    TenantId tenant) const {
  static const std::vector<TenantTickMetrics> kEmpty;
  ClusterSim* self = const_cast<ClusterSim*>(this);
  auto it = self->tenants_.find(tenant);
  if (it == self->tenants_.end()) return kEmpty;
  if (!options_.dense_tick) SyncHistory(it->second);
  return it->second.history;
}

const TenantRuntime* ClusterSim::Tenant(TenantId tenant) const {
  return const_cast<ClusterSim*>(this)->MutableTenant(tenant);
}

TenantRuntime* ClusterSim::MutableTenant(TenantId tenant) {
  TenantRuntime** slot = tenant_index_.Find(tenant);
  return slot == nullptr ? nullptr : *slot;
}

// ---------------------------------------------------------------------------
// Rescheduler bridge
// ---------------------------------------------------------------------------

resched::PoolModel ClusterSim::BuildPoolModel(PoolId pool) const {
  resched::PoolModel model;
  for (node::DataNode* n : meta_->PoolNodes(pool)) {
    // A failed/recovering node is invisible to the rescheduler: its
    // zeroed load would otherwise make it the most attractive migration
    // destination in the pool.
    if (!n->CanServe()) continue;
    resched::NodeModel& nm = model.AddNode(
        n->id(), n->options().ru_capacity,
        static_cast<double>(n->options().storage_capacity));
    for (const node::PartitionReplica* rep : n->Replicas()) {
      const meta::TenantMeta* tm = meta_->GetTenant(rep->tenant);
      if (tm == nullptr) continue;
      resched::ReplicaLoad rl;
      rl.tenant = rep->tenant;
      rl.partition = rep->partition;
      // The replica's actual placement index (0 = primary), so the
      // rescheduler's load model distinguishes second from third
      // replicas instead of flattening every non-primary to 1.
      rl.replica_index = rep->is_primary ? 0 : 1;
      if (rep->partition >= tm->partitions.size()) {
        // A staged split child (not yet in the partition table): its
        // growing footprint still loads this node, but it is mid-stream
        // and must not be migrated out from under the split — pinned
        // until the cutover installs it.
        rl.pinned = true;
      } else {
        const auto& reps = tm->partitions[rep->partition].replicas;
        auto rit = std::find(reps.begin(), reps.end(), n->id());
        if (rit != reps.end()) {
          rl.replica_index =
              static_cast<uint32_t>(std::distance(reps.begin(), rit));
        }
      }
      rl.ru = LoadVector::Constant(rep->ru_rate);
      rl.storage = LoadVector::Constant(
          static_cast<double>(rep->engine->ApproximateDataBytes()));
      nm.AddReplica(std::move(rl));
    }
  }
  return model;
}

void ClusterSim::RecordMigrationOutcome(const Status& status) {
  if (status.ok()) {
    migration_stats_.applied++;
  } else {
    migration_stats_.skipped++;
    migration_stats_.skip_reasons[status.code()]++;
  }
}

std::vector<ClusterSim::MigrationOutcome> ClusterSim::ApplyMigrations(
    const std::vector<resched::Migration>& migrations) {
  std::vector<MigrationOutcome> outcomes;
  outcomes.reserve(migrations.size());
  for (const resched::Migration& m : migrations) {
    migration_stats_.planned++;
    Status s = meta_->MigrateReplica(m.tenant, m.partition, m.from, m.to);
    RecordMigrationOutcome(s);
    outcomes.push_back(MigrationOutcome{m, std::move(s)});
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// Closed-loop control plane (the Control stage; serial sections only)
// ---------------------------------------------------------------------------

void ClusterSim::EnableAutoscale(TenantId tenant, AutoscaleMode mode,
                                 autoscale::ScalingPolicy policy,
                                 forecast::EnsembleOptions forecast_options) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantRuntime& rt = it->second;
  if (mode == AutoscaleMode::kDisabled) {
    autoscale_enabled_.erase(tenant);
  } else {
    // Fold any outstanding idle gap before the tenant joins the
    // standing control work list (enabled tenants fold every tick and
    // never fall behind again).
    if (!options_.dense_tick) SyncControlUsage(tenant, rt);
    autoscale_enabled_.insert(tenant);
  }
  rt.autoscale_mode = mode;
  rt.scaling_policy = policy;
  rt.forecast_options = forecast_options;
}

void ClusterSim::SeedUsageHistory(TenantId tenant, const TimeSeries& usage) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantRuntime& rt = it->second;
  if (!options_.dense_tick) SyncControlUsage(tenant, rt);
  rt.usage_history = usage;
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  const double quota =
      tm != nullptr ? tm->tenant_quota_ru : rt.config.tenant_quota_ru;
  rt.quota_history = TimeSeries(std::vector<double>(usage.size(), quota));
}

const TimeSeries* ClusterSim::UsageHistory(TenantId tenant) const {
  ClusterSim* self = const_cast<ClusterSim*>(this);
  auto it = self->tenants_.find(tenant);
  if (it == self->tenants_.end()) return nullptr;
  if (!options_.dense_tick) self->SyncControlUsage(tenant, it->second);
  return &it->second.usage_history;
}

Micros ClusterSim::ControlNow(const TenantRuntime& rt) const {
  const int tph = std::max(1, options_.control_ticks_per_hour);
  return static_cast<Micros>(rt.usage_history.size()) * kMicrosPerHour +
         static_cast<Micros>(rt.hour_ticks) * kMicrosPerHour / tph;
}

void ClusterSim::SyncControlUsage(TenantId tenant, TenantRuntime& rt) {
  (void)tenant;
  if (options_.control_interval_ticks <= 0) return;
  if (rt.ctrl_synced_tick >= tick_count_) return;
  // Untouched ticks have all-zero metrics rows: materialize them, then
  // run the exact dense fold over the gap. A zero tick folds the EWMA as
  // 0.7*ewma + 0.0 (bit-exact against the dense zero fold) and advances
  // the hour counter; the hour-boundary quota sample reads the *current*
  // quota — for a disabled idle tenant whose quota changed mid-gap this
  // can differ from a dense run, an accepted (undigested) divergence.
  SyncHistory(rt);
  const double tick_seconds = static_cast<double>(options_.tick) /
                              static_cast<double>(kMicrosPerSecond);
  const int tph = std::max(1, options_.control_ticks_per_hour);
  for (uint64_t t = rt.ctrl_synced_tick; t < tick_count_; t++) {
    const double tick_ru =
        rt.history[static_cast<size_t>(t - rt.created_at_tick)].ru_charged;
    rt.hour_ru_accum += tick_ru;
    rt.hour_ticks++;
    constexpr double kEwmaAlpha = 0.3;
    rt.ru_rate_ewma = (1.0 - kEwmaAlpha) * rt.ru_rate_ewma +
                      kEwmaAlpha * (tick_ru / tick_seconds);
    if (rt.hour_ticks >= tph) {
      const double hour_seconds = static_cast<double>(tph) * tick_seconds;
      rt.usage_history.Append(rt.hour_ru_accum / hour_seconds);
      const meta::TenantMeta* tm = meta_->GetTenant(rt.config.id);
      rt.quota_history.Append(tm != nullptr ? tm->tenant_quota_ru
                                            : rt.config.tenant_quota_ru);
      rt.hour_ru_accum = 0;
      rt.hour_ticks = 0;
    }
  }
  rt.ctrl_synced_tick = tick_count_;
}

void ClusterSim::AccumulateControlUsage() {
  if (!options_.dense_tick) {
    // Standing work list (autoscale-enabled tenants fold every tick so
    // their scaler inputs are always current) plus this tick's touched
    // tenants (the only ones whose row is not all-zero). Everyone else
    // catches up lazily — the gap folds as zeros, which is exact.
    for (TenantId tid : autoscale_enabled_) {
      if (TenantRuntime** slot = tenant_index_.Find(tid)) {
        SyncControlUsage(tid, **slot);
      }
    }
    for (TenantId tid : touched_) {
      if (TenantRuntime** slot = tenant_index_.Find(tid)) {
        SyncControlUsage(tid, **slot);
      }
    }
    return;
  }
  const double tick_seconds = static_cast<double>(options_.tick) /
                              static_cast<double>(kMicrosPerSecond);
  const int tph = std::max(1, options_.control_ticks_per_hour);
  for (auto& [tid, rt] : tenants_) {
    (void)tid;
    if (rt.history.empty()) continue;
    const double tick_ru = rt.history.back().ru_charged;
    rt.hour_ru_accum += tick_ru;
    rt.hour_ticks++;
    // Reactive "current usage": a light EWMA over the settled RU rate so
    // one Poisson-quiet tick does not mask a live burst.
    constexpr double kEwmaAlpha = 0.3;
    rt.ru_rate_ewma = (1.0 - kEwmaAlpha) * rt.ru_rate_ewma +
                      kEwmaAlpha * (tick_ru / tick_seconds);
    if (rt.hour_ticks >= tph) {
      const double hour_seconds = static_cast<double>(tph) * tick_seconds;
      rt.usage_history.Append(rt.hour_ru_accum / hour_seconds);
      const meta::TenantMeta* tm = meta_->GetTenant(rt.config.id);
      rt.quota_history.Append(tm != nullptr ? tm->tenant_quota_ru
                                            : rt.config.tenant_quota_ru);
      rt.hour_ru_accum = 0;
      rt.hour_ticks = 0;
    }
  }
}

void ClusterSim::RunAutoscalers() {
  if (!options_.dense_tick) {
    // The enabled set iterates in ascending tenant id — the same order
    // the dense tenant-map walk visits them in, which matters because
    // scaling decisions mutate shared MetaServer placement state.
    for (TenantId tid : autoscale_enabled_) {
      TenantRuntime** slot = tenant_index_.Find(tid);
      if (slot == nullptr) continue;
      RunAutoscalerFor(tid, **slot);
    }
    return;
  }
  for (auto& [tid, rt] : tenants_) {
    if (rt.autoscale_mode == AutoscaleMode::kDisabled) continue;
    RunAutoscalerFor(tid, rt);
  }
}

void ClusterSim::RunAutoscalerFor(TenantId tid, TenantRuntime& rt) {
  if (rt.autoscale_mode == AutoscaleMode::kDisabled) return;
  const meta::TenantMeta* tm = meta_->GetTenant(tid);
  if (tm == nullptr || tm->partitions.empty()) return;
  const double quota = tm->tenant_quota_ru;
  const Micros now_control = ControlNow(rt);

  autoscale::ScalingDecision decision;
  if (rt.autoscale_mode == AutoscaleMode::kPredictive) {
    autoscale::Autoscaler scaler(rt.scaling_policy, rt.forecast_options);
    auto d = scaler.Decide(
        rt.usage_history, rt.quota_history, quota,
        static_cast<uint32_t>(tm->partitions.size()),
        tm->config.partition_quota_upper, tm->config.partition_quota_lower,
        rt.last_scale_down_control, now_control);
    if (!d.ok()) return;  // E.g. history still below min_history.
    decision = std::move(d).value();
  } else {
    decision = rt.reactive_scaler.Decide(rt.ru_rate_ewma, quota);
  }

  if (decision.action != autoscale::ScalingDecision::Action::kNone &&
      decision.new_quota != quota) {
    // Inline splits stay off: an over-UP partition quota stages an
    // online split below instead of re-sharding metadata instantly.
    if (!meta_->SetTenantQuota(tid, decision.new_quota,
                               /*allow_split=*/false)
             .ok()) {
      return;
    }
    if (decision.action == autoscale::ScalingDecision::Action::kScaleUp) {
      rt.scale_ups++;
    } else {
      rt.scale_downs++;
      rt.last_scale_down_control = now_control;
    }
    // The proxy fleet's autonomous quota follows the tenant quota.
    const double proxy_quota =
        decision.new_quota / static_cast<double>(rt.proxies.size());
    for (auto& p : rt.proxies) p->SetBaseQuota(proxy_quota);
  }

  // Algorithm 1 lines 4-6, online: partition quota above UP starts a
  // staged split (unless one is already streaming).
  if (tm->PartitionQuota() > tm->config.partition_quota_upper &&
      !SplitInProgress(tid) && meta_->GetPendingSplit(tid) == nullptr) {
    if (StartPartitionSplit(tid).ok()) rt.splits_started++;
  }
}

Status ClusterSim::StartPartitionSplit(TenantId tenant) {
  if (SplitInProgress(tenant)) {
    return Status::InvalidArgument("split already in progress");
  }
  const meta::TenantMeta* tm = meta_->GetTenant(tenant);
  if (tm == nullptr) return Status::NotFound("no such tenant");
  // Every parent primary must be resolvable *now*: the streaming window
  // opens at its current stream head, and a hold recorded against a
  // dark primary would be unreplayable at cutover (silent lost writes).
  // The caller (control loop, tests) simply retries later.
  const uint32_t old_count = static_cast<uint32_t>(tm->partitions.size());
  std::vector<storage::LsmEngine*> parent_engines;
  parent_engines.reserve(old_count);
  for (PartitionId p = 0; p < old_count; p++) {
    node::DataNode* pn = FindNode(meta_->PrimaryFor(tenant, p));
    storage::LsmEngine* src =
        pn != nullptr && pn->CanServe() ? pn->EngineFor(tenant, p) : nullptr;
    if (src == nullptr) {
      return Status::Unavailable("parent primary not serving");
    }
    parent_engines.push_back(src);
  }
  ABASE_RETURN_IF_ERROR(meta_->PrepareSplit(tenant));

  SplitOp op;
  op.old_count = old_count;
  for (PartitionId p = 0; p < op.old_count; p++) {
    SplitParent sp;
    sp.parent = p;
    // The streaming window opens at the parent's current stream head;
    // the replication logs are held here so every write acknowledged
    // while the snapshot streams can be replayed at cutover.
    sp.hold_seq = parent_engines[p]->applied_seq();
    split_log_holds_[PartitionKey(tenant, p)] = sp.hold_seq;
    op.parents.push_back(std::move(sp));
  }
  active_splits_.emplace(tenant, std::move(op));
  // The split holds the parents' replication logs at the window floor;
  // the Replicate walk must keep visiting this tenant to honor them.
  if (!options_.dense_tick) repl_active_.insert(tenant);
  return Status::OK();
}

void ClusterSim::AdvanceSplits() {
  const uint64_t budget = std::max<uint64_t>(1, options_.split_bytes_per_tick);
  for (auto it = active_splits_.begin(); it != active_splits_.end();) {
    const TenantId tid = it->first;
    SplitOp& op = it->second;
    const meta::MetaServer::PendingSplit* pending =
        meta_->GetPendingSplit(tid);
    const uint64_t modulus = static_cast<uint64_t>(op.old_count) * 2;

    if (!op.cut_over) {
      if (pending == nullptr) {
        // The staged placements vanished underneath us (external abort):
        // drop the orchestration state too.
        for (const SplitParent& sp : op.parents) {
          split_log_holds_.erase(PartitionKey(tid, sp.parent));
        }
        it = active_splits_.erase(it);
        continue;
      }
      // Phase 1 — snapshot streaming: each parent primary exports up to
      // the per-tick budget of its re-hashed half into the staged child
      // replicas (identical serial ingest => identical child engines).
      bool all_done = true;
      for (SplitParent& sp : op.parents) {
        if (sp.snapshot_done) continue;
        node::DataNode* pn = FindNode(meta_->PrimaryFor(tid, sp.parent));
        storage::LsmEngine* src =
            pn != nullptr && pn->CanServe() ? pn->EngineFor(tid, sp.parent)
                                            : nullptr;
        if (src == nullptr) {
          all_done = false;  // Primary dark: resume when it is back.
          continue;
        }
        auto batch = src->ExportHashRange(
            modulus, op.old_count + sp.parent, sp.cursor, budget);
        const PartitionId child =
            static_cast<PartitionId>(op.old_count + sp.parent);
        for (NodeId nid : pending->children[sp.parent].replicas) {
          node::DataNode* cn = FindNode(nid);
          storage::LsmEngine* ce =
              cn != nullptr ? cn->EngineFor(tid, child) : nullptr;
          if (ce == nullptr) continue;
          for (const auto& [key, entry] : batch.entries) {
            ce->Ingest(key, entry);
          }
          // Nothing ships from a staged child yet; keep its own
          // replication log from mirroring the whole streamed dataset.
          ce->TruncateReplLogThrough(ce->applied_seq());
        }
        sp.cursor = batch.next_cursor;
        sp.bytes_streamed += batch.bytes;
        sp.snapshot_done = batch.done;
        all_done = all_done && batch.done;
      }

      if (!all_done) {
        ++it;
        continue;
      }

      // Phase 2 — cutover, atomically within this serial stage: replay
      // every write acknowledged during the streaming window (the held
      // replication-log suffix) into the children, then install the
      // children and bump the routing epoch. Requests of this tick were
      // fully settled before Control runs, so no acknowledged write can
      // land on a parent after its window replays: zero acked writes are
      // lost.
      //
      // The cutover is all-or-nothing: if ANY parent's window cannot be
      // replayed right now — its primary is dark, or the held log
      // suffix somehow fell out of retention — committing would
      // silently lose the writes acknowledged during streaming, so the
      // whole cutover defers to a later tick instead.
      std::vector<storage::LsmEngine*> window_sources(op.parents.size(),
                                                      nullptr);
      bool replayable = true;
      for (size_t i = 0; i < op.parents.size(); i++) {
        const SplitParent& sp = op.parents[i];
        node::DataNode* pn = FindNode(meta_->PrimaryFor(tid, sp.parent));
        storage::LsmEngine* src =
            pn != nullptr && pn->CanServe() ? pn->EngineFor(tid, sp.parent)
                                            : nullptr;
        // A promotion may have rewound the stream head below the hold
        // (the failover's measured lost-write window, not the split's);
        // only a head *beyond* the hold needs a coverable log suffix.
        if (src == nullptr ||
            (src->applied_seq() > sp.hold_seq &&
             !src->repl_log().Covers(sp.hold_seq))) {
          replayable = false;
          break;
        }
        window_sources[i] = src;
      }
      if (!replayable) {
        ++it;
        continue;
      }
      for (size_t i = 0; i < op.parents.size(); i++) {
        SplitParent& sp = op.parents[i];
        storage::LsmEngine* src = window_sources[i];
        const PartitionId child =
            static_cast<PartitionId>(op.old_count + sp.parent);
        const uint64_t residue = op.old_count + sp.parent;
        if (src->applied_seq() > sp.hold_seq) {
          auto window = src->repl_log().Delta(sp.hold_seq,
                                              src->applied_seq());
          for (NodeId nid : pending->children[sp.parent].replicas) {
            node::DataNode* cn = FindNode(nid);
            storage::LsmEngine* ce =
                cn != nullptr ? cn->EngineFor(tid, child) : nullptr;
            if (ce == nullptr) continue;
            for (const storage::ReplRecord* rec : window) {
              if (Fnv1a64(rec->key) % modulus != residue) continue;
              // Ordered replay: the last record per key wins, including
              // tombstones — deletes in the window are not resurrected.
              ce->Ingest(rec->key, rec->entry);
            }
            ce->TruncateReplLogThrough(ce->applied_seq());
          }
        }
        split_log_holds_.erase(PartitionKey(tid, sp.parent));
      }
      if (meta_->CommitSplit(tid).ok()) {
        split_cutovers_++;
        op.cut_over = true;
        // Content-store treatment of the cutover: the partition set a
        // cached scan was merged across just changed. kPrefixSubtree
        // drops only the scan payloads (point entries' key->value
        // mapping is split-invariant and keeps serving); kFullFlush is
        // the conservative baseline the bench compares against; kNone
        // preserves the seed's behavior bit-for-bit.
        if (options_.split_invalidation != ProxyInvalidationMode::kNone) {
          if (TenantRuntime* rt = MutableTenant(tid)) {
            for (auto& p : rt->proxies) {
              if (options_.split_invalidation ==
                  ProxyInvalidationMode::kFullFlush) {
                p->FlushCache();
              } else {
                p->InvalidateCachedScans();
              }
            }
          }
        }
      }
      ++it;
      continue;
    }

    // Phase 3 — post-cutover purge: the moved keys are deleted out of
    // the parent primaries at the streaming rate (tombstones replicate
    // to the parent replicas through the normal Replicate stage).
    bool purge_done = true;
    for (SplitParent& sp : op.parents) {
      if (sp.purge_done) continue;
      node::DataNode* pn = FindNode(meta_->PrimaryFor(tid, sp.parent));
      storage::LsmEngine* src =
          pn != nullptr && pn->CanServe() ? pn->EngineFor(tid, sp.parent)
                                          : nullptr;
      if (src == nullptr) {
        purge_done = false;
        continue;
      }
      auto batch = src->ExportHashRange(
          modulus, op.old_count + sp.parent, sp.purge_cursor, budget);
      for (const auto& [key, entry] : batch.entries) {
        (void)entry;
        (void)src->Delete(key);
      }
      sp.purge_cursor = batch.next_cursor;
      sp.purge_done = batch.done;
      purge_done = purge_done && batch.done;
    }
    if (purge_done) {
      splits_completed_++;
      it = active_splits_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterSim::AdvanceMigrations() {
  uint64_t budget = std::max<uint64_t>(1, options_.migration_bytes_per_tick);
  while (budget > 0 && !migration_queue_.empty()) {
    PendingMigration& pm = migration_queue_.front();
    const uint64_t remaining = pm.bytes_total - pm.bytes_copied;
    const uint64_t step = std::min(budget, remaining);
    pm.bytes_copied += step;
    budget -= step;
    if (pm.bytes_copied < pm.bytes_total) return;
    // Modeled copy finished: install the move (it re-validates against
    // the live topology — the source may have failed, the destination
    // may have picked the partition up some other way since planning).
    const resched::Migration& m = pm.migration;
    Status s = meta_->MigrateReplica(m.tenant, m.partition, m.from, m.to);
    RecordMigrationOutcome(s);
    migration_queue_.pop_front();
  }
}

void ClusterSim::PlanRescheduling() {
  // Re-planning while copies are still streaming would schedule the same
  // imbalance twice; one wave drains before the next is planned.
  if (!migration_queue_.empty()) return;
  resched::IntraPoolRescheduler rescheduler;
  for (PoolId pool = 0; pool < static_cast<PoolId>(meta_->PoolCount());
       pool++) {
    resched::PoolModel model = BuildPoolModel(pool);
    for (const resched::Migration& m : rescheduler.Run(&model)) {
      PendingMigration pm;
      pm.migration = m;
      node::DataNode* src = FindNode(m.from);
      storage::LsmEngine* engine =
          src != nullptr ? src->EngineFor(m.tenant, m.partition) : nullptr;
      pm.bytes_total = std::max<uint64_t>(
          1, engine != nullptr ? engine->ApproximateDataBytes() : 1);
      migration_stats_.planned++;
      migration_queue_.push_back(std::move(pm));
    }
  }
}

}  // namespace sim
}  // namespace abase
