// Per-request bookkeeping carried across pipeline-stage boundaries.
//
// One RequestContext follows a request from client injection through
// proxy admission, data-plane scheduling, and settlement. It replaces the
// ad-hoc parallel maps (`inflight_`, `tracked_`) the simulator previously
// kept in sync by hand: everything the Settle stage needs to route a
// NodeResponse back — owning tenant, forwarding proxy, whether a
// synchronous client is waiting on the outcome — lives in one place,
// keyed by the data-plane request id.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "node/request.h"

namespace abase {
namespace sim {

/// Final outcome of a tracked request, as settled by the pipeline and
/// delivered to a subscription callback or parked for TakeOutcome.
struct ClientOutcome {
  Status status;
  std::string value;
  /// Client-visible latency of the settled request in micros (0 when the
  /// request never reached the data plane, e.g. proxy throttles).
  Micros latency_micros = 0;
};

/// State the simulator keeps for a request that crossed into the data
/// plane. Created by the Route stage when a forward is submitted to a
/// DataNode; consumed by the Settle stage when the response comes back —
/// or by the fault path, which resolves every context stranded on a
/// failed node as Unavailable.
struct RequestContext {
  TenantId tenant = 0;
  /// Index of the proxy that forwarded the request (settlement + cache
  /// fill go back to this proxy).
  size_t proxy_index = 0;
  /// True when a synchronous caller (abase::Client) awaits the outcome;
  /// the Settle stage then records a ClientOutcome under the request id.
  bool track_outcome = false;
  /// True for proxy cache-refresh fetches: not client-visible, so the
  /// fault path drops them without charging tenant error metrics.
  bool background = false;
  /// DataNode the request was submitted to (set by Route), so a node
  /// failure can find and resolve everything stranded on it.
  NodeId node = kInvalidNode;
  /// Alternate replica armed for a hedged read (latency subsystem): set
  /// by Route for kEventual reads when hedging is on, consumed by Settle
  /// if the primary leg's virtual time crosses the hedge threshold.
  NodeId hedge_node = kInvalidNode;
  /// True for one per-partition leg of a fanned-out scan: its response
  /// settles into the scan accumulator (and a node failure fails just
  /// that leg), never directly into tenant metrics — the merged result
  /// settles once under the base request id.
  bool scan_part = false;
  /// Set by the fused admit/route pass when the forward could not be
  /// routed (no serving primary / replica even after a redirect chase).
  /// The Route stage's serial walk performs the failure settlement —
  /// error metrics, quota refund, outcome publication — at the forward's
  /// position, exactly where the unfused walk would have.
  bool route_failed = false;
};

/// A proxy-admitted request on its way to the data plane: the output of
/// the ProxyAdmit stage and the input of the Route stage.
struct PendingForward {
  NodeRequest request;
  RequestContext ctx;
};

}  // namespace sim
}  // namespace abase
