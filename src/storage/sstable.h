// Immutable sorted run with a bloom filter and block-granular I/O
// accounting. Data lives in memory (the simulator's "disk"), but every
// probe that reaches the run's data blocks counts as one disk read so the
// I/O-WFQ and DiskModel see realistic load.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/key_ref.h"
#include "storage/bloom.h"
#include "storage/value.h"

namespace abase {
namespace storage {

/// Result of probing one SSTable.
struct SstProbe {
  const ValueEntry* entry = nullptr;  ///< nullptr if key absent.
  int block_reads = 0;  ///< Data-block reads charged (0 if bloom-filtered).
};

/// An immutable sorted string table built from a flushed memtable or a
/// compaction merge.
class SsTable {
 public:
  /// Builds from sorted (key, entry) pairs. `id` is unique per engine.
  SsTable(uint64_t id, std::vector<std::pair<std::string, ValueEntry>> rows);

  /// Point lookup. Bloom-negative probes cost no block reads; positive
  /// probes cost one block read (the sparse index is assumed resident).
  SstProbe Get(std::string_view key) const;

  /// Get with a resumable search hint for batched lookups over keys in
  /// ascending order: the binary search starts at `*hint` (the previous
  /// key's lower bound) instead of the run's start, and `*hint` advances
  /// to this key's lower bound. Identical result and block-read charge
  /// to the plain Get.
  SstProbe Get(std::string_view key, size_t* hint) const;

  /// Interned-key form: the engine hashes a key ONCE per lookup
  /// (KeyRef::From) and every run's bloom probe reuses key.hash instead
  /// of re-hashing — the old path paid one FNV pass per run per miss.
  /// Identical result and block-read charge to the string_view form.
  SstProbe Get(const KeyRef& key, size_t* hint) const;

  uint64_t id() const { return id_; }
  size_t entry_count() const { return rows_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  /// True if `key` falls in [min_key, max_key] (cheap pre-filter).
  bool KeyInRange(std::string_view key) const {
    return !rows_.empty() && key >= min_key_ && key <= max_key_;
  }

  const std::vector<std::pair<std::string, ValueEntry>>& rows() const {
    return rows_;
  }

 private:
  uint64_t id_;
  std::vector<std::pair<std::string, ValueEntry>> rows_;
  BloomFilter bloom_;
  uint64_t data_bytes_ = 0;
  std::string min_key_, max_key_;
};

using SsTablePtr = std::shared_ptr<const SsTable>;

}  // namespace storage
}  // namespace abase
