// Minimal write-ahead log. Records are kept in memory; the engine replays
// them to rebuild the memtable after a simulated crash, which the recovery
// tests and the MetaServer failure experiments rely on.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "storage/replication_log.h"
#include "storage/value.h"

namespace abase {
namespace storage {

/// Append-only log with truncation at flush boundaries.
///
/// Storage is a list of fixed-size chunks rather than one flat vector:
/// appends never relocate earlier records (a flat vector's growth
/// reallocation moved the whole backlog, which showed up in profiles),
/// and flush-time truncation retires whole chunks in O(1).
///
/// Records are the shared immutable ReplRecord copies (see
/// replication_log.h): when the replication log retains the same write,
/// the two logs hold one materialized record between them, and a
/// replica's WAL append of a shipped record is a refcount bump.
class WriteAheadLog {
 public:
  /// Shares an already-materialized record: no key/value copy.
  void Append(ReplRecordPtr rec) {
    bytes_ += rec->key.size() + rec->entry.PayloadBytes();
    if (chunks_.empty() || chunks_.back().size() == kChunk) {
      chunks_.emplace_back();
      chunks_.back().reserve(kChunk);
    }
    chunks_.back().push_back(std::move(rec));
    count_++;
  }

  /// Convenience for callers holding a loose key/entry.
  void Append(std::string key, const ValueEntry& entry) {
    Append(std::make_shared<const ReplRecord>(
        ReplRecord{std::move(key), entry}));
  }

  /// Drops all records up to and including sequence `seq` (called after
  /// the memtable covering those records has been flushed). Records are
  /// appended in nondecreasing sequence order.
  void TruncateThrough(uint64_t seq) {
    while (!chunks_.empty()) {
      std::vector<ReplRecordPtr>& front = chunks_.front();
      if (!front.empty() && front.back()->entry.seq <= seq) {
        for (const ReplRecordPtr& rec : front) {
          bytes_ -= rec->key.size() + rec->entry.PayloadBytes();
        }
        count_ -= front.size();
        chunks_.pop_front();
        continue;
      }
      size_t keep_from = 0;
      while (keep_from < front.size() && front[keep_from]->entry.seq <= seq) {
        bytes_ -= front[keep_from]->key.size() +
                  front[keep_from]->entry.PayloadBytes();
        keep_from++;
      }
      if (keep_from > 0) {
        count_ -= keep_from;
        front.erase(front.begin(),
                    front.begin() + static_cast<ptrdiff_t>(keep_from));
      }
      break;
    }
    if (count_ == 0) chunks_.clear();
  }

  /// Visits every live record in append order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& chunk : chunks_) {
      for (const ReplRecordPtr& rec : chunk) fn(*rec);
    }
  }

  size_t record_count() const { return count_; }
  uint64_t bytes() const { return bytes_; }

  void Clear() {
    chunks_.clear();
    count_ = 0;
    bytes_ = 0;
  }

 private:
  static constexpr size_t kChunk = 1024;

  std::deque<std::vector<ReplRecordPtr>> chunks_;
  size_t count_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace storage
}  // namespace abase
