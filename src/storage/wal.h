// Minimal write-ahead log. Records are kept in memory; the engine replays
// them to rebuild the memtable after a simulated crash, which the recovery
// tests and the MetaServer failure experiments rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/value.h"

namespace abase {
namespace storage {

/// One logical WAL record: a full key/value mutation.
struct WalRecord {
  std::string key;
  ValueEntry entry;
};

/// Append-only log with truncation at flush boundaries.
class WriteAheadLog {
 public:
  void Append(std::string key, const ValueEntry& entry) {
    bytes_ += key.size() + entry.PayloadBytes();
    records_.push_back(WalRecord{std::move(key), entry});
  }

  /// Drops all records up to and including sequence `seq` (called after
  /// the memtable covering those records has been flushed).
  void TruncateThrough(uint64_t seq) {
    size_t keep_from = 0;
    while (keep_from < records_.size() &&
           records_[keep_from].entry.seq <= seq) {
      bytes_ -= records_[keep_from].key.size() +
                records_[keep_from].entry.PayloadBytes();
      keep_from++;
    }
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<ptrdiff_t>(keep_from));
  }

  const std::vector<WalRecord>& records() const { return records_; }
  size_t record_count() const { return records_.size(); }
  uint64_t bytes() const { return bytes_; }

  void Clear() {
    records_.clear();
    bytes_ = 0;
  }

 private:
  std::vector<WalRecord> records_;
  uint64_t bytes_ = 0;
};

}  // namespace storage
}  // namespace abase
