// Value representation for the storage engine: Redis-style string and hash
// values with optional TTL and tombstones.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"

namespace abase {
namespace storage {

/// Value kind stored under a key.
enum class ValueType : uint8_t {
  kString = 0,
  kHash = 1,
  kTombstone = 2,  ///< Deletion marker; removed at bottom-level compaction.
};

/// A versioned value. `seq` orders versions of the same key across runs;
/// higher sequence wins. `expire_at` of 0 means "no TTL".
struct ValueEntry {
  ValueType type = ValueType::kString;
  uint64_t seq = 0;
  Micros expire_at = 0;
  std::string str;                          ///< kString payload.
  std::map<std::string, std::string> hash;  ///< kHash payload (field→value).

  bool IsTombstone() const { return type == ValueType::kTombstone; }

  /// True if this entry has a TTL that has elapsed at time `now`.
  bool IsExpiredAt(Micros now) const {
    return expire_at != 0 && now >= expire_at;
  }

  /// Approximate in-memory footprint of the payload in bytes; drives
  /// memtable flush thresholds and cache charging.
  uint64_t PayloadBytes() const {
    if (type == ValueType::kString) return str.size();
    uint64_t total = 0;
    for (const auto& [f, v] : hash) total += f.size() + v.size();
    return total;
  }

  static ValueEntry String(std::string value, uint64_t seq,
                           Micros expire_at = 0) {
    ValueEntry e;
    e.type = ValueType::kString;
    e.seq = seq;
    e.expire_at = expire_at;
    e.str = std::move(value);
    return e;
  }

  static ValueEntry Tombstone(uint64_t seq) {
    ValueEntry e;
    e.type = ValueType::kTombstone;
    e.seq = seq;
    return e;
  }
};

}  // namespace storage
}  // namespace abase
