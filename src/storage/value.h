// Value representation for the storage engine: Redis-style string and hash
// values with optional TTL and tombstones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace abase {
namespace storage {

/// kHash payload: (field, value) pairs kept sorted by field. A flat
/// sorted vector instead of std::map — iteration order is identical,
/// but the container is contiguous (no per-field node allocations), and
/// HSET's whole-hash copy is one array copy instead of a tree rebuild.
using HashFields = std::vector<std::pair<std::string, std::string>>;

/// Field lookup by binary search; nullptr when absent.
inline const std::string* FindField(const HashFields& h,
                                    std::string_view field) {
  auto it = std::lower_bound(
      h.begin(), h.end(), field,
      [](const std::pair<std::string, std::string>& p, std::string_view f) {
        return p.first < f;
      });
  if (it == h.end() || it->first != field) return nullptr;
  return &it->second;
}

/// Inserts or overwrites `field`, keeping the vector sorted.
inline void SetField(HashFields& h, std::string_view field,
                     std::string value) {
  auto it = std::lower_bound(
      h.begin(), h.end(), field,
      [](const std::pair<std::string, std::string>& p, std::string_view f) {
        return p.first < f;
      });
  if (it != h.end() && it->first == field) {
    it->second = std::move(value);
  } else {
    h.emplace(it, std::string(field), std::move(value));
  }
}

/// Value kind stored under a key.
enum class ValueType : uint8_t {
  kString = 0,
  kHash = 1,
  kTombstone = 2,  ///< Deletion marker; removed at bottom-level compaction.
};

/// A versioned value. `seq` orders versions of the same key across runs;
/// higher sequence wins. `expire_at` of 0 means "no TTL".
struct ValueEntry {
  ValueType type = ValueType::kString;
  uint64_t seq = 0;
  Micros expire_at = 0;
  std::string str;   ///< kString payload.
  HashFields hash;   ///< kHash payload, sorted by field.

  bool IsTombstone() const { return type == ValueType::kTombstone; }

  /// True if this entry has a TTL that has elapsed at time `now`.
  bool IsExpiredAt(Micros now) const {
    return expire_at != 0 && now >= expire_at;
  }

  /// Approximate in-memory footprint of the payload in bytes; drives
  /// memtable flush thresholds and cache charging.
  uint64_t PayloadBytes() const {
    if (type == ValueType::kString) return str.size();
    uint64_t total = 0;
    for (const auto& [f, v] : hash) total += f.size() + v.size();
    return total;
  }

  static ValueEntry String(std::string value, uint64_t seq,
                           Micros expire_at = 0) {
    ValueEntry e;
    e.type = ValueType::kString;
    e.seq = seq;
    e.expire_at = expire_at;
    e.str = std::move(value);
    return e;
  }

  static ValueEntry Tombstone(uint64_t seq) {
    ValueEntry e;
    e.type = ValueType::kTombstone;
    e.seq = seq;
    return e;
  }
};

}  // namespace storage
}  // namespace abase
