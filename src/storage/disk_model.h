// DiskModel: per-DataNode disk cost accounting for the simulator. The LSM
// engine reports how many data-block reads an operation needed; the disk
// model converts block operations into service time and enforces an IOPS
// ceiling per simulated second, which is what the I/O-WFQ arbitrates.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace abase {
namespace storage {

/// Static disk characteristics (defaults approximate one NVMe-class disk
/// shared by a DataNode, scaled down so simulations stay fast).
struct DiskOptions {
  double read_iops_capacity = 50000;   ///< Block reads per second.
  double write_iops_capacity = 30000;  ///< Block writes per second.
  Micros read_service_micros = 80;     ///< Service time per block read.
  Micros write_service_micros = 100;   ///< Service time per block write.
};

/// Tracks disk utilization within the current one-second accounting window.
/// Deterministic: no queuing theory, just capacity consumption plus a
/// linear congestion penalty when the window is nearly full.
class DiskModel {
 public:
  explicit DiskModel(DiskOptions options = {}) : options_(options) {}

  /// Begins a new accounting window (the simulator calls this each tick).
  void ResetWindow() {
    window_reads_ = 0;
    window_writes_ = 0;
  }

  /// True if the disk can absorb `blocks` more reads this window.
  bool CanRead(int blocks) const {
    return window_reads_ + blocks <=
           static_cast<int64_t>(options_.read_iops_capacity);
  }
  bool CanWrite(int blocks) const {
    return window_writes_ + blocks <=
           static_cast<int64_t>(options_.write_iops_capacity);
  }

  /// Charges `blocks` read operations and returns their service time,
  /// inflated when the window is loaded (queueing delay approximation).
  Micros ChargeRead(int blocks) {
    window_reads_ += blocks;
    total_reads_ += blocks;
    return static_cast<Micros>(static_cast<double>(blocks) *
                               static_cast<double>(options_.read_service_micros) *
                               CongestionFactor(ReadUtilization()));
  }

  Micros ChargeWrite(int blocks) {
    window_writes_ += blocks;
    total_writes_ += blocks;
    return static_cast<Micros>(
        static_cast<double>(blocks) *
        static_cast<double>(options_.write_service_micros) *
        CongestionFactor(WriteUtilization()));
  }

  /// Fraction of this window's read IOPS budget consumed, in [0, 1+].
  double ReadUtilization() const {
    return static_cast<double>(window_reads_) / options_.read_iops_capacity;
  }
  double WriteUtilization() const {
    return static_cast<double>(window_writes_) / options_.write_iops_capacity;
  }

  uint64_t total_reads() const { return total_reads_; }
  uint64_t total_writes() const { return total_writes_; }
  const DiskOptions& options() const { return options_; }

 private:
  /// Latency multiplier: flat until 70% utilization, then grows linearly
  /// to 4x at 100% (an M/M/1-flavoured knee without randomness).
  static double CongestionFactor(double util) {
    if (util <= 0.7) return 1.0;
    double over = util - 0.7;
    return 1.0 + over * 10.0;
  }

  DiskOptions options_;
  int64_t window_reads_ = 0;
  int64_t window_writes_ = 0;
  uint64_t total_reads_ = 0;
  uint64_t total_writes_ = 0;
};

}  // namespace storage
}  // namespace abase
