#include "storage/memtable.h"

#include <algorithm>

namespace abase {
namespace storage {

void MemTable::Put(const std::string& key, ValueEntry entry) {
  uint64_t new_bytes = EntryBytes(key, entry);
  auto [it, inserted] = table_.try_emplace(key, std::move(entry));
  if (!inserted) {
    bytes_ -= EntryBytes(key, it->second);
    // try_emplace left `entry` unmoved on the existing-key path.
    it->second = std::move(entry);
  } else {
    sorted_dirty_ = true;
  }
  bytes_ += new_bytes;
}

const ValueEntry* MemTable::Get(std::string_view key) const {
  // C++17 unordered_map lacks heterogeneous lookup; the scratch string
  // retains its capacity across probes so the lookup key never
  // allocates in steady state (not even past SSO range).
  lookup_scratch_.assign(key.data(), key.size());
  auto it = table_.find(lookup_scratch_);
  return it == table_.end() ? nullptr : &it->second;
}

ValueEntry* MemTable::GetMutable(std::string_view key) {
  lookup_scratch_.assign(key.data(), key.size());
  auto it = table_.find(lookup_scratch_);
  return it == table_.end() ? nullptr : &it->second;
}

const std::vector<const MemTable::Row*>& MemTable::Sorted() const {
  if (sorted_dirty_ || sorted_.size() != table_.size()) {
    sorted_.clear();
    sorted_.reserve(table_.size());
    for (const Row& row : table_) sorted_.push_back(&row);
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Row* a, const Row* b) { return a->first < b->first; });
    sorted_dirty_ = false;
  }
  return sorted_;
}

void MemTable::AdjustBytes(int64_t delta) {
  if (delta < 0 && static_cast<uint64_t>(-delta) > bytes_) {
    bytes_ = 0;
  } else {
    bytes_ = static_cast<uint64_t>(static_cast<int64_t>(bytes_) + delta);
  }
}

}  // namespace storage
}  // namespace abase
