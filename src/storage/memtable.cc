#include "storage/memtable.h"

namespace abase {
namespace storage {

void MemTable::Put(const std::string& key, ValueEntry entry) {
  auto it = table_.find(key);
  uint64_t new_bytes = EntryBytes(key, entry);
  if (it != table_.end()) {
    bytes_ -= EntryBytes(key, it->second);
    it->second = std::move(entry);
  } else {
    table_.emplace(key, std::move(entry));
  }
  bytes_ += new_bytes;
}

const ValueEntry* MemTable::Get(std::string_view key) const {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

ValueEntry* MemTable::GetMutable(std::string_view key) {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

void MemTable::AdjustBytes(int64_t delta) {
  if (delta < 0 && static_cast<uint64_t>(-delta) > bytes_) {
    bytes_ = 0;
  } else {
    bytes_ = static_cast<uint64_t>(static_cast<int64_t>(bytes_) + delta);
  }
}

}  // namespace storage
}  // namespace abase
