// Per-partition replication stream: the sequenced write log a primary
// engine retains so its replicas can apply the exact same mutations in
// the exact same order. Every acknowledged engine write (local or
// applied from a primary's stream) appends one record; record sequence
// numbers are the engine's monotonic apply sequence, so the log is
// contiguous and a replica's `applied_seq` is its cursor into the
// primary's log. The log is truncated only up to the slowest replica's
// cursor (the Replicate pipeline step drives this); a replica whose
// cursor fell below the retained range is re-seeded with a full state
// snapshot instead of a delta replay.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace abase {
namespace storage {

/// One shipped mutation: the full key/value version as the primary
/// applied it. `entry.seq` is the record's position in the stream.
struct ReplRecord {
  std::string key;
  ValueEntry entry;
};

/// Records are immutable once appended, so the WAL, the primary's
/// replication log, and every replica's logs all share ONE materialized
/// copy: appending an already-materialized record to another log is a
/// refcount bump, not a key/value copy. This is the write path's main
/// allocation saver — a replicated write used to copy (key, entry) into
/// six containers across the placement; now it is materialized once on
/// the primary and once per replica memtable.
using ReplRecordPtr = std::shared_ptr<const ReplRecord>;

/// Builds the single shared copy of a mutation (the one allocation the
/// log fan-out performs).
inline ReplRecordPtr MakeReplRecord(const std::string& key,
                                    const ValueEntry& entry) {
  return std::make_shared<const ReplRecord>(ReplRecord{key, entry});
}

/// Append-only, contiguously-sequenced mutation log with prefix
/// truncation. Records are indexed by stream sequence: record `seq`
/// lives at `records_[seq - first_seq()]`.
class ReplicationLog {
 public:
  /// Shares an already-materialized record: no key/value copy.
  void Append(ReplRecordPtr rec) {
    assert(records_.empty() || rec->entry.seq == last_seq() + 1);
    bytes_ += rec->key.size() + rec->entry.PayloadBytes();
    records_.push_back(std::move(rec));
  }

  /// Convenience for callers (tests, mostly) holding a loose key/entry.
  void Append(std::string key, const ValueEntry& entry) {
    Append(std::make_shared<const ReplRecord>(
        ReplRecord{std::move(key), entry}));
  }

  /// First retained sequence (first_seq() > 1 after truncation).
  uint64_t first_seq() const {
    return records_.empty() ? truncated_through_ + 1
                            : records_.front()->entry.seq;
  }

  /// Last appended sequence (0 when nothing was ever appended).
  uint64_t last_seq() const {
    return records_.empty() ? truncated_through_
                            : records_.back()->entry.seq;
  }

  /// Whether a replica whose cursor is `applied_seq` can be caught up by
  /// delta replay: every record in (applied_seq, last_seq()] is retained.
  bool Covers(uint64_t applied_seq) const {
    return applied_seq + 1 >= first_seq();
  }

  /// Records with sequence in (after_seq, through_seq], oldest first.
  /// Callers must check Covers(after_seq) beforehand.
  std::vector<const ReplRecord*> Delta(uint64_t after_seq,
                                       uint64_t through_seq) const {
    std::vector<const ReplRecord*> out;
    ForEachDelta(after_seq, through_seq, [&out](const ReplRecordPtr& rec) {
      out.push_back(rec.get());
      return true;
    });
    return out;
  }

  /// Zero-allocation form of Delta for the per-tick shipping loop:
  /// visits the same records in the same (oldest-first) order. `fn`
  /// receives the shared record handle (so a destination log can retain
  /// it without copying) and returns false to stop early.
  template <typename Fn>
  void ForEachDelta(uint64_t after_seq, uint64_t through_seq,
                    Fn&& fn) const {
    if (records_.empty() || through_seq <= after_seq) return;
    const uint64_t lo = first_seq();
    assert(after_seq + 1 >= lo);
    const uint64_t hi = std::min(through_seq, last_seq());
    for (uint64_t seq = after_seq + 1; seq <= hi; seq++) {
      if (!fn(records_[static_cast<size_t>(seq - lo)])) return;
    }
  }

  /// Payload bytes of the records after `after_seq` (catch-up sizing).
  uint64_t BytesAfter(uint64_t after_seq) const {
    uint64_t total = 0;
    const uint64_t lo = first_seq();
    for (uint64_t seq = std::max(after_seq + 1, lo); seq <= last_seq();
         seq++) {
      const ReplRecord& rec = *records_[static_cast<size_t>(seq - lo)];
      total += rec.key.size() + rec.entry.PayloadBytes();
    }
    return total;
  }

  /// Drops records with sequence <= `seq` (every replica has applied
  /// them). No-op for sequences below the current floor.
  void TruncateThrough(uint64_t seq) {
    size_t keep_from = 0;
    while (keep_from < records_.size() &&
           records_[keep_from]->entry.seq <= seq) {
      bytes_ -= records_[keep_from]->key.size() +
                records_[keep_from]->entry.PayloadBytes();
      keep_from++;
    }
    if (keep_from == 0) return;
    truncated_through_ =
        std::max(truncated_through_, records_[keep_from - 1]->entry.seq);
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<ptrdiff_t>(keep_from));
  }

  size_t record_count() const { return records_.size(); }
  uint64_t bytes() const { return bytes_; }

 private:
  std::vector<ReplRecordPtr> records_;
  uint64_t bytes_ = 0;
  uint64_t truncated_through_ = 0;  ///< Highest seq dropped by truncation.
};

}  // namespace storage
}  // namespace abase
