// Per-partition replication stream: the sequenced write log a primary
// engine retains so its replicas can apply the exact same mutations in
// the exact same order. Every acknowledged engine write (local or
// applied from a primary's stream) appends one record; record sequence
// numbers are the engine's monotonic apply sequence, so the log is
// contiguous and a replica's `applied_seq` is its cursor into the
// primary's log. The log is truncated only up to the slowest replica's
// cursor (the Replicate pipeline step drives this); a replica whose
// cursor fell below the retained range is re-seeded with a full state
// snapshot instead of a delta replay.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

namespace abase {
namespace storage {

/// One shipped mutation: the full key/value version as the primary
/// applied it. `entry.seq` is the record's position in the stream.
struct ReplRecord {
  std::string key;
  ValueEntry entry;
};

/// Append-only, contiguously-sequenced mutation log with prefix
/// truncation. Records are indexed by stream sequence: record `seq`
/// lives at `records_[seq - first_seq()]`.
class ReplicationLog {
 public:
  void Append(std::string key, const ValueEntry& entry) {
    assert(records_.empty() || entry.seq == last_seq() + 1);
    bytes_ += key.size() + entry.PayloadBytes();
    records_.push_back(ReplRecord{std::move(key), entry});
  }

  /// First retained sequence (first_seq() > 1 after truncation).
  uint64_t first_seq() const {
    return records_.empty() ? truncated_through_ + 1
                            : records_.front().entry.seq;
  }

  /// Last appended sequence (0 when nothing was ever appended).
  uint64_t last_seq() const {
    return records_.empty() ? truncated_through_
                            : records_.back().entry.seq;
  }

  /// Whether a replica whose cursor is `applied_seq` can be caught up by
  /// delta replay: every record in (applied_seq, last_seq()] is retained.
  bool Covers(uint64_t applied_seq) const {
    return applied_seq + 1 >= first_seq();
  }

  /// Records with sequence in (after_seq, through_seq], oldest first.
  /// Callers must check Covers(after_seq) beforehand.
  std::vector<const ReplRecord*> Delta(uint64_t after_seq,
                                       uint64_t through_seq) const {
    std::vector<const ReplRecord*> out;
    if (records_.empty() || through_seq <= after_seq) return out;
    const uint64_t lo = first_seq();
    assert(after_seq + 1 >= lo);
    const uint64_t hi = std::min(through_seq, last_seq());
    if (hi <= after_seq) return out;
    out.reserve(static_cast<size_t>(hi - after_seq));
    for (uint64_t seq = after_seq + 1; seq <= hi; seq++) {
      out.push_back(&records_[static_cast<size_t>(seq - lo)]);
    }
    return out;
  }

  /// Payload bytes of the records after `after_seq` (catch-up sizing).
  uint64_t BytesAfter(uint64_t after_seq) const {
    uint64_t total = 0;
    const uint64_t lo = first_seq();
    for (uint64_t seq = std::max(after_seq + 1, lo); seq <= last_seq();
         seq++) {
      const ReplRecord& rec = records_[static_cast<size_t>(seq - lo)];
      total += rec.key.size() + rec.entry.PayloadBytes();
    }
    return total;
  }

  /// Drops records with sequence <= `seq` (every replica has applied
  /// them). No-op for sequences below the current floor.
  void TruncateThrough(uint64_t seq) {
    size_t keep_from = 0;
    while (keep_from < records_.size() &&
           records_[keep_from].entry.seq <= seq) {
      bytes_ -= records_[keep_from].key.size() +
                records_[keep_from].entry.PayloadBytes();
      keep_from++;
    }
    if (keep_from == 0) return;
    truncated_through_ =
        std::max(truncated_through_, records_[keep_from - 1].entry.seq);
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<ptrdiff_t>(keep_from));
  }

  size_t record_count() const { return records_.size(); }
  uint64_t bytes() const { return bytes_; }

 private:
  std::vector<ReplRecord> records_;
  uint64_t bytes_ = 0;
  uint64_t truncated_through_ = 0;  ///< Highest seq dropped by truncation.
};

}  // namespace storage
}  // namespace abase
