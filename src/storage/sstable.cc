#include "storage/sstable.h"

#include <algorithm>

namespace abase {
namespace storage {

SsTable::SsTable(uint64_t id,
                 std::vector<std::pair<std::string, ValueEntry>> rows)
    : id_(id), rows_(std::move(rows)), bloom_(rows_.size()) {
  for (const auto& [key, entry] : rows_) {
    bloom_.Add(key);
    data_bytes_ += key.size() + entry.PayloadBytes();
  }
  if (!rows_.empty()) {
    min_key_ = rows_.front().first;
    max_key_ = rows_.back().first;
  }
}

SstProbe SsTable::Get(std::string_view key) const {
  size_t hint = 0;
  return Get(KeyRef::From(key), &hint);
}

SstProbe SsTable::Get(std::string_view key, size_t* hint) const {
  return Get(KeyRef::From(key), hint);
}

SstProbe SsTable::Get(const KeyRef& kref, size_t* hint) const {
  const std::string_view key = kref.view();
  SstProbe probe;
  if (!KeyInRange(key) || !bloom_.MayContainHashed(kref.hash)) return probe;
  // Bloom said "maybe": charge one data-block read whether or not the key
  // is actually present (a false positive still reads the block).
  probe.block_reads = 1;
  // For ascending keys, lower_bound(key_i) >= lower_bound(key_{i-1}):
  // resuming from the hint searches the same final position as a full
  // binary search would.
  auto it = std::lower_bound(
      rows_.begin() + static_cast<ptrdiff_t>(*hint), rows_.end(), key,
      [](const auto& row, std::string_view k) { return row.first < k; });
  *hint = static_cast<size_t>(it - rows_.begin());
  if (it != rows_.end() && it->first == key) {
    probe.entry = &it->second;
  }
  return probe;
}

}  // namespace storage
}  // namespace abase
