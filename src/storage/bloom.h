// Blocked-free simple bloom filter for SSTable key membership tests.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace abase {
namespace storage {

/// Standard bloom filter with k probes derived from a single 64-bit hash
/// (double hashing). Sized at construction for an expected key count.
class BloomFilter {
 public:
  /// `bits_per_key` trades memory for false-positive rate; 10 bits/key
  /// gives ~1% FPR, which is what RocksDB uses by default.
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  void Add(std::string_view key);

  /// False negatives never occur; false positives at the configured rate.
  bool MayContain(std::string_view key) const;

  /// MayContain for a caller holding the key's FNV-1a 64 hash already
  /// (a KeyRef threaded through the read path): identical verdict to
  /// MayContain(key) without re-hashing. `h1` must equal Fnv1a64(key).
  bool MayContainHashed(uint64_t h1) const;

  size_t bit_count() const { return bit_count_; }
  int num_probes() const { return num_probes_; }

 private:
  size_t bit_count_;
  int num_probes_;
  std::vector<uint64_t> bits_;
};

}  // namespace storage
}  // namespace abase
