#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace storage {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  if (expected_keys == 0) expected_keys = 1;
  if (bits_per_key < 1) bits_per_key = 1;
  bit_count_ = expected_keys * static_cast<size_t>(bits_per_key);
  bit_count_ = std::max<size_t>(bit_count_, 64);
  // Optimal probe count: ln(2) * bits/key, clamped to a sane range.
  num_probes_ = std::clamp(
      static_cast<int>(0.69 * static_cast<double>(bits_per_key)), 1, 30);
  bits_.assign((bit_count_ + 63) / 64, 0);
}

void BloomFilter::Add(std::string_view key) {
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = Mix64(h1);
  for (int i = 0; i < num_probes_; i++) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bit_count_;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  return MayContainHashed(Fnv1a64(key));
}

bool BloomFilter::MayContainHashed(uint64_t h1) const {
  uint64_t h2 = Mix64(h1);
  for (int i = 0; i < num_probes_; i++) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bit_count_;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace storage
}  // namespace abase
