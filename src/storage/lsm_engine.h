// LsmEngine: the local storage engine backing each DataNode — the repo's
// stand-in for ByteDance's LavaStore [43]. A real (memory-backed) LSM tree:
// WAL → memtable → size-tiered levels of bloom-filtered SSTables, with TTL
// expiry at read time and at compaction. Every data-block probe is counted
// so the scheduling layer can charge realistic disk I/O.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/key_ref.h"
#include "common/status.h"
#include "storage/memtable.h"
#include "storage/replication_log.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace abase {
namespace storage {

/// Engine tuning knobs.
struct LsmOptions {
  /// Memtable flush threshold in bytes.
  uint64_t memtable_flush_bytes = 4ull << 20;
  /// A level holding this many runs triggers a merge into the next level.
  int runs_per_level_trigger = 4;
  /// Maximum number of levels (the last level compacts in place).
  int max_levels = 5;
  /// Whether mutations are logged for crash recovery.
  bool enable_wal = true;
  /// Whether mutations are retained in the replication log so replica
  /// engines can apply this engine's stream (DESIGN.md "Replication").
  /// Off by default: only a shipper (the Replicate pipeline step)
  /// truncates the log, so a standalone engine would grow it with every
  /// write. DataNode force-enables it for hosted partition replicas.
  bool enable_repl_log = false;
};

/// Cumulative engine counters (monotonic; diff across a window for rates).
struct LsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t memtable_hits = 0;
  uint64_t block_reads = 0;          ///< Data-block reads across all gets.
  uint64_t bloom_filtered = 0;       ///< Probes answered "no" by bloom.
  uint64_t flush_count = 0;
  uint64_t flushed_bytes = 0;
  uint64_t compaction_count = 0;
  uint64_t compaction_read_bytes = 0;
  uint64_t compaction_write_bytes = 0;
  uint64_t expired_dropped = 0;      ///< TTL'd entries discarded.
  uint64_t repl_applied = 0;         ///< Records applied from a primary's stream.
  uint64_t resyncs = 0;              ///< Full snapshot re-seeds of this engine.
  uint64_t scans = 0;                ///< ScanRange calls.
  uint64_t scan_entries = 0;         ///< Visible entries emitted by scans.
};

/// One visible key/value in a scan result.
struct ScanEntry {
  std::string key;
  std::string value;  ///< String payload, or serialized hash fields.
};

/// Caller-reused scan output buffer: a slot-recycling vector of
/// ScanEntry. Clear() resets the logical size but keeps every slot (and
/// the strings inside it), so a steady-state scan loop appends into
/// existing string capacity instead of allocating per call — the whole
/// point of the resumable iterator over the legacy Scan() that built a
/// fresh vector of copied strings every time.
class ScanBuffer {
 public:
  void Clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const ScanEntry& operator[](size_t i) const { return entries_[i]; }

  /// Next recycled slot; key and value come back cleared but with their
  /// previous capacity.
  ScanEntry& Append() {
    if (count_ == entries_.size()) entries_.emplace_back();
    ScanEntry& e = entries_[count_++];
    e.key.clear();
    e.value.clear();
    return e;
  }

 private:
  std::vector<ScanEntry> entries_;
  size_t count_ = 0;
};

/// Outcome of one resumable scan batch (ScanRange).
struct ScanResult {
  size_t entries = 0;      ///< Visible entries appended to the buffer.
  uint64_t bytes = 0;      ///< Key + payload bytes of those entries.
  int block_reads = 0;     ///< Data-block reads charged to the scan.
  bool done = false;       ///< Range exhausted before the limit.
  /// Resume position when !done: the first key the scan did not
  /// examine. Passing it as the next batch's `start` continues the scan
  /// exactly where it stopped.
  std::string next_key;
};

/// Per-operation I/O outcome, consumed by the DataNode to decide whether a
/// request needs the I/O-WFQ layer and how many IOPS to charge.
struct ReadIo {
  bool memtable_hit = false;
  int block_reads = 0;
  bool found = false;
  Micros expire_at = 0;  ///< Found entry's TTL deadline (0 = none).
};

/// Single-partition LSM key-value engine. Not internally synchronized: the
/// DataNode serializes access per partition (matching the simulator's
/// deterministic execution).
class LsmEngine {
 public:
  LsmEngine(LsmOptions options, const Clock* clock);

  // -- String commands ----------------------------------------------------

  /// SET. `ttl` of 0 means no expiry; otherwise the value expires at
  /// now + ttl.
  Status Put(const std::string& key, std::string value, Micros ttl = 0);

  /// GET. NotFound for absent, deleted, or expired keys. If `io` is
  /// non-null it receives the probe cost breakdown.
  Result<std::string> Get(std::string_view key, ReadIo* io = nullptr);

  /// DEL. OK even if the key did not exist (writes a tombstone).
  Status Delete(const std::string& key);

  // -- Hash commands -------------------------------------------------------

  /// HSET: sets one field of the hash at `key`, creating the hash if
  /// needed. Read-modify-write through the merged view.
  Status HSet(const std::string& key, const std::string& field,
              std::string value);

  /// HGET one field. NotFound if key or field absent.
  Result<std::string> HGet(std::string_view key, std::string_view field,
                           ReadIo* io = nullptr);

  /// HLEN: number of fields. NotFound if the key is absent.
  Result<uint64_t> HLen(std::string_view key, ReadIo* io = nullptr);

  /// HGETALL: all fields, sorted by field. NotFound if the key is absent.
  Result<HashFields> HGetAll(std::string_view key, ReadIo* io = nullptr);

  // -- Batched point lookup -------------------------------------------------

  /// Resolves `n` keys in one pass: `entries_out[i]` receives the newest
  /// visible entry for `keys[i]` (nullptr if absent, tombstoned, or
  /// expired) and `ios_out[i]` its probe cost, exactly as n independent
  /// FindEntry-backed reads would produce them. The engine counters
  /// receive the same totals (they are order-independent sums). Cost is
  /// amortized: one memtable pass, then per run a single sweep over the
  /// still-unresolved keys in ascending key order with a resumable
  /// binary-search hint, so a batch shares each run's bloom/index work.
  /// Returned pointers are valid until the next mutation of this engine.
  void MultiFind(const std::string_view* keys, size_t n,
                 const ValueEntry** entries_out, ReadIo* ios_out);

  // -- Range scans ----------------------------------------------------------

  using ScanEntry = storage::ScanEntry;

  /// Resumable merged range scan over [start, end): a k-way merge of the
  /// memtable's sorted view and every SSTable run's row cursor (min-heap
  /// keyed by (key, source age); the newest source wins on equal keys),
  /// skipping tombstoned and expired versions at output. Appends at most
  /// `limit` visible entries in key order into the caller-reused buffer
  /// (`out` is NOT cleared — callers batch multiple partitions into one
  /// buffer). An empty `end` means "to the last key". Unlike the legacy
  /// Scan(), no merged intermediate map is built and no per-source
  /// over-collect cap applies, so a range buried under arbitrarily many
  /// tombstones still yields its first `limit` visible keys in one call.
  /// Entries remain valid until the buffer is cleared or appended past.
  ScanResult ScanRange(std::string_view start, std::string_view end,
                       size_t limit, ScanBuffer& out);

  /// Merged range scan over [start, end): newest version per key wins;
  /// tombstoned and expired keys are skipped. Returns at most `limit`
  /// entries in key order. An empty `end` means "to the last key".
  /// Allocating convenience wrapper over ScanRange().
  std::vector<ScanEntry> Scan(std::string_view start, std::string_view end,
                              size_t limit = 100);

  /// Prefix scan convenience wrapper over Scan(). The exclusive upper
  /// bound comes from PrefixUpperBound (common/keyspace.h), which drops
  /// trailing 0xff bytes before incrementing — a prefix ending in 0xff
  /// (or consisting only of 0xff) must not wrap around to a smaller key.
  std::vector<ScanEntry> ScanPrefix(std::string_view prefix,
                                    size_t limit = 100);

  // -- Hash-range export (online partition split) ---------------------------
  //
  // A split re-hashes the keyspace from mod N to mod 2N: the keys of
  // parent partition p whose hash lands on residue p + N move to the new
  // child. The exporter streams exactly that re-hashed half out of this
  // engine in bounded, resumable batches, so the control plane can move
  // real data at a configured bytes-per-tick rate while the parent keeps
  // serving.

  /// One resumable batch of a hash-residue export.
  struct HashRangeExport {
    /// Newest visible version per exported key, in key order. Tombstoned
    /// and expired keys are skipped (they simply do not move).
    std::vector<std::pair<std::string, ValueEntry>> entries;
    uint64_t bytes = 0;        ///< Payload bytes in `entries`.
    std::string next_cursor;   ///< Resume point: last key examined.
    bool done = false;         ///< No matching keys remain past the cursor.
  };

  /// Exports the newest visible version of every key strictly after
  /// `start_after` (empty = from the first key) whose
  /// `Fnv1a64(key) % modulus == residue`, stopping once `max_bytes` of
  /// payload have been collected. Read-only; counters untouched.
  HashRangeExport ExportHashRange(uint64_t modulus, uint64_t residue,
                                  std::string_view start_after,
                                  uint64_t max_bytes) const;

  /// Ingests one externally streamed entry (split / migration data
  /// movement): applied exactly like a local write — fresh local
  /// sequence, WAL and replication log as configured. Tombstones and
  /// TTL deadlines are preserved, so a window-delta replay converges the
  /// target to the source's newest visible state.
  void Ingest(const std::string& key, ValueEntry entry);

  // -- TTL ------------------------------------------------------------------

  /// EXPIRE: (re)sets the TTL of an existing key.
  Status Expire(const std::string& key, Micros ttl);

  // -- Maintenance ----------------------------------------------------------

  /// Flushes the memtable to a level-0 run (no-op when empty) and runs any
  /// triggered compactions.
  void Flush();

  /// Runs one round of size-tiered compaction if any level exceeds its
  /// run-count trigger. Returns true if a merge happened.
  bool MaybeCompact();

  /// Simulates a process crash: discards the memtable, then replays the
  /// WAL. With WAL disabled, unflushed writes are lost (by design).
  void CrashAndRecover();

  // -- Replication ----------------------------------------------------------
  //
  // Every local mutation is assigned a monotonic apply sequence and (when
  // enable_repl_log) appended to the replication log. A replica engine
  // applies the primary's stream in order via ApplyReplicated, preserving
  // sequences, so `applied_seq()` is its exact cursor into the primary's
  // log and byte-identical state follows from byte-identical streams.

  /// Sequence of the last applied mutation (local write or replicated
  /// record). 0 for a pristine engine.
  uint64_t applied_seq() const { return next_seq_ - 1; }

  /// Applies one record of a primary's replication stream. The stream is
  /// strictly ordered: `rec->entry.seq` must be exactly applied_seq() + 1,
  /// otherwise InvalidArgument (the shipper must fall back to a snapshot
  /// resync). Writes through the WAL and this engine's own replication
  /// log, so a replica survives crashes and can itself be promoted.
  /// Retaining the shared record in both logs costs refcount bumps, not
  /// copies; only the memtable copy is materialized here.
  Status ApplyReplicated(const ReplRecordPtr& rec);

  /// Convenience for callers holding a loose record (tests, mostly):
  /// materializes a shared copy and applies it.
  Status ApplyReplicated(const ReplRecord& rec);

  /// Re-seeds this engine with a full snapshot of `src`: memtable, WAL,
  /// runs (shared — SSTables are immutable), replication log, and apply
  /// sequence. Used when a delta replay is impossible: a freshly placed
  /// replica behind a truncated log, or a recovered ex-primary whose
  /// unreplicated suffix diverged from the promoted replica's history.
  void ResyncFrom(const LsmEngine& src);

  /// The retained replication stream (primary side of the shipper).
  const ReplicationLog& repl_log() const { return repl_log_; }

  /// Drops replication-log records every replica has applied.
  void TruncateReplLogThrough(uint64_t seq) {
    repl_log_.TruncateThrough(seq);
  }

  // -- Introspection --------------------------------------------------------

  const LsmStats& stats() const { return stats_; }
  uint64_t memtable_bytes() const { return mem_.approximate_bytes(); }

  /// Approximate on-"disk" + in-memory data footprint. Counts duplicate
  /// versions across runs (like physical LSM space usage before GC).
  uint64_t ApproximateDataBytes() const;

  /// Number of runs per level, outermost index = level.
  std::vector<size_t> LevelRunCounts() const;

  /// Write amplification so far: (flushed + compaction written) / flushed.
  double WriteAmplification() const;

 private:
  /// Merged lookup across memtable and all runs; returns the newest
  /// visible entry or nullptr. Fills `io`.
  const ValueEntry* FindEntry(std::string_view key, ReadIo* io);

  void WriteEntry(const std::string& key, ValueEntry entry);
  void MaybeFlush();
  void CompactLevel(size_t level);

  /// Merges runs (newest first) into one sorted row set, dropping shadowed
  /// versions, and — when `drop_deletes` — tombstones and expired entries.
  std::vector<std::pair<std::string, ValueEntry>> MergeRuns(
      const std::vector<SsTablePtr>& runs_newest_first, bool drop_deletes);

  LsmOptions options_;
  const Clock* clock_;
  MemTable mem_;
  WriteAheadLog wal_;
  ReplicationLog repl_log_;
  /// levels_[0] is newest; within a level, later index = newer run.
  std::vector<std::vector<SsTablePtr>> levels_;
  uint64_t next_seq_ = 1;
  uint64_t next_sst_id_ = 1;
  LsmStats stats_;
  /// MultiFind scratch (kept across calls to avoid re-allocation).
  std::vector<uint32_t> mfind_pending_;
  /// Per-key interned (view, hash) handles for the pending misses —
  /// hashed once per batch, reused by every run's bloom probe.
  std::vector<KeyRef> mfind_krefs_;

  /// One merge source of a ScanRange call: the memtable's sorted view
  /// (pointer rows) or one SSTable run (value rows). `age` orders
  /// sources newest-first on equal keys (0 = memtable, then level order,
  /// within a level later runs first).
  struct ScanCursor {
    const MemTable::Row* const* mem_it = nullptr;
    const MemTable::Row* const* mem_end = nullptr;
    const std::pair<std::string, ValueEntry>* sst_it = nullptr;
    const std::pair<std::string, ValueEntry>* sst_end = nullptr;
    uint32_t age = 0;
    uint64_t sst_bytes = 0;  ///< Payload bytes consumed from this run.
  };
  /// ScanRange scratch (kept across calls to avoid re-allocation).
  std::vector<ScanCursor> scan_cursors_;
  std::vector<uint32_t> scan_heap_;
};

}  // namespace storage
}  // namespace abase
