#include "storage/lsm_engine.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/keyspace.h"

namespace abase {
namespace storage {

LsmEngine::LsmEngine(LsmOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
  levels_.resize(static_cast<size_t>(options_.max_levels));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void LsmEngine::WriteEntry(const std::string& key, ValueEntry entry) {
  entry.seq = next_seq_++;
  if (options_.enable_wal || options_.enable_repl_log) {
    // One materialized copy feeds both logs (and, via the Replicate
    // shipping path, every replica's logs): the second log is a
    // refcount bump, not another key/value copy.
    ReplRecordPtr rec = MakeReplRecord(key, entry);
    if (options_.enable_wal) wal_.Append(rec);
    if (options_.enable_repl_log) repl_log_.Append(std::move(rec));
  }
  mem_.Put(key, std::move(entry));
  stats_.puts++;
  MaybeFlush();
}

Status LsmEngine::Put(const std::string& key, std::string value, Micros ttl) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  Micros expire_at = ttl > 0 ? clock_->NowMicros() + ttl : 0;
  WriteEntry(key, ValueEntry::String(std::move(value), 0, expire_at));
  return Status::OK();
}

Status LsmEngine::Delete(const std::string& key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteEntry(key, ValueEntry::Tombstone(0));
  return Status::OK();
}

Status LsmEngine::HSet(const std::string& key, const std::string& field,
                       std::string value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  // Read-modify-write on the merged view: the memtable stores whole-hash
  // versions, so an HSET rewrites the hash with one field changed.
  ReadIo io;
  const ValueEntry* cur = FindEntry(key, &io);
  ValueEntry next;
  next.type = ValueType::kHash;
  if (cur != nullptr && cur->type == ValueType::kHash) {
    next.hash = cur->hash;
    next.expire_at = cur->expire_at;
  }
  SetField(next.hash, field, std::move(value));
  WriteEntry(key, std::move(next));
  return Status::OK();
}

Status LsmEngine::Expire(const std::string& key, Micros ttl) {
  ReadIo io;
  const ValueEntry* cur = FindEntry(key, &io);
  if (cur == nullptr) return Status::NotFound("EXPIRE on missing key");
  ValueEntry next = *cur;
  next.expire_at = ttl > 0 ? clock_->NowMicros() + ttl : 0;
  WriteEntry(key, std::move(next));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

const ValueEntry* LsmEngine::FindEntry(std::string_view key, ReadIo* io) {
  stats_.gets++;
  if (const ValueEntry* e = mem_.Get(key); e != nullptr) {
    stats_.memtable_hits++;
    if (io != nullptr) io->memtable_hit = true;
    if (e->IsTombstone()) return nullptr;
    if (e->IsExpiredAt(clock_->NowMicros())) {
      stats_.expired_dropped++;
      return nullptr;
    }
    if (io != nullptr) {
      io->found = true;
      io->expire_at = e->expire_at;
    }
    return e;
  }
  // Probe runs newest-to-oldest: level order, and within a level the
  // most recently added run first. The key is hashed once here; every
  // run's bloom probe reuses the interned hash.
  const KeyRef kref = KeyRef::From(key);
  for (const auto& level : levels_) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      size_t hint = 0;
      SstProbe probe = (*it)->Get(kref, &hint);
      if (probe.block_reads == 0) {
        stats_.bloom_filtered++;
        continue;
      }
      stats_.block_reads += static_cast<uint64_t>(probe.block_reads);
      if (io != nullptr) io->block_reads += probe.block_reads;
      if (probe.entry == nullptr) continue;  // Bloom false positive.
      if (probe.entry->IsTombstone()) return nullptr;
      if (probe.entry->IsExpiredAt(clock_->NowMicros())) {
        stats_.expired_dropped++;
        return nullptr;
      }
      if (io != nullptr) {
        io->found = true;
        io->expire_at = probe.entry->expire_at;
      }
      return probe.entry;
    }
  }
  return nullptr;
}

void LsmEngine::MultiFind(const std::string_view* keys, size_t n,
                          const ValueEntry** entries_out, ReadIo* ios_out) {
  // clock_->NowMicros() is constant within a tick, so hoisting it out of
  // the per-key expiry checks matches FindEntry exactly.
  const Micros now = clock_->NowMicros();
  mfind_pending_.clear();
  for (size_t i = 0; i < n; i++) {
    entries_out[i] = nullptr;
    ios_out[i] = ReadIo{};
    stats_.gets++;
    if (const ValueEntry* e = mem_.Get(keys[i]); e != nullptr) {
      stats_.memtable_hits++;
      ios_out[i].memtable_hit = true;
      if (e->IsTombstone()) continue;
      if (e->IsExpiredAt(now)) {
        stats_.expired_dropped++;
        continue;
      }
      ios_out[i].found = true;
      ios_out[i].expire_at = e->expire_at;
      entries_out[i] = e;
      continue;
    }
    mfind_pending_.push_back(static_cast<uint32_t>(i));
  }
  if (mfind_pending_.empty()) return;

  // Intern each missing key's hash once; every run probe below reuses it
  // instead of re-hashing per run (the batch's main repeated cost).
  if (mfind_krefs_.size() < n) mfind_krefs_.resize(n);
  for (uint32_t i : mfind_pending_) mfind_krefs_[i] = KeyRef::From(keys[i]);

  // Ascending key order lets each run's binary search resume from the
  // previous key's lower bound. Equal keys probe the same position twice,
  // matching two serial lookups.
  std::sort(mfind_pending_.begin(), mfind_pending_.end(),
            [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });

  // Runs newest-to-oldest, exactly like FindEntry; a key resolved by a
  // newer run (found, tombstone, or expired) never probes older runs.
  for (const auto& level : levels_) {
    if (mfind_pending_.empty()) break;
    for (auto it = level.rbegin();
         it != level.rend() && !mfind_pending_.empty(); ++it) {
      const SsTable& run = **it;
      size_t hint = 0;
      size_t w = 0;
      for (uint32_t i : mfind_pending_) {
        SstProbe probe = run.Get(mfind_krefs_[i], &hint);
        if (probe.block_reads == 0) {
          stats_.bloom_filtered++;
          mfind_pending_[w++] = i;
          continue;
        }
        stats_.block_reads += static_cast<uint64_t>(probe.block_reads);
        ios_out[i].block_reads += probe.block_reads;
        if (probe.entry == nullptr) {  // Bloom false positive.
          mfind_pending_[w++] = i;
          continue;
        }
        if (probe.entry->IsTombstone()) continue;
        if (probe.entry->IsExpiredAt(now)) {
          stats_.expired_dropped++;
          continue;
        }
        ios_out[i].found = true;
        ios_out[i].expire_at = probe.entry->expire_at;
        entries_out[i] = probe.entry;
      }
      mfind_pending_.resize(w);
    }
  }
}

Result<std::string> LsmEngine::Get(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kString) {
    return Status::NotFound("key absent");
  }
  return e->str;
}

Result<std::string> LsmEngine::HGet(std::string_view key,
                                    std::string_view field, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  const std::string* v = FindField(e->hash, field);
  if (v == nullptr) return Status::NotFound("field absent");
  return *v;
}

Result<uint64_t> LsmEngine::HLen(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  return static_cast<uint64_t>(e->hash.size());
}

Result<HashFields> LsmEngine::HGetAll(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  return e->hash;
}

// ---------------------------------------------------------------------------
// Range scans
// ---------------------------------------------------------------------------

namespace {

/// "Disk" granularity of scan block accounting: one charged block read
/// per this many payload bytes consumed from an SSTable cursor (plus
/// one for the run's initial seek). Matches the DataNode's disk-block
/// size so scan I/O charges line up with point-read charges.
constexpr uint64_t kScanBlockBytes = 4096;

}  // namespace

ScanResult LsmEngine::ScanRange(std::string_view start, std::string_view end,
                                size_t limit, ScanBuffer& out) {
  ScanResult res;
  stats_.scans++;

  // Build one cursor per source, positioned at lower_bound(start). Ages:
  // 0 = memtable (newest), then levels top-down, within a level later
  // (newer) runs first — the exact probe order of FindEntry, so on equal
  // keys the min-heap pops the newest version first.
  scan_cursors_.clear();
  scan_heap_.clear();
  const auto& mem_rows = mem_.Sorted();
  {
    ScanCursor c;
    auto it = std::lower_bound(mem_rows.begin(), mem_rows.end(), start,
                               [](const MemTable::Row* r, std::string_view k) {
                                 return r->first < k;
                               });
    c.mem_it = mem_rows.data() + (it - mem_rows.begin());
    c.mem_end = mem_rows.data() + mem_rows.size();
    c.age = 0;
    if (c.mem_it != c.mem_end) scan_cursors_.push_back(c);
  }
  uint32_t age = 1;
  for (const auto& level : levels_) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit, ++age) {
      const auto& rows = (*rit)->rows();
      auto it = std::lower_bound(
          rows.begin(), rows.end(), start,
          [](const auto& r, std::string_view k) { return r.first < k; });
      if (it == rows.end()) continue;
      ScanCursor c;
      c.sst_it = rows.data() + (it - rows.begin());
      c.sst_end = rows.data() + rows.size();
      c.age = age;
      scan_cursors_.push_back(c);
    }
  }

  auto key_of = [&](uint32_t i) -> const std::string& {
    const ScanCursor& c = scan_cursors_[i];
    return c.mem_it != nullptr ? (*c.mem_it)->first : c.sst_it->first;
  };
  auto entry_of = [&](uint32_t i) -> const ValueEntry& {
    const ScanCursor& c = scan_cursors_[i];
    return c.mem_it != nullptr ? (*c.mem_it)->second : c.sst_it->second;
  };
  // Min-heap on (key, age): std::push/pop_heap keep the *greatest*
  // element at the front, so the comparator orders by "later key, or
  // equal key from an older source, sorts first-er"… i.e. greater-than.
  auto heap_less = [&](uint32_t a, uint32_t b) {
    int cmp = key_of(a).compare(key_of(b));
    if (cmp != 0) return cmp > 0;
    return scan_cursors_[a].age > scan_cursors_[b].age;
  };
  for (uint32_t i = 0; i < scan_cursors_.size(); i++) scan_heap_.push_back(i);
  std::make_heap(scan_heap_.begin(), scan_heap_.end(), heap_less);

  auto advance = [&](uint32_t i) {
    ScanCursor& c = scan_cursors_[i];
    if (c.mem_it != nullptr) {
      ++c.mem_it;
      return c.mem_it != c.mem_end;
    }
    c.sst_bytes += c.sst_it->first.size() + c.sst_it->second.PayloadBytes();
    ++c.sst_it;
    return c.sst_it != c.sst_end;
  };

  const Micros now = clock_->NowMicros();
  const std::string* last_key = nullptr;
  res.done = true;
  while (!scan_heap_.empty()) {
    std::pop_heap(scan_heap_.begin(), scan_heap_.end(), heap_less);
    const uint32_t i = scan_heap_.back();
    const std::string& key = key_of(i);
    if (!end.empty() && key >= end) {
      // Range exhausted: every remaining cursor is at or past `end`.
      break;
    }
    if (res.entries >= limit) {
      // Limit reached with this key unexamined: resume point.
      res.done = false;
      res.next_key = key;
      break;
    }
    if (last_key != nullptr && key == *last_key) {
      // Older duplicate of an already-decided key.
      if (advance(i)) {
        std::push_heap(scan_heap_.begin(), scan_heap_.end(), heap_less);
      } else {
        scan_heap_.pop_back();
      }
      continue;
    }
    const ValueEntry& entry = entry_of(i);
    const bool visible = !entry.IsTombstone() && !entry.IsExpiredAt(now);
    if (visible) {
      ScanEntry& se = out.Append();
      se.key = key;
      if (entry.type == ValueType::kString) {
        se.value = entry.str;
      } else {
        for (const auto& [f, v] : entry.hash) {
          se.value += f;
          se.value += '=';
          se.value += v;
          se.value += '\n';
        }
      }
      res.entries++;
      res.bytes += se.key.size() + se.value.size();
      stats_.scan_entries++;
    } else if (entry.IsExpiredAt(now)) {
      stats_.expired_dropped++;
    }
    // Row storage (memtable nodes, SSTable rows) is stable across cursor
    // advances, so the key reference survives into the next iteration's
    // duplicate check.
    last_key = &key;
    if (advance(i)) {
      std::push_heap(scan_heap_.begin(), scan_heap_.end(), heap_less);
    } else {
      scan_heap_.pop_back();
    }
  }

  // Block accounting: one seek per touched run plus one read per
  // kScanBlockBytes of consumed payload — sequential I/O, so far cheaper
  // per entry than per-key point probes.
  for (const ScanCursor& c : scan_cursors_) {
    if (c.mem_it != nullptr || c.sst_bytes == 0) continue;
    res.block_reads +=
        1 + static_cast<int>(c.sst_bytes / kScanBlockBytes);
  }
  stats_.block_reads += static_cast<uint64_t>(res.block_reads);
  return res;
}

std::vector<LsmEngine::ScanEntry> LsmEngine::Scan(std::string_view start,
                                                  std::string_view end,
                                                  size_t limit) {
  ScanBuffer buf;
  ScanRange(start, end, limit, buf);
  std::vector<ScanEntry> out;
  out.reserve(buf.size());
  for (size_t i = 0; i < buf.size(); i++) out.push_back(buf[i]);
  return out;
}

std::vector<LsmEngine::ScanEntry> LsmEngine::ScanPrefix(
    std::string_view prefix, size_t limit) {
  return Scan(prefix, PrefixUpperBound(prefix), limit);
}

// ---------------------------------------------------------------------------
// Hash-range export (online partition split)
// ---------------------------------------------------------------------------

LsmEngine::HashRangeExport LsmEngine::ExportHashRange(
    uint64_t modulus, uint64_t residue, std::string_view start_after,
    uint64_t max_bytes) const {
  HashRangeExport out;
  if (modulus == 0) {
    out.done = true;
    return out;
  }
  // Bounded merged newest-wins view of the keys strictly after the
  // cursor: memtable first, then runs newest-to-oldest (emplace keeps
  // the first — newest — version, exactly like Scan/MergeRuns). Each
  // source contributes keys in order only until a payload cap, so one
  // throttled batch costs O(cap), not O(keys remaining): a source that
  // hit its cap bounds the *safe horizon* — the smallest last-collected
  // key across capped sources — below which the merged view is
  // complete. Keys beyond the horizon wait for the next batch.
  const uint64_t cap = max_bytes * 2 + (64ull << 10);
  std::map<std::string, const ValueEntry*> merged;
  bool bounded = false;
  std::string horizon;
  // `deref` unifies the two row shapes: sstable runs iterate pair
  // values, the memtable's sorted view iterates pair pointers.
  auto collect = [&](auto it, auto end_it, auto deref) {
    uint64_t taken = 0;
    std::string last;
    bool capped = false;
    for (; it != end_it; ++it) {
      const auto& row = deref(it);
      if (taken > cap) {
        capped = true;
        break;
      }
      merged.emplace(row.first, &row.second);
      taken += row.first.size() + row.second.PayloadBytes();
      last = row.first;
    }
    if (capped) {
      bounded = true;
      if (horizon.empty() || last < horizon) horizon = last;
    }
  };
  auto deref_ptr = [](auto it) -> const MemTable::Row& { return **it; };
  auto deref_row = [](auto it) -> const auto& { return *it; };
  const auto& mem_rows = mem_.Sorted();
  collect(start_after.empty()
              ? mem_rows.begin()
              : std::upper_bound(mem_rows.begin(), mem_rows.end(),
                                 start_after,
                                 [](std::string_view k,
                                    const MemTable::Row* r) {
                                   return k < r->first;
                                 }),
          mem_rows.end(), deref_ptr);
  for (const auto& level : levels_) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const auto& rows = (*rit)->rows();
      collect(std::upper_bound(rows.begin(), rows.end(), start_after,
                               [](std::string_view k, const auto& r) {
                                 return k < r.first;
                               }),
              rows.end(), deref_row);
    }
  }

  const Micros now = clock_->NowMicros();
  bool budget_hit = false;
  for (const auto& [key, entry] : merged) {
    if (bounded && key > horizon) break;
    if (out.bytes >= max_bytes && !out.entries.empty()) {
      budget_hit = true;  // Budget exhausted with keys left to examine.
      break;
    }
    out.next_cursor = key;  // Examined (matching or not): never revisit.
    if (Fnv1a64(key) % modulus != residue) continue;
    if (entry->IsTombstone() || entry->IsExpiredAt(now)) continue;
    out.entries.emplace_back(key, *entry);
    out.bytes += key.size() + entry->PayloadBytes();
  }
  if (bounded && !budget_hit) {
    // Every key up to the horizon was examined; resume past it.
    out.next_cursor = horizon;
  }
  out.done = !bounded && !budget_hit;
  return out;
}

void LsmEngine::Ingest(const std::string& key, ValueEntry entry) {
  WriteEntry(key, std::move(entry));
}

// ---------------------------------------------------------------------------
// Flush & compaction
// ---------------------------------------------------------------------------

void LsmEngine::MaybeFlush() {
  if (mem_.approximate_bytes() >= options_.memtable_flush_bytes) Flush();
}

void LsmEngine::Flush() {
  if (mem_.empty()) {
    MaybeCompact();
    return;
  }
  std::vector<std::pair<std::string, ValueEntry>> rows;
  rows.reserve(mem_.entry_count());
  uint64_t max_seq = 0;
  for (const MemTable::Row* row : mem_.Sorted()) {
    rows.emplace_back(row->first, row->second);
    max_seq = std::max(max_seq, row->second.seq);
  }
  auto sst = std::make_shared<SsTable>(next_sst_id_++, std::move(rows));
  stats_.flush_count++;
  stats_.flushed_bytes += sst->data_bytes();
  levels_[0].push_back(std::move(sst));
  mem_ = MemTable();
  if (options_.enable_wal) wal_.TruncateThrough(max_seq);
  while (MaybeCompact()) {
  }
}

bool LsmEngine::MaybeCompact() {
  for (size_t level = 0; level < levels_.size(); level++) {
    if (levels_[level].size() >
        static_cast<size_t>(options_.runs_per_level_trigger)) {
      CompactLevel(level);
      return true;
    }
  }
  return false;
}

void LsmEngine::CompactLevel(size_t level) {
  const bool is_bottom = level + 1 >= levels_.size();
  const size_t target = is_bottom ? level : level + 1;

  // Newest-first ordering: within a level, later index = newer.
  std::vector<SsTablePtr> inputs;
  for (auto it = levels_[level].rbegin(); it != levels_[level].rend(); ++it) {
    inputs.push_back(*it);
  }
  if (!is_bottom) {
    // Fold the existing target-level runs in as the oldest inputs so the
    // target keeps a single merged run per compaction.
    for (auto it = levels_[target].rbegin(); it != levels_[target].rend();
         ++it) {
      inputs.push_back(*it);
    }
  }

  uint64_t read_bytes = 0;
  for (const auto& run : inputs) read_bytes += run->data_bytes();

  // Tombstones and expired entries may only be dropped when merging into
  // the bottom level (no older version can exist below it).
  const bool drop_deletes = target + 1 >= levels_.size();
  auto merged_rows = MergeRuns(inputs, drop_deletes);

  levels_[level].clear();
  if (!is_bottom) levels_[target].clear();
  if (!merged_rows.empty()) {
    auto merged =
        std::make_shared<SsTable>(next_sst_id_++, std::move(merged_rows));
    stats_.compaction_write_bytes += merged->data_bytes();
    levels_[target].push_back(std::move(merged));
  }
  stats_.compaction_count++;
  stats_.compaction_read_bytes += read_bytes;
}

std::vector<std::pair<std::string, ValueEntry>> LsmEngine::MergeRuns(
    const std::vector<SsTablePtr>& runs_newest_first, bool drop_deletes) {
  // K-way merge by key; on ties the newest run (lowest input index) wins.
  std::map<std::string, ValueEntry> merged;
  for (const auto& run : runs_newest_first) {
    for (const auto& [key, entry] : run->rows()) {
      merged.emplace(key, entry);  // No overwrite: first (newest) wins.
    }
  }
  std::vector<std::pair<std::string, ValueEntry>> rows;
  rows.reserve(merged.size());
  const Micros now = clock_->NowMicros();
  for (auto& [key, entry] : merged) {
    if (drop_deletes &&
        (entry.IsTombstone() || entry.IsExpiredAt(now))) {
      stats_.expired_dropped += entry.IsExpiredAt(now) ? 1 : 0;
      continue;
    }
    rows.emplace_back(key, std::move(entry));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

Status LsmEngine::ApplyReplicated(const ReplRecordPtr& rec) {
  if (rec->entry.seq != next_seq_) {
    return Status::InvalidArgument("replication stream gap");
  }
  next_seq_ = rec->entry.seq + 1;
  // The shipped record is the primary's materialized copy; retaining it
  // in this replica's logs is two refcount bumps. Only the memtable —
  // the mutable store — takes its own copy.
  if (options_.enable_wal) wal_.Append(rec);
  if (options_.enable_repl_log) repl_log_.Append(rec);
  mem_.Put(rec->key, rec->entry);
  stats_.repl_applied++;
  MaybeFlush();
  return Status::OK();
}

Status LsmEngine::ApplyReplicated(const ReplRecord& rec) {
  return ApplyReplicated(std::make_shared<const ReplRecord>(rec));
}

void LsmEngine::ResyncFrom(const LsmEngine& src) {
  mem_ = src.mem_;
  wal_ = src.wal_;
  repl_log_ = src.repl_log_;
  // SSTables are immutable after construction; the runs are shared, so a
  // snapshot resync costs O(runs), not O(bytes) — the tick cost of the
  // transfer is modeled by the caller (catch-up / rebuild ticks).
  levels_ = src.levels_;
  next_seq_ = src.next_seq_;
  next_sst_id_ = src.next_sst_id_;
  stats_.resyncs++;
}

// ---------------------------------------------------------------------------
// Recovery & introspection
// ---------------------------------------------------------------------------

void LsmEngine::CrashAndRecover() {
  mem_ = MemTable();
  if (!options_.enable_wal) return;
  // Replay preserves original sequence numbers so ordering against
  // flushed runs stays correct.
  wal_.ForEach([this](const ReplRecord& rec) { mem_.Put(rec.key, rec.entry); });
}

uint64_t LsmEngine::ApproximateDataBytes() const {
  uint64_t total = mem_.approximate_bytes();
  for (const auto& level : levels_) {
    for (const auto& run : level) total += run->data_bytes();
  }
  return total;
}

std::vector<size_t> LsmEngine::LevelRunCounts() const {
  std::vector<size_t> counts;
  counts.reserve(levels_.size());
  for (const auto& level : levels_) counts.push_back(level.size());
  return counts;
}

double LsmEngine::WriteAmplification() const {
  if (stats_.flushed_bytes == 0) return 0;
  return static_cast<double>(stats_.flushed_bytes +
                             stats_.compaction_write_bytes) /
         static_cast<double>(stats_.flushed_bytes);
}

}  // namespace storage
}  // namespace abase
