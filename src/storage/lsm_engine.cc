#include "storage/lsm_engine.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace abase {
namespace storage {

LsmEngine::LsmEngine(LsmOptions options, const Clock* clock)
    : options_(options), clock_(clock) {
  assert(clock_ != nullptr);
  levels_.resize(static_cast<size_t>(options_.max_levels));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void LsmEngine::WriteEntry(const std::string& key, ValueEntry entry) {
  entry.seq = next_seq_++;
  if (options_.enable_wal) wal_.Append(key, entry);
  if (options_.enable_repl_log) repl_log_.Append(key, entry);
  mem_.Put(key, std::move(entry));
  stats_.puts++;
  MaybeFlush();
}

Status LsmEngine::Put(const std::string& key, std::string value, Micros ttl) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  Micros expire_at = ttl > 0 ? clock_->NowMicros() + ttl : 0;
  WriteEntry(key, ValueEntry::String(std::move(value), 0, expire_at));
  return Status::OK();
}

Status LsmEngine::Delete(const std::string& key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteEntry(key, ValueEntry::Tombstone(0));
  return Status::OK();
}

Status LsmEngine::HSet(const std::string& key, const std::string& field,
                       std::string value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  // Read-modify-write on the merged view: the memtable stores whole-hash
  // versions, so an HSET rewrites the hash with one field changed.
  ReadIo io;
  const ValueEntry* cur = FindEntry(key, &io);
  ValueEntry next;
  next.type = ValueType::kHash;
  if (cur != nullptr && cur->type == ValueType::kHash) {
    next.hash = cur->hash;
    next.expire_at = cur->expire_at;
  }
  SetField(next.hash, field, std::move(value));
  WriteEntry(key, std::move(next));
  return Status::OK();
}

Status LsmEngine::Expire(const std::string& key, Micros ttl) {
  ReadIo io;
  const ValueEntry* cur = FindEntry(key, &io);
  if (cur == nullptr) return Status::NotFound("EXPIRE on missing key");
  ValueEntry next = *cur;
  next.expire_at = ttl > 0 ? clock_->NowMicros() + ttl : 0;
  WriteEntry(key, std::move(next));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

const ValueEntry* LsmEngine::FindEntry(std::string_view key, ReadIo* io) {
  stats_.gets++;
  if (const ValueEntry* e = mem_.Get(key); e != nullptr) {
    stats_.memtable_hits++;
    if (io != nullptr) io->memtable_hit = true;
    if (e->IsTombstone()) return nullptr;
    if (e->IsExpiredAt(clock_->NowMicros())) {
      stats_.expired_dropped++;
      return nullptr;
    }
    if (io != nullptr) {
      io->found = true;
      io->expire_at = e->expire_at;
    }
    return e;
  }
  // Probe runs newest-to-oldest: level order, and within a level the
  // most recently added run first.
  for (const auto& level : levels_) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      SstProbe probe = (*it)->Get(key);
      if (probe.block_reads == 0) {
        stats_.bloom_filtered++;
        continue;
      }
      stats_.block_reads += static_cast<uint64_t>(probe.block_reads);
      if (io != nullptr) io->block_reads += probe.block_reads;
      if (probe.entry == nullptr) continue;  // Bloom false positive.
      if (probe.entry->IsTombstone()) return nullptr;
      if (probe.entry->IsExpiredAt(clock_->NowMicros())) {
        stats_.expired_dropped++;
        return nullptr;
      }
      if (io != nullptr) {
        io->found = true;
        io->expire_at = probe.entry->expire_at;
      }
      return probe.entry;
    }
  }
  return nullptr;
}

void LsmEngine::MultiFind(const std::string_view* keys, size_t n,
                          const ValueEntry** entries_out, ReadIo* ios_out) {
  // clock_->NowMicros() is constant within a tick, so hoisting it out of
  // the per-key expiry checks matches FindEntry exactly.
  const Micros now = clock_->NowMicros();
  mfind_pending_.clear();
  for (size_t i = 0; i < n; i++) {
    entries_out[i] = nullptr;
    ios_out[i] = ReadIo{};
    stats_.gets++;
    if (const ValueEntry* e = mem_.Get(keys[i]); e != nullptr) {
      stats_.memtable_hits++;
      ios_out[i].memtable_hit = true;
      if (e->IsTombstone()) continue;
      if (e->IsExpiredAt(now)) {
        stats_.expired_dropped++;
        continue;
      }
      ios_out[i].found = true;
      ios_out[i].expire_at = e->expire_at;
      entries_out[i] = e;
      continue;
    }
    mfind_pending_.push_back(static_cast<uint32_t>(i));
  }
  if (mfind_pending_.empty()) return;

  // Ascending key order lets each run's binary search resume from the
  // previous key's lower bound. Equal keys probe the same position twice,
  // matching two serial lookups.
  std::sort(mfind_pending_.begin(), mfind_pending_.end(),
            [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });

  // Runs newest-to-oldest, exactly like FindEntry; a key resolved by a
  // newer run (found, tombstone, or expired) never probes older runs.
  for (const auto& level : levels_) {
    if (mfind_pending_.empty()) break;
    for (auto it = level.rbegin();
         it != level.rend() && !mfind_pending_.empty(); ++it) {
      const SsTable& run = **it;
      size_t hint = 0;
      size_t w = 0;
      for (uint32_t i : mfind_pending_) {
        SstProbe probe = run.Get(keys[i], &hint);
        if (probe.block_reads == 0) {
          stats_.bloom_filtered++;
          mfind_pending_[w++] = i;
          continue;
        }
        stats_.block_reads += static_cast<uint64_t>(probe.block_reads);
        ios_out[i].block_reads += probe.block_reads;
        if (probe.entry == nullptr) {  // Bloom false positive.
          mfind_pending_[w++] = i;
          continue;
        }
        if (probe.entry->IsTombstone()) continue;
        if (probe.entry->IsExpiredAt(now)) {
          stats_.expired_dropped++;
          continue;
        }
        ios_out[i].found = true;
        ios_out[i].expire_at = probe.entry->expire_at;
        entries_out[i] = probe.entry;
      }
      mfind_pending_.resize(w);
    }
  }
}

Result<std::string> LsmEngine::Get(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kString) {
    return Status::NotFound("key absent");
  }
  return e->str;
}

Result<std::string> LsmEngine::HGet(std::string_view key,
                                    std::string_view field, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  const std::string* v = FindField(e->hash, field);
  if (v == nullptr) return Status::NotFound("field absent");
  return *v;
}

Result<uint64_t> LsmEngine::HLen(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  return static_cast<uint64_t>(e->hash.size());
}

Result<HashFields> LsmEngine::HGetAll(std::string_view key, ReadIo* io) {
  ReadIo local;
  const ValueEntry* e = FindEntry(key, io != nullptr ? io : &local);
  if (e == nullptr || e->type != ValueType::kHash) {
    return Status::NotFound("hash absent");
  }
  return e->hash;
}

// ---------------------------------------------------------------------------
// Range scans
// ---------------------------------------------------------------------------

std::vector<LsmEngine::ScanEntry> LsmEngine::Scan(std::string_view start,
                                                  std::string_view end,
                                                  size_t limit) {
  // Merge newest-first: the memtable first, then runs from newest to
  // oldest. emplace() keeps the first (newest) version of each key.
  std::map<std::string, const ValueEntry*> merged;
  auto in_range = [&](const std::string& k) {
    return k >= start && (end.empty() || k < end);
  };

  const auto& mem_rows = mem_.Sorted();
  for (auto it = std::lower_bound(
           mem_rows.begin(), mem_rows.end(), start,
           [](const MemTable::Row* r, std::string_view k) {
             return r->first < k;
           });
       it != mem_rows.end() && in_range((*it)->first); ++it) {
    merged.emplace((*it)->first, &(*it)->second);
    // Over-collect per source: older sources may fill gaps between the
    // first `limit` visible keys once tombstones are dropped.
    if (merged.size() >= limit * 2 + 16) break;
  }
  for (const auto& level : levels_) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const auto& rows = (*rit)->rows();
      auto row = std::lower_bound(
          rows.begin(), rows.end(), start,
          [](const auto& r, std::string_view k) { return r.first < k; });
      size_t taken = 0;
      for (; row != rows.end() && in_range(row->first) &&
             taken < limit * 2 + 16;
           ++row, ++taken) {
        merged.emplace(row->first, &row->second);
      }
    }
  }

  std::vector<ScanEntry> out;
  const Micros now = clock_->NowMicros();
  for (const auto& [key, entry] : merged) {
    if (out.size() >= limit) break;
    if (entry->IsTombstone() || entry->IsExpiredAt(now)) continue;
    ScanEntry se;
    se.key = key;
    if (entry->type == ValueType::kString) {
      se.value = entry->str;
    } else {
      for (const auto& [f, v] : entry->hash) {
        se.value += f;
        se.value += '=';
        se.value += v;
        se.value += '\n';
      }
    }
    out.push_back(std::move(se));
  }
  return out;
}

std::vector<LsmEngine::ScanEntry> LsmEngine::ScanPrefix(
    std::string_view prefix, size_t limit) {
  std::string end(prefix);
  // Successor of the prefix: bump the last byte (dropping trailing 0xff).
  while (!end.empty() && static_cast<unsigned char>(end.back()) == 0xff) {
    end.pop_back();
  }
  if (!end.empty()) end.back() = static_cast<char>(end.back() + 1);
  return Scan(prefix, end, limit);
}

// ---------------------------------------------------------------------------
// Hash-range export (online partition split)
// ---------------------------------------------------------------------------

LsmEngine::HashRangeExport LsmEngine::ExportHashRange(
    uint64_t modulus, uint64_t residue, std::string_view start_after,
    uint64_t max_bytes) const {
  HashRangeExport out;
  if (modulus == 0) {
    out.done = true;
    return out;
  }
  // Bounded merged newest-wins view of the keys strictly after the
  // cursor: memtable first, then runs newest-to-oldest (emplace keeps
  // the first — newest — version, exactly like Scan/MergeRuns). Each
  // source contributes keys in order only until a payload cap, so one
  // throttled batch costs O(cap), not O(keys remaining): a source that
  // hit its cap bounds the *safe horizon* — the smallest last-collected
  // key across capped sources — below which the merged view is
  // complete. Keys beyond the horizon wait for the next batch.
  const uint64_t cap = max_bytes * 2 + (64ull << 10);
  std::map<std::string, const ValueEntry*> merged;
  bool bounded = false;
  std::string horizon;
  // `deref` unifies the two row shapes: sstable runs iterate pair
  // values, the memtable's sorted view iterates pair pointers.
  auto collect = [&](auto it, auto end_it, auto deref) {
    uint64_t taken = 0;
    std::string last;
    bool capped = false;
    for (; it != end_it; ++it) {
      const auto& row = deref(it);
      if (taken > cap) {
        capped = true;
        break;
      }
      merged.emplace(row.first, &row.second);
      taken += row.first.size() + row.second.PayloadBytes();
      last = row.first;
    }
    if (capped) {
      bounded = true;
      if (horizon.empty() || last < horizon) horizon = last;
    }
  };
  auto deref_ptr = [](auto it) -> const MemTable::Row& { return **it; };
  auto deref_row = [](auto it) -> const auto& { return *it; };
  const auto& mem_rows = mem_.Sorted();
  collect(start_after.empty()
              ? mem_rows.begin()
              : std::upper_bound(mem_rows.begin(), mem_rows.end(),
                                 start_after,
                                 [](std::string_view k,
                                    const MemTable::Row* r) {
                                   return k < r->first;
                                 }),
          mem_rows.end(), deref_ptr);
  for (const auto& level : levels_) {
    for (auto rit = level.rbegin(); rit != level.rend(); ++rit) {
      const auto& rows = (*rit)->rows();
      collect(std::upper_bound(rows.begin(), rows.end(), start_after,
                               [](std::string_view k, const auto& r) {
                                 return k < r.first;
                               }),
              rows.end(), deref_row);
    }
  }

  const Micros now = clock_->NowMicros();
  bool budget_hit = false;
  for (const auto& [key, entry] : merged) {
    if (bounded && key > horizon) break;
    if (out.bytes >= max_bytes && !out.entries.empty()) {
      budget_hit = true;  // Budget exhausted with keys left to examine.
      break;
    }
    out.next_cursor = key;  // Examined (matching or not): never revisit.
    if (Fnv1a64(key) % modulus != residue) continue;
    if (entry->IsTombstone() || entry->IsExpiredAt(now)) continue;
    out.entries.emplace_back(key, *entry);
    out.bytes += key.size() + entry->PayloadBytes();
  }
  if (bounded && !budget_hit) {
    // Every key up to the horizon was examined; resume past it.
    out.next_cursor = horizon;
  }
  out.done = !bounded && !budget_hit;
  return out;
}

void LsmEngine::Ingest(const std::string& key, ValueEntry entry) {
  WriteEntry(key, std::move(entry));
}

// ---------------------------------------------------------------------------
// Flush & compaction
// ---------------------------------------------------------------------------

void LsmEngine::MaybeFlush() {
  if (mem_.approximate_bytes() >= options_.memtable_flush_bytes) Flush();
}

void LsmEngine::Flush() {
  if (mem_.empty()) {
    MaybeCompact();
    return;
  }
  std::vector<std::pair<std::string, ValueEntry>> rows;
  rows.reserve(mem_.entry_count());
  uint64_t max_seq = 0;
  for (const MemTable::Row* row : mem_.Sorted()) {
    rows.emplace_back(row->first, row->second);
    max_seq = std::max(max_seq, row->second.seq);
  }
  auto sst = std::make_shared<SsTable>(next_sst_id_++, std::move(rows));
  stats_.flush_count++;
  stats_.flushed_bytes += sst->data_bytes();
  levels_[0].push_back(std::move(sst));
  mem_ = MemTable();
  if (options_.enable_wal) wal_.TruncateThrough(max_seq);
  while (MaybeCompact()) {
  }
}

bool LsmEngine::MaybeCompact() {
  for (size_t level = 0; level < levels_.size(); level++) {
    if (levels_[level].size() >
        static_cast<size_t>(options_.runs_per_level_trigger)) {
      CompactLevel(level);
      return true;
    }
  }
  return false;
}

void LsmEngine::CompactLevel(size_t level) {
  const bool is_bottom = level + 1 >= levels_.size();
  const size_t target = is_bottom ? level : level + 1;

  // Newest-first ordering: within a level, later index = newer.
  std::vector<SsTablePtr> inputs;
  for (auto it = levels_[level].rbegin(); it != levels_[level].rend(); ++it) {
    inputs.push_back(*it);
  }
  if (!is_bottom) {
    // Fold the existing target-level runs in as the oldest inputs so the
    // target keeps a single merged run per compaction.
    for (auto it = levels_[target].rbegin(); it != levels_[target].rend();
         ++it) {
      inputs.push_back(*it);
    }
  }

  uint64_t read_bytes = 0;
  for (const auto& run : inputs) read_bytes += run->data_bytes();

  // Tombstones and expired entries may only be dropped when merging into
  // the bottom level (no older version can exist below it).
  const bool drop_deletes = target + 1 >= levels_.size();
  auto merged_rows = MergeRuns(inputs, drop_deletes);

  levels_[level].clear();
  if (!is_bottom) levels_[target].clear();
  if (!merged_rows.empty()) {
    auto merged =
        std::make_shared<SsTable>(next_sst_id_++, std::move(merged_rows));
    stats_.compaction_write_bytes += merged->data_bytes();
    levels_[target].push_back(std::move(merged));
  }
  stats_.compaction_count++;
  stats_.compaction_read_bytes += read_bytes;
}

std::vector<std::pair<std::string, ValueEntry>> LsmEngine::MergeRuns(
    const std::vector<SsTablePtr>& runs_newest_first, bool drop_deletes) {
  // K-way merge by key; on ties the newest run (lowest input index) wins.
  std::map<std::string, ValueEntry> merged;
  for (const auto& run : runs_newest_first) {
    for (const auto& [key, entry] : run->rows()) {
      merged.emplace(key, entry);  // No overwrite: first (newest) wins.
    }
  }
  std::vector<std::pair<std::string, ValueEntry>> rows;
  rows.reserve(merged.size());
  const Micros now = clock_->NowMicros();
  for (auto& [key, entry] : merged) {
    if (drop_deletes &&
        (entry.IsTombstone() || entry.IsExpiredAt(now))) {
      stats_.expired_dropped += entry.IsExpiredAt(now) ? 1 : 0;
      continue;
    }
    rows.emplace_back(key, std::move(entry));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

Status LsmEngine::ApplyReplicated(const ReplRecord& rec) {
  if (rec.entry.seq != next_seq_) {
    return Status::InvalidArgument("replication stream gap");
  }
  next_seq_ = rec.entry.seq + 1;
  if (options_.enable_wal) wal_.Append(rec.key, rec.entry);
  if (options_.enable_repl_log) repl_log_.Append(rec.key, rec.entry);
  mem_.Put(rec.key, rec.entry);
  stats_.repl_applied++;
  MaybeFlush();
  return Status::OK();
}

void LsmEngine::ResyncFrom(const LsmEngine& src) {
  mem_ = src.mem_;
  wal_ = src.wal_;
  repl_log_ = src.repl_log_;
  // SSTables are immutable after construction; the runs are shared, so a
  // snapshot resync costs O(runs), not O(bytes) — the tick cost of the
  // transfer is modeled by the caller (catch-up / rebuild ticks).
  levels_ = src.levels_;
  next_seq_ = src.next_seq_;
  next_sst_id_ = src.next_sst_id_;
  stats_.resyncs++;
}

// ---------------------------------------------------------------------------
// Recovery & introspection
// ---------------------------------------------------------------------------

void LsmEngine::CrashAndRecover() {
  mem_ = MemTable();
  if (!options_.enable_wal) return;
  // Replay preserves original sequence numbers so ordering against
  // flushed runs stays correct.
  wal_.ForEach([this](const WalRecord& rec) { mem_.Put(rec.key, rec.entry); });
}

uint64_t LsmEngine::ApproximateDataBytes() const {
  uint64_t total = mem_.approximate_bytes();
  for (const auto& level : levels_) {
    for (const auto& run : level) total += run->data_bytes();
  }
  return total;
}

std::vector<size_t> LsmEngine::LevelRunCounts() const {
  std::vector<size_t> counts;
  counts.reserve(levels_.size());
  for (const auto& level : levels_) counts.push_back(level.size());
  return counts;
}

double LsmEngine::WriteAmplification() const {
  if (stats_.flushed_bytes == 0) return 0;
  return static_cast<double>(stats_.flushed_bytes +
                             stats_.compaction_write_bytes) /
         static_cast<double>(stats_.flushed_bytes);
}

}  // namespace storage
}  // namespace abase
