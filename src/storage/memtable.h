// In-memory write buffer of the LSM engine: a hash map from key to the
// latest ValueEntry with byte accounting that drives flush decisions,
// plus a lazily built key-ordered view for the (rare) ordered
// consumers — flush, range scans, and split exports.
//
// Point writes dominate the data plane, so the primary index is a hash
// table: Put/Get cost one short-string hash instead of the O(log n)
// string comparisons of the previous std::map. The ordered view is a
// vector of row pointers sorted on demand; overwrites keep it valid
// (pointers into the node-based table are stable and the key set is
// unchanged), only a first-seen key marks it dirty.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace abase {
namespace storage {

/// Mutable key→value buffer. Not internally synchronized; the engine
/// serializes access.
class MemTable {
 public:
  /// One stored row; `first` is the key. Matches the hash table's
  /// value_type so Sorted() can point straight at the nodes.
  using Row = std::pair<const std::string, ValueEntry>;

  MemTable() = default;
  // The sorted view holds pointers into the table's nodes, so a copied
  // view would alias the *source* table. Copies drop the view and
  // rebuild lazily; moves keep it (node pointers survive a map move).
  MemTable(const MemTable& other)
      : table_(other.table_), bytes_(other.bytes_) {
    sorted_dirty_ = true;
  }
  MemTable& operator=(const MemTable& other) {
    table_ = other.table_;
    bytes_ = other.bytes_;
    sorted_.clear();
    sorted_dirty_ = true;
    return *this;
  }
  MemTable(MemTable&&) = default;
  MemTable& operator=(MemTable&&) = default;

  /// Inserts or replaces the entry for `key`.
  void Put(const std::string& key, ValueEntry entry);

  /// Latest entry for `key`, including tombstones (callers must check).
  const ValueEntry* Get(std::string_view key) const;

  /// Mutable access for read-modify-write commands (HSET on an existing
  /// hash). Returns nullptr if absent.
  ValueEntry* GetMutable(std::string_view key);

  size_t entry_count() const { return table_.size(); }
  uint64_t approximate_bytes() const { return bytes_; }
  bool empty() const { return table_.empty(); }

  /// Key-ordered view of the rows for flush / scans / exports. Rebuilt
  /// lazily after an insert of a new key; row pointers are stable (the
  /// table is node-based) and value updates never invalidate the view.
  const std::vector<const Row*>& Sorted() const;

  /// Re-derives the byte accounting after in-place mutation via
  /// GetMutable. `delta` may be negative.
  void AdjustBytes(int64_t delta);

 private:
  static uint64_t EntryBytes(const std::string& key, const ValueEntry& e) {
    return key.size() + e.PayloadBytes() + kEntryOverhead;
  }

  /// Fixed per-entry overhead (seq, type, TTL, node pointers).
  static constexpr uint64_t kEntryOverhead = 48;

  std::unordered_map<std::string, ValueEntry> table_;
  mutable std::vector<const Row*> sorted_;
  mutable bool sorted_dirty_ = false;
  /// Lookup key scratch: capacity retained across Get calls so probing
  /// never allocates (C++17 unordered_map lacks heterogeneous find).
  mutable std::string lookup_scratch_;
  uint64_t bytes_ = 0;
};

}  // namespace storage
}  // namespace abase
