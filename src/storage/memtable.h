// In-memory write buffer of the LSM engine: an ordered map from key to the
// latest ValueEntry, with byte accounting that drives flush decisions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "storage/value.h"

namespace abase {
namespace storage {

/// Ordered mutable key→value buffer. Not internally synchronized; the
/// engine serializes access.
class MemTable {
 public:
  /// Inserts or replaces the entry for `key`.
  void Put(const std::string& key, ValueEntry entry);

  /// Latest entry for `key`, including tombstones (callers must check).
  const ValueEntry* Get(std::string_view key) const;

  /// Mutable access for read-modify-write commands (HSET on an existing
  /// hash). Returns nullptr if absent.
  ValueEntry* GetMutable(std::string_view key);

  size_t entry_count() const { return table_.size(); }
  uint64_t approximate_bytes() const { return bytes_; }
  bool empty() const { return table_.empty(); }

  /// Ordered iteration for flush.
  const std::map<std::string, ValueEntry, std::less<>>& entries() const {
    return table_;
  }

  /// Re-derives the byte accounting after in-place mutation via
  /// GetMutable. `delta` may be negative.
  void AdjustBytes(int64_t delta);

 private:
  static uint64_t EntryBytes(const std::string& key, const ValueEntry& e) {
    return key.size() + e.PayloadBytes() + kEntryOverhead;
  }

  /// Fixed per-entry overhead (seq, type, TTL, node pointers).
  static constexpr uint64_t kEntryOverhead = 48;

  std::map<std::string, ValueEntry, std::less<>> table_;
  uint64_t bytes_ = 0;
};

}  // namespace storage
}  // namespace abase
