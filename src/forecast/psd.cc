#include "forecast/psd.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace forecast {

std::vector<PeriodComponent> Periodogram(const TimeSeries& series) {
  std::vector<PeriodComponent> out;
  const size_t n = series.size();
  if (n < 8) return out;
  const double mean = series.Mean();

  // Direct DFT over frequencies k = 2 .. n/2 (k=1 is the whole-window
  // trend, excluded; k >= n/2 aliases).
  for (size_t k = 2; k <= n / 2; k++) {
    double re = 0, im = 0;
    const double w = 2.0 * M_PI * static_cast<double>(k) /
                     static_cast<double>(n);
    for (size_t t = 0; t < n; t++) {
      double v = series[t] - mean;
      re += v * std::cos(w * static_cast<double>(t));
      im -= v * std::sin(w * static_cast<double>(t));
    }
    double power = (re * re + im * im) / static_cast<double>(n);
    out.push_back(PeriodComponent{
        static_cast<double>(n) / static_cast<double>(k), power});
  }
  std::sort(out.begin(), out.end(),
            [](const PeriodComponent& a, const PeriodComponent& b) {
              return a.power > b.power;
            });
  return out;
}

double DetectDominantPeriod(const TimeSeries& series,
                            double min_power_ratio) {
  auto spectrum = Periodogram(series);
  if (spectrum.empty()) return 0;
  double total_var = series.Stddev();
  total_var = total_var * total_var * static_cast<double>(series.size());
  if (total_var <= 0) return 0;
  const PeriodComponent& top = spectrum.front();
  if (top.power / total_var < min_power_ratio) return 0;
  return top.period_samples;
}

bool HasPeriodicity(const TimeSeries& series) {
  return DetectDominantPeriod(series) > 0;
}

}  // namespace forecast
}  // namespace abase
