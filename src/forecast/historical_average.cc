#include "forecast/historical_average.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace forecast {

HistoricalAverage::HistoricalAverage(const TimeSeries& history,
                                     double period_samples,
                                     size_t num_periods)
    : history_(history), num_periods_(num_periods) {
  const size_t n = history.size();
  size_t period = static_cast<size_t>(std::llround(period_samples));
  if (period >= 2 && n >= period) {
    period_ = period;
    phase_mean_.assign(period_, 0.0);
    std::vector<size_t> counts(period_, 0);
    // Average each phase over the trailing num_periods cycles.
    size_t start =
        n > period_ * num_periods_ ? n - period_ * num_periods_ : 0;
    for (size_t t = start; t < n; t++) {
      size_t phase = t % period_;
      phase_mean_[phase] += history[t];
      counts[phase]++;
    }
    for (size_t p = 0; p < period_; p++) {
      if (counts[p] > 0) phase_mean_[p] /= static_cast<double>(counts[p]);
    }
  }
  // Fallback mean over the trailing window.
  size_t tail = std::min<size_t>(n, 24 * 7);
  flat_mean_ = history.Tail(tail).Mean();
}

TimeSeries HistoricalAverage::Forecast(size_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  const size_t n = history_.size();
  for (size_t h = 0; h < horizon; h++) {
    if (period_ >= 2) {
      out.push_back(phase_mean_[(n + h) % period_]);
    } else {
      out.push_back(flat_mean_);
    }
  }
  return TimeSeries(std::move(out));
}

TimeSeries HistoricalAverage::FittedValues() const {
  std::vector<double> out;
  const size_t n = history_.size();
  out.reserve(n);
  for (size_t t = 0; t < n; t++) {
    if (period_ >= 2) {
      out.push_back(phase_mean_[t % period_]);
    } else {
      out.push_back(flat_mean_);
    }
  }
  return TimeSeries(std::move(out));
}

}  // namespace forecast
}  // namespace abase
