// Preprocessing / denoising for workload forecasting (paper Section 5.2):
//  * multi-metric collaboration: spikes appearing in Usage AND Quota at
//    the same instant are recording artifacts (quota does not spike with
//    traffic in reality) and are removed;
//  * sporadic-peak removal: isolated peaks that appear only once in the
//    recent window (ad-hoc events, migration artifacts) are clipped.
#pragma once

#include <cstddef>

#include "common/time_series.h"

namespace abase {
namespace forecast {

/// Denoising knobs.
struct DenoiseOptions {
  /// A point is a spike when it exceeds `spike_sigma` standard deviations
  /// above the local median.
  double spike_sigma = 4.0;
  /// Window (in samples) used for the local median/deviation.
  size_t local_window = 24;
  /// A spike is "sporadic" if no other spike of similar height occurs
  /// within `recurrence_window` samples on either side (10 days hourly =
  /// 240).
  size_t recurrence_window = 240;
};

/// Removes simultaneous Usage+Quota spikes (metric noise). Returns the
/// cleaned usage series; `quota` is only consulted, never modified.
TimeSeries RemoveSimultaneousSpikes(const TimeSeries& usage,
                                    const TimeSeries& quota,
                                    const DenoiseOptions& options = {});

/// Clips sporadic (non-recurring) peaks to the local median + sigma bound.
TimeSeries RemoveSporadicPeaks(const TimeSeries& usage,
                               const DenoiseOptions& options = {});

/// Full preprocessing pipeline: simultaneous-spike filter, then sporadic
/// peak clipping.
TimeSeries Denoise(const TimeSeries& usage, const TimeSeries& quota,
                   const DenoiseOptions& options = {});

}  // namespace forecast
}  // namespace abase
