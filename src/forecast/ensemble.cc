#include "forecast/ensemble.h"

#include <algorithm>
#include <cmath>

#include "forecast/changepoint.h"
#include "forecast/historical_average.h"
#include "forecast/prophet_lite.h"
#include "forecast/psd.h"

namespace abase {
namespace forecast {

namespace {

/// Mean absolute error between a forecast and the truth.
double Mae(const TimeSeries& pred, const TimeSeries& truth) {
  size_t n = std::min(pred.size(), truth.size());
  if (n == 0) return 1e18;
  double acc = 0;
  for (size_t i = 0; i < n; i++) acc += std::fabs(pred[i] - truth[i]);
  return acc / static_cast<double>(n);
}

}  // namespace

Result<ForecastResult> EnsembleForecast(const TimeSeries& usage,
                                        const TimeSeries& quota,
                                        size_t horizon,
                                        const EnsembleOptions& options) {
  if (usage.size() < options.min_history) {
    return Status::InvalidArgument("history too short for forecasting");
  }
  ForecastResult out;

  // 1. Denoise (multi-metric collaboration needs a matching quota series).
  TimeSeries clean = quota.size() == usage.size()
                         ? Denoise(usage, quota, options.denoise)
                         : RemoveSporadicPeaks(usage, options.denoise);

  // 2. Focus on data after the last trend shift, keeping at least the
  //    minimum history so the models stay identifiable.
  size_t cp = LastChangePoint(clean);
  if (cp > 0 && clean.size() - cp >= options.min_history) {
    out.truncated_at = cp;
    clean = clean.Tail(clean.size() - cp);
  }

  // 3. Period detection on the cleaned, truncated series.
  out.detected_period = DetectDominantPeriod(clean);

  // 4. Backtest both models on a holdout tail to derive ensemble weights.
  size_t holdout = std::min(options.holdout_samples, clean.size() / 4);
  TimeSeries train = clean;
  TimeSeries truth;
  if (holdout >= 8) {
    std::vector<double> head(clean.values().begin(),
                             clean.values().end() -
                                 static_cast<ptrdiff_t>(holdout));
    train = TimeSeries(std::move(head), clean.step_hours());
    truth = clean.Tail(holdout);
  }

  ProphetOptions popt;
  popt.period_samples = out.detected_period;
  double prophet_err = 1e18, hist_err = 1e18;
  if (holdout >= 8) {
    auto pfit = ProphetLite::Fit(train, popt);
    if (pfit.ok()) prophet_err = Mae(pfit.value().Forecast(holdout), truth);
    HistoricalAverage hfit(train, out.detected_period);
    hist_err = Mae(hfit.Forecast(holdout), truth);
  }

  // Inverse-error weighting with an epsilon floor; if neither model
  // backtested (tiny history), split evenly.
  double wp = 1.0 / (prophet_err + 1e-9);
  double wh = 1.0 / (hist_err + 1e-9);
  if (prophet_err >= 1e17 && hist_err >= 1e17) wp = wh = 1.0;
  out.prophet_weight = wp / (wp + wh);
  out.historical_weight = wh / (wp + wh);

  // 5. Refit both models on the full cleaned history and blend.
  TimeSeries prophet_pred;
  auto pfull = ProphetLite::Fit(clean, popt);
  if (pfull.ok()) {
    prophet_pred = pfull.value().Forecast(horizon);
  } else {
    out.prophet_weight = 0;
    out.historical_weight = 1;
  }
  HistoricalAverage hfull(clean, out.detected_period);
  TimeSeries hist_pred = hfull.Forecast(horizon);

  std::vector<double> blended(horizon, 0.0);
  for (size_t h = 0; h < horizon; h++) {
    double p = prophet_pred.size() > h ? prophet_pred[h] : 0.0;
    double v = out.prophet_weight * p + out.historical_weight * hist_pred[h];
    blended[h] = std::max(0.0, v);
  }
  out.prediction = TimeSeries(std::move(blended), clean.step_hours());
  out.predicted_max = out.prediction.Max();

  // 6. Issue 3 — consistent non-periodic bursts: if the blend sits far
  //    below recently observed peaks, trust the most recent period's
  //    history instead of down-forecasting.
  size_t burst_window = std::min(options.burst_window, clean.size());
  double recent_max = clean.Tail(burst_window).Max();
  if (recent_max > 0 &&
      out.predicted_max < options.burst_fallback_ratio * recent_max) {
    out.burst_fallback = true;
    TimeSeries recent = clean.Tail(std::min(horizon, clean.size()));
    std::vector<double> fb(horizon);
    for (size_t h = 0; h < horizon; h++) {
      fb[h] = recent[h % recent.size()];
    }
    out.prediction = TimeSeries(std::move(fb), clean.step_hours());
    out.predicted_max = std::max(out.prediction.Max(), recent_max);
  }
  return out;
}

}  // namespace forecast
}  // namespace abase
