// Ensemble workload forecaster — the paper's full Section 5.2 pipeline:
//   denoise (multi-metric spike filter + sporadic peak removal)
//   → change-point truncation (focus on data after the last trend shift)
//   → PSD period detection
//   → weighted ensemble of ProphetLite and HistoricalAverage, weights from
//     holdout backtest error
//   → consistent non-periodic-burst fallback: if the ensemble forecast is
//     far below recent observed peaks, use the most recent period's
//     history directly (Issue 3).
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"
#include "common/time_series.h"
#include "forecast/denoise.h"

namespace abase {
namespace forecast {

/// Ensemble knobs.
struct EnsembleOptions {
  DenoiseOptions denoise;
  size_t holdout_samples = 48;  ///< Backtest window for model weighting.
  /// Burst fallback triggers when forecast max < this fraction of the
  /// recent observed max.
  double burst_fallback_ratio = 0.7;
  /// Recent window (samples) whose max defines "recent observed peak".
  size_t burst_window = 7 * 24;
  size_t min_history = 48;
};

/// A forecast with provenance, for the autoscaler and the ablation bench.
struct ForecastResult {
  TimeSeries prediction;
  double predicted_max = 0;
  double prophet_weight = 0;
  double historical_weight = 0;
  double detected_period = 0;
  bool burst_fallback = false;  ///< Issue-3 path taken.
  size_t truncated_at = 0;      ///< History index of the last trend shift.
};

/// Forecasts `horizon` samples of usage from `usage` history (hourly).
/// `quota` (same length; pass an empty series to skip) enables the
/// multi-metric denoising step.
Result<ForecastResult> EnsembleForecast(const TimeSeries& usage,
                                        const TimeSeries& quota,
                                        size_t horizon,
                                        const EnsembleOptions& options = {});

}  // namespace forecast
}  // namespace abase
