#include "forecast/denoise.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace abase {
namespace forecast {

namespace {

/// Median of a window of `series` centered at i (clamped to bounds).
double LocalMedian(const std::vector<double>& v, size_t i, size_t window) {
  size_t lo = i >= window / 2 ? i - window / 2 : 0;
  size_t hi = std::min(v.size(), lo + window);
  if (hi - lo == 0) return 0;
  std::vector<double> w(v.begin() + static_cast<ptrdiff_t>(lo),
                        v.begin() + static_cast<ptrdiff_t>(hi));
  std::nth_element(w.begin(), w.begin() + static_cast<ptrdiff_t>(w.size() / 2),
                   w.end());
  return w[w.size() / 2];
}

/// Robust deviation estimate: median absolute deviation scaled to sigma.
double LocalMad(const std::vector<double>& v, size_t i, size_t window,
                double median) {
  size_t lo = i >= window / 2 ? i - window / 2 : 0;
  size_t hi = std::min(v.size(), lo + window);
  std::vector<double> dev;
  dev.reserve(hi - lo);
  for (size_t j = lo; j < hi; j++) dev.push_back(std::fabs(v[j] - median));
  if (dev.empty()) return 0;
  std::nth_element(dev.begin(),
                   dev.begin() + static_cast<ptrdiff_t>(dev.size() / 2),
                   dev.end());
  return dev[dev.size() / 2] * 1.4826;  // MAD -> sigma for Gaussian data.
}

/// Marks indices whose value exceeds local median + sigma * MAD.
std::vector<bool> SpikeMask(const std::vector<double>& v,
                            const DenoiseOptions& options) {
  std::vector<bool> mask(v.size(), false);
  for (size_t i = 0; i < v.size(); i++) {
    double med = LocalMedian(v, i, options.local_window);
    double mad = LocalMad(v, i, options.local_window, med);
    if (mad <= 0) mad = std::max(1e-9, 0.05 * std::fabs(med));
    if (v[i] > med + options.spike_sigma * mad) mask[i] = true;
  }
  return mask;
}

}  // namespace

TimeSeries RemoveSimultaneousSpikes(const TimeSeries& usage,
                                    const TimeSeries& quota,
                                    const DenoiseOptions& options) {
  TimeSeries out = usage;
  if (usage.size() != quota.size() || usage.empty()) return out;
  auto usage_spikes = SpikeMask(usage.values(), options);
  auto quota_spikes = SpikeMask(quota.values(), options);
  for (size_t i = 0; i < usage.size(); i++) {
    if (usage_spikes[i] && quota_spikes[i]) {
      // Both metrics spiking together is (per the paper) practically
      // impossible — treat as a recording artifact and replace with the
      // local median.
      out[i] = LocalMedian(usage.values(), i, options.local_window);
    }
  }
  return out;
}

TimeSeries RemoveSporadicPeaks(const TimeSeries& usage,
                               const DenoiseOptions& options) {
  TimeSeries out = usage;
  if (usage.empty()) return out;
  const auto& v = usage.values();
  auto spikes = SpikeMask(v, options);
  for (size_t i = 0; i < v.size(); i++) {
    if (!spikes[i]) continue;
    // Recurring peaks (another spike of comparable height within the
    // recurrence window) are genuine workload behaviour; keep them.
    bool recurring = false;
    size_t lo = i >= options.recurrence_window ? i - options.recurrence_window
                                               : 0;
    size_t hi = std::min(v.size(), i + options.recurrence_window + 1);
    for (size_t j = lo; j < hi && !recurring; j++) {
      if (j == i || !spikes[j]) continue;
      // "Comparable height" and not immediately adjacent (a single
      // multi-sample burst still counts as one event).
      if (j + 3 < i || j > i + 3) {
        if (v[j] > 0.5 * v[i]) recurring = true;
      }
    }
    if (!recurring) {
      double med = LocalMedian(v, i, options.local_window);
      double mad = LocalMad(v, i, options.local_window, med);
      out[i] = med + options.spike_sigma * std::max(mad, 0.0);
    }
  }
  return out;
}

TimeSeries Denoise(const TimeSeries& usage, const TimeSeries& quota,
                   const DenoiseOptions& options) {
  return RemoveSporadicPeaks(
      RemoveSimultaneousSpikes(usage, quota, options), options);
}

}  // namespace forecast
}  // namespace abase
