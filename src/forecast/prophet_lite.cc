#include "forecast/prophet_lite.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "forecast/psd.h"

namespace abase {
namespace forecast {

std::vector<double> ProphetLite::BasisRow(double t) const {
  std::vector<double> row;
  row.reserve(2 + changepoints_.size() + 2 * options_.fourier_order);
  // Intercept + base slope.
  row.push_back(1.0);
  row.push_back(t);
  // Piecewise-linear trend: hinge at each changepoint.
  for (double cp : changepoints_) {
    row.push_back(t > cp ? t - cp : 0.0);
  }
  // Fourier seasonality.
  if (period_ > 0) {
    for (size_t k = 1; k <= options_.fourier_order; k++) {
      double arg = 2.0 * M_PI * static_cast<double>(k) * t / period_;
      row.push_back(std::sin(arg));
      row.push_back(std::cos(arg));
    }
  }
  return row;
}

Result<ProphetLite> ProphetLite::Fit(const TimeSeries& history,
                                     ProphetOptions options) {
  const size_t n = history.size();
  if (n < 16) return Status::InvalidArgument("history too short");

  ProphetLite model;
  model.options_ = options;
  model.history_len_ = n;

  // Seasonal period: caller-specified or PSD-detected.
  model.period_ = options.period_samples > 0
                      ? options.period_samples
                      : DetectDominantPeriod(history);
  if (model.period_ > 0 &&
      static_cast<double>(n) < 2.0 * model.period_) {
    // Under two full cycles the seasonal fit is unidentifiable; drop it.
    model.period_ = 0;
  }

  // Evenly spaced changepoints over the first 80% of history.
  size_t cps = std::min(options.num_changepoints, n / 8);
  for (size_t i = 1; i <= cps; i++) {
    model.changepoints_.push_back(0.8 * static_cast<double>(n) *
                                  static_cast<double>(i) /
                                  static_cast<double>(cps + 1));
  }

  const size_t k = 2 + model.changepoints_.size() +
                   (model.period_ > 0 ? 2 * options.fourier_order : 0);
  Matrix x(n, k);
  std::vector<double> y(n);
  for (size_t t = 0; t < n; t++) {
    auto row = model.BasisRow(static_cast<double>(t));
    for (size_t j = 0; j < k; j++) x.at(t, j) = row[j];
    y[t] = history[t];
  }

  // Per-block ridge: build an augmented system by scaling — use a single
  // lambda as a compromise, but penalize changepoint columns more by
  // pre-scaling them down (equivalent to a larger per-column penalty).
  const double cp_scale =
      std::sqrt(options.seasonal_ridge /
                std::max(options.changepoint_ridge, 1e-9));
  for (size_t t = 0; t < n; t++) {
    for (size_t j = 0; j < model.changepoints_.size(); j++) {
      x.at(t, 2 + j) *= cp_scale;
    }
  }
  auto fit = RidgeRegression(x, y, options.seasonal_ridge);
  if (!fit.ok()) return fit.status();
  model.weights_ = std::move(fit).value();
  // Fold the column scaling back into the weights.
  for (size_t j = 0; j < model.changepoints_.size(); j++) {
    model.weights_[2 + j] *= cp_scale;
  }
  return model;
}

TimeSeries ProphetLite::Forecast(size_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t h = 0; h < horizon; h++) {
    double t = static_cast<double>(history_len_ + h);
    auto row = BasisRow(t);
    double v = 0;
    for (size_t j = 0; j < row.size(); j++) v += row[j] * weights_[j];
    out.push_back(std::max(0.0, v));  // Usage cannot be negative.
  }
  return TimeSeries(std::move(out));
}

TimeSeries ProphetLite::FittedValues() const {
  std::vector<double> out;
  out.reserve(history_len_);
  for (size_t t = 0; t < history_len_; t++) {
    auto row = BasisRow(static_cast<double>(t));
    double v = 0;
    for (size_t j = 0; j < row.size(); j++) v += row[j] * weights_[j];
    out.push_back(v);
  }
  return TimeSeries(std::move(out));
}

}  // namespace forecast
}  // namespace abase
