// ProphetLite: a deterministic reimplementation of the Prophet [41]
// components the paper relies on — piecewise-linear trend with
// changepoints plus Fourier seasonality — fit by ridge-regularised least
// squares instead of Stan. Sufficient for the point forecasts that drive
// scaling decisions (DESIGN.md substitution table).
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"

namespace abase {
namespace forecast {

/// Model hyperparameters.
struct ProphetOptions {
  /// Candidate trend changepoints, evenly spaced over the first 80% of
  /// the history (Prophet's default layout).
  size_t num_changepoints = 12;
  /// Fourier harmonics for the seasonal component.
  size_t fourier_order = 4;
  /// Ridge penalty on changepoint slope adjustments (sparsity stand-in
  /// for Prophet's Laplace prior).
  double changepoint_ridge = 10.0;
  /// Ridge penalty on seasonal coefficients.
  double seasonal_ridge = 1.0;
  /// Seasonal period in samples; 0 = detect via PSD.
  double period_samples = 0;
};

/// Fitted ProphetLite model.
class ProphetLite {
 public:
  /// Fits trend + seasonality to `history`. Fails on degenerate input
  /// (shorter than 2 periods or 16 points).
  static Result<ProphetLite> Fit(const TimeSeries& history,
                                 ProphetOptions options = {});

  /// Forecasts `horizon` samples past the end of the history.
  TimeSeries Forecast(size_t horizon) const;

  /// In-sample fitted values (for backtesting / ensemble weighting).
  TimeSeries FittedValues() const;

  double period_samples() const { return period_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  ProphetLite() = default;

  /// Basis row for time index t (in samples from the history start).
  std::vector<double> BasisRow(double t) const;

  ProphetOptions options_;
  double period_ = 0;        ///< 0 = no seasonal component.
  size_t history_len_ = 0;
  std::vector<double> changepoints_;  ///< Times of trend kinks.
  std::vector<double> weights_;       ///< Fitted coefficients.
};

}  // namespace forecast
}  // namespace abase
