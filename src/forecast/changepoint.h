// Trend change-point detection (paper Section 5.2, Issue 1/2: "we utilize
// change point detection methods to identify trend shifts, thereby
// focusing the forecasting algorithms more on recent data changes").
#pragma once

#include <cstddef>
#include <vector>

#include "common/time_series.h"

namespace abase {
namespace forecast {

/// Binary-segmentation mean-shift detector: recursively splits the series
/// at the point that maximizes the between-segment variance reduction,
/// while the gain exceeds `min_gain_ratio` of the segment's variance and
/// segments stay >= `min_segment` points.
std::vector<size_t> DetectChangePoints(const TimeSeries& series,
                                       size_t min_segment = 24,
                                       double min_gain_ratio = 0.15,
                                       size_t max_points = 6);

/// Index of the last detected trend shift (0 if none): forecasting models
/// can down-weight or drop data before it.
size_t LastChangePoint(const TimeSeries& series);

}  // namespace forecast
}  // namespace abase
