// Historical-average forecaster [39]: a seasonal-naive model that predicts
// each future point as the average of the same phase across recent
// periods. Stable under minimal trend change — the ensemble's anchor.
#pragma once

#include <cstddef>

#include "common/time_series.h"

namespace abase {
namespace forecast {

/// Seasonal historical-average model.
class HistoricalAverage {
 public:
  /// `period_samples` of 0 disables seasonality: forecasts flat at the
  /// recent mean. `num_periods` bounds how many trailing cycles are
  /// averaged.
  HistoricalAverage(const TimeSeries& history, double period_samples,
                    size_t num_periods = 4);

  /// Forecasts `horizon` samples past the end of the history.
  TimeSeries Forecast(size_t horizon) const;

  /// In-sample one-period-back fitted values for backtesting (prediction
  /// for t uses the phase average excluding the final period).
  TimeSeries FittedValues() const;

 private:
  TimeSeries history_;
  size_t period_ = 0;  ///< Rounded period in samples; 0 = aperiodic.
  size_t num_periods_;
  std::vector<double> phase_mean_;  ///< Mean per phase slot.
  double flat_mean_ = 0;
};

}  // namespace forecast
}  // namespace abase
