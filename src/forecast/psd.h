// Period detection via power spectral density (paper Section 5.2: "we
// initially use PSD analysis to determine the time series' periodicity").
#pragma once

#include <cstddef>
#include <vector>

#include "common/time_series.h"

namespace abase {
namespace forecast {

/// One detected periodic component.
struct PeriodComponent {
  double period_samples = 0;  ///< Period length in sample steps.
  double power = 0;           ///< Spectral power (relative).
};

/// Computes the periodogram of `series` (mean removed) by direct DFT and
/// returns candidate periods sorted by descending power. Periods shorter
/// than 2 samples or longer than size/2 are excluded. O(n^2) — series here
/// are <= ~720 hourly points.
std::vector<PeriodComponent> Periodogram(const TimeSeries& series);

/// Dominant period in samples, or 0 when no component carries at least
/// `min_power_ratio` of the strongest-component power relative to total
/// variance (aperiodic series).
double DetectDominantPeriod(const TimeSeries& series,
                            double min_power_ratio = 0.04);

/// True when the series has a meaningful periodic structure.
bool HasPeriodicity(const TimeSeries& series);

}  // namespace forecast
}  // namespace abase
