#include "forecast/changepoint.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace forecast {

namespace {

/// Sum of squared errors of values[lo, hi) around their mean.
double SegmentSse(const std::vector<double>& v, size_t lo, size_t hi) {
  if (hi <= lo + 1) return 0;
  double mean = 0;
  for (size_t i = lo; i < hi; i++) mean += v[i];
  mean /= static_cast<double>(hi - lo);
  double sse = 0;
  for (size_t i = lo; i < hi; i++) sse += (v[i] - mean) * (v[i] - mean);
  return sse;
}

void Segment(const std::vector<double>& v, size_t lo, size_t hi,
             size_t min_segment, double min_gain_ratio, size_t max_points,
             std::vector<size_t>* out) {
  if (out->size() >= max_points) return;
  if (hi - lo < 2 * min_segment) return;
  double base = SegmentSse(v, lo, hi);
  if (base <= 0) return;

  size_t best = 0;
  double best_gain = 0;
  // O(n) per candidate split is fine: input series are <= ~720 points.
  for (size_t split = lo + min_segment; split + min_segment <= hi; split++) {
    double gain = base - SegmentSse(v, lo, split) - SegmentSse(v, split, hi);
    if (gain > best_gain) {
      best_gain = gain;
      best = split;
    }
  }
  if (best == 0 || best_gain / base < min_gain_ratio) return;
  out->push_back(best);
  Segment(v, lo, best, min_segment, min_gain_ratio, max_points, out);
  Segment(v, best, hi, min_segment, min_gain_ratio, max_points, out);
}

}  // namespace

std::vector<size_t> DetectChangePoints(const TimeSeries& series,
                                       size_t min_segment,
                                       double min_gain_ratio,
                                       size_t max_points) {
  std::vector<size_t> out;
  Segment(series.values(), 0, series.size(), min_segment, min_gain_ratio,
          max_points, &out);
  std::sort(out.begin(), out.end());
  return out;
}

size_t LastChangePoint(const TimeSeries& series) {
  auto points = DetectChangePoints(series);
  return points.empty() ? 0 : points.back();
}

}  // namespace forecast
}  // namespace abase
