// DataNode — paper Section 3.2 (Data Plane) and Figure 2.
//
// One DataNode owns a disk (DiskModel), a size-aware cache (SA-LRU), a
// four-class dual-layer WFQ, and a set of partition replicas, each backed
// by its own LSM engine and guarded by a partition quota at the request
// queue entry point. The node runs in discrete one-second ticks driven by
// the cluster simulator: requests submitted during a tick are admitted (or
// rejected) immediately, scheduled by the WFQ when the tick runs, and
// their responses drained by the caller afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/sa_lru.h"
#include "common/clock.h"
#include "common/flat_map.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "latency/service_time.h"
#include "node/request.h"
#include "quota/quota.h"
#include "ru/request_unit.h"
#include "sched/dual_layer_wfq.h"
#include "storage/disk_model.h"
#include "storage/lsm_engine.h"

namespace abase {
namespace node {

/// Per-node configuration. CPU per-tick budget lives in `wfq`
/// (cpu_budget_ru) and cache sizing in `cache` (capacity_bytes).
struct DataNodeOptions {
  double ru_capacity = 12000;  ///< Nominal RU capacity (rescheduler denominator).
  uint64_t storage_capacity = 64ull << 30;
  /// CPU RU burned rejecting one over-quota request at the request queue.
  /// This is why unthrottled bursts hurt co-tenants (Figure 6): the node
  /// pays to say "no".
  double reject_cpu_ru = 0.25;
  /// Requests still queued after this many ticks fail with a queue
  /// deadline error instead of waiting forever (bounded backlog).
  int queue_timeout_ticks = 2;
  Micros cpu_service_micros = 150;  ///< Base CPU service time per request.
  /// Sampled per-request service-time distribution (latency subsystem).
  /// Disabled = the fixed cpu_service_micros base above, bit-identical
  /// to the seed. When enabled, the sampled draw REPLACES the fixed base
  /// while the WFQ-backlog, queueing-factor, and disk terms still add on
  /// top; mean_micros defaults to cpu_service_micros scale.
  latency::ServiceTimeOptions service_time;
  sched::DualWfqOptions wfq;
  storage::DiskOptions disk;
  storage::LsmOptions lsm;
  cache::SaLruOptions cache;
  int replicas = 3;  ///< Replication factor used for write RU charging.
  /// Base seed of the node's private RNG stream (mixed with the node id).
  /// Nodes may tick concurrently under the parallel data-plane executor,
  /// so any stochastic node model MUST draw from rng() — never from a
  /// shared simulator RNG — to keep runs bit-identical across worker
  /// counts.
  uint64_t seed = 42;
};

/// Lifecycle of a DataNode within the live cluster (DESIGN.md "Failure
/// domain"). Transitions are driven from serial pipeline sections only:
///   kAlive --Fail()--> kFailed --StartRecovery()--> kRecovering
///   kRecovering --CompleteRecovery()--> kAlive
enum class NodeState {
  kAlive,       ///< Serving: accepts submissions, runs scheduling ticks.
  kFailed,      ///< Crashed: rejects submissions; queue and in-flight work
                ///< were dropped when the failure landed.
  kRecovering,  ///< WAL replay done, catching up; not yet serving.
};

const char* NodeStateName(NodeState state);

/// A partition replica hosted on this node.
struct PartitionReplica {
  TenantId tenant = 0;
  PartitionId partition = 0;
  double partition_quota_ru = 1000;  ///< Fair share (tenant quota / #parts).
  bool is_primary = true;
  std::unique_ptr<storage::LsmEngine> engine;
  std::unique_ptr<quota::PartitionQuota> quota;
  double ru_this_tick = 0;  ///< RU served in the current tick.
  double ru_rate = 0;       ///< EWMA of RU/s (rescheduler load input).
  /// On the node's EWMA active list (DataNode::ewma_active_): set when the
  /// replica serves RU, cleared when its rate decays back to exactly 0.
  bool ewma_listed = false;
  /// FNV-1a state of the node-cache key prefix "<tenant>|<partition>|"
  /// (computed once at AddReplica). Continuing it over the client key
  /// (Fnv1a64Continue) equals HashString(CacheKeyFor(req)) without
  /// materializing the prefixed string — the per-request cache-key hash
  /// becomes O(|key|) with no buffer build.
  uint64_t cache_prefix_hash = 0;
};

/// Node-level counters for one tick (drained with TakeTickStats).
struct NodeTickStats {
  uint64_t submitted = 0;
  uint64_t rejected_quota = 0;  ///< Partition-quota rejections.
  uint64_t completed = 0;
  uint64_t cache_hits = 0;
  uint64_t disk_served = 0;
  uint64_t repl_applied = 0;    ///< Replication records applied this tick.
  double cpu_ru_used = 0;
  double reject_cpu_ru = 0;
  sched::TickStats wfq;
};

/// A single simulated DataNode.
class DataNode {
 public:
  DataNode(NodeId id, DataNodeOptions options, const Clock* clock);

  // -- Topology -------------------------------------------------------------

  /// Places a replica of (tenant, partition) on this node.
  void AddReplica(TenantId tenant, PartitionId partition,
                  double partition_quota_ru, bool is_primary);

  /// Drops a replica; returns false if not hosted here.
  bool RemoveReplica(TenantId tenant, PartitionId partition);

  bool HasReplica(TenantId tenant, PartitionId partition) const;

  /// Whether this node hosts (tenant, partition) as its primary. The
  /// routing layer asks the destination node this at resolve time — the
  /// simulator's analogue of a production node answering MOVED.
  bool IsPrimaryFor(TenantId tenant, PartitionId partition) const;

  /// Primary/replica role flip, driven by the MetaServer during failover
  /// promotion and post-recovery failback.
  void SetReplicaPrimary(TenantId tenant, PartitionId partition,
                         bool is_primary);

  /// Updates the partition quota after tenant scaling.
  void SetPartitionQuota(TenantId tenant, PartitionId partition,
                         double partition_quota_ru);

  /// Enables/disables partition-quota admission (Figure 7 ablation).
  void SetPartitionQuotaEnforcement(bool enabled);

  // -- Lifecycle ------------------------------------------------------------

  NodeState state() const { return state_; }

  /// True when the node accepts and schedules work (kAlive).
  bool CanServe() const { return state_ == NodeState::kAlive; }

  /// Crashes the node: every queued WFQ entry and in-flight pending
  /// request is dropped on the floor (their completions never fire — the
  /// simulator resolves the stranded ids as Unavailable), and subsequent
  /// Submit() calls are rejected. Engines keep their durable state for
  /// WAL replay at recovery. Returns the number of dropped in-flight
  /// requests. No-op (returns 0) if already failed.
  size_t Fail();

  /// Begins recovery of a failed node: each replica engine discards its
  /// memtable and replays its WAL (LsmEngine::CrashAndRecover), restoring
  /// every acknowledged write. The node stays non-serving (kRecovering)
  /// until CompleteRecovery() — the simulator holds it there for the
  /// configured number of catch-up ticks. No-op unless kFailed.
  void StartRecovery();

  /// Rejoins the cluster (kRecovering -> kAlive). No-op unless
  /// kRecovering.
  void CompleteRecovery();

  // -- Request path ---------------------------------------------------------

  /// Admits `req` into the request queue. Over-quota requests are rejected
  /// here (burning reject_cpu_ru of the node's CPU) and produce an
  /// immediate Throttled response. Taken by const reference: the request
  /// is field-assigned into a recycled slab slot whose string capacity is
  /// reused, and the caller's buffer keeps ITS capacity too — both sides
  /// of the hop recycle instead of trading allocations via moves.
  void Submit(const NodeRequest& req);

  /// Runs one scheduling tick: WFQ over everything admitted so far.
  void Tick();

  // -- Replication ----------------------------------------------------------

  /// Applies one record of a primary's replication stream to the hosted
  /// replica of (tenant, partition). Called from the Replicate pipeline
  /// step — possibly concurrently across nodes, never concurrently on one
  /// node (per-node batches), and only with streams addressed to this
  /// node. Returns false if the replica is absent or the stream gapped
  /// (the shipper then falls back to a snapshot resync).
  bool ApplyReplicated(TenantId tenant, PartitionId partition,
                       const storage::ReplRecordPtr& rec);

  /// Re-seeds the hosted replica of (tenant, partition) with a full
  /// snapshot of `src` (a primary engine). Returns false if not hosted.
  bool ResyncReplica(TenantId tenant, PartitionId partition,
                     const storage::LsmEngine& src);

  /// Responses completed since the last drain.
  std::vector<NodeResponse> TakeResponses();

  /// Moves completed responses onto the back of `out` and clears the
  /// internal buffer while keeping its capacity — the batch pipeline's
  /// allocation-free alternative to TakeResponses().
  void DrainResponsesInto(std::vector<NodeResponse>& out);

  /// O(1) drain: swaps the filled response buffer with `buf` (which must
  /// be empty; its capacity becomes the node's next accumulation
  /// buffer). Avoids the per-response move of DrainResponsesInto.
  void SwapResponses(std::vector<NodeResponse>& buf) {
    buf.swap(responses_);
  }

  /// Stats of the last tick.
  NodeTickStats TakeTickStats();

  // -- Introspection --------------------------------------------------------

  NodeId id() const { return id_; }
  const DataNodeOptions& options() const { return options_; }

  /// Availability zone this node lives in (paper Section 3.1: partition
  /// replicas spread across AZs). Assigned by the deployment.
  uint32_t az() const { return az_; }
  void set_az(uint32_t az) { az_ = az; }

  /// Gray-failure injection: every served request's latency is
  /// multiplied by `factor` (1.0 = healthy). The node stays kAlive and
  /// keeps serving — this is the slow-but-not-dead failure mode the
  /// gray detector exists to catch. Call between ticks (serial).
  void SetServiceDegradation(double factor) {
    service_degradation_ = factor < 0 ? 0 : factor;
  }
  double service_degradation() const { return service_degradation_; }

  /// One stateless service-time draw as this node would charge tenant
  /// `tenant` for request `req_id`, degradation included. Used by the
  /// Settle stage to price the alternate leg of a hedged read without
  /// executing it. Falls back to cpu_service_micros when the sampled
  /// model is disabled.
  Micros SampleServiceMicros(TenantId tenant, uint64_t req_id) const;

  /// The node's private deterministic RNG stream (seeded from
  /// DataNodeOptions::seed and the node id). The only randomness source a
  /// node-tick code path may use.
  Rng& rng() { return rng_; }
  size_t replica_count() const { return replicas_.size(); }
  const cache::SaLruCache& data_cache() const { return cache_; }
  storage::DiskModel& disk() { return disk_; }

  /// Bytes of data stored across all replicas on this node.
  uint64_t StoredBytes() const;

  /// Sum of hosted partition quotas (denominator of wPartition).
  double TotalPartitionQuota() const;

  /// All replicas hosted (for the rescheduler).
  std::vector<const PartitionReplica*> Replicas() const;

  storage::LsmEngine* EngineFor(TenantId tenant, PartitionId partition);

  /// Per-tenant RU served in the last completed tick (for load metrics).
  /// Sorted by tenant id; the backing buffers are reused across ticks.
  const std::vector<std::pair<TenantId, double>>& LastTickTenantRu() const {
    return last_tick_tenant_ru_;
  }

 private:
  struct PendingContext {
    NodeRequest req;
    Micros admitted_at = 0;
    int wait_ticks = 0;
    bool active = false;  ///< Slab slot is live (not on the free list).
    // Engine read outcome captured at probe time so the completion stage
    // does not re-execute (and double-count) the read.
    bool probed = false;
    Status probe_status;
    std::string probe_value;       ///< Payload (serialized for HGETALL,
                                   ///< scan-codec framed for SCAN).
    uint64_t probe_hash_fields = 0;
    uint64_t probe_scan_entries = 0;  ///< Entries a SCAN probe emitted.
    storage::ReadIo probe_io;
  };

  static uint64_t ReplicaKey(TenantId tenant, PartitionId partition) {
    return (static_cast<uint64_t>(tenant) << 32) | partition;
  }

  sched::CacheProbe ProbeRequest(const sched::SchedRequest& sreq);

  /// Batched probe (DualLayerWfq::BatchProbeFn): node-cache lookups in
  /// pop order, then one LsmEngine::MultiFind per replica over the
  /// misses. Produces the same per-request probe results and engine
  /// counters as n serial ProbeRequest calls.
  void ProbeBatch(const sched::SchedRequest* reqs, size_t n,
                  sched::CacheProbe* out);
  void CompleteRequest(const sched::SchedRequest& sreq,
                       sched::SchedOutcome outcome);

  /// Resolves a scheduler entry to its pending slab slot, or nullptr if
  /// the request was already released (queue-deadline expiry): slots are
  /// recycled, so the req_id must still match.
  PendingContext* PendingAt(const sched::SchedRequest& sreq) {
    if (sreq.pending_slot >= pending_pool_.size()) return nullptr;
    PendingContext& ctx = pending_pool_[sreq.pending_slot];
    if (!ctx.active || ctx.req.req_id != sreq.req_id) return nullptr;
    return &ctx;
  }

  /// Returns a slab slot to the free list. The slot's strings keep their
  /// capacity for the next request that lands on it.
  void ReleasePending(uint32_t slot) {
    pending_pool_[slot].active = false;
    pending_free_.push_back(slot);
    pending_live_--;
  }
  NodeResponse ExecuteOnEngine(PendingContext& ctx, PartitionReplica& rep,
                               ServedBy served_by, Micros extra_latency);

  /// Rebuilds `cache_key_` for `req` and returns it. The scratch buffer
  /// is valid until the next CacheKeyFor call; node request paths run
  /// single-threaded per node, so one scratch suffices.
  const std::string& CacheKeyFor(const NodeRequest& req) const;

  /// Hot-path replica lookup through the flat side index.
  PartitionReplica* FindReplica(TenantId tenant, PartitionId partition) {
    PartitionReplica** slot =
        replica_index_.Find(ReplicaKey(tenant, partition));
    return slot ? *slot : nullptr;
  }
  const PartitionReplica* FindReplica(TenantId tenant,
                                      PartitionId partition) const {
    return const_cast<DataNode*>(this)->FindReplica(tenant, partition);
  }

  /// Recomputes the cached quota denominator with the same ordered sum
  /// the pre-cache code used, so float results stay bit-identical.
  void RecomputeTotalQuota();

  /// Accumulates actual RU into the per-tick tenant ledger.
  void AddTenantRu(TenantId tenant, double ru);

  NodeId id_;
  uint32_t az_ = 0;
  NodeState state_ = NodeState::kAlive;
  DataNodeOptions options_;
  const Clock* clock_;
  cache::SaLruCache cache_;
  storage::DiskModel disk_;
  sched::DualLayerWfq wfq_;
  /// Ordered owner of hosted replicas: control-plane walks (EWMA fold,
  /// StoredBytes, Replicas) depend on tenant/partition iteration order.
  std::map<uint64_t, PartitionReplica> replicas_;
  /// Open-addressed mirror of replicas_ for request-path lookups;
  /// std::map guarantees the cached pointers stay stable.
  FlatMap64<PartitionReplica*> replica_index_;
  double total_partition_quota_ = 0;  ///< Cached wPartition denominator.
  ru::RuEstimator ru_model_;
  bool quota_enforcement_ = true;
  /// Stateless sampled service-time model (latency subsystem); inert
  /// unless options_.service_time.enabled.
  latency::ServiceTimeModel service_model_;
  double service_degradation_ = 1.0;  ///< Gray-failure multiplier.

  Rng rng_;  ///< Per-node stream; see DataNodeOptions::seed.
  /// In-flight requests live in a slab; the scheduler carries the slot
  /// index (SchedRequest::pending_slot), so the probe/complete hot path
  /// is a vector index instead of a hash lookup, and recycled slots keep
  /// their string capacity across requests.
  std::vector<PendingContext> pending_pool_;
  std::vector<uint32_t> pending_free_;  ///< Recyclable slab slots.
  size_t pending_live_ = 0;             ///< Active slab entries.
  std::vector<NodeResponse> responses_;
  NodeTickStats tick_stats_;
  /// Per-tick tenant RU ledger: dense append-only pairs plus a flat
  /// index, cleared (capacity kept) every tick instead of rebuilding
  /// node-based maps — the steady state makes zero allocations.
  std::vector<std::pair<TenantId, double>> tenant_ru_this_tick_;
  std::vector<std::pair<TenantId, double>> last_tick_tenant_ru_;
  FlatMap64<uint32_t> tenant_ru_slot_;  ///< tenant -> ledger index.
  mutable std::string cache_key_;       ///< CacheKeyFor scratch.
  /// Tick() deadline sweep: (req_id, slab slot) of expired requests.
  std::vector<std::pair<uint64_t, uint32_t>> expired_scratch_;
  double pending_reject_ru_ = 0;  ///< CPU burned on rejections this tick.
  /// Replica keys with nonzero (ru_this_tick, ru_rate) state: the tick's
  /// EWMA fold walks only these — for every other replica the fold is
  /// 0.2*0 + 0.8*0 == 0 exactly, so skipping it is bit-identical.
  std::vector<uint64_t> ewma_active_;
  std::vector<uint32_t> batch_miss_;  ///< ProbeBatch cache-miss scratch.
  /// SCAN probe scratch: the merge iterator fills it, the probe frames
  /// it into the slab slot. Cleared (capacity and per-slot string
  /// capacity kept) per scan — zero allocations in the steady state.
  storage::ScanBuffer scan_buffer_;
};

}  // namespace node
}  // namespace abase
