// Request/response structs exchanged between the proxy plane and the data
// plane (in production: the Redis-protocol payload; here: in-process
// structs carrying the same routing and cost information).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"

namespace abase {

/// A client operation as issued by a tenant application.
struct ClientRequest {
  uint64_t req_id = 0;
  TenantId tenant = 0;
  OpType op = OpType::kGet;
  std::string key;
  /// FNV-1a 64 of `key` (== Fnv1a64(key)), computed once when the request
  /// is generated or injected. Every downstream consumer that hashes the
  /// key — partition routing, limited fan-out proxy choice, the write
  /// invalidation broadcast — reuses this instead of re-walking the
  /// bytes. 0 only for hand-built requests that never enter the sim.
  uint64_t key_hash = 0;
  std::string field;  ///< Hash commands: the field. Scans: exclusive end key.
  std::string value;  ///< Writes only.
  Micros ttl = 0;     ///< SET/EXPIRE.
  /// Scans only: maximum entries returned across the whole range.
  uint32_t scan_limit = 0;
  Micros issued_at = 0;
  /// Read routing preference: kPrimary pins the read to the partition's
  /// primary; kEventual lets the Route stage balance it across alive
  /// replicas (possibly stale by the replication lag). Ignored for
  /// writes, which always go to the primary.
  Consistency consistency = Consistency::kPrimary;
  /// When true, the simulator records this request's final outcome so a
  /// synchronous caller (abase::Client) can retrieve it.
  bool track_outcome = false;
};

/// A request forwarded by a proxy to a DataNode.
struct NodeRequest {
  uint64_t req_id = 0;
  TenantId tenant = 0;
  PartitionId partition = 0;
  OpType op = OpType::kGet;
  std::string key;
  std::string field;  ///< Hash commands: the field. Scans: exclusive end key.
  std::string value;
  Micros ttl = 0;
  /// Scans only: per-partition entry cap. The Route stage fans a scan
  /// out to every partition; each sub-request carries the client's full
  /// limit (any partition might hold the whole answer) and the Settle
  /// merge re-applies it globally.
  uint32_t scan_limit = 0;
  Micros issued_at = 0;
  double estimated_ru = 1.0;       ///< Proxy-side cache-aware estimate.
  uint64_t value_size_hint = 0;    ///< For WFQ small/large classification.
  bool background_refresh = false; ///< AU-LRU active-update re-fetch.
  int replicas = 3;                ///< Tenant replication (write RU fan-out).
  Consistency consistency = Consistency::kPrimary;  ///< Read routing.
};

/// Where a completed request was ultimately served.
enum class ServedBy {
  kProxyCache,
  kNodeCache,
  kNodeCpu,   ///< Write absorbed by memtable / metadata op.
  kDisk,
  kRejected,  ///< Throttled at some admission point.
};

/// A DataNode's reply to a forwarded request.
struct NodeResponse {
  uint64_t req_id = 0;
  TenantId tenant = 0;
  PartitionId partition = 0;
  OpType op = OpType::kGet;
  Status status;
  std::string key;
  std::string value;          ///< Read payload (value, hash, or framed scan).
  uint64_t value_bytes = 0;   ///< Actual bytes returned/written.
  uint64_t scan_entries = 0;  ///< Scans: entries in the framed payload.
  double actual_ru = 0;       ///< Charge computed by the node.
  Micros latency = 0;         ///< Data-plane service latency.
  ServedBy served_by = ServedBy::kNodeCpu;
  bool background_refresh = false;
  /// Remaining engine TTL of a read value (0 = none/unknown). Caps how
  /// long the proxy may cache it.
  Micros ttl_remaining = 0;
  /// Whether the serving replica held the primary role (false for an
  /// eventual-consistency replica read).
  bool from_primary = true;
  /// The serving engine's replication apply sequence at execution time;
  /// the Settle stage compares it against the primary's to surface the
  /// staleness of replica reads in TenantTickMetrics.
  uint64_t replica_applied_seq = 0;
};

}  // namespace abase
