#include "node/data_node.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <iterator>

#include "common/hash.h"
#include "common/scan_codec.h"

namespace abase {
namespace node {

namespace {

/// Serializes a hash map the way HGETALL returns it over the wire.
std::string SerializeHash(const storage::HashFields& hash) {
  std::string out;
  for (const auto& [f, v] : hash) {
    out += f;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

constexpr uint64_t kDiskBlockBytes = 4096;

}  // namespace

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kAlive:
      return "ALIVE";
    case NodeState::kFailed:
      return "FAILED";
    case NodeState::kRecovering:
      return "RECOVERING";
  }
  return "UNKNOWN";
}

DataNode::DataNode(NodeId id, DataNodeOptions options, const Clock* clock)
    : id_(id),
      options_(options),
      clock_(clock),
      cache_(options.cache, clock),
      disk_(options.disk),
      wfq_(options.wfq),
      service_model_(options.service_time),
      rng_(MixSeed(options.seed, static_cast<uint64_t>(id))) {
  assert(clock_ != nullptr);
}

Micros DataNode::SampleServiceMicros(TenantId tenant, uint64_t req_id) const {
  // Stream per (node, tenant): draws are independent across both axes.
  Micros micros =
      service_model_.enabled()
          ? service_model_.Sample(
                MixSeed(static_cast<uint64_t>(id_), tenant), req_id)
          : options_.cpu_service_micros;
  if (service_degradation_ != 1.0) {
    micros = static_cast<Micros>(
        static_cast<double>(micros) * service_degradation_);
  }
  return micros;
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

void DataNode::AddReplica(TenantId tenant, PartitionId partition,
                          double partition_quota_ru, bool is_primary) {
  PartitionReplica rep;
  rep.tenant = tenant;
  rep.partition = partition;
  rep.partition_quota_ru = partition_quota_ru;
  rep.is_primary = is_primary;
  // Hosted replicas always carry the replication stream: any of them
  // may serve as (or be promoted to) a shipping primary, and the
  // Replicate step truncates the logs behind the slowest cursor.
  storage::LsmOptions lsm_options = options_.lsm;
  lsm_options.enable_repl_log = true;
  rep.engine = std::make_unique<storage::LsmEngine>(lsm_options, clock_);
  rep.quota =
      std::make_unique<quota::PartitionQuota>(partition_quota_ru, clock_);
  rep.quota->SetEnabled(quota_enforcement_);
  {
    // Precompute the FNV-1a state of this replica's cache-key prefix
    // ("<tenant>|<partition>|"); the request path continues it over the
    // client key instead of building the prefixed string per request.
    char buf[32];
    // 32-bit ids are at most 10 digits; leave the compiler provable
    // headroom for the two '|' separators.
    auto p = std::to_chars(buf, buf + 12, tenant).ptr;
    *p++ = '|';
    p = std::to_chars(p, p + 12, partition).ptr;
    *p++ = '|';
    rep.cache_prefix_hash =
        Fnv1a64(std::string_view(buf, static_cast<size_t>(p - buf)));
  }
  uint64_t key = ReplicaKey(tenant, partition);
  PartitionReplica& stored = replicas_[key] = std::move(rep);
  replica_index_[key] = &stored;
  RecomputeTotalQuota();
}

bool DataNode::RemoveReplica(TenantId tenant, PartitionId partition) {
  uint64_t key = ReplicaKey(tenant, partition);
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return false;
  if (it->second.ewma_listed) {
    // Purge eagerly: a same-keyed replica re-added before the next tick's
    // fold must not inherit a stale list entry (it would fold twice).
    ewma_active_.erase(
        std::remove(ewma_active_.begin(), ewma_active_.end(), key),
        ewma_active_.end());
  }
  replicas_.erase(it);
  replica_index_.Erase(key);
  RecomputeTotalQuota();
  return true;
}

bool DataNode::HasReplica(TenantId tenant, PartitionId partition) const {
  return FindReplica(tenant, partition) != nullptr;
}

bool DataNode::IsPrimaryFor(TenantId tenant, PartitionId partition) const {
  const PartitionReplica* rep = FindReplica(tenant, partition);
  return rep != nullptr && rep->is_primary;
}

void DataNode::SetReplicaPrimary(TenantId tenant, PartitionId partition,
                                 bool is_primary) {
  if (PartitionReplica* rep = FindReplica(tenant, partition)) {
    rep->is_primary = is_primary;
  }
}

void DataNode::SetPartitionQuota(TenantId tenant, PartitionId partition,
                                 double partition_quota_ru) {
  PartitionReplica* rep = FindReplica(tenant, partition);
  if (rep == nullptr) return;
  rep->partition_quota_ru = partition_quota_ru;
  rep->quota->SetBaseQuota(partition_quota_ru);
  RecomputeTotalQuota();
}

void DataNode::SetPartitionQuotaEnforcement(bool enabled) {
  quota_enforcement_ = enabled;
  for (auto& [key, rep] : replicas_) rep.quota->SetEnabled(enabled);
}

uint64_t DataNode::StoredBytes() const {
  uint64_t total = 0;
  for (const auto& [key, rep] : replicas_) {
    total += rep.engine->ApproximateDataBytes();
  }
  return total;
}

double DataNode::TotalPartitionQuota() const { return total_partition_quota_; }

void DataNode::RecomputeTotalQuota() {
  // Fresh ordered sum (not an incremental +=/-=): float addition is not
  // associative, and the cached value must equal what a from-scratch walk
  // of the ordered map would produce on every platform.
  double total = 0;
  for (const auto& [key, rep] : replicas_) total += rep.partition_quota_ru;
  total_partition_quota_ = total;
}

std::vector<const PartitionReplica*> DataNode::Replicas() const {
  std::vector<const PartitionReplica*> out;
  out.reserve(replicas_.size());
  for (const auto& [key, rep] : replicas_) out.push_back(&rep);
  return out;
}

storage::LsmEngine* DataNode::EngineFor(TenantId tenant,
                                        PartitionId partition) {
  PartitionReplica* rep = FindReplica(tenant, partition);
  return rep == nullptr ? nullptr : rep->engine.get();
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

size_t DataNode::Fail() {
  if (state_ == NodeState::kFailed) return 0;
  state_ = NodeState::kFailed;
  // The crash takes the request queue and every in-flight request with
  // it. The stranded ids live on in the simulator's in-flight table; it
  // resolves them as Unavailable from a serial section.
  size_t dropped = pending_live_;
  pending_pool_.clear();
  pending_free_.clear();
  pending_live_ = 0;
  responses_.clear();
  wfq_.Clear();
  tick_stats_ = NodeTickStats{};
  pending_reject_ru_ = 0;
  tenant_ru_this_tick_.clear();
  tenant_ru_slot_.Clear();
  last_tick_tenant_ru_.clear();
  // A dead replica serves no RU; zero the EWMA so the rescheduler's load
  // model does not keep planning around ghost load.
  for (auto& [key, rep] : replicas_) {
    rep.ru_this_tick = 0;
    rep.ru_rate = 0;
    rep.ewma_listed = false;
  }
  ewma_active_.clear();
  return dropped;
}

void DataNode::StartRecovery() {
  if (state_ != NodeState::kFailed) return;
  state_ = NodeState::kRecovering;
  for (auto& [key, rep] : replicas_) {
    rep.engine->CrashAndRecover();
  }
  // The crash also cost the node its in-memory cache.
  cache_.Clear();
}

void DataNode::CompleteRecovery() {
  if (state_ != NodeState::kRecovering) return;
  state_ = NodeState::kAlive;
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

bool DataNode::ApplyReplicated(TenantId tenant, PartitionId partition,
                               const storage::ReplRecordPtr& rec) {
  PartitionReplica* rep = FindReplica(tenant, partition);
  if (rep == nullptr) return false;
  if (!rep->engine->ApplyReplicated(rec).ok()) return false;
  tick_stats_.repl_applied++;
  // The replica serves reads from its engine; drop any node-cached value
  // the shipped write supersedes (same write-invalidation the primary
  // performs synchronously in ExecuteOnEngine).
  NodeRequest key_probe;
  key_probe.tenant = tenant;
  key_probe.partition = partition;
  key_probe.key = rec->key;
  cache_.EraseHashed(Fnv1a64Continue(rep->cache_prefix_hash, rec->key),
                     CacheKeyFor(key_probe));
  return true;
}

bool DataNode::ResyncReplica(TenantId tenant, PartitionId partition,
                             const storage::LsmEngine& src) {
  PartitionReplica* rep = FindReplica(tenant, partition);
  if (rep == nullptr) return false;
  rep->engine->ResyncFrom(src);
  // A snapshot bypasses the per-record invalidation ApplyReplicated
  // performs, so any cached value for this partition may now be stale —
  // including entries surviving from an earlier hosting of the same
  // partition. Resyncs are rare (failover, migration, rebuild); dropping
  // the whole node cache is the proportionate correctness fix.
  cache_.Clear();
  return true;
}

// ---------------------------------------------------------------------------
// Request path
// ---------------------------------------------------------------------------

const std::string& DataNode::CacheKeyFor(const NodeRequest& req) const {
  std::string& key = cache_key_;
  key.clear();
  char buf[24];
  auto tenant_end = std::to_chars(buf, buf + sizeof(buf), req.tenant).ptr;
  key.append(buf, tenant_end);
  key += '|';
  auto part_end = std::to_chars(buf, buf + sizeof(buf), req.partition).ptr;
  key.append(buf, part_end);
  key += '|';
  key += req.key;
  return key;
}

namespace {

/// A rejection response (dead node, unhosted partition, quota, queue
/// deadline): echoes the request's routing fields, ServedBy::kRejected.
NodeResponse MakeRejection(const NodeRequest& req, Status status,
                           Micros latency) {
  NodeResponse resp;
  resp.req_id = req.req_id;
  resp.tenant = req.tenant;
  resp.partition = req.partition;
  resp.op = req.op;
  resp.key = req.key;
  resp.status = std::move(status);
  resp.served_by = ServedBy::kRejected;
  resp.latency = latency;
  resp.background_refresh = req.background_refresh;
  return resp;
}

}  // namespace

void DataNode::Submit(const NodeRequest& req) {
  tick_stats_.submitted++;
  if (state_ != NodeState::kAlive) {
    // Defensive: the routing layer avoids non-serving nodes, but a direct
    // caller still gets a clean answer instead of silently queued work.
    responses_.push_back(MakeRejection(
        req,
        Status::Unavailable(state_ == NodeState::kFailed ? "node failed"
                                                         : "node recovering"),
        /*latency=*/0));
    return;
  }
  PartitionReplica* rep = FindReplica(req.tenant, req.partition);
  if (rep == nullptr) {
    responses_.push_back(MakeRejection(
        req, Status::Unavailable("partition not hosted"), /*latency=*/0));
    return;
  }

  // Partition-quota admission at the request-queue entry point. Rejecting
  // is not free: the node burns CPU to produce the error (Figure 6).
  if (!rep->quota->TryAdmit(req.estimated_ru)) {
    pending_reject_ru_ += options_.reject_cpu_ru;
    tick_stats_.rejected_quota++;
    responses_.push_back(
        MakeRejection(req, Status::Throttled("partition quota exceeded"),
                      options_.cpu_service_micros));
    return;
  }

  sched::SchedRequest sreq;
  sreq.req_id = req.req_id;
  sreq.tenant = req.tenant;
  sreq.partition = req.partition;
  sreq.is_read = IsReadOp(req.op);
  sreq.cls = ClassifyRequest(sreq.is_read, req.value_size_hint);
  sreq.cpu_cost_ru = std::max(0.1, req.estimated_ru);
  double total_quota = total_partition_quota_;
  sreq.quota_share =
      total_quota > 0 ? rep->partition_quota_ru / total_quota : 1.0;
  sreq.quota_share = std::max(sreq.quota_share, 1e-6);
  // Cache-key hash for the batched scheduler's flush-on-repeated-key
  // rule and the node-cache probes; writes flush unconditionally, so
  // only reads need it. Continuing the replica's precomputed prefix
  // state over the client key equals HashString(CacheKeyFor(req)).
  if (sreq.is_read) {
    sreq.key_hash = Fnv1a64Continue(rep->cache_prefix_hash, req.key);
  }

  uint32_t slot;
  if (!pending_free_.empty()) {
    slot = pending_free_.back();
    pending_free_.pop_back();
  } else {
    slot = static_cast<uint32_t>(pending_pool_.size());
    pending_pool_.emplace_back();
  }
  PendingContext& ctx = pending_pool_[slot];
  ctx.active = true;
  // Field-assign into the recycled slot: string copy-assignment reuses
  // the slot's capacity, and the caller's request keeps its own.
  ctx.req.req_id = req.req_id;
  ctx.req.tenant = req.tenant;
  ctx.req.partition = req.partition;
  ctx.req.op = req.op;
  ctx.req.key = req.key;
  ctx.req.field = req.field;
  ctx.req.value = req.value;
  ctx.req.ttl = req.ttl;
  ctx.req.scan_limit = req.scan_limit;
  ctx.req.issued_at = req.issued_at;
  ctx.req.estimated_ru = req.estimated_ru;
  ctx.req.value_size_hint = req.value_size_hint;
  ctx.req.background_refresh = req.background_refresh;
  ctx.req.replicas = req.replicas;
  ctx.req.consistency = req.consistency;
  ctx.admitted_at = clock_->NowMicros();
  ctx.wait_ticks = 0;
  ctx.probed = false;
  ctx.probe_status = Status::OK();
  ctx.probe_value.clear();
  ctx.probe_hash_fields = 0;
  ctx.probe_scan_entries = 0;
  ctx.probe_io = storage::ReadIo{};
  pending_live_++;
  sreq.pending_slot = slot;
  wfq_.Enqueue(sreq);
}

sched::CacheProbe DataNode::ProbeRequest(const sched::SchedRequest& sreq) {
  sched::CacheProbe probe;
  PendingContext* pit = PendingAt(sreq);
  if (pit == nullptr) {
    // Timed out of the queue before the scheduler reached it.
    probe.canceled = true;
    return probe;
  }
  PendingContext& ctx = *pit;
  const NodeRequest& req = ctx.req;

  if (!IsReadOp(req.op)) {
    // Writes are absorbed by the WAL + memtable (CPU layer); flush and
    // compaction I/O is charged to the disk as background load below, in
    // ExecuteOnEngine.
    probe.hit = false;
    probe.needs_io = false;
    return probe;
  }

  // SCAN: run the merge iterator now (probe-at-schedule time, like point
  // reads) and frame the result into the slab slot. Scans bypass the
  // node's point cache — a range result is not addressable by one cache
  // key, and the proxy's prefix-tree store is the scan-caching layer.
  if (req.op == OpType::kScan) {
    PartitionReplica& rep = *FindReplica(req.tenant, req.partition);
    scan_buffer_.Clear();
    storage::ScanResult res = rep.engine->ScanRange(
        req.key, req.field, req.scan_limit, scan_buffer_);
    ctx.probe_status = Status::OK();
    ctx.probe_value.clear();
    for (size_t k = 0; k < scan_buffer_.size(); k++) {
      AppendScanEntry(ctx.probe_value, scan_buffer_[k].key,
                      scan_buffer_[k].value);
    }
    ctx.probe_scan_entries = res.entries;
    ctx.probed = true;
    ctx.probe_io = storage::ReadIo{};
    ctx.probe_io.block_reads = res.block_reads;
    probe.hit = false;
    probe.needs_io = res.block_reads > 0;
    probe.io_blocks = std::max(res.block_reads, 0);
    return probe;
  }

  // Reads: DataNode cache first (GET and HGETALL payloads are cached).
  // The hit's value and TTL are retained so completion reuses them.
  if (req.op == OpType::kGet || req.op == OpType::kHGetAll) {
    Micros expire_at = 0;
    // sreq.key_hash was prefix-continued at Submit; the probe skips
    // re-hashing the cache key and only builds it for collision compare.
    if (const std::string* v =
            cache_.GetRefHashed(sreq.key_hash, CacheKeyFor(req), &expire_at)) {
      ctx.probed = true;
      ctx.probe_status = Status::OK();
      ctx.probe_value.assign(*v);  // Reuses the slab slot's capacity.
      ctx.probe_io.expire_at = expire_at;
      probe.hit = true;
      probe.needs_io = false;
      return probe;
    }
  }

  // Cache miss: execute the engine read now to learn the I/O footprint,
  // and retain the outcome so completion does not re-execute it. The
  // I/O-WFQ stage then models the disk service for the blocks read.
  storage::ReadIo io;
  PartitionReplica& rep = *FindReplica(req.tenant, req.partition);
  switch (req.op) {
    case OpType::kGet: {
      auto r = rep.engine->Get(req.key, &io);
      ctx.probe_status = r.ok() ? Status::OK() : r.status();
      if (r.ok()) ctx.probe_value = std::move(r).value();
      break;
    }
    case OpType::kHGet: {
      auto r = rep.engine->HGet(req.key, req.field, &io);
      ctx.probe_status = r.ok() ? Status::OK() : r.status();
      if (r.ok()) ctx.probe_value = std::move(r).value();
      break;
    }
    case OpType::kHLen: {
      auto r = rep.engine->HLen(req.key, &io);
      ctx.probe_status = r.ok() ? Status::OK() : r.status();
      if (r.ok()) {
        ctx.probe_value = std::to_string(r.value());
        ctx.probe_hash_fields = r.value();
      }
      break;
    }
    case OpType::kHGetAll: {
      auto r = rep.engine->HGetAll(req.key, &io);
      ctx.probe_status = r.ok() ? Status::OK() : r.status();
      if (r.ok()) {
        ctx.probe_hash_fields = r.value().size();
        ctx.probe_value = SerializeHash(r.value());
      }
      break;
    }
    default:
      break;
  }
  ctx.probed = true;
  ctx.probe_io = io;
  probe.hit = false;
  probe.needs_io = io.block_reads > 0;
  probe.io_blocks = std::max(io.block_reads, 0);
  return probe;
}

void DataNode::ProbeBatch(const sched::SchedRequest* reqs, size_t n,
                          sched::CacheProbe* out) {
  // Singletons (every write, and any lone read) take the serial path —
  // identical by construction and skips the grouping scratch.
  if (n == 1) {
    out[0] = ProbeRequest(reqs[0]);
    return;
  }

  // Pass 1 in pop order: node-cache probes (cache reads must observe pop
  // order, matching the serial path); misses queue for the engine pass.
  batch_miss_.clear();
  for (size_t i = 0; i < n; i++) {
    out[i] = sched::CacheProbe{};
    PendingContext* pit = PendingAt(reqs[i]);
    if (pit == nullptr) {
      // The scheduler cancel-checks at pop time; defensive all the same.
      out[i].canceled = true;
      continue;
    }
    PendingContext& ctx = *pit;
    const NodeRequest& req = ctx.req;
    if (!IsReadOp(req.op) || req.op == OpType::kScan) {
      // Writes arrive as singleton batches (defensive fall-through);
      // scans run their merge iterator in the serial probe — MultiFind's
      // point-key grouping below does not apply to a range.
      out[i] = ProbeRequest(reqs[i]);
      continue;
    }
    if (req.op == OpType::kGet || req.op == OpType::kHGetAll) {
      Micros expire_at = 0;
      if (const std::string* v = cache_.GetRefHashed(
              reqs[i].key_hash, CacheKeyFor(req), &expire_at)) {
        ctx.probed = true;
        ctx.probe_status = Status::OK();
        ctx.probe_value.assign(*v);
        ctx.probe_io.expire_at = expire_at;
        out[i].hit = true;
        out[i].needs_io = false;
        continue;
      }
    }
    batch_miss_.push_back(static_cast<uint32_t>(i));
  }
  if (batch_miss_.empty()) return;

  // Pass 2: group misses by hosting replica and resolve each group with
  // one MultiFind. Ordering within the pass is immaterial — engine reads
  // mutate no data state and each request only touches its own slab
  // slot — but grouping by replica key keeps the walk deterministic.
  std::stable_sort(batch_miss_.begin(), batch_miss_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return ReplicaKey(reqs[a].tenant, reqs[a].partition) <
                            ReplicaKey(reqs[b].tenant, reqs[b].partition);
                   });
  constexpr size_t kMaxBatch = 64;  // WFQ flushes reads well below this.
  std::string_view keys[kMaxBatch];
  const storage::ValueEntry* entries[kMaxBatch];
  storage::ReadIo ios[kMaxBatch];
  size_t g = 0;
  while (g < batch_miss_.size()) {
    const uint64_t gkey =
        ReplicaKey(reqs[batch_miss_[g]].tenant, reqs[batch_miss_[g]].partition);
    size_t ge = g + 1;
    while (ge < batch_miss_.size() &&
           ReplicaKey(reqs[batch_miss_[ge]].tenant,
                      reqs[batch_miss_[ge]].partition) == gkey &&
           ge - g < kMaxBatch) {
      ge++;
    }
    PartitionReplica& rep = *FindReplica(reqs[batch_miss_[g]].tenant,
                                         reqs[batch_miss_[g]].partition);
    for (size_t k = g; k < ge; k++) {
      keys[k - g] = PendingAt(reqs[batch_miss_[k]])->req.key;
    }
    rep.engine->MultiFind(keys, ge - g, entries, ios);
    for (size_t k = g; k < ge; k++) {
      const uint32_t i = batch_miss_[k];
      PendingContext& ctx = *PendingAt(reqs[i]);
      const NodeRequest& req = ctx.req;
      const storage::ValueEntry* e = entries[k - g];
      // Per-op extraction mirroring the engine's Get/HGet/HLen/HGetAll
      // wrappers around FindEntry (same Status messages included).
      switch (req.op) {
        case OpType::kGet:
          if (e == nullptr || e->type != storage::ValueType::kString) {
            ctx.probe_status = Status::NotFound("key absent");
          } else {
            ctx.probe_status = Status::OK();
            ctx.probe_value.assign(e->str);
          }
          break;
        case OpType::kHGet:
          if (e == nullptr || e->type != storage::ValueType::kHash) {
            ctx.probe_status = Status::NotFound("hash absent");
          } else if (const std::string* v =
                         storage::FindField(e->hash, req.field)) {
            ctx.probe_status = Status::OK();
            ctx.probe_value.assign(*v);
          } else {
            ctx.probe_status = Status::NotFound("field absent");
          }
          break;
        case OpType::kHLen:
          if (e == nullptr || e->type != storage::ValueType::kHash) {
            ctx.probe_status = Status::NotFound("hash absent");
          } else {
            ctx.probe_status = Status::OK();
            ctx.probe_value = std::to_string(e->hash.size());
            ctx.probe_hash_fields = e->hash.size();
          }
          break;
        case OpType::kHGetAll:
          if (e == nullptr || e->type != storage::ValueType::kHash) {
            ctx.probe_status = Status::NotFound("hash absent");
          } else {
            ctx.probe_status = Status::OK();
            ctx.probe_hash_fields = e->hash.size();
            ctx.probe_value = SerializeHash(e->hash);
          }
          break;
        default:
          break;
      }
      ctx.probed = true;
      ctx.probe_io = ios[k - g];
      out[i].hit = false;
      out[i].needs_io = ios[k - g].block_reads > 0;
      out[i].io_blocks = std::max(ios[k - g].block_reads, 0);
    }
    g = ge;
  }
}

NodeResponse DataNode::ExecuteOnEngine(PendingContext& ctx,
                                       PartitionReplica& rep,
                                       ServedBy served_by,
                                       Micros extra_latency) {
  const NodeRequest& req = ctx.req;
  NodeResponse resp;
  resp.req_id = req.req_id;
  resp.tenant = req.tenant;
  resp.partition = req.partition;
  resp.op = req.op;
  resp.key = req.key;
  resp.background_refresh = req.background_refresh;
  resp.from_primary = rep.is_primary;
  resp.replica_applied_seq = rep.engine->applied_seq();

  // Scratch-backed: nothing below re-enters CacheKeyFor, so the
  // reference stays valid across the cache_ calls. The hash continues
  // the replica's precomputed prefix state == HashString(cache_key).
  const std::string& cache_key = CacheKeyFor(req);
  const uint64_t ck_hash = Fnv1a64Continue(rep.cache_prefix_hash, req.key);
  uint64_t flushed_before = rep.engine->stats().flushed_bytes +
                            rep.engine->stats().compaction_write_bytes;

  bool cache_hit = served_by == ServedBy::kNodeCache;
  switch (req.op) {
    case OpType::kGet: {
      resp.status = ctx.probe_status;
      resp.value = std::move(ctx.probe_value);
      if (!cache_hit && resp.status.ok()) {
        cache_.PutHashed(ck_hash, cache_key, resp.value, resp.value.size() + 32,
                   ctx.probe_io.expire_at);
      }
      resp.value_bytes = resp.value.size();
      resp.actual_ru =
          ru::ActualReadCharge(resp.value_bytes, cache_hit, ru_model_.options());
      break;
    }
    case OpType::kHGet: {
      resp.status = ctx.probe_status;
      resp.value = std::move(ctx.probe_value);
      resp.value_bytes = resp.value.size();
      resp.actual_ru =
          ru::ActualReadCharge(resp.value_bytes, cache_hit, ru_model_.options());
      break;
    }
    case OpType::kHLen: {
      resp.status = ctx.probe_status;
      resp.value = std::move(ctx.probe_value);
      resp.value_bytes = 8;
      resp.actual_ru = 1.0;  // Metadata-only cost (Section 4.1).
      break;
    }
    case OpType::kHGetAll: {
      resp.status = ctx.probe_status;
      resp.value = std::move(ctx.probe_value);
      if (!cache_hit && resp.status.ok()) {
        cache_.PutHashed(ck_hash, cache_key, resp.value, resp.value.size() + 32,
                   ctx.probe_io.expire_at);
        ru_model_.RecordHashShape(ctx.probe_hash_fields, resp.value.size());
      }
      resp.value_bytes = resp.value.size();
      // HGETALL = HLen stage + scan stage.
      resp.actual_ru = 1.0 + ru::ActualReadCharge(resp.value_bytes, cache_hit,
                                                  ru_model_.options());
      break;
    }
    case OpType::kSet: {
      resp.status = rep.engine->Put(req.key, req.value, req.ttl);
      resp.value_bytes = req.value.size();
      resp.actual_ru = ru::ActualWriteCharge(resp.value_bytes,
                                             req.replicas,
                                             ru_model_.options());
      // Write-through: the node cache carries the new value so hot
      // read-after-write keys keep hitting.
      if (resp.status.ok()) {
        Micros expire_at = req.ttl > 0 ? clock_->NowMicros() + req.ttl : 0;
        cache_.PutHashed(ck_hash, cache_key, req.value, req.value.size() + 32, expire_at);
      } else {
        cache_.EraseHashed(ck_hash, cache_key);
      }
      break;
    }
    case OpType::kDel: {
      resp.status = rep.engine->Delete(req.key);
      resp.value_bytes = req.key.size();
      resp.actual_ru = ru::ActualWriteCharge(resp.value_bytes,
                                             req.replicas,
                                             ru_model_.options());
      cache_.EraseHashed(ck_hash, cache_key);
      break;
    }
    case OpType::kHSet: {
      resp.status = rep.engine->HSet(req.key, req.field, req.value);
      resp.value_bytes = req.field.size() + req.value.size();
      resp.actual_ru = ru::ActualWriteCharge(resp.value_bytes,
                                             req.replicas,
                                             ru_model_.options());
      cache_.EraseHashed(ck_hash, cache_key);
      break;
    }
    case OpType::kExpire: {
      resp.status = rep.engine->Expire(req.key, req.ttl);
      resp.value_bytes = 8;
      resp.actual_ru = 1.0;
      break;
    }
    case OpType::kScan: {
      // The probe already ran the merge iterator and framed the result.
      resp.status = ctx.probe_status;
      resp.value = std::move(ctx.probe_value);
      resp.value_bytes = resp.value.size();
      resp.scan_entries = ctx.probe_scan_entries;
      resp.actual_ru = ru::ActualScanCharge(
          ctx.probe_scan_entries, resp.value_bytes, ru_model_.options());
      break;
    }
  }

  // Background flush/compaction writes triggered by this operation are
  // charged to the disk (they congest it) but not to this request's
  // latency.
  uint64_t flushed_after = rep.engine->stats().flushed_bytes +
                           rep.engine->stats().compaction_write_bytes;
  if (flushed_after > flushed_before) {
    int blocks = static_cast<int>(
        (flushed_after - flushed_before + kDiskBlockBytes - 1) /
        kDiskBlockBytes);
    disk_.ChargeWrite(blocks);
  }

  resp.served_by = cache_hit ? ServedBy::kNodeCache : served_by;
  if (IsReadOp(req.op) && ctx.probed && ctx.probe_io.expire_at > 0) {
    Micros remaining = ctx.probe_io.expire_at - clock_->NowMicros();
    resp.ttl_remaining = remaining > 0 ? remaining : 1;
  }

  // Settle the difference between the admission estimate and the actual
  // charge against the partition's bucket.
  rep.quota->SettleActual(req.estimated_ru, resp.actual_ru);
  AddTenantRu(req.tenant, resp.actual_ru);
  rep.ru_this_tick += resp.actual_ru;
  if (!rep.ewma_listed) {
    rep.ewma_listed = true;
    ewma_active_.push_back(ReplicaKey(req.tenant, req.partition));
  }

  // Latency: base CPU service inflated by an M/M/1-style queueing factor
  // at high CPU utilization, plus whole ticks spent deferred (backlog)
  // and any disk service time. Sub-millisecond at light load; tens of
  // milliseconds near saturation; seconds only once the node is
  // genuinely backlogged across ticks.
  //
  // With the sampled service-time model enabled (latency subsystem), the
  // fixed base is replaced by a stateless per-request draw — a pure hash
  // of (seed, node, tenant, req_id), so the value is identical whichever
  // worker runs this node's tick — and the whole node-side latency is
  // scaled by the gray-failure degradation factor.
  double util = std::min(0.98, tick_stats_.wfq.cpu_ru_used /
                                   std::max(1.0, options_.wfq.cpu_budget_ru));
  Micros queueing = static_cast<Micros>(
      static_cast<double>(options_.cpu_service_micros) * 2.0 * util /
      (1.0 - util));
  Micros base = options_.cpu_service_micros;
  if (service_model_.enabled()) {
    base = service_model_.Sample(
        MixSeed(static_cast<uint64_t>(id_), req.tenant), req.req_id);
  }
  Micros latency = base + queueing +
                   static_cast<Micros>(ctx.wait_ticks) * kMicrosPerSecond +
                   extra_latency;
  if (service_degradation_ != 1.0) {
    latency = static_cast<Micros>(
        static_cast<double>(latency) * service_degradation_);
  }
  resp.latency = latency;
  return resp;
}

void DataNode::CompleteRequest(const sched::SchedRequest& sreq,
                               sched::SchedOutcome outcome) {
  PendingContext* pit = PendingAt(sreq);
  if (pit == nullptr) return;
  PendingContext& ctx = *pit;
  PartitionReplica& rep = *FindReplica(ctx.req.tenant, ctx.req.partition);

  ServedBy served_by = ServedBy::kNodeCpu;
  Micros extra_latency = 0;
  switch (outcome) {
    case sched::SchedOutcome::kServedFromCache:
      served_by = ServedBy::kNodeCache;
      tick_stats_.cache_hits++;
      break;
    case sched::SchedOutcome::kServedFromCpu:
      served_by = ServedBy::kNodeCpu;
      break;
    case sched::SchedOutcome::kServedFromDisk:
      served_by = ServedBy::kDisk;
      extra_latency = disk_.ChargeRead(std::max(1, sreq.io_blocks));
      tick_stats_.disk_served++;
      break;
    case sched::SchedOutcome::kDeferred:
      return;  // Still queued; not completed this tick.
  }

  NodeResponse resp = ExecuteOnEngine(ctx, rep, served_by, extra_latency);
  tick_stats_.completed++;
  tick_stats_.cpu_ru_used += resp.actual_ru;
  responses_.push_back(std::move(resp));
  ReleasePending(sreq.pending_slot);
}

void DataNode::Tick() {
  if (state_ != NodeState::kAlive) {
    // A dead (or still catching-up) node schedules nothing. Submit-path
    // rejections already sit in responses_ for the caller to drain.
    last_tick_tenant_ru_.clear();
    return;
  }
  disk_.ResetWindow();

  // CPU burned on rejections shrinks the WFQ's budget this tick.
  sched::DualWfqOptions wfq_opts = options_.wfq;
  wfq_opts.cpu_budget_ru = std::max(
      options_.wfq.cpu_budget_ru * 0.05,
      options_.wfq.cpu_budget_ru - pending_reject_ru_);
  tick_stats_.reject_cpu_ru = pending_reject_ru_;
  pending_reject_ru_ = 0;
  wfq_.set_options(wfq_opts);

  tick_stats_.wfq = wfq_.RunTick(
      [this](const sched::SchedRequest* reqs, size_t n,
             sched::CacheProbe* out) { ProbeBatch(reqs, n, out); },
      [this](const sched::SchedRequest& r) { return PendingAt(r) == nullptr; },
      [this](const sched::SchedRequest& r, sched::SchedOutcome o) {
        CompleteRequest(r, o);
      });

  // Anything still pending waited a full tick; requests beyond the queue
  // deadline fail now (their WFQ entries are lazily discarded when the
  // scheduler reaches them). Expired ids are emitted in req_id order:
  // slab order depends on free-list recycling, and response order feeds
  // downstream metric accumulation — sorting keeps same-seed runs
  // bit-identical regardless of slot reuse history. With nothing live the
  // whole sweep is a no-op — skip the slab walk (the slab keeps its
  // high-water capacity long after a burst drains).
  if (pending_live_ > 0) {
    auto& expired = expired_scratch_;
    expired.clear();
    for (uint32_t i = 0; i < pending_pool_.size(); ++i) {
      PendingContext& ctx = pending_pool_[i];
      if (!ctx.active) continue;
      ctx.wait_ticks++;
      if (ctx.wait_ticks > options_.queue_timeout_ticks) {
        expired.emplace_back(ctx.req.req_id, i);
      }
    }
    std::sort(expired.begin(), expired.end());
    for (auto [req_id, slot] : expired) {
      PendingContext& ctx = pending_pool_[slot];
      responses_.push_back(MakeRejection(
          ctx.req, Status::ResourceExhausted("queue deadline exceeded"),
          static_cast<Micros>(ctx.wait_ticks) * kMicrosPerSecond));
      ReleasePending(slot);
    }
  }

  // Fold per-replica tick RU into the EWMA the rescheduler reads. Only
  // replicas with nonzero state are listed; for every other replica the
  // fold is 0.2*0 + 0.8*0 == 0 exactly, so skipping it is bit-identical.
  // A decaying rate underflows to exactly 0 after a few thousand idle
  // ticks and the replica drops off the list. Fold order across replicas
  // does not matter: each fold touches only its own replica.
  constexpr double kRuEwmaAlpha = 0.2;
  size_t kept = 0;
  for (size_t i = 0; i < ewma_active_.size(); ++i) {
    PartitionReplica** slot = replica_index_.Find(ewma_active_[i]);
    if (slot == nullptr) continue;  // Replica removed while listed.
    PartitionReplica& rep = **slot;
    rep.ru_rate = kRuEwmaAlpha * rep.ru_this_tick +
                  (1 - kRuEwmaAlpha) * rep.ru_rate;
    rep.ru_this_tick = 0;
    if (rep.ru_rate != 0) {
      ewma_active_[kept++] = ewma_active_[i];
    } else {
      rep.ewma_listed = false;
    }
  }
  ewma_active_.resize(kept);

  // Publish the tick's tenant ledger sorted by tenant (the order the old
  // std::map exposed) and recycle the buffers for the next tick.
  last_tick_tenant_ru_.swap(tenant_ru_this_tick_);
  std::sort(last_tick_tenant_ru_.begin(), last_tick_tenant_ru_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  tenant_ru_this_tick_.clear();
  tenant_ru_slot_.Clear();
}

void DataNode::AddTenantRu(TenantId tenant, double ru) {
  uint32_t* slot = tenant_ru_slot_.Find(tenant);
  if (slot == nullptr) {
    uint32_t idx = static_cast<uint32_t>(tenant_ru_this_tick_.size());
    tenant_ru_this_tick_.emplace_back(tenant, 0.0);
    tenant_ru_slot_[tenant] = idx;
    tenant_ru_this_tick_[idx].second += ru;
    return;
  }
  tenant_ru_this_tick_[*slot].second += ru;
}

std::vector<NodeResponse> DataNode::TakeResponses() {
  std::vector<NodeResponse> out;
  out.swap(responses_);
  return out;
}

void DataNode::DrainResponsesInto(std::vector<NodeResponse>& out) {
  if (responses_.empty()) return;
  out.insert(out.end(), std::make_move_iterator(responses_.begin()),
             std::make_move_iterator(responses_.end()));
  responses_.clear();
}

NodeTickStats DataNode::TakeTickStats() {
  NodeTickStats out = tick_stats_;
  tick_stats_ = NodeTickStats{};
  return out;
}

}  // namespace node
}  // namespace abase
