// Limited fan-out hash routing — paper Section 4.4 (client side).
//
// A tenant's N proxies are divided into n ProxyGroups. Each request is
// hashed by key to one group, then sent to a random proxy inside that
// group. Every proxy therefore sees 1/n of the key space: larger n gives
// each proxy a denser view of its keys (higher cache hit ratio); smaller n
// spreads a hot key across more proxies (N/n of them), relieving hot-key
// pressure. n tunes that trade-off.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

#include "common/hash.h"
#include "common/rng.h"
#include "common/types.h"

namespace abase {
namespace proxy {

/// Routing policy for a tenant's proxy fleet.
enum class RoutingMode {
  kRandom,         ///< Baseline: uniform random proxy (no key affinity).
  kLimitedFanout,  ///< Paper: hash to a group, random proxy within it.
  kFullHash,       ///< n == N: one proxy per key (max hit ratio, max
                   ///< hot-key concentration).
};

/// Stateless router from key to proxy index for one tenant.
class LimitedFanoutRouter {
 public:
  /// `num_proxies` = N, `num_groups` = n (clamped into [1, N]).
  LimitedFanoutRouter(uint32_t num_proxies, uint32_t num_groups,
                      RoutingMode mode = RoutingMode::kLimitedFanout)
      : num_proxies_(num_proxies),
        num_groups_(num_groups == 0 ? 1 : num_groups),
        mode_(mode) {
    assert(num_proxies_ >= 1);
    if (num_groups_ > num_proxies_) num_groups_ = num_proxies_;
    if (mode_ == RoutingMode::kFullHash) num_groups_ = num_proxies_;
  }

  /// Picks the destination proxy for `key`.
  ProxyId Route(std::string_view key, Rng& rng) const {
    if (mode_ == RoutingMode::kRandom) {
      return static_cast<ProxyId>(rng.NextUint64(num_proxies_));
    }
    return RouteHashed(Fnv1a64(key), rng);
  }

  /// Route with a caller-computed Fnv1a64(key). Identical decision (and
  /// RNG draw sequence) to Route: kRandom mode never consults the hash.
  ProxyId RouteHashed(uint64_t key_hash, Rng& rng) const {
    if (mode_ == RoutingMode::kRandom) {
      return static_cast<ProxyId>(rng.NextUint64(num_proxies_));
    }
    uint32_t group = static_cast<uint32_t>(key_hash % num_groups_);
    // Proxies are striped across groups: group g owns proxies
    // {g, g+n, g+2n, ...}, so group sizes differ by at most one.
    uint32_t group_size = GroupSize(group);
    uint32_t member = static_cast<uint32_t>(rng.NextUint64(group_size));
    return static_cast<ProxyId>(group + member * num_groups_);
  }

  /// Number of proxies a single key's traffic can reach (hot-key spread).
  uint32_t FanoutPerKey() const {
    return mode_ == RoutingMode::kRandom ? num_proxies_ : GroupSize(0);
  }

  uint32_t num_proxies() const { return num_proxies_; }
  uint32_t num_groups() const { return num_groups_; }
  RoutingMode mode() const { return mode_; }

 private:
  uint32_t GroupSize(uint32_t group) const {
    // Striped layout: groups with index < (N mod n) hold one extra proxy.
    uint32_t base = num_proxies_ / num_groups_;
    uint32_t extra = num_proxies_ % num_groups_;
    return base + (group < extra ? 1 : 0);
  }

  uint32_t num_proxies_;
  uint32_t num_groups_;
  RoutingMode mode_;
};

}  // namespace proxy
}  // namespace abase
