#include "proxy/proxy.h"

#include <cassert>
#include <utility>

#include "common/hash.h"
#include "common/keyspace.h"

namespace abase {
namespace proxy {

Proxy::Proxy(ProxyId id, TenantId tenant, double proxy_quota_ru,
             ProxyOptions options, const Clock* clock,
             std::function<PartitionId(const std::string&)> partition_of)
    : id_(id),
      tenant_(tenant),
      options_(options),
      clock_(clock),
      partition_of_(std::move(partition_of)),
      cache_(options.cache, clock),
      quota_(proxy_quota_ru, clock),
      ru_(options.ru),
      cache_enabled_(options.cache_enabled),
      quota_enabled_(options.quota_enabled) {
  assert(clock_ != nullptr);
}

double Proxy::EstimateRu(const ClientRequest& req) const {
  switch (req.op) {
    case OpType::kSet:
      return ru_.WriteRu(req.value.size(), options_.replicas);
    case OpType::kHSet:
      return ru_.WriteRu(req.field.size() + req.value.size(),
                         options_.replicas);
    case OpType::kDel:
      return ru_.WriteRu(req.key.size(), options_.replicas);
    case OpType::kExpire:
      return 1.0;
    case OpType::kGet:
    case OpType::kHGet:
      return ru_.EstimateReadRu();
    case OpType::kHLen:
      return ru_.EstimateHLenRu();
    case OpType::kHGetAll:
      return ru_.EstimateHGetAllRu();
    case OpType::kScan:
      return ru_.EstimateScanRu(req.scan_limit);
  }
  return 1.0;
}

ProxyHandleResult Proxy::Handle(const ClientRequest& req) {
  return Handle(req, Fnv1a64(req.key));
}

ProxyHandleResult Proxy::Handle(const ClientRequest& req, uint64_t key_hash) {
  ProxyHandleResult out;
  out.action = HandleInto(req, key_hash, out.forward, out);
  return out;
}

ProxyHandleResult::Action Proxy::HandleInto(const ClientRequest& req,
                                            uint64_t key_hash,
                                            NodeRequest& fwd,
                                            ProxyHandleResult& local) {
  stats_.requests++;

  // 1. Proxy cache: hits return immediately — no throttling, no charge
  //    (Section 4.1: "requests that hit the proxy cache are directly
  //    returned without throttling or charges").
  // A proxy belongs to exactly one tenant, so the client key is the
  // cache key as-is — no tenant-prefixed copy to build per lookup.
  if (cache_enabled_ && req.op == OpType::kGet) {
    cache::AuLookup lk = cache_.GetHashed(key_hash, req.key);
    if (lk.hit) {
      stats_.cache_hits++;
      local.value_bytes = lk.value->size();
      // Only tracked requests ever read the payload downstream; bulk
      // traffic needs just the size, so skip the per-hit copy.
      if (req.track_outcome) local.value = *lk.value;
      local.latency = options_.cache_hit_latency;
      return ProxyHandleResult::Action::kServedFromCache;
    }
  }
  // Prefix-shaped scans (end == PrefixUpperBound(start)) can be served
  // from the content store's scan payloads — saving an entire
  // cross-partition fan-out, not just one point read. Arbitrary
  // [start, end) ranges are not cached: their result is not addressable
  // by a tree prefix.
  if (cache_enabled_ && req.op == OpType::kScan &&
      req.field == PrefixUpperBound(req.key)) {
    cache::AuLookup lk = cache_.GetScan(req.key, req.scan_limit);
    if (lk.hit) {
      stats_.cache_hits++;
      local.value_bytes = lk.value->size();
      if (req.track_outcome) local.value = *lk.value;
      local.latency = options_.cache_hit_latency;
      return ProxyHandleResult::Action::kServedFromCache;
    }
  }

  // 2. Proxy quota: block excess traffic here, before it can consume
  //    shared DataNode resources.
  double estimate = EstimateRu(req);
  if (quota_enabled_ && !quota_.TryAdmit(estimate)) {
    stats_.throttled++;
    local.latency = options_.cache_hit_latency;  // Fast local rejection.
    return ProxyHandleResult::Action::kThrottled;
  }
  stats_.admitted_ru += estimate;
  admitted_since_report_ += estimate;

  // 3. Forward to the data plane. `fwd` may be a recycled slot: every
  //    field is (re)assigned — strings by copy-assignment, which reuses
  //    the slot's capacity instead of allocating.
  stats_.forwarded++;
  fwd.req_id = req.req_id;
  fwd.tenant = req.tenant;
  fwd.partition = partition_of_hashed_ ? partition_of_hashed_(key_hash)
                                       : partition_of_(req.key);
  fwd.op = req.op;
  fwd.key = req.key;
  fwd.field = req.field;
  fwd.value = req.value;
  fwd.ttl = req.ttl;
  fwd.scan_limit = req.scan_limit;
  fwd.issued_at = req.issued_at;
  fwd.consistency = req.consistency;
  fwd.estimated_ru = estimate;
  fwd.value_size_hint = IsReadOp(req.op)
                            ? static_cast<uint64_t>(ru_.ExpectedReadBytes())
                            : req.value.size();
  fwd.background_refresh = false;
  fwd.replicas = options_.replicas;
  inflight_estimates_.Insert(req.req_id, estimate);
  return ProxyHandleResult::Action::kForward;
}

void Proxy::OnResponse(const NodeResponse& resp) {
  // Settle estimate vs. actual.
  if (double* est = inflight_estimates_.Find(resp.req_id)) {
    if (quota_enabled_ && resp.served_by != ServedBy::kRejected) {
      quota_.SettleActual(*est, resp.actual_ru);
    }
    inflight_estimates_.Erase(resp.req_id);
  }
  stats_.charged_ru += resp.actual_ru;

  // Update the cache-aware read estimators from data-plane outcomes.
  // Only genuine DataNode-cache hits count as hits: they are the
  // responses whose charge carried the cache discount. kNodeCpu covers
  // memtable/bloom-only reads, which are charged at full read cost.
  if (IsReadOp(resp.op) && resp.served_by != ServedBy::kRejected) {
    ru::ReadServedBy served = resp.served_by == ServedBy::kNodeCache
                                  ? ru::ReadServedBy::kDataNodeCache
                                  : ru::ReadServedBy::kDisk;
    if (resp.op == OpType::kGet || resp.op == OpType::kHGet) {
      ru_.ChargeRead(resp.value_bytes, served);
    } else if (resp.op == OpType::kHGetAll) {
      ru_.ChargeHGetAll(resp.value_bytes, served);
    } else if (resp.op == OpType::kScan && resp.status.ok()) {
      // Feed the per-entry size history behind EstimateScanRu.
      ru_.RecordScanShape(resp.scan_entries, resp.value_bytes);
    }
  }

  // Fill the proxy cache with successful GET payloads (including
  // background refreshes, which renew the TTL). A value with an engine
  // TTL may not be cached past its expiry. Replica-served (eventual)
  // reads never fill the cache: their payload may trail the primary by
  // the replication lag, and the cache also serves kPrimary reads —
  // caching a stale replica value would break read-your-writes.
  if (cache_enabled_ && resp.op == OpType::kGet && resp.status.ok() &&
      resp.from_primary) {
    Micros ttl = 0;  // Default TTL.
    if (resp.ttl_remaining > 0) {
      ttl = std::min(resp.ttl_remaining, options_.cache.default_ttl);
    }
    cache_.PutHashed(Fnv1a64(resp.key), resp.key, resp.value,
                     resp.value.size() + 32, ttl);
  }
}

void Proxy::FillScanCache(const std::string& prefix, uint32_t limit,
                          const std::string& framed) {
  if (!cache_enabled_) return;
  // Framed payloads carry per-entry headers; +64 approximates the tree
  // node and LRU bookkeeping, like +32 does for point entries.
  cache_.PutScan(prefix, limit, framed, framed.size() + 64, 0);
}

void Proxy::AbandonForward(uint64_t req_id) {
  double* est = inflight_estimates_.Find(req_id);
  if (est == nullptr) return;
  if (quota_enabled_) quota_.SettleActual(*est, 0.0);
  inflight_estimates_.Erase(req_id);
}

std::vector<NodeRequest> Proxy::TakeRefreshFetches() {
  std::vector<NodeRequest> out;
  if (!cache_enabled_) return out;
  for (std::string& key : cache_.TakeRefreshQueue()) {
    NodeRequest req;
    req.req_id = refresh_id_alloc_ ? refresh_id_alloc_() : refresh_req_id_++;
    req.tenant = tenant_;
    req.partition = partition_of_(key);
    req.op = OpType::kGet;
    req.key = std::move(key);
    req.issued_at = clock_->NowMicros();
    req.estimated_ru = ru_.EstimateReadRu();
    req.value_size_hint = static_cast<uint64_t>(ru_.ExpectedReadBytes());
    req.background_refresh = true;
    stats_.refresh_fetches++;
    out.push_back(std::move(req));
  }
  return out;
}

double Proxy::ReportAndResetAdmittedRu() {
  double out = admitted_since_report_;
  admitted_since_report_ = 0;
  return out;
}

}  // namespace proxy
}  // namespace abase
