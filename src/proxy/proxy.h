// Tenant proxy — paper Sections 3.2, 4.2 and 4.4.
//
// Each tenant owns a fleet of proxies. A proxy:
//  * serves point reads and prefix scans from its content store (free:
//    no quota charge, no data-plane traffic). The store is a prefix
//    tree with AU-LRU point semantics (cache/prefix_tree_store.h);
//  * enforces the proxy-level quota with 2x autonomous headroom,
//    rejecting excess traffic *before* it can reach shared DataNodes;
//  * estimates request RUs cache-awarely for admission control;
//  * actively refreshes hot cache entries that approach expiry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/au_lru.h"
#include "cache/prefix_tree_store.h"
#include "common/flat_map.h"
#include "common/clock.h"
#include "common/types.h"
#include "node/request.h"
#include "quota/quota.h"
#include "ru/request_unit.h"

namespace abase {
namespace proxy {

/// Per-proxy configuration.
struct ProxyOptions {
  cache::AuLruOptions cache;
  ru::RuOptions ru;
  bool cache_enabled = true;
  bool quota_enabled = true;
  Micros cache_hit_latency = 80;    ///< Client-visible proxy-hit latency.
  Micros forward_hop_latency = 120; ///< Added per data-plane round trip.
  int replicas = 3;                 ///< For write RU estimation.
};

/// Cumulative proxy counters.
struct ProxyStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t throttled = 0;
  uint64_t forwarded = 0;
  uint64_t refresh_fetches = 0;
  double admitted_ru = 0;  ///< Estimated RU admitted through the quota.
  double charged_ru = 0;   ///< Actual RU charged after settlement.
};

/// What the proxy decided to do with a client request.
struct ProxyHandleResult {
  enum class Action { kServedFromCache, kThrottled, kForward };
  Action action = Action::kForward;
  NodeRequest forward;  ///< Valid when action == kForward.
  /// Cache-hit payload, materialized only for tracked requests (bulk
  /// generated traffic drops the value unread; see value_bytes).
  std::string value;
  uint64_t value_bytes = 0;  ///< Cache-hit payload size, always set.
  Micros latency = 0;   ///< Client-visible latency for local outcomes.
};

/// One proxy instance.
class Proxy {
 public:
  /// `partition_of` maps a key to its partition (routing metadata pulled
  /// from the MetaServer).
  Proxy(ProxyId id, TenantId tenant, double proxy_quota_ru,
        ProxyOptions options, const Clock* clock,
        std::function<PartitionId(const std::string&)> partition_of);

  /// Handles one client request: cache → quota → forward.
  ProxyHandleResult Handle(const ClientRequest& req);

  /// Handle with a caller-computed Fnv1a64(req.key) (the hot path hashes
  /// each key once at generate time).
  ProxyHandleResult Handle(const ClientRequest& req, uint64_t key_hash);

  /// Zero-copy-forward variant: on kForward the node request is
  /// materialized into `fwd` — a recycled slot whose string capacity is
  /// reused by assignment (every field is overwritten, so stale slot
  /// contents never leak). On local outcomes `local` carries the payload
  /// size / value / latency and `fwd` is untouched.
  ProxyHandleResult::Action HandleInto(const ClientRequest& req,
                                       uint64_t key_hash, NodeRequest& fwd,
                                       ProxyHandleResult& local);

  /// Ingests a data-plane response: settles the quota against the actual
  /// charge, updates RU estimators, and fills the cache.
  void OnResponse(const NodeResponse& resp);

  /// Forgets a forwarded request that will never get a response (stranded
  /// on a failed node, or unroutable after a redirect chase): refunds the
  /// admitted RU estimate and drops the in-flight record. The RU
  /// estimators are untouched — no data-plane outcome was observed.
  void AbandonForward(uint64_t req_id);

  /// Background re-fetches for cache entries flagged by AU-LRU's active
  /// update. The caller forwards these to the data plane like normal
  /// requests (they are marked background_refresh).
  std::vector<NodeRequest> TakeRefreshFetches();

  /// Drops the cached value of `key` (write invalidation: the simulator
  /// broadcasts this to the tenant's proxies when a write is routed).
  /// The content store also drops every cached scan covering the key.
  void InvalidateCache(const std::string& key) { cache_.Erase(key); }

  /// InvalidateCache with a caller-computed HashString(key): the
  /// broadcast hashes once for the whole proxy fleet.
  void InvalidateCacheHashed(uint64_t hash, const std::string& key) {
    cache_.EraseHashed(hash, key);
  }

  /// Drops every cached entry under `prefix` — O(subtree), used for
  /// moved-key purges and migrations.
  void InvalidateCachePrefix(const std::string& prefix) {
    cache_.InvalidatePrefix(prefix);
  }

  /// Drops only cached scan results (split cutover: the partition set a
  /// scan was merged across changed, but no value moved or changed, so
  /// point entries stay valid).
  void InvalidateCachedScans() { cache_.InvalidateScans(); }

  /// Drops the whole content store (conservative full-flush cutover).
  void FlushCache() { cache_.Clear(); }

  /// Caches the framed payload of a completed prefix scan. Called by
  /// the settle merge, which knows the scan's prefix shape and limit
  /// (a NodeResponse does not carry them).
  void FillScanCache(const std::string& prefix, uint32_t limit,
                     const std::string& framed);

  // -- Control-plane hooks ---------------------------------------------------

  /// MetaServer clamp directive (asynchronous traffic control).
  void SetClamped(bool clamped) { quota_.SetClamped(clamped); }
  bool clamped() const { return quota_.clamped(); }

  /// Re-bases the per-proxy quota after tenant scaling.
  void SetBaseQuota(double proxy_quota_ru) {
    quota_.SetBaseQuota(proxy_quota_ru);
  }

  /// RU admitted since the last report (the MetaServer polls this).
  double ReportAndResetAdmittedRu();

  /// Installs the hashed partition-routing callback (key_hash ->
  /// partition). When set, Handle/HandleInto route forwards through it
  /// with the precomputed key hash instead of re-hashing the key string
  /// via `partition_of`. The two must agree: partition_of(key) ==
  /// partition_of_hashed(Fnv1a64(key)).
  void set_partition_of_hashed(std::function<PartitionId(uint64_t)> fn) {
    partition_of_hashed_ = std::move(fn);
  }

  /// Installs the id source for background refresh fetches. The cluster
  /// simulator wires this to its sim-wide counter: refresh ids key the
  /// shared in-flight table, so per-proxy counters would collide across
  /// proxies. Standalone proxies (unit tests) fall back to a private id
  /// space.
  void set_refresh_id_allocator(std::function<uint64_t()> alloc) {
    refresh_id_alloc_ = std::move(alloc);
  }

  // -- Introspection ----------------------------------------------------------

  ProxyId id() const { return id_; }
  TenantId tenant() const { return tenant_; }

  /// Availability zone this proxy instance runs in (latency subsystem:
  /// the node<->proxy hop pays the cross-AZ RTT class when the serving
  /// node lives in a different zone). Assigned by the deployment.
  uint32_t az() const { return az_; }
  void set_az(uint32_t az) { az_ = az; }

  const ProxyStats& stats() const { return stats_; }
  const cache::PrefixTreeStore& cache() const { return cache_; }
  const ru::RuEstimator& ru_estimator() const { return ru_; }
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  void set_quota_enabled(bool enabled) { quota_enabled_ = enabled; }

 private:
  double EstimateRu(const ClientRequest& req) const;

  ProxyId id_;
  TenantId tenant_;
  uint32_t az_ = 0;
  ProxyOptions options_;
  const Clock* clock_;
  std::function<PartitionId(const std::string&)> partition_of_;
  std::function<PartitionId(uint64_t)> partition_of_hashed_;
  cache::PrefixTreeStore cache_;
  quota::ProxyQuota quota_;
  ru::RuEstimator ru_;
  bool cache_enabled_;
  bool quota_enabled_;
  ProxyStats stats_;
  double admitted_since_report_ = 0;
  /// Estimates for in-flight forwards, keyed by req_id (for settlement).
  FlatMap64<double> inflight_estimates_;
  /// Sim-wide refresh id source (see set_refresh_id_allocator).
  std::function<uint64_t()> refresh_id_alloc_;
  uint64_t refresh_req_id_ = (1ull << 62);  ///< Standalone fallback space.
};

}  // namespace proxy
}  // namespace abase
