#include "meta/capacity_planner.h"

#include <algorithm>
#include <cmath>

namespace abase {
namespace meta {

const char* CapacityRuleName(CapacityViolation::Rule rule) {
  switch (rule) {
    case CapacityViolation::Rule::kPoolTooSmallForTenant:
      return "PoolTooSmallForTenant";
    case CapacityViolation::Rule::kInsufficientIdle:
      return "InsufficientIdle";
    case CapacityViolation::Rule::kTooManyTenants:
      return "TooManyTenants";
    case CapacityViolation::Rule::kPoolTooLarge:
      return "PoolTooLarge";
    case CapacityViolation::Rule::kInsufficientBurstHeadroom:
      return "InsufficientBurstHeadroom";
  }
  return "Unknown";
}

std::vector<CapacityViolation> CapacityPlanner::Audit(
    const PoolSnapshot& pool) const {
  std::vector<CapacityViolation> out;
  const double capacity = pool.TotalCapacity();
  const double max_quota = pool.MaxTenantQuota();
  const double idle = pool.IdleCapacity();

  if (max_quota > 0 && capacity < rules_.pool_to_tenant_ratio * max_quota) {
    out.push_back(
        {CapacityViolation::Rule::kPoolTooSmallForTenant,
         "pool capacity " + std::to_string(capacity) + " < " +
             std::to_string(rules_.pool_to_tenant_ratio) +
             "x largest tenant quota " + std::to_string(max_quota)});
  }
  if (capacity > 0 && idle < rules_.min_idle_fraction * capacity) {
    out.push_back({CapacityViolation::Rule::kInsufficientIdle,
                   "idle " + std::to_string(idle) + " < " +
                       std::to_string(rules_.min_idle_fraction * 100) +
                       "% of capacity " + std::to_string(capacity)});
  }
  if (pool.tenant_quotas_ru.size() > rules_.max_tenants_per_pool) {
    out.push_back({CapacityViolation::Rule::kTooManyTenants,
                   std::to_string(pool.tenant_quotas_ru.size()) +
                       " tenants > limit " +
                       std::to_string(rules_.max_tenants_per_pool)});
  }
  if (pool.node_count > rules_.max_nodes_per_pool) {
    out.push_back({CapacityViolation::Rule::kPoolTooLarge,
                   std::to_string(pool.node_count) + " nodes > limit " +
                       std::to_string(rules_.max_nodes_per_pool)});
  }
  if (max_quota > 0 && idle < rules_.burst_headroom_factor * max_quota) {
    out.push_back(
        {CapacityViolation::Rule::kInsufficientBurstHeadroom,
         "idle " + std::to_string(idle) + " cannot absorb a 2x burst of "
             "the largest tenant (quota " +
             std::to_string(max_quota) + ")"});
  }
  return out;
}

bool CapacityPlanner::CanAdmitTenant(const PoolSnapshot& pool,
                                     double quota_ru) const {
  PoolSnapshot next = pool;
  next.tenant_quotas_ru.push_back(quota_ru);
  return Audit(next).empty();
}

Result<size_t> CapacityPlanner::RequiredNodes(
    const std::vector<double>& tenant_quotas_ru,
    double node_capacity_ru) const {
  if (node_capacity_ru <= 0) {
    return Status::InvalidArgument("node capacity must be positive");
  }
  if (tenant_quotas_ru.size() > rules_.max_tenants_per_pool) {
    return Status::InvalidArgument("tenant count exceeds per-pool limit");
  }
  double allocated = 0, max_quota = 0;
  for (double q : tenant_quotas_ru) {
    allocated += q;
    max_quota = std::max(max_quota, q);
  }
  // Capacity must satisfy, simultaneously:
  //   C >= ratio * max_quota
  //   C >= allocated / (1 - idle_fraction)
  //   C >= allocated + headroom * max_quota
  double needed = std::max(
      {rules_.pool_to_tenant_ratio * max_quota,
       allocated / (1.0 - rules_.min_idle_fraction),
       allocated + rules_.burst_headroom_factor * max_quota});
  size_t nodes =
      static_cast<size_t>(std::ceil(needed / node_capacity_ru));
  nodes = std::max<size_t>(nodes, 1);
  if (nodes > rules_.max_nodes_per_pool) {
    return Status::ResourceExhausted(
        "tenant set requires more nodes than the pool-scale limit");
  }
  return nodes;
}

double CapacityPlanner::MaxAdmissibleTenantQuota(
    const PoolSnapshot& pool) const {
  const double capacity = pool.TotalCapacity();
  const double allocated = pool.AllocatedQuota();
  // q must satisfy:
  //   capacity >= ratio * q                      -> q <= capacity/ratio
  //   idle' = capacity - allocated - q >= idle_fraction * capacity
  //   idle' >= headroom * max(q, current_max)
  double by_ratio = capacity / rules_.pool_to_tenant_ratio;
  double by_idle =
      capacity * (1.0 - rules_.min_idle_fraction) - allocated;
  // Burst headroom, assuming the new tenant becomes the largest:
  //   capacity - allocated - q >= headroom * q
  double by_burst = (capacity - allocated) /
                    (1.0 + rules_.burst_headroom_factor);
  return std::max(0.0, std::min({by_ratio, by_idle, by_burst}));
}

}  // namespace meta
}  // namespace abase
