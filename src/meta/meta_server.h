// MetaServer — paper Section 3.2 (Control Plane) and Section 3.3
// (Recovery and Robustness).
//
// The centralized management component: global metadata (tenants,
// partitions, replica placement), key routing, pool health, parallel
// replica reconstruction after node failure, tenant quota scaling with
// partition split, and the asynchronous proxy-traffic clamp loop.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/types.h"
#include "node/data_node.h"
#include "quota/quota.h"

namespace abase {
namespace meta {

/// Static description of a tenant at creation time.
struct TenantConfig {
  TenantId id = 0;
  std::string name;
  double tenant_quota_ru = 10000;
  uint64_t storage_quota_bytes = 1ull << 30;
  uint32_t num_partitions = 4;
  uint32_t num_proxies = 4;
  uint32_t num_proxy_groups = 2;
  int replicas = 3;
  /// Partition quota upper bound: exceeding it triggers a split
  /// (Algorithm 1's UP).
  double partition_quota_upper = 50000;
  /// Partition quota floor kept after down-scaling (Algorithm 1's LOWER).
  double partition_quota_lower = 200;
  /// Per-tenant latency SLO target in micros: a settled client latency
  /// above it counts one violation toward the tenant's SLO burn rate
  /// (latency subsystem). 0 = use the cluster default
  /// (LatencyOptions::slo_target_micros).
  int64_t slo_target_micros = 0;
};

/// Placement of one partition: replica nodes; index 0 is the primary.
struct PartitionPlacement {
  std::vector<NodeId> replicas;
  NodeId primary() const {
    return replicas.empty() ? kInvalidNode : replicas[0];
  }
};

/// Live tenant metadata.
struct TenantMeta {
  TenantConfig config;
  PoolId pool = 0;
  double tenant_quota_ru = 0;  ///< Current (scaled) quota.
  std::vector<PartitionPlacement> partitions;
  quota::TenantTrafficMonitor monitor{0};
  Micros last_scale_down = -1;

  double PartitionQuota() const {
    return partitions.empty()
               ? tenant_quota_ru
               : tenant_quota_ru / static_cast<double>(partitions.size());
  }
};

/// One planned (or executed) replica rebuild after a node failure.
struct ReReplicationTarget {
  TenantId tenant = 0;
  PartitionId partition = 0;
  NodeId target = kInvalidNode;  ///< Surviving node receiving the copy.
  uint64_t bytes = 0;  ///< Partition state to copy (sizes the rebuild ticks).
};

/// Outcome of a node-failure recovery, contrasting the multi-tenant
/// parallel rebuild with a single-replacement-node rebuild (Section 3.3).
struct RecoveryReport {
  size_t replicas_rebuilt = 0;
  uint64_t bytes_rebuilt = 0;
  size_t parallel_sources = 0;
  double parallel_recovery_seconds = 0;  ///< N-node parallel rebuild.
  double single_node_recovery_seconds = 0;  ///< Classic replacement node.
  /// Partitions whose primary moved to a surviving replica (live
  /// failover path).
  size_t primaries_promoted = 0;
  /// Acknowledged writes the promoted replicas had not yet applied at
  /// promotion time (summed over promoted partitions): the lost-write
  /// window of an asynchronous-replication failover. 0 when the
  /// replication lag is 0.
  uint64_t lost_acked_writes = 0;
  /// Planned re-replication targets the Fault stage has executed so far
  /// (real partition state copied; incremented as rebuilds complete).
  size_t replicas_rebuilt_executed = 0;
  /// Where each lost replica is (re)built: executed placements for
  /// FailNode's permanent-loss rebuild, planned placements for
  /// PromoteFailover (the node may yet come back and catch up instead).
  std::vector<ReReplicationTarget> re_replication_targets;
};

/// Centralized control plane over a set of resource pools.
class MetaServer {
 public:
  explicit MetaServer(const Clock* clock);

  // -- Topology ---------------------------------------------------------------

  /// Registers a pool of DataNodes (non-owning pointers).
  PoolId CreatePool(std::vector<node::DataNode*> nodes);

  /// Adds a node to an existing pool (inter-pool rescheduling support).
  Status AddNodeToPool(PoolId pool, node::DataNode* node);
  Status RemoveNodeFromPool(PoolId pool, NodeId node);

  const std::vector<node::DataNode*>& PoolNodes(PoolId pool) const;

  /// Number of registered pools (pool ids are dense: 0..count-1).
  size_t PoolCount() const { return pools_.size(); }

  // -- Tenants ----------------------------------------------------------------

  /// Creates a tenant: places num_partitions x replicas across the pool
  /// (least-loaded placement, one replica per node per partition) and
  /// installs partition quotas on the hosting nodes.
  Status CreateTenant(const TenantConfig& config, PoolId pool);

  /// Striped O(replicas) initial placement for bulk tenant registration:
  /// CreateTenant puts replica r of partition p at pool index
  /// (tenant + p*replicas + r) mod pool size, advancing past nodes that
  /// are down or already host the partition, instead of scanning the
  /// whole pool for the least-loaded node. Million-tenant registration
  /// is quadratic without this. Splits, migrations, and failure
  /// recovery keep the least-loaded scan either way.
  void SetStripedPlacement(bool striped) { striped_placement_ = striped; }

  const TenantMeta* GetTenant(TenantId tenant) const;
  std::vector<TenantId> TenantIds() const;

  /// Hash-routes a key to its partition.
  PartitionId PartitionFor(TenantId tenant, std::string_view key) const;

  /// PartitionFor with a caller-computed Fnv1a64(key): the hot path
  /// hashes each key once at generate time and reuses it here.
  PartitionId PartitionForHashed(TenantId tenant, uint64_t key_hash) const;

  /// Primary node currently serving (tenant, partition).
  NodeId PrimaryFor(TenantId tenant, PartitionId partition) const;

  /// Monotonically increasing routing-table version. Bumped by every
  /// placement mutation (tenant creation, split, migration, failover
  /// promotion, failback, permanent-loss rebuild). Proxies cache routing
  /// tables stamped with this epoch and chase a redirect — refresh and
  /// retry — when a forward observes a stale one; they never consult the
  /// MetaServer per request.
  uint64_t routing_epoch() const { return routing_epoch_; }

  // -- Scaling (invoked by the Autoscaler) -------------------------------------

  /// Applies a new tenant quota, propagating partition quotas to nodes.
  /// With `allow_split` (the default), triggers an immediate partition
  /// split when the per-partition quota exceeds the configured upper
  /// bound (Algorithm 1 lines 4-6). The live control loop passes
  /// `allow_split = false` and stages the split as an online data
  /// operation instead (PrepareSplit / CommitSplit); a tenant with a
  /// split already staged never splits inline.
  Status SetTenantQuota(TenantId tenant, double new_quota_ru,
                        bool allow_split = true);

  /// Doubles the tenant's partition count, halving partition quotas.
  /// All-or-nothing: if any child replica cannot be placed, every
  /// replica staged by this call is removed again and the placement is
  /// left exactly as it was (no metadata/node inconsistency).
  Status SplitPartitions(TenantId tenant);

  // -- Staged (online) partition split -----------------------------------------
  //
  // The live split is a three-step state machine driven by the
  // simulator's Control stage:
  //
  //   PrepareSplit   children staged kPreparing: replicas placed on
  //       |          nodes (empty engines), NOT in the routing table —
  //       |          PartitionFor keeps hashing mod N, every request
  //       |          still reaches the parents
  //   (streaming)    the re-hashed key range is copied out of the parent
  //       |          primaries at a configured bytes-per-tick rate
  //   CommitSplit    cutover: the staged placements are appended to the
  //                  partition table atomically, quotas halve, and the
  //                  routing epoch bumps — the next forward re-hashes
  //                  mod 2N and chases one redirect to the children
  //
  // AbortSplit unwinds a prepared split without committing.

  /// Child placements staged by PrepareSplit, not yet routable.
  struct PendingSplit {
    uint32_t old_count = 0;  ///< Partition count before the split.
    /// children[i] serves partition old_count + i after the commit.
    std::vector<PartitionPlacement> children;
  };

  /// Stages the child placements of a split (all-or-nothing, like
  /// SplitPartitions, but without installing them). InvalidArgument if a
  /// split is already staged for the tenant.
  Status PrepareSplit(TenantId tenant);

  /// The tenant's staged split, or nullptr.
  const PendingSplit* GetPendingSplit(TenantId tenant) const;

  /// Installs a staged split: children join the partition table, the
  /// per-partition quota halves and is pushed to every hosting node, and
  /// the routing epoch bumps. The caller (Control stage) must have
  /// finished streaming the child data first.
  Status CommitSplit(TenantId tenant);

  /// Drops a staged split, removing the staged replicas from their nodes.
  Status AbortSplit(TenantId tenant);

  /// Moves one replica of (tenant, partition) from node `from` to node
  /// `to`, updating placement metadata (used by the rescheduler bridge).
  Status MigrateReplica(TenantId tenant, PartitionId partition, NodeId from,
                        NodeId to);

  // -- Failure recovery ---------------------------------------------------------

  /// Simulates the *permanent* loss of `node`: it leaves the pool and
  /// every replica it hosted is rebuilt on surviving pool nodes in
  /// parallel. Returns the recovery-time model contrasting multi-tenant
  /// parallel rebuild vs a single replacement node limited by its own
  /// disk bandwidth. For a live failure (node may come back), use
  /// PromoteFailover / RestorePrimary instead.
  Result<RecoveryReport> FailNode(PoolId pool, NodeId node,
                                  double rebuild_bandwidth_bytes_per_sec =
                                      200.0 * 1024 * 1024);

  /// Live failover after `node` crashed: for every partition whose
  /// primary it was, the alive replica with the *highest applied
  /// replication sequence* (ties broken in placement order) is promoted
  /// to primary and serves its actually-applied state; acknowledged
  /// writes it had not yet applied are counted in
  /// RecoveryReport::lost_acked_writes (zero under replication lag 0).
  /// `node` stays in the placement as a stale replica so it can resync
  /// and fail back later. Every replica the node hosted also gets a
  /// *planned* re-replication target (recorded in the report; the Fault
  /// stage executes the copy after a grace period unless the node starts
  /// recovering first). Bumps the routing epoch when any primary moved.
  /// Partitions with no surviving replica keep their dead primary and
  /// stay unavailable until recovery.
  Result<RecoveryReport> PromoteFailover(NodeId node,
                                         double rebuild_bandwidth_bytes_per_sec =
                                             200.0 * 1024 * 1024);

  /// Executes one planned re-replication: copies the partition's state
  /// from its (alive) primary onto `target`, which takes over `dead`'s
  /// placement slot; `dead` drops the replica and forfeits any failback
  /// claim on the partition (it no longer owns it). Fails when the dead
  /// node still holds the primary slot (no alive source to copy from),
  /// when the target is down or already hosts the partition, or when
  /// `dead` left the placement. Bumps the routing epoch on success.
  Status ExecuteReReplication(TenantId tenant, PartitionId partition,
                              NodeId dead, NodeId target);

  /// Whether `node` holds an outstanding failback claim for (tenant,
  /// partition) — i.e. it was this partition's primary when it failed
  /// and its engine may hold an unreplicated (divergent) write suffix.
  bool HasDemotionClaim(NodeId node, TenantId tenant,
                        PartitionId partition) const;

  /// Failback after `node` recovered and caught up: re-promotes it to
  /// primary for every partition PromoteFailover demoted it from (the
  /// simulator resyncs its engines from the interim primaries first, so
  /// it rejoins with the authoritative history), bumping the routing
  /// epoch.
  /// Under overlapping failures only the *oldest* outstanding demotion
  /// claim for a partition wins the failback — an interim primary that
  /// itself failed and recovered must not usurp the original (its engine
  /// only holds its brief interim window). Returns the number of
  /// primaries restored.
  size_t RestorePrimary(NodeId node);

  // -- Asynchronous proxy traffic control ---------------------------------------

  /// Ingests one monitoring interval's aggregate proxy RU/s for a tenant;
  /// returns the clamp directive the proxies should apply.
  bool ReportProxyTraffic(TenantId tenant, double aggregate_ru_per_sec);

  bool IsClamped(TenantId tenant) const;

 private:
  node::DataNode* FindNode(PoolId pool, NodeId id) const;

  /// Least-loaded placement: picks the pool node with the smallest total
  /// partition quota that does not already hold a replica of (tenant,
  /// partition). Returns nullptr if none qualifies.
  node::DataNode* PickNodeForReplica(PoolId pool, TenantId tenant,
                                     PartitionId partition) const;

  /// Striped creation-time placement (SetStripedPlacement). Returns
  /// nullptr if no pool node can take the replica.
  node::DataNode* PickNodeStriped(PoolId pool, TenantId tenant,
                                  PartitionId partition, int replica) const;

  /// Places one child placement per partition (children old_count + i)
  /// with replicas on live pool nodes. All-or-nothing: on any placement
  /// failure every replica staged by this call is removed from its node
  /// again and the error is returned.
  Result<std::vector<PartitionPlacement>> StageChildPlacements(
      TenantMeta& meta);

  /// Removes every staged replica of `children` (child i = partition
  /// first_child + i) from its hosting node — the single unwind path of
  /// a failed staging and AbortSplit.
  void UnstagePlacements(const TenantMeta& meta, uint32_t first_child,
                         const std::vector<PartitionPlacement>& children);

  void PushPartitionQuotas(TenantMeta& meta);

  /// Pool containing `node`, or kInvalidNode-equivalent failure (pool
  /// count) when absent from every pool.
  PoolId PoolOf(NodeId node) const;

  const Clock* clock_;
  std::vector<std::vector<node::DataNode*>> pools_;
  std::map<TenantId, TenantMeta> tenants_;
  /// Staged-but-uncommitted split placements (PrepareSplit).
  std::map<TenantId, PendingSplit> pending_splits_;
  uint64_t routing_epoch_ = 1;
  /// One partition a failed node was demoted from, stamped with a
  /// monotonic sequence so overlapping failures fail back in demotion
  /// order (oldest claim wins).
  struct DemotionClaim {
    TenantId tenant = 0;
    PartitionId partition = 0;
    uint64_t seq = 0;
  };
  /// Partitions PromoteFailover demoted each failed node from, so
  /// RestorePrimary can fail back exactly those.
  std::map<NodeId, std::vector<DemotionClaim>> demoted_;
  uint64_t demotion_seq_ = 0;
  bool striped_placement_ = false;
};

}  // namespace meta
}  // namespace abase
