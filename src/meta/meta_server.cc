#include "meta/meta_server.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace abase {
namespace meta {

MetaServer::MetaServer(const Clock* clock) : clock_(clock) {
  assert(clock_ != nullptr);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

PoolId MetaServer::CreatePool(std::vector<node::DataNode*> nodes) {
  pools_.push_back(std::move(nodes));
  return static_cast<PoolId>(pools_.size() - 1);
}

Status MetaServer::AddNodeToPool(PoolId pool, node::DataNode* node) {
  if (pool >= pools_.size()) return Status::InvalidArgument("no such pool");
  pools_[pool].push_back(node);
  return Status::OK();
}

Status MetaServer::RemoveNodeFromPool(PoolId pool, NodeId node) {
  if (pool >= pools_.size()) return Status::InvalidArgument("no such pool");
  auto& nodes = pools_[pool];
  auto it = std::find_if(nodes.begin(), nodes.end(),
                         [&](node::DataNode* n) { return n->id() == node; });
  if (it == nodes.end()) return Status::NotFound("node not in pool");
  if ((*it)->replica_count() > 0) {
    return Status::InvalidArgument("node still hosts replicas");
  }
  nodes.erase(it);
  return Status::OK();
}

const std::vector<node::DataNode*>& MetaServer::PoolNodes(
    PoolId pool) const {
  static const std::vector<node::DataNode*> kEmpty;
  return pool < pools_.size() ? pools_[pool] : kEmpty;
}

node::DataNode* MetaServer::FindNode(PoolId pool, NodeId id) const {
  if (pool >= pools_.size()) return nullptr;
  for (node::DataNode* n : pools_[pool]) {
    if (n->id() == id) return n;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Tenants
// ---------------------------------------------------------------------------

node::DataNode* MetaServer::PickNodeForReplica(PoolId pool, TenantId tenant,
                                               PartitionId partition) const {
  // AZs already used by this partition's replicas: placing in a fresh AZ
  // is strictly preferred (Section 3.1), falling back to AZ reuse only
  // when no conflict-free node exists.
  std::set<uint32_t> used_azs;
  for (node::DataNode* n : pools_[pool]) {
    if (n->HasReplica(tenant, partition)) used_azs.insert(n->az());
  }

  node::DataNode* best = nullptr;
  bool best_fresh_az = false;
  double best_quota = 0;
  for (node::DataNode* n : pools_[pool]) {
    if (!n->CanServe()) continue;  // Never place onto a down node.
    if (n->HasReplica(tenant, partition)) continue;  // Replica safety.
    bool fresh = used_azs.count(n->az()) == 0;
    double q = n->TotalPartitionQuota();
    if (best == nullptr || (fresh && !best_fresh_az) ||
        (fresh == best_fresh_az && q < best_quota)) {
      best = n;
      best_fresh_az = fresh;
      best_quota = q;
    }
  }
  return best;
}

node::DataNode* MetaServer::PickNodeStriped(PoolId pool, TenantId tenant,
                                            PartitionId partition,
                                            int replica) const {
  const auto& nodes = pools_[pool];
  if (nodes.empty()) return nullptr;
  // Deterministic stripe: replicas of a partition start at consecutive
  // pool slots offset by the tenant id, so bulk registration spreads
  // evenly without consulting per-node load; the advance loop below
  // resolves conflicts (down node, replica already placed).
  const size_t start = (static_cast<size_t>(tenant) +
                        static_cast<size_t>(partition) +
                        static_cast<size_t>(replica)) %
                       nodes.size();
  for (size_t off = 0; off < nodes.size(); off++) {
    node::DataNode* n = nodes[(start + off) % nodes.size()];
    if (!n->CanServe()) continue;
    if (n->HasReplica(tenant, partition)) continue;
    return n;
  }
  return nullptr;
}

Status MetaServer::CreateTenant(const TenantConfig& config, PoolId pool) {
  if (pool >= pools_.size()) return Status::InvalidArgument("no such pool");
  if (tenants_.count(config.id) > 0) {
    return Status::InvalidArgument("tenant id already exists");
  }
  if (config.num_partitions == 0 || config.replicas < 1) {
    return Status::InvalidArgument("bad partition/replica count");
  }
  if (pools_[pool].size() < static_cast<size_t>(config.replicas)) {
    return Status::ResourceExhausted("pool smaller than replica count");
  }

  TenantMeta meta;
  meta.config = config;
  meta.pool = pool;
  meta.tenant_quota_ru = config.tenant_quota_ru;
  meta.monitor.SetTenantQuota(config.tenant_quota_ru);
  double partition_quota =
      config.tenant_quota_ru / static_cast<double>(config.num_partitions);

  for (PartitionId p = 0; p < config.num_partitions; p++) {
    PartitionPlacement placement;
    for (int r = 0; r < config.replicas; r++) {
      node::DataNode* n = striped_placement_
                              ? PickNodeStriped(pool, config.id, p, r)
                              : PickNodeForReplica(pool, config.id, p);
      if (n == nullptr) {
        return Status::ResourceExhausted("no placeable node for replica");
      }
      n->AddReplica(config.id, p, partition_quota, /*is_primary=*/r == 0);
      placement.replicas.push_back(n->id());
    }
    meta.partitions.push_back(std::move(placement));
  }
  tenants_.emplace(config.id, std::move(meta));
  routing_epoch_++;
  return Status::OK();
}

const TenantMeta* MetaServer::GetTenant(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<TenantId> MetaServer::TenantIds() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, meta] : tenants_) out.push_back(id);
  return out;
}

PartitionId MetaServer::PartitionFor(TenantId tenant,
                                     std::string_view key) const {
  return PartitionForHashed(tenant, Fnv1a64(key));
}

PartitionId MetaServer::PartitionForHashed(TenantId tenant,
                                           uint64_t key_hash) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.partitions.empty()) return 0;
  return static_cast<PartitionId>(key_hash % it->second.partitions.size());
}

NodeId MetaServer::PrimaryFor(TenantId tenant, PartitionId partition) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return kInvalidNode;
  if (partition >= it->second.partitions.size()) return kInvalidNode;
  return it->second.partitions[partition].primary();
}

// ---------------------------------------------------------------------------
// Scaling
// ---------------------------------------------------------------------------

void MetaServer::PushPartitionQuotas(TenantMeta& meta) {
  double pq = meta.PartitionQuota();
  for (PartitionId p = 0; p < meta.partitions.size(); p++) {
    for (NodeId nid : meta.partitions[p].replicas) {
      node::DataNode* n = FindNode(meta.pool, nid);
      if (n != nullptr) n->SetPartitionQuota(meta.config.id, p, pq);
    }
  }
}

Status MetaServer::SetTenantQuota(TenantId tenant, double new_quota_ru,
                                  bool allow_split) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  TenantMeta& meta = it->second;
  if (new_quota_ru <= 0) return Status::InvalidArgument("quota must be > 0");

  if (new_quota_ru < meta.tenant_quota_ru) {
    meta.last_scale_down = clock_->NowMicros();
  }
  meta.tenant_quota_ru = new_quota_ru;
  meta.monitor.SetTenantQuota(new_quota_ru);

  // Algorithm 1 lines 4-6: split when the partition quota exceeds UP.
  // Skipped when the caller owns split pacing (the live control loop,
  // which stages splits as online data operations), or while a staged
  // split is already streaming — its cutover halves the quota anyway.
  while (allow_split && pending_splits_.count(tenant) == 0 &&
         meta.PartitionQuota() > meta.config.partition_quota_upper) {
    ABASE_RETURN_IF_ERROR(SplitPartitions(tenant));
  }
  PushPartitionQuotas(meta);
  return Status::OK();
}

void MetaServer::UnstagePlacements(
    const TenantMeta& meta, uint32_t first_child,
    const std::vector<PartitionPlacement>& children) {
  for (size_t c = 0; c < children.size(); c++) {
    PartitionId child = static_cast<PartitionId>(first_child + c);
    for (NodeId nid : children[c].replicas) {
      if (node::DataNode* n = FindNode(meta.pool, nid)) {
        n->RemoveReplica(meta.config.id, child);
      }
    }
  }
}

Result<std::vector<PartitionPlacement>> MetaServer::StageChildPlacements(
    TenantMeta& meta) {
  // Each partition p spawns a sibling p' = p + old_count, placed fresh
  // (least-loaded). Any failure rolls back every replica this call
  // already placed, so the pool and the placement metadata never
  // disagree about a half-born split.
  const size_t old_count = meta.partitions.size();
  const double new_pq =
      meta.tenant_quota_ru / static_cast<double>(old_count * 2);
  std::vector<PartitionPlacement> children;
  for (size_t p = 0; p < old_count; p++) {
    PartitionId child = static_cast<PartitionId>(old_count + p);
    PartitionPlacement placement;
    for (int r = 0; r < meta.config.replicas; r++) {
      node::DataNode* n =
          PickNodeForReplica(meta.pool, meta.config.id, child);
      if (n == nullptr) {
        // Unwind the partial child too: one more (possibly incomplete)
        // entry in the staged list, then one shared removal pass.
        children.push_back(std::move(placement));
        UnstagePlacements(meta, static_cast<uint32_t>(old_count), children);
        return Status::ResourceExhausted("no placeable node for split");
      }
      n->AddReplica(meta.config.id, child, new_pq, r == 0);
      placement.replicas.push_back(n->id());
    }
    children.push_back(std::move(placement));
  }
  return children;
}

Status MetaServer::SplitPartitions(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  if (pending_splits_.count(tenant) > 0) {
    return Status::InvalidArgument("staged split in progress");
  }
  TenantMeta& meta = it->second;

  auto children = StageChildPlacements(meta);
  ABASE_RETURN_IF_ERROR(children.status());
  for (PartitionPlacement& placement : children.value()) {
    meta.partitions.push_back(std::move(placement));
  }
  PushPartitionQuotas(meta);
  routing_epoch_++;
  return Status::OK();
}

Status MetaServer::PrepareSplit(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  if (pending_splits_.count(tenant) > 0) {
    return Status::InvalidArgument("split already staged");
  }
  TenantMeta& meta = it->second;
  auto children = StageChildPlacements(meta);
  ABASE_RETURN_IF_ERROR(children.status());
  PendingSplit pending;
  pending.old_count = static_cast<uint32_t>(meta.partitions.size());
  pending.children = std::move(children).value();
  pending_splits_.emplace(tenant, std::move(pending));
  // No epoch bump and no partition-table change: the children are
  // invisible to routing until CommitSplit.
  return Status::OK();
}

const MetaServer::PendingSplit* MetaServer::GetPendingSplit(
    TenantId tenant) const {
  auto it = pending_splits_.find(tenant);
  return it == pending_splits_.end() ? nullptr : &it->second;
}

Status MetaServer::CommitSplit(TenantId tenant) {
  auto it = tenants_.find(tenant);
  auto pit = pending_splits_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  if (pit == pending_splits_.end()) {
    return Status::NotFound("no staged split");
  }
  TenantMeta& meta = it->second;
  for (PartitionPlacement& placement : pit->second.children) {
    meta.partitions.push_back(std::move(placement));
  }
  pending_splits_.erase(pit);
  PushPartitionQuotas(meta);
  routing_epoch_++;
  return Status::OK();
}

Status MetaServer::AbortSplit(TenantId tenant) {
  auto it = tenants_.find(tenant);
  auto pit = pending_splits_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  if (pit == pending_splits_.end()) {
    return Status::NotFound("no staged split");
  }
  UnstagePlacements(it->second, pit->second.old_count,
                    pit->second.children);
  pending_splits_.erase(pit);
  return Status::OK();
}

Status MetaServer::MigrateReplica(TenantId tenant, PartitionId partition,
                                  NodeId from, NodeId to) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  TenantMeta& meta = it->second;
  if (partition >= meta.partitions.size()) {
    return Status::InvalidArgument("no such partition");
  }
  node::DataNode* src = FindNode(meta.pool, from);
  node::DataNode* dst = FindNode(meta.pool, to);
  if (src == nullptr || dst == nullptr) {
    return Status::NotFound("node not in tenant pool");
  }
  if (!dst->CanServe()) {
    return Status::Unavailable("destination node is down");
  }
  if (!src->HasReplica(tenant, partition)) {
    return Status::NotFound("source does not host replica");
  }
  if (dst->HasReplica(tenant, partition)) {
    return Status::InvalidArgument("destination already hosts replica");
  }
  auto& reps = meta.partitions[partition].replicas;
  auto rit = std::find(reps.begin(), reps.end(), from);
  if (rit == reps.end()) return Status::Internal("placement out of sync");
  bool was_primary = rit == reps.begin();

  double pq = meta.PartitionQuota();
  dst->AddReplica(tenant, partition, pq, was_primary);
  // The migration carries the replica's real state: clone the source
  // engine before dropping it (SSTable runs are shared, so the clone is
  // cheap; a migrated non-primary then catches the stream up from its
  // cloned cursor at the next Replicate step).
  if (storage::LsmEngine* src_engine = src->EngineFor(tenant, partition)) {
    dst->ResyncReplica(tenant, partition, *src_engine);
  }
  src->RemoveReplica(tenant, partition);
  *rit = to;
  routing_epoch_++;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Failure recovery
// ---------------------------------------------------------------------------

Result<RecoveryReport> MetaServer::FailNode(
    PoolId pool, NodeId node, double rebuild_bandwidth_bytes_per_sec) {
  node::DataNode* failed = FindNode(pool, node);
  if (failed == nullptr) return Status::NotFound("node not in pool");

  RecoveryReport report;

  // Snapshot the replicas the failed node hosted.
  struct LostReplica {
    TenantId tenant;
    PartitionId partition;
    double quota;
    uint64_t bytes;
  };
  std::vector<LostReplica> lost;
  for (const node::PartitionReplica* rep : failed->Replicas()) {
    lost.push_back(LostReplica{rep->tenant, rep->partition,
                               rep->partition_quota_ru,
                               rep->engine->ApproximateDataBytes()});
  }

  // Remove the node from the pool topology first so placement never
  // targets it, then rebuild each lost replica on a surviving node. A
  // permanently lost node also forfeits any outstanding failback claims
  // (it will never call RestorePrimary) — leaving them would block every
  // later interim primary's failback on those partitions forever.
  demoted_.erase(node);
  auto& nodes = pools_[pool];
  nodes.erase(std::remove(nodes.begin(), nodes.end(), failed), nodes.end());
  // Placement mutation starts here; bump the epoch now so even an early
  // error return below (no survivor for some replica) leaves cached
  // routes able to chase a redirect into the partially rebuilt state.
  routing_epoch_++;

  std::map<NodeId, uint64_t> bytes_per_target;
  for (const LostReplica& lr : lost) {
    // Fix up tenant placement metadata.
    auto tit = tenants_.find(lr.tenant);
    node::DataNode* target =
        PickNodeForReplica(pool, lr.tenant, lr.partition);
    if (target == nullptr) {
      return Status::ResourceExhausted("no survivor can host replica");
    }
    // The rebuilt copy takes over the failed node's placement slot —
    // including the primary role when the lost replica led the partition.
    bool was_primary = false;
    if (tit != tenants_.end() &&
        lr.partition < tit->second.partitions.size()) {
      auto& reps = tit->second.partitions[lr.partition].replicas;
      was_primary = !reps.empty() && reps[0] == node;
      std::replace(reps.begin(), reps.end(), node, target->id());
    }
    target->AddReplica(lr.tenant, lr.partition, lr.quota, was_primary);
    // The rebuilt replica carries real data, streamed from the freshest
    // surviving copy (permanent loss destroyed the dead node's state; a
    // replicas=1 partition has no survivor and genuinely starts empty).
    storage::LsmEngine* source = nullptr;
    if (tit != tenants_.end() &&
        lr.partition < tit->second.partitions.size()) {
      for (NodeId nid : tit->second.partitions[lr.partition].replicas) {
        if (nid == target->id()) continue;
        node::DataNode* n = FindNode(pool, nid);
        if (n == nullptr || !n->CanServe()) continue;
        storage::LsmEngine* e = n->EngineFor(lr.tenant, lr.partition);
        if (e == nullptr) continue;
        if (source == nullptr || e->applied_seq() > source->applied_seq()) {
          source = e;
        }
      }
    }
    if (source != nullptr) {
      target->ResyncReplica(lr.tenant, lr.partition, *source);
    }
    bytes_per_target[target->id()] += lr.bytes;
    report.replicas_rebuilt++;
    report.replicas_rebuilt_executed++;
    report.bytes_rebuilt += lr.bytes;
    report.re_replication_targets.push_back(
        ReReplicationTarget{lr.tenant, lr.partition, target->id(), lr.bytes});
    failed->RemoveReplica(lr.tenant, lr.partition);
  }

  // Recovery-time model (Section 3.3): the parallel rebuild is bounded by
  // the most-loaded target's share, streamed from many sources at disk
  // bandwidth; a single replacement node must ingest everything alone.
  report.parallel_sources = bytes_per_target.size();
  uint64_t max_target_bytes = 0;
  for (const auto& [nid, b] : bytes_per_target) {
    max_target_bytes = std::max(max_target_bytes, b);
  }
  report.parallel_recovery_seconds =
      static_cast<double>(max_target_bytes) / rebuild_bandwidth_bytes_per_sec;
  report.single_node_recovery_seconds =
      static_cast<double>(report.bytes_rebuilt) /
      rebuild_bandwidth_bytes_per_sec;
  return report;
}

PoolId MetaServer::PoolOf(NodeId node) const {
  for (PoolId p = 0; p < pools_.size(); p++) {
    for (node::DataNode* n : pools_[p]) {
      if (n->id() == node) return p;
    }
  }
  return static_cast<PoolId>(pools_.size());
}

Result<RecoveryReport> MetaServer::PromoteFailover(
    NodeId node, double rebuild_bandwidth_bytes_per_sec) {
  PoolId pool = PoolOf(node);
  if (pool >= pools_.size()) return Status::NotFound("node not in any pool");
  node::DataNode* failed = FindNode(pool, node);

  RecoveryReport report;
  bool placement_changed = false;
  std::map<NodeId, uint64_t> bytes_per_target;
  // tenants_ is ordered, so promotions and planned targets come out in a
  // fixed (tenant, partition) order — the fault path runs from serial
  // pipeline sections and must stay deterministic.
  for (auto& [tid, meta] : tenants_) {
    if (meta.pool != pool) continue;
    for (PartitionId p = 0; p < meta.partitions.size(); p++) {
      auto& reps = meta.partitions[p].replicas;
      auto rit = std::find(reps.begin(), reps.end(), node);
      if (rit == reps.end()) continue;

      if (rit == reps.begin()) {
        // Promote the alive replica whose engine applied the most of the
        // dead primary's replication stream (ties break in placement
        // order): it serves its actually-applied state, so picking the
        // freshest replica minimizes the lost-write window.
        size_t best = 0;
        uint64_t best_applied = 0;
        for (size_t r = 1; r < reps.size(); r++) {
          node::DataNode* candidate = FindNode(pool, reps[r]);
          if (candidate == nullptr || !candidate->CanServe()) continue;
          storage::LsmEngine* engine = candidate->EngineFor(tid, p);
          uint64_t applied = engine != nullptr ? engine->applied_seq() : 0;
          if (best == 0 || applied > best_applied) {
            best = r;
            best_applied = applied;
          }
        }
        if (best != 0) {
          node::DataNode* candidate = FindNode(pool, reps[best]);
          std::swap(reps[0], reps[best]);
          candidate->SetReplicaPrimary(tid, p, true);
          if (failed != nullptr) {
            failed->SetReplicaPrimary(tid, p, false);
            // Acknowledged writes beyond the promoted replica's cursor
            // were never shipped: they are lost to clients until (and
            // unless) the dead node resyncs and fails back — and the
            // resync discards them, so they are lost for good.
            if (storage::LsmEngine* dead_engine = failed->EngineFor(tid, p)) {
              uint64_t dead_applied = dead_engine->applied_seq();
              if (dead_applied > best_applied) {
                report.lost_acked_writes += dead_applied - best_applied;
              }
            }
          }
          demoted_[node].push_back(DemotionClaim{tid, p, ++demotion_seq_});
          report.primaries_promoted++;
          placement_changed = true;
        }
        // No survivor: the partition keeps its dead primary and stays
        // unavailable until the node recovers and fails back.
      }

      // Plan (but do not execute) the re-replication that would restore
      // the replication factor if the node never came back.
      uint64_t bytes = 0;
      if (failed != nullptr) {
        if (storage::LsmEngine* engine = failed->EngineFor(tid, p)) {
          bytes = engine->ApproximateDataBytes();
        }
      }
      if (node::DataNode* target = PickNodeForReplica(pool, tid, p)) {
        report.re_replication_targets.push_back(
            ReReplicationTarget{tid, p, target->id(), bytes});
        bytes_per_target[target->id()] += bytes;
      }
      report.replicas_rebuilt++;
      report.bytes_rebuilt += bytes;
    }
  }

  report.parallel_sources = bytes_per_target.size();
  uint64_t max_target_bytes = 0;
  for (const auto& [nid, b] : bytes_per_target) {
    max_target_bytes = std::max(max_target_bytes, b);
  }
  report.parallel_recovery_seconds =
      static_cast<double>(max_target_bytes) / rebuild_bandwidth_bytes_per_sec;
  report.single_node_recovery_seconds =
      static_cast<double>(report.bytes_rebuilt) /
      rebuild_bandwidth_bytes_per_sec;
  if (placement_changed) routing_epoch_++;
  return report;
}

Status MetaServer::ExecuteReReplication(TenantId tenant, PartitionId partition,
                                        NodeId dead, NodeId target) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::NotFound("no such tenant");
  TenantMeta& meta = it->second;
  if (partition >= meta.partitions.size()) {
    return Status::InvalidArgument("no such partition");
  }
  auto& reps = meta.partitions[partition].replicas;
  auto rit = std::find(reps.begin(), reps.end(), dead);
  if (rit == reps.end()) {
    return Status::NotFound("dead node left the placement");
  }
  if (rit == reps.begin()) {
    // The dead node still holds the primary slot: no alive replica was
    // promotable, so there is no source to copy from.
    return Status::Unavailable("no surviving source replica");
  }
  if (std::find(reps.begin(), reps.end(), target) != reps.end()) {
    return Status::InvalidArgument("target already in placement");
  }
  node::DataNode* dst = FindNode(meta.pool, target);
  if (dst == nullptr || !dst->CanServe()) {
    return Status::Unavailable("target node is down");
  }
  node::DataNode* primary = FindNode(meta.pool, reps[0]);
  storage::LsmEngine* src =
      primary != nullptr && primary->CanServe()
          ? primary->EngineFor(tenant, partition)
          : nullptr;
  if (src == nullptr) return Status::Unavailable("primary source is down");

  dst->AddReplica(tenant, partition, meta.PartitionQuota(),
                  /*is_primary=*/false);
  dst->ResyncReplica(tenant, partition, *src);
  if (node::DataNode* dn = FindNode(meta.pool, dead)) {
    dn->RemoveReplica(tenant, partition);
  }
  *rit = target;
  // The dead node no longer owns the partition: its failback claim (if
  // any) must not fail it back to primary over state it never resynced.
  auto dit = demoted_.find(dead);
  if (dit != demoted_.end()) {
    auto& claims = dit->second;
    claims.erase(std::remove_if(claims.begin(), claims.end(),
                                [&](const DemotionClaim& c) {
                                  return c.tenant == tenant &&
                                         c.partition == partition;
                                }),
                 claims.end());
    if (claims.empty()) demoted_.erase(dit);
  }
  routing_epoch_++;
  return Status::OK();
}

bool MetaServer::HasDemotionClaim(NodeId node, TenantId tenant,
                                  PartitionId partition) const {
  auto it = demoted_.find(node);
  if (it == demoted_.end()) return false;
  for (const DemotionClaim& c : it->second) {
    if (c.tenant == tenant && c.partition == partition) return true;
  }
  return false;
}

size_t MetaServer::RestorePrimary(NodeId node) {
  auto dit = demoted_.find(node);
  if (dit == demoted_.end()) return 0;
  // Consume this node's claims up front: a claim that loses the failback
  // (below) must not linger and usurp a better-placed leader later.
  std::vector<DemotionClaim> claims = std::move(dit->second);
  demoted_.erase(dit);
  PoolId pool = PoolOf(node);
  node::DataNode* restored =
      pool < pools_.size() ? FindNode(pool, node) : nullptr;

  size_t count = 0;
  for (const DemotionClaim& claim : claims) {
    const TenantId tid = claim.tenant;
    const PartitionId p = claim.partition;
    // Overlapping failures: an older outstanding claim means a
    // yet-to-recover node led the partition before this one did and
    // holds the fuller state — this node stays a replica.
    bool older_claim = false;
    for (const auto& [other, other_claims] : demoted_) {
      for (const DemotionClaim& oc : other_claims) {
        if (oc.tenant == tid && oc.partition == p && oc.seq < claim.seq) {
          older_claim = true;
          break;
        }
      }
      if (older_claim) break;
    }
    if (older_claim) continue;

    auto tit = tenants_.find(tid);
    if (tit == tenants_.end() || p >= tit->second.partitions.size()) continue;
    auto& reps = tit->second.partitions[p].replicas;
    auto rit = std::find(reps.begin(), reps.end(), node);
    if (rit == reps.end() || rit == reps.begin()) continue;
    // Demote whichever replica led during the outage, then put the
    // recovered node (fullest state after WAL replay) back in front.
    if (node::DataNode* leader = FindNode(pool, reps[0])) {
      leader->SetReplicaPrimary(tid, p, false);
    }
    std::swap(reps[0], *rit);
    if (restored != nullptr) restored->SetReplicaPrimary(tid, p, true);
    count++;
    // The restored leader supersedes every younger claim on the
    // partition: without this, a later-failed interim primary would
    // reclaim it on recovery and flip reads back to its thin state.
    for (auto& [other, other_claims] : demoted_) {
      other_claims.erase(
          std::remove_if(other_claims.begin(), other_claims.end(),
                         [&](const DemotionClaim& oc) {
                           return oc.tenant == tid && oc.partition == p;
                         }),
          other_claims.end());
    }
  }
  if (count > 0) routing_epoch_++;
  return count;
}

// ---------------------------------------------------------------------------
// Asynchronous proxy traffic control
// ---------------------------------------------------------------------------

bool MetaServer::ReportProxyTraffic(TenantId tenant,
                                    double aggregate_ru_per_sec) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  return it->second.monitor.ObserveAggregateRuPerSec(aggregate_ru_per_sec);
}

bool MetaServer::IsClamped(TenantId tenant) const {
  auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.monitor.clamped();
}

}  // namespace meta
}  // namespace abase
