// Capacity planning rules — paper Section 7, "Lessons in Practice".
//
// The operational invariants ByteDance converged on:
//  * Resource allocation: a pool's capacity must be at least 10x any
//    single tenant's quota, and at least 20% of the pool must stay idle.
//  * Resource isolation: cap the number of tenants per pool and the
//    pool's total scale (bound the failure radius); cap any tenant's
//    quota relative to the pool.
//  * Spiky workloads: idle resources must exceed the largest tenant
//    quota so any tenant can at least double its quota short-term.
//
// The planner audits a pool against these rules and sizes new pools so
// the rules hold by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace abase {
namespace meta {

/// Operational limits (defaults mirror the paper's stated practice).
struct CapacityRules {
  /// Pool capacity >= this multiple of the largest tenant quota.
  double pool_to_tenant_ratio = 10.0;
  /// Fraction of pool capacity that must remain idle (unallocated).
  double min_idle_fraction = 0.20;
  /// Failure-radius bounds.
  size_t max_tenants_per_pool = 100;
  size_t max_nodes_per_pool = 2000;
  /// Every tenant must be able to at least double its quota short-term:
  /// idle capacity >= burst_headroom_factor x the largest tenant quota.
  double burst_headroom_factor = 1.0;
};

/// One rule violation found by an audit.
struct CapacityViolation {
  enum class Rule {
    kPoolTooSmallForTenant,   ///< capacity < ratio x tenant quota.
    kInsufficientIdle,        ///< idle < min_idle_fraction.
    kTooManyTenants,
    kPoolTooLarge,
    kInsufficientBurstHeadroom,
  };
  Rule rule;
  std::string detail;
};

const char* CapacityRuleName(CapacityViolation::Rule rule);

/// Immutable snapshot of a pool for auditing.
struct PoolSnapshot {
  size_t node_count = 0;
  double node_capacity_ru = 0;          ///< Per-node RU/s capacity.
  std::vector<double> tenant_quotas_ru; ///< Current quota per tenant.

  double TotalCapacity() const {
    return static_cast<double>(node_count) * node_capacity_ru;
  }
  double AllocatedQuota() const {
    double s = 0;
    for (double q : tenant_quotas_ru) s += q;
    return s;
  }
  double IdleCapacity() const { return TotalCapacity() - AllocatedQuota(); }
  double MaxTenantQuota() const {
    double m = 0;
    for (double q : tenant_quotas_ru) m = std::max(m, q);
    return m;
  }
};

/// Audits and sizes pools against the Section 7 rules.
class CapacityPlanner {
 public:
  explicit CapacityPlanner(CapacityRules rules = {}) : rules_(rules) {}

  /// All rule violations in the snapshot (empty = healthy).
  std::vector<CapacityViolation> Audit(const PoolSnapshot& pool) const;

  /// True when the pool can admit a new tenant with `quota_ru` without
  /// violating any rule afterwards.
  bool CanAdmitTenant(const PoolSnapshot& pool, double quota_ru) const;

  /// Minimum node count so a pool of `node_capacity_ru` nodes can host
  /// `tenant_quotas_ru` within the rules. Fails if the tenant set itself
  /// is inadmissible (e.g., too many tenants).
  Result<size_t> RequiredNodes(const std::vector<double>& tenant_quotas_ru,
                               double node_capacity_ru) const;

  /// Largest quota any single tenant may hold in this pool (the paper:
  /// "we correspondingly regulate the maximum quota for each tenant").
  double MaxAdmissibleTenantQuota(const PoolSnapshot& pool) const;

  const CapacityRules& rules() const { return rules_; }

 private:
  CapacityRules rules_;
};

}  // namespace meta
}  // namespace abase
