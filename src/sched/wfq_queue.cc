#include "sched/wfq_queue.h"

#include <algorithm>

namespace abase {
namespace sched {

namespace {
constexpr uint32_t kInitialRingCapacity = 8;
}  // namespace

uint32_t WfqQueue::RingFor(TenantId tenant) {
  if (const uint32_t* ri = tenant_ring_.Find(tenant)) return *ri;
  uint32_t ri = static_cast<uint32_t>(rings_.size());
  rings_.emplace_back();
  rings_.back().buf.resize(kInitialRingCapacity);
  tenant_ring_.Insert(tenant, ri);
  return ri;
}

void WfqQueue::Grow(Ring& r) {
  std::vector<Entry> bigger(r.buf.size() * 2);
  for (uint32_t i = 0; i < r.count; i++) bigger[i] = r.At(i);
  r.buf = std::move(bigger);
  r.head = 0;
}

void WfqQueue::AppendTail(Ring& r, const Entry& e) {
  if (r.count == r.buf.size()) Grow(r);
  r.buf[(r.head + r.count) & r.Mask()] = e;
  r.count++;
}

void WfqQueue::InsertSorted(Ring& r, const Entry& e, bool* new_head) {
  if (r.count == r.buf.size()) Grow(r);
  // A reinserted entry carries the VFT it was popped with — the global
  // minimum at pop time — so it almost always lands at the front; the
  // scan is O(1) in practice.
  uint32_t pos = 0;
  while (pos < r.count && Before(r.At(pos), e)) pos++;
  *new_head = (pos == 0);
  if (pos == 0) {
    r.head = (r.head + r.Mask()) & r.Mask();  // head - 1 mod capacity
    r.buf[r.head] = e;
  } else {
    for (uint32_t i = r.count; i > pos; i--) r.At(i) = r.At(i - 1);
    r.At(pos) = e;
  }
  r.count++;
}

void WfqQueue::HeapInsert(uint32_t ring_index) {
  rings_[ring_index].heap_pos = static_cast<uint32_t>(heap_.size());
  heap_.push_back(ring_index);
  SiftUp(static_cast<uint32_t>(heap_.size()) - 1);
}

void WfqQueue::HeapRemoveTop() {
  rings_[heap_[0]].heap_pos = kNotInHeap;
  uint32_t last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    rings_[last].heap_pos = 0;
    SiftDown(0);
  }
}

void WfqQueue::SiftUp(uint32_t pos) {
  uint32_t ri = heap_[pos];
  while (pos > 0) {
    uint32_t parent = (pos - 1) / 2;
    if (!Before(Head(ri), Head(heap_[parent]))) break;
    heap_[pos] = heap_[parent];
    rings_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = ri;
  rings_[ri].heap_pos = pos;
}

void WfqQueue::SiftDown(uint32_t pos) {
  uint32_t ri = heap_[pos];
  const uint32_t n = static_cast<uint32_t>(heap_.size());
  for (;;) {
    uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && Before(Head(heap_[child + 1]), Head(heap_[child]))) {
      child++;
    }
    if (!Before(Head(heap_[child]), Head(ri))) break;
    heap_[pos] = heap_[child];
    rings_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = ri;
  rings_[ri].heap_pos = pos;
}

void WfqQueue::Push(const SchedRequest& req, double cost) {
  assert(req.quota_share > 0);
  double weighted_cost = cost / req.quota_share;
  // Start time: an idle tenant resumes at the current virtual time, not at
  // its stale preVFT (which would grant it an unfair catch-up burst).
  double start = vtime_;
  if (const double* pv = pre_vft_.Find(req.tenant)) {
    start = std::max(start, *pv);
  }
  double vft = start + weighted_cost;
  pre_vft_.Insert(req.tenant, vft);
  uint32_t ri = RingFor(req.tenant);
  Ring& r = rings_[ri];
  // Appending keeps the ring sorted: while the ring is non-empty the
  // tenant's preVFT is >= every queued entry's VFT (Push sets it to the
  // new tail's VFT; Reinsert only re-adds entries whose original push
  // already advanced it), so vft >= tail.vft and the tie is fresh.
  bool was_empty = (r.count == 0);
  AppendTail(r, Entry{req, vft, tie_counter_++});
  size_++;
  if (was_empty) HeapInsert(ri);
}

SchedRequest WfqQueue::Pop() {
  double vft;
  return PopWithVft(&vft);
}

SchedRequest WfqQueue::PopWithVft(double* vft) {
  assert(size_ > 0);
  uint32_t ri = heap_[0];
  Ring& r = rings_[ri];
  Entry e = r.At(0);
  r.head = (r.head + 1) & r.Mask();
  r.count--;
  size_--;
  vtime_ = std::max(vtime_, e.vft);
  if (r.count == 0) {
    HeapRemoveTop();
  } else {
    SiftDown(0);
  }
  // Lazy virtual-time advance: with the queue drained, vtime_ is >= every
  // retained preVFT (see the header), so the per-tenant state carries no
  // information — drop it instead of letting it grow with every tenant
  // that ever touched this queue.
  if (size_ == 0) pre_vft_.Clear();
  *vft = e.vft;
  return e.req;
}

void WfqQueue::Clear() {
  for (uint32_t ri : heap_) {
    Ring& r = rings_[ri];
    r.head = 0;
    r.count = 0;
    r.heap_pos = kNotInHeap;
  }
  heap_.clear();
  size_ = 0;
  pre_vft_.Clear();
  vtime_ = 0;
  tie_counter_ = 0;
}

void WfqQueue::Reinsert(const SchedRequest& req, double vft) {
  // The tenant's preVFT already advanced past `vft` when the request was
  // first pushed, so reinserting must not advance it again.
  uint32_t ri = RingFor(req.tenant);
  Ring& r = rings_[ri];
  Entry e{req, vft, tie_counter_++};
  size_++;
  if (r.count == 0) {
    AppendTail(r, e);
    HeapInsert(ri);
    return;
  }
  bool new_head = false;
  InsertSorted(r, e, &new_head);
  if (new_head) SiftUp(r.heap_pos);
}

}  // namespace sched
}  // namespace abase
