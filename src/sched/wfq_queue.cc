#include "sched/wfq_queue.h"

#include <algorithm>
#include <cassert>

namespace abase {
namespace sched {

void WfqQueue::Push(const SchedRequest& req, double cost) {
  assert(req.quota_share > 0);
  double weighted_cost = cost / req.quota_share;
  // Start time: an idle tenant resumes at the current virtual time, not at
  // its stale preVFT (which would grant it an unfair catch-up burst).
  double start = vtime_;
  auto it = pre_vft_.find(req.tenant);
  if (it != pre_vft_.end()) start = std::max(start, it->second);
  double vft = start + weighted_cost;
  pre_vft_[req.tenant] = vft;
  heap_.push(Item{req, vft, tie_counter_++});
}

SchedRequest WfqQueue::Pop() {
  double vft;
  return PopWithVft(&vft);
}

SchedRequest WfqQueue::PopWithVft(double* vft) {
  assert(!heap_.empty());
  Item item = heap_.top();
  heap_.pop();
  vtime_ = std::max(vtime_, item.vft);
  *vft = item.vft;
  return item.req;
}

void WfqQueue::Clear() {
  heap_ = {};
  pre_vft_.clear();
  vtime_ = 0;
  tie_counter_ = 0;
}

void WfqQueue::Reinsert(const SchedRequest& req, double vft) {
  // The tenant's preVFT already advanced past `vft` when the request was
  // first pushed, so reinserting must not advance it again.
  heap_.push(Item{req, vft, tie_counter_++});
}

}  // namespace sched
}  // namespace abase
