#include "sched/wfq_queue.h"

#include <algorithm>
#include <cassert>

namespace abase {
namespace sched {

void WfqQueue::Push(const SchedRequest& req, double cost) {
  assert(req.quota_share > 0);
  double weighted_cost = cost / req.quota_share;
  // Start time: an idle tenant resumes at the current virtual time, not at
  // its stale preVFT (which would grant it an unfair catch-up burst).
  double start = vtime_;
  if (const double* pv = pre_vft_.Find(req.tenant)) {
    start = std::max(start, *pv);
  }
  double vft = start + weighted_cost;
  pre_vft_.Insert(req.tenant, vft);
  heap_.push(Item{req, vft, tie_counter_++});
}

SchedRequest WfqQueue::Pop() {
  double vft;
  return PopWithVft(&vft);
}

SchedRequest WfqQueue::PopWithVft(double* vft) {
  assert(!heap_.empty());
  Item item = heap_.top();
  heap_.pop();
  vtime_ = std::max(vtime_, item.vft);
  // Lazy virtual-time advance: with the heap drained, vtime_ is >= every
  // retained preVFT (see the header), so the per-tenant state carries no
  // information — drop it instead of letting it grow with every tenant
  // that ever touched this queue.
  if (heap_.empty()) pre_vft_.Clear();
  *vft = item.vft;
  return item.req;
}

void WfqQueue::Clear() {
  heap_ = {};
  pre_vft_.Clear();
  vtime_ = 0;
  tie_counter_ = 0;
}

void WfqQueue::Reinsert(const SchedRequest& req, double vft) {
  // The tenant's preVFT already advanced past `vft` when the request was
  // first pushed, so reinserting must not advance it again.
  heap_.push(Item{req, vft, tie_counter_++});
}

}  // namespace sched
}  // namespace abase
