#include "sched/dual_layer_wfq.h"

#include <algorithm>

namespace abase {
namespace sched {

namespace {

/// Deferred item: popped this tick but pushed back for the next one.
struct Deferral {
  SchedRequest req;
  double vft;
  int queue_index;
};

bool IsReadClass(int cls) {
  return cls == static_cast<int>(RequestClass::kSmallRead) ||
         cls == static_cast<int>(RequestClass::kLargeRead);
}

}  // namespace

DualLayerWfq::DualLayerWfq(DualWfqOptions options) : options_(options) {}

void DualLayerWfq::Enqueue(const SchedRequest& req) {
  cpu_queues_[static_cast<int>(req.cls)].Push(req, req.cpu_cost_ru);
}

size_t DualLayerWfq::PendingCount() const {
  size_t n = 0;
  for (int c = 0; c < kNumRequestClasses; c++) {
    n += cpu_queues_[c].Size() + io_queues_[c].Size();
  }
  return n;
}

void DualLayerWfq::Clear() {
  for (int c = 0; c < kNumRequestClasses; c++) {
    cpu_queues_[c].Clear();
    io_queues_[c].Clear();
  }
}

TickStats DualLayerWfq::RunTick(const ProbeFn& probe,
                                const CompleteFn& complete) {
  TickStats stats;
  // O(1) idle skip: with nothing queued in either layer, both drain
  // loops would break on their first class scan — return before paying
  // for their scratch state. A thousand-node cluster at million-tenant
  // scale runs mostly idle nodes every tick.
  if (PendingCount() == 0) return stats;
  RunCpuLayer(probe, complete, &stats);
  RunIoLayer(complete, &stats);
  return stats;
}

TickStats DualLayerWfq::RunTick(const BatchProbeFn& probe,
                                const CancelFn& canceled,
                                const CompleteFn& complete) {
  TickStats stats;
  if (PendingCount() == 0) return stats;
  RunCpuLayerBatched(probe, canceled, complete, &stats);
  RunIoLayer(complete, &stats);
  return stats;
}

void DualLayerWfq::RunCpuLayer(const ProbeFn& probe,
                               const CompleteFn& complete, TickStats* stats) {
  double ru_left = options_.cpu_budget_ru;
  int reads_left = options_.read_concurrency;
  int writes_left = options_.write_concurrency;
  double write_ru_left = options_.write_ru_ceiling;
  const double tenant_cap =
      options_.single_tenant_cpu_cap * options_.cpu_budget_ru;

  tenant_ru_.Clear();
  std::vector<Deferral> deferred;

  // Serve the globally smallest VFT across the four class queues (the
  // class split exists so heavyweight requests never sit *in front of*
  // lightweight ones within a queue; the cross-queue pick must still be
  // work-fair, or a backlogged heavy class would starve light classes by
  // pop count).
  while (ru_left > 0) {
    int c = -1;
    double best_vft = 0;
    for (int cand = 0; cand < kNumRequestClasses; cand++) {
      WfqQueue& q = cpu_queues_[cand];
      if (q.Empty()) continue;
      // Rule 2: direction-level concurrency and write-RU ceilings.
      if (IsReadClass(cand)) {
        if (reads_left <= 0) continue;
      } else {
        if (writes_left <= 0 || write_ru_left <= 0) continue;
      }
      if (c < 0 || q.PeekVft() < best_vft) {
        c = cand;
        best_vft = q.PeekVft();
      }
    }
    if (c < 0) break;  // Everything empty or rule-blocked.
    WfqQueue& q = cpu_queues_[c];

    // Rule 3: a single tenant may claim at most 90% of the tick's CPU.
    TenantId head = q.PeekTenant();
    const double* used = tenant_ru_.Find(head);
    double head_used = used != nullptr ? *used : 0.0;
    double vft;
    if (head_used >= tenant_cap) {
      SchedRequest r = q.PopWithVft(&vft);
      deferred.push_back(Deferral{r, vft, c});
      stats->rule3_deferrals++;
      continue;
    }

    SchedRequest req = q.PopWithVft(&vft);
    ru_left -= req.cpu_cost_ru;
    tenant_ru_[req.tenant] += req.cpu_cost_ru;
    stats->cpu_scheduled++;
    stats->cpu_ru_used += req.cpu_cost_ru;
    if (IsReadClass(c)) {
      reads_left--;
    } else {
      writes_left--;
      write_ru_left -= req.cpu_cost_ru;
    }

    CacheProbe pr = probe(req);
    if (pr.canceled) {
      // Refund: a canceled request must not eat the tick's budget.
      ru_left += req.cpu_cost_ru;
      tenant_ru_[req.tenant] -= req.cpu_cost_ru;
      stats->cpu_scheduled--;
      stats->cpu_ru_used -= req.cpu_cost_ru;
      if (IsReadClass(c)) {
        reads_left++;
      } else {
        writes_left++;
        write_ru_left += req.cpu_cost_ru;
      }
      continue;
    }
    if (pr.hit) {
      stats->cache_hits++;
      complete(req, SchedOutcome::kServedFromCache);
    } else if (!pr.needs_io) {
      complete(req, SchedOutcome::kServedFromCpu);
    } else {
      SchedRequest io_req = req;
      io_req.io_blocks = std::max(1, pr.io_blocks);
      io_queues_[c].Push(io_req, static_cast<double>(io_req.io_blocks));
    }
  }

  // Deferred requests keep their original VFT and run next tick.
  for (const Deferral& d : deferred) {
    cpu_queues_[d.queue_index].Reinsert(d.req, d.vft);
  }
}

void DualLayerWfq::RunCpuLayerBatched(const BatchProbeFn& probe,
                                      const CancelFn& canceled,
                                      const CompleteFn& complete,
                                      TickStats* stats) {
  // Mirrors RunCpuLayer pop for pop: the only difference is that
  // consecutive read pops defer their probe/completion into a batch. A
  // batch stays sound because nothing between its pops can change a
  // probe's answer — cache mutations happen only in completions, and the
  // flush triggers (write pop, repeated key hash, cap) put every
  // completion that a later probe could observe before that probe.
  double ru_left = options_.cpu_budget_ru;
  int reads_left = options_.read_concurrency;
  int writes_left = options_.write_concurrency;
  double write_ru_left = options_.write_ru_ceiling;
  const double tenant_cap =
      options_.single_tenant_cpu_cap * options_.cpu_budget_ru;
  constexpr size_t kReadBatchCap = 16;

  tenant_ru_.Clear();
  batch_reqs_.clear();
  batch_cls_.clear();
  std::vector<Deferral> deferred;

  auto flush = [&] {
    const size_t n = batch_reqs_.size();
    if (n == 0) return;
    batch_probes_.assign(n, CacheProbe{});
    probe(batch_reqs_.data(), n, batch_probes_.data());
    for (size_t i = 0; i < n; i++) {
      const SchedRequest& req = batch_reqs_[i];
      const CacheProbe& pr = batch_probes_[i];
      if (pr.hit) {
        stats->cache_hits++;
        complete(req, SchedOutcome::kServedFromCache);
      } else if (!pr.needs_io) {
        complete(req, SchedOutcome::kServedFromCpu);
      } else {
        SchedRequest io_req = req;
        io_req.io_blocks = std::max(1, pr.io_blocks);
        io_queues_[batch_cls_[i]].Push(io_req,
                                       static_cast<double>(io_req.io_blocks));
      }
    }
    batch_reqs_.clear();
    batch_cls_.clear();
  };
  auto batch_has_key = [&](uint64_t key_hash) {
    for (const SchedRequest& r : batch_reqs_) {
      if (r.key_hash == key_hash) return true;
    }
    return false;
  };

  while (ru_left > 0) {
    int c = -1;
    double best_vft = 0;
    for (int cand = 0; cand < kNumRequestClasses; cand++) {
      WfqQueue& q = cpu_queues_[cand];
      if (q.Empty()) continue;
      if (IsReadClass(cand)) {
        if (reads_left <= 0) continue;
      } else {
        if (writes_left <= 0 || write_ru_left <= 0) continue;
      }
      if (c < 0 || q.PeekVft() < best_vft) {
        c = cand;
        best_vft = q.PeekVft();
      }
    }
    if (c < 0) break;
    WfqQueue& q = cpu_queues_[c];

    // Rule 3 first, exactly like the serial path: even a canceled head
    // defers when its tenant is capped.
    TenantId head = q.PeekTenant();
    const double* used = tenant_ru_.Find(head);
    double head_used = used != nullptr ? *used : 0.0;
    double vft;
    if (head_used >= tenant_cap) {
      SchedRequest r = q.PopWithVft(&vft);
      deferred.push_back(Deferral{r, vft, c});
      stats->rule3_deferrals++;
      continue;
    }

    SchedRequest req = q.PopWithVft(&vft);
    if (canceled(req)) continue;  // == serial charge-then-refund (net 0).

    ru_left -= req.cpu_cost_ru;
    tenant_ru_[req.tenant] += req.cpu_cost_ru;
    stats->cpu_scheduled++;
    stats->cpu_ru_used += req.cpu_cost_ru;
    if (IsReadClass(c)) {
      reads_left--;
      // A repeat of a key already in the batch must see that earlier
      // request's completion (its cache fill) — flush first.
      if (batch_has_key(req.key_hash)) flush();
      batch_reqs_.push_back(req);
      batch_cls_.push_back(c);
      if (batch_reqs_.size() >= kReadBatchCap) flush();
    } else {
      writes_left--;
      write_ru_left -= req.cpu_cost_ru;
      // Writes invalidate/fill cache state in their completion and their
      // probe can read what prior reads filled: keep strict order.
      flush();
      batch_reqs_.push_back(req);
      batch_cls_.push_back(c);
      flush();
    }
  }
  flush();

  for (const Deferral& d : deferred) {
    cpu_queues_[d.queue_index].Reinsert(d.req, d.vft);
  }
}

void DualLayerWfq::RunIoLayer(const CompleteFn& complete, TickStats* stats) {
  const int64_t basic_budget =
      static_cast<int64_t>(options_.io_basic_threads) *
      options_.io_blocks_per_thread;
  const int64_t extra_budget =
      static_cast<int64_t>(options_.io_extra_threads) *
      options_.io_blocks_per_thread;

  std::unordered_map<TenantId, int64_t> tenant_blocks;
  int64_t basic_used = 0;

  // Phase 1: basic threads serve everyone in global VFT order.
  while (basic_used < basic_budget) {
    int c = -1;
    double best_vft = 0;
    for (int cand = 0; cand < kNumRequestClasses; cand++) {
      if (io_queues_[cand].Empty()) continue;
      if (c < 0 || io_queues_[cand].PeekVft() < best_vft) {
        c = cand;
        best_vft = io_queues_[cand].PeekVft();
      }
    }
    if (c < 0) break;
    SchedRequest req = io_queues_[c].Pop();
    basic_used += req.io_blocks;
    tenant_blocks[req.tenant] += req.io_blocks;
    stats->io_scheduled++;
    stats->io_blocks_used += static_cast<uint64_t>(req.io_blocks);
    complete(req, SchedOutcome::kServedFromDisk);
  }

  // Rule 4: if the basic threads were (nearly) fully monopolized by one
  // tenant, recruit the extra threads — but only for *other* tenants.
  if (basic_used < basic_budget) return;  // Budget not exhausted: done.
  TenantId monopolist = 0;
  int64_t top_blocks = 0;
  for (const auto& [tenant, blocks] : tenant_blocks) {
    if (blocks > top_blocks) {
      top_blocks = blocks;
      monopolist = tenant;
    }
  }
  const bool monopolized =
      basic_used > 0 &&
      static_cast<double>(top_blocks) / static_cast<double>(basic_used) >=
          0.95;
  if (!monopolized) return;

  stats->extra_threads_active = true;
  int64_t extra_used = 0;
  bool progressed = true;
  std::vector<Deferral> skipped;
  while (progressed && extra_used < extra_budget) {
    progressed = false;
    for (int c = 0; c < kNumRequestClasses && extra_used < extra_budget;
         c++) {
      WfqQueue& q = io_queues_[c];
      // Skip over the monopolist's requests to reach other tenants.
      while (!q.Empty() && q.PeekTenant() == monopolist) {
        double vft;
        SchedRequest r = q.PopWithVft(&vft);
        skipped.push_back(Deferral{r, vft, c});
      }
      if (q.Empty()) continue;
      SchedRequest req = q.Pop();
      progressed = true;
      extra_used += req.io_blocks;
      stats->io_scheduled++;
      stats->rule4_extra_served++;
      stats->io_blocks_used += static_cast<uint64_t>(req.io_blocks);
      complete(req, SchedOutcome::kServedFromDisk);
    }
  }
  for (const Deferral& d : skipped) {
    io_queues_[d.queue_index].Reinsert(d.req, d.vft);
  }
}

}  // namespace sched
}  // namespace abase
