// Weighted Fair Queueing primitive — paper Section 4.3.
//
// A min-heap ordered by Virtual Finish Time:
//   wReqCost(Q_i) = Cost(Q_i) / (Q_i / sum Q_p)        (partition-quota weight)
//   VFT(Q_i)      = preVFT_{T_i} + wReqCost(Q_i)
// The per-tenant preVFT accumulates, so a tenant with a large quota or
// cheap requests cannot be prioritized indefinitely; an idle tenant's
// preVFT is brought forward to the queue's virtual time when it becomes
// busy again (standard WFQ start-time rule).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace abase {
namespace sched {

/// A request as seen by the DataNode scheduler.
struct SchedRequest {
  uint64_t req_id = 0;         ///< Opaque handle owned by the caller.
  /// Caller-side slab index for the request's context (opaque to the
  /// scheduler; the DataNode uses it to skip a hash lookup per probe).
  uint32_t pending_slot = 0;
  TenantId tenant = 0;
  PartitionId partition = 0;
  RequestClass cls = RequestClass::kSmallRead;
  bool is_read = true;
  /// Hash of the storage key (FNV-1a of the cache-key string). The
  /// batched execution path flushes a read batch when it sees the same
  /// hash twice, so a cache fill from one completion is visible to the
  /// next probe of that key exactly as in serial execution.
  uint64_t key_hash = 0;
  double cpu_cost_ru = 1.0;    ///< Rule 1: CPU-WFQ cost is the RU.
  int io_blocks = 1;           ///< Rule 1: I/O-WFQ cost is the IOPS count.
  /// wPartition: this request's partition-quota share of all partition
  /// quotas hosted on the node (in (0, 1]). Set by the DataNode.
  double quota_share = 1.0;
};

/// One WFQ heap. Not thread-safe; the DataNode serializes access.
class WfqQueue {
 public:
  /// Enqueues with the given cost (RU for CPU-WFQ, blocks for I/O-WFQ).
  void Push(const SchedRequest& req, double cost);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Tenant of the minimum-VFT request (undefined when empty).
  TenantId PeekTenant() const { return heap_.top().req.tenant; }
  double PeekVft() const { return heap_.top().vft; }

  /// Pops the minimum-VFT request and advances the queue's virtual time.
  SchedRequest Pop();

  /// Pops and also reports the popped request's VFT (for deferral).
  SchedRequest PopWithVft(double* vft);

  /// Re-inserts a previously-popped request with its original VFT,
  /// without advancing the tenant's preVFT (used when a rule defers an
  /// already-scheduled request to the next tick).
  void Reinsert(const SchedRequest& req, double vft);

  /// Queue virtual time = VFT of the last popped request.
  double VirtualTime() const { return vtime_; }

  /// Discards everything queued and resets the virtual-time state (node
  /// failure: a crashed node's queue does not survive the crash). The
  /// queue afterwards behaves like a freshly constructed one.
  void Clear();

 private:
  struct Item {
    SchedRequest req;
    double vft;
    uint64_t tie;  ///< FIFO among equal VFTs: smaller = earlier arrival.
    bool operator>(const Item& o) const {
      if (vft != o.vft) return vft > o.vft;
      return tie > o.tie;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap_;
  /// Per-tenant preVFT, keyed by tenant id. Lazily pruned: once the heap
  /// drains, vtime_ dominates every retained preVFT (each pushed item
  /// pops with its original VFT and folds into vtime_), so the start-time
  /// rule `max(vtime_, preVFT)` gives the same answer with the map
  /// empty — clearing it is bit-identical and keeps the map at
  /// O(tenants busy this tick), not O(tenants ever seen).
  FlatMap64<double> pre_vft_;
  double vtime_ = 0;
  uint64_t tie_counter_ = 0;
};

}  // namespace sched
}  // namespace abase
