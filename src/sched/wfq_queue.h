// Weighted Fair Queueing primitive — paper Section 4.3.
//
//   wReqCost(Q_i) = Cost(Q_i) / (Q_i / sum Q_p)        (partition-quota weight)
//   VFT(Q_i)      = preVFT_{T_i} + wReqCost(Q_i)
// The per-tenant preVFT accumulates, so a tenant with a large quota or
// cheap requests cannot be prioritized indefinitely; an idle tenant's
// preVFT is brought forward to the queue's virtual time when it becomes
// busy again (standard WFQ start-time rule).
//
// Representation: per-tenant FIFO rings plus a min-heap over the *active*
// tenants keyed by each ring's head-of-line (VFT, tie). Within one tenant
// the pushed (VFT, tie) sequence is non-decreasing — the start-time rule
// takes max(vtime, preVFT) and preVFT never runs behind the ring tail —
// so each ring is sorted by construction and its head is the tenant
// minimum; ties are globally unique, so the heap top is the global
// minimum and the dequeue order is bit-identical to the legacy
// one-item-per-heap-entry priority queue (pinned by the differential
// test). Enqueue for an already-active tenant is O(1); heap operations
// are O(log active-tenants), not O(log queued-requests). Ring and heap
// capacity is retained across ticks and Clear() — no steady-state
// allocation.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace abase {
namespace sched {

/// A request as seen by the DataNode scheduler.
struct SchedRequest {
  uint64_t req_id = 0;         ///< Opaque handle owned by the caller.
  /// Caller-side slab index for the request's context (opaque to the
  /// scheduler; the DataNode uses it to skip a hash lookup per probe).
  uint32_t pending_slot = 0;
  TenantId tenant = 0;
  PartitionId partition = 0;
  RequestClass cls = RequestClass::kSmallRead;
  bool is_read = true;
  /// Hash of the storage key (FNV-1a of the cache-key string). The
  /// batched execution path flushes a read batch when it sees the same
  /// hash twice, so a cache fill from one completion is visible to the
  /// next probe of that key exactly as in serial execution.
  uint64_t key_hash = 0;
  double cpu_cost_ru = 1.0;    ///< Rule 1: CPU-WFQ cost is the RU.
  int io_blocks = 1;           ///< Rule 1: I/O-WFQ cost is the IOPS count.
  /// wPartition: this request's partition-quota share of all partition
  /// quotas hosted on the node (in (0, 1]). Set by the DataNode.
  double quota_share = 1.0;
};

/// One WFQ queue. Not thread-safe; the DataNode serializes access.
class WfqQueue {
 public:
  /// Enqueues with the given cost (RU for CPU-WFQ, blocks for I/O-WFQ).
  void Push(const SchedRequest& req, double cost);

  bool Empty() const { return size_ == 0; }
  size_t Size() const { return size_; }

  /// Tenant of the minimum-VFT request (undefined when empty).
  TenantId PeekTenant() const { return Head(heap_[0]).req.tenant; }
  double PeekVft() const { return Head(heap_[0]).vft; }

  /// Pops the minimum-VFT request and advances the queue's virtual time.
  SchedRequest Pop();

  /// Pops and also reports the popped request's VFT (for deferral).
  SchedRequest PopWithVft(double* vft);

  /// Re-inserts a previously-popped request with its original VFT,
  /// without advancing the tenant's preVFT (used when a rule defers an
  /// already-scheduled request to the next tick).
  void Reinsert(const SchedRequest& req, double vft);

  /// Queue virtual time = VFT of the last popped request.
  double VirtualTime() const { return vtime_; }

  /// Discards everything queued and resets the virtual-time state (node
  /// failure: a crashed node's queue does not survive the crash). The
  /// queue afterwards behaves like a freshly constructed one; ring
  /// buffers keep their capacity.
  void Clear();

 private:
  struct Entry {
    SchedRequest req;
    double vft;
    uint64_t tie;  ///< FIFO among equal VFTs: smaller = earlier arrival.
  };

  static constexpr uint32_t kNotInHeap = ~0u;

  /// Circular FIFO of one tenant's queued entries, sorted by (vft, tie).
  /// Capacity is a power of two and only grows.
  struct Ring {
    std::vector<Entry> buf;
    uint32_t head = 0;
    uint32_t count = 0;
    uint32_t heap_pos = kNotInHeap;  ///< Position in heap_, or inactive.

    uint32_t Mask() const { return static_cast<uint32_t>(buf.size()) - 1; }
    Entry& At(uint32_t i) { return buf[(head + i) & Mask()]; }
    const Entry& At(uint32_t i) const { return buf[(head + i) & Mask()]; }
  };

  static bool Before(const Entry& a, const Entry& b) {
    if (a.vft != b.vft) return a.vft < b.vft;
    return a.tie < b.tie;
  }

  const Entry& Head(uint32_t ring) const { return rings_[ring].At(0); }
  uint32_t RingFor(TenantId tenant);
  void AppendTail(Ring& r, const Entry& e);
  void InsertSorted(Ring& r, const Entry& e, bool* new_head);
  static void Grow(Ring& r);
  void HeapInsert(uint32_t ring_index);
  void HeapRemoveTop();
  void SiftUp(uint32_t pos);
  void SiftDown(uint32_t pos);

  /// One ring per tenant ever seen; rings persist (empty) when a tenant
  /// goes idle so re-activation reuses the buffer.
  std::vector<Ring> rings_;
  FlatMap64<uint32_t> tenant_ring_;
  /// Min-heap of active (non-empty) ring indices keyed by head (vft, tie).
  std::vector<uint32_t> heap_;
  size_t size_ = 0;  ///< Total queued entries across all rings.
  /// Per-tenant preVFT, keyed by tenant id. Lazily pruned: once the queue
  /// drains, vtime_ dominates every retained preVFT (each pushed item
  /// pops with its original VFT and folds into vtime_), so the start-time
  /// rule `max(vtime_, preVFT)` gives the same answer with the map
  /// empty — clearing it is bit-identical and keeps the map at
  /// O(tenants busy this tick), not O(tenants ever seen).
  FlatMap64<double> pre_vft_;
  double vtime_ = 0;
  uint64_t tie_counter_ = 0;
};

}  // namespace sched
}  // namespace abase
