// Dual-Layer Weighted Fair Queueing — paper Section 4.3 + Figure 2.
//
// Requests are split into four independent dual-layer WFQs by
// (read/write) x (small/large) so heavyweight requests never queue in
// front of lightweight ones. Each dual-layer unit is a CPU-WFQ over an
// I/O-WFQ: a request is first scheduled by the CPU-WFQ, which probes the
// DataNode cache; on a hit it completes immediately, on a miss it drops
// into the I/O-WFQ to be served from disk by a pool of basic threads,
// with extra threads recruited when one tenant monopolizes the basics
// (Rule 4).
//
// Production rules reproduced here:
//   Rule 1 — CPU-WFQ cost is the request RU; I/O-WFQ cost is its IOPS.
//   Rule 2 — per-tick concurrency limits on reads and writes, plus a
//            total-RU ceiling on writes (stabilizes latency during
//            LSM compaction / GC).
//   Rule 3 — one tenant may use at most 90% of a tick's CPU budget.
//   Rule 4 — extra I/O threads serve only non-monopolizing tenants.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sched/wfq_queue.h"

namespace abase {
namespace sched {

/// Capacity and rule parameters, expressed per one-second scheduling tick.
/// Rule-2 limits are per-tick pop caps (the discrete-time analogue of the
/// paper's in-flight concurrency limits); the defaults are effectively
/// unbounded so the CPU budget is the binding constraint — deployments
/// that want Rule 2 set explicit caps (see the unit tests and Figure 7).
struct DualWfqOptions {
  double cpu_budget_ru = 12000;       ///< Total CPU RU per tick.
  int read_concurrency = 1 << 20;     ///< Rule 2: max read pops per tick.
  int write_concurrency = 1 << 19;    ///< Rule 2: max write pops per tick.
  double write_ru_ceiling = 1e9;      ///< Rule 2: max write RU per tick.
  double single_tenant_cpu_cap = 0.9; ///< Rule 3.
  int io_basic_threads = 8;
  int io_extra_threads = 2;
  int io_blocks_per_thread = 2500;    ///< Per-thread IOPS slots per tick.
};

/// Why the scheduler finished (or refused) a request.
enum class SchedOutcome {
  kServedFromCache,  ///< CPU layer: DataNode cache hit.
  kServedFromCpu,    ///< Completed at the CPU layer without disk I/O
                     ///< (e.g., a write absorbed by the memtable).
  kServedFromDisk,   ///< Went through the I/O layer.
  kDeferred,         ///< Still queued when the tick's budget ran out.
};

/// Result of the caller-provided cache probe for a scheduled request.
struct CacheProbe {
  bool hit = false;      ///< DataNode cache hit (reads only).
  bool needs_io = true;  ///< False when the CPU layer fully served it.
  int io_blocks = 1;     ///< Disk blocks needed when needs_io.
  /// The request was canceled (e.g., queue deadline exceeded) before the
  /// scheduler reached it: its cost is refunded and complete() not called.
  bool canceled = false;
};

/// Per-tick scheduler statistics.
struct TickStats {
  uint64_t cpu_scheduled = 0;
  uint64_t cache_hits = 0;
  uint64_t io_scheduled = 0;
  double cpu_ru_used = 0;
  uint64_t io_blocks_used = 0;
  uint64_t rule3_deferrals = 0;  ///< Pops skipped due to the 90% cap.
  uint64_t rule4_extra_served = 0;
  bool extra_threads_active = false;
};

/// The four-class dual-layer WFQ engine.
class DualLayerWfq {
 public:
  /// `probe` checks the DataNode cache for a CPU-scheduled request.
  /// `complete` is invoked exactly once per request that finishes this
  /// tick, with where it was served from.
  using ProbeFn = std::function<CacheProbe(const SchedRequest&)>;
  using CompleteFn = std::function<void(const SchedRequest&, SchedOutcome)>;
  /// Batched probe: fills `out[i]` for `reqs[i]`, i in [0, n). The batch
  /// is in pop order; none of its members are canceled (see CancelFn).
  using BatchProbeFn =
      std::function<void(const SchedRequest* reqs, size_t n, CacheProbe* out)>;
  /// True if the request was canceled (deadline-expired) before the
  /// scheduler reached it. Checked at pop time on the batched path so a
  /// canceled request never enters a batch; skipping its accounting
  /// entirely equals the serial charge-then-refund (which nets zero
  /// before any other request observes the budget).
  using CancelFn = std::function<bool(const SchedRequest&)>;

  explicit DualLayerWfq(DualWfqOptions options = {});

  /// Enqueues into the CPU-WFQ of the request's class.
  void Enqueue(const SchedRequest& req);

  /// Runs one scheduling tick: drains CPU-WFQs under Rules 2-3 (probing
  /// the cache per request), then drains I/O-WFQs under Rules 1 and 4.
  /// Returns this tick's statistics.
  TickStats RunTick(const ProbeFn& probe, const CompleteFn& complete);

  /// Batched variant of RunTick: consecutive read pops accumulate into a
  /// batch (flushed on a write pop, a repeated key hash, a size cap, or
  /// loop exit) so the caller can amortize one storage-engine probe pass
  /// over the whole batch. Pop order, budget accounting, rules 2-4, and
  /// completion order are identical to the serial overload.
  TickStats RunTick(const BatchProbeFn& probe, const CancelFn& canceled,
                    const CompleteFn& complete);

  /// Requests still waiting (across both layers and all classes).
  size_t PendingCount() const;

  /// Discards all queued requests in every class and layer (node
  /// failure). Their completions never fire; the caller owns whatever
  /// bookkeeping referenced them.
  void Clear();

  const DualWfqOptions& options() const { return options_; }
  void set_options(const DualWfqOptions& o) { options_ = o; }

 private:
  void RunCpuLayer(const ProbeFn& probe, const CompleteFn& complete,
                   TickStats* stats);
  void RunCpuLayerBatched(const BatchProbeFn& probe, const CancelFn& canceled,
                          const CompleteFn& complete, TickStats* stats);
  void RunIoLayer(const CompleteFn& complete, TickStats* stats);

  DualWfqOptions options_;
  WfqQueue cpu_queues_[kNumRequestClasses];
  WfqQueue io_queues_[kNumRequestClasses];
  /// Per-tick scratch (kept across ticks to avoid re-allocation; cleared
  /// at use). `tenant_ru_` replaces the serial path's per-call map — it
  /// is never iterated, only point-queried, so the container swap cannot
  /// affect scheduling order.
  FlatMap64<double> tenant_ru_;
  std::vector<SchedRequest> batch_reqs_;
  std::vector<int> batch_cls_;
  std::vector<CacheProbe> batch_probes_;
};

}  // namespace sched
}  // namespace abase
