// ServiceTimeModel — per-request sampled service times.
//
// The seed data plane charged every request a fixed
// `cpu_service_micros`, so p50 == p99 at every load point and nothing
// tail-related was measurable. This model replaces the fixed base with a
// draw from a configured distribution (fixed, exponential, lognormal)
// while keeping the WFQ-backlog and disk components of the composition
// untouched.
//
// Determinism contract: nodes tick concurrently under the parallel
// data-plane executor, so the model is STATELESS — a sample is a pure
// hash of (model seed, stream, req_id) pushed through an inverse CDF.
// The same request on the same node draws the same service time no
// matter which worker executes it or how many requests came before.
// Streams are per-(node, tenant), so per-tenant and per-node draws are
// mutually independent.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace abase {
namespace latency {

/// Service-time distribution classes.
enum class DistKind : uint8_t {
  kFixed = 0,        ///< Always `mean_micros` (the seed behavior).
  kExponential = 1,  ///< Memoryless; tail ratio p99/p50 ~ 6.6.
  kLognormal = 2,    ///< Heavy tail; shape set by `sigma`.
};

const char* DistKindName(DistKind kind);

struct ServiceTimeOptions {
  /// Master gate. Off = the node's fixed cpu_service_micros base is used
  /// unchanged, preserving bit-identical legacy runs (golden digests).
  bool enabled = false;
  DistKind dist = DistKind::kLognormal;
  /// Mean of the sampled service time, whatever the distribution.
  double mean_micros = 150.0;
  /// Lognormal shape (sigma of the underlying normal). 1.2 gives
  /// p99/p50 ~ 16 — the tail the hedging machinery exists for.
  double sigma = 1.2;
  /// Base seed; mixed with the caller's stream and req_id per draw.
  uint64_t seed = 42;
};

/// Stateless deterministic sampler. Copyable; holds only the options and
/// the precomputed lognormal location parameter.
class ServiceTimeModel {
 public:
  ServiceTimeModel() = default;
  explicit ServiceTimeModel(const ServiceTimeOptions& options);

  bool enabled() const { return options_.enabled; }
  const ServiceTimeOptions& options() const { return options_; }

  /// One service-time draw for (stream, req_id). Pure: depends only on
  /// the model seed and the two arguments. Always >= 1 microsecond.
  Micros Sample(uint64_t stream, uint64_t req_id) const;

  /// Uniform double in [0, 1) from a counter-mode hash draw — exposed
  /// for tests that verify stream independence.
  static double Uniform(uint64_t seed, uint64_t stream, uint64_t draw);

 private:
  ServiceTimeOptions options_;
  double lognormal_mu_ = 0;  ///< ln(mean) - sigma^2/2 (mean-preserving).
};

}  // namespace latency
}  // namespace abase
