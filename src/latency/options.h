// Cluster-level options of the sub-tick latency subsystem.
//
// Master-gated by `enabled`: when false (the default), the simulator
// settles responses exactly as the seed did — fixed forward-hop latency,
// node-id delivery order, no hedging, no gray detection — so every
// golden digest recorded before this subsystem existed still matches.
// When true, each response carries a virtual completion time (sampled
// service time + WFQ backlog + disk + cross-AZ RTT) and Settle delivers
// in (virtual_time, req_id) order, which is where hedging, gray-failure
// detection, and SLO accounting hang.
//
// The node-side half (service-time distributions) lives in
// DataNodeOptions::service_time; this struct owns the cluster-visible
// half: AZ topology, the node<->proxy RTT classes, the hedge policy, the
// gray detector, and the SLO target.
#pragma once

#include "common/clock.h"
#include "latency/gray_detector.h"
#include "latency/hedge.h"

namespace abase {
namespace latency {

/// Round-trip-time classes of the proxy<->node hop. In-AZ hops ride the
/// datacenter fabric; cross-AZ hops pay the inter-AZ fiber.
struct RttOptions {
  Micros same_az_micros = 120;   ///< Matches the seed's forward hop.
  Micros cross_az_micros = 900;  ///< Typical intra-region cross-AZ RTT.
};

struct LatencyOptions {
  /// Master gate for the whole subsystem (see the header comment).
  bool enabled = false;
  /// Availability zones nodes and proxies are striped across (round
  /// robin by index). 3 matches the paper's deployment.
  uint32_t num_azs = 3;
  RttOptions rtt;
  HedgePolicy hedge;
  GrayDetectorOptions gray;
  /// Per-tenant SLO: a settled client latency above this target counts
  /// one violation toward TenantTickMetrics::slo_violations.
  /// TenantConfig::slo_target_micros overrides per tenant; 0 disables.
  Micros slo_target_micros = 5000;
  /// SLO objective (fraction of requests that must meet the target).
  /// Burn rate = violation_rate / (1 - objective); >1 burns error
  /// budget faster than the objective allows.
  double slo_objective = 0.99;
};

/// Cross-AZ RTT of one proxy<->node pair.
inline Micros RttBetween(const RttOptions& rtt, uint32_t az_a, uint32_t az_b) {
  return az_a == az_b ? rtt.same_az_micros : rtt.cross_az_micros;
}

}  // namespace latency
}  // namespace abase
