// Gray-failure detection: slow-but-alive nodes.
//
// Crash-stop failures (node/data_node.h NodeState) are binary; the
// failures that actually erode tail latency in production are *gray* — a
// node that still answers health checks but serves every request 5-20x
// slower (degraded disk, noisy neighbor, thermal throttling). This
// detector watches each node's served latency, folds it into a per-node
// EWMA, compares against the fleet median, and flags nodes that stay
// above `slow_factor x median` for `consecutive_ticks` ticks. The Fault
// stage consumes the transitions: flagged nodes are demoted out of
// eventual-read routing and (optionally) failed over.
//
// Determinism: observations are integer micro-sums accumulated in
// node-id order from a serial pipeline section; evaluation walks
// std::map in node-id order. No wall clock, no RNG.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"

namespace abase {
namespace latency {

struct GrayDetectorOptions {
  bool enabled = false;
  /// EWMA smoothing of each node's per-tick mean served latency.
  double ewma_alpha = 0.3;
  /// A node turns gray when its EWMA exceeds slow_factor x fleet median.
  double slow_factor = 3.0;
  /// A gray node recovers when its EWMA drops below recover_factor x
  /// median (hysteresis: recover_factor < slow_factor).
  double recover_factor = 1.5;
  /// Ticks the condition must hold before the state flips.
  int consecutive_ticks = 3;
  /// Minimum served requests in a tick for that tick's mean to update
  /// the node's EWMA (a 2-request tick is noise, not signal).
  uint64_t min_samples = 8;
  /// Demote gray nodes out of eventual-read replica selection.
  bool demote_routing = true;
  /// Canary probes: every Nth eventual read per tenant ignores the
  /// demotion, so a flagged node keeps producing latency samples —
  /// without probes a demoted node's EWMA freezes and it can never be
  /// observed recovering. 0 disables probing (full demotion).
  int probe_interval = 16;
  /// Additionally fail the node's primaries over to healthy replicas
  /// (MetaServer::PromoteFailover on a still-alive node) and fail back
  /// on recovery.
  bool trigger_failover = false;
};

class GrayFailureDetector {
 public:
  /// One state flip, emitted by Evaluate in node-id order.
  struct Transition {
    NodeId node = kInvalidNode;
    bool now_gray = false;  ///< false = recovered.
  };

  explicit GrayFailureDetector(GrayDetectorOptions options = {})
      : options_(options) {}

  const GrayDetectorOptions& options() const { return options_; }

  /// Accumulates one tick's served latency for `node` (integer sum —
  /// order-independent). Call once per node per tick, from a serial
  /// section; count 0 is a no-op.
  void ObserveTick(NodeId node, uint64_t latency_sum_micros, uint64_t count);

  /// Tick boundary: folds the accumulated sums into the EWMAs, compares
  /// against the fleet median, advances the hysteresis streaks, and
  /// returns the state flips (node-id order). Clears the tick sums.
  std::vector<Transition> Evaluate();

  bool IsGray(NodeId node) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && it->second.gray;
  }

  /// Current latency EWMA of `node` in micros (0 = never observed).
  double Ewma(NodeId node) const {
    auto it = nodes_.find(node);
    return it == nodes_.end() ? 0 : it->second.ewma;
  }

  /// Median of all observed nodes' EWMAs as of the last Evaluate().
  double FleetMedian() const { return fleet_median_; }

  size_t GrayCount() const {
    size_t n = 0;
    for (const auto& [id, st] : nodes_) n += st.gray ? 1 : 0;
    return n;
  }

 private:
  struct NodeStat {
    uint64_t tick_sum = 0;    ///< Micros served this tick.
    uint64_t tick_count = 0;  ///< Requests served this tick.
    double ewma = 0;
    bool has_ewma = false;
    bool gray = false;
    int streak = 0;  ///< Consecutive ticks the flip condition held.
  };

  GrayDetectorOptions options_;
  std::map<NodeId, NodeStat> nodes_;  ///< Ordered: deterministic walks.
  double fleet_median_ = 0;
  std::vector<double> median_scratch_;
};

}  // namespace latency
}  // namespace abase
